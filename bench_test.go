// Package uopsim's root benchmark harness: one testing.B benchmark per
// table and figure of the paper's evaluation (driving the same experiment
// runners as cmd/experiments, at benchmark-friendly scale), plus
// micro-benchmarks of the core data structures. Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// Full-scale paper numbers come from cmd/experiments; these benchmarks use
// shorter traces and an application subset so the whole suite completes in
// minutes while still exercising every experiment path.
package uopsim

import (
	"testing"

	"uopsim/internal/analysis"
	"uopsim/internal/core"
	"uopsim/internal/experiments"
	"uopsim/internal/offline"
	"uopsim/internal/policy"
	"uopsim/internal/profiles"
	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
	"uopsim/internal/workload"
)

// benchCtx builds a small-but-representative experiment context.
func benchCtx(apps ...string) *experiments.Context {
	ctx := experiments.NewContext(6000)
	if len(apps) == 0 {
		apps = []string{"kafka", "postgres"}
	}
	ctx.Apps = apps
	return ctx
}

func benchExperiment(b *testing.B, id string, apps ...string) {
	b.Helper()
	run, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctx := benchCtx(apps...)
		if _, err := run(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One benchmark per paper table/figure ---

func BenchmarkTable1Parameters(b *testing.B)      { benchExperiment(b, "tab1") }
func BenchmarkTable2Applications(b *testing.B)    { benchExperiment(b, "tab2") }
func BenchmarkFig2PerfectStructures(b *testing.B) { benchExperiment(b, "fig2") }
func BenchmarkSec3BMissClasses(b *testing.B)      { benchExperiment(b, "sec3b") }
func BenchmarkSec3EReuseDistances(b *testing.B)   { benchExperiment(b, "sec3e") }
func BenchmarkFig5ExistingPolicies(b *testing.B)  { benchExperiment(b, "fig5") }
func BenchmarkFig8FURBYS(b *testing.B)            { benchExperiment(b, "fig8") }
func BenchmarkFig9PPW(b *testing.B)               { benchExperiment(b, "fig9") }
func BenchmarkFig10FLACKAblation(b *testing.B)    { benchExperiment(b, "fig10") }
func BenchmarkFig11IPC(b *testing.B)              { benchExperiment(b, "fig11") }
func BenchmarkFig12ISOPerformance(b *testing.B)   { benchExperiment(b, "fig12", "kafka") }
func BenchmarkFig13EnergyBreakdown(b *testing.B)  { benchExperiment(b, "fig13", "clang") }
func BenchmarkFig14EnergyReduction(b *testing.B)  { benchExperiment(b, "fig14", "kafka") }
func BenchmarkFig15ProfileSources(b *testing.B)   { benchExperiment(b, "fig15", "kafka") }
func BenchmarkFig16SizeAssocSweep(b *testing.B)   { benchExperiment(b, "fig16", "kafka") }
func BenchmarkFig17Zen4PPW(b *testing.B)          { benchExperiment(b, "fig17", "kafka") }
func BenchmarkFig18CrossValidation(b *testing.B)  { benchExperiment(b, "fig18", "kafka") }
func BenchmarkFig19WeightBits(b *testing.B)       { benchExperiment(b, "fig19", "kafka") }
func BenchmarkFig20DetectorDepth(b *testing.B)    { benchExperiment(b, "fig20", "kafka") }
func BenchmarkFig21Bypass(b *testing.B)           { benchExperiment(b, "fig21", "kafka") }
func BenchmarkFig22Hotness(b *testing.B)          { benchExperiment(b, "fig22") }
func BenchmarkCoverage(b *testing.B)              { benchExperiment(b, "coverage", "kafka") }

// --- Serial vs parallel harness sweep ---

// benchAllFigures drives a representative multi-experiment sweep through
// RunMany at the given worker budget. The serial/parallel pair measures the
// harness-level speedup (EXPERIMENTS.md records the numbers); output
// equality across worker counts is asserted by the package's determinism
// tests, not here.
func benchAllFigures(b *testing.B, workers int) {
	b.Helper()
	ids := []string{"tab2", "sec3e", "fig5", "fig8", "fig10", "fig15", "fig21", "coverage"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctx := experiments.NewContext(3000)
		ctx.Apps = []string{"kafka", "postgres"}
		ctx.Workers = workers
		for _, r := range experiments.RunMany(ctx, ids, nil) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

func BenchmarkAllFiguresSerial(b *testing.B)   { benchAllFigures(b, 1) }
func BenchmarkAllFiguresParallel(b *testing.B) { benchAllFigures(b, 0) }

// --- Micro-benchmarks of the core building blocks ---

func benchTracePWs(b *testing.B, app string, blocks int) []trace.PW {
	b.Helper()
	spec, err := workload.Get(app)
	if err != nil {
		b.Fatal(err)
	}
	return trace.FormPWs(workload.GenerateSpec(spec, blocks, 0), 0)
}

func BenchmarkWorkloadGenerate(b *testing.B) {
	spec, _ := workload.Get("kafka")
	prog := spec.Build()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog.Generate(20000, 0)
	}
}

// BenchmarkFormPWs measures PW formation over a kafka block trace. The
// Former builds every window's Lines slice in a shared append-only arena,
// so allocs/op is O(log windows) for the arena growth plus one slice header
// per window batch — not one allocation per window (the pre-arena cost).
func BenchmarkFormPWs(b *testing.B) {
	spec, _ := workload.Get("kafka")
	blocks := workload.GenerateSpec(spec, 20000, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trace.FormPWs(blocks, 0)
	}
}

func BenchmarkUopCacheLRU(b *testing.B) {
	pws := benchTracePWs(b, "kafka", 20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := uopcache.New(uopcache.DefaultConfig(), policy.NewLRU())
		uopcache.NewBehavior(c, nil).Run(pws)
	}
}

func BenchmarkUopCacheFURBYS(b *testing.B) {
	pws := benchTracePWs(b, "kafka", 20000)
	cfg := uopcache.DefaultConfig()
	prof := profiles.Collect(pws, cfg, profiles.SourceFLACK)
	w := prof.Weights(cfg, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := uopcache.New(cfg, policy.NewFURBYS(policy.DefaultFURBYSConfig(), w))
		uopcache.NewBehavior(c, nil).Run(pws)
	}
}

// BenchmarkPolicyLookup measures the steady-state per-replay cost of each
// replacement policy: a kafka PW trace replayed through a cache built on
// that policy, after one untimed warm-up replay fills the sets. Hits drive
// OnHit, misses drive Victim/OnEvict/OnInsert, so the numbers cover exactly
// the per-slot metadata paths (dense stamp/RRPV/signature arrays instead of
// per-key maps) that the slot-handle Policy interface exists for.
func BenchmarkPolicyLookup(b *testing.B) {
	pws := benchTracePWs(b, "kafka", 20000)
	cfg := uopcache.DefaultConfig()
	prof := profiles.Collect(pws, cfg, profiles.SourceFLACK)
	weights := prof.Weights(cfg, 3)
	cases := []struct {
		name string
		mk   func() uopcache.Policy
	}{
		{"lru", func() uopcache.Policy { return policy.NewLRU() }},
		{"random", func() uopcache.Policy { return policy.NewRandom(1) }},
		{"srrip", func() uopcache.Policy { return policy.NewSRRIP() }},
		{"shippp", func() uopcache.Policy { return policy.NewSHiPPP() }},
		{"drrip", func() uopcache.Policy { return policy.NewDRRIP() }},
		{"ghrp", func() uopcache.Policy { return policy.NewGHRP() }},
		{"mockingjay", func() uopcache.Policy { return policy.NewMockingjay() }},
		{"thermometer", func() uopcache.Policy { return policy.NewThermometer(nil) }},
		{"furbys", func() uopcache.Policy {
			return policy.NewFURBYS(policy.DefaultFURBYSConfig(), weights)
		}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			c := uopcache.New(cfg, tc.mk())
			beh := uopcache.NewBehavior(c, nil)
			beh.Run(pws) // warm to steady state before timing
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				beh.Run(pws)
			}
		})
	}
}

func BenchmarkFLACKSolve(b *testing.B) {
	pws := benchTracePWs(b, "kafka", 20000)
	cfg := uopcache.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		offline.ComputeDecisions(nil, pws, cfg, offline.CostVC, true, 0, 1)
	}
}

// BenchmarkFLACKSolveParallel is the same solve with the (set, segment)
// fan-out enabled at GOMAXPROCS workers. Compare against BenchmarkFLACKSolve
// for the solver speedup; on a single-core host the two should be within
// noise of each other.
func BenchmarkFLACKSolveParallel(b *testing.B) {
	pws := benchTracePWs(b, "kafka", 20000)
	cfg := uopcache.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		offline.ComputeDecisions(nil, pws, cfg, offline.CostVC, true, 0, 0)
	}
}

func BenchmarkBeladyReplay(b *testing.B) {
	pws := benchTracePWs(b, "kafka", 20000)
	cfg := uopcache.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		offline.RunBelady(pws, cfg, offline.Options{})
	}
}

// BenchmarkBeladyReplayPrepared is the same replay over the columnar
// prepared trace: per-window set/footprint reads and the shared CSR
// occurrence index replace the per-replay map-of-slices build, which is
// where the allocs/op drop against BenchmarkBeladyReplay comes from.
func BenchmarkBeladyReplayPrepared(b *testing.B) {
	pws := benchTracePWs(b, "kafka", 20000)
	cfg := uopcache.DefaultConfig()
	pt := uopcache.Prepare(cfg, pws)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		offline.RunBelady(pws, cfg, offline.Options{Prepared: pt})
	}
}

func BenchmarkTimingModel(b *testing.B) {
	spec, _ := workload.Get("kafka")
	blocks := workload.GenerateSpec(spec, 20000, 0)
	cfg := core.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.RunTiming(blocks, cfg, policy.NewLRU())
	}
}

func BenchmarkProfileCollect(b *testing.B) {
	pws := benchTracePWs(b, "kafka", 10000)
	cfg := uopcache.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prof := profiles.Collect(pws, cfg, profiles.SourceFLACK)
		prof.Weights(cfg, 3)
	}
}

// BenchmarkSimlintModule times one full static-analysis pass (all eight
// analyzers) over the already-loaded module, call graph prebuilt — the
// steady-state cost CI pays on every simlint run after type-checking.
func BenchmarkSimlintModule(b *testing.B) {
	prog, err := analysis.Load(".", "uopsim/...")
	if err != nil {
		b.Fatalf("Load(uopsim/...): %v", err)
	}
	prog.CallGraph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if diags := analysis.Run(prog, analysis.All()); len(diags) != 0 {
			b.Fatalf("module is not simlint-clean: %d findings", len(diags))
		}
	}
}

// --- Extension experiments (paper Section VII + DESIGN.md ablations) ---

func BenchmarkSensInclusion(b *testing.B)     { benchExperiment(b, "sens-inclusion", "kafka") }
func BenchmarkSensInsertDelay(b *testing.B)   { benchExperiment(b, "sens-delay", "kafka") }
func BenchmarkSensSegmentLimit(b *testing.B)  { benchExperiment(b, "sens-segment", "kafka") }
func BenchmarkSensFragmentation(b *testing.B) { benchExperiment(b, "sens-fragmentation", "kafka") }
func BenchmarkSensObjective(b *testing.B)     { benchExperiment(b, "sens-objective", "kafka") }
