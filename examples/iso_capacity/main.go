// ISO-capacity study (the paper's Fig. 12 for one application): how many
// entries does an LRU-managed micro-op cache need to match FURBYS managing
// the baseline 512 entries?
package main

import (
	"flag"
	"fmt"
	"log"

	"uopsim/internal/core"
	"uopsim/internal/policy"
	"uopsim/internal/profiles"
)

func main() {
	app := flag.String("app", "postgres", "application to study")
	flag.Parse()
	cfg := core.DefaultConfig()
	_, pws, err := core.TraceFor(*app, 120000, 0)
	if err != nil {
		log.Fatal(err)
	}

	// FURBYS at the baseline 512 entries.
	prof := profiles.Collect(pws, cfg.UopCache, profiles.SourceFLACK)
	fur := policy.NewFURBYS(policy.DefaultFURBYSConfig(), prof.Weights(cfg.UopCache, 3))
	furbys := core.RunBehavior(pws, cfg, fur, core.BehaviorOptions{})
	fmt.Printf("%s — FURBYS @ 512 entries: uop miss rate %.4f\n\n", *app, furbys.Stats.UopMissRate())

	// LRU at growing capacities (64 sets, 8..16 ways).
	fmt.Printf("%-12s %-14s %s\n", "config", "uop miss rate", "matches FURBYS?")
	matched := 0
	for ways := 8; ways <= 16; ways += 2 {
		c := cfg
		c.UopCache.Entries = 64 * ways
		c.UopCache.Ways = ways
		res := core.RunBehavior(pws, c, policy.NewLRU(), core.BehaviorOptions{})
		mark := ""
		if res.Stats.UopMissRate() <= furbys.Stats.UopMissRate() {
			mark = "  <= FURBYS@512"
			if matched == 0 {
				matched = c.UopCache.Entries
			}
		}
		fmt.Printf("lru@%-8d %.4f%s\n", c.UopCache.Entries, res.Stats.UopMissRate(), mark)
	}
	if matched > 0 {
		fmt.Printf("\nLRU needs ~%d entries (%.2fx) to match FURBYS at 512 (paper: ~1.5x, up to 2x).\n",
			matched, float64(matched)/512)
	} else {
		fmt.Println("\nLRU did not match FURBYS even at 2x capacity on this workload (paper observes this for Postgres).")
	}
}
