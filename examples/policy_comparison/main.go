// Policy comparison: run every replacement policy the paper evaluates —
// online and offline — over a data-center application and print a ranking,
// reproducing the experience of the paper's Figs. 5 and 8 for one workload.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"uopsim/internal/core"
)

func main() {
	app := flag.String("app", "wordpress", "application to study")
	blocks := flag.Int("blocks", 120000, "trace length in dynamic blocks")
	flag.Parse()

	cfg := core.DefaultConfig()
	_, pws, err := core.TraceFor(*app, *blocks, 0)
	if err != nil {
		log.Fatal(err)
	}

	base, err := core.RunBehaviorByName("lru", pws, cfg, core.BehaviorOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d PW lookups, LRU uop miss rate %.4f\n\n", *app, len(pws), base.Stats.UopMissRate())

	type row struct {
		name string
		red  float64
		kind string
	}
	var rows []row
	for _, name := range []string{"random", "srrip", "ship++", "ghrp", "mockingjay", "thermometer", "furbys"} {
		res, err := core.RunBehaviorByName(name, pws, cfg, core.BehaviorOptions{})
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{name, core.MissReduction(base.Stats, res.Stats), "online"})
	}
	for _, name := range core.OfflineNames() {
		res, err := core.RunBehaviorByName(name, pws, cfg, core.BehaviorOptions{})
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{name, core.MissReduction(base.Stats, res.Stats), "offline"})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].red > rows[j].red })

	fmt.Printf("%-12s %-8s %s\n", "policy", "kind", "miss reduction vs LRU")
	for _, r := range rows {
		fmt.Printf("%-12s %-8s %+7.2f%%\n", r.name, r.kind, 100*r.red)
	}
	fmt.Println("\nExpected shape (paper): flack > belady > online policies; furbys best online.")
}
