// Quickstart: generate a data-center workload trace, run the micro-op cache
// under LRU and under the paper's FURBYS policy, and print the headline
// miss-reduction number.
package main

import (
	"fmt"
	"log"

	"uopsim/internal/core"
	"uopsim/internal/policy"
	"uopsim/internal/profiles"
)

func main() {
	cfg := core.DefaultConfig() // the paper's Table I (Zen3-like) setup

	// STEP 1-2: trace collection and PW lookup sequence (the synthetic
	// stand-in for Intel PT).
	_, pws, err := core.TraceFor("kafka", 100000, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kafka: %d PW lookups\n", len(pws))

	// Baseline: LRU.
	lru := core.RunBehavior(pws, cfg, policy.NewLRU(), core.BehaviorOptions{})
	fmt.Printf("LRU     miss rate %.4f\n", lru.Stats.UopMissRate())

	// STEPS 3-6: collect a FLACK profile and build the FURBYS weights.
	prof := profiles.Collect(pws, cfg.UopCache, profiles.SourceFLACK)
	furbys := policy.NewFURBYS(policy.DefaultFURBYSConfig(), prof.Weights(cfg.UopCache, 3))

	// STEP 7: deploy.
	res := core.RunBehavior(pws, cfg, furbys, core.BehaviorOptions{})
	fmt.Printf("FURBYS  miss rate %.4f\n", res.Stats.UopMissRate())
	fmt.Printf("miss reduction vs LRU: %.2f%%\n", 100*core.MissReduction(lru.Stats, res.Stats))

	// The offline near-optimal bound.
	flack, err := core.RunBehaviorByName("flack", pws, cfg, core.BehaviorOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FLACK   miss rate %.4f (offline bound, %.2f%% reduction)\n",
		flack.Stats.UopMissRate(), 100*core.MissReduction(lru.Stats, flack.Stats))
}
