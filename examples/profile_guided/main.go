// Profile-guided deployment: the full FURBYS pipeline of the paper's Fig. 6,
// including profile persistence and cross-input validation. A profile is
// collected on training inputs, saved to disk (the stand-in for hint
// injection into the binary), reloaded, and deployed on a held-out input.
package main

import (
	"bytes"
	"fmt"
	"log"

	"uopsim/internal/core"
	"uopsim/internal/policy"
	"uopsim/internal/profiles"
)

func main() {
	const app = "tomcat"
	cfg := core.DefaultConfig()

	// Training inputs 1 and 2 (different request mixes of the same
	// binary); the held-out test input is 0.
	var train []*profiles.Profile
	for _, input := range []int{1, 2} {
		_, pws, err := core.TraceFor(app, 80000, input)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("collecting FLACK profile on input %d (%d lookups)\n", input, len(pws))
		train = append(train, profiles.Collect(pws, cfg.UopCache, profiles.SourceFLACK))
	}
	merged := profiles.Merge(train...)

	// Persist and reload — in hardware, these weights travel inside the
	// binary's reserved branch bits; here they travel as a profile file.
	var buf bytes.Buffer
	if err := merged.Save(&buf); err != nil {
		log.Fatal(err)
	}
	serialized := buf.Len()
	reloaded, err := profiles.Load(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profile: %d windows, %d bytes serialized\n\n", len(reloaded.Rates), serialized)

	// Deploy on the held-out input and compare with a same-input profile.
	_, testPWs, err := core.TraceFor(app, 80000, 0)
	if err != nil {
		log.Fatal(err)
	}
	base := core.RunBehavior(testPWs, cfg, policy.NewLRU(), core.BehaviorOptions{})

	deploy := func(label string, p *profiles.Profile) float64 {
		fur := policy.NewFURBYS(policy.DefaultFURBYSConfig(), p.Weights(cfg.UopCache, 3))
		res := core.RunBehavior(testPWs, cfg, fur, core.BehaviorOptions{})
		red := core.MissReduction(base.Stats, res.Stats)
		fmt.Printf("%-22s miss reduction %+6.2f%%\n", label, 100*red)
		return red
	}
	cross := deploy("cross-input profile", reloaded)
	samePWProf := profiles.Collect(testPWs, cfg.UopCache, profiles.SourceFLACK)
	same := deploy("same-input profile", samePWProf)
	if same > 0 {
		fmt.Printf("\ncross-input retains %.1f%% of the same-input reduction (paper: 94.34%%)\n", 100*cross/same)
	}
}
