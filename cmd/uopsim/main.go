// Command uopsim runs one application under one replacement policy and
// prints micro-op cache statistics (behaviour mode) or IPC and power
// (timing mode).
//
// Usage:
//
//	uopsim -app kafka -policy furbys [-mode behavior|timing] [-blocks N]
//	       [-input N] [-icache] [-zen4]
//	       [-telemetry FILE] [-events FILE -sample N] [-pprof ADDR] [-progress]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"uopsim/internal/core"
	"uopsim/internal/profiles"
	"uopsim/internal/telemetry"
	"uopsim/internal/trace"
	"uopsim/internal/workload"
)

func main() {
	var (
		app      = flag.String("app", "kafka", "application: "+strings.Join(workload.Names(), ", "))
		traceF   = flag.String("trace", "", "trace file from tracegen (overrides -app/-blocks/-input)")
		pol      = flag.String("policy", "lru", "replacement policy: "+strings.Join(append(core.PolicyNames(), core.OfflineNames()...), ", "))
		mode     = flag.String("mode", "behavior", "simulation mode: behavior or timing")
		blocks   = flag.Int("blocks", 100000, "dynamic blocks to simulate")
		input    = flag.Int("input", 0, "input variant (cross-validation inputs are 1, 2, ...)")
		icache   = flag.Bool("icache", false, "model the inclusive L1i (behavior mode); default is a perfect icache")
		zen4     = flag.Bool("zen4", false, "use the Zen4 configuration instead of Zen3")
		progress = flag.Bool("progress", false, "print phase status lines to stderr")
	)
	var obs telemetry.CLI
	obs.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if err := obs.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "uopsim:", err)
		os.Exit(1)
	}
	err := run(*app, *traceF, *pol, *mode, *blocks, *input, *icache, *zen4, *progress, &obs)
	if cerr := obs.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "uopsim:", err)
		os.Exit(1)
	}
}

func run(app, traceFile, pol, mode string, blocks, input int, icache, zen4, progress bool, obs *telemetry.CLI) error {
	cfg := core.DefaultConfig()
	if zen4 {
		cfg = core.Zen4Config()
	}
	var prog *telemetry.Progress
	if progress {
		prog = telemetry.NewProgress(os.Stderr)
	}
	tel := core.Telemetry{Metrics: obs.Registry}
	if obs.Sink != nil {
		tel.Events = obs.Sink
	}
	var blks []trace.Block
	var pws []trace.PW
	var err error
	start := time.Now()
	if traceFile != "" {
		f, err := os.Open(traceFile)
		if err != nil {
			return err
		}
		blks, err = trace.ReadBlocks(f)
		f.Close()
		if err != nil {
			return err
		}
		app = traceFile
		pws = trace.FormPWs(blks, 0)
	} else {
		blks, pws, err = core.TraceFor(app, blocks, input)
		if err != nil {
			return err
		}
	}
	prog.Step("trace", app, 1, 3, time.Since(start))
	fmt.Printf("app=%s policy=%s mode=%s blocks=%d pw-lookups=%d config=%s\n",
		app, pol, mode, len(blks), len(pws), cfg.Name)

	switch mode {
	case "behavior":
		phase := time.Now()
		opts := core.BehaviorOptions{WithICache: icache, Telemetry: tel}
		res, err := core.RunBehaviorByName(pol, pws, cfg, opts)
		if err != nil {
			return err
		}
		prog.Step("simulate", app, 3, 3, time.Since(phase))
		s := res.Stats
		fmt.Printf("lookups=%d full-hits=%d partial-hits=%d misses=%d\n", s.Lookups, s.FullHits, s.PartialHits, s.Misses)
		fmt.Printf("uops requested=%d hit=%d missed=%d  uop-miss-rate=%.4f\n", s.UopsRequested, s.UopsHit, s.UopsMissed, s.UopMissRate())
		fmt.Printf("insertions=%d entries-written=%d bypasses=%d evictions=%d invalidations=%d\n",
			s.Insertions, s.EntriesWritten, s.Bypasses, s.Evictions, s.Invalidations)
		if res.FURBYS != nil {
			f := res.FURBYS
			fmt.Printf("furbys: victim-coverage=%.2f%% bypass-rate=%.2f%%\n",
				100*f.VictimCoverage(), 100*float64(f.Bypasses)/float64(max64(f.InsertAttempts, 1)))
		}
	case "timing":
		var prof *profiles.Profile
		if pol == "furbys" || pol == "thermometer" {
			phase := time.Now()
			prof = profiles.Collect(pws, cfg.UopCache, profiles.SourceFLACK)
			prog.Step("profile", app, 2, 3, time.Since(phase))
		}
		phase := time.Now()
		res, err := core.RunTimingByNameObserved(pol, blks, pws, cfg, prof, tel)
		if err != nil {
			return err
		}
		prog.Step("simulate", app, 3, 3, time.Since(phase))
		fr := res.Frontend
		fmt.Printf("instructions=%d uops=%d cycles=%d IPC=%.4f\n", fr.Instructions, fr.Uops, fr.Cycles, fr.IPC())
		fmt.Printf("branch MPKI=%.2f (mispredicts=%d)\n", fr.Branch.MPKI(), fr.Branch.Mispredicts())
		fmt.Printf("uop-miss-rate=%.4f icache-misses=%d switches=%d\n",
			fr.UopCache.UopMissRate(), fr.Events.ICacheMisses, fr.Events.Switches)
		b := res.Power
		fmt.Printf("energy (pJ): decoder=%.0f icache=%.0f uop$=%.0f backend=%.0f static=%.0f total=%.0f\n",
			b.Decoder, b.ICache, b.UopCache, b.Backend, b.Static, b.Total())
		fmt.Printf("performance-per-watt=%.4g instructions/J\n", res.PPW)
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	return nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
