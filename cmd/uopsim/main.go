// Command uopsim runs one application under one replacement policy and
// prints micro-op cache statistics (behaviour mode) or IPC and power
// (timing mode).
//
// Usage:
//
//	uopsim -app kafka -policy furbys [-mode behavior|timing] [-blocks N]
//	       [-input N] [-icache] [-zen4]
//	       [-telemetry FILE] [-events FILE -sample N] [-pprof ADDR] [-progress]
//	       [-inspect] [-inspect-window N] [-inspect-csv FILE] [-trace-out FILE]
//	       [-serve ADDR]
//
// -inspect (behaviour mode) classifies every eviction as justified,
// premature, or FLACK-divergent and prints the attribution summary with a
// per-reason breakdown; -inspect-csv also writes the attribution table.
// -trace-out exports the run's phase spans as Chrome trace-event JSON.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"uopsim/internal/core"
	"uopsim/internal/inspect"
	"uopsim/internal/offline"
	"uopsim/internal/profiles"
	"uopsim/internal/telemetry"
	"uopsim/internal/trace"
	"uopsim/internal/workload"
)

// usageError marks a command-line mistake: exit code 2 instead of 1.
type usageError struct{ err error }

func (e usageError) Error() string { return e.err.Error() }

func main() {
	os.Exit(runMain(os.Args[1:], os.Stdout, os.Stderr))
}

func runMain(args []string, stdout, stderr io.Writer) int {
	err := run(args, stdout, stderr)
	switch {
	case err == nil:
		return 0
	case errors.Is(err, flag.ErrHelp):
		return 0
	default:
		fmt.Fprintln(stderr, "uopsim:", err)
		var ue usageError
		if errors.As(err, &ue) {
			return 2
		}
		return 1
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("uopsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		app      = fs.String("app", "kafka", "application: "+strings.Join(workload.Names(), ", "))
		traceF   = fs.String("trace", "", "trace file from tracegen (overrides -app/-blocks/-input)")
		pol      = fs.String("policy", "lru", "replacement policy: "+strings.Join(append(core.PolicyNames(), core.OfflineNames()...), ", "))
		mode     = fs.String("mode", "behavior", "simulation mode: behavior or timing")
		blocks   = fs.Int("blocks", 100000, "dynamic blocks to simulate")
		input    = fs.Int("input", 0, "input variant (cross-validation inputs are 1, 2, ...)")
		icache   = fs.Bool("icache", false, "model the inclusive L1i (behavior mode); default is a perfect icache")
		zen4     = fs.Bool("zen4", false, "use the Zen4 configuration instead of Zen3")
		progress = fs.Bool("progress", false, "print phase status lines to stderr")

		inspectOn  = fs.Bool("inspect", false, "classify every eviction (justified/premature/FLACK-divergent) and print the attribution (behavior mode)")
		inspWindow = fs.Int("inspect-window", 0, "premature-eviction window in lookups for -inspect (0 = default 4096)")
		inspCSV    = fs.String("inspect-csv", "", "also write the -inspect attribution table to `FILE`")
		traceOut   = fs.String("trace-out", "", "write a Chrome trace-event span trace to `FILE` (load in Perfetto)")
	)
	var obs telemetry.CLI
	obs.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return usageError{err}
	}
	if *mode != "behavior" && *mode != "timing" {
		return usageError{fmt.Errorf("unknown mode %q (want behavior or timing)", *mode)}
	}
	if *blocks <= 0 {
		return usageError{fmt.Errorf("-blocks must be positive (got %d)", *blocks)}
	}
	if *inspectOn && *mode != "behavior" {
		return usageError{errors.New("-inspect requires -mode behavior")}
	}
	if *inspWindow < 0 {
		return usageError{fmt.Errorf("-inspect-window must be >= 0 (got %d)", *inspWindow)}
	}
	if err := obs.Start(); err != nil {
		return err
	}
	intro := introspection{enabled: *inspectOn, window: *inspWindow, csv: *inspCSV, traceOut: *traceOut}
	err := simulate(*app, *traceF, *pol, *mode, *blocks, *input, *icache, *zen4, *progress, intro, &obs, stdout, stderr)
	if cerr := obs.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// introspection bundles the -inspect/-trace-out options.
type introspection struct {
	enabled  bool
	window   int
	csv      string
	traceOut string
}

func simulate(app, traceFile, pol, mode string, blocks, input int, icache, zen4, progress bool, intro introspection, obs *telemetry.CLI, stdout, stderr io.Writer) error {
	cfg := core.DefaultConfig()
	if zen4 {
		cfg = core.Zen4Config()
	}
	var prog *telemetry.Progress
	if progress {
		prog = telemetry.NewProgress(stderr)
	}
	tel := core.Telemetry{Metrics: obs.Registry}
	if obs.Sink != nil {
		tel.Events = obs.Sink
	}
	var spans *inspect.SpanLog
	if intro.traceOut != "" {
		spans = inspect.NewSpanLog()
	}
	var col *inspect.Collector
	if intro.enabled {
		// The collector tees to the -events sink (if any), so both can run.
		col = inspect.NewCollector()
		col.Next = tel.Events
		tel.Events = col
	}
	var blks []trace.Block
	var pws []trace.PW
	var err error
	start := time.Now()
	traceSpan := spans.Begin("phase", "trace")
	if traceFile != "" {
		f, err := os.Open(traceFile)
		if err != nil {
			return err
		}
		blks, err = trace.ReadBlocks(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		app = traceFile
		pws = trace.FormPWs(blks, 0)
	} else {
		blks, pws, err = core.TraceFor(app, blocks, input)
		if err != nil {
			return err
		}
	}
	traceSpan.End()
	prog.Step("trace", app, 1, 3, time.Since(start))
	fmt.Fprintf(stdout, "app=%s policy=%s mode=%s blocks=%d pw-lookups=%d config=%s\n",
		app, pol, mode, len(blks), len(pws), cfg.Name)

	switch mode {
	case "behavior":
		phase := time.Now()
		simSpan := spans.Begin("phase", "simulate").Arg("policy", pol)
		opts := core.BehaviorOptions{WithICache: icache, Telemetry: tel}
		res, err := core.RunBehaviorByName(pol, pws, cfg, opts)
		simSpan.End()
		if err != nil {
			return err
		}
		prog.Step("simulate", app, 3, 3, time.Since(phase))
		s := res.Stats
		fmt.Fprintf(stdout, "lookups=%d full-hits=%d partial-hits=%d misses=%d\n", s.Lookups, s.FullHits, s.PartialHits, s.Misses)
		fmt.Fprintf(stdout, "uops requested=%d hit=%d missed=%d  uop-miss-rate=%.4f\n", s.UopsRequested, s.UopsHit, s.UopsMissed, s.UopMissRate())
		fmt.Fprintf(stdout, "insertions=%d entries-written=%d bypasses=%d evictions=%d invalidations=%d\n",
			s.Insertions, s.EntriesWritten, s.Bypasses, s.Evictions, s.Invalidations)
		if res.FURBYS != nil {
			f := res.FURBYS
			fmt.Fprintf(stdout, "furbys: victim-coverage=%.2f%% bypass-rate=%.2f%%\n",
				100*f.VictimCoverage(), 100*float64(f.Bypasses)/float64(max64(f.InsertAttempts, 1)))
		}
		if col != nil {
			if err := reportAttribution(app, pol, pws, cfg, col, intro, s.Evictions, spans, stdout); err != nil {
				return err
			}
		}
	case "timing":
		var prof *profiles.Profile
		if pol == "furbys" || pol == "thermometer" {
			phase := time.Now()
			profSpan := spans.Begin("phase", "profile")
			prof = profiles.Collect(pws, cfg.UopCache, profiles.SourceFLACK)
			profSpan.End()
			prog.Step("profile", app, 2, 3, time.Since(phase))
		}
		phase := time.Now()
		simSpan := spans.Begin("phase", "simulate").Arg("policy", pol)
		res, err := core.RunTimingByNameObserved(pol, blks, pws, cfg, prof, tel)
		simSpan.End()
		if err != nil {
			return err
		}
		prog.Step("simulate", app, 3, 3, time.Since(phase))
		fr := res.Frontend
		fmt.Fprintf(stdout, "instructions=%d uops=%d cycles=%d IPC=%.4f\n", fr.Instructions, fr.Uops, fr.Cycles, fr.IPC())
		fmt.Fprintf(stdout, "branch MPKI=%.2f (mispredicts=%d)\n", fr.Branch.MPKI(), fr.Branch.Mispredicts())
		fmt.Fprintf(stdout, "uop-miss-rate=%.4f icache-misses=%d switches=%d\n",
			fr.UopCache.UopMissRate(), fr.Events.ICacheMisses, fr.Events.Switches)
		b := res.Power
		fmt.Fprintf(stdout, "energy (pJ): decoder=%.0f icache=%.0f uop$=%.0f backend=%.0f static=%.0f total=%.0f\n",
			b.Decoder, b.ICache, b.UopCache, b.Backend, b.Static, b.Total())
		fmt.Fprintf(stdout, "performance-per-watt=%.4g instructions/J\n", res.PPW)
	}
	if spans != nil {
		if err := spans.WriteFile(intro.traceOut); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		fmt.Fprintf(stderr, "uopsim: span trace (%d events) written to %s\n", spans.Len(), intro.traceOut)
	}
	return nil
}

// reportAttribution classifies the collected evictions against the trace
// (divergence judged against the FLACK keep-plan), reconciles the partition
// with the run's eviction count, and prints the attribution.
func reportAttribution(app, pol string, pws []trace.PW, cfg core.Config, col *inspect.Collector, intro introspection, evictions uint64, spans *inspect.SpanLog, stdout io.Writer) error {
	sp := spans.Begin("phase", "attribute")
	dec := offline.ComputeDecisions(nil, pws, cfg.UopCache, offline.CostVC, true, 0, 0)
	a := inspect.Attribute(col.Records(), pws, inspect.Options{Window: intro.window, Keep: dec.Keep})
	a.App, a.Policy = app, pol
	sp.End()
	if a.Total != evictions {
		return fmt.Errorf("inspect: classified %d evictions but the run counted %d", a.Total, evictions)
	}
	j, p, d := a.Frac()
	fmt.Fprintf(stdout, "attribution (window=%d): evictions=%d justified=%d (%.1f%%) premature=%d (%.1f%%) divergent=%d (%.1f%%)\n",
		a.Window, a.Total, a.Justified, 100*j, a.Premature, 100*p, a.Divergent, 100*d)
	reasons := make([]string, 0, len(a.Reasons))
	for r := range a.Reasons {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	for _, r := range reasons {
		fmt.Fprintf(stdout, "  reason %-20s %d\n", r, a.Reasons[r])
	}
	if intro.csv != "" {
		if err := telemetry.AtomicWriteFile(intro.csv, 0o644, func(w io.Writer) error {
			return inspect.WriteCSV(w, []inspect.Attribution{a})
		}); err != nil {
			return fmt.Errorf("inspect: %w", err)
		}
		fmt.Fprintf(stdout, "attribution table written to %s\n", intro.csv)
	}
	return nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
