// Command profilegen runs the FURBYS offline pipeline (paper Fig. 6, STEPS
// 2–6): it reads or generates an application trace, replays it under an
// offline policy (FLACK by default), computes per-window hit rates, and
// writes the profile that NewFURBYS-based deployments consume.
//
// Usage:
//
//	profilegen -app kafka -blocks 100000 -o kafka.prof
//	profilegen -trace kafka.trace -o kafka.prof -source belady
//	           [-telemetry FILE] [-events FILE -sample N] [-pprof ADDR] [-progress]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"uopsim/internal/core"
	"uopsim/internal/profiles"
	"uopsim/internal/telemetry"
	"uopsim/internal/trace"
	"uopsim/internal/workload"
)

func main() {
	var (
		app      = flag.String("app", "", "application to generate a trace for: "+strings.Join(workload.Names(), ", "))
		traceIn  = flag.String("trace", "", "existing trace file (alternative to -app)")
		blocks   = flag.Int("blocks", 100000, "dynamic blocks when generating")
		input    = flag.Int("input", 0, "input variant when generating")
		source   = flag.String("source", "flack", "offline decision source: flack, belady, foo")
		out      = flag.String("o", "", "output profile file (required)")
		progress = flag.Bool("progress", false, "print phase status lines to stderr")
	)
	var obs telemetry.CLI
	obs.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "profilegen: -o is required")
		os.Exit(2)
	}
	var src profiles.Source
	switch *source {
	case "flack":
		src = profiles.SourceFLACK
	case "belady":
		src = profiles.SourceBelady
	case "foo":
		src = profiles.SourceFOO
	default:
		fmt.Fprintf(os.Stderr, "profilegen: unknown source %q\n", *source)
		os.Exit(2)
	}
	if err := obs.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "profilegen:", err)
		os.Exit(1)
	}
	var prog *telemetry.Progress
	if *progress {
		prog = telemetry.NewProgress(os.Stderr)
	}

	var pws []trace.PW
	start := time.Now()
	name := *app
	switch {
	case *traceIn != "":
		f, err := os.Open(*traceIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "profilegen:", err)
			os.Exit(1)
		}
		blks, err := trace.ReadBlocks(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "profilegen:", err)
			os.Exit(1)
		}
		pws = trace.FormPWs(blks, 0)
		name = *traceIn
	case *app != "":
		_, p, err := core.TraceFor(*app, *blocks, *input)
		if err != nil {
			fmt.Fprintln(os.Stderr, "profilegen:", err)
			os.Exit(1)
		}
		pws = p
	default:
		fmt.Fprintln(os.Stderr, "profilegen: need -app or -trace")
		os.Exit(2)
	}
	prog.Step("trace", name, 1, 3, time.Since(start))

	cfg := core.DefaultConfig()
	phase := time.Now()
	var events telemetry.EventSink
	if obs.Sink != nil {
		events = obs.Sink
	}
	prof := profiles.CollectObserved(pws, cfg.UopCache, src, obs.Registry, events)
	prog.Step("profile", src.String(), 2, 3, time.Since(phase))
	phase = time.Now()
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "profilegen:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := prof.Save(f); err != nil {
		fmt.Fprintln(os.Stderr, "profilegen:", err)
		os.Exit(1)
	}
	prog.Step("write", *out, 3, 3, time.Since(phase))
	if err := obs.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "profilegen:", err)
		os.Exit(1)
	}
	fmt.Printf("profiled %d lookups (%d distinct windows) with %s; wrote %s\n",
		len(pws), len(prof.Rates), src, *out)
}
