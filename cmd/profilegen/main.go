// Command profilegen runs the FURBYS offline pipeline (paper Fig. 6, STEPS
// 2–6): it reads or generates an application trace, replays it under an
// offline policy (FLACK by default), computes per-window hit rates, and
// writes the profile that NewFURBYS-based deployments consume.
//
// Usage:
//
//	profilegen -app kafka -blocks 100000 -o kafka.prof
//	profilegen -trace kafka.trace -o kafka.prof -source belady
//	           [-telemetry FILE] [-events FILE -sample N] [-pprof ADDR] [-progress]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"uopsim/internal/core"
	"uopsim/internal/profiles"
	"uopsim/internal/telemetry"
	"uopsim/internal/trace"
	"uopsim/internal/workload"
)

// usageError marks a command-line mistake: exit code 2 instead of 1.
type usageError struct{ err error }

func (e usageError) Error() string { return e.err.Error() }

func main() {
	os.Exit(runMain(os.Args[1:], os.Stdout, os.Stderr))
}

func runMain(args []string, stdout, stderr io.Writer) int {
	err := run(args, stdout, stderr)
	switch {
	case err == nil:
		return 0
	case errors.Is(err, flag.ErrHelp):
		return 0
	default:
		fmt.Fprintln(stderr, "profilegen:", err)
		var ue usageError
		if errors.As(err, &ue) {
			return 2
		}
		return 1
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("profilegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		app      = fs.String("app", "", "application to generate a trace for: "+strings.Join(workload.Names(), ", "))
		traceIn  = fs.String("trace", "", "existing trace file (alternative to -app)")
		blocks   = fs.Int("blocks", 100000, "dynamic blocks when generating")
		input    = fs.Int("input", 0, "input variant when generating")
		source   = fs.String("source", "flack", "offline decision source: flack, belady, foo")
		out      = fs.String("o", "", "output profile file (required)")
		progress = fs.Bool("progress", false, "print phase status lines to stderr")
	)
	var obs telemetry.CLI
	obs.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return usageError{err}
	}
	if *out == "" {
		return usageError{errors.New("-o is required")}
	}
	if *blocks <= 0 {
		return usageError{fmt.Errorf("-blocks must be positive (got %d)", *blocks)}
	}
	var src profiles.Source
	switch *source {
	case "flack":
		src = profiles.SourceFLACK
	case "belady":
		src = profiles.SourceBelady
	case "foo":
		src = profiles.SourceFOO
	default:
		return usageError{fmt.Errorf("unknown source %q", *source)}
	}
	if *traceIn == "" && *app == "" {
		return usageError{errors.New("need -app or -trace")}
	}
	if err := obs.Start(); err != nil {
		return err
	}
	var prog *telemetry.Progress
	if *progress {
		prog = telemetry.NewProgress(stderr)
	}

	var pws []trace.PW
	start := time.Now()
	name := *app
	if *traceIn != "" {
		blks, err := readTrace(*traceIn)
		if err != nil {
			return err
		}
		pws = trace.FormPWs(blks, 0)
		name = *traceIn
	} else {
		_, p, err := core.TraceFor(*app, *blocks, *input)
		if err != nil {
			return err
		}
		pws = p
	}
	prog.Step("trace", name, 1, 3, time.Since(start))

	cfg := core.DefaultConfig()
	phase := time.Now()
	var events telemetry.EventSink
	if obs.Sink != nil {
		events = obs.Sink
	}
	prof := profiles.CollectObserved(pws, cfg.UopCache, src, obs.Registry, events)
	prog.Step("profile", src.String(), 2, 3, time.Since(phase))
	phase = time.Now()
	if err := telemetry.AtomicWriteFile(*out, 0o644, prof.Save); err != nil {
		return err
	}
	prog.Step("write", *out, 3, 3, time.Since(phase))
	if err := obs.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "profiled %d lookups (%d distinct windows) with %s; wrote %s\n",
		len(pws), len(prof.Rates), src, *out)
	return nil
}

// readTrace loads a binary trace file, reporting Close errors too (a block
// read that hit a torn file should never pass silently).
func readTrace(path string) ([]trace.Block, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	blks, err := trace.ReadBlocks(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return blks, nil
}
