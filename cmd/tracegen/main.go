// Command tracegen emits a synthetic application trace to a binary file
// (the stand-in for the paper's Intel PT collection step).
//
// Usage:
//
//	tracegen -app postgres -blocks 200000 -input 0 -o postgres.trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"uopsim/internal/trace"
	"uopsim/internal/workload"
)

func main() {
	var (
		app    = flag.String("app", "kafka", "application: "+strings.Join(workload.Names(), ", "))
		blocks = flag.Int("blocks", 100000, "dynamic blocks to generate")
		input  = flag.Int("input", 0, "input variant")
		out    = flag.String("o", "", "output file (required)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -o is required")
		os.Exit(2)
	}
	spec, err := workload.Get(*app)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	blks := workload.GenerateSpec(spec, *blocks, *input)
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := trace.WriteBlocks(f, blks); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	pws := trace.FormPWs(blks, 0)
	fmt.Printf("wrote %d blocks (%d PW lookups) for %s input %d to %s\n",
		len(blks), len(pws), *app, *input, *out)
}
