// Command tracegen emits a synthetic application trace to a binary file
// (the stand-in for the paper's Intel PT collection step).
//
// Usage:
//
//	tracegen -app postgres -blocks 200000 -input 0 -o postgres.trace
//	         [-telemetry FILE] [-pprof ADDR] [-progress]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"uopsim/internal/telemetry"
	"uopsim/internal/trace"
	"uopsim/internal/workload"
)

// usageError marks a command-line mistake: exit code 2 instead of 1.
type usageError struct{ err error }

func (e usageError) Error() string { return e.err.Error() }

func main() {
	os.Exit(runMain(os.Args[1:], os.Stdout, os.Stderr))
}

func runMain(args []string, stdout, stderr io.Writer) int {
	err := run(args, stdout, stderr)
	switch {
	case err == nil:
		return 0
	case errors.Is(err, flag.ErrHelp):
		return 0
	default:
		fmt.Fprintln(stderr, "tracegen:", err)
		var ue usageError
		if errors.As(err, &ue) {
			return 2
		}
		return 1
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		app      = fs.String("app", "kafka", "application: "+strings.Join(workload.Names(), ", "))
		blocks   = fs.Int("blocks", 100000, "dynamic blocks to generate")
		input    = fs.Int("input", 0, "input variant")
		out      = fs.String("o", "", "output file (required)")
		progress = fs.Bool("progress", false, "print phase status lines to stderr")
	)
	var obs telemetry.CLI
	obs.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return usageError{err}
	}
	if *out == "" {
		return usageError{errors.New("-o is required")}
	}
	if *blocks <= 0 {
		return usageError{fmt.Errorf("-blocks must be positive (got %d)", *blocks)}
	}
	spec, err := workload.Get(*app)
	if err != nil {
		return usageError{err}
	}
	if err := obs.Start(); err != nil {
		return err
	}
	var prog *telemetry.Progress
	if *progress {
		prog = telemetry.NewProgress(stderr)
	}
	start := time.Now()
	blks := workload.GenerateSpec(spec, *blocks, *input)
	prog.Step("generate", *app, 1, 2, time.Since(start))
	phase := time.Now()
	if err := telemetry.AtomicWriteFile(*out, 0o644, func(w io.Writer) error {
		return trace.WriteBlocks(w, blks)
	}); err != nil {
		return err
	}
	pws := trace.FormPWs(blks, 0)
	prog.Step("write", *out, 2, 2, time.Since(phase))
	if reg := obs.Registry; reg != nil {
		reg.Counter("offline_tracegen_blocks_total").Add(uint64(len(blks)))
		reg.Counter("offline_tracegen_pws_total").Add(uint64(len(pws)))
		h := reg.Histogram("offline_tracegen_pw_uops")
		for _, pw := range pws {
			h.Observe(uint64(pw.NumUops))
		}
	}
	if sink := obs.Sink; sink != nil {
		for _, pw := range pws {
			sink.Emit(telemetry.Event{Kind: "pw", Key: pw.Start, Uops: int(pw.NumUops)})
		}
	}
	if err := obs.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %d blocks (%d PW lookups) for %s input %d to %s\n",
		len(blks), len(pws), *app, *input, *out)
	return nil
}
