// Command tracegen emits a synthetic application trace to a binary file
// (the stand-in for the paper's Intel PT collection step).
//
// Usage:
//
//	tracegen -app postgres -blocks 200000 -input 0 -o postgres.trace
//	         [-telemetry FILE] [-pprof ADDR] [-progress]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"uopsim/internal/telemetry"
	"uopsim/internal/trace"
	"uopsim/internal/workload"
)

func main() {
	var (
		app      = flag.String("app", "kafka", "application: "+strings.Join(workload.Names(), ", "))
		blocks   = flag.Int("blocks", 100000, "dynamic blocks to generate")
		input    = flag.Int("input", 0, "input variant")
		out      = flag.String("o", "", "output file (required)")
		progress = flag.Bool("progress", false, "print phase status lines to stderr")
	)
	var obs telemetry.CLI
	obs.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -o is required")
		os.Exit(2)
	}
	if err := obs.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	var prog *telemetry.Progress
	if *progress {
		prog = telemetry.NewProgress(os.Stderr)
	}
	spec, err := workload.Get(*app)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	start := time.Now()
	blks := workload.GenerateSpec(spec, *blocks, *input)
	prog.Step("generate", *app, 1, 2, time.Since(start))
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	defer f.Close()
	phase := time.Now()
	if err := trace.WriteBlocks(f, blks); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	pws := trace.FormPWs(blks, 0)
	prog.Step("write", *out, 2, 2, time.Since(phase))
	if reg := obs.Registry; reg != nil {
		reg.Counter("offline_tracegen_blocks_total").Add(uint64(len(blks)))
		reg.Counter("offline_tracegen_pws_total").Add(uint64(len(pws)))
		h := reg.Histogram("offline_tracegen_pw_uops")
		for _, pw := range pws {
			h.Observe(uint64(pw.NumUops))
		}
	}
	if sink := obs.Sink; sink != nil {
		for _, pw := range pws {
			sink.Emit(telemetry.Event{Kind: "pw", Key: pw.Start, Uops: int(pw.NumUops)})
		}
	}
	if err := obs.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d blocks (%d PW lookups) for %s input %d to %s\n",
		len(blks), len(pws), *app, *input, *out)
}
