// Command simlint runs the simulator's static-analysis suite (package
// internal/analysis) over the module: determinism, hot-path allocation,
// registry coverage, telemetry naming, and switch exhaustiveness.
//
// Usage:
//
//	simlint [-list] [-analyzers name,name] [packages]
//
// With no packages, ./... is analyzed. Diagnostics print as
// file:line:col: [analyzer] message, and any finding makes the exit status
// non-zero, so CI can run `go run ./cmd/simlint ./...` as a blocking job
// beside vet and race. Suppress a finding inline with
// `//simlint:ignore <analyzer> <reason>` — see ANALYSIS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"uopsim/internal/analysis"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list analyzers and exit")
		names = flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	)
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All()
	if *names != "" {
		analyzers = analyzers[:0:0]
		for _, n := range strings.Split(*names, ",") {
			a, ok := analysis.ByName(strings.TrimSpace(n))
			if !ok {
				fmt.Fprintf(os.Stderr, "simlint: unknown analyzer %q (try -list)\n", n)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	prog, err := analysis.Load(".", flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags := analysis.Run(prog, analyzers)
	cwd, _ := os.Getwd()
	for _, d := range diags {
		file := d.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", file, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s) in %d package(s)\n", len(diags), len(prog.Packages))
		os.Exit(1)
	}
}
