// Command simlint runs the simulator's static-analysis suite (package
// internal/analysis) over the module: determinism, hot-path allocation,
// registry coverage, telemetry naming, and switch exhaustiveness.
//
// Usage:
//
//	simlint [-list] [-analyzers name,name] [-format text|sarif] [-out file] [packages]
//
// With no packages, ./... is analyzed. Diagnostics print as
// file:line:col: [analyzer] message, and any finding makes the exit status
// non-zero, so CI can run `go run ./cmd/simlint ./...` as a blocking job
// beside vet and race. -format sarif emits a SARIF 2.1.0 log instead (rule
// catalogue, findings, and in-source suppressions with their justifications);
// -out writes either format to a file, which keeps the SARIF artifact intact
// even when findings also fail the job. Suppress a finding inline with
// `//simlint:ignore <analyzer> <reason>` — see ANALYSIS.md.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"uopsim/internal/analysis"
)

// usageError marks a command-line mistake: exit code 2 instead of 1.
type usageError struct{ err error }

func (e usageError) Error() string { return e.err.Error() }

// findingsError carries the diagnostic count: exit code 1, findings already
// printed.
type findingsError struct{ findings, packages int }

func (e findingsError) Error() string {
	return fmt.Sprintf("%d finding(s) in %d package(s)", e.findings, e.packages)
}

func main() {
	os.Exit(runMain(os.Args[1:], os.Stdout, os.Stderr))
}

func runMain(args []string, stdout, stderr io.Writer) int {
	err := run(args, stdout, stderr)
	switch {
	case err == nil:
		return 0
	case errors.Is(err, flag.ErrHelp):
		return 0
	default:
		fmt.Fprintln(stderr, "simlint:", err)
		var ue usageError
		if errors.As(err, &ue) {
			return 2
		}
		return 1
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list   = fs.Bool("list", false, "list analyzers and exit")
		names  = fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		format = fs.String("format", "text", "output format: text or sarif")
		out    = fs.String("out", "", "write output to this file instead of stdout")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return usageError{err}
	}
	if *format != "text" && *format != "sarif" {
		return usageError{fmt.Errorf("unknown format %q (text or sarif)", *format)}
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return nil
	}

	analyzers := analysis.All()
	if *names != "" {
		analyzers = analyzers[:0:0]
		for _, n := range strings.Split(*names, ",") {
			a, ok := analysis.ByName(strings.TrimSpace(n))
			if !ok {
				return usageError{fmt.Errorf("unknown analyzer %q (try -list)", n)}
			}
			analyzers = append(analyzers, a)
		}
	}

	prog, err := analysis.Load(".", fs.Args()...)
	if err != nil {
		return usageError{err}
	}
	res := analysis.RunAll(prog, analyzers)
	if err := emit(stdout, *format, *out, analyzers, res); err != nil {
		return err
	}
	if len(res.Diagnostics) > 0 {
		return findingsError{findings: len(res.Diagnostics), packages: len(prog.Packages)}
	}
	return nil
}

// emit renders the run in the requested format, to outFile when set (created
// fresh, close error surfaced — the artifact must be durable) or to stdout.
func emit(stdout io.Writer, format, outFile string, analyzers []*analysis.Analyzer, res analysis.Result) error {
	render := func(w io.Writer) error {
		if format == "sarif" {
			return analysis.WriteSARIF(w, ".", analyzers, res)
		}
		return writeText(w, res.Diagnostics)
	}
	if outFile == "" {
		return render(stdout)
	}
	f, err := os.Create(outFile)
	if err != nil {
		return err
	}
	werr := render(f)
	if cerr := f.Close(); werr == nil && cerr != nil {
		werr = fmt.Errorf("%s: %w", outFile, cerr)
	}
	return werr
}

// writeText prints the classic one-line-per-finding form, with paths
// relativized to the working directory when possible.
func writeText(w io.Writer, diags []analysis.Diagnostic) error {
	cwd, _ := os.Getwd()
	for _, d := range diags {
		file := d.Pos.Filename
		if cwd != "" {
			if rel, rerr := filepath.Rel(cwd, file); rerr == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
		}
		if _, err := fmt.Fprintf(w, "%s:%d:%d: [%s] %s\n", file, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message); err != nil {
			return err
		}
	}
	return nil
}
