package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestListAnalyzers pins the catalogue the CLI advertises: all eight
// analyzers, one line each.
func TestListAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := runMain([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d: %s", code, stderr.String())
	}
	for _, name := range []string{
		"determinism", "hotpath", "registry", "telemetry",
		"exhaustive", "lockcheck", "ctxflow", "errsink",
	} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output is missing analyzer %s:\n%s", name, stdout.String())
		}
	}
}

// TestBadFormat is a usage error (exit 2), not a finding (exit 1).
func TestBadFormat(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := runMain([]string{"-format", "yaml"}, &stdout, &stderr); code != 2 {
		t.Fatalf("-format yaml exited %d, want 2: %s", code, stderr.String())
	}
}

// TestSARIFOutput runs the real pipeline over this (clean) package and
// checks the emitted log parses as SARIF 2.1.0 with the rule catalogue
// present even when there are zero findings.
func TestSARIFOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a package")
	}
	var stdout, stderr bytes.Buffer
	if code := runMain([]string{"-format", "sarif", "."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exited %d: %s", code, stderr.String())
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []any `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &log); err != nil {
		t.Fatalf("stdout is not JSON: %v\n%s", err, stdout.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "simlint" {
		t.Errorf("unexpected SARIF envelope: %+v", log)
	}
	if got := len(log.Runs[0].Tool.Driver.Rules); got != 9 { // 8 analyzers + simlint pseudo-rule
		t.Errorf("rule catalogue has %d entries, want 9", got)
	}
	if len(log.Runs[0].Results) != 0 {
		t.Errorf("expected a clean run, got %d results", len(log.Runs[0].Results))
	}
}

// TestOutFile proves -out lands the artifact on disk instead of stdout.
func TestOutFile(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a package")
	}
	path := filepath.Join(t.TempDir(), "simlint.sarif")
	var stdout, stderr bytes.Buffer
	if code := runMain([]string{"-format", "sarif", "-out", path, "."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exited %d: %s", code, stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("stdout should be empty with -out, got %q", stdout.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("artifact not written: %v", err)
	}
	var log map[string]any
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("artifact is not JSON: %v", err)
	}
	if log["version"] != "2.1.0" {
		t.Errorf("artifact version = %v, want 2.1.0", log["version"])
	}
}
