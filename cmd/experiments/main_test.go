package main

import (
	"errors"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestParseArgsValidation is the up-front CLI contract: every malformed
// invocation is rejected as a usage error (exit status 2) before any
// simulation work starts.
func TestParseArgsValidation(t *testing.T) {
	tmp := t.TempDir()
	cases := []struct {
		name    string
		args    []string
		wantErr string // substring of the usage error; "" = must parse
	}{
		{"no ids", []string{}, "no experiment ids"},
		{"unknown id", []string{"fig999"}, `unknown experiment "fig999"`},
		{"unknown flag", []string{"-nope", "fig8"}, "flag provided but not defined"},
		{"negative parallel", []string{"-parallel", "-2", "fig8"}, "-parallel must be >= 0"},
		{"negative retries", []string{"-retries", "-1", "fig8"}, "-retries must be >= 0"},
		{"zero blocks", []string{"-blocks", "0", "fig8"}, "-blocks must be positive"},
		{"zero sample", []string{"-events", filepath.Join(tmp, "e.jsonl"), "-sample", "0", "fig8"}, "-sample must be positive"},
		{"bad fault spec", []string{"-faultinject", "nonsense", "fig8"}, "not SITE:HITS:MODE"},
		{"bad fault mode", []string{"-faultinject", "a:1:kaboom", "fig8"}, "unknown mode"},
		{"unwritable output dir", []string{"-csv", filepath.Join(tmp, "f.csv", "sub"), "fig8"}, "output dir"},
		{"resume missing dir", []string{"-resume", filepath.Join(tmp, "absent"), "fig8"}, "-resume"},
		{"resume not a dir", []string{"-resume", filepath.Join(tmp, "f.csv"), "fig8"}, "not a directory"},

		{"ok single", []string{"fig8"}, ""},
		{"ok all", []string{"all"}, ""},
		{"ok flags", []string{"-parallel", "4", "-retries", "2", "-strict", "-faultinject", "*:3:panic", "fig8", "tab2"}, ""},
		{"ok list without ids", []string{"-list"}, ""},
	}
	// The "not a directory" case needs the file to exist.
	if err := writeFile(filepath.Join(tmp, "f.csv"), "x"); err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			o, err := parseArgs(c.args, io.Discard)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("parseArgs(%v) = %v, want success", c.args, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("parseArgs(%v) succeeded (options %+v), want error containing %q", c.args, o, c.wantErr)
			}
			var ue usageError
			if !errors.As(err, &ue) {
				t.Fatalf("parseArgs(%v) = %v (%T), want a usageError", c.args, err, err)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("parseArgs(%v) = %q, want it to contain %q", c.args, err, c.wantErr)
			}
		})
	}
}

func TestParseArgsValues(t *testing.T) {
	o, err := parseArgs([]string{"-parallel", "3", "-retries", "2", "-strict", "-blocks", "5000", "fig8", "tab2"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.par != 3 || o.retries != 2 || !o.strict || o.blocks != 5000 {
		t.Errorf("options = %+v", o)
	}
	if len(o.ids) != 2 || o.ids[0] != "fig8" || o.ids[1] != "tab2" {
		t.Errorf("ids = %v", o.ids)
	}
	if o.fault != nil {
		t.Error("fault injector built without -faultinject")
	}
}

func TestParseArgsAllExpands(t *testing.T) {
	o, err := parseArgs([]string{"all"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(o.ids) < 20 {
		t.Errorf("'all' expanded to only %d ids", len(o.ids))
	}
}

func TestParseArgsHelp(t *testing.T) {
	if _, err := parseArgs([]string{"-h"}, io.Discard); !errors.Is(err, flag.ErrHelp) {
		t.Errorf("-h returned %v, want flag.ErrHelp", err)
	}
	if code := runMain([]string{"-h"}, io.Discard, io.Discard); code != 0 {
		t.Errorf("runMain(-h) = %d, want 0", code)
	}
	if code := runMain([]string{"fig999"}, io.Discard, io.Discard); code != 2 {
		t.Errorf("runMain(unknown id) = %d, want 2", code)
	}
	if code := runMain([]string{"-list"}, io.Discard, io.Discard); code != 0 {
		t.Errorf("runMain(-list) = %d, want 0", code)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
