package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uopsim/internal/telemetry"
)

// TestColdWarmCacheEquivalence is the artifact cache's end-to-end contract:
// a small figure campaign run with -cache-dir cold (empty cache), then warm
// (same cache), then with no cache at all, must emit byte-identical CSVs —
// the cache changes only how fast artifacts materialize. The warm run must
// actually be served from the cache: plan_cache_hit_total > 0 and the
// manifest's cache block records the traffic.
func TestColdWarmCacheEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three small campaigns")
	}
	tmp := t.TempDir()
	cacheDir := filepath.Join(tmp, "cache")
	ids := []string{"tab2", "fig10"}
	campaign := func(label string, cached bool) (csvDir, metricsPath string) {
		t.Helper()
		csvDir = filepath.Join(tmp, label)
		metricsPath = filepath.Join(tmp, label+".metrics")
		args := []string{
			"-blocks", "2500", "-apps", "kafka,postgres", "-quiet",
			"-csv", csvDir, "-telemetry", metricsPath,
		}
		if cached {
			args = append(args, "-cache-dir", cacheDir)
		}
		args = append(args, ids...)
		if code := runMain(args, io.Discard, os.Stderr); code != 0 {
			t.Fatalf("%s campaign exited %d", label, code)
		}
		return csvDir, metricsPath
	}

	coldDir, _ := campaign("cold", true)
	warmDir, warmMetrics := campaign("warm", true)
	plainDir, _ := campaign("plain", false)

	for _, id := range ids {
		cold := readFileT(t, filepath.Join(coldDir, id+".csv"))
		warm := readFileT(t, filepath.Join(warmDir, id+".csv"))
		plain := readFileT(t, filepath.Join(plainDir, id+".csv"))
		if !bytes.Equal(cold, warm) {
			t.Errorf("%s.csv: cold and warm runs differ", id)
		}
		if !bytes.Equal(cold, plain) {
			t.Errorf("%s.csv: cached and uncached runs differ", id)
		}
	}

	// The warm run must have been served from the cache.
	metrics := string(readFileT(t, warmMetrics))
	for _, counter := range []string{"plan_cache_hit_total", "trace_cache_hit_total"} {
		if !counterPositive(metrics, counter) {
			t.Errorf("warm run: %s not positive in metrics:\n%s", counter, metrics)
		}
	}

	// The manifests record cache provenance: dir plus per-kind traffic —
	// misses cold, hits warm.
	coldMan := readManifest(t, filepath.Join(coldDir, "run.json"))
	warmMan := readManifest(t, filepath.Join(warmDir, "run.json"))
	if coldMan.Cache == nil || warmMan.Cache == nil {
		t.Fatal("cached runs did not record a manifest cache block")
	}
	if coldMan.Cache.Dir != cacheDir {
		t.Errorf("cold manifest cache dir = %q, want %q", coldMan.Cache.Dir, cacheDir)
	}
	// Cold: every first use of a key misses (a second use inside the same
	// run may already hit the entry the first one stored). Warm: everything
	// is served from the cache — hits only, not a single solve or generate.
	if k := coldMan.Cache.Kinds["plan"]; k.Misses == 0 {
		t.Errorf("cold plan traffic = %+v, want misses", k)
	}
	if k := warmMan.Cache.Kinds["plan"]; k.Hits == 0 || k.Misses != 0 {
		t.Errorf("warm plan traffic = %+v, want hits only", k)
	}
	if k := warmMan.Cache.Kinds["trace"]; k.Hits == 0 || k.Misses != 0 {
		t.Errorf("warm trace traffic = %+v, want hits only", k)
	}
	plainMan := readManifest(t, filepath.Join(plainDir, "run.json"))
	if plainMan.Cache != nil {
		t.Error("uncached run recorded a cache block")
	}
}

func readFileT(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func readManifest(t *testing.T, path string) *telemetry.RunManifest {
	t.Helper()
	var m telemetry.RunManifest
	if err := json.Unmarshal(readFileT(t, path), &m); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return &m
}

// counterPositive reports whether a Prometheus-text counter has a value
// greater than zero.
func counterPositive(metrics, name string) bool {
	for _, line := range strings.Split(metrics, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name && fields[1] != "0" {
			return true
		}
	}
	return false
}
