// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments [-blocks N] [-apps a,b,c] [-csv dir] [-md file] fig8 fig10 ...
//	experiments all
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"uopsim/internal/experiments"
	"uopsim/internal/plot"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list experiment ids and exit")
		blocks = flag.Int("blocks", 60000, "dynamic blocks per application trace")
		apps   = flag.String("apps", "", "comma-separated app subset (default: all 11)")
		csvDir = flag.String("csv", "", "directory to write per-experiment CSV files")
		svgDir = flag.String("svg", "", "directory to write per-experiment SVG figures")
		check  = flag.Bool("check", false, "verify the paper's qualitative claims against each table")
		mdFile = flag.String("md", "", "file to append markdown tables to (default stdout only)")
		report = flag.String("report", "", "file to write the paper-vs-measured report (summary + checks + tables)")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	ids := flag.Args()
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "experiments: no experiment ids given (try -list or 'all')")
		os.Exit(2)
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = experiments.IDs()
	}

	ctx := experiments.NewContext(*blocks)
	if *apps != "" {
		ctx.Apps = strings.Split(*apps, ",")
	}

	var md *os.File
	if *mdFile != "" {
		f, err := os.OpenFile(*mdFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		md = f
	}

	failures := 0
	var allTables []*experiments.Table
	var allChecks []experiments.CheckResult
	for _, id := range ids {
		run, ok := experiments.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", id)
			os.Exit(2)
		}
		start := time.Now()
		tbl, err := run(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("== %s (%s) ==\n", id, time.Since(start).Round(time.Millisecond))
		if err := tbl.Markdown(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if md != nil {
			if err := tbl.Markdown(md); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
		allTables = append(allTables, tbl)
		if *check || *report != "" {
			res := experiments.Check(tbl)
			allChecks = append(allChecks, res)
			if *check {
				for _, p := range res.Passed {
					fmt.Printf("CHECK PASS %s: %s\n", id, p)
				}
				for _, f := range res.Failed {
					fmt.Printf("CHECK FAIL %s: %s\n", id, f)
					failures++
				}
			}
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			f, err := os.Create(filepath.Join(*csvDir, id+".csv"))
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			if err := tbl.CSV(f); err != nil {
				f.Close()
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			f.Close()
		}
		if *svgDir != "" {
			if err := os.MkdirAll(*svgDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			svg, ok := plot.RenderTable(plot.TableData{
				Name: tbl.Name, Title: tbl.Title, Columns: tbl.Columns, Rows: tbl.Rows,
			})
			if ok {
				if err := os.WriteFile(filepath.Join(*svgDir, id+".svg"), []byte(svg), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, "experiments:", err)
					os.Exit(1)
				}
			}
		}
	}
	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if err := experiments.WriteReport(f, allTables, allChecks); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		f.Close()
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d claim(s) failed\n", failures)
		os.Exit(1)
	}
}
