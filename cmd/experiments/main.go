// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments [-blocks N] [-apps a,b,c] [-csv dir] [-md file] fig8 fig10 ...
//	experiments [-parallel N] [-quiet] [-manifest run.json] [-telemetry FILE]
//	            [-events FILE] [-pprof ADDR] all
//	experiments [-resume dir] [-retries N] [-strict] [-faultinject SPEC] all
//	experiments [-cache-dir dir] all
//	experiments [-inspect lru,furbys] [-inspect-window N] [-trace-out t.json]
//	            [-serve ADDR] fig8
//
// -parallel N runs up to N heavy (experiment, app) cells concurrently
// (0 = GOMAXPROCS); output is byte-identical at any worker count, and
// -parallel 1 reproduces the serial schedule exactly. Progress lines
// ([fig8] kafka 3/11 1.2s) stream to stderr unless -quiet. A run manifest
// (configuration, build info, worker count, per-figure and per-app
// wall-clock, failures, status) is written next to the CSV/SVG output, or to
// -manifest. Any failed experiment or write makes the exit status non-zero,
// but later experiments still run.
//
// Resilience: SIGINT/SIGTERM drains the run gracefully — cells in flight
// finish, queued work is abandoned, completed results are flushed, and the
// manifest is written with status "interrupted" (exit status 130). Every
// completed cell is journaled to checkpoint.jsonl in the -csv (or -svg)
// directory; -resume DIR reloads that journal and skips the journaled
// cells, producing byte-identical output to an uninterrupted run. A cell
// that fails or panics is retried -retries times and then degrades to a
// marked-missing table entry recorded in the manifest; -strict restores
// fail-fast behaviour. -faultinject SITE:HITS:MODE (see internal/faultinject)
// injects deterministic cell failures for testing these paths.
//
// -cache-dir DIR enables a content-addressed on-disk cache for generated
// block traces and solved FLACK keep-plans. Entries are keyed by a SHA-256
// over every input that determines them (plus a format version), so a warm
// cache is byte-identical to a cold run — it only skips the workload
// generation and min-cost-flow solves. Traffic is recorded in the manifest
// (cache block) and the trace_cache_*/plan_cache_* counters.
//
// Introspection: -inspect POLICIES replays each app under the named policies
// after the experiments finish, classifies every eviction (justified /
// premature / FLACK-divergent), and writes attribution.csv,
// attribution_rd.csv and attribution.svg next to the run's outputs (indexed
// in the manifest). -trace-out FILE exports experiment/cell/singleflight
// spans as Chrome trace-event JSON for Perfetto. -serve ADDR exposes the
// live run dashboard at /debug/status (JSON) and /debug/status/html, plus
// /metrics and pprof, while the campaign runs.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"uopsim/internal/artifact"
	"uopsim/internal/experiments"
	"uopsim/internal/faultinject"
	"uopsim/internal/flow"
	"uopsim/internal/inspect"
	"uopsim/internal/parallel"
	"uopsim/internal/plot"
	"uopsim/internal/telemetry"
)

func main() {
	os.Exit(runMain(os.Args[1:], os.Stdout, os.Stderr))
}

// options is the parsed and validated command line.
type options struct {
	list      bool
	blocks    int
	apps      string
	csvDir    string
	svgDir    string
	check     bool
	mdFile    string
	report    string
	par       int
	quiet     bool
	manifest  string
	resume    string
	retries   int
	strict    bool
	faultSpec string
	cacheDir  string

	inspectPolicies string
	inspectWindow   int
	traceOut        string

	obs      telemetry.CLI
	fault    *faultinject.Injector
	ids      []string
	policies []string
}

// behaviorNames are the policy names RunBehaviorByName accepts (-inspect
// validates against them up front instead of failing mid-campaign).
var behaviorNames = []string{
	"lru", "random", "srrip", "drrip", "ship++", "ghrp", "mockingjay",
	"thermometer", "furbys", "belady", "foo", "flack",
}

// usageError marks a bad invocation: reported with usage conventions and
// exit status 2, distinct from operational failures (exit 1).
type usageError struct{ err error }

func (u usageError) Error() string { return u.err.Error() }

// parseArgs parses and validates the command line up front, before any
// simulation work: flag types, worker/retry/sample ranges, experiment ids,
// fault-injection spec syntax, and output-directory writability all fail
// fast with a usage error instead of wasting a run.
func parseArgs(args []string, stderr io.Writer) (*options, error) {
	o := &options{}
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.BoolVar(&o.list, "list", false, "list experiment ids and exit")
	fs.IntVar(&o.blocks, "blocks", 60000, "dynamic blocks per application trace")
	fs.StringVar(&o.apps, "apps", "", "comma-separated app subset (default: all 11)")
	fs.StringVar(&o.csvDir, "csv", "", "directory to write per-experiment CSV files")
	fs.StringVar(&o.svgDir, "svg", "", "directory to write per-experiment SVG figures")
	fs.BoolVar(&o.check, "check", false, "verify the paper's qualitative claims against each table")
	fs.StringVar(&o.mdFile, "md", "", "file to append markdown tables to (default stdout only)")
	fs.StringVar(&o.report, "report", "", "file to write the paper-vs-measured report (summary + checks + tables)")
	fs.IntVar(&o.par, "parallel", 0, "max concurrent (experiment, app) cells; 0 = GOMAXPROCS, 1 = serial schedule")
	fs.BoolVar(&o.quiet, "quiet", false, "suppress per-app progress lines on stderr")
	fs.StringVar(&o.manifest, "manifest", "", "write the run manifest to `FILE` (default: run.json in -csv or -svg dir)")
	fs.StringVar(&o.resume, "resume", "", "resume from the checkpoint journal in `DIR` (written by a previous -csv/-svg run)")
	fs.IntVar(&o.retries, "retries", 0, "extra attempts for a failed or panicking cell before it counts as failed")
	fs.BoolVar(&o.strict, "strict", false, "fail an experiment on the first exhausted cell instead of degrading to a marked-missing entry")
	fs.StringVar(&o.faultSpec, "faultinject", "", "inject cell faults: `SITE:HITS:MODE` (testing; see internal/faultinject)")
	fs.StringVar(&o.cacheDir, "cache-dir", "", "content-addressed artifact cache `DIR` for generated traces and FLACK keep-plans (default: no cache)")
	fs.StringVar(&o.inspectPolicies, "inspect", "", "run eviction attribution for the comma-separated `POLICIES` after the experiments (e.g. lru,srrip,furbys)")
	fs.IntVar(&o.inspectWindow, "inspect-window", 0, "premature-eviction window in lookups for -inspect (0 = default 4096)")
	fs.StringVar(&o.traceOut, "trace-out", "", "write a Chrome trace-event span trace to `FILE` (load in Perfetto or chrome://tracing)")
	o.obs.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil, err
		}
		return nil, usageError{err}
	}
	o.ids = fs.Args()
	if o.list {
		return o, nil
	}
	if len(o.ids) == 0 {
		return nil, usageError{errors.New("no experiment ids given (try -list or 'all')")}
	}
	if len(o.ids) == 1 && o.ids[0] == "all" {
		o.ids = experiments.IDs()
	}
	for _, id := range o.ids {
		if _, ok := experiments.Lookup(id); !ok {
			return nil, usageError{fmt.Errorf("unknown experiment %q", id)}
		}
	}
	if o.blocks <= 0 {
		return nil, usageError{fmt.Errorf("-blocks must be positive (got %d)", o.blocks)}
	}
	if o.par < 0 {
		return nil, usageError{fmt.Errorf("-parallel must be >= 0 (got %d; 0 selects GOMAXPROCS)", o.par)}
	}
	if o.retries < 0 {
		return nil, usageError{fmt.Errorf("-retries must be >= 0 (got %d)", o.retries)}
	}
	if o.obs.Sample <= 0 {
		return nil, usageError{fmt.Errorf("-sample must be positive (got %d)", o.obs.Sample)}
	}
	if o.faultSpec != "" {
		inj, err := faultinject.New(o.faultSpec)
		if err != nil {
			return nil, usageError{err}
		}
		o.fault = inj
	}
	if o.inspectWindow < 0 {
		return nil, usageError{fmt.Errorf("-inspect-window must be >= 0 (got %d)", o.inspectWindow)}
	}
	if o.inspectPolicies != "" {
		known := make(map[string]bool, len(behaviorNames))
		for _, n := range behaviorNames {
			known[n] = true
		}
		for _, p := range strings.Split(o.inspectPolicies, ",") {
			p = strings.TrimSpace(p)
			if p == "" {
				continue
			}
			if !known[p] {
				return nil, usageError{fmt.Errorf("-inspect: unknown policy %q (known: %s)", p, strings.Join(behaviorNames, ","))}
			}
			o.policies = append(o.policies, p)
		}
		if len(o.policies) == 0 {
			return nil, usageError{errors.New("-inspect: empty policy list")}
		}
	}
	for _, dir := range []string{o.csvDir, o.svgDir} {
		if dir == "" {
			continue
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, usageError{fmt.Errorf("output dir: %w", err)}
		}
	}
	if o.resume != "" {
		st, err := os.Stat(o.resume)
		if err != nil {
			return nil, usageError{fmt.Errorf("-resume: %w", err)}
		}
		if !st.IsDir() {
			return nil, usageError{fmt.Errorf("-resume %s: not a directory", o.resume)}
		}
	}
	return o, nil
}

// runMain is the single exit point: 0 on success, 1 on operational failure,
// 2 on a bad invocation, 130 when the run was interrupted and drained.
func runMain(args []string, stdout, stderr io.Writer) int {
	o, err := parseArgs(args, stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		fmt.Fprintln(stderr, "experiments:", err)
		var ue usageError
		if errors.As(err, &ue) {
			return 2
		}
		return 1
	}
	if o.list {
		for _, id := range experiments.IDs() {
			fmt.Fprintln(stdout, id)
		}
		return 0
	}
	interrupted, err := run(o, args, stdout, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "experiments:", err)
		if interrupted {
			return 130
		}
		return 1
	}
	if interrupted {
		return 130
	}
	return 0
}

// run executes the campaign. It reports whether the run was interrupted
// (drained after SIGINT/SIGTERM or a context cancellation) and the first
// fatal or aggregate error.
func run(o *options, args []string, stdout, stderr io.Writer) (interrupted bool, err error) {
	if err := o.obs.Start(); err != nil {
		return false, err
	}
	if o.obs.Registry != nil {
		flow.RegisterMetrics(o.obs.Registry)
	}
	hw := telemetry.StartHeapWatermark(0)

	// SIGINT/SIGTERM cancels the campaign context: cells in flight finish,
	// queued work is abandoned, and everything below the RunMany call —
	// report, manifest, telemetry flush — still runs.
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ectx := experiments.NewContext(o.blocks)
	if o.apps != "" {
		ectx.Apps = strings.Split(o.apps, ",")
	}
	ectx.Workers = o.par
	ectx.Ctx = sigCtx
	ectx.Retries = o.retries
	ectx.Degrade = !o.strict
	ectx.Fault = o.fault
	ectx.Telemetry.Metrics = o.obs.Registry
	if o.obs.Sink != nil {
		ectx.Telemetry.Events = o.obs.Sink
	}
	if !o.quiet {
		ectx.Progress = telemetry.NewProgress(stderr)
	}
	if o.fault != nil {
		o.fault.Arm(o.obs.Registry)
	}
	// The artifact cache is strictly additive: every entry is content-keyed
	// over the inputs that determine it, so a warm cache changes only how
	// fast traces and keep-plans materialize, never what they contain.
	var store *artifact.Store
	if o.cacheDir != "" {
		s, serr := artifact.Open(o.cacheDir)
		if serr != nil {
			return false, serr
		}
		if o.obs.Registry != nil {
			s.AttachMetrics(o.obs.Registry)
		}
		ectx.Artifacts = s
		store = s
	}
	if o.traceOut != "" {
		ectx.Spans = inspect.NewSpanLog()
	}
	// The live dashboard (-serve) polls the campaign state through this
	// snapshot; installing it before RunMany means mid-campaign scrapes see
	// cells and workers move in real time.
	o.obs.SetStatus(func() any { return ectx.StatusSnapshot() })

	workers := parallel.Workers(o.par)
	man := telemetry.NewRunManifest("experiments", args)
	man.Blocks = o.blocks
	man.Workers = workers
	man.Apps = ectx.AppList()
	man.Config = map[string]any{
		"blocks": o.blocks, "apps": strings.Join(ectx.AppList(), ","),
		"csv": o.csvDir, "svg": o.svgDir, "check": o.check, "parallel": workers,
		"retries": o.retries, "strict": o.strict, "resume": o.resume,
		"cache_dir": o.cacheDir,
	}
	fail := func(format string, a ...any) {
		msg := fmt.Sprintf(format, a...)
		fmt.Fprintln(stderr, "experiments: "+msg)
		man.Failures = append(man.Failures, msg)
	}

	// The checkpoint journal lives with the run's artifacts: the -resume
	// directory when resuming, else the CSV (or SVG) output directory.
	// Every completed cell is journaled; a later run pointed at the same
	// directory restores those cells instead of re-simulating them.
	journalDir := o.resume
	if journalDir == "" {
		journalDir = o.csvDir
	}
	if journalDir == "" {
		journalDir = o.svgDir
	}
	if journalDir != "" {
		hdr := experiments.CheckpointHeader{
			Version: experiments.CheckpointVersion,
			Tool:    "experiments",
			Blocks:  o.blocks,
			Apps:    ectx.AppList(),
			Build:   man.Build.Revision,
		}
		journal, jerr := experiments.OpenCheckpoint(filepath.Join(journalDir, "checkpoint.jsonl"), hdr)
		if jerr != nil {
			fail("checkpoint: %v", jerr)
		} else {
			ectx.Journal = journal
			if !o.quiet && journal.Restored() > 0 {
				fmt.Fprintf(stderr, "experiments: resuming — %d cell(s) restored from %s\n",
					journal.Restored(), filepath.Join(journalDir, "checkpoint.jsonl"))
			}
		}
	}

	var md *os.File
	if o.mdFile != "" {
		f, ferr := os.OpenFile(o.mdFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if ferr != nil {
			return false, ferr
		}
		md = f
	}

	// RunMany fans the experiments out under the shared worker budget and
	// calls emit in input order as results become ready, so stdout, the
	// markdown file and the manifest read exactly as the serial run's.
	checkFailures := 0
	var allTables []*experiments.Table
	var allChecks []experiments.CheckResult
	experiments.RunMany(ectx, o.ids, func(r experiments.RunResult) {
		id := r.ID
		fig := telemetry.FigureRun{ID: id, WallSeconds: r.WallSeconds, Apps: r.Apps, FailedCells: r.Failed}
		if r.Err != nil {
			fig.Error = r.Err.Error()
			man.Figures = append(man.Figures, fig)
			fail("%s: %v", id, r.Err)
			return
		}
		tbl := r.Table
		fig.Title = tbl.Title
		fig.Rows = len(tbl.Rows)
		man.Figures = append(man.Figures, fig)
		if len(r.Failed) > 0 {
			fail("%s: %d cell(s) failed after retries (rendered with missing entries)", id, len(r.Failed))
		}
		wall := time.Duration(r.WallSeconds * float64(time.Second))
		fmt.Fprintf(stdout, "== %s (%s) ==\n", id, wall.Round(time.Millisecond))
		if werr := tbl.Markdown(stdout); werr != nil {
			fail("%s: stdout: %v", id, werr)
		}
		if md != nil {
			if werr := tbl.Markdown(md); werr != nil {
				fail("%s: %s: %v", id, o.mdFile, werr)
			}
		}
		allTables = append(allTables, tbl)
		if o.check || o.report != "" {
			res := experiments.Check(tbl)
			allChecks = append(allChecks, res)
			if o.check {
				for _, p := range res.Passed {
					fmt.Fprintf(stdout, "CHECK PASS %s: %s\n", id, p)
				}
				for _, f := range res.Failed {
					fmt.Fprintf(stdout, "CHECK FAIL %s: %s\n", id, f)
					checkFailures++
				}
			}
		}
		if o.csvDir != "" {
			if werr := writeCSV(o.csvDir, id, tbl); werr != nil {
				fail("%s: %v", id, werr)
			}
		}
		if o.svgDir != "" {
			if werr := writeSVG(o.svgDir, id, tbl); werr != nil {
				fail("%s: %v", id, werr)
			}
		}
	})
	interrupted = sigCtx.Err() != nil

	// Eviction attribution runs after the campaign so its replays don't
	// compete with experiment cells for the worker budget.
	if len(o.policies) > 0 && !interrupted {
		if ierr := runInspect(o, ectx, man, stderr); ierr != nil {
			fail("inspect: %v", ierr)
		}
		interrupted = sigCtx.Err() != nil
	}
	if o.traceOut != "" {
		if werr := ectx.Spans.WriteFile(o.traceOut); werr != nil {
			fail("trace: %v", werr)
		} else {
			if man.Inspect == nil {
				man.Inspect = &telemetry.InspectArtifacts{}
			}
			man.Inspect.TraceJSON = o.traceOut
			if !o.quiet {
				fmt.Fprintf(stderr, "experiments: span trace (%d events) written to %s\n", ectx.Spans.Len(), o.traceOut)
			}
		}
	}

	if o.report != "" {
		if werr := writeReport(o.report, allTables, allChecks); werr != nil {
			fail("report: %v", werr)
		}
	}
	if checkFailures > 0 {
		fail("%d claim(s) failed", checkFailures)
	}
	if ectx.Journal != nil {
		if jerr := ectx.Journal.Err(); jerr != nil {
			fail("checkpoint: %v", jerr)
		}
		if cerr := ectx.Journal.Close(); cerr != nil {
			fail("checkpoint close: %v", cerr)
		}
		ectx.Journal = nil
	}
	// Close the markdown file before the manifest is finalized: the close
	// error is the last chance to notice a failed flush, and it belongs in
	// the manifest's failure log like any other lost output.
	if md != nil {
		if cerr := md.Close(); cerr != nil {
			fail("%s: close: %v", o.mdFile, cerr)
		}
		md = nil
	}

	switch {
	case interrupted:
		man.Status = telemetry.StatusInterrupted
	case len(man.Failures) > 0:
		man.Status = telemetry.StatusFailed
	default:
		man.Status = telemetry.StatusOK
	}
	if store != nil {
		info := &telemetry.ArtifactCacheInfo{Dir: store.Dir(), Kinds: map[string]telemetry.ArtifactCacheKind{}}
		for kind, ks := range store.Stats() {
			info.Kinds[kind] = telemetry.ArtifactCacheKind{Hits: ks.Hits, Misses: ks.Misses, Errors: ks.Errors}
		}
		man.Cache = info
	}
	man.PeakHeapAlloc = hw.Stop()
	man.Finish()
	if path := manifestPath(o.manifest, o.csvDir, o.svgDir); path != "" {
		if werr := man.WriteFile(path); werr != nil {
			return interrupted, fmt.Errorf("manifest: %w", werr)
		}
		if o.manifest != "" {
			fmt.Fprintln(stderr, "experiments: build", buildLine(man.Build))
		}
		if !o.quiet {
			fmt.Fprintln(stderr, "experiments: manifest written to", path)
		}
	}
	if cerr := o.obs.Close(); cerr != nil {
		return interrupted, cerr
	}
	if interrupted {
		return true, fmt.Errorf("interrupted: %d of %d experiment(s) completed", len(allTables), len(o.ids))
	}
	if len(man.Failures) > 0 {
		return false, fmt.Errorf("%d failure(s)", len(man.Failures))
	}
	return false, nil
}

// runInspect runs the eviction-attribution campaign and writes its
// artifacts (attribution.csv, attribution_rd.csv, attribution.svg) next to
// the run's other outputs, indexing them in the manifest.
func runInspect(o *options, ectx *experiments.Context, man *telemetry.RunManifest, stderr io.Writer) error {
	rows, err := experiments.RunAttribution(ectx, experiments.AttributionOptions{
		Policies: o.policies,
		Window:   o.inspectWindow,
	})
	if err != nil {
		return err
	}
	dir := o.csvDir
	if dir == "" {
		dir = o.svgDir
	}
	if dir == "" {
		dir = "."
	}
	ins := &telemetry.InspectArtifacts{}
	ins.Evictions, ins.Justified, ins.Premature, ins.Divergent = inspect.Totals(rows)
	csvPath := filepath.Join(dir, "attribution.csv")
	if werr := telemetry.AtomicWriteFile(csvPath, 0o644, func(w io.Writer) error {
		return inspect.WriteCSV(w, rows)
	}); werr != nil {
		return werr
	}
	ins.AttributionCSV = csvPath
	rdPath := filepath.Join(dir, "attribution_rd.csv")
	if werr := telemetry.AtomicWriteFile(rdPath, 0o644, func(w io.Writer) error {
		return inspect.WriteRDCSV(w, rows)
	}); werr != nil {
		return werr
	}
	ins.ReuseDistCSV = rdPath
	svgDir := o.svgDir
	if svgDir == "" {
		svgDir = dir
	}
	svgPath := filepath.Join(svgDir, "attribution.svg")
	svg := inspect.FractionSVG("Eviction attribution by class", rows)
	if werr := telemetry.AtomicWriteFile(svgPath, 0o644, func(w io.Writer) error {
		_, werr := io.WriteString(w, svg)
		return werr
	}); werr != nil {
		return werr
	}
	ins.AttributionSVG = svgPath
	man.Inspect = ins
	if !o.quiet {
		fmt.Fprintln(stderr, "experiments: inspect —", inspect.Summary(rows))
	}
	return nil
}

// buildLine renders the manifest's build identification (go version, VCS
// revision, dirty marker) for the -manifest status line, so a result file
// can be tied back to the exact tree that produced it.
func buildLine(b telemetry.BuildInfo) string {
	rev := b.Revision
	switch {
	case rev == "":
		rev = "revision unknown"
	case len(rev) > 12:
		rev = rev[:12]
	}
	if b.Modified {
		rev += "+dirty"
	}
	return fmt.Sprintf("%s %s (%s)", b.GoVersion, rev, b.Module)
}

// manifestPath picks where the run manifest goes: the explicit flag first,
// else next to the CSV output, else next to the SVGs, else nowhere.
func manifestPath(explicit, csvDir, svgDir string) string {
	switch {
	case explicit != "":
		return explicit
	case csvDir != "":
		return filepath.Join(csvDir, "run.json")
	case svgDir != "":
		return filepath.Join(svgDir, "run.json")
	}
	return ""
}

func writeCSV(dir, id string, tbl *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return telemetry.AtomicWriteFile(filepath.Join(dir, id+".csv"), 0o644, tbl.CSV)
}

func writeSVG(dir, id string, tbl *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	svg, ok := plot.RenderTable(plot.TableData{
		Name: tbl.Name, Title: tbl.Title, Columns: tbl.Columns, Rows: tbl.Rows,
	})
	if !ok {
		return nil
	}
	return telemetry.AtomicWriteFile(filepath.Join(dir, id+".svg"), 0o644, func(w io.Writer) error {
		_, err := io.WriteString(w, svg)
		return err
	})
}

func writeReport(path string, tables []*experiments.Table, checks []experiments.CheckResult) error {
	return telemetry.AtomicWriteFile(path, 0o644, func(w io.Writer) error {
		return experiments.WriteReport(w, tables, checks)
	})
}
