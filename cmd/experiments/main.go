// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments [-blocks N] [-apps a,b,c] [-csv dir] [-md file] fig8 fig10 ...
//	experiments [-parallel N] [-quiet] [-manifest run.json] [-telemetry FILE]
//	            [-events FILE] [-pprof ADDR] all
//
// -parallel N runs up to N heavy (experiment, app) cells concurrently
// (0 = GOMAXPROCS); output is byte-identical at any worker count, and
// -parallel 1 reproduces the serial schedule exactly. Progress lines
// ([fig8] kafka 3/11 1.2s) stream to stderr unless -quiet. A run manifest
// (configuration, build info, worker count, per-figure and per-app
// wall-clock, failures) is written next to the CSV/SVG output, or to
// -manifest. Any failed experiment or write makes the exit status non-zero,
// but later experiments still run.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"uopsim/internal/experiments"
	"uopsim/internal/parallel"
	"uopsim/internal/plot"
	"uopsim/internal/telemetry"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list experiment ids and exit")
		blocks   = flag.Int("blocks", 60000, "dynamic blocks per application trace")
		apps     = flag.String("apps", "", "comma-separated app subset (default: all 11)")
		csvDir   = flag.String("csv", "", "directory to write per-experiment CSV files")
		svgDir   = flag.String("svg", "", "directory to write per-experiment SVG figures")
		check    = flag.Bool("check", false, "verify the paper's qualitative claims against each table")
		mdFile   = flag.String("md", "", "file to append markdown tables to (default stdout only)")
		report   = flag.String("report", "", "file to write the paper-vs-measured report (summary + checks + tables)")
		par      = flag.Int("parallel", 0, "max concurrent (experiment, app) cells; 0 = GOMAXPROCS, 1 = serial schedule")
		quiet    = flag.Bool("quiet", false, "suppress per-app progress lines on stderr")
		manifest = flag.String("manifest", "", "write the run manifest to `FILE` (default: run.json in -csv or -svg dir)")
	)
	var obs telemetry.CLI
	obs.RegisterFlags(flag.CommandLine)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	ids := flag.Args()
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "experiments: no experiment ids given (try -list or 'all')")
		os.Exit(2)
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		if _, ok := experiments.Lookup(id); !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", id)
			os.Exit(2)
		}
	}
	if err := obs.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	ctx := experiments.NewContext(*blocks)
	if *apps != "" {
		ctx.Apps = strings.Split(*apps, ",")
	}
	ctx.Workers = *par
	ctx.Telemetry.Metrics = obs.Registry
	if obs.Sink != nil {
		ctx.Telemetry.Events = obs.Sink
	}
	if !*quiet {
		ctx.Progress = telemetry.NewProgress(os.Stderr)
	}

	workers := parallel.Workers(*par)
	man := telemetry.NewRunManifest("experiments", os.Args[1:])
	man.Blocks = *blocks
	man.Workers = workers
	man.Apps = ctx.AppList()
	man.Config = map[string]any{
		"blocks": *blocks, "apps": strings.Join(ctx.AppList(), ","),
		"csv": *csvDir, "svg": *svgDir, "check": *check, "parallel": workers,
	}
	fail := func(format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		fmt.Fprintln(os.Stderr, "experiments: "+msg)
		man.Failures = append(man.Failures, msg)
	}

	var md *os.File
	if *mdFile != "" {
		f, err := os.OpenFile(*mdFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		md = f
	}

	// RunMany fans the experiments out under the shared worker budget and
	// calls emit in input order as results become ready, so stdout, the
	// markdown file and the manifest read exactly as the serial run's.
	checkFailures := 0
	var allTables []*experiments.Table
	var allChecks []experiments.CheckResult
	experiments.RunMany(ctx, ids, func(r experiments.RunResult) {
		id := r.ID
		fig := telemetry.FigureRun{ID: id, WallSeconds: r.WallSeconds, Apps: r.Apps}
		if r.Err != nil {
			fig.Error = r.Err.Error()
			man.Figures = append(man.Figures, fig)
			fail("%s: %v", id, r.Err)
			return
		}
		tbl := r.Table
		fig.Title = tbl.Title
		fig.Rows = len(tbl.Rows)
		man.Figures = append(man.Figures, fig)
		wall := time.Duration(r.WallSeconds * float64(time.Second))
		fmt.Printf("== %s (%s) ==\n", id, wall.Round(time.Millisecond))
		if err := tbl.Markdown(os.Stdout); err != nil {
			fail("%s: stdout: %v", id, err)
		}
		if md != nil {
			if err := tbl.Markdown(md); err != nil {
				fail("%s: %s: %v", id, *mdFile, err)
			}
		}
		allTables = append(allTables, tbl)
		if *check || *report != "" {
			res := experiments.Check(tbl)
			allChecks = append(allChecks, res)
			if *check {
				for _, p := range res.Passed {
					fmt.Printf("CHECK PASS %s: %s\n", id, p)
				}
				for _, f := range res.Failed {
					fmt.Printf("CHECK FAIL %s: %s\n", id, f)
					checkFailures++
				}
			}
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, id, tbl); err != nil {
				fail("%s: %v", id, err)
			}
		}
		if *svgDir != "" {
			if err := writeSVG(*svgDir, id, tbl); err != nil {
				fail("%s: %v", id, err)
			}
		}
	})
	if *report != "" {
		if err := writeReport(*report, allTables, allChecks); err != nil {
			fail("report: %v", err)
		}
	}
	if checkFailures > 0 {
		fail("%d claim(s) failed", checkFailures)
	}

	man.Finish()
	if path := manifestPath(*manifest, *csvDir, *svgDir); path != "" {
		if err := man.WriteFile(path); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: manifest:", err)
			os.Exit(1)
		}
		if *manifest != "" {
			fmt.Fprintln(os.Stderr, "experiments: build", buildLine(man.Build))
		}
		if !*quiet {
			fmt.Fprintln(os.Stderr, "experiments: manifest written to", path)
		}
	}
	if err := obs.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if len(man.Failures) > 0 {
		os.Exit(1)
	}
}

// buildLine renders the manifest's build identification (go version, VCS
// revision, dirty marker) for the -manifest status line, so a result file
// can be tied back to the exact tree that produced it.
func buildLine(b telemetry.BuildInfo) string {
	rev := b.Revision
	switch {
	case rev == "":
		rev = "revision unknown"
	case len(rev) > 12:
		rev = rev[:12]
	}
	if b.Modified {
		rev += "+dirty"
	}
	return fmt.Sprintf("%s %s (%s)", b.GoVersion, rev, b.Module)
}

// manifestPath picks where the run manifest goes: the explicit flag first,
// else next to the CSV output, else next to the SVGs, else nowhere.
func manifestPath(explicit, csvDir, svgDir string) string {
	switch {
	case explicit != "":
		return explicit
	case csvDir != "":
		return filepath.Join(csvDir, "run.json")
	case svgDir != "":
		return filepath.Join(svgDir, "run.json")
	}
	return ""
}

func writeCSV(dir, id string, tbl *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, id+".csv"))
	if err != nil {
		return err
	}
	if err := tbl.CSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeSVG(dir, id string, tbl *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	svg, ok := plot.RenderTable(plot.TableData{
		Name: tbl.Name, Title: tbl.Title, Columns: tbl.Columns, Rows: tbl.Rows,
	})
	if !ok {
		return nil
	}
	return os.WriteFile(filepath.Join(dir, id+".svg"), []byte(svg), 0o644)
}

func writeReport(path string, tables []*experiments.Table, checks []experiments.CheckResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := experiments.WriteReport(f, tables, checks); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
