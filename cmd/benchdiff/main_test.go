package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: uopsim
BenchmarkUopCacheLRU-8      	    5000	    240000 ns/op	       0 B/op	       0 allocs/op
BenchmarkPWFormation-8      	    2000	    600000 ns/op	  409600 B/op	      12 allocs/op
BenchmarkFLACKSolve-8       	     100	  12000000 ns/op
BenchmarkUopCacheLRU-8      	    6000	    230000 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	uopsim	42.0s
`

func TestParse(t *testing.T) {
	snap, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(snap.Benchmarks), snap.Benchmarks)
	}
	lru, ok := snap.Benchmarks["BenchmarkUopCacheLRU"]
	if !ok {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
	// Repeated benchmark keeps the best (lowest) ns/op.
	if lru.NsPerOp != 230000 {
		t.Errorf("ns/op = %v, want best-of 230000", lru.NsPerOp)
	}
	if !lru.HasAllocs || lru.AllocsPerOp != 0 {
		t.Errorf("allocs = %+v, want measured 0", lru)
	}
	pw := snap.Benchmarks["BenchmarkPWFormation"]
	if pw.AllocsPerOp != 12 || pw.BytesPerOp != 409600 {
		t.Errorf("PWFormation = %+v", pw)
	}
	solve := snap.Benchmarks["BenchmarkFLACKSolve"]
	if solve.HasAllocs {
		t.Error("no -benchmem columns but HasAllocs set")
	}
	if solve.NsPerOp != 12000000 {
		t.Errorf("FLACKSolve ns/op = %v", solve.NsPerOp)
	}
}

func snapOf(ns float64, allocs int64) Result {
	return Result{N: 100, NsPerOp: ns, AllocsPerOp: allocs, HasAllocs: true}
}

func TestCompareThresholds(t *testing.T) {
	base := &Snapshot{Benchmarks: map[string]Result{
		"BenchmarkA": snapOf(1000, 0),
		"BenchmarkB": snapOf(1000, 4),
	}}
	cases := []struct {
		name        string
		cur         map[string]Result
		threshold   float64
		allocsTh    int64
		regressions int
	}{
		{"within-threshold", map[string]Result{
			"BenchmarkA": snapOf(1200, 0), "BenchmarkB": snapOf(900, 4),
		}, 30, 0, 0},
		{"ns-regression", map[string]Result{
			"BenchmarkA": snapOf(1400, 0), "BenchmarkB": snapOf(1000, 4),
		}, 30, 0, 1},
		{"alloc-regression", map[string]Result{
			"BenchmarkA": snapOf(1000, 1), "BenchmarkB": snapOf(1000, 4),
		}, 30, 0, 1},
		{"alloc-within-allowance", map[string]Result{
			"BenchmarkA": snapOf(1000, 1), "BenchmarkB": snapOf(1000, 4),
		}, 30, 2, 0},
		{"both-regress", map[string]Result{
			"BenchmarkA": snapOf(2000, 3), "BenchmarkB": snapOf(5000, 40),
		}, 30, 0, 4},
		{"missing-is-not-regression", map[string]Result{
			"BenchmarkA": snapOf(1000, 0),
		}, 30, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			got := Compare(base, &Snapshot{Benchmarks: tc.cur}, tc.threshold, tc.allocsTh, &out)
			if got != tc.regressions {
				t.Errorf("regressions = %d, want %d\n%s", got, tc.regressions, out.String())
			}
		})
	}
}

func TestRunMainEndToEnd(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "baseline.json")
	curPath := filepath.Join(dir, "BENCH_test.json")

	// Write the baseline from sample output.
	var out, errOut bytes.Buffer
	if code := runMain([]string{"-write", basePath}, strings.NewReader(sampleOutput), &out, &errOut); code != 0 {
		t.Fatalf("write exit = %d: %s", code, errOut.String())
	}

	// Identical run: no regressions, and -write emits the dated snapshot.
	out.Reset()
	if code := runMain([]string{"-write", curPath, "-baseline", basePath},
		strings.NewReader(sampleOutput), &out, &errOut); code != 0 {
		t.Fatalf("compare exit = %d: %s\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Errorf("output = %q", out.String())
	}

	// A slowed-down run regresses.
	slow := strings.ReplaceAll(sampleOutput, "240000 ns/op", "940000 ns/op")
	slow = strings.ReplaceAll(slow, "230000 ns/op", "930000 ns/op")
	out.Reset()
	if code := runMain([]string{"-baseline", basePath, "-threshold", "30"},
		strings.NewReader(slow), &out, &errOut); code != 1 {
		t.Fatalf("regressed run exit = %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION BenchmarkUopCacheLRU") {
		t.Errorf("output = %q", out.String())
	}

	// Comparing two snapshot files directly also works.
	out.Reset()
	if code := runMain([]string{"-baseline", basePath, "-current", curPath},
		strings.NewReader(""), &out, &errOut); code != 0 {
		t.Fatalf("file-vs-file exit = %d\n%s%s", code, out.String(), errOut.String())
	}

	// Bad invocations exit 2.
	if code := runMain(nil, strings.NewReader(""), &out, &errOut); code != 2 {
		t.Errorf("no-args exit = %d, want 2", code)
	}
	if code := runMain([]string{"-baseline", filepath.Join(dir, "nope.json")},
		strings.NewReader(sampleOutput), &out, &errOut); code != 2 {
		t.Errorf("missing-baseline exit = %d, want 2", code)
	}
}
