// Command benchdiff turns `go test -bench` output into a committed JSON
// snapshot and diffs snapshots against a baseline with a configurable
// regression threshold — the CI tripwire for the repo's performance
// contract.
//
// Usage:
//
//	go test -bench=. -benchmem -run='^$' . | benchdiff -write BENCH_2026-08-08.json
//	benchdiff -baseline testdata/bench_baseline.json -current BENCH_2026-08-08.json \
//	          -threshold 30 [-allocs-threshold 0]
//	go test -bench=. -benchmem -run='^$' . | benchdiff -baseline testdata/bench_baseline.json
//
// -write parses benchmark output on stdin (or -in FILE) and writes the
// snapshot. -baseline compares: a benchmark regresses when its ns/op exceeds
// the baseline by more than -threshold percent, or its allocs/op exceeds the
// baseline by more than -allocs-threshold allocations (default 0: any
// added allocation on a measured path is a regression — wall-clock is noisy
// on shared runners, allocation counts are exact). Exit status 1 on any
// regression, 2 on a bad invocation.
//
// Benchmark names are normalized by stripping the -N GOMAXPROCS suffix, so
// snapshots from machines with different core counts compare.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark's measurement.
type Result struct {
	N           int64   `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// HasAllocs distinguishes "0 allocs/op" from "run without -benchmem".
	HasAllocs bool `json:"has_allocs,omitempty"`
}

// Snapshot is the committed benchmark record.
type Snapshot struct {
	Date       string            `json:"date,omitempty"`
	GoVersion  string            `json:"go_version,omitempty"`
	GOOS       string            `json:"goos,omitempty"`
	GOARCH     string            `json:"goarch,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	os.Exit(runMain(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func runMain(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		write     = fs.String("write", "", "parse `go test -bench` output and write the snapshot to `FILE`")
		in        = fs.String("in", "", "read benchmark output from `FILE` instead of stdin")
		baseline  = fs.String("baseline", "", "compare against the snapshot in `FILE`")
		current   = fs.String("current", "", "compare the snapshot in `FILE` (default: parse stdin/-in)")
		threshold = fs.Float64("threshold", 30, "ns/op regression threshold in `percent` over baseline")
		allocsTh  = fs.Int64("allocs-threshold", 0, "allocs/op regression threshold in `allocations` over baseline")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *write == "" && *baseline == "" {
		fmt.Fprintln(stderr, "benchdiff: nothing to do: give -write and/or -baseline")
		return 2
	}
	if *threshold < 0 || *allocsTh < 0 {
		fmt.Fprintln(stderr, "benchdiff: thresholds must be >= 0")
		return 2
	}

	var cur *Snapshot
	var err error
	if *current != "" {
		cur, err = readSnapshot(*current)
	} else {
		src := stdin
		if *in != "" {
			f, ferr := os.Open(*in)
			if ferr != nil {
				fmt.Fprintln(stderr, "benchdiff:", ferr)
				return 2
			}
			defer f.Close()
			src = f
		}
		cur, err = Parse(src)
	}
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	if len(cur.Benchmarks) == 0 {
		fmt.Fprintln(stderr, "benchdiff: no benchmark results found")
		return 2
	}

	if *write != "" {
		if err := writeSnapshot(*write, cur); err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
		fmt.Fprintf(stdout, "benchdiff: %d benchmark(s) written to %s\n", len(cur.Benchmarks), *write)
	}
	if *baseline == "" {
		return 0
	}
	base, err := readSnapshot(*baseline)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	regressions := Compare(base, cur, *threshold, *allocsTh, stdout)
	if regressions > 0 {
		fmt.Fprintf(stdout, "benchdiff: %d regression(s) against %s\n", regressions, *baseline)
		return 1
	}
	fmt.Fprintf(stdout, "benchdiff: no regressions against %s\n", *baseline)
	return 0
}

// Parse reads `go test -bench` output and collects one Result per benchmark.
// A benchmark that appears multiple times (e.g. -count) keeps its best
// (lowest) ns/op, reducing noise-driven false regressions.
func Parse(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: map[string]Result{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		name, res, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		if prev, seen := snap.Benchmarks[name]; !seen || res.NsPerOp < prev.NsPerOp {
			snap.Benchmarks[name] = res
		}
	}
	return snap, sc.Err()
}

// parseLine parses one benchmark result line:
//
//	BenchmarkUopCacheLRU-8  1000  1234567 ns/op  123 B/op  4 allocs/op
func parseLine(line string) (string, Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Result{}, false
	}
	name := normalizeName(fields[0])
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Result{}, false
	}
	res := Result{N: n}
	ok := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = v
			ok = true
		case "B/op":
			res.BytesPerOp = int64(v)
		case "allocs/op":
			res.AllocsPerOp = int64(v)
			res.HasAllocs = true
		}
	}
	return name, res, ok
}

// normalizeName strips the trailing -N GOMAXPROCS suffix.
func normalizeName(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// Compare reports every regression of cur against base to w and returns the
// regression count. Benchmarks present only on one side are reported as
// informational, not as regressions (renames should update the baseline, not
// break CI).
func Compare(base, cur *Snapshot, thresholdPct float64, allocsTh int64, w io.Writer) int {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	regressions := 0
	for _, name := range names {
		b := base.Benchmarks[name]
		c, ok := cur.Benchmarks[name]
		if !ok {
			fmt.Fprintf(w, "MISSING %s: in baseline but not in current run\n", name)
			continue
		}
		if b.NsPerOp > 0 {
			ratio := c.NsPerOp / b.NsPerOp
			limit := 1 + thresholdPct/100
			if ratio > limit {
				regressions++
				fmt.Fprintf(w, "REGRESSION %s: %.0f ns/op vs %.0f baseline (%.2fx > %.2fx limit)\n",
					name, c.NsPerOp, b.NsPerOp, ratio, limit)
			}
		}
		if b.HasAllocs && c.HasAllocs && c.AllocsPerOp > b.AllocsPerOp+allocsTh {
			regressions++
			fmt.Fprintf(w, "REGRESSION %s: %d allocs/op vs %d baseline (threshold +%d)\n",
				name, c.AllocsPerOp, b.AllocsPerOp, allocsTh)
		}
	}
	extra := make([]string, 0)
	for name := range cur.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		fmt.Fprintf(w, "NEW %s: not in baseline (add it with -write)\n", name)
	}
	return regressions
}

func readSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if s.Benchmarks == nil {
		return nil, fmt.Errorf("%s: no benchmarks key", path)
	}
	return &s, nil
}

func writeSnapshot(path string, s *Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(s)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
