package power_test

import (
	"testing"

	"uopsim/internal/backend"
	"uopsim/internal/branch"
	"uopsim/internal/cache"
	"uopsim/internal/frontend"
	"uopsim/internal/policy"
	"uopsim/internal/power"
	"uopsim/internal/uopcache"
	"uopsim/internal/workload"
)

func TestCACTILikeMonotone(t *testing.T) {
	if power.CACTILike(0, 8) != 0 {
		t.Error("zero size should cost zero")
	}
	small := power.CACTILike(32<<10, 8)
	large := power.CACTILike(512<<10, 8)
	if small <= 0 || large <= small {
		t.Errorf("energy not monotone in size: %v vs %v", small, large)
	}
	lowAssoc := power.CACTILike(32<<10, 1)
	if lowAssoc >= small {
		t.Error("energy should grow with associativity")
	}
	if got := power.CACTILike(1024, 0); got <= 0 {
		t.Errorf("assoc 0 should clamp, got %v", got)
	}
}

func TestCACTILikeCalibrationPoints(t *testing.T) {
	// Fitted targets: 32KiB/8w ~ 20pJ, 512KiB/8w ~ 75pJ (order of
	// magnitude, not exact).
	l1 := power.CACTILike(32<<10, 8)
	if l1 < 10 || l1 > 40 {
		t.Errorf("L1-class read energy %v pJ, want 10-40", l1)
	}
	l2 := power.CACTILike(512<<10, 8)
	if l2 < 50 || l2 > 150 {
		t.Errorf("L2-class read energy %v pJ, want 50-150", l2)
	}
}

func TestDefaultTablePositive(t *testing.T) {
	tbl := power.DefaultTable()
	vals := map[string]float64{
		"DecodePerUop": tbl.DecodePerUop, "ICacheRead": tbl.ICacheRead,
		"L2Read": tbl.L2Read, "UopLookup": tbl.UopLookup,
		"UopWritePerEntry": tbl.UopWritePerEntry, "BTBLookup": tbl.BTBLookup,
		"BPLookup": tbl.BPLookup, "L1DRead": tbl.L1DRead,
		"BackendPerUop": tbl.BackendPerUop, "StaticPerCycle": tbl.StaticPerCycle,
	}
	for name, v := range vals {
		if v <= 0 {
			t.Errorf("%s = %v, want > 0", name, v)
		}
	}
	// The micro-op cache is a small structure: its lookup must be cheaper
	// than an icache read (that is the whole point of the design).
	if tbl.UopLookup >= tbl.ICacheRead {
		t.Errorf("uop lookup (%v) should cost less than icache read (%v)", tbl.UopLookup, tbl.ICacheRead)
	}
}

func runClang(t *testing.T, mutate func(*frontend.Config)) frontend.Result {
	t.Helper()
	spec, err := workload.Get("clang")
	if err != nil {
		t.Fatal(err)
	}
	blocks := workload.GenerateSpec(spec, 25000, 0)
	fcfg := frontend.DefaultConfig()
	if mutate != nil {
		mutate(&fcfg)
	}
	bp := branch.New(branch.DefaultConfig())
	uc := uopcache.New(uopcache.DefaultConfig(), policy.NewLRU())
	l1i := cache.New(cache.Config{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8, LatencyCycles: 1})
	be := backend.New(backend.DefaultConfig())
	return frontend.New(fcfg, bp, uc, l1i, be).RunBlocks(blocks)
}

// TestFig13Calibration: in the no-uop-cache baseline the decoder and icache
// shares must be in the neighbourhood of the paper's 12.5% and 7.7%.
func TestFig13Calibration(t *testing.T) {
	res := runClang(t, func(c *frontend.Config) { c.DisableUopCache = true })
	b := power.Compute(res, power.DefaultTable())
	decShare := b.Decoder / b.Total()
	icShare := b.ICache / b.Total()
	if decShare < 0.06 || decShare > 0.25 {
		t.Errorf("decoder share %.3f, want near 0.125", decShare)
	}
	if icShare < 0.03 || icShare > 0.18 {
		t.Errorf("icache share %.3f, want near 0.077", icShare)
	}
}

// TestUopCacheSavesEnergy: adding the micro-op cache must reduce total
// energy (the paper's 8.1% saving with LRU).
func TestUopCacheSavesEnergy(t *testing.T) {
	tbl := power.DefaultTable()
	without := power.Compute(runClang(t, func(c *frontend.Config) { c.DisableUopCache = true }), tbl)
	with := power.Compute(runClang(t, nil), tbl)
	if with.Total() >= without.Total() {
		t.Errorf("uop cache increased energy: %v vs %v", with.Total(), without.Total())
	}
	saving := 1 - with.Total()/without.Total()
	// Our saving runs above the paper's 8.1% because the whole-run energy
	// includes the static/cycle term, which shrinks with the IPC gain the
	// cache provides on these traces.
	if saving < 0.01 || saving > 0.5 {
		t.Errorf("saving %.3f, want a meaningful positive fraction", saving)
	}
}

func TestPPWAndBreakdown(t *testing.T) {
	res := runClang(t, nil)
	b := power.Compute(res, power.DefaultTable())
	if b.Total() <= 0 {
		t.Fatal("zero energy")
	}
	if b.FrontendShare() <= 0 || b.FrontendShare() >= 1 {
		t.Errorf("frontend share = %v", b.FrontendShare())
	}
	if power.PPW(res, b) <= 0 {
		t.Error("PPW should be positive")
	}
	var zero power.Breakdown
	if zero.FrontendShare() != 0 {
		t.Error("empty breakdown share")
	}
	if power.PPW(res, zero) != 0 {
		t.Error("empty breakdown PPW")
	}
}

// TestEnergyScalesWithMisses: a run that decodes more micro-ops must burn
// more decoder energy.
func TestEnergyScalesWithMisses(t *testing.T) {
	tbl := power.DefaultTable()
	real := power.Compute(runClang(t, nil), tbl)
	disabled := power.Compute(runClang(t, func(c *frontend.Config) { c.DisableUopCache = true }), tbl)
	if disabled.Decoder <= real.Decoder {
		t.Errorf("no-uop-cache decoder energy %v should exceed LRU's %v", disabled.Decoder, real.Decoder)
	}
	if real.UopCache <= 0 {
		t.Error("uop cache energy missing in LRU run")
	}
}
