// Package power is the McPAT/CACTI-style energy model: per-event energies
// for every frontend and backend structure, derived from a small CACTI-like
// analytic model of array access energy, calibrated so the per-core
// breakdown of the no-uop-cache baseline matches the paper's Fig. 13
// (decoder ≈12.5%, icache ≈7.7% of per-core power). Performance-per-watt is
// retired instructions per joule; the paper reports relative gains, which is
// what the experiment harness computes.
package power

import (
	"math"

	"uopsim/internal/frontend"
)

// CACTILike estimates the dynamic read energy (picojoules) of an SRAM array
// from its capacity and associativity: energy grows with the square root of
// capacity (bitline/wordline lengths) and mildly with associativity (ways
// read in parallel). The constants are fitted to typical published 22nm
// CACTI numbers (a 32KiB 8-way L1 read ≈ 20pJ, a 512KiB L2 read ≈ 75pJ).
func CACTILike(sizeBytes, assoc int) float64 {
	if sizeBytes <= 0 {
		return 0
	}
	if assoc <= 0 {
		assoc = 1
	}
	return 2.6 * math.Sqrt(float64(sizeBytes)/1024) * (1 + 0.13*float64(assoc))
}

// EnergyTable holds per-event energies in picojoules and static power in
// picojoules per cycle.
type EnergyTable struct {
	// DecodePerUop is the legacy-decode energy per micro-op produced —
	// the dominant frontend cost on variable-length ISAs.
	DecodePerUop float64
	// ICacheRead is per L1i line read on the legacy path.
	ICacheRead float64
	// L2Read is per L2 access (instruction or data).
	L2Read float64
	// UopLookup is per micro-op cache lookup (set activation + way
	// compare).
	UopLookup float64
	// UopWritePerEntry is per micro-op cache entry written on insertion.
	UopWritePerEntry float64
	// BTBLookup and BPLookup are per prediction.
	BTBLookup, BPLookup float64
	// L1DRead is per data-cache access.
	L1DRead float64
	// BackendPerUop covers rename/issue/execute/retire per micro-op.
	BackendPerUop float64
	// StaticPerCycle is leakage+clock for the whole core per cycle.
	StaticPerCycle float64
	// DRAMAccess prices a memory access (refund beyond core power, kept
	// small; the paper evaluates per-core power).
	DRAMAccess float64
}

// DefaultTable derives the energy table for the paper's 22nm / 3.2GHz /
// Zen3-like configuration from the CACTI-like model plus decoder and
// backend constants calibrated against the Fig. 13 breakdown.
func DefaultTable() EnergyTable {
	return EnergyTable{
		DecodePerUop:     16.0,                         // deep x86 decode pipeline
		ICacheRead:       CACTILike(32<<10, 8),         // ~20 pJ
		L2Read:           CACTILike(512<<10, 8),        // ~75 pJ
		UopLookup:        CACTILike(512*72/8, 8) * 0.9, // small array, tag+data
		UopWritePerEntry: CACTILike(512*72/8, 8) * 1.1,
		BTBLookup:        CACTILike(8192*8, 4),
		BPLookup:         CACTILike(64<<10, 1) * 0.35,
		L1DRead:          CACTILike(32<<10, 8),
		BackendPerUop:    34.0,
		StaticPerCycle:   32.0,
		DRAMAccess:       0, // per-core scope
	}
}

// Breakdown reports per-structure energy in picojoules.
type Breakdown struct {
	Decoder  float64
	ICache   float64
	UopCache float64
	BTB      float64
	BP       float64
	L2       float64
	L1D      float64
	Backend  float64
	Static   float64
}

// Total sums the breakdown.
func (b Breakdown) Total() float64 {
	return b.Decoder + b.ICache + b.UopCache + b.BTB + b.BP + b.L2 + b.L1D + b.Backend + b.Static
}

// FrontendShare returns the fraction of energy in decoder+icache+uopcache.
func (b Breakdown) FrontendShare() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return (b.Decoder + b.ICache + b.UopCache) / t
}

// Compute charges the energy table against a timing run's event counts.
func Compute(res frontend.Result, tbl EnergyTable) Breakdown {
	e := res.Events
	return Breakdown{
		Decoder:  float64(e.DecodedUops) * tbl.DecodePerUop,
		ICache:   float64(e.ICacheReads) * tbl.ICacheRead,
		UopCache: float64(e.UopCacheLookups)*tbl.UopLookup + float64(e.UopCacheWrites)*tbl.UopWritePerEntry,
		BTB:      float64(e.BTBLookups) * tbl.BTBLookup,
		BP:       float64(e.BPLookups) * tbl.BPLookup,
		L2:       float64(e.L2InstrReads)*tbl.L2Read + float64(res.Backend.L2Accesses)*tbl.L2Read,
		L1D:      float64(res.Backend.L1DAccesses) * tbl.L1DRead,
		Backend:  float64(res.Backend.RetiredUops) * tbl.BackendPerUop,
		Static:   float64(e.Cycles) * tbl.StaticPerCycle,
	}
}

// PPW returns performance-per-watt: retired instructions per joule.
// (Instructions per picojoule × 1e12; only ratios matter downstream.)
func PPW(res frontend.Result, b Breakdown) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return float64(res.Instructions) / t * 1e12
}
