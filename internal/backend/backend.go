// Package backend models a simplified out-of-order core backend: a 6-wide
// retire drain fed by the frontend's micro-op queue, plus a lightweight data
// memory model (L1d/L2/DRAM) that injects deterministic stall cycles. The
// paper's evaluation needs the backend only to translate frontend delivery
// rates into IPC (its Section VII notes backend detail is out of scope), so
// the model is an accounting drain, not a scheduled pipeline.
package backend

import (
	"uopsim/internal/cache"
)

// Config sizes the backend; DefaultConfig matches the paper's Table I.
type Config struct {
	// Width is the retire width (6-wide out-of-order).
	Width int
	// ROB bounds the micro-op queue the frontend may run ahead by
	// (256-entry reorder buffer).
	ROB int
	// MemFrac is the fraction of micro-ops that access data memory.
	MemFrac float64
	// Overlap discounts memory stall cycles for memory-level
	// parallelism (0 = perfectly hidden, 1 = fully serialized).
	Overlap float64
	// DataFootprint is the synthetic data working set in bytes.
	DataFootprint uint64
	// L1D and L2 size the data-side hierarchy.
	L1D cache.Config
	L2  cache.Config
	// L2Latency and DRAMLatency are miss penalties in cycles.
	L2Latency, DRAMLatency int
}

// DefaultConfig returns the paper's backend configuration.
func DefaultConfig() Config {
	return Config{
		Width:         6,
		ROB:           256,
		MemFrac:       0.3,
		Overlap:       0.25,
		DataFootprint: 8 << 20,
		L1D:           cache.Config{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8, LatencyCycles: 2},
		L2:            cache.Config{SizeBytes: 512 << 10, LineBytes: 64, Ways: 8, LatencyCycles: 16},
		L2Latency:     16,
		DRAMLatency:   100,
	}
}

// Stats counts backend activity.
type Stats struct {
	RetiredUops  uint64
	RetiredInsts uint64
	StallCycles  uint64
	L1DAccesses  uint64
	L1DMisses    uint64
	L2Accesses   uint64
	L2Misses     uint64
}

// Backend is the drain model. It is driven by the frontend: Supply delivers
// micro-ops that took a known number of frontend cycles to produce, and the
// backend reports how many extra stall cycles the data side added.
type Backend struct {
	cfg   Config
	l1d   *cache.Cache
	l2    *cache.Cache
	queue int
	// stallCarry accumulates fractional stall cycles.
	stallCarry float64
	Stats      Stats
}

// New builds a backend.
func New(cfg Config) *Backend {
	return &Backend{cfg: cfg, l1d: cache.New(cfg.L1D), l2: cache.New(cfg.L2)}
}

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return x
}

// Supply hands the backend `uops` micro-ops (decoding `insts` instructions,
// fetched from around code address `addr`) that the frontend produced over
// `cycles` cycles. It returns the number of ADDITIONAL cycles the backend
// needs beyond the frontend's (data stalls plus queue-overflow drain).
func (b *Backend) Supply(uops, insts int, addr uint64, cycles int) int {
	b.Stats.RetiredUops += uint64(uops)
	b.Stats.RetiredInsts += uint64(insts)
	b.queue += uops

	// Retire what the width allows during the frontend cycles.
	retire := b.cfg.Width * cycles
	if retire > b.queue {
		retire = b.queue
	}
	b.queue -= retire

	extra := 0
	// If the queue exceeds the ROB, the frontend would have been
	// back-pressured; charge the cycles needed to drain back under it.
	if b.queue > b.cfg.ROB {
		over := b.queue - b.cfg.ROB
		drain := (over + b.cfg.Width - 1) / b.cfg.Width
		b.queue -= drain * b.cfg.Width
		if b.queue < 0 {
			b.queue = 0
		}
		extra += drain
	}

	// Data-side stalls: a deterministic fraction of micro-ops are memory
	// operations touching a synthetic working set derived from the code
	// address (hot code tends to touch hot data).
	memOps := int(float64(uops)*b.cfg.MemFrac + 0.5)
	stall := 0.0
	for i := 0; i < memOps; i++ {
		da := mix64(addr+uint64(i)*0x9E3779B9) % b.cfg.DataFootprint
		b.Stats.L1DAccesses++
		if b.l1d.Access(da) {
			continue
		}
		b.Stats.L1DMisses++
		b.Stats.L2Accesses++
		if b.l2.Access(da) {
			stall += float64(b.cfg.L2Latency) * b.cfg.Overlap
		} else {
			b.Stats.L2Misses++
			stall += float64(b.cfg.DRAMLatency) * b.cfg.Overlap
		}
	}
	b.stallCarry += stall
	if b.stallCarry >= 1 {
		whole := int(b.stallCarry)
		b.stallCarry -= float64(whole)
		// Stall cycles also retire from the queue.
		r := b.cfg.Width * whole
		if r > b.queue {
			r = b.queue
		}
		b.queue -= r
		b.Stats.StallCycles += uint64(whole)
		extra += whole
	}
	return extra
}

// Flush drains the remaining queue, returning the cycles needed.
func (b *Backend) Flush() int {
	c := (b.queue + b.cfg.Width - 1) / b.cfg.Width
	b.queue = 0
	return c
}

// QueueDepth returns the current micro-op queue occupancy.
func (b *Backend) QueueDepth() int { return b.queue }

// StatsCopy returns a snapshot of the backend statistics.
func (b *Backend) StatsCopy() Stats { return b.Stats }
