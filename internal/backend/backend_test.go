package backend

import "testing"

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig()
	if c.Width != 6 || c.ROB != 256 {
		t.Errorf("config = %+v", c)
	}
	if c.L1D.Validate() != nil || c.L2.Validate() != nil {
		t.Error("cache configs invalid")
	}
}

func TestSupplyRetiresWithinWidth(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemFrac = 0 // isolate the drain
	b := New(cfg)
	// 12 uops over 2 cycles: width 6 -> all retired, queue empty.
	extra := b.Supply(12, 4, 0x1000, 2)
	if extra != 0 {
		t.Errorf("extra = %d", extra)
	}
	if b.QueueDepth() != 0 {
		t.Errorf("queue = %d", b.QueueDepth())
	}
	// 20 uops in 1 cycle: 6 retired, 14 queued.
	b.Supply(20, 5, 0x1000, 1)
	if b.QueueDepth() != 14 {
		t.Errorf("queue = %d, want 14", b.QueueDepth())
	}
	if b.Stats.RetiredUops != 32 || b.Stats.RetiredInsts != 9 {
		t.Errorf("stats = %+v", b.Stats)
	}
}

func TestROBBackpressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemFrac = 0
	cfg.ROB = 32
	b := New(cfg)
	// Vastly oversupply in one cycle.
	extra := b.Supply(200, 50, 0x1000, 1)
	if extra == 0 {
		t.Error("oversupply should cost extra drain cycles")
	}
	if b.QueueDepth() > cfg.ROB {
		t.Errorf("queue %d exceeds ROB %d after backpressure", b.QueueDepth(), cfg.ROB)
	}
}

func TestMemoryStallsAccumulate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemFrac = 1.0
	cfg.Overlap = 1.0
	cfg.DataFootprint = 64 << 20 // big: misses guaranteed early
	b := New(cfg)
	extraTotal := 0
	for i := 0; i < 200; i++ {
		extraTotal += b.Supply(6, 2, uint64(i)*4096, 1)
	}
	if b.Stats.L1DAccesses == 0 || b.Stats.L1DMisses == 0 {
		t.Errorf("no data traffic: %+v", b.Stats)
	}
	if extraTotal == 0 {
		t.Error("cold data misses should stall")
	}
	if b.Stats.StallCycles == 0 {
		t.Error("stall cycles not counted")
	}
}

func TestHotDataStopsStalling(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemFrac = 1.0
	cfg.DataFootprint = 4 << 10 // tiny working set fits L1d
	b := New(cfg)
	var early, late int
	for i := 0; i < 400; i++ {
		e := b.Supply(6, 2, 0x1000, 1) // same addr -> same data set
		if i < 20 {
			early += e
		} else if i >= 380 {
			late += e
		}
	}
	if late > 0 {
		t.Errorf("warm tiny working set still stalling: %d", late)
	}
}

func TestFlush(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemFrac = 0
	b := New(cfg)
	b.Supply(25, 5, 0, 1) // retires 6, queue 19
	c := b.Flush()
	if c != 4 { // ceil(19/6)
		t.Errorf("flush cycles = %d, want 4", c)
	}
	if b.QueueDepth() != 0 {
		t.Error("queue not drained")
	}
	if b.Flush() != 0 {
		t.Error("second flush should be free")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Stats {
		b := New(DefaultConfig())
		for i := 0; i < 500; i++ {
			b.Supply(8, 3, uint64(i%37)*512, 2)
		}
		return b.StatsCopy()
	}
	if run() != run() {
		t.Error("backend not deterministic")
	}
}
