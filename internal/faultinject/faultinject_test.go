package faultinject

import (
	"context"
	"errors"
	"testing"

	"uopsim/internal/telemetry"
)

func TestSpecParsing(t *testing.T) {
	bad := []string{
		"",                  // no separators
		"site:3",            // missing mode
		"site:3:boom",       // unknown mode
		"site:0:error",      // hit numbers are 1-based
		"site:x:error",      // not a number
		"site:5-2:error",    // empty range
		"site:~1.5@7:error", // probability out of range
		"site:~0.5:error",   // seedless random
	}
	for _, spec := range bad {
		if _, err := New(spec); err == nil {
			t.Errorf("New(%q): expected an error", spec)
		}
	}
	good := []string{"*:1:error", "cell:2-4:panic", "fig9/:3+:stall", ":~0.25@42:error"}
	for _, spec := range good {
		if _, err := New(spec); err != nil {
			t.Errorf("New(%q): %v", spec, err)
		}
	}
}

func TestNilAndNonMatchingNeverInject(t *testing.T) {
	var in *Injector
	for i := 0; i < 10; i++ {
		if err := in.Hit(nil, "anything"); err != nil {
			t.Fatalf("nil injector injected: %v", err)
		}
	}
	in = MustNew("fig9/:1:error")
	if err := in.Hit(nil, "fig8/kafka"); err != nil {
		t.Fatalf("non-matching site injected: %v", err)
	}
	if err := in.Hit(nil, "fig9/kafka"); err == nil {
		t.Fatal("matching site's first hit did not inject")
	}
}

func TestHitSelection(t *testing.T) {
	cases := []struct {
		hits string
		want []bool // injection decision for hits 1..len
	}{
		{"2", []bool{false, true, false, false}},
		{"2-3", []bool{false, true, true, false}},
		{"3+", []bool{false, false, true, true}},
	}
	for _, c := range cases {
		in := MustNew("*:" + c.hits + ":error")
		for i, want := range c.want {
			got := in.Hit(nil, "site") != nil
			if got != want {
				t.Errorf("hits=%q: hit %d injected=%v, want %v", c.hits, i+1, got, want)
			}
		}
	}
}

func TestErrorCarriesCoordinates(t *testing.T) {
	in := MustNew("*:1:error")
	err := in.Hit(nil, "fig8/kafka")
	var ierr *Error
	if !errors.As(err, &ierr) {
		t.Fatalf("err = %T, want *Error", err)
	}
	if ierr.Site != "fig8/kafka" || ierr.Hit != 1 || ierr.Mode != ModeError {
		t.Errorf("Error = %+v", ierr)
	}
}

func TestPanicMode(t *testing.T) {
	in := MustNew("*:1:panic")
	defer func() {
		if _, ok := recover().(*Error); !ok {
			t.Error("expected an *Error panic value")
		}
	}()
	in.Hit(nil, "site")
	t.Error("no panic")
}

func TestStallModeUnblocksOnCancel(t *testing.T) {
	in := MustNew("*:1:stall")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := in.Hit(ctx, "site"); !errors.Is(err, context.Canceled) {
		t.Fatalf("stall err = %v, want context.Canceled", err)
	}
	// A never-cancellable context must not hang forever.
	in = MustNew("*:1:stall")
	if err := in.Hit(nil, "site"); err == nil {
		t.Fatal("stall with nil ctx returned nil")
	}
}

// TestRandomHitsDeterministic: the seeded-probability trigger must replay the
// exact same injection pattern on every run — that is what makes a failing
// chaos test reproducible.
func TestRandomHitsDeterministic(t *testing.T) {
	pattern := func() []bool {
		in := MustNew("*:~0.5@42:error")
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.Hit(nil, "site") != nil
		}
		return out
	}
	a, b := pattern(), pattern()
	injected := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d differs between identically-seeded injectors", i+1)
		}
		if a[i] {
			injected++
		}
	}
	if injected == 0 || injected == len(a) {
		t.Errorf("p=0.5 injected %d/%d hits", injected, len(a))
	}
}

func TestArmCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	in := MustNew("*:2:error")
	in.Arm(reg)
	for i := 0; i < 3; i++ {
		in.Hit(nil, "site")
	}
	if got := reg.Counter("faultinject_hits_total").Value(); got != 3 {
		t.Errorf("hits = %d, want 3", got)
	}
	if got := reg.Counter("faultinject_injected_total").Value(); got != 1 {
		t.Errorf("injected = %d, want 1", got)
	}
}
