// Package faultinject is a deterministic fault-injection harness for the
// experiment pipeline's resilience tests (and for manual chaos runs via
// cmd/experiments -faultinject). An Injector is armed with a compact spec
// string and counts the hits that reach a matching site; on the selected
// hits it injects a failure — an error, a panic, or a stall that blocks
// until the caller's context is cancelled. Everything is stdlib-only and
// deterministic: the trigger is either an explicit hit number/range or a
// seeded PRNG, never the wall clock, so a failing resilience test replays
// exactly.
//
// Spec grammar (all parts after the site are optional-free, fixed order):
//
//	SITE:HITS:MODE
//
//	SITE  — substring match against the hit site ("" or "*" matches all).
//	        Experiment cells present as "<figure>/<cell-label>".
//	HITS  — which matching hits inject: "N" (exactly the Nth), "N-M"
//	        (hits N through M inclusive), "N+" (every hit from the Nth on),
//	        or "~P@SEED" (each hit injects with probability P in [0,1],
//	        decided by a PRNG seeded with SEED).
//	MODE  — "error", "panic", or "stall".
//
// Examples: "cell:3:panic" (third matching hit panics), "fig9/:1-2:error"
// (first two fig9 cells fail, the third succeeds — the retry test),
// "*:~0.25@42:error" (a quarter of hits fail, deterministically).
package faultinject

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"

	"uopsim/internal/telemetry"
)

// Mode selects what an injection does to the victim call.
type Mode int

const (
	// ModeError makes Hit return an *Error.
	ModeError Mode = iota
	// ModePanic makes Hit panic with an *Error value.
	ModePanic
	// ModeStall makes Hit block until the caller's context is cancelled,
	// then return the context's error. With a never-cancelled context the
	// stall returns an *Error immediately rather than hanging forever.
	ModeStall
)

// String names the mode the way the spec grammar spells it.
func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModePanic:
		return "panic"
	case ModeStall:
		return "stall"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Error is the injected failure value: the error returned by ModeError and
// ModeStall, and the panic value of ModePanic. Callers distinguish injected
// faults from organic ones with errors.As.
type Error struct {
	Site string
	Hit  uint64
	Mode Mode
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("faultinject: injected %s at site %q (hit %d)", e.Mode, e.Site, e.Hit)
}

// Injector decides, hit by hit, whether to inject a fault. The zero value
// and the nil Injector never inject, so call sites can stay unconditional.
type Injector struct {
	site string
	mode Mode
	// lo/hi bound the injecting hit numbers (1-based, inclusive); hi == 0
	// with prob < 0 means "exactly lo"; hi == maxUint64 means "lo and on".
	lo, hi uint64
	// prob >= 0 selects seeded-random triggering instead of lo/hi.
	prob float64

	mu    sync.Mutex
	count uint64
	rng   *rand.Rand

	hits     *telemetry.Counter
	injected *telemetry.Counter
}

// New parses a spec (see the package comment for the grammar).
func New(spec string) (*Injector, error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return nil, fmt.Errorf("faultinject: spec %q is not SITE:HITS:MODE", spec)
	}
	in := &Injector{site: parts[0], prob: -1}
	if in.site == "*" {
		in.site = ""
	}
	var err error
	if in.mode, err = parseMode(parts[2]); err != nil {
		return nil, err
	}
	if err := in.parseHits(parts[1]); err != nil {
		return nil, err
	}
	return in, nil
}

// MustNew is New for test fixtures with compile-time-known specs.
func MustNew(spec string) *Injector {
	in, err := New(spec)
	if err != nil {
		panic(err)
	}
	return in
}

func parseMode(s string) (Mode, error) {
	switch s {
	case "error":
		return ModeError, nil
	case "panic":
		return ModePanic, nil
	case "stall":
		return ModeStall, nil
	}
	return 0, fmt.Errorf("faultinject: unknown mode %q (want error, panic, or stall)", s)
}

func (in *Injector) parseHits(s string) error {
	switch {
	case strings.HasPrefix(s, "~"):
		probSeed := strings.SplitN(s[1:], "@", 2)
		if len(probSeed) != 2 {
			return fmt.Errorf("faultinject: random hits %q want ~P@SEED", s)
		}
		p, err := strconv.ParseFloat(probSeed[0], 64)
		if err != nil || p < 0 || p > 1 {
			return fmt.Errorf("faultinject: probability %q not in [0,1]", probSeed[0])
		}
		seed, err := strconv.ParseInt(probSeed[1], 10, 64)
		if err != nil {
			return fmt.Errorf("faultinject: seed %q: %v", probSeed[1], err)
		}
		in.prob = p
		in.rng = rand.New(rand.NewSource(seed))
		return nil
	case strings.HasSuffix(s, "+"):
		lo, err := parseHitNum(s[:len(s)-1])
		if err != nil {
			return err
		}
		in.lo, in.hi = lo, ^uint64(0)
		return nil
	case strings.Contains(s, "-"):
		loHi := strings.SplitN(s, "-", 2)
		lo, err := parseHitNum(loHi[0])
		if err != nil {
			return err
		}
		hi, err := parseHitNum(loHi[1])
		if err != nil {
			return err
		}
		if hi < lo {
			return fmt.Errorf("faultinject: empty hit range %q", s)
		}
		in.lo, in.hi = lo, hi
		return nil
	default:
		lo, err := parseHitNum(s)
		if err != nil {
			return err
		}
		in.lo, in.hi = lo, lo
		return nil
	}
}

func parseHitNum(s string) (uint64, error) {
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil || n == 0 {
		return 0, fmt.Errorf("faultinject: hit number %q must be a positive integer", s)
	}
	return n, nil
}

// Arm attaches hit/injection counters to reg (nil reg is a no-op), so a
// chaos run's manifest-adjacent metrics record how many faults actually
// fired.
func (in *Injector) Arm(reg *telemetry.Registry) {
	if in == nil || reg == nil {
		return
	}
	in.hits = reg.Counter("faultinject_hits_total")
	in.injected = reg.Counter("faultinject_injected_total")
}

// Hit reports one arrival at site. If the injector's spec selects this hit
// it injects: ModeError returns an *Error, ModePanic panics with one, and
// ModeStall blocks until ctx is cancelled (returning ctx.Err()). A nil
// injector, a non-matching site, and an unselected hit all return nil.
func (in *Injector) Hit(ctx context.Context, site string) error {
	if in == nil || (in.site != "" && !strings.Contains(site, in.site)) {
		return nil
	}
	in.mu.Lock()
	in.count++
	hit := in.count
	inject := false
	if in.prob >= 0 {
		inject = in.rng.Float64() < in.prob
	} else {
		inject = hit >= in.lo && hit <= in.hi
	}
	in.mu.Unlock()
	if in.hits != nil {
		in.hits.Inc()
	}
	if !inject {
		return nil
	}
	if in.injected != nil {
		in.injected.Inc()
	}
	ierr := &Error{Site: site, Hit: hit, Mode: in.mode}
	switch in.mode {
	case ModePanic:
		panic(ierr)
	case ModeStall:
		if ctx == nil || ctx.Done() == nil {
			return ierr
		}
		<-ctx.Done()
		return ctx.Err()
	case ModeError:
		return ierr
	default:
		return ierr
	}
}
