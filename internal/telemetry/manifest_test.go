package telemetry

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestRunManifestGolden pins the run.json schema: field names and layout are
// an external contract (tooling parses them), so the encoding is compared
// byte-for-byte with every time- and build-dependent field held fixed.
func TestRunManifestGolden(t *testing.T) {
	m := &RunManifest{
		Tool:  "experiments",
		Args:  []string{"-blocks", "1000", "fig8"},
		Start: time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC),
		End:   time.Date(2026, 8, 5, 12, 0, 30, 0, time.UTC),
		Build: BuildInfo{GoVersion: "go1.22.0", Module: "uopsim", Revision: "abc123", Time: "2026-08-05T11:00:00Z"},
		Config: map[string]any{
			"blocks": 1000,
		},
		Seed:   7,
		Blocks: 1000,
		Apps:   []string{"kafka"},
		Figures: []FigureRun{
			{
				ID: "fig8", Title: "FURBYS miss reduction", WallSeconds: 29.5, Rows: 12,
				Apps: []AppRun{{App: "kafka", WallSeconds: 29.5}},
			},
		},
		Failures: []string{"fig9: boom"},
	}
	m.WallSeconds = m.End.Sub(m.Start).Seconds()

	const golden = `{
  "tool": "experiments",
  "args": [
    "-blocks",
    "1000",
    "fig8"
  ],
  "start": "2026-08-05T12:00:00Z",
  "end": "2026-08-05T12:00:30Z",
  "wall_seconds": 30,
  "build": {
    "go_version": "go1.22.0",
    "module": "uopsim",
    "vcs_revision": "abc123",
    "vcs_time": "2026-08-05T11:00:00Z"
  },
  "config": {
    "blocks": 1000
  },
  "seed": 7,
  "blocks": 1000,
  "apps": [
    "kafka"
  ],
  "figures": [
    {
      "id": "fig8",
      "title": "FURBYS miss reduction",
      "wall_seconds": 29.5,
      "rows": 12,
      "apps": [
        {
          "app": "kafka",
          "wall_seconds": 29.5
        }
      ]
    }
  ],
  "failures": [
    "fig9: boom"
  ]
}
`
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != golden {
		t.Errorf("manifest JSON drifted from golden:\ngot:\n%s\nwant:\n%s", buf.String(), golden)
	}
}

func TestRunManifestLifecycle(t *testing.T) {
	m := NewRunManifest("uopsim", []string{"-app", "kafka"})
	if m.Start.IsZero() {
		t.Error("Start not stamped")
	}
	if m.Build.GoVersion == "" {
		t.Error("build info missing Go version")
	}
	m.Finish()
	if m.End.Before(m.Start) || m.WallSeconds < 0 {
		t.Errorf("bad end stamp: start=%v end=%v wall=%v", m.Start, m.End, m.WallSeconds)
	}
	path := filepath.Join(t.TempDir(), "run.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}
