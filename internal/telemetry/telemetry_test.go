package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestBucketUpperBound(t *testing.T) {
	cases := []struct {
		i    int
		want uint64
	}{
		{-1, 0}, {0, 0}, {1, 1}, {2, 3}, {3, 7}, {10, 1023},
		{63, 1<<63 - 1}, {64, math.MaxUint64}, {100, math.MaxUint64},
	}
	for _, c := range cases {
		if got := BucketUpperBound(c.i); got != c.want {
			t.Errorf("BucketUpperBound(%d) = %d, want %d", c.i, got, c.want)
		}
	}
}

// TestHistogramBucketEdges pins the log2 bucketing: 0 goes to bucket 0, and
// each power of two opens a new bucket whose upper bound is 2^i - 1.
func TestHistogramBucketEdges(t *testing.T) {
	var h Histogram
	samples := []uint64{0, 1, 2, 3, 4, 7, 8, 1023, 1024, math.MaxUint64}
	for _, v := range samples {
		h.Observe(v)
	}
	count, sum, buckets := h.Snapshot()
	if count != uint64(len(samples)) {
		t.Fatalf("count = %d, want %d", count, len(samples))
	}
	wantSum := uint64(0)
	for _, v := range samples {
		wantSum += v
	}
	if sum != wantSum {
		t.Fatalf("sum = %d, want %d", sum, wantSum)
	}
	want := map[int]uint64{
		0:  1, // 0
		1:  1, // 1
		2:  2, // 2, 3
		3:  2, // 4, 7
		4:  1, // 8
		10: 1, // 1023
		11: 1, // 1024
		64: 1, // MaxUint64
	}
	for i, n := range buckets {
		if n != want[i] {
			t.Errorf("bucket[%d] = %d, want %d", i, n, want[i])
		}
	}
	// Every sample must fit under its bucket's upper bound and exceed the
	// previous bound.
	for _, v := range samples {
		var tmp Histogram
		tmp.Observe(v)
		_, _, b := tmp.Snapshot()
		for i, n := range b {
			if n == 0 {
				continue
			}
			if v > BucketUpperBound(i) {
				t.Errorf("sample %d landed in bucket %d with bound %d", v, i, BucketUpperBound(i))
			}
			if i > 0 && v <= BucketUpperBound(i-1) {
				t.Errorf("sample %d should be in bucket <= %d", v, i-1)
			}
		}
	}
}

// TestConcurrentCounters hammers one counter, one gauge and one histogram
// from many goroutines; run under -race this also proves the mutation paths
// are data-race-free.
func TestConcurrentCounters(t *testing.T) {
	reg := NewRegistry()
	const goroutines = 8
	const perG = 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Resolve inside the goroutine: get-or-create must also be safe.
			c := reg.Counter("test_total")
			h := reg.Histogram("test_hist")
			for i := 0; i < perG; i++ {
				c.Inc()
				h.Observe(uint64(i))
				reg.Gauge("test_gauge").Set(float64(g))
			}
		}(g)
	}
	wg.Wait()
	if got := reg.Counter("test_total").Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := reg.Histogram("test_hist").Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("a") != reg.Counter("a") {
		t.Error("Counter not idempotent")
	}
	if reg.Gauge("a") != reg.Gauge("a") {
		t.Error("Gauge not idempotent")
	}
	if reg.Histogram("a") != reg.Histogram("a") {
		t.Error("Histogram not idempotent")
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("uopcache_misses_total").Add(7)
	reg.Gauge("frontend_ipc").Set(1.5)
	h := reg.Histogram("uopcache_lookup_uops")
	h.Observe(0)
	h.Observe(1)
	h.Observe(5)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE uopcache_misses_total counter\nuopcache_misses_total 7\n",
		"# TYPE frontend_ipc gauge\nfrontend_ipc 1.5\n",
		"# TYPE uopcache_lookup_uops histogram\n",
		`uopcache_lookup_uops_bucket{le="0"} 1`,
		`uopcache_lookup_uops_bucket{le="1"} 2`,
		`uopcache_lookup_uops_bucket{le="7"} 3`,
		`uopcache_lookup_uops_bucket{le="+Inf"} 3`,
		"uopcache_lookup_uops_sum 6",
		"uopcache_lookup_uops_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q in:\n%s", want, out)
		}
	}
}

// TestWriteJSON round-trips the JSON exposition through encoding/json.
func TestWriteJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total").Add(3)
	reg.Gauge("g").Set(2.25)
	reg.Histogram("h").Observe(4)
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got registryJSON
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if got.Counters["c_total"] != 3 {
		t.Errorf("counter = %d, want 3", got.Counters["c_total"])
	}
	if got.Gauges["g"] != 2.25 {
		t.Errorf("gauge = %g, want 2.25", got.Gauges["g"])
	}
	h := got.Histograms["h"]
	if h.Count != 1 || h.Sum != 4 || len(h.Buckets) != 1 || h.Buckets[0].LE != 7 || h.Buckets[0].Count != 1 {
		t.Errorf("histogram = %+v", h)
	}
}

// TestWriteFile checks extension-based format switching and that collection
// hooks run on write.
func TestWriteFile(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry()
	hookRuns := 0
	reg.OnCollect(func() {
		hookRuns++
		reg.Counter("scraped_total").Store(42)
	})

	promPath := filepath.Join(dir, "metrics.txt")
	if err := reg.WriteFile(promPath); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(promPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "scraped_total 42") {
		t.Errorf("prometheus file missing hook value:\n%s", data)
	}

	jsonPath := filepath.Join(dir, "metrics.json")
	if err := reg.WriteFile(jsonPath); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var got registryJSON
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf(".json file is not JSON: %v", err)
	}
	if got.Counters["scraped_total"] != 42 {
		t.Errorf("json counters = %v", got.Counters)
	}
	if hookRuns != 2 {
		t.Errorf("collect hook ran %d times, want 2", hookRuns)
	}
}
