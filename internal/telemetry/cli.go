package telemetry

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"sync"
)

// CLI bundles the standard observability flags every binary exposes
// (-telemetry, -events, -sample, -pprof, -serve) and owns the resources
// they resolve to: a metrics registry, a JSONL event sink, and the
// pprof/metrics/status HTTP server. Mains call RegisterFlags before
// flag.Parse, Start after, and Close on the way out.
type CLI struct {
	MetricsPath string
	EventsPath  string
	Sample      int
	PprofAddr   string
	ServeAddr   string

	// Registry is non-nil after Start when -telemetry, -pprof or -serve
	// was given.
	Registry *Registry
	// Sink is non-nil after Start when -events was given.
	Sink *JSONLSink

	// eventsFile streams to <EventsPath>.partial; Close fsyncs and renames
	// it to EventsPath, so a crash leaves an obviously incomplete .partial
	// file instead of a silently truncated trace.
	eventsFile *os.File
	server     *http.Server

	// status is the /debug/status document source, settable after Start
	// (drivers build their run state after parsing flags).
	statusMu sync.Mutex
	status   StatusFunc
}

// RegisterFlags declares the observability flags on fs.
func (c *CLI) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.MetricsPath, "telemetry", "", "write metrics to `FILE` at exit (Prometheus text; .json switches to JSON)")
	fs.StringVar(&c.EventsPath, "events", "", "write a JSONL trace of cache decisions to `FILE`")
	fs.IntVar(&c.Sample, "sample", 1, "emit every `N`th event to -events")
	fs.StringVar(&c.PprofAddr, "pprof", "", "serve net/http/pprof, /metrics and /healthz on `ADDR` (e.g. localhost:6060)")
	fs.StringVar(&c.ServeAddr, "serve", "", "serve the live run dashboard (/debug/status, plus pprof and /metrics) on `ADDR`")
}

// SetStatus installs (or replaces) the /debug/status document source. Safe
// to call at any time, including before Start and from concurrent scrapes.
func (c *CLI) SetStatus(fn StatusFunc) {
	c.statusMu.Lock()
	c.status = fn
	c.statusMu.Unlock()
}

// statusDoc snapshots the current status document.
func (c *CLI) statusDoc() any {
	c.statusMu.Lock()
	fn := c.status
	c.statusMu.Unlock()
	if fn == nil {
		return struct{}{}
	}
	return fn()
}

// ServerAddr returns the bound address of the HTTP server, if one is
// running ("" otherwise); useful when -serve was given port 0.
func (c *CLI) ServerAddr() string {
	if c.server == nil {
		return ""
	}
	return c.server.Addr
}

// Start opens the sinks and the HTTP server the parsed flags ask for.
func (c *CLI) Start() error {
	if c.MetricsPath != "" || c.PprofAddr != "" || c.ServeAddr != "" {
		c.Registry = NewRegistry()
	}
	if c.MetricsPath != "" {
		// Fail before the run, not after it: the metrics file is only
		// written at Close, which would waste the whole simulation on a
		// bad path.
		f, err := os.Create(c.MetricsPath)
		if err != nil {
			return fmt.Errorf("telemetry: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("telemetry: %w", err)
		}
	}
	if c.EventsPath != "" {
		f, err := os.Create(c.EventsPath + ".partial")
		if err != nil {
			return fmt.Errorf("events: %w", err)
		}
		c.eventsFile = f
		c.Sink = NewJSONLSink(f, c.Sample)
	}
	addr := c.ServeAddr
	if addr == "" {
		addr = c.PprofAddr
	}
	if addr != "" {
		srv, err := ServeStatus(addr, c.Registry, c.statusDoc)
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		c.server = srv
		fmt.Fprintf(os.Stderr, "pprof/metrics/status listening on http://%s\n", srv.Addr)
	}
	return nil
}

// Close flushes the event sink, publishes the completed event trace at its
// final path, and writes the metrics file. The pprof server is left running
// until process exit (it serves no state of its own beyond the registry,
// which stays valid).
func (c *CLI) Close() error {
	var first error
	if c.Sink != nil {
		if err := c.Sink.Flush(); err != nil && first == nil {
			first = fmt.Errorf("events: %w", err)
		}
	}
	if c.eventsFile != nil {
		err := c.eventsFile.Sync()
		if cerr := c.eventsFile.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			err = os.Rename(c.eventsFile.Name(), c.EventsPath)
		}
		if err != nil && first == nil {
			first = fmt.Errorf("events: %w", err)
		}
	}
	if c.MetricsPath != "" && c.Registry != nil {
		if err := c.Registry.WriteFile(c.MetricsPath); err != nil && first == nil {
			first = fmt.Errorf("telemetry: %w", err)
		}
	}
	return first
}
