// Package telemetry is the simulator's observability layer: a lock-cheap
// metrics registry (counters, gauges, log-scale histograms) with
// Prometheus-text and JSON exposition, a sampled structured event trace of
// micro-op cache decisions (JSONL), per-run manifests, a progress reporter,
// and an operational HTTP endpoint (net/http/pprof + /metrics + /healthz).
//
// The package is stdlib-only and depends on nothing else in the repository,
// so every layer (uopcache, offline, frontend, policy, experiments, cmd/)
// can hang counters off one shared Registry. Metric mutation is a single
// atomic add; registration is mutex-guarded but happens once per name, so
// instrumented hot paths stay allocation-free.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; all methods are safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Store overwrites the value; used when publishing an externally maintained
// aggregate (e.g. uopcache.Stats) into the registry.
func (c *Counter) Store(n uint64) { c.v.Store(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down (stored as float64 bits).
type Gauge struct{ bits atomic.Uint64 }

// Set overwrites the gauge.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// HistogramBuckets is the number of log2 buckets a Histogram keeps: bucket 0
// holds the value 0 and bucket i (i >= 1) holds values in [2^(i-1), 2^i).
const HistogramBuckets = 65

// Histogram is a log-scale (powers-of-two) histogram over uint64 samples.
// It is fixed-size, allocation-free to observe into, and safe for
// concurrent use.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [HistogramBuckets]atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// BucketUpperBound returns the largest value bucket i holds: 0 for bucket 0
// and 2^i - 1 otherwise (the final bucket's bound saturates at MaxUint64).
func BucketUpperBound(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// Snapshot returns a consistent-enough copy of the bucket counts (individual
// loads are atomic; the histogram may be concurrently updated).
func (h *Histogram) Snapshot() (count, sum uint64, buckets [HistogramBuckets]uint64) {
	count = h.count.Load()
	sum = h.sum.Load()
	for i := range h.buckets {
		buckets[i] = h.buckets[i].Load()
	}
	return count, sum, buckets
}

// Registry is a named collection of metrics. Get-or-create accessors are
// mutex-guarded; returned metrics are updated with plain atomics, so callers
// should resolve names once and keep the pointers.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	collects []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it if
// needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// OnCollect registers a hook run before each exposition, letting components
// that keep their own aggregates (e.g. uopcache.Stats) publish fresh values
// on scrape instead of paying per-event costs.
func (r *Registry) OnCollect(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collects = append(r.collects, fn)
}

// Collect runs the registered collection hooks.
func (r *Registry) Collect() {
	r.mu.Lock()
	hooks := append([]func(){}, r.collects...)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}

// sortedKeys returns map keys in lexical order for deterministic exposition.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (histogram buckets are cumulative with an explicit +Inf).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	ew := &errWriter{w: w}
	for _, name := range sortedKeys(r.counters) {
		fmt.Fprintf(ew, "# TYPE %s counter\n%s %d\n", name, name, r.counters[name].Value())
	}
	for _, name := range sortedKeys(r.gauges) {
		fmt.Fprintf(ew, "# TYPE %s gauge\n%s %g\n", name, name, r.gauges[name].Value())
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		count, sum, buckets := h.Snapshot()
		fmt.Fprintf(ew, "# TYPE %s histogram\n", name)
		var cum uint64
		for i, n := range buckets {
			if n == 0 {
				continue
			}
			cum += n
			fmt.Fprintf(ew, "%s_bucket{le=\"%d\"} %d\n", name, BucketUpperBound(i), cum)
		}
		fmt.Fprintf(ew, "%s_bucket{le=\"+Inf\"} %d\n", name, count)
		fmt.Fprintf(ew, "%s_sum %d\n%s_count %d\n", name, sum, name, count)
	}
	return ew.err
}

// HistogramJSON is the JSON shape of one histogram.
type HistogramJSON struct {
	Count   uint64       `json:"count"`
	Sum     uint64       `json:"sum"`
	Buckets []BucketJSON `json:"buckets,omitempty"`
}

// BucketJSON is one non-empty histogram bucket.
type BucketJSON struct {
	LE    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// registryJSON is the JSON exposition shape.
type registryJSON struct {
	Counters   map[string]uint64        `json:"counters,omitempty"`
	Gauges     map[string]float64       `json:"gauges,omitempty"`
	Histograms map[string]HistogramJSON `json:"histograms,omitempty"`
}

// WriteJSON writes the registry as a single JSON object.
func (r *Registry) WriteJSON(w io.Writer) error {
	r.mu.Lock()
	out := registryJSON{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramJSON, len(r.hists)),
	}
	for name, c := range r.counters {
		out.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		out.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		count, sum, buckets := h.Snapshot()
		hj := HistogramJSON{Count: count, Sum: sum}
		for i, n := range buckets {
			if n != 0 {
				hj.Buckets = append(hj.Buckets, BucketJSON{LE: BucketUpperBound(i), Count: n})
			}
		}
		out.Histograms[name] = hj
	}
	r.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteFile runs the collection hooks and atomically writes the registry to
// path: JSON when the extension is .json, Prometheus text otherwise. A
// crash mid-write leaves the previous file intact rather than a torn one.
func (r *Registry) WriteFile(path string) error {
	r.Collect()
	return AtomicWriteFile(path, 0o644, func(w io.Writer) error {
		if strings.EqualFold(filepath.Ext(path), ".json") {
			return r.WriteJSON(w)
		}
		return r.WritePrometheus(w)
	})
}

// errWriter is a sticky-error io.Writer so multi-write renderers propagate
// the first failure instead of silently dropping it.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, err
}
