package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Serve starts the operational HTTP endpoint on addr in a background
// goroutine and returns the listening server. It exposes:
//
//	/debug/pprof/*  net/http/pprof profiles (cpu, heap, goroutine, ...)
//	/metrics        the registry in Prometheus text format (collect hooks
//	                run on every scrape, so values are scrape-fresh)
//	/healthz        liveness ("ok")
//
// reg may be nil, in which case /metrics serves an empty exposition.
func Serve(addr string, reg *Registry) (*http.Server, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if reg == nil {
			return
		}
		reg.Collect()
		_ = reg.WritePrometheus(w)
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return srv, nil
}
