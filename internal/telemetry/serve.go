package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// StatusFunc supplies the live run-status document served at /debug/status.
// It is called on every request, so implementations return a fresh snapshot
// (cells done/failed/retried, per-worker occupancy, attribution counters,
// ...) and must be safe for concurrent use. A nil StatusFunc serves an
// empty object.
type StatusFunc func() any

// Serve starts the operational HTTP endpoint on addr in a background
// goroutine and returns the listening server. It exposes:
//
//	/debug/pprof/*  net/http/pprof profiles (cpu, heap, goroutine, ...)
//	/metrics        the registry in Prometheus text format (collect hooks
//	                run on every scrape, so values are scrape-fresh)
//	/healthz        liveness ("ok")
//
// reg may be nil, in which case /metrics serves an empty exposition.
func Serve(addr string, reg *Registry) (*http.Server, error) {
	return ServeStatus(addr, reg, nil)
}

// ServeStatus is Serve plus the live run dashboard:
//
//	/debug/status       the status document as JSON
//	/debug/status/html  a minimal self-refreshing HTML view of the same
//
// The returned server's Addr field holds the actual bound address (so
// addr may use port 0 in tests). Shut it down with Close or Shutdown.
func ServeStatus(addr string, reg *Registry, status StatusFunc) (*http.Server, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if reg == nil {
			return
		}
		reg.Collect()
		if err := reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/status", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		var doc any = struct{}{}
		if status != nil {
			doc = status()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/status/html", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, statusHTML)
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Addr: ln.Addr().String(), Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return srv, nil
}

// statusHTML is the dashboard page: it polls /debug/status every two seconds
// and renders the JSON document as nested tables. Everything is inline —
// no external assets, works from curl'd file:// copies too.
const statusHTML = `<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8"><title>uopsim run status</title>
<style>
body{font-family:ui-monospace,monospace;margin:1.5rem;background:#fafafa;color:#222}
h1{font-size:1.1rem} table{border-collapse:collapse;margin:.4rem 0}
td,th{border:1px solid #ccc;padding:.15rem .5rem;text-align:left;vertical-align:top}
th{background:#eee} .k{color:#4477AA} #err{color:#AA3377}
</style></head><body>
<h1>uopsim run status <small id="ts"></small></h1>
<div id="err"></div><div id="root">loading…</div>
<script>
function render(v){
  if(v===null||typeof v!=="object"){return document.createTextNode(String(v))}
  var t=document.createElement("table");
  if(Array.isArray(v)){
    v.forEach(function(x,i){var r=t.insertRow();var h=document.createElement("th");
      h.textContent=i;r.appendChild(h);r.insertCell().appendChild(render(x))});
  }else{
    Object.keys(v).forEach(function(k){var r=t.insertRow();var h=document.createElement("th");
      h.className="k";h.textContent=k;r.appendChild(h);r.insertCell().appendChild(render(v[k]))});
  }
  return t;
}
function tick(){
  fetch("/debug/status").then(function(r){return r.json()}).then(function(doc){
    var root=document.getElementById("root");root.textContent="";
    root.appendChild(render(doc));
    document.getElementById("ts").textContent=new Date().toLocaleTimeString();
    document.getElementById("err").textContent="";
  }).catch(function(e){document.getElementById("err").textContent="fetch failed: "+e});
}
tick();setInterval(tick,2000);
</script></body></html>
`
