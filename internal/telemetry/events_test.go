package telemetry

import (
	"bytes"
	"reflect"
	"testing"
)

func TestJSONLRoundTrip(t *testing.T) {
	events := []Event{
		{Seq: 1, Kind: EventMiss, Set: 3, Key: 0x4000, Uops: 12, MissUops: 12, Policy: "lru"},
		{Seq: 2, Kind: EventInsert, Set: 3, Key: 0x4000, Uops: 12, Policy: "lru"},
		{Seq: 3, Kind: EventHit, Set: 3, Key: 0x4000, Uops: 12, HitUops: 12, Policy: "lru"},
		{Seq: 4, Kind: EventPartial, Set: 1, Key: 0x8000, Uops: 16, HitUops: 10, MissUops: 6, Policy: "lru"},
		{Seq: 5, Kind: EventEvict, Set: 3, Key: 0x4000, VictimKey: 0x4000, VictimUops: 12, VictimAge: 2, Policy: "lru"},
		{Seq: 6, Kind: EventBypass, Set: 0, Key: 0xc000, Uops: 99, Policy: "lru"},
		{Seq: 7, Kind: EventCoalesce, Set: 2, Key: 0xd000, Uops: 4, Policy: "lru"},
		{Seq: 8, Kind: EventInvalidate, Set: 2, Key: 0xd000, VictimKey: 0xd000, VictimUops: 4, Policy: "lru"},
	}
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf, 1)
	for _, ev := range events {
		sink.Emit(ev)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if sink.Seen() != uint64(len(events)) || sink.Emitted() != uint64(len(events)) {
		t.Fatalf("seen=%d emitted=%d, want %d/%d", sink.Seen(), sink.Emitted(), len(events), len(events))
	}
	got, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, events)
	}
	kinds := CountKinds(got)
	for _, k := range []string{EventHit, EventPartial, EventMiss, EventInsert, EventCoalesce, EventEvict, EventBypass, EventInvalidate} {
		if kinds[k] != 1 {
			t.Errorf("kind %q count = %d, want 1", k, kinds[k])
		}
	}
}

func TestJSONLSampling(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf, 3)
	const n = 10
	for i := 0; i < n; i++ {
		sink.Emit(Event{Seq: uint64(i), Kind: EventHit})
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if sink.Seen() != n {
		t.Fatalf("seen = %d, want %d", sink.Seen(), n)
	}
	// Every 3rd event starting with the first: seqs 0, 3, 6, 9.
	got, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sink.Emitted() != uint64(len(got)) {
		t.Fatalf("emitted = %d but %d records written", sink.Emitted(), len(got))
	}
	wantSeqs := []uint64{0, 3, 6, 9}
	if len(got) != len(wantSeqs) {
		t.Fatalf("kept %d events, want %d", len(got), len(wantSeqs))
	}
	for i, ev := range got {
		if ev.Seq != wantSeqs[i] {
			t.Errorf("event %d has seq %d, want %d", i, ev.Seq, wantSeqs[i])
		}
	}
}

func TestJSONLSampleClamp(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf, 0) // clamps to 1
	sink.Emit(Event{Kind: EventMiss})
	sink.Emit(Event{Kind: EventMiss})
	if sink.Emitted() != 2 {
		t.Fatalf("emitted = %d, want 2", sink.Emitted())
	}
}
