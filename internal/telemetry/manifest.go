package telemetry

import (
	"encoding/json"
	"io"
	"runtime"
	"runtime/debug"
	"time"
)

// BuildInfo is the git-describe-style identification of the binary that
// produced a run, extracted from the Go build metadata.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Module    string `json:"module,omitempty"`
	Revision  string `json:"vcs_revision,omitempty"`
	Time      string `json:"vcs_time,omitempty"`
	Modified  bool   `json:"vcs_modified,omitempty"`
}

// CollectBuildInfo reads the binary's embedded build metadata. Fields that
// the build did not stamp (e.g. VCS data in test binaries) stay empty.
func CollectBuildInfo() BuildInfo {
	out := BuildInfo{GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	out.Module = bi.Main.Path
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			out.Revision = s.Value
		case "vcs.time":
			out.Time = s.Value
		case "vcs.modified":
			out.Modified = s.Value == "true"
		}
	}
	return out
}

// AppRun records one application's share of an experiment.
type AppRun struct {
	App         string  `json:"app"`
	WallSeconds float64 `json:"wall_seconds"`
	Error       string  `json:"error,omitempty"`
}

// CellFailure records one experiment cell that exhausted its retry budget:
// which cell, how many attempts ran, the final error, and — when the
// failure was a panic — the goroutine stack, so a crashed campaign's
// manifest points at the unit of work instead of at the scheduler.
type CellFailure struct {
	Cell     string `json:"cell"`
	Attempts int    `json:"attempts"`
	Error    string `json:"error"`
	Stack    string `json:"stack,omitempty"`
}

// FigureRun records one experiment (figure/table) of a sweep.
type FigureRun struct {
	ID          string   `json:"id"`
	Title       string   `json:"title,omitempty"`
	WallSeconds float64  `json:"wall_seconds"`
	Rows        int      `json:"rows,omitempty"`
	Apps        []AppRun `json:"apps,omitempty"`
	Error       string   `json:"error,omitempty"`
	// FailedCells lists the cells that failed after every retry; with
	// graceful degradation enabled the figure still renders, with these
	// cells marked missing.
	FailedCells []CellFailure `json:"failed_cells,omitempty"`
}

// Run statuses recorded in RunManifest.Status.
const (
	// StatusOK: every experiment and artifact write succeeded.
	StatusOK = "ok"
	// StatusFailed: the run completed but at least one experiment, cell,
	// claim check, or artifact write failed.
	StatusFailed = "failed"
	// StatusInterrupted: the run was cancelled (SIGINT/SIGTERM) and
	// drained gracefully; completed figures are recorded, the rest were
	// abandoned.
	StatusInterrupted = "interrupted"
)

// RunManifest is the audit record written next to a run's outputs
// (run.json): what ran, with which configuration and build, how long each
// part took, and what failed.
type RunManifest struct {
	Tool string   `json:"tool"`
	Args []string `json:"args,omitempty"`
	// Status is one of StatusOK, StatusFailed, StatusInterrupted (empty
	// in manifests from before the resilience layer).
	Status      string         `json:"status,omitempty"`
	Start       time.Time      `json:"start"`
	End         time.Time      `json:"end"`
	WallSeconds float64        `json:"wall_seconds"`
	Build       BuildInfo      `json:"build"`
	Config      map[string]any `json:"config,omitempty"`
	Seed        int64          `json:"seed,omitempty"`
	Blocks      int            `json:"blocks,omitempty"`
	// Workers is the resolved concurrency budget the run used (1 = the
	// serial schedule).
	Workers int `json:"workers,omitempty"`
	// PeakHeapAlloc is the largest runtime.MemStats.HeapAlloc sampled over
	// the run (see HeapWatermark), tracking memory use alongside speed.
	PeakHeapAlloc uint64      `json:"peak_heap_alloc_bytes,omitempty"`
	Apps          []string    `json:"apps,omitempty"`
	Figures       []FigureRun `json:"figures,omitempty"`
	Failures      []string    `json:"failures,omitempty"`
	// Inspect records the introspection artifacts (-inspect / -trace-out)
	// so a manifest fully indexes the run's outputs.
	Inspect *InspectArtifacts `json:"inspect,omitempty"`
	// Cache records the content-addressed artifact cache's provenance
	// (-cache-dir): where the cache lived and how much of the run was served
	// from it, so a result file states whether its traces and keep-plans
	// were recomputed or replayed.
	Cache *ArtifactCacheInfo `json:"cache,omitempty"`
}

// ArtifactCacheInfo is the run manifest's record of artifact-cache traffic.
// It mirrors internal/artifact's per-kind stats without importing it (the
// artifact package sits above telemetry in the dependency order).
type ArtifactCacheInfo struct {
	Dir   string                       `json:"dir"`
	Kinds map[string]ArtifactCacheKind `json:"kinds,omitempty"`
}

// ArtifactCacheKind is one artifact kind's hit/miss/error traffic.
type ArtifactCacheKind struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Errors uint64 `json:"errors"`
}

// InspectArtifacts indexes the decision-level introspection outputs of a
// run: the eviction-attribution tables and plot, the Chrome span trace, and
// the attribution roll-up for quick triage without opening the CSVs.
type InspectArtifacts struct {
	AttributionCSV string `json:"attribution_csv,omitempty"`
	ReuseDistCSV   string `json:"reuse_dist_csv,omitempty"`
	AttributionSVG string `json:"attribution_svg,omitempty"`
	TraceJSON      string `json:"trace_json,omitempty"`
	Evictions      uint64 `json:"evictions,omitempty"`
	Justified      uint64 `json:"justified,omitempty"`
	Premature      uint64 `json:"premature,omitempty"`
	Divergent      uint64 `json:"divergent,omitempty"`
}

// NewRunManifest starts a manifest for the named tool, stamping start time
// and build info.
func NewRunManifest(tool string, args []string) *RunManifest {
	return &RunManifest{
		Tool:  tool,
		Args:  args,
		Start: time.Now().UTC(),
		Build: CollectBuildInfo(),
	}
}

// Finish stamps the end time and wall clock.
func (m *RunManifest) Finish() {
	m.End = time.Now().UTC()
	m.WallSeconds = m.End.Sub(m.Start).Seconds()
}

// WriteJSON writes the manifest as indented JSON.
func (m *RunManifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// WriteFile atomically writes the manifest to path (conventionally
// run.json next to the run's CSV/SVG output): a crashed or interrupted
// process leaves either the previous manifest or the complete new one,
// never a torn prefix.
func (m *RunManifest) WriteFile(path string) error {
	return AtomicWriteFile(path, 0o644, m.WriteJSON)
}
