package telemetry

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// AtomicWriteFile writes a file so a crash can never leave a torn artifact
// at path: the content is streamed to a temporary file in the destination
// directory (same filesystem, so the final step is a true rename), fsynced,
// and renamed over path only once every byte is durably on disk. On any
// failure the temporary file is removed and path is left untouched —
// either the complete old artifact or the complete new one exists, never a
// prefix of the new one.
func AtomicWriteFile(path string, perm os.FileMode, write func(w io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("atomic write %s: sync: %w", path, err)
	}
	if err = tmp.Chmod(perm); err != nil {
		return fmt.Errorf("atomic write %s: chmod: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("atomic write %s: close: %w", path, err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	return nil
}
