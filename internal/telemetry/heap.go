package telemetry

import (
	"runtime"
	"sync/atomic"
	"time"
)

// HeapWatermark tracks the peak runtime.MemStats.HeapAlloc observed over a
// run by sampling in a background goroutine. The run manifest records the
// peak so memory regressions (or wins from allocation work) are tracked
// alongside wall-clock numbers.
//
// ReadMemStats stops the world for a moment, so the sampling interval is a
// compromise: the default 100ms costs well under 0.1% of a simulation run
// while still catching the sustained peaks that matter for sizing (a single
// GC-transient spike between samples is not what capacity planning needs).
type HeapWatermark struct {
	peak atomic.Uint64
	stop chan struct{}
	done chan struct{}
}

// StartHeapWatermark begins sampling HeapAlloc every interval (<= 0 selects
// 100ms). Call Stop to finish and read the peak.
func StartHeapWatermark(interval time.Duration) *HeapWatermark {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	w := &HeapWatermark{stop: make(chan struct{}), done: make(chan struct{})}
	w.sample()
	go func() {
		defer close(w.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				w.sample()
			case <-w.stop:
				return
			}
		}
	}()
	return w
}

func (w *HeapWatermark) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	for {
		cur := w.peak.Load()
		if ms.HeapAlloc <= cur || w.peak.CompareAndSwap(cur, ms.HeapAlloc) {
			return
		}
	}
}

// Peak returns the largest HeapAlloc sampled so far.
func (w *HeapWatermark) Peak() uint64 { return w.peak.Load() }

// Stop takes a final sample, terminates the sampler, and returns the peak.
// Safe to call once.
func (w *HeapWatermark) Stop() uint64 {
	close(w.stop)
	<-w.done
	w.sample()
	return w.Peak()
}
