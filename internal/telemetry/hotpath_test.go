// Hot-path cost test: the acceptance bar for the instrumentation is that a
// cache with no sink (and optionally live metrics) pays zero allocations per
// lookup. This lives in telemetry's external test package so it can import
// uopcache without a cycle.
//
// These AllocsPerRun measurements are the dynamic half of the hot-path
// contract; the static half is simlint's hotpath analyzer, which checks
// every //simlint:hotpath-marked function (uopcache Lookup/Insert, policy
// OnHit/Victim, frontend servePW) and everything it statically calls — paths
// no test happens to drive included. See ANALYSIS.md.
package telemetry_test

import (
	"testing"

	"uopsim/internal/telemetry"
	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
)

// nopPolicy isolates the instrumentation cost from any policy bookkeeping.
type nopPolicy struct{}

func (nopPolicy) Name() string                  { return "nop" }
func (nopPolicy) Bind(uopcache.Geometry)        {}
func (nopPolicy) OnHit(int, int32, uint64)      {}
func (nopPolicy) OnInsert(int, int32, trace.PW) {}
func (nopPolicy) OnEvict(int, int32, uint64)    {}
func (nopPolicy) Victim(_ int, residents []uopcache.Resident, _ trace.PW) uopcache.Decision {
	return uopcache.Decision{VictimKey: residents[0].Key}
}

func newHotCache() (*uopcache.Cache, trace.PW, trace.PW) {
	cfg := uopcache.Config{Entries: 64, Ways: 4, UopsPerEntry: 8}
	c := uopcache.New(cfg, nopPolicy{})
	hot := trace.PW{Start: 0x1000, Bytes: 24, NumInst: 4, NumUops: 6}
	cold := trace.PW{Start: 0x2000, Bytes: 24, NumInst: 4, NumUops: 6}
	c.Insert(hot)
	return c, hot, cold
}

func TestLookupNoSinkNoAllocs(t *testing.T) {
	c, hot, cold := newHotCache()
	if got := testing.AllocsPerRun(1000, func() { c.Lookup(hot) }); got != 0 {
		t.Errorf("hit path with telemetry off: %.1f allocs/lookup, want 0", got)
	}
	if got := testing.AllocsPerRun(1000, func() { c.Lookup(cold) }); got != 0 {
		t.Errorf("miss path with telemetry off: %.1f allocs/lookup, want 0", got)
	}
}

func TestLookupWithMetricsNoAllocs(t *testing.T) {
	c, hot, cold := newHotCache()
	c.AttachMetrics(telemetry.NewRegistry())
	if got := testing.AllocsPerRun(1000, func() { c.Lookup(hot) }); got != 0 {
		t.Errorf("hit path with metrics attached: %.1f allocs/lookup, want 0", got)
	}
	if got := testing.AllocsPerRun(1000, func() { c.Lookup(cold) }); got != 0 {
		t.Errorf("miss path with metrics attached: %.1f allocs/lookup, want 0", got)
	}
}

func BenchmarkLookupNoSink(b *testing.B) {
	c, hot, _ := newHotCache()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(hot)
	}
}

func BenchmarkLookupWithMetrics(b *testing.B) {
	c, hot, _ := newHotCache()
	c.AttachMetrics(telemetry.NewRegistry())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(hot)
	}
}
