package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// Event kinds emitted by the micro-op cache and its drivers. The names are
// the wire format (the "kind" field of each JSONL record).
const (
	// EventHit: a lookup fully served from the cache.
	EventHit = "hit"
	// EventPartial: a lookup partially served (stored window shorter than
	// the request); the remainder goes to the legacy decode path.
	EventPartial = "partial"
	// EventMiss: no window with the lookup's start address was resident.
	EventMiss = "miss"
	// EventInsert: a window became resident.
	EventInsert = "insert"
	// EventCoalesce: a miss merged into an already in-flight insertion
	// for the same start address.
	EventCoalesce = "coalesce"
	// EventEvict: a resident window was evicted to make room (or force-
	// evicted by an offline policy); carries victim cost and age.
	EventEvict = "evict"
	// EventBypass: an insertion was declined — by the policy, because the
	// window exceeds a whole set, or because an offline plan cancelled an
	// in-flight insertion.
	EventBypass = "bypass"
	// EventInvalidate: a window was removed by L1i-inclusion invalidation.
	EventInvalidate = "invalidate"
)

// Event is one structured cache-decision record. Zero-valued optional fields
// are omitted from the JSON encoding.
type Event struct {
	// Seq is the cache's lookup sequence number when the event fired.
	Seq uint64 `json:"seq"`
	// Kind is one of the Event* constants.
	Kind string `json:"kind"`
	// Set is the cache set index.
	Set int `json:"set"`
	// Key is the window start address the event concerns.
	Key uint64 `json:"key"`
	// Uops is the request/window size in micro-ops.
	Uops int `json:"uops,omitempty"`
	// HitUops and MissUops split a lookup's outcome in micro-ops.
	HitUops  int `json:"hit_uops,omitempty"`
	MissUops int `json:"miss_uops,omitempty"`
	// VictimKey, VictimUops and VictimAge describe an eviction victim:
	// its start address, its cost in micro-ops, and the number of lookups
	// since it was last touched (a reuse-distance proxy).
	VictimKey  uint64 `json:"victim_key,omitempty"`
	VictimUops int    `json:"victim_uops,omitempty"`
	VictimAge  uint64 `json:"victim_age,omitempty"`
	// IncomingKey is the start address of the window whose insertion
	// forced an eviction (zero for eager/offline evictions with no
	// incoming window).
	IncomingKey uint64 `json:"incoming_key,omitempty"`
	// Reason is the policy's stated grounds for an eviction or bypass
	// decision (a small closed vocabulary per policy, e.g. "lru_oldest",
	// "rrpv_distant", "etr_furthest"); empty for policies predating the
	// introspection layer.
	Reason string `json:"reason,omitempty"`
	// Score is the policy-internal ranking value the victim lost with
	// (stamp, RRPV, ETR, weight, ...); its unit is policy-specific and
	// only comparable within one policy.
	Score float64 `json:"score,omitempty"`
	// Policy names the replacement policy that made the decision.
	Policy string `json:"policy,omitempty"`
}

// EventSink receives structured cache-decision events. Implementations must
// be safe for concurrent use when attached to parallel runs. A nil sink on
// the emitting side disables tracing entirely; emitters guard with a nil
// check so the hot path pays nothing when tracing is off.
type EventSink interface {
	Emit(Event)
}

// JSONLSink writes events as JSON Lines, keeping every sample-th event
// (sample <= 1 keeps all). It is safe for concurrent use.
type JSONLSink struct {
	mu      sync.Mutex
	bw      *bufio.Writer
	enc     *json.Encoder
	sample  uint64
	seen    uint64
	emitted uint64
}

// NewJSONLSink wraps w in a buffered JSONL event sink. Call Flush (or Close
// the underlying writer after Flush) when done.
func NewJSONLSink(w io.Writer, sample int) *JSONLSink {
	if sample < 1 {
		sample = 1
	}
	bw := bufio.NewWriter(w)
	return &JSONLSink{bw: bw, enc: json.NewEncoder(bw), sample: uint64(sample)}
}

// Emit implements EventSink.
func (s *JSONLSink) Emit(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seen++
	if (s.seen-1)%s.sample != 0 {
		return
	}
	s.emitted++
	_ = s.enc.Encode(ev) // deferred to Flush's error
}

// Seen returns how many events reached the sink; Emitted how many were kept
// after sampling.
func (s *JSONLSink) Seen() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seen
}

// Emitted returns the number of events written after sampling.
func (s *JSONLSink) Emitted() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.emitted
}

// Flush writes buffered events through to the underlying writer.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bw.Flush()
}

// ReadEvents decodes a JSONL event stream (the inverse of JSONLSink).
func ReadEvents(r io.Reader) ([]Event, error) {
	var out []Event
	dec := json.NewDecoder(r)
	for {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, err
		}
		out = append(out, ev)
	}
}

// CountKinds tallies an event stream by kind; reconciliation checks compare
// this against uopcache.Stats and the uopcache_* counters.
func CountKinds(events []Event) map[string]uint64 {
	out := make(map[string]uint64)
	for _, ev := range events {
		out[ev.Kind]++
	}
	return out
}
