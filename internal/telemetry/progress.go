package telemetry

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress prints one-line status updates for long runs. All methods are
// nil-receiver safe, so callers thread a possibly-nil *Progress without
// guarding every call site; output conventionally goes to stderr to keep
// stdout stable for tests and pipelines.
type Progress struct {
	mu    sync.Mutex
	w     io.Writer
	start time.Time
}

// NewProgress returns a reporter writing to w (nil w disables output).
func NewProgress(w io.Writer) *Progress {
	return &Progress{w: w, start: time.Now()}
}

// Step reports one completed item of a scoped sequence, e.g.
// "[fig8] kafka 3/11 1.2s (total 14.3s)".
func (p *Progress) Step(scope, item string, done, total int, itemElapsed time.Duration) {
	if p == nil || p.w == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	fmt.Fprintf(p.w, "[%s] %s %d/%d %s (total %s)\n",
		scope, item, done, total,
		itemElapsed.Round(time.Millisecond),
		time.Since(p.start).Round(time.Millisecond))
}

// Printf reports a freeform status line prefixed with the total elapsed
// time.
func (p *Progress) Printf(format string, args ...any) {
	if p == nil || p.w == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	fmt.Fprintf(p.w, "[%s] ", time.Since(p.start).Round(time.Millisecond))
	fmt.Fprintf(p.w, format, args...)
	fmt.Fprintln(p.w)
}
