package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// startServer spins up ServeStatus on an ephemeral port and tears it down
// with the test.
func startServer(t *testing.T, reg *Registry, status StatusFunc) string {
	t.Helper()
	srv, err := ServeStatus("127.0.0.1:0", reg, status)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return "http://" + srv.Addr
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServeHandlers(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("uopcache_hits_total").Add(42)
	base := startServer(t, reg, func() any {
		return map[string]any{"cells_done": 7, "running": []string{"fig8"}}
	})

	if code, body := get(t, base+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("healthz = %d %q", code, body)
	}
	if code, body := get(t, base+"/metrics"); code != 200 || !strings.Contains(body, "uopcache_hits_total 42") {
		t.Errorf("metrics = %d %q", code, body)
	}
	code, body := get(t, base+"/debug/status")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	var doc struct {
		CellsDone int      `json:"cells_done"`
		Running   []string `json:"running"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("status not JSON: %v\n%s", err, body)
	}
	if doc.CellsDone != 7 || len(doc.Running) != 1 || doc.Running[0] != "fig8" {
		t.Errorf("status doc = %+v", doc)
	}
	if code, body := get(t, base+"/debug/status/html"); code != 200 ||
		!strings.Contains(body, "<html") || !strings.Contains(body, "/debug/status") {
		t.Errorf("status html = %d %.120q", code, body)
	}
}

func TestServeNilRegistryAndStatus(t *testing.T) {
	base := startServer(t, nil, nil)
	if code, _ := get(t, base+"/metrics"); code != 200 {
		t.Errorf("nil-registry metrics = %d", code)
	}
	code, body := get(t, base+"/debug/status")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("nil-status body not JSON: %v", err)
	}
	if len(doc) != 0 {
		t.Errorf("nil status served %v, want empty object", doc)
	}
}

// TestConcurrentScrapeDuringRun hammers /metrics and /debug/status while a
// simulated run mutates the registry and the status document — the data-race
// check for the live dashboard (run under -race in CI).
func TestConcurrentScrapeDuringRun(t *testing.T) {
	reg := NewRegistry()
	hits := reg.Counter("uopcache_hits_total")
	var mu sync.Mutex
	done := 0
	base := startServer(t, reg, func() any {
		mu.Lock()
		defer mu.Unlock()
		return map[string]int{"cells_done": done}
	})

	stop := make(chan struct{})
	var mutator sync.WaitGroup
	mutator.Add(1)
	go func() { // the "run": mutates counters and status
		defer mutator.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			hits.Inc()
			mu.Lock()
			done++
			mu.Unlock()
		}
	}()
	var scrapers sync.WaitGroup
	for i := 0; i < 4; i++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for j := 0; j < 25; j++ {
				if code, _ := get(t, base+"/metrics"); code != 200 {
					t.Errorf("metrics scrape = %d", code)
					return
				}
				if code, body := get(t, base+"/debug/status"); code != 200 ||
					!strings.Contains(body, "cells_done") {
					t.Errorf("status scrape = %d %q", code, body)
					return
				}
			}
		}()
	}
	// The mutator keeps running until every scrape finished, so scrapes
	// always race live updates.
	scrapers.Wait()
	close(stop)
	mutator.Wait()
	if hits.Value() == 0 {
		t.Error("mutator never ran")
	}
}

func TestServeGracefulShutdown(t *testing.T) {
	srv, err := ServeStatus("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr
	if code, _ := get(t, base+"/healthz"); code != 200 {
		t.Fatalf("pre-shutdown healthz = %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("server still accepting connections after Shutdown")
	}
}
