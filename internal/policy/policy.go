// Package policy implements every online micro-op cache replacement policy
// the paper evaluates: the LRU baseline, Random, SRRIP, SHiP++, GHRP,
// Mockingjay, the profile-guided Thermometer, and the paper's contribution
// FURBYS. All of them implement uopcache.Policy at whole-PW granularity.
//
// Determinism note: uopcache passes resident snapshots in map order, so every
// policy here derives victim choice from a total order over its own metadata
// (criterion, then recency stamp, then key) — never from slice order.
package policy

import (
	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
)

// Decision reason vocabulary. Each policy stamps its Victim decisions with
// one of these constant strings (plus a policy-specific losing score) so the
// introspection layer can attribute evictions without re-deriving policy
// state. Constants, not fmt: the hot path must not allocate.
const (
	// ReasonLRUOldest: victim had the smallest recency stamp.
	ReasonLRUOldest = "lru_oldest"
	// ReasonRandom: victim drawn by the salted-hash pseudo-random pick.
	ReasonRandom = "random_draw"
	// ReasonRRPVDistant: victim was at the distant re-reference value
	// (RRIP family: SRRIP, SHiP++, DRRIP).
	ReasonRRPVDistant = "rrpv_distant"
	// ReasonPredictedDead: a reuse predictor classified the victim dead
	// (GHRP dead-block prediction).
	ReasonPredictedDead = "predicted_dead"
	// ReasonETRFurthest: victim had the largest estimated time remaining
	// (Mockingjay).
	ReasonETRFurthest = "etr_furthest"
	// ReasonColdestClass: victim was in the coldest profile temperature
	// class (Thermometer).
	ReasonColdestClass = "coldest_class"
	// ReasonMinWeight: victim had the smallest profile weight (FURBYS).
	ReasonMinWeight = "min_weight"
	// ReasonBypass: the incoming window was declined instead of evicting.
	ReasonBypass = "bypass_incoming"
)

// key identifies a resident window within the whole cache.
type key struct {
	set int
	pc  uint64
}

// recency is a shared building block tracking LRU stamps per resident.
type recency struct {
	clock uint64
	stamp map[key]uint64
}

func newRecency() *recency { return &recency{stamp: make(map[key]uint64)} }

func (r *recency) touch(set int, pc uint64) {
	r.clock++
	r.stamp[key{set, pc}] = r.clock
}

func (r *recency) drop(set int, pc uint64) { delete(r.stamp, key{set, pc}) }

func (r *recency) of(set int, pc uint64) uint64 { return r.stamp[key{set, pc}] }

// older reports whether (a) is a strictly better LRU victim than (b):
// smaller stamp wins; key breaks exact ties (possible only for the zero
// stamp of untracked residents).
func (r *recency) older(set int, a, b uint64) bool {
	sa, sb := r.of(set, a), r.of(set, b)
	if sa != sb {
		return sa < sb
	}
	return a < b
}

// ---------------------------------------------------------------------------
// LRU

// LRU is the least-recently-used baseline the paper normalizes against.
type LRU struct{ rec *recency }

// NewLRU returns the LRU policy.
func NewLRU() *LRU { return &LRU{rec: newRecency()} }

// Name implements uopcache.Policy.
func (p *LRU) Name() string { return "lru" }

// OnHit implements uopcache.Policy.
//
//simlint:hotpath
func (p *LRU) OnHit(set int, pc uint64) { p.rec.touch(set, pc) }

// OnInsert implements uopcache.Policy.
func (p *LRU) OnInsert(set int, pw trace.PW) { p.rec.touch(set, pw.Start) }

// OnEvict implements uopcache.Policy.
func (p *LRU) OnEvict(set int, pc uint64) { p.rec.drop(set, pc) }

// Victim implements uopcache.Policy: evict the least recently used window.
//
//simlint:hotpath
func (p *LRU) Victim(set int, residents []uopcache.Resident, _ trace.PW) uopcache.Decision {
	best := residents[0].Key
	for _, r := range residents[1:] {
		if p.rec.older(set, r.Key, best) {
			best = r.Key
		}
	}
	return uopcache.Decision{VictimKey: best, Reason: ReasonLRUOldest, Score: float64(p.rec.of(set, best))}
}

// ---------------------------------------------------------------------------
// Random

// Random evicts a pseudo-random resident; a sanity baseline.
type Random struct {
	state uint64
}

// NewRandom returns the random policy seeded deterministically.
func NewRandom(seed uint64) *Random {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Random{state: seed}
}

// Name implements uopcache.Policy.
func (p *Random) Name() string { return "random" }

// OnHit implements uopcache.Policy.
//
//simlint:hotpath
func (p *Random) OnHit(int, uint64) {}

// OnInsert implements uopcache.Policy.
func (p *Random) OnInsert(int, trace.PW) {}

// OnEvict implements uopcache.Policy.
func (p *Random) OnEvict(int, uint64) {}

func (p *Random) next() uint64 {
	// xorshift64*
	p.state ^= p.state >> 12
	p.state ^= p.state << 25
	p.state ^= p.state >> 27
	return p.state * 0x2545F4914F6CDD1D
}

// Victim implements uopcache.Policy. To stay independent of the snapshot's
// map order, the victim is the resident with the smallest hashed key.
//
//simlint:hotpath
func (p *Random) Victim(set int, residents []uopcache.Resident, _ trace.PW) uopcache.Decision {
	salt := p.next()
	best := residents[0].Key
	bestH := mix(best ^ salt)
	for _, r := range residents[1:] {
		if h := mix(r.Key ^ salt); h < bestH {
			best, bestH = r.Key, h
		}
	}
	return uopcache.Decision{VictimKey: best, Reason: ReasonRandom, Score: float64(bestH)}
}

func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return x
}
