// Package policy implements every online micro-op cache replacement policy
// the paper evaluates: the LRU baseline, Random, SRRIP, SHiP++, GHRP,
// Mockingjay, the profile-guided Thermometer, and the paper's contribution
// FURBYS. All of them implement uopcache.Policy at whole-PW granularity.
//
// Metadata layout: uopcache.Policy passes a stable (set, slot) handle with
// every event, and each policy keeps its per-resident state (recency stamps,
// RRPV bits, signatures) in flat arrays indexed by set*slotsPerSet+slot —
// the same shape as hardware's per-way metadata bits, and map-free on the
// hot path.
//
// Determinism note: resident snapshots arrive in slot (way) order, which is
// itself deterministic — slot assignment depends only on the event sequence.
// Each policy still derives its victim from a total order over its own
// metadata (criterion, then recency stamp, then key), never from raw slice
// position, so snapshot order is immaterial to the decision.
package policy

import (
	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
)

// Decision reason vocabulary. Each policy stamps its Victim decisions with
// one of these constant strings (plus a policy-specific losing score) so the
// introspection layer can attribute evictions without re-deriving policy
// state. Constants, not fmt: the hot path must not allocate.
const (
	// ReasonLRUOldest: victim had the smallest recency stamp.
	ReasonLRUOldest = "lru_oldest"
	// ReasonRandom: victim drawn by the salted-hash pseudo-random pick.
	ReasonRandom = "random_draw"
	// ReasonRRPVDistant: victim was at the distant re-reference value
	// (RRIP family: SRRIP, SHiP++, DRRIP).
	ReasonRRPVDistant = "rrpv_distant"
	// ReasonPredictedDead: a reuse predictor classified the victim dead
	// (GHRP dead-block prediction).
	ReasonPredictedDead = "predicted_dead"
	// ReasonETRFurthest: victim had the largest estimated time remaining
	// (Mockingjay).
	ReasonETRFurthest = "etr_furthest"
	// ReasonColdestClass: victim was in the coldest profile temperature
	// class (Thermometer).
	ReasonColdestClass = "coldest_class"
	// ReasonMinWeight: victim had the smallest profile weight (FURBYS).
	ReasonMinWeight = "min_weight"
	// ReasonBypass: the incoming window was declined instead of evicting.
	ReasonBypass = "bypass_incoming"
)

// recency is a shared building block tracking LRU stamps per slot. Stamps
// are globally unique (one counter across all sets), so "older" is a strict
// total order over live residents.
type recency struct {
	clock       uint64
	slotsPerSet int
	stamp       []uint64
}

func newRecency() *recency { return &recency{} }

// bind sizes the stamp array for the cache geometry.
func (r *recency) bind(g uopcache.Geometry) {
	r.slotsPerSet = g.SlotsPerSet
	r.stamp = make([]uint64, g.Slots())
}

//simlint:hotpath
func (r *recency) touch(set int, slot int32) {
	r.clock++
	r.stamp[set*r.slotsPerSet+int(slot)] = r.clock
}

func (r *recency) drop(set int, slot int32) { r.stamp[set*r.slotsPerSet+int(slot)] = 0 }

//simlint:hotpath
func (r *recency) of(set int, slot int32) uint64 { return r.stamp[set*r.slotsPerSet+int(slot)] }

// older reports whether resident a (slot, key) is a strictly better LRU
// victim than resident b: smaller stamp wins; key breaks exact ties
// (possible only for the zero stamp of untracked residents).
//
//simlint:hotpath
func (r *recency) older(set int, aSlot int32, aKey uint64, bSlot int32, bKey uint64) bool {
	sa, sb := r.of(set, aSlot), r.of(set, bSlot)
	if sa != sb {
		return sa < sb
	}
	return aKey < bKey
}

// lruScan returns the index of the LRU resident (the shared tie-broken
// baseline scan every stamp-based policy falls back to).
//
//simlint:hotpath
func lruScan(rec *recency, set int, residents []uopcache.Resident) int {
	b := 0
	for i := 1; i < len(residents); i++ {
		if rec.older(set, residents[i].Slot, residents[i].Key, residents[b].Slot, residents[b].Key) {
			b = i
		}
	}
	return b
}

// ---------------------------------------------------------------------------
// LRU

// LRU is the least-recently-used baseline the paper normalizes against.
type LRU struct{ rec *recency }

// NewLRU returns the LRU policy.
func NewLRU() *LRU { return &LRU{rec: newRecency()} }

// Name implements uopcache.Policy.
func (p *LRU) Name() string { return "lru" }

// Bind implements uopcache.Policy.
func (p *LRU) Bind(g uopcache.Geometry) { p.rec.bind(g) }

// OnHit implements uopcache.Policy.
//
//simlint:hotpath
func (p *LRU) OnHit(set int, slot int32, _ uint64) { p.rec.touch(set, slot) }

// OnInsert implements uopcache.Policy.
//
//simlint:hotpath
func (p *LRU) OnInsert(set int, slot int32, _ trace.PW) { p.rec.touch(set, slot) }

// OnEvict implements uopcache.Policy.
//
//simlint:hotpath
func (p *LRU) OnEvict(set int, slot int32, _ uint64) { p.rec.drop(set, slot) }

// Victim implements uopcache.Policy: evict the least recently used window.
//
//simlint:hotpath
func (p *LRU) Victim(set int, residents []uopcache.Resident, _ trace.PW) uopcache.Decision {
	b := lruScan(p.rec, set, residents)
	return uopcache.Decision{
		VictimKey: residents[b].Key,
		Reason:    ReasonLRUOldest,
		Score:     float64(p.rec.of(set, residents[b].Slot)),
	}
}

// ---------------------------------------------------------------------------
// Random

// Random evicts a pseudo-random resident; a sanity baseline.
type Random struct {
	state uint64
}

// NewRandom returns the random policy seeded deterministically.
func NewRandom(seed uint64) *Random {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Random{state: seed}
}

// Name implements uopcache.Policy.
func (p *Random) Name() string { return "random" }

// Bind implements uopcache.Policy (stateless; nothing to size).
func (p *Random) Bind(uopcache.Geometry) {}

// OnHit implements uopcache.Policy.
//
//simlint:hotpath
func (p *Random) OnHit(int, int32, uint64) {}

// OnInsert implements uopcache.Policy.
//
//simlint:hotpath
func (p *Random) OnInsert(int, int32, trace.PW) {}

// OnEvict implements uopcache.Policy.
//
//simlint:hotpath
func (p *Random) OnEvict(int, int32, uint64) {}

func (p *Random) next() uint64 {
	// xorshift64*
	p.state ^= p.state >> 12
	p.state ^= p.state << 25
	p.state ^= p.state >> 27
	return p.state * 0x2545F4914F6CDD1D
}

// Victim implements uopcache.Policy. To stay independent of the snapshot's
// order, the victim is the resident with the smallest salted-hashed key.
//
//simlint:hotpath
func (p *Random) Victim(set int, residents []uopcache.Resident, _ trace.PW) uopcache.Decision {
	salt := p.next()
	best := residents[0].Key
	bestH := mix(best ^ salt)
	for _, r := range residents[1:] {
		if h := mix(r.Key ^ salt); h < bestH {
			best, bestH = r.Key, h
		}
	}
	return uopcache.Decision{VictimKey: best, Reason: ReasonRandom, Score: float64(bestH)}
}

func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return x
}
