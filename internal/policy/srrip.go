package policy

import (
	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
)

// rripMax is the distant re-reference value for 2-bit RRPV (the paper's
// SRRIP configuration stores 2 bits per entry).
const rripMax = 3

// SRRIP implements Static Re-Reference Interval Prediction (Jaleel et al.)
// at whole-PW granularity: 2-bit RRPV per window, inserted at long
// re-reference (rripMax-1), promoted to 0 on hit; the victim is a window at
// rripMax, ageing the whole set when none exists.
type SRRIP struct {
	rrpv map[key]uint8
	rec  *recency
}

// NewSRRIP returns the SRRIP policy.
func NewSRRIP() *SRRIP {
	return &SRRIP{rrpv: make(map[key]uint8), rec: newRecency()}
}

// Name implements uopcache.Policy.
func (p *SRRIP) Name() string { return "srrip" }

// OnHit implements uopcache.Policy.
//
//simlint:hotpath
func (p *SRRIP) OnHit(set int, pc uint64) {
	p.rrpv[key{set, pc}] = 0
	p.rec.touch(set, pc)
}

// OnInsert implements uopcache.Policy.
func (p *SRRIP) OnInsert(set int, pw trace.PW) {
	p.rrpv[key{set, pw.Start}] = rripMax - 1
	p.rec.touch(set, pw.Start)
}

// OnEvict implements uopcache.Policy.
func (p *SRRIP) OnEvict(set int, pc uint64) {
	delete(p.rrpv, key{set, pc})
	p.rec.drop(set, pc)
}

// Victim implements uopcache.Policy.
//
//simlint:hotpath
func (p *SRRIP) Victim(set int, residents []uopcache.Resident, _ trace.PW) uopcache.Decision {
	for {
		found := false
		var best uint64
		for _, r := range residents {
			if p.rrpv[key{set, r.Key}] >= rripMax {
				if !found || p.rec.older(set, r.Key, best) {
					best, found = r.Key, true
				}
			}
		}
		if found {
			return uopcache.Decision{VictimKey: best, Reason: ReasonRRPVDistant, Score: float64(p.rrpv[key{set, best}])}
		}
		for _, r := range residents {
			p.rrpv[key{set, r.Key}]++
		}
	}
}

// ---------------------------------------------------------------------------
// SHiP++

// shctBits sizes the Signature History Counter Table (14-bit hash per the
// paper's description of SHiP++).
const shctBits = 14

// SHiPPP implements SHiP++ (Young et al.): a signature history counter
// table predicts whether a window inserted by a given signature (hash of the
// window start, the miss-causing PC) will be reused; never-reused signatures
// are inserted at distant RRPV so SRRIP evicts them quickly.
type SHiPPP struct {
	rrpv   map[key]uint8
	reused map[key]bool
	sig    map[key]uint32
	shct   []uint8 // 3-bit counters
	rec    *recency
}

// NewSHiPPP returns the SHiP++ policy.
func NewSHiPPP() *SHiPPP {
	t := make([]uint8, 1<<shctBits)
	for i := range t {
		t[i] = 1 // weakly reused, per SHiP++'s optimistic start
	}
	return &SHiPPP{
		rrpv:   make(map[key]uint8),
		reused: make(map[key]bool),
		sig:    make(map[key]uint32),
		shct:   t,
		rec:    newRecency(),
	}
}

// Name implements uopcache.Policy.
func (p *SHiPPP) Name() string { return "ship++" }

func signature(pc uint64) uint32 {
	return uint32(mix(pc) & ((1 << shctBits) - 1))
}

// OnHit implements uopcache.Policy.
//
//simlint:hotpath
func (p *SHiPPP) OnHit(set int, pc uint64) {
	k := key{set, pc}
	p.rrpv[k] = 0
	p.rec.touch(set, pc)
	if !p.reused[k] {
		p.reused[k] = true
		s := p.sig[k]
		if p.shct[s] < 7 {
			p.shct[s]++
		}
	}
}

// OnInsert implements uopcache.Policy.
func (p *SHiPPP) OnInsert(set int, pw trace.PW) {
	k := key{set, pw.Start}
	s := signature(pw.Start)
	p.sig[k] = s
	p.reused[k] = false
	if p.shct[s] == 0 {
		p.rrpv[k] = rripMax // predicted dead: distant insertion
	} else {
		p.rrpv[k] = rripMax - 1
	}
	p.rec.touch(set, pw.Start)
}

// OnEvict implements uopcache.Policy.
func (p *SHiPPP) OnEvict(set int, pc uint64) {
	k := key{set, pc}
	if !p.reused[k] {
		s := p.sig[k]
		if p.shct[s] > 0 {
			p.shct[s]--
		}
	}
	delete(p.rrpv, k)
	delete(p.reused, k)
	delete(p.sig, k)
	p.rec.drop(set, pc)
}

// Victim implements uopcache.Policy (SRRIP victim scan).
//
//simlint:hotpath
func (p *SHiPPP) Victim(set int, residents []uopcache.Resident, _ trace.PW) uopcache.Decision {
	for {
		found := false
		var best uint64
		for _, r := range residents {
			if p.rrpv[key{set, r.Key}] >= rripMax {
				if !found || p.rec.older(set, r.Key, best) {
					best, found = r.Key, true
				}
			}
		}
		if found {
			return uopcache.Decision{VictimKey: best, Reason: ReasonRRPVDistant, Score: float64(p.rrpv[key{set, best}])}
		}
		for _, r := range residents {
			p.rrpv[key{set, r.Key}]++
		}
	}
}
