package policy

import (
	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
)

// rripMax is the distant re-reference value for 2-bit RRPV (the paper's
// SRRIP configuration stores 2 bits per entry).
const rripMax = 3

// srripScan is the RRIP victim scan shared by SRRIP, SHiP++, DRRIP, and
// FURBYS's SRRIP fallback: return the index of a resident at the distant
// RRPV (recency-stamp tiebreak), ageing the whole set until one exists.
// rrpv is a per-slot array over the whole cache; base = set*slotsPerSet.
//
//simlint:hotpath
func srripScan(rrpv []uint8, base int, rec *recency, set int, residents []uopcache.Resident) int {
	for {
		b := -1
		for i := range residents {
			if rrpv[base+int(residents[i].Slot)] >= rripMax {
				if b < 0 || rec.older(set, residents[i].Slot, residents[i].Key, residents[b].Slot, residents[b].Key) {
					b = i
				}
			}
		}
		if b >= 0 {
			return b
		}
		for i := range residents {
			rrpv[base+int(residents[i].Slot)]++
		}
	}
}

// SRRIP implements Static Re-Reference Interval Prediction (Jaleel et al.)
// at whole-PW granularity: 2-bit RRPV per window, inserted at long
// re-reference (rripMax-1), promoted to 0 on hit; the victim is a window at
// rripMax, ageing the whole set when none exists.
type SRRIP struct {
	rrpv        []uint8
	slotsPerSet int
	rec         *recency
}

// NewSRRIP returns the SRRIP policy.
func NewSRRIP() *SRRIP {
	return &SRRIP{rec: newRecency()}
}

// Name implements uopcache.Policy.
func (p *SRRIP) Name() string { return "srrip" }

// Bind implements uopcache.Policy.
func (p *SRRIP) Bind(g uopcache.Geometry) {
	p.slotsPerSet = g.SlotsPerSet
	p.rrpv = make([]uint8, g.Slots())
	p.rec.bind(g)
}

// OnHit implements uopcache.Policy.
//
//simlint:hotpath
func (p *SRRIP) OnHit(set int, slot int32, _ uint64) {
	p.rrpv[set*p.slotsPerSet+int(slot)] = 0
	p.rec.touch(set, slot)
}

// OnInsert implements uopcache.Policy.
//
//simlint:hotpath
func (p *SRRIP) OnInsert(set int, slot int32, _ trace.PW) {
	p.rrpv[set*p.slotsPerSet+int(slot)] = rripMax - 1
	p.rec.touch(set, slot)
}

// OnEvict implements uopcache.Policy.
//
//simlint:hotpath
func (p *SRRIP) OnEvict(set int, slot int32, _ uint64) { p.rec.drop(set, slot) }

// Victim implements uopcache.Policy.
//
//simlint:hotpath
func (p *SRRIP) Victim(set int, residents []uopcache.Resident, _ trace.PW) uopcache.Decision {
	base := set * p.slotsPerSet
	b := srripScan(p.rrpv, base, p.rec, set, residents)
	return uopcache.Decision{
		VictimKey: residents[b].Key,
		Reason:    ReasonRRPVDistant,
		Score:     float64(p.rrpv[base+int(residents[b].Slot)]),
	}
}

// ---------------------------------------------------------------------------
// SHiP++

// shctBits sizes the Signature History Counter Table (14-bit hash per the
// paper's description of SHiP++).
const shctBits = 14

// SHiPPP implements SHiP++ (Young et al.): a signature history counter
// table predicts whether a window inserted by a given signature (hash of the
// window start, the miss-causing PC) will be reused; never-reused signatures
// are inserted at distant RRPV so SRRIP evicts them quickly.
type SHiPPP struct {
	rrpv        []uint8
	reused      []bool
	sig         []uint32
	slotsPerSet int
	shct        []uint8 // 3-bit counters
	rec         *recency
}

// NewSHiPPP returns the SHiP++ policy.
func NewSHiPPP() *SHiPPP {
	t := make([]uint8, 1<<shctBits)
	for i := range t {
		t[i] = 1 // weakly reused, per SHiP++'s optimistic start
	}
	return &SHiPPP{shct: t, rec: newRecency()}
}

// Name implements uopcache.Policy.
func (p *SHiPPP) Name() string { return "ship++" }

// Bind implements uopcache.Policy.
func (p *SHiPPP) Bind(g uopcache.Geometry) {
	p.slotsPerSet = g.SlotsPerSet
	p.rrpv = make([]uint8, g.Slots())
	p.reused = make([]bool, g.Slots())
	p.sig = make([]uint32, g.Slots())
	p.rec.bind(g)
}

func signature(pc uint64) uint32 {
	return uint32(mix(pc) & ((1 << shctBits) - 1))
}

// OnHit implements uopcache.Policy.
//
//simlint:hotpath
func (p *SHiPPP) OnHit(set int, slot int32, _ uint64) {
	i := set*p.slotsPerSet + int(slot)
	p.rrpv[i] = 0
	p.rec.touch(set, slot)
	if !p.reused[i] {
		p.reused[i] = true
		s := p.sig[i]
		if p.shct[s] < 7 {
			p.shct[s]++
		}
	}
}

// OnInsert implements uopcache.Policy.
//
//simlint:hotpath
func (p *SHiPPP) OnInsert(set int, slot int32, pw trace.PW) {
	i := set*p.slotsPerSet + int(slot)
	s := signature(pw.Start)
	p.sig[i] = s
	p.reused[i] = false
	if p.shct[s] == 0 {
		p.rrpv[i] = rripMax // predicted dead: distant insertion
	} else {
		p.rrpv[i] = rripMax - 1
	}
	p.rec.touch(set, slot)
}

// OnEvict implements uopcache.Policy.
//
//simlint:hotpath
func (p *SHiPPP) OnEvict(set int, slot int32, _ uint64) {
	i := set*p.slotsPerSet + int(slot)
	if !p.reused[i] {
		s := p.sig[i]
		if p.shct[s] > 0 {
			p.shct[s]--
		}
	}
	p.rec.drop(set, slot)
}

// Victim implements uopcache.Policy (SRRIP victim scan).
//
//simlint:hotpath
func (p *SHiPPP) Victim(set int, residents []uopcache.Resident, _ trace.PW) uopcache.Decision {
	base := set * p.slotsPerSet
	b := srripScan(p.rrpv, base, p.rec, set, residents)
	return uopcache.Decision{
		VictimKey: residents[b].Key,
		Reason:    ReasonRRPVDistant,
		Score:     float64(p.rrpv[base+int(residents[b].Slot)]),
	}
}
