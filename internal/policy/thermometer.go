package policy

import (
	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
)

// ThermoClass is Thermometer's three-way classification of windows by
// profiled hit rate.
type ThermoClass uint8

const (
	// ThermoCold windows had low profiled hit rates.
	ThermoCold ThermoClass = iota
	// ThermoWarm windows had middling profiled hit rates.
	ThermoWarm
	// ThermoHot windows had high profiled hit rates.
	ThermoHot
)

// Thermometer implements the profile-guided policy of Song et al. (ISCA
// 2022), the state-of-the-art profile-guided baseline in the paper: windows
// are classified hot/warm/cold by whole-execution profiled hit rate; cold
// windows are evicted first and hot windows protected. It captures holistic
// information but — as the paper observes — has no mechanism to adapt to
// transient (local) behaviour, which is exactly what FURBYS adds.
type Thermometer struct {
	class map[uint64]ThermoClass
	// DefaultClass applies to windows absent from the profile.
	DefaultClass ThermoClass
	rec          *recency
}

// NewThermometer builds the policy from a profile classification.
func NewThermometer(class map[uint64]ThermoClass) *Thermometer {
	return &Thermometer{class: class, DefaultClass: ThermoWarm, rec: newRecency()}
}

// Name implements uopcache.Policy.
func (p *Thermometer) Name() string { return "thermometer" }

func (p *Thermometer) classOf(pc uint64) ThermoClass {
	if c, ok := p.class[pc]; ok {
		return c
	}
	return p.DefaultClass
}

// Bind implements uopcache.Policy.
func (p *Thermometer) Bind(g uopcache.Geometry) { p.rec.bind(g) }

// OnHit implements uopcache.Policy.
//
//simlint:hotpath
func (p *Thermometer) OnHit(set int, slot int32, _ uint64) { p.rec.touch(set, slot) }

// OnInsert implements uopcache.Policy.
//
//simlint:hotpath
func (p *Thermometer) OnInsert(set int, slot int32, _ trace.PW) { p.rec.touch(set, slot) }

// OnEvict implements uopcache.Policy.
//
//simlint:hotpath
func (p *Thermometer) OnEvict(set int, slot int32, _ uint64) { p.rec.drop(set, slot) }

// Victim implements uopcache.Policy: evict the LRU window of the coldest
// class present.
//
//simlint:hotpath
func (p *Thermometer) Victim(set int, residents []uopcache.Resident, _ trace.PW) uopcache.Decision {
	best := 0
	bestClass := p.classOf(residents[0].Key)
	for i := 1; i < len(residents); i++ {
		c := p.classOf(residents[i].Key)
		switch {
		case c < bestClass:
			best, bestClass = i, c
		case c == bestClass && p.rec.older(set, residents[i].Slot, residents[i].Key, residents[best].Slot, residents[best].Key):
			best = i
		}
	}
	return uopcache.Decision{VictimKey: residents[best].Key, Reason: ReasonColdestClass, Score: float64(bestClass)}
}
