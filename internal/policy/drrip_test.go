package policy_test

import (
	"testing"

	"uopsim/internal/policy"
	"uopsim/internal/uopcache"
)

func TestDRRIPName(t *testing.T) {
	if policy.NewDRRIP().Name() != "drrip" {
		t.Error("name")
	}
}

func TestDRRIPUsesBothFlavours(t *testing.T) {
	p := policy.NewDRRIP()
	// 64 sets: includes both leader kinds.
	c := uopcache.New(uopcache.Config{Entries: 512, Ways: 8, UopsPerEntry: 8}, p)
	state := uint64(5)
	for i := 0; i < 30000; i++ {
		state = state*6364136223846793005 + 1
		a := uint64(0x1000 + (state>>33)%2000*16)
		w := pw(a, 1+int((state>>20)%12))
		c.Lookup(w)
		c.Insert(w)
	}
	if p.Stats.SRRIPInserts == 0 || p.Stats.BRRIPInserts == 0 {
		t.Errorf("insert flavours: %+v — both leaders must fire", p.Stats)
	}
	st := c.Stats
	if st.UopsHit+st.UopsMissed != st.UopsRequested {
		t.Errorf("accounting broken: %+v", st)
	}
}

func TestDRRIPScanResistance(t *testing.T) {
	// A hot working set plus a one-shot scan: DRRIP should keep more of
	// the hot set than pure LRU would (BRRIP inserts scans at distant).
	p := policy.NewDRRIP()
	c := uopcache.New(uopcache.Config{Entries: 64, Ways: 8, UopsPerEntry: 8}, p)
	hot := make([]uint64, 24)
	for i := range hot {
		hot[i] = uint64(0x1000 + i*16)
	}
	touchHot := func() int {
		hits := 0
		for _, a := range hot {
			w := pw(a, 4)
			if r := c.Lookup(w); r.Kind == uopcache.ProbeFull {
				hits++
			} else {
				c.Insert(w)
			}
		}
		return hits
	}
	for i := 0; i < 30; i++ {
		touchHot()
	}
	// Scan 500 one-shot windows.
	for i := 0; i < 500; i++ {
		w := pw(uint64(0x100000+i*16), 4)
		c.Lookup(w)
		c.Insert(w)
	}
	if hits := touchHot(); hits == 0 {
		t.Error("scan wiped the entire hot set despite DRRIP")
	}
}
