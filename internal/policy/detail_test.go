package policy_test

import (
	"testing"
	"testing/quick"

	"uopsim/internal/policy"
	"uopsim/internal/uopcache"
)

// TestSRRIPAgingEvictsEventually: even without hits, an insertion-heavy
// stream must keep making progress (the aging loop terminates).
func TestSRRIPAgingEvictsEventually(t *testing.T) {
	p := policy.NewSRRIP()
	c := oneSet(p)
	addrs := sameSetAddrs(c, 40)
	for _, a := range addrs {
		c.Insert(pw(a, 4))
	}
	if c.UsedEntries(0) != 4 {
		t.Errorf("set occupancy = %d", c.UsedEntries(0))
	}
	if c.Stats.Evictions != uint64(len(addrs)-4) {
		t.Errorf("evictions = %d", c.Stats.Evictions)
	}
}

// TestSHIPPPOptimisticStart: with an untrained SHCT, SHiP++ must not bypass
// or immediately kill fresh insertions (counters start weakly reused).
func TestSHIPPPOptimisticStart(t *testing.T) {
	p := policy.NewSHiPPP()
	c := oneSet(p)
	addrs := sameSetAddrs(c, 4)
	for _, a := range addrs {
		if out := c.Insert(pw(a, 4)); out != uopcache.Inserted {
			t.Errorf("fresh insert = %v", out)
		}
	}
	// All four resident: no evictions needed yet.
	if c.Stats.Evictions != 0 {
		t.Errorf("evictions = %d", c.Stats.Evictions)
	}
}

// TestGHRPHitProtects: a window that hits repeatedly must not be the
// preferred victim over never-hit windows.
func TestGHRPHitProtects(t *testing.T) {
	p := policy.NewGHRP()
	p.Bypass = false
	c := oneSet(p)
	addrs := sameSetAddrs(c, 5)
	for _, a := range addrs[:4] {
		c.Insert(pw(a, 4))
	}
	for i := 0; i < 10; i++ {
		c.Lookup(pw(addrs[0], 4))
	}
	c.Insert(pw(addrs[4], 4))
	if _, ok := c.ResidentFor(addrs[0]); !ok {
		t.Error("repeatedly-hit window was evicted")
	}
}

// TestMockingjayOverdueEvictable: a window whose predicted reuse has long
// passed becomes an eviction candidate (the |ETR| rule).
func TestMockingjayOverdueEvictable(t *testing.T) {
	p := policy.NewMockingjay()
	c := oneSet(p)
	addrs := sameSetAddrs(c, 6)
	dead := addrs[0]
	// Train a short RD for dead, then stop touching it.
	for i := 0; i < 6; i++ {
		c.Lookup(pw(dead, 4))
		c.Insert(pw(dead, 4))
	}
	// Fill and churn with other windows; dead's ETR goes far negative.
	for round := 0; round < 20; round++ {
		for _, a := range addrs[1:] {
			c.Lookup(pw(a, 4))
			c.Insert(pw(a, 4))
		}
	}
	if _, ok := c.ResidentFor(dead); ok {
		t.Error("long-overdue window still resident after heavy churn")
	}
}

// TestFURBYSWeightClamping: weights above the configured bit width clamp.
func TestFURBYSWeightClamping(t *testing.T) {
	f := func(w uint8, bits uint8) bool {
		b := int(bits%8) + 1
		cfg := policy.DefaultFURBYSConfig()
		cfg.WeightBits = b
		p := policy.NewFURBYS(cfg, map[uint64]uint8{0x1000: w})
		c := oneSet(p)
		addrs := sameSetAddrs(c, 5)
		for _, a := range addrs[:4] {
			c.Insert(pw(a, 4))
		}
		// Trigger a decision involving 0x1000's weight indirectly: we
		// only assert no panic and capacity invariants.
		c.Insert(pw(addrs[4], 4))
		return c.UsedEntries(0) <= 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestFURBYSBypassDetectorAdmitsHotWindow: a window bypassed twice in short
// succession must be admitted (the cross-input robustness fix).
func TestFURBYSBypassDetectorAdmitsHotWindow(t *testing.T) {
	c := oneSet(policy.NewLRU())
	addrs := sameSetAddrs(c, 5)
	weights := map[uint64]uint8{
		addrs[0]: 7, addrs[1]: 7, addrs[2]: 7, addrs[3]: 7,
		addrs[4]: 0, // profiled cold, actually hot
	}
	p := policy.NewFURBYS(policy.DefaultFURBYSConfig(), weights)
	c = oneSet(p)
	for _, a := range addrs[:4] {
		c.Insert(pw(a, 4))
	}
	if out := c.Insert(pw(addrs[4], 4)); out != uopcache.Bypassed {
		t.Fatalf("first attempt = %v, want Bypassed", out)
	}
	if out := c.Insert(pw(addrs[4], 4)); out != uopcache.Inserted {
		t.Fatalf("second attempt = %v, want Inserted (bypass detector)", out)
	}
	if p.Stats.Bypasses != 1 {
		t.Errorf("bypasses = %d", p.Stats.Bypasses)
	}
}

// TestFURBYSBypassDetectorDisabledByDepthZero: depth 0 disables both
// detectors — bypass then repeats indefinitely.
func TestFURBYSBypassDetectorDisabledByDepthZero(t *testing.T) {
	c := oneSet(policy.NewLRU())
	addrs := sameSetAddrs(c, 5)
	weights := map[uint64]uint8{
		addrs[0]: 7, addrs[1]: 7, addrs[2]: 7, addrs[3]: 7, addrs[4]: 0,
	}
	cfg := policy.DefaultFURBYSConfig()
	cfg.DetectorDepth = 0
	p := policy.NewFURBYS(cfg, weights)
	c = oneSet(p)
	for _, a := range addrs[:4] {
		c.Insert(pw(a, 4))
	}
	for i := 0; i < 5; i++ {
		if out := c.Insert(pw(addrs[4], 4)); out != uopcache.Bypassed {
			t.Fatalf("attempt %d = %v, want Bypassed forever with depth 0", i, out)
		}
	}
}

// TestRecencyDeterministicTiebreak: two never-touched keys tie on stamp 0;
// the lower key must win deterministically.
func TestRecencyDeterministicTiebreak(t *testing.T) {
	p := policy.NewLRU()
	c := oneSet(p)
	addrs := sameSetAddrs(c, 5)
	// Insert without any hits; recency stamps are insertion order, so
	// addrs[0] is LRU.
	for _, a := range addrs[:4] {
		c.Insert(pw(a, 4))
	}
	c.Insert(pw(addrs[4], 4))
	if _, ok := c.ResidentFor(addrs[0]); ok {
		t.Error("first-inserted window should be the LRU victim")
	}
}
