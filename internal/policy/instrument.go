package policy

import (
	"uopsim/internal/telemetry"
	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
)

// Instrumented decorates a replacement policy with per-policy decision
// counters (policy_<name>_*_total) in a telemetry registry. It preserves the
// wrapped policy's Name so reports and event traces are unchanged; callers
// needing the concrete policy (e.g. FURBYS stats) use Unwrap.
type Instrumented struct {
	base uopcache.Policy

	hits, inserts, evictions *telemetry.Counter
	victimCalls, bypasses    *telemetry.Counter
}

// Instrument wraps p with decision counters registered in reg.
func Instrument(p uopcache.Policy, reg *telemetry.Registry) *Instrumented {
	prefix := "policy_" + p.Name() + "_"
	return &Instrumented{
		base:        p,
		hits:        reg.Counter(prefix + "hits_total"),
		inserts:     reg.Counter(prefix + "inserts_total"),
		evictions:   reg.Counter(prefix + "evictions_total"),
		victimCalls: reg.Counter(prefix + "victim_calls_total"),
		bypasses:    reg.Counter(prefix + "bypasses_total"),
	}
}

// Unwrap returns the decorated policy.
func (p *Instrumented) Unwrap() uopcache.Policy { return p.base }

// Name implements uopcache.Policy.
func (p *Instrumented) Name() string { return p.base.Name() }

// OnHit implements uopcache.Policy.
func (p *Instrumented) OnHit(set int, pc uint64) {
	p.hits.Inc()
	p.base.OnHit(set, pc)
}

// OnInsert implements uopcache.Policy.
func (p *Instrumented) OnInsert(set int, pw trace.PW) {
	p.inserts.Inc()
	p.base.OnInsert(set, pw)
}

// OnEvict implements uopcache.Policy.
func (p *Instrumented) OnEvict(set int, pc uint64) {
	p.evictions.Inc()
	p.base.OnEvict(set, pc)
}

// Victim implements uopcache.Policy, counting calls and bypass decisions.
func (p *Instrumented) Victim(set int, residents []uopcache.Resident, incoming trace.PW) uopcache.Decision {
	p.victimCalls.Inc()
	d := p.base.Victim(set, residents, incoming)
	if d.Bypass {
		p.bypasses.Inc()
	}
	return d
}

// Unwrap peels Instrumented decorations off a policy, returning the
// underlying implementation for concrete-type inspection.
func Unwrap(p uopcache.Policy) uopcache.Policy {
	for {
		w, ok := p.(*Instrumented)
		if !ok {
			return p
		}
		p = w.base
	}
}
