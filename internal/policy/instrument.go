package policy

import (
	"strings"

	"uopsim/internal/telemetry"
	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
)

// metricSafe maps a policy name into the [a-z0-9_] metric-name alphabet the
// exposition contract requires (e.g. "ship++" -> "ship__").
func metricSafe(name string) string {
	b := []byte(strings.ToLower(name))
	for i, c := range b {
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' {
			b[i] = '_'
		}
	}
	return string(b)
}

// Instrumented decorates a replacement policy with per-policy decision
// counters (policy_<name>_*_total) in a telemetry registry. It preserves the
// wrapped policy's Name so reports and event traces are unchanged; callers
// needing the concrete policy (e.g. FURBYS stats) use Unwrap.
//
//simlint:ignore registry decorator applied by core.attach around factory-built policies, not a standalone registry entry
type Instrumented struct {
	base uopcache.Policy

	hits, inserts, evictions *telemetry.Counter
	victimCalls, bypasses    *telemetry.Counter
}

// Instrument wraps p with decision counters registered in reg.
func Instrument(p uopcache.Policy, reg *telemetry.Registry) *Instrumented {
	// The per-policy family is policy_<name>_*; every registered policy name
	// is lowercase [a-z0-9_]-safe after mangling below, so the runtime names
	// stay inside the telemetry analyzer's policy_ family.
	prefix := "policy_" + metricSafe(p.Name()) + "_"
	return &Instrumented{
		base:        p,
		hits:        reg.Counter(prefix + "hits_total"),         //simlint:ignore telemetry per-policy family policy_<name>_*, name mangled to [a-z0-9_] by metricSafe
		inserts:     reg.Counter(prefix + "inserts_total"),      //simlint:ignore telemetry per-policy family policy_<name>_*, name mangled to [a-z0-9_] by metricSafe
		evictions:   reg.Counter(prefix + "evictions_total"),    //simlint:ignore telemetry per-policy family policy_<name>_*, name mangled to [a-z0-9_] by metricSafe
		victimCalls: reg.Counter(prefix + "victim_calls_total"), //simlint:ignore telemetry per-policy family policy_<name>_*, name mangled to [a-z0-9_] by metricSafe
		bypasses:    reg.Counter(prefix + "bypasses_total"),     //simlint:ignore telemetry per-policy family policy_<name>_*, name mangled to [a-z0-9_] by metricSafe
	}
}

// Unwrap returns the decorated policy.
func (p *Instrumented) Unwrap() uopcache.Policy { return p.base }

// Name implements uopcache.Policy.
func (p *Instrumented) Name() string { return p.base.Name() }

// Bind implements uopcache.Policy.
func (p *Instrumented) Bind(g uopcache.Geometry) { p.base.Bind(g) }

// OnHit implements uopcache.Policy.
//
//simlint:hotpath
func (p *Instrumented) OnHit(set int, slot int32, pc uint64) {
	p.hits.Inc()
	p.base.OnHit(set, slot, pc)
}

// OnInsert implements uopcache.Policy.
//
//simlint:hotpath
func (p *Instrumented) OnInsert(set int, slot int32, pw trace.PW) {
	p.inserts.Inc()
	p.base.OnInsert(set, slot, pw)
}

// OnEvict implements uopcache.Policy.
//
//simlint:hotpath
func (p *Instrumented) OnEvict(set int, slot int32, pc uint64) {
	p.evictions.Inc()
	p.base.OnEvict(set, slot, pc)
}

// Victim implements uopcache.Policy, counting calls and bypass decisions.
//
//simlint:hotpath
func (p *Instrumented) Victim(set int, residents []uopcache.Resident, incoming trace.PW) uopcache.Decision {
	p.victimCalls.Inc()
	d := p.base.Victim(set, residents, incoming)
	if d.Bypass {
		p.bypasses.Inc()
	}
	return d
}

// Unwrap peels Instrumented decorations off a policy, returning the
// underlying implementation for concrete-type inspection.
func Unwrap(p uopcache.Policy) uopcache.Policy {
	for {
		w, ok := p.(*Instrumented)
		if !ok {
			return p
		}
		p = w.base
	}
}
