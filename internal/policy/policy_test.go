package policy_test

import (
	"testing"

	"uopsim/internal/policy"
	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
)

func pw(start uint64, uops int) trace.PW {
	return trace.PW{Start: start, NumUops: uint16(uops), Bytes: uint16(uops * 4),
		NumInst: uint16(uops), Lines: []uint64{trace.LineAddr(start)}}
}

// oneSet builds a single-set cache (4 ways) so victim logic is easy to probe.
func oneSet(p uopcache.Policy) *uopcache.Cache {
	return uopcache.New(uopcache.Config{Entries: 4, Ways: 4, UopsPerEntry: 8}, p)
}

// sameSetAddrs returns n window starts that all map to set 0 of a cache.
func sameSetAddrs(c *uopcache.Cache, n int) []uint64 {
	var out []uint64
	for a := uint64(0x1000); len(out) < n; a += 16 {
		if c.SetIndex(a) == 0 {
			out = append(out, a)
		}
	}
	return out
}

func TestLRUVictimOrder(t *testing.T) {
	p := policy.NewLRU()
	c := oneSet(p)
	addrs := sameSetAddrs(c, 5)
	for _, a := range addrs[:4] {
		c.Insert(pw(a, 4))
	}
	// Touch 0 and 1; LRU is addrs[2].
	c.Lookup(pw(addrs[0], 4))
	c.Lookup(pw(addrs[1], 4))
	c.Insert(pw(addrs[4], 4))
	if _, ok := c.ResidentFor(addrs[2]); ok {
		t.Error("LRU window should have been evicted")
	}
	for _, a := range []uint64{addrs[0], addrs[1], addrs[3], addrs[4]} {
		if _, ok := c.ResidentFor(a); !ok {
			t.Errorf("window %#x should be resident", a)
		}
	}
	if p.Name() != "lru" {
		t.Error("name")
	}
}

func TestRandomEvictsSomething(t *testing.T) {
	p := policy.NewRandom(1)
	c := oneSet(p)
	addrs := sameSetAddrs(c, 5)
	for _, a := range addrs {
		c.Insert(pw(a, 4))
	}
	if c.UsedEntries(0) != 4 {
		t.Errorf("used = %d", c.UsedEntries(0))
	}
	if c.Stats.Evictions != 1 {
		t.Errorf("evictions = %d", c.Stats.Evictions)
	}
	if policy.NewRandom(0).Name() != "random" {
		t.Error("name")
	}
}

// TestRandomDeterministicAcrossRuns: same seed -> same decisions, even
// though uopcache hands residents over in map order.
func TestRandomDeterministicAcrossRuns(t *testing.T) {
	run := func() uopcache.Stats {
		p := policy.NewRandom(42)
		c := uopcache.New(uopcache.Config{Entries: 16, Ways: 4, UopsPerEntry: 8}, p)
		state := uint64(7)
		for i := 0; i < 5000; i++ {
			state = state*6364136223846793005 + 1
			a := uint64(0x1000 + (state>>33)%400*16)
			w := pw(a, 1+int((state>>20)%16))
			c.Lookup(w)
			c.Insert(w)
		}
		return c.Stats
	}
	if run() != run() {
		t.Error("random policy not deterministic for fixed seed")
	}
}

func TestSRRIPPromoteOnHit(t *testing.T) {
	p := policy.NewSRRIP()
	c := oneSet(p)
	addrs := sameSetAddrs(c, 5)
	for _, a := range addrs[:4] {
		c.Insert(pw(a, 4))
	}
	// Hit addrs[0] -> RRPV 0; the others stay at 2. Inserting a new
	// window ages everyone to 3 except addrs[0] (at 1), so the victim is
	// one of addrs[1..3], never addrs[0].
	c.Lookup(pw(addrs[0], 4))
	c.Insert(pw(addrs[4], 4))
	if _, ok := c.ResidentFor(addrs[0]); !ok {
		t.Error("recently-hit window evicted by SRRIP")
	}
	if p.Name() != "srrip" {
		t.Error("name")
	}
}

func TestSHIPPPLearnsDeadSignatures(t *testing.T) {
	p := policy.NewSHiPPP()
	c := uopcache.New(uopcache.Config{Entries: 8, Ways: 4, UopsPerEntry: 8}, p)
	if p.Name() != "ship++" {
		t.Error("name")
	}
	// Stream many never-reused windows through one set, then check that a
	// popular window survives pressure: dead-signature arrivals are
	// inserted at distant RRPV and get evicted before the hot window.
	addrs := sameSetAddrs(c, 64)
	hot := addrs[0]
	c.Insert(pw(hot, 4))
	for round := 0; round < 8; round++ {
		for _, a := range addrs[1:] {
			c.Lookup(pw(a, 4))
			c.Insert(pw(a, 4))
			c.Lookup(pw(hot, 4)) // keep the hot window warm
			if _, ok := c.ResidentFor(hot); !ok {
				// Reinsert if evicted early in training.
				c.Insert(pw(hot, 4))
			}
		}
	}
	// After training, the hot window should still be resident.
	if _, ok := c.ResidentFor(hot); !ok {
		t.Error("hot window evicted despite SHiP++ training")
	}
}

func TestGHRPTrainsDeadAndBypasses(t *testing.T) {
	p := policy.NewGHRP()
	c := uopcache.New(uopcache.Config{Entries: 8, Ways: 4, UopsPerEntry: 8}, p)
	if p.Name() != "ghrp" {
		t.Error("name")
	}
	// Cycle a large set of one-shot windows: every eviction trains
	// "dead"; eventually arrivals get bypassed.
	addrs := sameSetAddrs(c, 128)
	for round := 0; round < 6; round++ {
		for _, a := range addrs {
			w := pw(a, 4)
			c.Lookup(w)
			c.Insert(w)
		}
	}
	if c.Stats.Bypasses == 0 {
		t.Error("GHRP never bypassed despite dead-block training")
	}
}

func TestGHRPNoBypassWhenDisabled(t *testing.T) {
	p := policy.NewGHRP()
	p.Bypass = false
	c := uopcache.New(uopcache.Config{Entries: 8, Ways: 4, UopsPerEntry: 8}, p)
	addrs := sameSetAddrs(c, 128)
	for round := 0; round < 6; round++ {
		for _, a := range addrs {
			w := pw(a, 4)
			c.Lookup(w)
			c.Insert(w)
		}
	}
	if c.Stats.Bypasses != 0 {
		t.Errorf("bypasses = %d with bypassing disabled", c.Stats.Bypasses)
	}
}

func TestMockingjayPrefersKeepingShortRD(t *testing.T) {
	p := policy.NewMockingjay()
	c := oneSet(p)
	if p.Name() != "mockingjay" {
		t.Error("name")
	}
	addrs := sameSetAddrs(c, 6)
	hot := addrs[0]
	// Train: hot reused constantly -> tiny RD.
	for i := 0; i < 30; i++ {
		c.Lookup(pw(hot, 4))
		c.Insert(pw(hot, 4))
	}
	for _, a := range addrs[1:4] {
		c.Insert(pw(a, 4))
	}
	// Insert pressure: hot (small predicted RD) should survive.
	c.Insert(pw(addrs[4], 4))
	c.Insert(pw(addrs[5], 4))
	if _, ok := c.ResidentFor(hot); !ok {
		t.Error("hot window with short predicted reuse distance was evicted")
	}
}

func TestThermometerEvictsColdFirst(t *testing.T) {
	c := oneSet(policy.NewLRU()) // temp to get set addresses
	addrs := sameSetAddrs(c, 5)
	class := map[uint64]policy.ThermoClass{
		addrs[0]: policy.ThermoHot,
		addrs[1]: policy.ThermoWarm,
		addrs[2]: policy.ThermoCold,
		addrs[3]: policy.ThermoHot,
		addrs[4]: policy.ThermoWarm,
	}
	p := policy.NewThermometer(class)
	if p.Name() != "thermometer" {
		t.Error("name")
	}
	c = oneSet(p)
	for _, a := range addrs[:4] {
		c.Insert(pw(a, 4))
	}
	// Even though addrs[2] (cold) is more recently used than addrs[0],
	// it must be the victim.
	c.Lookup(pw(addrs[2], 4))
	c.Insert(pw(addrs[4], 4))
	if _, ok := c.ResidentFor(addrs[2]); ok {
		t.Error("cold window survived while hot windows were evictable")
	}
	for _, a := range []uint64{addrs[0], addrs[1], addrs[3]} {
		if _, ok := c.ResidentFor(a); !ok {
			t.Errorf("%#x should survive", a)
		}
	}
}

func TestThermometerDefaultClass(t *testing.T) {
	p := policy.NewThermometer(map[uint64]policy.ThermoClass{})
	c := oneSet(p)
	addrs := sameSetAddrs(c, 5)
	for _, a := range addrs {
		c.Insert(pw(a, 4))
	}
	if c.UsedEntries(0) != 4 {
		t.Errorf("used = %d", c.UsedEntries(0))
	}
}

func TestFURBYSVictimByWeight(t *testing.T) {
	c := oneSet(policy.NewLRU())
	addrs := sameSetAddrs(c, 5)
	weights := map[uint64]uint8{
		addrs[0]: 7, addrs[1]: 5, addrs[2]: 1, addrs[3]: 6, addrs[4]: 4,
	}
	p := policy.NewFURBYS(policy.DefaultFURBYSConfig(), weights)
	if p.Name() != "furbys" {
		t.Error("name")
	}
	c = oneSet(p)
	for _, a := range addrs[:4] {
		c.Insert(pw(a, 4))
	}
	c.Insert(pw(addrs[4], 4)) // weight 4 incoming; min resident weight is 1
	if _, ok := c.ResidentFor(addrs[2]); ok {
		t.Error("minimum-weight window should be the victim")
	}
	if _, ok := c.ResidentFor(addrs[4]); !ok {
		t.Error("incoming window should be inserted")
	}
	if p.Stats.VictimByWeight != 1 || p.Stats.VictimBySRRIP != 0 {
		t.Errorf("stats = %+v", p.Stats)
	}
}

func TestFURBYSBypassLowWeight(t *testing.T) {
	c := oneSet(policy.NewLRU())
	addrs := sameSetAddrs(c, 5)
	weights := map[uint64]uint8{
		addrs[0]: 7, addrs[1]: 6, addrs[2]: 5, addrs[3]: 6,
		addrs[4]: 2, // incoming: 2 < min(5) - K(1) -> bypass
	}
	p := policy.NewFURBYS(policy.DefaultFURBYSConfig(), weights)
	c = oneSet(p)
	for _, a := range addrs[:4] {
		c.Insert(pw(a, 4))
	}
	if out := c.Insert(pw(addrs[4], 4)); out != uopcache.Bypassed {
		t.Errorf("insert = %v, want Bypassed", out)
	}
	if p.Stats.Bypasses != 1 {
		t.Errorf("bypass stats = %+v", p.Stats)
	}
	// Borderline: weight = min - K exactly -> NOT bypassed.
	weights[addrs[4]] = 4
	if out := c.Insert(pw(addrs[4], 4)); out != uopcache.Inserted {
		t.Errorf("borderline insert = %v, want Inserted", out)
	}
}

func TestFURBYSBypassDisabled(t *testing.T) {
	c := oneSet(policy.NewLRU())
	addrs := sameSetAddrs(c, 5)
	weights := map[uint64]uint8{addrs[0]: 7, addrs[1]: 7, addrs[2]: 7, addrs[3]: 7, addrs[4]: 0}
	cfg := policy.DefaultFURBYSConfig()
	cfg.BypassEnabled = false
	p := policy.NewFURBYS(cfg, weights)
	c = oneSet(p)
	for _, a := range addrs[:4] {
		c.Insert(pw(a, 4))
	}
	if out := c.Insert(pw(addrs[4], 4)); out != uopcache.Inserted {
		t.Errorf("insert with bypass disabled = %v", out)
	}
}

// TestFURBYSPitfallDetector reproduces the paper's local miss-pitfall
// scenario: a low-weight window repeatedly evicted and reinserted must
// eventually trigger one SRRIP decision that evicts a high-weight (but
// locally cold) window instead.
func TestFURBYSPitfallDetector(t *testing.T) {
	c := oneSet(policy.NewLRU())
	addrs := sameSetAddrs(c, 6)
	a, i := addrs[0], addrs[4] // the thrashing pair {A, I}
	weights := map[uint64]uint8{
		a: 1, addrs[1]: 7, addrs[2]: 7, addrs[3]: 5, i: 2,
	}
	p := policy.NewFURBYS(policy.DefaultFURBYSConfig(), weights)
	c = oneSet(p)
	for _, x := range addrs[:4] {
		c.Insert(pw(x, 4))
	}
	// Alternate A and I misses: weight-based decisions evict A for I and
	// I for A repeatedly; the detector must fire and hand one decision to
	// SRRIP.
	for round := 0; round < 10; round++ {
		c.Lookup(pw(i, 4))
		c.Insert(pw(i, 4))
		c.Lookup(pw(a, 4))
		c.Insert(pw(a, 4))
	}
	if p.Stats.VictimBySRRIP == 0 {
		t.Errorf("pitfall detector never degraded to SRRIP: %+v", p.Stats)
	}
	if p.Stats.VictimByWeight == 0 {
		t.Errorf("no weight-based decisions at all: %+v", p.Stats)
	}
}

func TestFURBYSDetectorDepthZeroNeverSRRIP(t *testing.T) {
	c := oneSet(policy.NewLRU())
	addrs := sameSetAddrs(c, 6)
	weights := map[uint64]uint8{}
	for _, x := range addrs {
		weights[x] = 3
	}
	cfg := policy.DefaultFURBYSConfig()
	cfg.DetectorDepth = 0
	p := policy.NewFURBYS(cfg, weights)
	c = oneSet(p)
	for round := 0; round < 20; round++ {
		for _, x := range addrs {
			c.Lookup(pw(x, 4))
			c.Insert(pw(x, 4))
		}
	}
	if p.Stats.VictimBySRRIP != 0 {
		t.Errorf("SRRIP decisions with detector disabled: %+v", p.Stats)
	}
}

func TestFURBYSConfigDefaults(t *testing.T) {
	cfg := policy.DefaultFURBYSConfig()
	if cfg.WeightBits != 3 || cfg.K != 1 || cfg.DetectorDepth != 2 || !cfg.BypassEnabled {
		t.Errorf("defaults = %+v", cfg)
	}
	if cfg.MaxWeight() != 7 {
		t.Errorf("MaxWeight = %d", cfg.MaxWeight())
	}
	// Zero-value config falls back to defaults.
	p := policy.NewFURBYS(policy.FURBYSConfig{}, nil)
	if p.Config().WeightBits != 3 {
		t.Errorf("zero config not defaulted: %+v", p.Config())
	}
}

func TestFURBYSStatsCoverage(t *testing.T) {
	var s policy.FURBYSStats
	if s.VictimCoverage() != 1 {
		t.Error("empty coverage should be 1")
	}
	s.VictimByWeight, s.VictimBySRRIP = 3, 1
	if got := s.VictimCoverage(); got != 0.75 {
		t.Errorf("coverage = %v", got)
	}
}

// TestAllPoliciesSurviveStress runs every policy against a mixed-size
// pseudo-random trace and checks the structural invariants hold and stats
// are internally consistent.
func TestAllPoliciesSurviveStress(t *testing.T) {
	weights := map[uint64]uint8{}
	classes := map[uint64]policy.ThermoClass{}
	mk := []struct {
		name string
		p    func() uopcache.Policy
	}{
		{"lru", func() uopcache.Policy { return policy.NewLRU() }},
		{"random", func() uopcache.Policy { return policy.NewRandom(3) }},
		{"srrip", func() uopcache.Policy { return policy.NewSRRIP() }},
		{"ship++", func() uopcache.Policy { return policy.NewSHiPPP() }},
		{"ghrp", func() uopcache.Policy { return policy.NewGHRP() }},
		{"mockingjay", func() uopcache.Policy { return policy.NewMockingjay() }},
		{"thermometer", func() uopcache.Policy { return policy.NewThermometer(classes) }},
		{"furbys", func() uopcache.Policy { return policy.NewFURBYS(policy.DefaultFURBYSConfig(), weights) }},
	}
	for _, tc := range mk {
		t.Run(tc.name, func(t *testing.T) {
			cfg := uopcache.Config{Entries: 64, Ways: 8, UopsPerEntry: 8, InsertDelay: 2}
			c := uopcache.New(cfg, tc.p())
			b := uopcache.NewBehavior(c, nil)
			state := uint64(99)
			for i := 0; i < 30000; i++ {
				state = state*6364136223846793005 + 1442695040888963407
				a := uint64(0x1000 + (state>>33)%900*16)
				u := 1 + int((state>>13)%24)
				b.Access(pw(a, u))
			}
			b.Flush()
			for s := 0; s < cfg.Sets(); s++ {
				if u := c.UsedEntries(s); u > cfg.Ways {
					t.Fatalf("set %d over capacity: %d", s, u)
				}
			}
			st := c.Stats
			if st.UopsHit+st.UopsMissed != st.UopsRequested {
				t.Errorf("uop accounting broken: %+v", st)
			}
			if st.Lookups != st.FullHits+st.PartialHits+st.Misses {
				t.Errorf("lookup accounting broken: %+v", st)
			}
		})
	}
}
