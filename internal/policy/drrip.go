package policy

import (
	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
)

// DRRIP implements Dynamic RRIP (Jaleel et al.): set dueling between SRRIP
// insertion (RRPV = max-1) and bimodal RRIP insertion (BRRIP: usually
// distant, occasionally long). The paper evaluates static SRRIP only; DRRIP
// is included as an extension baseline to show scan-resistance alone does
// not close the gap to profile-guided policies.
type DRRIP struct {
	rrpv map[key]uint8
	rec  *recency
	// psel is the policy-selection counter: SRRIP wins misses push it
	// one way, BRRIP the other.
	psel int
	// brripCtr throttles BRRIP's rare long-re-reference insertions.
	brripCtr int
	// leader assignment: set % 32 == 0 -> SRRIP leader, == 1 -> BRRIP.
	Stats struct {
		SRRIPInserts, BRRIPInserts uint64
	}
}

// NewDRRIP returns the DRRIP policy.
func NewDRRIP() *DRRIP {
	return &DRRIP{rrpv: make(map[key]uint8), rec: newRecency()}
}

// Name implements uopcache.Policy.
func (p *DRRIP) Name() string { return "drrip" }

// OnHit implements uopcache.Policy.
//
//simlint:hotpath
func (p *DRRIP) OnHit(set int, pc uint64) {
	p.rrpv[key{set, pc}] = 0
	p.rec.touch(set, pc)
}

const (
	drripLeaderMod = 32
	drripPselMax   = 1023
	drripBRRIPMod  = 32 // 1-in-32 inserts at long re-reference
)

// useSRRIP decides the insertion flavour for a set.
func (p *DRRIP) useSRRIP(set int) bool {
	switch set % drripLeaderMod {
	case 0:
		return true // SRRIP leader
	case 1:
		return false // BRRIP leader
	default:
		return p.psel <= drripPselMax/2 // follower
	}
}

// OnInsert implements uopcache.Policy.
func (p *DRRIP) OnInsert(set int, pw trace.PW) {
	k := key{set, pw.Start}
	if p.useSRRIP(set) {
		p.rrpv[k] = rripMax - 1
		p.Stats.SRRIPInserts++
	} else {
		p.brripCtr++
		if p.brripCtr%drripBRRIPMod == 0 {
			p.rrpv[k] = rripMax - 1
		} else {
			p.rrpv[k] = rripMax
		}
		p.Stats.BRRIPInserts++
	}
	p.rec.touch(set, pw.Start)
}

// OnEvict implements uopcache.Policy.
func (p *DRRIP) OnEvict(set int, pc uint64) {
	delete(p.rrpv, key{set, pc})
	p.rec.drop(set, pc)
}

// Victim implements uopcache.Policy: the SRRIP scan, with leader-set misses
// training the policy selector (a miss in a leader set votes against its
// policy).
//
//simlint:hotpath
func (p *DRRIP) Victim(set int, residents []uopcache.Resident, _ trace.PW) uopcache.Decision {
	switch set % drripLeaderMod {
	case 0: // SRRIP leader missed
		if p.psel < drripPselMax {
			p.psel++
		}
	case 1: // BRRIP leader missed
		if p.psel > 0 {
			p.psel--
		}
	}
	for {
		found := false
		var best uint64
		for _, r := range residents {
			if p.rrpv[key{set, r.Key}] >= rripMax {
				if !found || p.rec.older(set, r.Key, best) {
					best, found = r.Key, true
				}
			}
		}
		if found {
			return uopcache.Decision{VictimKey: best, Reason: ReasonRRPVDistant, Score: float64(p.rrpv[key{set, best}])}
		}
		for _, r := range residents {
			p.rrpv[key{set, r.Key}]++
		}
	}
}
