package policy

import (
	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
)

// DRRIP implements Dynamic RRIP (Jaleel et al.): set dueling between SRRIP
// insertion (RRPV = max-1) and bimodal RRIP insertion (BRRIP: usually
// distant, occasionally long). The paper evaluates static SRRIP only; DRRIP
// is included as an extension baseline to show scan-resistance alone does
// not close the gap to profile-guided policies.
type DRRIP struct {
	rrpv        []uint8
	slotsPerSet int
	rec         *recency
	// psel is the policy-selection counter: SRRIP wins misses push it
	// one way, BRRIP the other.
	psel int
	// brripCtr throttles BRRIP's rare long-re-reference insertions.
	brripCtr int
	// leader assignment: set % 32 == 0 -> SRRIP leader, == 1 -> BRRIP.
	Stats struct {
		SRRIPInserts, BRRIPInserts uint64
	}
}

// NewDRRIP returns the DRRIP policy.
func NewDRRIP() *DRRIP {
	return &DRRIP{rec: newRecency()}
}

// Name implements uopcache.Policy.
func (p *DRRIP) Name() string { return "drrip" }

// Bind implements uopcache.Policy.
func (p *DRRIP) Bind(g uopcache.Geometry) {
	p.slotsPerSet = g.SlotsPerSet
	p.rrpv = make([]uint8, g.Slots())
	p.rec.bind(g)
}

// OnHit implements uopcache.Policy.
//
//simlint:hotpath
func (p *DRRIP) OnHit(set int, slot int32, _ uint64) {
	p.rrpv[set*p.slotsPerSet+int(slot)] = 0
	p.rec.touch(set, slot)
}

const (
	drripLeaderMod = 32
	drripPselMax   = 1023
	drripBRRIPMod  = 32 // 1-in-32 inserts at long re-reference
)

// useSRRIP decides the insertion flavour for a set.
func (p *DRRIP) useSRRIP(set int) bool {
	switch set % drripLeaderMod {
	case 0:
		return true // SRRIP leader
	case 1:
		return false // BRRIP leader
	default:
		return p.psel <= drripPselMax/2 // follower
	}
}

// OnInsert implements uopcache.Policy.
//
//simlint:hotpath
func (p *DRRIP) OnInsert(set int, slot int32, _ trace.PW) {
	i := set*p.slotsPerSet + int(slot)
	if p.useSRRIP(set) {
		p.rrpv[i] = rripMax - 1
		p.Stats.SRRIPInserts++
	} else {
		p.brripCtr++
		if p.brripCtr%drripBRRIPMod == 0 {
			p.rrpv[i] = rripMax - 1
		} else {
			p.rrpv[i] = rripMax
		}
		p.Stats.BRRIPInserts++
	}
	p.rec.touch(set, slot)
}

// OnEvict implements uopcache.Policy.
//
//simlint:hotpath
func (p *DRRIP) OnEvict(set int, slot int32, _ uint64) { p.rec.drop(set, slot) }

// Victim implements uopcache.Policy: the SRRIP scan, with leader-set misses
// training the policy selector (a miss in a leader set votes against its
// policy).
//
//simlint:hotpath
func (p *DRRIP) Victim(set int, residents []uopcache.Resident, _ trace.PW) uopcache.Decision {
	switch set % drripLeaderMod {
	case 0: // SRRIP leader missed
		if p.psel < drripPselMax {
			p.psel++
		}
	case 1: // BRRIP leader missed
		if p.psel > 0 {
			p.psel--
		}
	}
	base := set * p.slotsPerSet
	b := srripScan(p.rrpv, base, p.rec, set, residents)
	return uopcache.Decision{
		VictimKey: residents[b].Key,
		Reason:    ReasonRRPVDistant,
		Score:     float64(p.rrpv[base+int(residents[b].Slot)]),
	}
}
