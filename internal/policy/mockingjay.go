package policy

import (
	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
)

// Mockingjay (Shah, Jain, Lin — HPCA 2022) mimics Belady's MIN online by
// predicting each block's time to reuse with a reuse-distance predictor
// (RDP) trained from sampled history, then evicting the resident with the
// largest estimated time remaining. The paper notes that for the micro-op
// cache every PC maps to exactly one PW, so the PC-based RDP degenerates to
// per-window reuse-distance tracking — which is how we implement it.
//
// State layout: per-resident last-access times live in a per-slot array and
// per-set clocks in a dense array; the RDP is dense over its 16-bit
// signature space. Only the training history (`last`) stays a map — it must
// survive eviction so a window's reuse distance is learned when it
// reappears, which no per-slot array can express.
type Mockingjay struct {
	// rdp maps a window signature to its EWMA reuse distance measured in
	// set-local accesses; rdpSeen marks trained signatures.
	rdp     []float64
	rdpSeen []bool
	// lastAccess is the set-local clock at each resident slot's last touch.
	lastAccess  []uint64
	slotsPerSet int
	// last maps a window start to the set clock of its previous access for
	// RDP training (set-local: each window belongs to exactly one set).
	last  map[uint64]uint64
	clock []uint64
	rec   *recency
	// InfiniteRD is the predicted distance for never-seen windows.
	InfiniteRD float64
	// OverdueDamp scales the |ETR| of overdue residents (predicted reuse
	// already passed): 1 treats overdue lines as fully dead, 0 protects
	// them. Intermediate values avoid evicting hot windows whose loop
	// merely paused.
	OverdueDamp float64
	// BypassFactor: bypass the arrival when its predicted reuse distance
	// exceeds this multiple of the worst resident's remaining time.
	BypassFactor float64
}

// mjSigBits sizes the dense RDP (the signature is 16 bits of the mixed PC).
const mjSigBits = 16

// NewMockingjay returns the Mockingjay policy.
func NewMockingjay() *Mockingjay {
	return &Mockingjay{
		rdp:          make([]float64, 1<<mjSigBits),
		rdpSeen:      make([]bool, 1<<mjSigBits),
		last:         make(map[uint64]uint64),
		rec:          newRecency(),
		InfiniteRD:   64,
		OverdueDamp:  1,
		BypassFactor: 0,
	}
}

// Name implements uopcache.Policy.
func (p *Mockingjay) Name() string { return "mockingjay" }

// Bind implements uopcache.Policy.
func (p *Mockingjay) Bind(g uopcache.Geometry) {
	p.slotsPerSet = g.SlotsPerSet
	p.lastAccess = make([]uint64, g.Slots())
	p.clock = make([]uint64, g.Sets)
	p.rec.bind(g)
}

func (p *Mockingjay) sig(pc uint64) uint32 { return uint32(mix(pc) & (1<<mjSigBits - 1)) }

// observe trains the RDP with an observed set-local reuse distance.
//
//simlint:hotpath
func (p *Mockingjay) observe(set int, pc uint64) {
	now := p.clock[set]
	if prev, ok := p.last[pc]; ok {
		d := float64(now - prev)
		s := p.sig(pc)
		if p.rdpSeen[s] {
			p.rdp[s] = 0.75*p.rdp[s] + 0.25*d
		} else {
			p.rdp[s] = d
			p.rdpSeen[s] = true
		}
	}
	p.last[pc] = now
}

//simlint:hotpath
func (p *Mockingjay) predictRD(pc uint64) float64 {
	if s := p.sig(pc); p.rdpSeen[s] {
		return p.rdp[s]
	}
	return p.InfiniteRD
}

// OnHit implements uopcache.Policy.
//
//simlint:hotpath
func (p *Mockingjay) OnHit(set int, slot int32, pc uint64) {
	p.clock[set]++
	p.observe(set, pc)
	p.lastAccess[set*p.slotsPerSet+int(slot)] = p.clock[set]
	p.rec.touch(set, slot)
}

// OnInsert implements uopcache.Policy.
//
//simlint:hotpath
func (p *Mockingjay) OnInsert(set int, slot int32, pw trace.PW) {
	p.clock[set]++
	p.observe(set, pw.Start)
	p.lastAccess[set*p.slotsPerSet+int(slot)] = p.clock[set]
	p.rec.touch(set, slot)
}

// OnEvict implements uopcache.Policy.
//
//simlint:hotpath
func (p *Mockingjay) OnEvict(set int, slot int32, _ uint64) { p.rec.drop(set, slot) }

// etr estimates a resident's time remaining until its next use.
//
//simlint:hotpath
func (p *Mockingjay) etr(set int, slot int32, pc uint64) float64 {
	last := float64(p.lastAccess[set*p.slotsPerSet+int(slot)])
	return last + p.predictRD(pc) - float64(p.clock[set])
}

// Victim implements uopcache.Policy: following Mockingjay's ETR rule, evict
// the resident with the largest |estimated time remaining| — either its next
// use is furthest away, or it is long overdue (predicted reuse never came,
// so it is probably dead). Arrivals whose own predicted reuse distance
// exceeds every resident's by a wide margin are bypassed.
//
//simlint:hotpath
func (p *Mockingjay) Victim(set int, residents []uopcache.Resident, incoming trace.PW) uopcache.Decision {
	worst := 0
	worstScore, worstETR := -1.0, 0.0
	first := true
	for i := range residents {
		r := &residents[i]
		e := p.etr(set, r.Slot, r.Key)
		score := e
		if score < 0 {
			score = -score * p.OverdueDamp
		}
		if first || score > worstScore ||
			(score == worstScore && p.rec.older(set, r.Slot, r.Key, residents[worst].Slot, residents[worst].Key)) {
			worst, worstScore, worstETR, first = i, score, e, false
		}
	}
	if p.BypassFactor > 0 && worstETR > 0 {
		if in := p.predictRD(incoming.Start); in > p.BypassFactor*worstETR && in >= p.InfiniteRD {
			return uopcache.Decision{Bypass: true, Reason: ReasonBypass, Score: in}
		}
	}
	return uopcache.Decision{VictimKey: residents[worst].Key, Reason: ReasonETRFurthest, Score: worstETR}
}
