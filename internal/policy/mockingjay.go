package policy

import (
	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
)

// Mockingjay (Shah, Jain, Lin — HPCA 2022) mimics Belady's MIN online by
// predicting each block's time to reuse with a reuse-distance predictor
// (RDP) trained from sampled history, then evicting the resident with the
// largest estimated time remaining. The paper notes that for the micro-op
// cache every PC maps to exactly one PW, so the PC-based RDP degenerates to
// per-window reuse-distance tracking — which is how we implement it.
type mjMeta struct {
	lastAccess uint64 // set-local clock at last touch
}

// Mockingjay is the reuse-distance-predicting policy.
type Mockingjay struct {
	// rdp maps a window signature to its EWMA reuse distance measured in
	// set-local accesses.
	rdp  map[uint32]float64
	meta map[key]*mjMeta
	// last maps a window signature to the set clock of its previous
	// access for RDP training.
	last  map[key]uint64
	clock map[int]uint64
	rec   *recency
	// InfiniteRD is the predicted distance for never-seen windows.
	InfiniteRD float64
	// OverdueDamp scales the |ETR| of overdue residents (predicted reuse
	// already passed): 1 treats overdue lines as fully dead, 0 protects
	// them. Intermediate values avoid evicting hot windows whose loop
	// merely paused.
	OverdueDamp float64
	// BypassFactor: bypass the arrival when its predicted reuse distance
	// exceeds this multiple of the worst resident's remaining time.
	BypassFactor float64
}

// NewMockingjay returns the Mockingjay policy.
func NewMockingjay() *Mockingjay {
	return &Mockingjay{
		rdp:          make(map[uint32]float64),
		meta:         make(map[key]*mjMeta),
		last:         make(map[key]uint64),
		clock:        make(map[int]uint64),
		rec:          newRecency(),
		InfiniteRD:   64,
		OverdueDamp:  1,
		BypassFactor: 0,
	}
}

// Name implements uopcache.Policy.
func (p *Mockingjay) Name() string { return "mockingjay" }

func (p *Mockingjay) sig(pc uint64) uint32 { return uint32(mix(pc) & 0xFFFF) }

// observe trains the RDP with an observed set-local reuse distance.
func (p *Mockingjay) observe(set int, pc uint64) {
	k := key{set, pc}
	now := p.clock[set]
	if prev, ok := p.last[k]; ok {
		d := float64(now - prev)
		s := p.sig(pc)
		if old, ok := p.rdp[s]; ok {
			p.rdp[s] = 0.75*old + 0.25*d
		} else {
			p.rdp[s] = d
		}
	}
	p.last[k] = now
}

func (p *Mockingjay) predictRD(pc uint64) float64 {
	if d, ok := p.rdp[p.sig(pc)]; ok {
		return d
	}
	return p.InfiniteRD
}

// OnHit implements uopcache.Policy.
//
//simlint:hotpath
func (p *Mockingjay) OnHit(set int, pc uint64) {
	p.clock[set]++
	p.observe(set, pc)
	if m := p.meta[key{set, pc}]; m != nil {
		m.lastAccess = p.clock[set]
	}
	p.rec.touch(set, pc)
}

// OnInsert implements uopcache.Policy.
func (p *Mockingjay) OnInsert(set int, pw trace.PW) {
	p.clock[set]++
	p.observe(set, pw.Start)
	p.meta[key{set, pw.Start}] = &mjMeta{lastAccess: p.clock[set]}
	p.rec.touch(set, pw.Start)
}

// OnEvict implements uopcache.Policy.
func (p *Mockingjay) OnEvict(set int, pc uint64) {
	delete(p.meta, key{set, pc})
	p.rec.drop(set, pc)
}

// etr estimates a resident's time remaining until its next use.
func (p *Mockingjay) etr(set int, r uopcache.Resident) float64 {
	m := p.meta[key{set, r.Key}]
	now := float64(p.clock[set])
	var last float64
	if m != nil {
		last = float64(m.lastAccess)
	}
	return last + p.predictRD(r.Key) - now
}

// Victim implements uopcache.Policy: following Mockingjay's ETR rule, evict
// the resident with the largest |estimated time remaining| — either its next
// use is furthest away, or it is long overdue (predicted reuse never came,
// so it is probably dead). Arrivals whose own predicted reuse distance
// exceeds every resident's by a wide margin are bypassed.
//
//simlint:hotpath
func (p *Mockingjay) Victim(set int, residents []uopcache.Resident, incoming trace.PW) uopcache.Decision {
	var worst uopcache.Resident
	worstScore, worstETR := -1.0, 0.0
	first := true
	for _, r := range residents {
		e := p.etr(set, r)
		score := e
		if score < 0 {
			score = -score * p.OverdueDamp
		}
		if first || score > worstScore || (score == worstScore && p.rec.older(set, r.Key, worst.Key)) {
			worst, worstScore, worstETR, first = r, score, e, false
		}
	}
	if p.BypassFactor > 0 && worstETR > 0 {
		if in := p.predictRD(incoming.Start); in > p.BypassFactor*worstETR && in >= p.InfiniteRD {
			return uopcache.Decision{Bypass: true, Reason: ReasonBypass, Score: in}
		}
	}
	return uopcache.Decision{VictimKey: worst.Key, Reason: ReasonETRFurthest, Score: worstETR}
}
