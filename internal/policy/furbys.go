package policy

import (
	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
)

// FURBYSConfig holds the tunables the paper's sensitivity study sweeps.
type FURBYSConfig struct {
	// WeightBits is the number of bits per weight group (paper default 3
	// bits = 8 groups, swept 1–8 in Fig. 19).
	WeightBits int
	// K is the bypass slack: a new window is bypassed when its weight is
	// below the set's minimum resident weight minus K (paper: K=1).
	K int
	// DetectorDepth is the local miss-pitfall detector's slot count
	// (paper default 2, swept in Fig. 20; 0 disables it).
	DetectorDepth int
	// BypassEnabled toggles the selective bypass mechanism (Fig. 21).
	BypassEnabled bool
	// DefaultWeight is assigned to windows absent from the profile.
	DefaultWeight int
}

// DefaultFURBYSConfig returns the paper's chosen configuration.
func DefaultFURBYSConfig() FURBYSConfig {
	return FURBYSConfig{WeightBits: 3, K: 1, DetectorDepth: 2, BypassEnabled: true, DefaultWeight: 2}
}

// MaxWeight returns the largest representable weight group.
func (c FURBYSConfig) MaxWeight() int { return 1<<c.WeightBits - 1 }

// FURBYS is the paper's practical profile-guided replacement policy. Per
// window it keeps a 3-bit weight (its Jenks-grouped whole-execution FLACK
// hit rate, delivered via binary hints — here, the weight map) and 2-bit
// SRRIP metadata; per set it keeps a small miss-pitfall detector recording
// recent evictions. Victims are the minimum-weight residents; when the
// detector sees the same window evicted repeatedly (a globally-hot but
// locally-cold phase) the policy degrades to SRRIP for one decision; and
// arrivals whose weight is below the set minimum minus K are bypassed.
type FURBYS struct {
	cfg FURBYSConfig
	// weights is the profile-derived hint map: window start → group.
	weights map[uint64]uint8

	rrpv map[key]uint8
	rec  *recency
	// detector[set] holds the keys of the most recent evictions.
	detector map[int][]uint64
	// bypassDetector[set] holds the keys of the most recent bypasses: a
	// window bypassed twice in a row is locally hot despite its profiled
	// weight (the same pitfall the eviction detector catches), so it is
	// admitted instead. Without this, a stale or cross-input profile can
	// starve a hot window indefinitely.
	bypassDetector map[int][]uint64
	// srripNext[set] forces the next victim decision in the set to SRRIP.
	srripNext map[int]bool

	Stats FURBYSStats
}

// FURBYSStats counts decision provenance for the paper's coverage numbers
// (Section VI-C: FURBYS selects the victim 88.68% of the time; ~30% of
// insertions are bypassed).
type FURBYSStats struct {
	VictimByWeight uint64
	VictimBySRRIP  uint64
	Bypasses       uint64
	InsertAttempts uint64
}

// VictimCoverage returns the fraction of victim decisions made by the
// weight mechanism rather than the SRRIP fallback.
func (s FURBYSStats) VictimCoverage() float64 {
	t := s.VictimByWeight + s.VictimBySRRIP
	if t == 0 {
		return 1
	}
	return float64(s.VictimByWeight) / float64(t)
}

// NewFURBYS builds the policy from a weight map (see package profiles for
// how the map is produced from FLACK decisions).
func NewFURBYS(cfg FURBYSConfig, weights map[uint64]uint8) *FURBYS {
	if cfg.WeightBits <= 0 {
		cfg = DefaultFURBYSConfig()
	}
	return &FURBYS{
		cfg:            cfg,
		weights:        weights,
		rrpv:           make(map[key]uint8),
		rec:            newRecency(),
		detector:       make(map[int][]uint64),
		bypassDetector: make(map[int][]uint64),
		srripNext:      make(map[int]bool),
	}
}

// Name implements uopcache.Policy.
func (p *FURBYS) Name() string { return "furbys" }

// Config returns the policy configuration.
func (p *FURBYS) Config() FURBYSConfig { return p.cfg }

func (p *FURBYS) weightOf(pc uint64) int {
	if w, ok := p.weights[pc]; ok {
		m := p.cfg.MaxWeight()
		if int(w) > m {
			return m
		}
		return int(w)
	}
	d := p.cfg.DefaultWeight
	if m := p.cfg.MaxWeight(); d > m {
		d = m
	}
	return d
}

// OnHit implements uopcache.Policy.
//
//simlint:hotpath
func (p *FURBYS) OnHit(set int, pc uint64) {
	p.rrpv[key{set, pc}] = 0
	p.rec.touch(set, pc)
}

// OnInsert implements uopcache.Policy: RRPV initialized to 2 per the paper.
func (p *FURBYS) OnInsert(set int, pw trace.PW) {
	p.rrpv[key{set, pw.Start}] = 2
	p.rec.touch(set, pw.Start)
}

// OnEvict implements uopcache.Policy.
func (p *FURBYS) OnEvict(set int, pc uint64) {
	delete(p.rrpv, key{set, pc})
	p.rec.drop(set, pc)
}

// recordEviction pushes a victim into the set's pitfall detector and reports
// whether the same window was already recorded (a repeated eviction — the
// local miss-pitfall signal).
func (p *FURBYS) recordEviction(set int, victim uint64) bool {
	if p.cfg.DetectorDepth <= 0 {
		return false
	}
	d := p.detector[set]
	if d == nil {
		d = make([]uint64, 0, p.cfg.DetectorDepth+1)
	}
	repeated := false
	for _, k := range d {
		if k == victim {
			repeated = true
			break
		}
	}
	d = append(d, victim)
	if len(d) > p.cfg.DetectorDepth {
		// Copy down instead of re-slicing so the backing array's spare
		// capacity stays at the tail and appends stop reallocating.
		n := copy(d, d[len(d)-p.cfg.DetectorDepth:])
		d = d[:n]
	}
	p.detector[set] = d
	return repeated
}

// recordBypass pushes a bypassed window into the set's bypass detector and
// reports whether it was already recorded (a repeated bypass).
func (p *FURBYS) recordBypass(set int, key uint64) bool {
	if p.cfg.DetectorDepth <= 0 {
		return false
	}
	d := p.bypassDetector[set]
	if d == nil {
		d = make([]uint64, 0, p.cfg.DetectorDepth+1)
	}
	repeated := false
	for _, k := range d {
		if k == key {
			repeated = true
			break
		}
	}
	d = append(d, key)
	if len(d) > p.cfg.DetectorDepth {
		n := copy(d, d[len(d)-p.cfg.DetectorDepth:])
		d = d[:n]
	}
	p.bypassDetector[set] = d
	return repeated
}

// srripVictim runs the standard SRRIP scan over the residents.
func (p *FURBYS) srripVictim(set int, residents []uopcache.Resident) uint64 {
	for {
		found := false
		var best uint64
		for _, r := range residents {
			if p.rrpv[key{set, r.Key}] >= rripMax {
				if !found || p.rec.older(set, r.Key, best) {
					best, found = r.Key, true
				}
			}
		}
		if found {
			return best
		}
		for _, r := range residents {
			p.rrpv[key{set, r.Key}]++
		}
	}
}

// Victim implements uopcache.Policy.
//
//simlint:hotpath
func (p *FURBYS) Victim(set int, residents []uopcache.Resident, incoming trace.PW) uopcache.Decision {
	p.Stats.InsertAttempts++
	// Find the minimum-weight resident (min module in Fig. 7) with
	// LRU tiebreak.
	var minKey uint64
	minW := -1
	for _, r := range residents {
		w := p.weightOf(r.Key)
		switch {
		case minW < 0 || w < minW:
			minKey, minW = r.Key, w
		case w == minW && p.rec.older(set, r.Key, minKey):
			minKey = r.Key
		}
	}
	// Selective bypass: the pending window's weight is compared with the
	// set minimum (step 3 in Fig. 7). A window the detector has seen
	// bypassed recently is locally hot regardless of its profiled
	// weight, so it is admitted — the bypass-side analogue of the local
	// miss-pitfall detector.
	if p.cfg.BypassEnabled && p.weightOf(incoming.Start) < minW-p.cfg.K {
		if !p.recordBypass(set, incoming.Start) {
			p.Stats.Bypasses++
			return uopcache.Decision{Bypass: true, Reason: ReasonBypass, Score: float64(p.weightOf(incoming.Start))}
		}
	}
	// Local miss-pitfall handling: if a previous decision flagged this
	// set, make exactly one SRRIP decision, then resume normal operation.
	if p.srripNext[set] {
		p.srripNext[set] = false
		v := p.srripVictim(set, residents)
		p.Stats.VictimBySRRIP++
		p.recordEviction(set, v)
		return uopcache.Decision{VictimKey: v, Reason: ReasonRRPVDistant, Score: float64(p.rrpv[key{set, v}])}
	}
	// Normal FURBYS decision; a repeated eviction of the same window arms
	// the SRRIP fallback for the next decision in this set.
	if p.recordEviction(set, minKey) {
		p.srripNext[set] = true
	}
	p.Stats.VictimByWeight++
	return uopcache.Decision{VictimKey: minKey, Reason: ReasonMinWeight, Score: float64(minW)}
}
