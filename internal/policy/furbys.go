package policy

import (
	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
)

// FURBYSConfig holds the tunables the paper's sensitivity study sweeps.
type FURBYSConfig struct {
	// WeightBits is the number of bits per weight group (paper default 3
	// bits = 8 groups, swept 1–8 in Fig. 19).
	WeightBits int
	// K is the bypass slack: a new window is bypassed when its weight is
	// below the set's minimum resident weight minus K (paper: K=1).
	K int
	// DetectorDepth is the local miss-pitfall detector's slot count
	// (paper default 2, swept in Fig. 20; 0 disables it).
	DetectorDepth int
	// BypassEnabled toggles the selective bypass mechanism (Fig. 21).
	BypassEnabled bool
	// DefaultWeight is assigned to windows absent from the profile.
	DefaultWeight int
}

// DefaultFURBYSConfig returns the paper's chosen configuration.
func DefaultFURBYSConfig() FURBYSConfig {
	return FURBYSConfig{WeightBits: 3, K: 1, DetectorDepth: 2, BypassEnabled: true, DefaultWeight: 2}
}

// MaxWeight returns the largest representable weight group.
func (c FURBYSConfig) MaxWeight() int { return 1<<c.WeightBits - 1 }

// FURBYS is the paper's practical profile-guided replacement policy. Per
// window it keeps a 3-bit weight (its Jenks-grouped whole-execution FLACK
// hit rate, delivered via binary hints — here, the weight map) and 2-bit
// SRRIP metadata; per set it keeps a small miss-pitfall detector recording
// recent evictions. Victims are the minimum-weight residents; when the
// detector sees the same window evicted repeatedly (a globally-hot but
// locally-cold phase) the policy degrades to SRRIP for one decision; and
// arrivals whose weight is below the set minimum minus K are bypassed.
type FURBYS struct {
	cfg FURBYSConfig
	// weights is the profile-derived hint map: window start → group.
	weights map[uint64]uint8

	rrpv        []uint8
	slotsPerSet int
	rec         *recency
	// detector[set] holds the keys of the most recent evictions; slices
	// are nil until a set first evicts, then hold DetectorDepth+1 capacity
	// forever.
	detector [][]uint64
	// bypassDetector[set] holds the keys of the most recent bypasses: a
	// window bypassed twice in a row is locally hot despite its profiled
	// weight (the same pitfall the eviction detector catches), so it is
	// admitted instead. Without this, a stale or cross-input profile can
	// starve a hot window indefinitely.
	bypassDetector [][]uint64
	// srripNext[set] forces the next victim decision in the set to SRRIP.
	srripNext []bool

	Stats FURBYSStats
}

// FURBYSStats counts decision provenance for the paper's coverage numbers
// (Section VI-C: FURBYS selects the victim 88.68% of the time; ~30% of
// insertions are bypassed).
type FURBYSStats struct {
	VictimByWeight uint64
	VictimBySRRIP  uint64
	Bypasses       uint64
	InsertAttempts uint64
}

// VictimCoverage returns the fraction of victim decisions made by the
// weight mechanism rather than the SRRIP fallback.
func (s FURBYSStats) VictimCoverage() float64 {
	t := s.VictimByWeight + s.VictimBySRRIP
	if t == 0 {
		return 1
	}
	return float64(s.VictimByWeight) / float64(t)
}

// NewFURBYS builds the policy from a weight map (see package profiles for
// how the map is produced from FLACK decisions).
func NewFURBYS(cfg FURBYSConfig, weights map[uint64]uint8) *FURBYS {
	if cfg.WeightBits <= 0 {
		cfg = DefaultFURBYSConfig()
	}
	return &FURBYS{cfg: cfg, weights: weights, rec: newRecency()}
}

// Name implements uopcache.Policy.
func (p *FURBYS) Name() string { return "furbys" }

// Bind implements uopcache.Policy.
func (p *FURBYS) Bind(g uopcache.Geometry) {
	p.slotsPerSet = g.SlotsPerSet
	p.rrpv = make([]uint8, g.Slots())
	p.detector = make([][]uint64, g.Sets)
	p.bypassDetector = make([][]uint64, g.Sets)
	p.srripNext = make([]bool, g.Sets)
	p.rec.bind(g)
}

// Config returns the policy configuration.
func (p *FURBYS) Config() FURBYSConfig { return p.cfg }

//simlint:hotpath
func (p *FURBYS) weightOf(pc uint64) int {
	if w, ok := p.weights[pc]; ok {
		m := p.cfg.MaxWeight()
		if int(w) > m {
			return m
		}
		return int(w)
	}
	d := p.cfg.DefaultWeight
	if m := p.cfg.MaxWeight(); d > m {
		d = m
	}
	return d
}

// OnHit implements uopcache.Policy.
//
//simlint:hotpath
func (p *FURBYS) OnHit(set int, slot int32, _ uint64) {
	p.rrpv[set*p.slotsPerSet+int(slot)] = 0
	p.rec.touch(set, slot)
}

// OnInsert implements uopcache.Policy: RRPV initialized to 2 per the paper.
//
//simlint:hotpath
func (p *FURBYS) OnInsert(set int, slot int32, _ trace.PW) {
	p.rrpv[set*p.slotsPerSet+int(slot)] = 2
	p.rec.touch(set, slot)
}

// OnEvict implements uopcache.Policy.
//
//simlint:hotpath
func (p *FURBYS) OnEvict(set int, slot int32, _ uint64) { p.rec.drop(set, slot) }

// recordIn pushes key into a bounded per-set detector window and reports
// whether it was already recorded. The slice is allocated once per set at
// DetectorDepth+1 capacity; afterwards the copy-down truncation keeps spare
// capacity at the tail so appends never reallocate.
//
//simlint:hotpath
func (p *FURBYS) recordIn(dets [][]uint64, set int, key uint64) bool {
	d := dets[set]
	if d == nil {
		d = make([]uint64, 0, p.cfg.DetectorDepth+1)
	}
	repeated := false
	for _, k := range d {
		if k == key {
			repeated = true
			break
		}
	}
	d = append(d, key)
	if len(d) > p.cfg.DetectorDepth {
		n := copy(d, d[len(d)-p.cfg.DetectorDepth:])
		d = d[:n]
	}
	dets[set] = d
	return repeated
}

// recordEviction pushes a victim into the set's pitfall detector and reports
// whether the same window was already recorded (a repeated eviction — the
// local miss-pitfall signal).
//
//simlint:hotpath
func (p *FURBYS) recordEviction(set int, victim uint64) bool {
	if p.cfg.DetectorDepth <= 0 {
		return false
	}
	return p.recordIn(p.detector, set, victim)
}

// recordBypass pushes a bypassed window into the set's bypass detector and
// reports whether it was already recorded (a repeated bypass).
//
//simlint:hotpath
func (p *FURBYS) recordBypass(set int, key uint64) bool {
	if p.cfg.DetectorDepth <= 0 {
		return false
	}
	return p.recordIn(p.bypassDetector, set, key)
}

// Victim implements uopcache.Policy.
//
//simlint:hotpath
func (p *FURBYS) Victim(set int, residents []uopcache.Resident, incoming trace.PW) uopcache.Decision {
	p.Stats.InsertAttempts++
	base := set * p.slotsPerSet
	// Find the minimum-weight resident (min module in Fig. 7) with
	// LRU tiebreak.
	minI := 0
	minW := p.weightOf(residents[0].Key)
	for i := 1; i < len(residents); i++ {
		w := p.weightOf(residents[i].Key)
		switch {
		case w < minW:
			minI, minW = i, w
		case w == minW && p.rec.older(set, residents[i].Slot, residents[i].Key, residents[minI].Slot, residents[minI].Key):
			minI = i
		}
	}
	// Selective bypass: the pending window's weight is compared with the
	// set minimum (step 3 in Fig. 7). A window the detector has seen
	// bypassed recently is locally hot regardless of its profiled
	// weight, so it is admitted — the bypass-side analogue of the local
	// miss-pitfall detector.
	if p.cfg.BypassEnabled && p.weightOf(incoming.Start) < minW-p.cfg.K {
		if !p.recordBypass(set, incoming.Start) {
			p.Stats.Bypasses++
			return uopcache.Decision{Bypass: true, Reason: ReasonBypass, Score: float64(p.weightOf(incoming.Start))}
		}
	}
	// Local miss-pitfall handling: if a previous decision flagged this
	// set, make exactly one SRRIP decision, then resume normal operation.
	if p.srripNext[set] {
		p.srripNext[set] = false
		b := srripScan(p.rrpv, base, p.rec, set, residents)
		v := residents[b].Key
		p.Stats.VictimBySRRIP++
		p.recordEviction(set, v)
		return uopcache.Decision{VictimKey: v, Reason: ReasonRRPVDistant, Score: float64(p.rrpv[base+int(residents[b].Slot)])}
	}
	// Normal FURBYS decision; a repeated eviction of the same window arms
	// the SRRIP fallback for the next decision in this set.
	if p.recordEviction(set, residents[minI].Key) {
		p.srripNext[set] = true
	}
	p.Stats.VictimByWeight++
	return uopcache.Decision{VictimKey: residents[minI].Key, Reason: ReasonMinWeight, Score: float64(minW)}
}
