package policy

import (
	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
)

// GHRP implements the Global History Reuse Predictor (Ajorpaz et al., ISCA
// 2018), the strongest prior online policy in the paper's study. It keeps a
// global history of recent window addresses; dead-block predictor tables
// indexed by hashes of (address, history) vote on whether a window is dead
// (will not be reused before eviction). Predicted-dead residents are
// preferred victims and predicted-dead arrivals are bypassed.
//
// Per-resident state (the signature captured at fill/last touch and the
// reused bit) lives in flat per-slot arrays: unlike the other policies this
// state is genuinely history-dependent — the signature must be recorded at
// observation time, it cannot be recomputed from the key later.
type GHRP struct {
	tables      [][]uint8 // saturating counters, one slice per feature table
	history     uint64
	sig         []uint32 // per-slot signature at fill/last touch
	reused      []bool   // per-slot reuse flag
	slotsPerSet int
	rec         *recency
	// Bypass enables dead-on-arrival bypassing (on in the paper).
	Bypass bool
	// HistoryBits controls how many recent-window hashes fold into each
	// signature: 0 = PC-only (per-window dead-block prediction), larger
	// values correlate predictions with the path leading to the window.
	HistoryBits int
}

const (
	ghrpTables    = 3
	ghrpTableBits = 12
	ghrpCtrMax    = 3
	// ghrpThreshold: a table votes "dead" when its counter is at or
	// above this value; majority of tables decides.
	ghrpThreshold = 2
)

// NewGHRP returns the GHRP policy with bypassing enabled.
func NewGHRP() *GHRP {
	t := make([][]uint8, ghrpTables)
	for i := range t {
		t[i] = make([]uint8, 1<<ghrpTableBits)
	}
	return &GHRP{tables: t, rec: newRecency(), Bypass: true, HistoryBits: 20}
}

// Name implements uopcache.Policy.
func (p *GHRP) Name() string { return "ghrp" }

// Bind implements uopcache.Policy.
func (p *GHRP) Bind(g uopcache.Geometry) {
	p.slotsPerSet = g.SlotsPerSet
	p.sig = make([]uint32, g.Slots())
	p.reused = make([]bool, g.Slots())
	p.rec.bind(g)
}

func (p *GHRP) index(table int, sig uint32) uint32 {
	h := mix(uint64(sig) + uint64(table)*0x9E3779B97F4A7C15)
	return uint32(h) & ((1 << ghrpTableBits) - 1)
}

func (p *GHRP) signature(pc uint64) uint32 {
	h := p.history
	if p.HistoryBits < 64 {
		h &= (1 << uint(p.HistoryBits)) - 1
	}
	return uint32(mix(pc ^ h))
}

// predictDead returns the majority dead vote for a signature.
func (p *GHRP) predictDead(sig uint32) bool {
	votes := 0
	for t := 0; t < ghrpTables; t++ {
		if p.tables[t][p.index(t, sig)] >= ghrpThreshold {
			votes++
		}
	}
	return votes*2 > ghrpTables
}

// train adjusts the tables toward dead (true) or live (false) for sig.
func (p *GHRP) train(sig uint32, dead bool) {
	for t := 0; t < ghrpTables; t++ {
		i := p.index(t, sig)
		if dead {
			if p.tables[t][i] < ghrpCtrMax {
				p.tables[t][i]++
			}
		} else if p.tables[t][i] > 0 {
			p.tables[t][i]--
		}
	}
}

// updateHistory shifts a window address into the global history register.
func (p *GHRP) updateHistory(pc uint64) {
	p.history = (p.history << 5) ^ mix(pc)
}

// OnHit implements uopcache.Policy: a hit proves the previous prediction
// point was live; re-signature the block at its new access.
//
//simlint:hotpath
func (p *GHRP) OnHit(set int, slot int32, pc uint64) {
	i := set*p.slotsPerSet + int(slot)
	p.train(p.sig[i], false)
	p.reused[i] = true
	p.sig[i] = p.signature(pc)
	p.rec.touch(set, slot)
	p.updateHistory(pc)
}

// OnInsert implements uopcache.Policy.
//
//simlint:hotpath
func (p *GHRP) OnInsert(set int, slot int32, pw trace.PW) {
	i := set*p.slotsPerSet + int(slot)
	p.sig[i] = p.signature(pw.Start)
	p.reused[i] = false
	p.rec.touch(set, slot)
	p.updateHistory(pw.Start)
}

// OnEvict implements uopcache.Policy: dying without reuse trains "dead".
//
//simlint:hotpath
func (p *GHRP) OnEvict(set int, slot int32, _ uint64) {
	i := set*p.slotsPerSet + int(slot)
	p.train(p.sig[i], !p.reused[i])
	p.rec.drop(set, slot)
}

// Victim implements uopcache.Policy: bypass dead arrivals; otherwise evict a
// predicted-dead resident (LRU tiebreak), falling back to plain LRU.
//
//simlint:hotpath
func (p *GHRP) Victim(set int, residents []uopcache.Resident, incoming trace.PW) uopcache.Decision {
	if p.Bypass && p.predictDead(p.signature(incoming.Start)) {
		return uopcache.Decision{Bypass: true, Reason: ReasonPredictedDead}
	}
	base := set * p.slotsPerSet
	dead := -1
	for i := range residents {
		if p.predictDead(p.sig[base+int(residents[i].Slot)]) {
			if dead < 0 || p.rec.older(set, residents[i].Slot, residents[i].Key, residents[dead].Slot, residents[dead].Key) {
				dead = i
			}
		}
	}
	if dead >= 0 {
		return uopcache.Decision{
			VictimKey: residents[dead].Key,
			Reason:    ReasonPredictedDead,
			Score:     float64(p.rec.of(set, residents[dead].Slot)),
		}
	}
	b := lruScan(p.rec, set, residents)
	return uopcache.Decision{
		VictimKey: residents[b].Key,
		Reason:    ReasonLRUOldest,
		Score:     float64(p.rec.of(set, residents[b].Slot)),
	}
}
