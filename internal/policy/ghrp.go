package policy

import (
	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
)

// GHRP implements the Global History Reuse Predictor (Ajorpaz et al., ISCA
// 2018), the strongest prior online policy in the paper's study. It keeps a
// global history of recent window addresses; dead-block predictor tables
// indexed by hashes of (address, history) vote on whether a window is dead
// (will not be reused before eviction). Predicted-dead residents are
// preferred victims and predicted-dead arrivals are bypassed.
type ghrpMeta struct {
	sig    uint32 // hash of (pc, history) at fill/last touch
	reused bool
}

// GHRP is the dead-block-predicting policy.
type GHRP struct {
	tables  [][]uint8 // saturating counters, one slice per feature table
	history uint64
	meta    map[key]*ghrpMeta
	rec     *recency
	// Bypass enables dead-on-arrival bypassing (on in the paper).
	Bypass bool
	// HistoryBits controls how many recent-window hashes fold into each
	// signature: 0 = PC-only (per-window dead-block prediction), larger
	// values correlate predictions with the path leading to the window.
	HistoryBits int
}

const (
	ghrpTables    = 3
	ghrpTableBits = 12
	ghrpCtrMax    = 3
	// ghrpThreshold: a table votes "dead" when its counter is at or
	// above this value; majority of tables decides.
	ghrpThreshold = 2
)

// NewGHRP returns the GHRP policy with bypassing enabled.
func NewGHRP() *GHRP {
	t := make([][]uint8, ghrpTables)
	for i := range t {
		t[i] = make([]uint8, 1<<ghrpTableBits)
	}
	return &GHRP{tables: t, meta: make(map[key]*ghrpMeta), rec: newRecency(), Bypass: true, HistoryBits: 20}
}

// Name implements uopcache.Policy.
func (p *GHRP) Name() string { return "ghrp" }

func (p *GHRP) index(table int, sig uint32) uint32 {
	h := mix(uint64(sig) + uint64(table)*0x9E3779B97F4A7C15)
	return uint32(h) & ((1 << ghrpTableBits) - 1)
}

func (p *GHRP) signature(pc uint64) uint32 {
	h := p.history
	if p.HistoryBits < 64 {
		h &= (1 << uint(p.HistoryBits)) - 1
	}
	return uint32(mix(pc ^ h))
}

// predictDead returns the majority dead vote for a signature.
func (p *GHRP) predictDead(sig uint32) bool {
	votes := 0
	for t := 0; t < ghrpTables; t++ {
		if p.tables[t][p.index(t, sig)] >= ghrpThreshold {
			votes++
		}
	}
	return votes*2 > ghrpTables
}

// train adjusts the tables toward dead (true) or live (false) for sig.
func (p *GHRP) train(sig uint32, dead bool) {
	for t := 0; t < ghrpTables; t++ {
		i := p.index(t, sig)
		if dead {
			if p.tables[t][i] < ghrpCtrMax {
				p.tables[t][i]++
			}
		} else if p.tables[t][i] > 0 {
			p.tables[t][i]--
		}
	}
}

// updateHistory shifts a window address into the global history register.
func (p *GHRP) updateHistory(pc uint64) {
	p.history = (p.history << 5) ^ mix(pc)
}

// OnHit implements uopcache.Policy: a hit proves the previous prediction
// point was live; re-signature the block at its new access.
//
//simlint:hotpath
func (p *GHRP) OnHit(set int, pc uint64) {
	k := key{set, pc}
	if m := p.meta[k]; m != nil {
		p.train(m.sig, false)
		m.reused = true
		m.sig = p.signature(pc)
	}
	p.rec.touch(set, pc)
	p.updateHistory(pc)
}

// OnInsert implements uopcache.Policy.
func (p *GHRP) OnInsert(set int, pw trace.PW) {
	k := key{set, pw.Start}
	p.meta[k] = &ghrpMeta{sig: p.signature(pw.Start)}
	p.rec.touch(set, pw.Start)
	p.updateHistory(pw.Start)
}

// OnEvict implements uopcache.Policy: dying without reuse trains "dead".
func (p *GHRP) OnEvict(set int, pc uint64) {
	k := key{set, pc}
	if m := p.meta[k]; m != nil {
		p.train(m.sig, !m.reused)
		delete(p.meta, k)
	}
	p.rec.drop(set, pc)
}

// Victim implements uopcache.Policy: bypass dead arrivals; otherwise evict a
// predicted-dead resident (LRU tiebreak), falling back to plain LRU.
//
//simlint:hotpath
func (p *GHRP) Victim(set int, residents []uopcache.Resident, incoming trace.PW) uopcache.Decision {
	if p.Bypass && p.predictDead(p.signature(incoming.Start)) {
		return uopcache.Decision{Bypass: true, Reason: ReasonPredictedDead}
	}
	var deadBest uint64
	foundDead := false
	for _, r := range residents {
		m := p.meta[key{set, r.Key}]
		if m != nil && p.predictDead(m.sig) {
			if !foundDead || p.rec.older(set, r.Key, deadBest) {
				deadBest, foundDead = r.Key, true
			}
		}
	}
	if foundDead {
		return uopcache.Decision{VictimKey: deadBest, Reason: ReasonPredictedDead, Score: float64(p.rec.of(set, deadBest))}
	}
	best := residents[0].Key
	for _, r := range residents[1:] {
		if p.rec.older(set, r.Key, best) {
			best = r.Key
		}
	}
	return uopcache.Decision{VictimKey: best, Reason: ReasonLRUOldest, Score: float64(p.rec.of(set, best))}
}
