package profiles

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"uopsim/internal/policy"
	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
)

func pw(start uint64, uops int) trace.PW {
	return trace.PW{Start: start, NumUops: uint16(uops), Bytes: uint16(uops * 4),
		NumInst: uint16(uops), Lines: []uint64{trace.LineAddr(start)}}
}

func cfg() uopcache.Config {
	return uopcache.Config{Entries: 16, Ways: 8, UopsPerEntry: 8, InsertDelay: 1}
}

// hotColdTrace: a hot window looked up constantly, cold windows streamed.
func hotColdTrace() []trace.PW {
	rng := rand.New(rand.NewSource(3))
	var s []trace.PW
	hot := uint64(0x1000)
	for i := 0; i < 3000; i++ {
		s = append(s, pw(hot, 4))
		if rng.Float64() < 0.7 {
			s = append(s, pw(uint64(0x2000+rng.Intn(300)*16), 4))
		}
	}
	return s
}

func TestCollectRatesOrdering(t *testing.T) {
	s := hotColdTrace()
	p := Collect(s, cfg(), SourceFLACK)
	hot := p.Rates[0x1000]
	if hot.Lookups < 2900 {
		t.Fatalf("hot lookups = %d", hot.Lookups)
	}
	if hot.Value() < 0.8 {
		t.Errorf("hot window hit rate %.2f, want high", hot.Value())
	}
	// Average cold rate must be far below the hot rate.
	var coldSum float64
	var coldN int
	for k, r := range p.Rates {
		if k != 0x1000 {
			coldSum += r.Value()
			coldN++
		}
	}
	if coldN == 0 {
		t.Fatal("no cold windows")
	}
	if coldSum/float64(coldN) > hot.Value()-0.2 {
		t.Errorf("cold avg %.2f vs hot %.2f: not separated", coldSum/float64(coldN), hot.Value())
	}
}

func TestCollectSources(t *testing.T) {
	s := hotColdTrace()[:2000]
	for _, src := range []Source{SourceFLACK, SourceBelady, SourceFOO} {
		p := Collect(s, cfg(), src)
		if p.Source != src {
			t.Errorf("source = %v", p.Source)
		}
		if len(p.Rates) == 0 {
			t.Errorf("%v: empty profile", src)
		}
	}
}

func TestSourceString(t *testing.T) {
	if SourceFLACK.String() != "flack" || SourceBelady.String() != "belady" ||
		SourceFOO.String() != "foo" || Source(9).String() != "unknown" {
		t.Error("source names")
	}
}

func TestWeightsSeparateHotFromCold(t *testing.T) {
	s := hotColdTrace()
	p := Collect(s, cfg(), SourceFLACK)
	w := p.Weights(cfg(), 3)
	hotW := w[0x1000]
	// The hot window must be in a higher group than the median cold one.
	var coldWs []int
	for k, x := range w {
		if k != 0x1000 {
			coldWs = append(coldWs, int(x))
		}
	}
	if len(coldWs) == 0 {
		t.Fatal("no cold weights")
	}
	sum := 0
	for _, x := range coldWs {
		sum += x
	}
	avg := float64(sum) / float64(len(coldWs))
	if float64(hotW) <= avg {
		t.Errorf("hot weight %d not above cold average %.1f", hotW, avg)
	}
	for _, x := range w {
		if x > 7 {
			t.Errorf("weight %d out of 3-bit range", x)
		}
	}
}

func TestWeightsBitsBound(t *testing.T) {
	s := hotColdTrace()[:1500]
	p := Collect(s, cfg(), SourceFLACK)
	for bits := 1; bits <= 8; bits++ {
		w := p.Weights(cfg(), bits)
		max := uint8(0)
		for _, x := range w {
			if x > max {
				max = x
			}
		}
		if int(max) >= 1<<bits {
			t.Errorf("bits=%d: weight %d out of range", bits, max)
		}
	}
	// bits<=0 falls back to 3.
	w := p.Weights(cfg(), 0)
	for _, x := range w {
		if x > 7 {
			t.Errorf("default bits: weight %d", x)
		}
	}
}

func TestWeightsDeterministic(t *testing.T) {
	s := hotColdTrace()[:1500]
	p := Collect(s, cfg(), SourceFLACK)
	w1 := p.Weights(cfg(), 3)
	w2 := p.Weights(cfg(), 3)
	if len(w1) != len(w2) {
		t.Fatal("sizes differ")
	}
	for k, v := range w1 {
		if w2[k] != v {
			t.Fatalf("weight for %#x differs: %d vs %d", k, v, w2[k])
		}
	}
}

func TestThermoClasses(t *testing.T) {
	s := hotColdTrace()
	p := Collect(s, cfg(), SourceFLACK)
	cl := p.ThermoClasses()
	if cl[0x1000] != policy.ThermoHot {
		t.Errorf("hot window classified %v", cl[0x1000])
	}
	counts := map[policy.ThermoClass]int{}
	for _, c := range cl {
		counts[c]++
	}
	if counts[policy.ThermoCold] == 0 {
		t.Error("no cold windows classified")
	}
}

func TestMerge(t *testing.T) {
	a := &Profile{Source: SourceFLACK, Rates: map[uint64]Rate{
		1: {HitUops: 10, TotalUops: 20, Lookups: 5},
		2: {HitUops: 0, TotalUops: 8, Lookups: 2},
	}}
	b := &Profile{Source: SourceFLACK, Rates: map[uint64]Rate{
		1: {HitUops: 10, TotalUops: 20, Lookups: 5},
		3: {HitUops: 4, TotalUops: 4, Lookups: 1},
	}}
	m := Merge(a, nil, b)
	if got := m.Rates[1]; got.HitUops != 20 || got.TotalUops != 40 || got.Lookups != 10 {
		t.Errorf("merged rate = %+v", got)
	}
	if len(m.Rates) != 3 {
		t.Errorf("merged size = %d", len(m.Rates))
	}
	if m.Rates[1].Value() != 0.5 {
		t.Errorf("value = %v", m.Rates[1].Value())
	}
}

func TestRateValueEmpty(t *testing.T) {
	if (Rate{}).Value() != 0 {
		t.Error("empty rate value")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := hotColdTrace()[:1000]
	p := Collect(s, cfg(), SourceBelady)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Source != SourceBelady {
		t.Errorf("source = %v", got.Source)
	}
	if len(got.Rates) != len(p.Rates) {
		t.Fatalf("sizes: %d vs %d", len(got.Rates), len(p.Rates))
	}
	for k, v := range p.Rates {
		if got.Rates[k] != v {
			t.Fatalf("rate %#x differs", k)
		}
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []string{
		"",
		"garbage header\n",
		"uopprofile nosuch\n",
		"uopprofile flack\nnot-a-record\n",
	}
	for _, in := range cases {
		if _, err := Load(strings.NewReader(in)); err == nil {
			t.Errorf("Load(%q) should fail", in)
		}
	}
}
