// Package profiles implements the FURBYS offline pipeline of the paper's
// Fig. 6: record the PW lookup sequence (STEP 2), obtain per-window hit/miss
// behaviour from an offline policy — FLACK by default, Belady or FOO for the
// Fig. 15 sensitivity study — (STEPS 3–5), group windows by hit rate with
// Jenks natural breaks at set granularity (STEP 6), and emit the weight
// hints the modified decoder would read from the binary's reserved branch
// bits (STEP 7). It also supports merging profiles from multiple inputs for
// the cross-validation experiment (Fig. 18).
package profiles

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"

	"uopsim/internal/jenks"
	"uopsim/internal/offline"
	"uopsim/internal/policy"
	"uopsim/internal/telemetry"
	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
)

// Source selects the offline policy whose decisions the profile is built
// from (the paper's Fig. 15 compares all three).
type Source int

const (
	// SourceFLACK uses the paper's near-optimal policy (the default).
	SourceFLACK Source = iota
	// SourceBelady uses Belady's algorithm.
	SourceBelady
	// SourceFOO uses raw flow-based offline optimal.
	SourceFOO
)

// String names the source.
func (s Source) String() string {
	switch s {
	case SourceFLACK:
		return "flack"
	case SourceBelady:
		return "belady"
	case SourceFOO:
		return "foo"
	default:
		return "unknown"
	}
}

// Rate accumulates a window's micro-op-weighted hit statistics.
type Rate struct {
	HitUops   uint64
	TotalUops uint64
	Lookups   uint64
}

// Value returns the hit rate in [0,1].
func (r Rate) Value() float64 {
	if r.TotalUops == 0 {
		return 0
	}
	return float64(r.HitUops) / float64(r.TotalUops)
}

// Profile maps each window start address to its profiled hit rate under the
// chosen offline policy.
type Profile struct {
	Rates  map[uint64]Rate
	Source Source
}

// Collect runs the offline policy over the lookup sequence and accumulates
// per-window hit rates (the paper's STEPS 3–6 input).
func Collect(pws []trace.PW, cfg uopcache.Config, src Source) *Profile {
	return CollectWith(pws, cfg, src, CollectOptions{})
}

// CollectOptions bundles a profiling replay's optional attachments: live
// metrics and event observability, the shared prepared trace (allocation
// savings; ignored on geometry or sequence mismatch), the keep-plan cache
// (skips the flow solve on a hit), and the solver worker bound. The zero
// value disables everything.
type CollectOptions struct {
	Metrics  *telemetry.Registry
	Events   telemetry.EventSink
	Prepared *trace.PreparedTrace
	Plans    offline.PlanCache
	Workers  int
}

// CollectObserved is Collect with observability attached: the profiling
// replay's uopcache_* counters stream into metrics and its decision trace
// into events (either may be nil).
func CollectObserved(pws []trace.PW, cfg uopcache.Config, src Source, metrics *telemetry.Registry, events telemetry.EventSink) *Profile {
	return CollectWith(pws, cfg, src, CollectOptions{Metrics: metrics, Events: events})
}

// CollectWith is Collect with the full attachment set.
func CollectWith(pws []trace.PW, cfg uopcache.Config, src Source, o CollectOptions) *Profile {
	opts := offline.Options{
		RecordPerLookup: true,
		Metrics:         o.Metrics,
		Events:          o.Events,
		Prepared:        o.Prepared,
		Plans:           o.Plans,
		Workers:         o.Workers,
	}
	var res offline.Result
	switch src {
	case SourceBelady:
		res = offline.RunBelady(pws, cfg, opts)
	case SourceFOO:
		opts.Features = offline.Features{}
		res = offline.RunFOO(pws, cfg, opts)
	default:
		res = offline.RunFLACK(pws, cfg, opts)
	}
	p := &Profile{Rates: make(map[uint64]Rate, len(pws)/8+1), Source: src}
	for i, r := range res.PerLookup {
		start := pws[i].Start
		acc := p.Rates[start]
		acc.HitUops += uint64(r.HitUops)
		acc.TotalUops += uint64(r.HitUops + r.MissUops)
		acc.Lookups++
		p.Rates[start] = acc
	}
	return p
}

// Merge combines profiles from multiple inputs into one (cross-validation:
// the training traces' profiles are merged into the deployed hint set).
func Merge(profiles ...*Profile) *Profile {
	out := &Profile{Rates: make(map[uint64]Rate)}
	for _, p := range profiles {
		if p == nil {
			continue
		}
		out.Source = p.Source
		for k, r := range p.Rates {
			acc := out.Rates[k]
			acc.HitUops += r.HitUops
			acc.TotalUops += r.TotalUops
			acc.Lookups += r.Lookups
			out.Rates[k] = acc
		}
	}
	return out
}

// quantize buckets hit rates so the per-set Jenks DP stays small; 1/256
// resolution loses nothing at 3-bit group granularity.
func quantize(v float64) float64 { return math.Round(v*256) / 256 }

// minClassGap is the smallest hit-rate difference two weight classes may be
// apart. Jenks always forms k classes even when a set's rates are nearly
// identical; without a floor, FURBYS's bypass (weight < min-K) fires between
// windows whose profiled behaviour is indistinguishable, which measurably
// hurts loop-heavy applications.
const minClassGap = 0.05

// Weights computes the FURBYS hint map: windows are grouped per cache set
// (replacement decisions are per-set, so weights are computed at set
// granularity — paper Section V) into 2^bits classes by Jenks natural
// breaks over their hit rates; the class index is the weight, 0 = coldest.
// Class boundaries closer than minClassGap are merged.
func (p *Profile) Weights(cfg uopcache.Config, bits int) map[uint64]uint8 {
	if bits <= 0 {
		bits = 3
	}
	k := 1 << bits
	// Deterministic order (map iteration is random): collect and sort the
	// start addresses once, then group per set in sorted order.
	allStarts := make([]uint64, 0, len(p.Rates))
	for start := range p.Rates {
		allStarts = append(allStarts, start)
	}
	sort.Slice(allStarts, func(i, j int) bool { return allStarts[i] < allStarts[j] })
	perSet := make(map[int][]uint64)
	sets := make([]int, 0, 64)
	for _, start := range allStarts {
		set := cfg.SetIndex(start)
		if _, seen := perSet[set]; !seen {
			sets = append(sets, set)
		}
		perSet[set] = append(perSet[set], start)
	}
	sort.Ints(sets)
	weights := make(map[uint64]uint8, len(p.Rates))
	for _, set := range sets {
		starts := perSet[set]
		distinct := make(map[float64]struct{})
		vals := make([]float64, 0, len(starts))
		for _, s := range starts {
			v := quantize(p.Rates[s].Value())
			vals = append(vals, v)
			distinct[v] = struct{}{}
		}
		// Jenks over the distinct quantized values only (identical
		// break structure, much smaller DP).
		uniq := make([]float64, 0, len(distinct))
		for v := range distinct {
			uniq = append(uniq, v)
		}
		sort.Float64s(uniq)
		breaks, err := jenks.Breaks(uniq, k)
		if err != nil {
			// Only possible for empty input; skip the set.
			continue
		}
		breaks = enforceGap(breaks, minClassGap)
		for i, s := range starts {
			weights[s] = uint8(jenks.Classify(vals[i], breaks))
		}
	}
	return weights
}

// enforceGap drops class boundaries closer than gap to their predecessor,
// merging statistically indistinguishable classes.
func enforceGap(breaks []float64, gap float64) []float64 {
	out := breaks[:0]
	last := math.Inf(-1)
	for _, b := range breaks {
		if b-last >= gap {
			out = append(out, b)
			last = b
		}
	}
	return out
}

// ThermoClasses derives Thermometer's hot/warm/cold classification from the
// same profile (three Jenks classes over global hit rates).
func (p *Profile) ThermoClasses() map[uint64]policy.ThermoClass {
	vals := make([]float64, 0, len(p.Rates))
	starts := make([]uint64, 0, len(p.Rates))
	for s := range p.Rates {
		starts = append(starts, s)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	distinct := make(map[float64]struct{})
	for _, s := range starts {
		v := quantize(p.Rates[s].Value())
		vals = append(vals, v)
		distinct[v] = struct{}{}
	}
	uniq := make([]float64, 0, len(distinct))
	for v := range distinct {
		uniq = append(uniq, v)
	}
	sort.Float64s(uniq)
	out := make(map[uint64]policy.ThermoClass, len(starts))
	if len(uniq) == 0 {
		return out
	}
	breaks, err := jenks.Breaks(uniq, 3)
	if err != nil {
		return out
	}
	for i, s := range starts {
		out[s] = policy.ThermoClass(jenks.Classify(vals[i], breaks))
	}
	return out
}

// Save writes the profile in a line-oriented text format:
//
//	uopprofile <source>
//	<start-hex> <hitUops> <totalUops> <lookups>
func (p *Profile) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "uopprofile %s\n", p.Source); err != nil {
		return err
	}
	starts := make([]uint64, 0, len(p.Rates))
	for s := range p.Rates {
		starts = append(starts, s)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	for _, s := range starts {
		r := p.Rates[s]
		if _, err := fmt.Fprintf(bw, "%x %d %d %d\n", s, r.HitUops, r.TotalUops, r.Lookups); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a profile written by Save.
func Load(r io.Reader) (*Profile, error) {
	br := bufio.NewScanner(r)
	br.Buffer(make([]byte, 1<<20), 1<<20)
	if !br.Scan() {
		return nil, fmt.Errorf("profiles: empty input")
	}
	var srcName string
	if _, err := fmt.Sscanf(br.Text(), "uopprofile %s", &srcName); err != nil {
		return nil, fmt.Errorf("profiles: bad header %q", br.Text())
	}
	p := &Profile{Rates: make(map[uint64]Rate)}
	switch srcName {
	case "flack":
		p.Source = SourceFLACK
	case "belady":
		p.Source = SourceBelady
	case "foo":
		p.Source = SourceFOO
	default:
		return nil, fmt.Errorf("profiles: unknown source %q", srcName)
	}
	line := 1
	for br.Scan() {
		line++
		var s, h, tot, lk uint64
		if _, err := fmt.Sscanf(br.Text(), "%x %d %d %d", &s, &h, &tot, &lk); err != nil {
			return nil, fmt.Errorf("profiles: line %d: %w", line, err)
		}
		p.Rates[s] = Rate{HitUops: h, TotalUops: tot, Lookups: lk}
	}
	return p, br.Err()
}
