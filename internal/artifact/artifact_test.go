package artifact

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uopsim/internal/telemetry"
)

func openT(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func put(t *testing.T, s *Store, kind, key string, payload []byte) {
	t.Helper()
	if err := s.Put(kind, key, func(w io.Writer) error {
		_, err := w.Write(payload)
		return err
	}); err != nil {
		t.Fatalf("Put(%s/%s): %v", kind, key, err)
	}
}

func get(t *testing.T, s *Store, kind, key string) ([]byte, bool, error) {
	t.Helper()
	var got []byte
	hit, err := s.Get(kind, key, func(r io.Reader) error {
		b, rerr := io.ReadAll(r)
		got = b
		return rerr
	})
	return got, hit, err
}

func TestOpenEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") should fail")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openT(t)
	payload := []byte("columnar bytes")
	put(t, s, "trace", "abcd", payload)
	got, hit, err := get(t, s, "trace", "abcd")
	if err != nil || !hit {
		t.Fatalf("Get: hit=%v err=%v", hit, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: got %q want %q", got, payload)
	}
	st := s.Stats()["trace"]
	if st.Hits != 1 || st.Misses != 0 || st.Errors != 0 {
		t.Fatalf("stats = %+v, want 1 hit", st)
	}
}

func TestGetMissIsClean(t *testing.T) {
	s := openT(t)
	_, hit, err := get(t, s, "plan", "nope")
	if hit || err != nil {
		t.Fatalf("missing entry: hit=%v err=%v (want clean miss)", hit, err)
	}
	if st := s.Stats()["plan"]; st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 miss", st)
	}
}

func TestEmptyKindOrKey(t *testing.T) {
	s := openT(t)
	if _, _, err := get(t, s, "", "k"); err == nil {
		t.Error("Get with empty kind should fail")
	}
	if err := s.Put("trace", "", func(io.Writer) error { return nil }); err == nil {
		t.Error("Put with empty key should fail")
	}
}

// TestCorruptEntryRejectedAndHealed flips one payload bit on disk: the next
// Get must report a descriptive error (never call read) and remove the
// entry, so the Get after that is a clean miss and the artifact is rebuilt.
func TestCorruptEntryRejectedAndHealed(t *testing.T) {
	s := openT(t)
	put(t, s, "trace", "deadbeef", []byte("payload payload payload"))
	p := filepath.Join(s.Dir(), "trace", "de", "deadbeef.bin")
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0x01
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	readCalled := false
	_, err = s.Get("trace", "deadbeef", func(io.Reader) error {
		readCalled = true
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "integrity") {
		t.Fatalf("corrupt entry: err=%v, want integrity failure", err)
	}
	if readCalled {
		t.Fatal("read callback saw bytes from a corrupt entry")
	}
	if _, statErr := os.Stat(p); !os.IsNotExist(statErr) {
		t.Fatalf("corrupt entry not removed: %v", statErr)
	}
	if _, hit, err := get(t, s, "trace", "deadbeef"); hit || err != nil {
		t.Fatalf("after self-heal: hit=%v err=%v (want clean miss)", hit, err)
	}
}

// TestTruncatedEntryRejected covers a file shorter than the integrity
// trailer (a torn write from a non-atomic copy).
func TestTruncatedEntryRejected(t *testing.T) {
	s := openT(t)
	p := filepath.Join(s.Dir(), "plan", "ab", "abcd.bin")
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, []byte("short"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := get(t, s, "plan", "abcd")
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncated entry: err=%v, want truncation error", err)
	}
	if st := s.Stats()["plan"]; st.Errors != 1 {
		t.Fatalf("stats = %+v, want 1 error", st)
	}
}

// TestDecodeErrorCountsAsError: a verified payload whose decoder rejects it
// (e.g. a version bump inside the codec) is an error, not a hit.
func TestDecodeErrorCountsAsError(t *testing.T) {
	s := openT(t)
	put(t, s, "plan", "ffff", []byte("valid bytes, wrong codec"))
	_, err := s.Get("plan", "ffff", func(io.Reader) error {
		return io.ErrUnexpectedEOF
	})
	if err == nil {
		t.Fatal("decode failure should surface as an error")
	}
	if st := s.Stats()["plan"]; st.Hits != 0 || st.Errors != 1 {
		t.Fatalf("stats = %+v, want 0 hits 1 error", st)
	}
}

func TestAttachMetricsMirrorsCounters(t *testing.T) {
	s := openT(t)
	reg := telemetry.NewRegistry()
	s.AttachMetrics(reg)
	put(t, s, "trace", "aa", []byte("x"))
	put(t, s, "plan", "bb", []byte("y"))
	get(t, s, "trace", "aa")
	get(t, s, "trace", "zz")
	get(t, s, "plan", "bb")
	get(t, s, "plan", "bb")
	checks := map[string]uint64{
		"trace_cache_hit_total":  1,
		"trace_cache_miss_total": 1,
		"plan_cache_hit_total":   2,
		"plan_cache_miss_total":  0,
	}
	for name, want := range checks {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

func TestKindsSorted(t *testing.T) {
	s := openT(t)
	get(t, s, "trace", "x")
	get(t, s, "plan", "x")
	got := s.Kinds()
	if len(got) != 2 || got[0] != "plan" || got[1] != "trace" {
		t.Fatalf("Kinds() = %v, want [plan trace]", got)
	}
}

// TestOverwriteSameKey: writing the same key twice leaves one valid entry
// (content-addressed keys make both writes identical in practice; the store
// must stay readable either way).
func TestOverwriteSameKey(t *testing.T) {
	s := openT(t)
	put(t, s, "trace", "k", []byte("same"))
	put(t, s, "trace", "k", []byte("same"))
	got, hit, err := get(t, s, "trace", "k")
	if !hit || err != nil || string(got) != "same" {
		t.Fatalf("after overwrite: hit=%v err=%v got=%q", hit, err, got)
	}
}
