// Package artifact implements a content-addressed on-disk cache for
// expensive derived artifacts: generated block traces and solved FLACK
// keep-plans. Entries are addressed by a caller-computed content key (a hex
// SHA-256 over every input that determines the artifact, plus a format
// version), so a warm cache can only ever return bytes that would have been
// recomputed identically — invalidation is by key change, never by mtime.
//
// The store is deliberately ignorant of what it holds: payloads are opaque
// byte streams namespaced by a short kind string ("trace", "plan"). Each
// entry is written atomically (temp + fsync + rename via
// telemetry.AtomicWriteFile) with a SHA-256 integrity trailer, and every
// read verifies the trailer before a single payload byte reaches the
// caller, so a torn or bit-rotted file surfaces as a descriptive error —
// and is removed so the next run recomputes — never as silently wrong
// simulation results.
package artifact

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"uopsim/internal/telemetry"
)

// hashLen is the length of the SHA-256 integrity trailer.
const hashLen = sha256.Size

// KindStats counts one kind's cache traffic for manifests and logs.
type KindStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Errors uint64 `json:"errors"`
}

// Store is a content-addressed artifact cache rooted at one directory.
// Entries live at <dir>/<kind>/<key[:2]>/<key>.bin. All methods are safe
// for concurrent use; concurrent writers of the same key settle on one
// complete entry (last atomic rename wins, both renames carry identical
// content by construction).
type Store struct {
	dir string

	mu      sync.Mutex
	kinds   map[string]*KindStats
	metrics *telemetry.Registry
}

// Open returns a store rooted at dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("artifact: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: open cache: %w", err)
	}
	return &Store{dir: dir, kinds: make(map[string]*KindStats)}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// AttachMetrics mirrors the store's per-kind hit/miss/error counts into the
// registry as <kind>_cache_{hit,miss,error}_total counters.
func (s *Store) AttachMetrics(m *telemetry.Registry) {
	s.mu.Lock()
	s.metrics = m
	s.mu.Unlock()
}

// Stats snapshots the per-kind traffic counts accumulated so far.
func (s *Store) Stats() map[string]KindStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]KindStats, len(s.kinds))
	for k, v := range s.kinds {
		out[k] = *v
	}
	return out
}

// Kinds returns the kinds seen so far, sorted, for deterministic reporting.
func (s *Store) Kinds() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.kinds))
	for k := range s.kinds {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// count records one event ("hit", "miss", "error") for a kind, mirroring it
// into the attached metrics registry when present. Registry metric names
// must be compile-time constants (the telemetry lint contract), so only the
// known kinds are mirrored; unknown kinds still land in Stats().
func (s *Store) count(kind, event string) {
	s.mu.Lock()
	ks, ok := s.kinds[kind]
	if !ok {
		ks = &KindStats{}
		s.kinds[kind] = ks
	}
	switch event {
	case "hit":
		ks.Hits++
	case "miss":
		ks.Misses++
	default:
		ks.Errors++
	}
	m := s.metrics
	s.mu.Unlock()
	if m == nil {
		return
	}
	switch {
	case kind == "trace" && event == "hit":
		m.Counter("trace_cache_hit_total").Inc()
	case kind == "trace" && event == "miss":
		m.Counter("trace_cache_miss_total").Inc()
	case kind == "trace":
		m.Counter("trace_cache_error_total").Inc()
	case kind == "plan" && event == "hit":
		m.Counter("plan_cache_hit_total").Inc()
	case kind == "plan" && event == "miss":
		m.Counter("plan_cache_miss_total").Inc()
	case kind == "plan":
		m.Counter("plan_cache_error_total").Inc()
	}
}

// path maps (kind, key) to the entry's location, fanning entries out over
// 256 subdirectories so huge caches do not produce huge directories.
func (s *Store) path(kind, key string) (string, error) {
	if kind == "" || key == "" {
		return "", fmt.Errorf("artifact: empty kind or key")
	}
	prefix := key
	if len(prefix) > 2 {
		prefix = prefix[:2]
	}
	return filepath.Join(s.dir, kind, prefix, key+".bin"), nil
}

// Get streams a cached artifact's payload into read. It returns (true, nil)
// on a verified hit, (false, nil) on a clean miss, and (false, err) when an
// entry exists but is corrupt, truncated, or unreadable — the broken entry
// is removed so the next run recomputes it. The payload's integrity trailer
// is verified in full BEFORE read sees any bytes.
func (s *Store) Get(kind, key string, read func(r io.Reader) error) (bool, error) {
	p, err := s.path(kind, key)
	if err != nil {
		s.count(kind, "error")
		return false, err
	}
	data, err := os.ReadFile(p)
	if err != nil {
		if os.IsNotExist(err) {
			s.count(kind, "miss")
			return false, nil
		}
		s.count(kind, "error")
		return false, fmt.Errorf("artifact: read %s/%s: %w", kind, key, err)
	}
	if len(data) < hashLen {
		s.discard(p)
		s.count(kind, "error")
		return false, fmt.Errorf("artifact: entry %s/%s truncated (%d bytes, want >= %d)", kind, key, len(data), hashLen)
	}
	payload, trailer := data[:len(data)-hashLen], data[len(data)-hashLen:]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], trailer) {
		s.discard(p)
		s.count(kind, "error")
		return false, fmt.Errorf("artifact: entry %s/%s failed integrity check", kind, key)
	}
	if err := read(bytes.NewReader(payload)); err != nil {
		s.count(kind, "error")
		return false, fmt.Errorf("artifact: decode %s/%s: %w", kind, key, err)
	}
	s.count(kind, "hit")
	return true, nil
}

// discard removes a broken entry; removal failure is irrelevant (the entry
// fails verification again next run and is recomputed regardless).
func (s *Store) discard(path string) {
	os.Remove(path)
}

// Put writes an artifact atomically: write streams the payload, the store
// appends the SHA-256 trailer, and the entry only becomes visible under its
// final name once fully durable.
func (s *Store) Put(kind, key string, write func(w io.Writer) error) error {
	p, err := s.path(kind, key)
	if err != nil {
		s.count(kind, "error")
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		s.count(kind, "error")
		return fmt.Errorf("artifact: write %s/%s: %w", kind, key, err)
	}
	err = telemetry.AtomicWriteFile(p, 0o644, func(w io.Writer) error {
		h := sha256.New()
		if err := write(io.MultiWriter(w, h)); err != nil {
			return err
		}
		_, err := w.Write(h.Sum(nil))
		return err
	})
	if err != nil {
		s.count(kind, "error")
		return fmt.Errorf("artifact: write %s/%s: %w", kind, key, err)
	}
	return nil
}
