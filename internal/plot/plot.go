// Package plot renders experiment tables as standalone SVG charts, so the
// harness regenerates the paper's *figures*, not only their data. It
// implements grouped bar charts (the paper's dominant figure form: per-app
// bars, one series per policy) and line charts (the sensitivity sweeps),
// with no dependencies beyond the standard library.
package plot

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Series is one named data series.
type Series struct {
	Name   string
	Values []float64
}

// palette is a color-blind-friendly categorical palette.
var palette = []string{
	"#4477AA", "#EE6677", "#228833", "#CCBB44", "#66CCEE", "#AA3377",
	"#BBBBBB", "#000000",
}

const (
	chartW   = 900
	chartH   = 420
	marginL  = 70
	marginR  = 20
	marginT  = 48
	marginB  = 96
	legendDY = 16
)

// esc escapes text for SVG.
func esc(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	s = strings.ReplaceAll(s, ">", "&gt;")
	return s
}

// niceTicks returns ~5 rounded axis ticks covering [lo, hi].
func niceTicks(lo, hi float64) []float64 {
	if hi <= lo {
		hi = lo + 1
	}
	span := hi - lo
	step := math.Pow(10, math.Floor(math.Log10(span/5)))
	for span/step > 8 {
		step *= 2
	}
	for span/step < 3 {
		step /= 2
	}
	first := math.Floor(lo/step) * step
	var ticks []float64
	for v := first; v <= hi+step/2; v += step {
		ticks = append(ticks, v)
	}
	return ticks
}

// header emits the SVG preamble, title, axes frame and y grid; it returns
// the plot-area geometry and a scale function.
func header(sb *strings.Builder, title, yLabel string, lo, hi float64) (plotW, plotH int, yOf func(float64) float64) {
	plotW = chartW - marginL - marginR
	plotH = chartH - marginT - marginB
	fmt.Fprintf(sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n", chartW, chartH)
	fmt.Fprintf(sb, `<rect width="%d" height="%d" fill="white"/>`+"\n", chartW, chartH)
	fmt.Fprintf(sb, `<text x="%d" y="24" font-size="15" font-weight="bold">%s</text>`+"\n", marginL, esc(title))
	yOf = func(v float64) float64 {
		return float64(marginT) + float64(plotH)*(1-(v-lo)/(hi-lo))
	}
	for _, tick := range niceTicks(lo, hi) {
		y := yOf(tick)
		if y < float64(marginT)-1 || y > float64(marginT+plotH)+1 {
			continue
		}
		fmt.Fprintf(sb, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n", marginL, y, marginL+plotW, y)
		fmt.Fprintf(sb, `<text x="%d" y="%.1f" font-size="11" text-anchor="end">%s</text>`+"\n", marginL-6, y+4, esc(trimFloat(tick)))
	}
	fmt.Fprintf(sb, `<text x="14" y="%d" font-size="12" transform="rotate(-90 14 %d)" text-anchor="middle">%s</text>`+"\n",
		marginT+plotH/2, marginT+plotH/2, esc(yLabel))
	fmt.Fprintf(sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n", marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	return plotW, plotH, yOf
}

func trimFloat(v float64) string {
	s := strconv.FormatFloat(v, 'f', 2, 64)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// legend emits the series legend across the bottom.
func legend(sb *strings.Builder, series []Series) {
	x := marginL
	y := chartH - 12
	for i, s := range series {
		color := palette[i%len(palette)]
		fmt.Fprintf(sb, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n", x, y-9, color)
		fmt.Fprintf(sb, `<text x="%d" y="%d" font-size="11">%s</text>`+"\n", x+14, y, esc(s.Name))
		x += 14 + 8*len(s.Name) + 24
		if x > chartW-120 && i < len(series)-1 {
			x = marginL
			y += legendDY
		}
	}
}

// bounds finds the data range across series, anchored at zero.
func bounds(series []Series) (lo, hi float64) {
	lo, hi = 0, 0
	for _, s := range series {
		for _, v := range s.Values {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if lo == hi {
		hi = lo + 1
	}
	// Headroom.
	span := hi - lo
	hi += 0.05 * span
	if lo < 0 {
		lo -= 0.05 * span
	}
	return lo, hi
}

// BarSVG renders a grouped bar chart: one group per label, one bar per
// series within a group. Returns the SVG document.
func BarSVG(title, yLabel string, groups []string, series []Series) string {
	var sb strings.Builder
	lo, hi := bounds(series)
	plotW, plotH, yOf := header(&sb, title, yLabel, lo, hi)
	_ = plotH
	n := len(groups)
	if n == 0 || len(series) == 0 {
		sb.WriteString("</svg>\n")
		return sb.String()
	}
	groupW := float64(plotW) / float64(n)
	barW := groupW * 0.8 / float64(len(series))
	zeroY := yOf(0)
	for gi, g := range groups {
		gx := float64(marginL) + groupW*float64(gi) + groupW*0.1
		for si, s := range series {
			if gi >= len(s.Values) {
				continue
			}
			v := s.Values[gi]
			y := yOf(v)
			top, h := y, zeroY-y
			if v < 0 {
				top, h = zeroY, y-zeroY
			}
			fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s / %s: %s</title></rect>`+"\n",
				gx+barW*float64(si), top, barW*0.92, h, palette[si%len(palette)],
				esc(g), esc(s.Name), trimFloat(v))
		}
		fmt.Fprintf(&sb, `<text x="%.1f" y="%d" font-size="11" text-anchor="end" transform="rotate(-35 %.1f %d)">%s</text>`+"\n",
			gx+groupW*0.4, marginT+plotH+14, gx+groupW*0.4, marginT+plotH+14, esc(g))
	}
	legend(&sb, series)
	sb.WriteString("</svg>\n")
	return sb.String()
}

// LineSVG renders a multi-series line chart over shared x labels.
func LineSVG(title, yLabel string, xLabels []string, series []Series) string {
	var sb strings.Builder
	lo, hi := bounds(series)
	plotW, plotH, yOf := header(&sb, title, yLabel, lo, hi)
	n := len(xLabels)
	if n == 0 || len(series) == 0 {
		sb.WriteString("</svg>\n")
		return sb.String()
	}
	xOf := func(i int) float64 {
		if n == 1 {
			return float64(marginL + plotW/2)
		}
		return float64(marginL) + float64(plotW)*float64(i)/float64(n-1)
	}
	for i, xl := range xLabels {
		fmt.Fprintf(&sb, `<text x="%.1f" y="%d" font-size="11" text-anchor="middle">%s</text>`+"\n",
			xOf(i), marginT+plotH+16, esc(xl))
	}
	for si, s := range series {
		color := palette[si%len(palette)]
		var pts []string
		for i, v := range s.Values {
			if i >= n {
				break
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", xOf(i), yOf(v)))
		}
		fmt.Fprintf(&sb, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.Join(pts, " "), color)
		for i, v := range s.Values {
			if i >= n {
				break
			}
			fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"><title>%s @ %s: %s</title></circle>`+"\n",
				xOf(i), yOf(v), color, esc(s.Name), esc(xLabels[i]), trimFloat(v))
		}
	}
	legend(&sb, series)
	sb.WriteString("</svg>\n")
	return sb.String()
}
