package plot

import (
	"encoding/xml"
	"strings"
	"testing"
)

func validXML(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("invalid XML: %v\n%s", err, svg)
		}
	}
}

func TestBarSVGWellFormed(t *testing.T) {
	svg := BarSVG("Miss reduction", "percent", []string{"kafka", "postgres"},
		[]Series{
			{Name: "furbys", Values: []float64{14.3, 1.9}},
			{Name: "flack", Values: []float64{30.2, 33.5}},
		})
	validXML(t, svg)
	for _, want := range []string{"<svg", "Miss reduction", "kafka", "furbys", "<rect"} {
		if !strings.Contains(svg, want) {
			t.Errorf("missing %q in SVG", want)
		}
	}
}

func TestBarSVGNegativeValues(t *testing.T) {
	svg := BarSVG("t", "y", []string{"a"}, []Series{{Name: "s", Values: []float64{-5}}})
	validXML(t, svg)
	if !strings.Contains(svg, "<rect") {
		t.Error("negative bar not drawn")
	}
}

func TestBarSVGEmpty(t *testing.T) {
	validXML(t, BarSVG("t", "y", nil, nil))
	validXML(t, BarSVG("t", "y", []string{"a"}, nil))
}

func TestLineSVGWellFormed(t *testing.T) {
	svg := LineSVG("Sweep", "percent", []string{"1", "2", "3"},
		[]Series{{Name: "furbys", Values: []float64{5, 12, 14}}})
	validXML(t, svg)
	if !strings.Contains(svg, "<polyline") || !strings.Contains(svg, "<circle") {
		t.Error("line chart missing marks")
	}
}

func TestLineSVGSinglePoint(t *testing.T) {
	validXML(t, LineSVG("t", "y", []string{"x"}, []Series{{Name: "s", Values: []float64{1}}}))
}

func TestEscaping(t *testing.T) {
	svg := BarSVG("a<b & c>d", "y", []string{"g&g"}, []Series{{Name: "s<s", Values: []float64{1}}})
	validXML(t, svg)
	if strings.Contains(svg, "a<b") {
		t.Error("title not escaped")
	}
}

func TestNiceTicks(t *testing.T) {
	ticks := niceTicks(0, 10)
	if len(ticks) < 3 || len(ticks) > 12 {
		t.Errorf("ticks = %v", ticks)
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Errorf("non-increasing ticks: %v", ticks)
		}
	}
	if got := niceTicks(5, 5); len(got) < 2 {
		t.Errorf("degenerate range ticks = %v", got)
	}
}

func TestParseCell(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"12.34%", 12.34, true},
		{"-3.5%", -3.5, true},
		{"7", 7, true},
		{" 0.5 ", 0.5, true},
		{"-", 0, false},
		{"n/a", 0, false},
		{"", 0, false},
		{"kafka", 0, false},
	}
	for _, tc := range cases {
		got, ok := parseCell(tc.in)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("parseCell(%q) = %v, %v", tc.in, got, ok)
		}
	}
}

func TestFromTable(t *testing.T) {
	td := TableData{
		Name:    "fig8",
		Title:   "T",
		Columns: []string{"application", "furbys", "note"},
		Rows: [][]string{
			{"kafka", "25.66%", "hello"},
			{"postgres", "1.87%", "world"},
			{"MEAN", "13.77%", ""},
		},
	}
	groups, series, ok := FromTable(td)
	if !ok {
		t.Fatal("not plottable")
	}
	if len(groups) != 2 || groups[0] != "kafka" {
		t.Errorf("groups = %v (MEAN must be dropped)", groups)
	}
	if len(series) != 1 || series[0].Name != "furbys" {
		t.Fatalf("series = %+v (text column must be dropped)", series)
	}
	if series[0].Values[1] != 1.87 {
		t.Errorf("values = %v", series[0].Values)
	}
}

func TestFromTableNotPlottable(t *testing.T) {
	td := TableData{Columns: []string{"parameter", "value"},
		Rows: [][]string{{"CPU", "3.2GHz"}, {"Decoder", "4-wide"}}}
	if _, _, ok := FromTable(td); ok {
		t.Error("text-only table should not be plottable")
	}
	if _, _, ok := FromTable(TableData{Columns: []string{"only"}}); ok {
		t.Error("single-column table should not be plottable")
	}
	if _, _, ok := FromTable(TableData{Columns: []string{"a", "b"}, Rows: [][]string{{"MEAN", "1"}}}); ok {
		t.Error("summary-only table should not be plottable")
	}
}

func TestRenderTableFormSelection(t *testing.T) {
	rows := [][]string{{"1", "5.0%"}, {"2", "8.0%"}}
	bar, ok := RenderTable(TableData{Name: "fig8", Title: "t", Columns: []string{"app", "x"}, Rows: rows})
	if !ok || !strings.Contains(bar, "<rect") || strings.Contains(bar, "<polyline") {
		t.Error("fig8 should render as bars")
	}
	line, ok := RenderTable(TableData{Name: "fig19", Title: "t", Columns: []string{"bits", "x"}, Rows: rows})
	if !ok || !strings.Contains(line, "<polyline") {
		t.Error("fig19 should render as a line chart")
	}
	if _, ok := RenderTable(TableData{Name: "tab1", Columns: []string{"parameter", "value"},
		Rows: [][]string{{"CPU", "fast"}}}); ok {
		t.Error("tab1 should not be plottable")
	}
}
