package plot

import (
	"strconv"
	"strings"
)

// TableData is the subset of an experiment table the plotter needs; it
// mirrors experiments.Table without importing it (keeping plot dependency-
// free and reusable).
type TableData struct {
	Name    string
	Title   string
	Columns []string
	Rows    [][]string
}

// parseCell parses a numeric cell, accepting a trailing '%'.
func parseCell(s string) (float64, bool) {
	s = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(s), "%"))
	if s == "" || s == "-" || s == "n/a" {
		return 0, false
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// FromTable converts a table into chart inputs: the first column provides
// group labels, every column whose cells parse numerically becomes a
// series. Rows whose label is "MEAN" (summary rows) are dropped; rows with
// no numeric cells are dropped. ok is false when nothing plottable remains.
func FromTable(t TableData) (groups []string, series []Series, ok bool) {
	if len(t.Columns) < 2 {
		return nil, nil, false
	}
	// Decide per column whether it is numeric (majority of non-summary
	// rows parse).
	type colStat struct{ numeric, total int }
	stats := make([]colStat, len(t.Columns))
	var dataRows [][]string
	for _, r := range t.Rows {
		if len(r) == 0 || strings.EqualFold(r[0], "MEAN") {
			continue
		}
		dataRows = append(dataRows, r)
		for ci := 1; ci < len(t.Columns) && ci < len(r); ci++ {
			stats[ci].total++
			if _, ok := parseCell(r[ci]); ok {
				stats[ci].numeric++
			}
		}
	}
	if len(dataRows) == 0 {
		return nil, nil, false
	}
	var numericCols []int
	for ci := 1; ci < len(t.Columns); ci++ {
		if stats[ci].total > 0 && stats[ci].numeric*2 > stats[ci].total {
			numericCols = append(numericCols, ci)
		}
	}
	if len(numericCols) == 0 {
		return nil, nil, false
	}
	for _, r := range dataRows {
		groups = append(groups, r[0])
	}
	for _, ci := range numericCols {
		s := Series{Name: t.Columns[ci], Values: make([]float64, len(dataRows))}
		for ri, r := range dataRows {
			if ci < len(r) {
				if v, ok := parseCell(r[ci]); ok {
					s.Values[ri] = v
				}
			}
		}
		series = append(series, s)
	}
	return groups, series, true
}

// sweepIDs lists experiments whose first column is a swept parameter; they
// render as line charts rather than grouped bars.
var sweepIDs = map[string]bool{
	"fig12": true, "fig16": true, "fig19": true, "fig20": true,
	"sens-delay": true, "sens-segment": true,
}

// RenderTable picks the chart form for a table (line chart for parameter
// sweeps, grouped bars otherwise) and returns the SVG, or ok=false when the
// table has no plottable series.
func RenderTable(t TableData) (svg string, ok bool) {
	groups, series, ok := FromTable(t)
	if !ok {
		return "", false
	}
	yLabel := "percent"
	if sweepIDs[t.Name] {
		return LineSVG(t.Title, yLabel, groups, series), true
	}
	return BarSVG(t.Title, yLabel, groups, series), true
}
