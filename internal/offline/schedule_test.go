package offline

import (
	"math/rand"
	"testing"

	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
)

func TestBeladyScheduleMatchesVictimChoice(t *testing.T) {
	// Same setup as TestBeladyKeepsSoonReused but through the
	// timing-compatible SchedulePolicy.
	a, b, c := uint64(0x1000), uint64(0x2000), uint64(0x3000)
	s := seq([2]uint64{a, 4}, [2]uint64{b, 4}, [2]uint64{c, 4}, [2]uint64{a, 4}, [2]uint64{a, 4})
	sp := NewBeladySchedule(s)
	if sp.Name() != "belady" {
		t.Error("name")
	}
	cache := uopcache.New(tinyCfg(), sp)
	pos := 0
	sp.BindPos(func() int { return pos })
	hits := 0
	for i, pw := range s {
		pos = i
		r := cache.Lookup(pw)
		if r.Kind == uopcache.ProbeFull {
			hits++
		} else {
			cache.Insert(pw)
		}
	}
	if hits != 2 {
		t.Errorf("hits = %d, want 2 (B must be the victim)", hits)
	}
}

func TestFLACKScheduleBypassesUnkept(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	var s []trace.PW
	for i := 0; i < 3000; i++ {
		s = append(s, pw(uint64(0x1000+rng.Intn(60)*16), 1+rng.Intn(16)))
	}
	cfg := uopcache.Config{Entries: 8, Ways: 8, UopsPerEntry: 8, InsertDelay: 0}
	sp := NewFLACKSchedule(nil, s, cfg, FLACKFeatures(), 1)
	if sp.Name() != "flack" {
		t.Errorf("name = %s", sp.Name())
	}
	cache := uopcache.New(cfg, sp)
	pos := 0
	sp.BindPos(func() int { return pos })
	for i, p := range s {
		pos = i
		r := cache.Lookup(p)
		if r.MissUops > 0 {
			cache.Insert(p)
		}
	}
	st := cache.Stats
	if st.Bypasses == 0 {
		t.Error("FLACK schedule never bypassed under pressure")
	}
	// Compare against LRU on the same trace: the plan should win.
	lruC := uopcache.New(cfg, newLRUForTest())
	for _, p := range s {
		r := lruC.Lookup(p)
		if r.MissUops > 0 {
			lruC.Insert(p)
		}
	}
	if st.UopsMissed >= lruC.Stats.UopsMissed {
		t.Errorf("FLACK schedule missed %d uops, LRU %d", st.UopsMissed, lruC.Stats.UopsMissed)
	}
}

// newLRUForTest is a minimal LRU policy local to this package's tests
// (internal/policy depends on uopcache, so importing it here is fine for
// the external behaviour but would be a cycle from this internal test
// package — keep a tiny local one instead).
type testLRU struct {
	clock uint64
	stamp map[[2]uint64]uint64
}

func newLRUForTest() *testLRU { return &testLRU{stamp: make(map[[2]uint64]uint64)} }

func (p *testLRU) Name() string              { return "test-lru" }
func (p *testLRU) Bind(uopcache.Geometry)    {}
func (p *testLRU) OnHit(set int, _ int32, pc uint64) {
	p.clock++
	p.stamp[[2]uint64{uint64(set), pc}] = p.clock
}
func (p *testLRU) OnInsert(set int, _ int32, pw trace.PW) {
	p.clock++
	p.stamp[[2]uint64{uint64(set), pw.Start}] = p.clock
}
func (p *testLRU) OnEvict(set int, _ int32, pc uint64) {
	delete(p.stamp, [2]uint64{uint64(set), pc})
}
func (p *testLRU) Victim(set int, residents []uopcache.Resident, _ trace.PW) uopcache.Decision {
	best := residents[0].Key
	bestS := p.stamp[[2]uint64{uint64(set), best}]
	for _, r := range residents[1:] {
		s := p.stamp[[2]uint64{uint64(set), r.Key}]
		if s < bestS || (s == bestS && r.Key < best) {
			best, bestS = r.Key, s
		}
	}
	return uopcache.Decision{VictimKey: best}
}

func TestKeptNowLastDecisionWins(t *testing.T) {
	// Window at positions 0 and 2; Keep[0]=true, Keep[2]=false.
	s := seq([2]uint64{0x1000, 4}, [2]uint64{0x2000, 4}, [2]uint64{0x1000, 4})
	sp := NewFLACKSchedule(nil, s, tinyCfg(), FLACKFeatures(), 1)
	sp.keep = []bool{true, false, false}
	if !sp.keptNow(0x1000, 0) {
		t.Error("pos 0 should be kept")
	}
	if !sp.keptNow(0x1000, 1) {
		t.Error("pos 1 inherits the pos-0 decision")
	}
	if sp.keptNow(0x1000, 2) {
		t.Error("pos 2 decision is unkept")
	}
	if sp.keptNow(0x9999, 0) {
		t.Error("never-seen windows default to unkept")
	}
}
