// Package offline implements the paper's offline replacement policies for
// the micro-op cache: Belady's algorithm (adapted to whole-PW eviction with
// insertion-time decisions), FOO (flow-based offline optimal, Berger et
// al.), and FLACK — the paper's contribution — which extends FOO with
// asynchrony handling (A), variable miss costs (VC), and selective bypass
// for partially-hitting overlapping windows (SB). The three features are
// individually toggleable to regenerate the paper's Fig. 10 ablation.
package offline

import (
	"math"

	"uopsim/internal/trace"
)

// NoNextUse is returned by the oracle when a window is never looked up
// again.
const NoNextUse = math.MaxInt64

// Oracle answers "when is this window next looked up?" for a fixed PW
// lookup sequence. Positions are 0-based indices into the sequence. The
// oracle tracks a current position that callers advance monotonically.
//
// Two backings exist: the map backing (NewOracle) builds a private
// occurrence index per replay, while the prepared backing
// (NewOraclePrepared) shares the trace's immutable occurrence columns
// across replays and keeps only a flat per-key cursor array private — the
// allocation the columnar pipeline exists to eliminate. Semantics are
// identical.
type Oracle struct {
	occ map[uint64][]int32
	ptr map[uint64]int
	pos int

	pt   *trace.PreparedTrace
	ptrA []int32
}

// NewOracle indexes the lookup sequence by window start address.
func NewOracle(pws []trace.PW) *Oracle {
	occ := make(map[uint64][]int32, len(pws)/4+1)
	for i, p := range pws {
		occ[p.Start] = append(occ[p.Start], int32(i))
	}
	return &Oracle{occ: occ, ptr: make(map[uint64]int, len(occ)), pos: -1}
}

// NewOraclePrepared builds an oracle over a prepared trace's shared
// occurrence index. Only the per-key cursors are allocated per oracle.
func NewOraclePrepared(pt *trace.PreparedTrace) *Oracle {
	return &Oracle{pt: pt, ptrA: make([]int32, pt.NumKeys()), pos: -1}
}

// Advance sets the current position; it must not decrease.
func (o *Oracle) Advance(pos int) { o.pos = pos }

// Pos returns the current position.
func (o *Oracle) Pos() int { return o.pos }

// NextUse returns the first lookup position AT OR AFTER the current
// position at which the window with this start address is requested, or
// NoNextUse. The inclusive convention matters: replacement decisions run
// when a delayed insertion drains, which is before the current position's
// lookup is served, so a window about to be used "now" must not look dead.
//
//simlint:hotpath
func (o *Oracle) NextUse(start uint64) int {
	if o.pt != nil {
		id, ok := o.pt.IDOf(start)
		if !ok {
			return NoNextUse
		}
		occ := o.pt.Occurrences(id)
		i := o.ptrA[id]
		for int(i) < len(occ) && int(occ[i]) < o.pos {
			i++
		}
		o.ptrA[id] = i
		if int(i) == len(occ) {
			return NoNextUse
		}
		return int(occ[i])
	}
	occ := o.occ[start]
	i := o.ptr[start]
	for i < len(occ) && int(occ[i]) < o.pos {
		i++
	}
	o.ptr[start] = i
	if i == len(occ) {
		return NoNextUse
	}
	return int(occ[i])
}

// Lookups returns the number of occurrences of a window in the sequence.
func (o *Oracle) Lookups(start uint64) int {
	if o.pt != nil {
		id, ok := o.pt.IDOf(start)
		if !ok {
			return 0
		}
		return len(o.pt.Occurrences(id))
	}
	return len(o.occ[start])
}
