package offline

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"

	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
)

// planMagic identifies a serialized keep-plan ("uPpL").
const planMagic = 0x75507046

// planVersion is the keep-plan format version. Bump it whenever the
// encoding OR the semantics of a plan change (solver tie-breaking, cost
// scaling, segment handling): cached plans from older versions then miss
// and are recomputed instead of silently replaying stale decisions.
const planVersion = 1

// EncodePlan serializes a keep-plan in a compact little-endian binary
// format understood by DecodePlan: a 16-byte header (magic, version,
// model, fold flag, interval count) followed by the keep decisions packed
// eight to a byte, LSB first.
func EncodePlan(w io.Writer, d *Decisions) error {
	bw := bufio.NewWriter(w)
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:4], planMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], planVersion)
	hdr[6] = byte(d.Model)
	if d.FoldVariants {
		hdr[7] = 1
	}
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(d.Keep)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	packed := make([]byte, (len(d.Keep)+7)/8)
	for i, k := range d.Keep {
		if k {
			packed[i>>3] |= 1 << (uint(i) & 7)
		}
	}
	if _, err := bw.Write(packed); err != nil {
		return err
	}
	return bw.Flush()
}

// DecodePlan deserializes a keep-plan written by EncodePlan. Corrupted,
// truncated or wrong-version inputs are rejected with a descriptive error
// (never a panic); callers fall back to recomputing the plan.
func DecodePlan(r io.Reader) (*Decisions, error) {
	br := bufio.NewReader(r)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("offline: plan header truncated: %w", err)
	}
	if got := binary.LittleEndian.Uint32(hdr[0:4]); got != planMagic {
		return nil, fmt.Errorf("offline: bad plan magic %#x (want %#x)", got, planMagic)
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != planVersion {
		return nil, fmt.Errorf("offline: plan version %d not supported (want %d)", v, planVersion)
	}
	model := CostModel(hdr[6])
	if model < CostOHR || model > CostVC {
		return nil, fmt.Errorf("offline: unknown plan cost model %d", hdr[6])
	}
	n := binary.LittleEndian.Uint64(hdr[8:16])
	const maxIntervals = 1 << 32
	if n > maxIntervals {
		return nil, fmt.Errorf("offline: implausible plan interval count %d", n)
	}
	packed := make([]byte, (n+7)/8)
	if _, err := io.ReadFull(br, packed); err != nil {
		return nil, fmt.Errorf("offline: plan body truncated: %w", err)
	}
	d := &Decisions{Keep: make([]bool, n), Model: model, FoldVariants: hdr[7] != 0}
	for i := range d.Keep {
		d.Keep[i] = packed[i>>3]&(1<<(uint(i)&7)) != 0
	}
	return d, nil
}

// PlanCache stores solved keep-plans keyed by PlanKey. Load returns the
// cached plan or ok=false; Store persists one (best-effort — a failed
// store must not fail the solve). The artifact-backed implementation lives
// in internal/artifact; a nil PlanCache disables caching.
type PlanCache interface {
	Load(key string) (*Decisions, bool)
	Store(key string, d *Decisions)
}

// PlanKey content-addresses a solve: SHA-256 over the format version, the
// geometry the plan was solved for, the objective, the fold flag, the
// resolved segment limit, and a digest of the lookup sequence (start
// address and micro-op count per window — exactly the inputs the flow
// formulation reads). Any change to these inputs, or a planVersion bump,
// yields a different key, which is how stale cache entries are invalidated.
func PlanKey(pws []trace.PW, cfg uopcache.Config, model CostModel, foldVariants bool, segLimit int) string {
	if segLimit <= 0 {
		segLimit = DefaultSegmentLimit
	}
	h := sha256.New()
	var hdr [64]byte
	binary.LittleEndian.PutUint16(hdr[0:2], planVersion)
	binary.LittleEndian.PutUint32(hdr[2:6], uint32(cfg.Entries))
	binary.LittleEndian.PutUint32(hdr[6:10], uint32(cfg.Ways))
	binary.LittleEndian.PutUint32(hdr[10:14], uint32(cfg.UopsPerEntry))
	if cfg.Compaction {
		hdr[14] = 1
	}
	hdr[15] = byte(model)
	if foldVariants {
		hdr[16] = 1
	}
	binary.LittleEndian.PutUint32(hdr[17:21], uint32(segLimit))
	binary.LittleEndian.PutUint64(hdr[21:29], uint64(len(pws)))
	h.Write(hdr[:29])
	// Stream the sequence digest in fixed-size chunks to keep the hash
	// fast and allocation-bounded.
	buf := hdr[:0]
	for i := range pws {
		var rec [10]byte
		binary.LittleEndian.PutUint64(rec[0:8], pws[i].Start)
		binary.LittleEndian.PutUint16(rec[8:10], pws[i].NumUops)
		buf = append(buf, rec[:]...)
		if len(buf)+10 > cap(buf) {
			h.Write(buf)
			buf = buf[:0]
		}
	}
	h.Write(buf)
	return hex.EncodeToString(h.Sum(nil))
}

// ComputeDecisionsCached is ComputeDecisions with the prepared-trace and
// plan-cache attachments (either may be nil): a valid pt supplies the
// columnar per-window attributes, and a plans hit skips the solve.
func ComputeDecisionsCached(ctx context.Context, pws []trace.PW, pt *trace.PreparedTrace, cfg uopcache.Config, model CostModel, foldVariants bool, segLimit, workers int, plans PlanCache) *Decisions {
	return computePlan(ctx, pws, pt, cfg, model, foldVariants, segLimit, workers, plans)
}

// computePlan is the caching wrapper around computeDecisions: with a plan
// cache attached it loads a previously solved plan by content key, and
// stores freshly solved plans for future runs. A plan solved under a
// cancelled context is incomplete and is never stored.
func computePlan(ctx context.Context, pws []trace.PW, pt *trace.PreparedTrace, cfg uopcache.Config, model CostModel, foldVariants bool, segLimit, workers int, plans PlanCache) *Decisions {
	if plans == nil {
		return computeDecisions(ctx, pws, pt, cfg, model, foldVariants, segLimit, workers)
	}
	key := PlanKey(pws, cfg, model, foldVariants, segLimit)
	if d, ok := plans.Load(key); ok && len(d.Keep) == len(pws) && d.Model == model && d.FoldVariants == foldVariants {
		return d
	}
	d := computeDecisions(ctx, pws, pt, cfg, model, foldVariants, segLimit, workers)
	if ctx == nil || ctx.Err() == nil {
		plans.Store(key, d)
	}
	return d
}
