package offline

import (
	"context"

	"uopsim/internal/flow"
	"uopsim/internal/parallel"
	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
)

// CostModel selects the objective of the flow formulation.
type CostModel int

const (
	// CostOHR charges every missed interval 1, regardless of window size
	// or micro-op count (FOO's object-hit-ratio objective).
	CostOHR CostModel = iota
	// CostBHR charges a missed interval its size in entries (FOO's
	// byte-hit-ratio objective; entries play the role of bytes).
	CostBHR
	// CostVC charges a missed interval its micro-op count — FLACK's
	// variable-cost objective, the paper's miss metric.
	CostVC
)

// String names the cost model.
func (m CostModel) String() string {
	switch m {
	case CostOHR:
		return "ohr"
	case CostBHR:
		return "bhr"
	case CostVC:
		return "vc"
	default:
		return "unknown"
	}
}

// costScale makes per-unit edge costs integral: it is divisible by every
// possible window size in entries (1..8).
const costScale = 840

// DefaultSegmentLimit bounds the per-set request count solved in one
// min-cost-flow instance; longer per-set traces are solved in consecutive
// segments with boundary-crossing intervals treated as misses. This is the
// standard practical deployment of FOO on long traces.
const DefaultSegmentLimit = 4096

// Decisions holds the offline keep/evict plan: Keep[i] reports whether the
// window looked up at global position i should stay cached until its next
// lookup.
type Decisions struct {
	Keep []bool
	// Model records the objective the plan optimized.
	Model CostModel
	// FoldVariants records whether overlapping same-start windows were
	// treated as one object (FLACK's SB feature).
	FoldVariants bool
}

// KeptFraction reports the fraction of intervals the plan retains; useful
// as a quick sanity measure in tests and reports.
func (d *Decisions) KeptFraction() float64 {
	if len(d.Keep) == 0 {
		return 0
	}
	n := 0
	for _, k := range d.Keep {
		if k {
			n++
		}
	}
	return float64(n) / float64(len(d.Keep))
}

type fooRequest struct {
	pos  int32 // global lookup position
	id   uint64
	size int32 // entries
	cost int32 // micro-ops
}

// ComputeDecisions solves the FOO/FLACK interval-caching problem for the
// whole lookup sequence. The cache's set-associativity decomposes the
// problem: each set is an independent capacity-constrained timeline solved
// with min-cost flow. foldVariants enables FLACK's treatment of overlapping
// same-start windows as one object sized by its largest variant. segLimit
// bounds the per-set flow instance (0 selects DefaultSegmentLimit).
//
// workers bounds the solver's parallelism (0 = GOMAXPROCS, 1 = serial).
// Every (set, segment) flow instance is independent — each builds its own
// flow.Graph and writes keep decisions at the disjoint trace positions of
// its own requests — so the fan-out needs no locking and the resulting plan
// is byte-identical at any worker count.
//
// ctx (nil = never cancelled) makes a long solve abandonable: when it is
// cancelled, segments that have not started solving are skipped so the call
// returns quickly. The returned plan is then INCOMPLETE and must be
// discarded — callers that hold a cancellable context are responsible for
// checking ctx.Err() before using the plan (the experiment scheduler does
// this centrally before merging or journaling any cell result).
func ComputeDecisions(ctx context.Context, pws []trace.PW, cfg uopcache.Config, model CostModel, foldVariants bool, segLimit, workers int) *Decisions {
	return computeDecisions(ctx, pws, nil, cfg, model, foldVariants, segLimit, workers)
}

// ComputeDecisionsPrepared is ComputeDecisions over a prepared trace: the
// per-window set indices come from the shared columns and the fold-mode
// prefix maxima use the dense key ids instead of a map. The produced plan
// is byte-identical to the unprepared solve.
func ComputeDecisionsPrepared(ctx context.Context, pt *trace.PreparedTrace, cfg uopcache.Config, model CostModel, foldVariants bool, segLimit, workers int) *Decisions {
	return computeDecisions(ctx, pt.PWs(), pt, cfg, model, foldVariants, segLimit, workers)
}

// computeDecisions is the shared solve body; pt may be nil (unprepared).
func computeDecisions(ctx context.Context, pws []trace.PW, pt *trace.PreparedTrace, cfg uopcache.Config, model CostModel, foldVariants bool, segLimit, workers int) *Decisions {
	if segLimit <= 0 {
		segLimit = DefaultSegmentLimit
	}
	if pt != nil && (pt.Sig() != cfg.Sig() || !pt.SameSequence(pws)) {
		// Stale or mismatched columns: fall back to recomputing rather
		// than trusting them (lossless by construction).
		pt = nil
	}
	dec := &Decisions{Keep: make([]bool, len(pws)), Model: model, FoldVariants: foldVariants}

	// Identity and (size, cost) per object. With folding, an object is
	// the start address and its footprint is that of its largest
	// variant (the steady-state stored window). Without folding, each
	// (start, uops) variant is a separate object — Belady/FOO's view.
	identity := func(p trace.PW) uint64 {
		if foldVariants {
			return p.Start
		}
		return p.Start ^ (uint64(p.NumUops) << 48)
	}
	// With folding, a request's footprint is the PREFIX max of its
	// variants: the cache stores the largest window seen so far (growth
	// happens on partial hits), so planning against the global max would
	// overstate early intervals' size and cost. The prepared path keeps
	// the maxima in a flat array indexed by dense key id.
	var prefixMax map[uint64]int32
	var prefixMaxA []int32
	if foldVariants {
		if pt != nil {
			prefixMaxA = make([]int32, pt.NumKeys())
		} else {
			prefixMax = make(map[uint64]int32)
		}
	}

	// Partition requests per set. With a prepared trace the per-set counts
	// are known up front, so the request lists are carved out of one arena
	// instead of growing by repeated append.
	perSet := make([][]fooRequest, cfg.Sets())
	if pt != nil {
		counts := make([]int32, cfg.Sets())
		for i := 0; i < pt.Len(); i++ {
			counts[pt.Set(i)]++
		}
		arena := make([]fooRequest, len(pws))
		off := 0
		for s := range perSet {
			n := int(counts[s])
			perSet[s] = arena[off:off : off+n]
			off += n
		}
	}
	for i := range pws {
		p := &pws[i]
		var set int
		if pt != nil {
			set = pt.Set(i)
		} else {
			set = cfg.SetIndex(p.Start)
		}
		cost := int32(p.NumUops)
		if foldVariants {
			if pt != nil {
				id := pt.KeyID(i)
				if cost > prefixMaxA[id] {
					prefixMaxA[id] = cost
				}
				cost = prefixMaxA[id]
			} else {
				if cost > prefixMax[p.Start] {
					prefixMax[p.Start] = cost
				}
				cost = prefixMax[p.Start]
			}
		}
		size := (cost + int32(cfg.UopsPerEntry) - 1) / int32(cfg.UopsPerEntry)
		if size < 1 {
			size = 1
		}
		perSet[set] = append(perSet[set], fooRequest{
			pos: int32(i), id: identity(*p), size: size, cost: cost,
		})
	}

	// Flatten the (set, segment) instances into one work list so a few
	// long sets cannot serialize the tail of the fan-out.
	var segs [][]fooRequest
	for _, reqs := range perSet {
		for off := 0; off < len(reqs); off += segLimit {
			end := off + segLimit
			if end > len(reqs) {
				end = len(reqs)
			}
			segs = append(segs, reqs[off:end])
		}
	}
	parallel.ForEach(ctx, workers, len(segs), func(i int) {
		solveSegment(segs[i], cfg.Ways, model, dec)
	})
	return dec
}

// solveSegment runs the min-cost-flow formulation on one per-set segment and
// writes keep decisions into dec.
func solveSegment(reqs []fooRequest, ways int, model CostModel, dec *Decisions) {
	m := len(reqs)
	if m < 2 {
		return
	}
	// Walk backward so "next occurrence" is known, counting intervals as we
	// go: together with the m-1 inner edges and at most m supply edges this
	// gives the exact arc budget, so the graph build never grows a slice.
	next := make(map[uint64]int, m) // id -> most recent earlier index
	nextOcc := make([]int, m)
	nIntervals := 0
	for i := m - 1; i >= 0; i-- {
		if j, ok := next[reqs[i].id]; ok {
			nextOcc[i] = j
			nIntervals++
		} else {
			nextOcc[i] = -1
		}
		next[reqs[i].id] = i
	}
	g := flow.NewGraphCap(m, (m-1)+nIntervals+m)
	// Inner edges: consecutive requests share the set's entry capacity.
	for i := 0; i+1 < m; i++ {
		g.AddEdge(i, i+1, int64(ways), 0)
	}
	// Outer edges: one per interval (request -> next request of the same
	// object within the segment).
	type interval struct {
		edge int
		from int
	}
	intervals := make([]interval, 0, nIntervals)
	supply := make([]int64, m)
	for i := 0; i < m; i++ {
		j := nextOcc[i]
		if j < 0 {
			continue
		}
		size := int64(reqs[i].size)
		var missCost int64
		switch model {
		case CostOHR:
			missCost = 1
		case CostBHR:
			missCost = size
		case CostVC:
			missCost = int64(reqs[i].cost)
		}
		// Per-unit cost of NOT caching the interval; costScale keeps
		// it integral for any size 1..8.
		perUnit := costScale * missCost / size
		e := g.AddEdge(i, j, size, perUnit)
		intervals = append(intervals, interval{edge: e, from: i})
		supply[i] += size
		supply[j] -= size
	}
	if len(intervals) == 0 {
		return
	}
	// The network is always feasible: every outer edge can carry its own
	// supply. An error here is a programming bug.
	sv := flow.AcquireSolver()
	_, err := sv.SolveSupplies(g, supply)
	flow.ReleaseSolver(sv)
	if err != nil {
		panic("offline: infeasible FOO instance: " + err.Error())
	}
	for _, iv := range intervals {
		// Zero flow on the outer (miss) edge means the whole object
		// rode the inner edges: the interval is cached.
		if g.Flow(iv.edge) == 0 {
			dec.Keep[reqs[iv.from].pos] = true
		}
	}
}
