package offline

import (
	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
)

// Decision reason vocabulary for the offline policies (constant strings so
// stamping a Decision never allocates; the online vocabulary lives in
// package policy).
const (
	// ReasonFurthestNextUse: Belady's rule — the victim's next lookup is
	// furthest in the future.
	ReasonFurthestNextUse = "furthest_next_use"
	// ReasonUnkeptArrival: a FOO/FLACK plan does not keep the incoming
	// window's current interval, so it is bypassed under pressure.
	ReasonUnkeptArrival = "plan_unkept_arrival"
	// ReasonUnkeptFurthest: the victim's current interval is unkept by the
	// plan (furthest next use among unkept residents).
	ReasonUnkeptFurthest = "plan_unkept_furthest"
	// ReasonKeptFurthest: every resident was kept by the plan, so the
	// furthest-next-use resident goes (plan/capacity disagreement).
	ReasonKeptFurthest = "plan_kept_furthest"
)

// Belady implements Belady's MIN algorithm adapted to the micro-op cache's
// whole-PW granularity: at insertion time (the paper's fix for asynchronous
// lookup/insertion) it evicts the resident window whose next lookup lies
// furthest in the future. It deliberately ignores window cost and overlap —
// those are exactly the deficiencies the paper demonstrates (Figs. 3 and 4)
// and that FLACK repairs.
type Belady struct {
	o *Oracle
}

// NewBelady builds the policy around a next-use oracle for the trace being
// replayed.
func NewBelady(o *Oracle) *Belady { return &Belady{o: o} }

// Name implements uopcache.Policy.
func (p *Belady) Name() string { return "belady" }

// Bind implements uopcache.Policy (oracle-driven; no per-slot state).
func (p *Belady) Bind(uopcache.Geometry) {}

// OnHit implements uopcache.Policy.
func (p *Belady) OnHit(int, int32, uint64) {}

// OnInsert implements uopcache.Policy.
func (p *Belady) OnInsert(int, int32, trace.PW) {}

// OnEvict implements uopcache.Policy.
func (p *Belady) OnEvict(int, int32, uint64) {}

// Victim implements uopcache.Policy: evict the window with the furthest
// next use (ties broken by key for determinism).
func (p *Belady) Victim(_ int, residents []uopcache.Resident, _ trace.PW) uopcache.Decision {
	var best uint64
	bestNext := -1
	for _, r := range residents {
		n := p.o.NextUse(r.Key)
		if n > bestNext || (n == bestNext && r.Key < best) {
			best, bestNext = r.Key, n
		}
	}
	return uopcache.Decision{VictimKey: best, Reason: ReasonFurthestNextUse, Score: float64(bestNext)}
}
