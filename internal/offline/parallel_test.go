package offline

import (
	"math/rand"
	"testing"

	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
)

// TestComputeDecisionsWorkerInvariance: the solver's keep plan must be
// byte-identical at any worker count — each (set, segment) flow instance is
// independent and writes disjoint positions, so the fan-out may not change a
// single decision. Runs enough segments (small segLimit) that the pool
// actually interleaves.
func TestComputeDecisionsWorkerInvariance(t *testing.T) {
	cfg := uopcache.Config{Entries: 64, Ways: 8, UopsPerEntry: 8}
	rng := rand.New(rand.NewSource(11))
	var s []trace.PW
	for i := 0; i < 12000; i++ {
		s = append(s, pw(uint64(0x1000+rng.Intn(400)*16), 1+rng.Intn(24)))
	}
	for _, model := range []CostModel{CostOHR, CostBHR, CostVC} {
		for _, fold := range []bool{false, true} {
			ref := ComputeDecisions(nil, s, cfg, model, fold, 256, 1)
			for _, workers := range []int{2, 4, 0} {
				got := ComputeDecisions(nil, s, cfg, model, fold, 256, workers)
				if len(got.Keep) != len(ref.Keep) {
					t.Fatalf("model=%v fold=%v workers=%d: plan length %d != %d", model, fold, workers, len(got.Keep), len(ref.Keep))
				}
				for i := range ref.Keep {
					if got.Keep[i] != ref.Keep[i] {
						t.Fatalf("model=%v fold=%v workers=%d: Keep[%d] differs from serial plan", model, fold, workers, i)
					}
				}
			}
		}
	}
}

// TestRunFOOWorkerInvariance: threading Workers through Options must not
// change replay statistics either.
func TestRunFOOWorkerInvariance(t *testing.T) {
	cfg := uopcache.Config{Entries: 32, Ways: 4, UopsPerEntry: 8, InsertDelay: 2}
	rng := rand.New(rand.NewSource(7))
	var s []trace.PW
	for i := 0; i < 6000; i++ {
		s = append(s, pw(uint64(0x1000+rng.Intn(200)*16), 1+rng.Intn(24)))
	}
	ref := RunFOO(s, cfg, Options{Features: FLACKFeatures(), SegmentLimit: 256, Workers: 1})
	got := RunFOO(s, cfg, Options{Features: FLACKFeatures(), SegmentLimit: 256, Workers: 4})
	if ref.Stats != got.Stats {
		t.Fatalf("stats differ across worker counts:\nserial  %+v\nworkers %+v", ref.Stats, got.Stats)
	}
}
