package offline

import (
	"bytes"
	"context"
	"encoding/binary"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"uopsim/internal/artifact"
	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
)

// preparedFor builds the columnar view the way every consumer does: with
// the geometry's own attribute functions.
func preparedFor(pws []trace.PW, cfg uopcache.Config) *trace.PreparedTrace {
	return uopcache.Prepare(cfg, pws)
}

// planSeq builds a lookup sequence long enough for a non-trivial solve.
func planSeq(n int) []trace.PW {
	rng := rand.New(rand.NewSource(7))
	s := make([]trace.PW, 0, n)
	for i := 0; i < n; i++ {
		s = append(s, pw(uint64(0x1000+rng.Intn(40)*16), 1+rng.Intn(16)))
	}
	return s
}

func TestPlanCodecRoundTrip(t *testing.T) {
	s := planSeq(500)
	for _, model := range []CostModel{CostOHR, CostBHR, CostVC} {
		for _, fold := range []bool{false, true} {
			d := ComputeDecisions(nil, s, tinyCfg(), model, fold, 0, 1)
			var buf bytes.Buffer
			if err := EncodePlan(&buf, d); err != nil {
				t.Fatalf("EncodePlan(%s, fold=%v): %v", model, fold, err)
			}
			got, err := DecodePlan(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("DecodePlan(%s, fold=%v): %v", model, fold, err)
			}
			if !reflect.DeepEqual(got, d) {
				t.Fatalf("round trip changed the plan (%s, fold=%v)", model, fold)
			}
		}
	}
}

// TestPlanCodecRejectsBadInput covers every corruption class the cache can
// surface: each must produce a descriptive error — never a panic, never a
// silently wrong plan.
func TestPlanCodecRejectsBadInput(t *testing.T) {
	d := &Decisions{Keep: []bool{true, false, true, true, false, false, true, false, true}, Model: CostVC, FoldVariants: true}
	var buf bytes.Buffer
	if err := EncodePlan(&buf, d); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	mutate := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), valid...)
		return f(b)
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "truncated"},
		{"header cut short", valid[:8], "truncated"},
		{"body cut short", valid[:len(valid)-1], "truncated"},
		{"bad magic", mutate(func(b []byte) []byte { b[0] ^= 0xFF; return b }), "magic"},
		{"future version", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[4:6], planVersion+1)
			return b
		}), "version"},
		{"unknown cost model", mutate(func(b []byte) []byte { b[6] = 200; return b }), "cost model"},
		{"implausible count", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[8:16], 1<<40)
			return b
		}), "implausible"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := DecodePlan(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatalf("DecodePlan accepted %s (plan: %+v)", tc.name, got)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestPlanKeySensitivity(t *testing.T) {
	s := planSeq(100)
	cfg := tinyCfg()
	base := PlanKey(s, cfg, CostVC, true, 0)
	if k := PlanKey(s, cfg, CostVC, true, 0); k != base {
		t.Fatal("PlanKey is not deterministic")
	}
	// The default segment limit resolves to the same key as passing it
	// explicitly — otherwise the same solve would cache under two keys.
	if k := PlanKey(s, cfg, CostVC, true, DefaultSegmentLimit); k != base {
		t.Error("segLimit=0 and the resolved default produced different keys")
	}
	diff := map[string]string{base: "base"}
	note := func(label, key string) {
		if prev, clash := diff[key]; clash {
			t.Errorf("%s collides with %s", label, prev)
		}
		diff[key] = label
	}
	note("model", PlanKey(s, cfg, CostOHR, true, 0))
	note("fold", PlanKey(s, cfg, CostVC, false, 0))
	note("segLimit", PlanKey(s, cfg, CostVC, true, 128))
	bigger := cfg
	bigger.Ways = 4
	note("geometry", PlanKey(s, bigger, CostVC, true, 0))
	comp := cfg
	comp.Compaction = true
	note("compaction", PlanKey(s, comp, CostVC, true, 0))
	note("shorter trace", PlanKey(s[:99], cfg, CostVC, true, 0))
	moved := append([]trace.PW(nil), s...)
	moved[50].Start ^= 16
	note("start address", PlanKey(moved, cfg, CostVC, true, 0))
	resized := append([]trace.PW(nil), s...)
	resized[50].NumUops++
	note("window size", PlanKey(resized, cfg, CostVC, true, 0))
}

// TestPlanStoreRoundTrip drives the artifact-backed PlanCache end to end:
// a stored plan loads back equal, an absent key is a clean miss, and
// ComputeDecisionsCached serves the second solve from the cache.
func TestPlanStoreRoundTrip(t *testing.T) {
	store, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	plans := NewPlanStore(store)
	if NewPlanStore(nil) != nil {
		t.Fatal("NewPlanStore(nil) must disable caching")
	}
	s := planSeq(600)
	cfg := tinyCfg()
	key := PlanKey(s, cfg, CostVC, true, 0)
	if _, ok := plans.Load(key); ok {
		t.Fatal("empty store returned a plan")
	}
	cold := ComputeDecisionsCached(context.Background(), s, nil, cfg, CostVC, true, 0, 1, plans)
	cached, ok := plans.Load(key)
	if !ok {
		t.Fatal("solve was not stored")
	}
	if !reflect.DeepEqual(cached, cold) {
		t.Fatal("stored plan differs from the solved plan")
	}
	warm := ComputeDecisionsCached(context.Background(), s, nil, cfg, CostVC, true, 0, 1, plans)
	if !reflect.DeepEqual(warm, cold) {
		t.Fatal("warm plan differs from cold plan")
	}
	st := store.Stats()["plan"]
	if st.Hits == 0 {
		t.Fatalf("stats = %+v, want at least one hit", st)
	}
}

// TestComputePlanSkipsStoreWhenCancelled: a plan solved under a cancelled
// context is incomplete and must never be cached.
func TestComputePlanSkipsStoreWhenCancelled(t *testing.T) {
	store, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	plans := NewPlanStore(store)
	s := planSeq(600)
	cfg := tinyCfg()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ComputeDecisionsCached(ctx, s, nil, cfg, CostVC, true, 0, 1, plans)
	if _, ok := plans.Load(PlanKey(s, cfg, CostVC, true, 0)); ok {
		t.Fatal("cancelled solve was stored")
	}
}

// TestPreparedSolveMatchesUnprepared pins the columnar solver path to the
// plain one: same plan, bit for bit, fold on and off.
func TestPreparedSolveMatchesUnprepared(t *testing.T) {
	s := planSeq(2000)
	cfg := tinyCfg()
	pt := preparedFor(s, cfg)
	for _, fold := range []bool{false, true} {
		plain := ComputeDecisions(nil, s, cfg, CostVC, fold, 0, 1)
		cols := ComputeDecisionsPrepared(nil, pt, cfg, CostVC, fold, 0, 1)
		if !reflect.DeepEqual(plain, cols) {
			t.Fatalf("prepared solve diverged (fold=%v)", fold)
		}
	}
}
