package offline

import (
	"io"

	"uopsim/internal/artifact"
)

// planKind is the artifact-store namespace for serialized keep-plans.
const planKind = "plan"

// NewPlanStore adapts a content-addressed artifact store into a PlanCache:
// plans are serialized with EncodePlan/DecodePlan under the "plan" kind.
// Both directions are best-effort, as the PlanCache contract requires — a
// corrupt or unwritable entry degrades to recomputing the plan, never to a
// failed or wrong run (the store counts the error and removes bad entries).
func NewPlanStore(s *artifact.Store) PlanCache {
	if s == nil {
		return nil
	}
	return planStore{s: s}
}

type planStore struct{ s *artifact.Store }

// Load implements PlanCache.
func (p planStore) Load(key string) (*Decisions, bool) {
	var d *Decisions
	ok, err := p.s.Get(planKind, key, func(r io.Reader) error {
		var derr error
		d, derr = DecodePlan(r)
		return derr
	})
	if err != nil || !ok {
		return nil, false
	}
	return d, true
}

// Store implements PlanCache. Write failures are counted by the artifact
// store; the freshly solved plan is still returned to the caller, so a
// read-only cache directory costs nothing but the cache benefit.
func (p planStore) Store(key string, d *Decisions) {
	_ = p.s.Put(planKind, key, func(w io.Writer) error { return EncodePlan(w, d) })
}
