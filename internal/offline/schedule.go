package offline

import (
	"context"
	"sort"

	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
)

// SchedulePolicy packages an offline plan (Belady's oracle or a FOO/FLACK
// keep schedule) as a plain uopcache.Policy so the TIMING simulator can run
// offline policies too (the paper's Fig. 11 reports FLACK IPC). Because the
// timing frontend performs the same PW lookup sequence as FormPWs produces,
// the policy only needs to know the current lookup position — supplied by
// Bind, typically reading the cache's lookup counter.
type SchedulePolicy struct {
	name string
	o    *Oracle
	// keepOcc maps a window to the positions of its lookups and the
	// plan's keep decision at each (nil for Belady: pure oracle). With a
	// prepared trace the occurrence index is the trace's shared CSR (pt)
	// and the map stays nil.
	occ  map[uint64][]int32
	pt   *trace.PreparedTrace
	keep []bool
	pos  func() int
}

// NewBeladySchedule builds a timing-compatible Belady policy for the lookup
// sequence.
func NewBeladySchedule(pws []trace.PW) *SchedulePolicy {
	return &SchedulePolicy{name: "belady", o: NewOracle(pws)}
}

// NewBeladyScheduleWith is NewBeladySchedule over a prepared trace's shared
// occurrence index (the oracle is geometry-independent, so only sequence
// identity is validated; a mismatch falls back to the map-backed oracle).
func NewBeladyScheduleWith(pws []trace.PW, pt *trace.PreparedTrace) *SchedulePolicy {
	if pt != nil && pt.SameSequence(pws) {
		return &SchedulePolicy{name: "belady", o: NewOraclePrepared(pt), pt: pt}
	}
	return NewBeladySchedule(pws)
}

// ScheduleOptions configures NewFLACKScheduleWith: the solve's
// cancellation handle and worker budget, plus the optional prepared-trace
// and plan-cache attachments (both nil-safe, both lossless).
type ScheduleOptions struct {
	Ctx      context.Context
	Workers  int
	Prepared *trace.PreparedTrace
	Plans    PlanCache
}

// NewFLACKSchedule builds a timing-compatible FOO/FLACK policy: decisions
// are precomputed from the lookup sequence with the given features.
// workers bounds the solver fan-out (0 = GOMAXPROCS, 1 = serial). ctx
// (nil = never cancelled) cancels the solve; callers must discard the
// policy when ctx was cancelled, since its plan is then incomplete.
func NewFLACKSchedule(ctx context.Context, pws []trace.PW, cfg uopcache.Config, feats Features, workers int) *SchedulePolicy {
	return NewFLACKScheduleWith(pws, cfg, feats, ScheduleOptions{Ctx: ctx, Workers: workers})
}

// NewFLACKScheduleWith is NewFLACKSchedule with the prepared-trace and
// plan-cache attachments: a valid Prepared supplies the shared occurrence
// index (no per-policy map build), and a Plans hit skips the flow solve.
func NewFLACKScheduleWith(pws []trace.PW, cfg uopcache.Config, feats Features, opts ScheduleOptions) *SchedulePolicy {
	model := CostOHR
	if feats.VarCost {
		model = CostVC
	}
	pt := opts.Prepared
	if pt != nil && (pt.Sig() != cfg.Sig() || !pt.SameSequence(pws)) {
		pt = nil
	}
	dec := computePlan(opts.Ctx, pws, pt, cfg, model, feats.SelBypass, 0, opts.Workers, opts.Plans)
	sp := &SchedulePolicy{name: feats.Label(), keep: dec.Keep}
	if pt != nil {
		sp.o = NewOraclePrepared(pt)
		sp.pt = pt
		return sp
	}
	sp.o = NewOracle(pws)
	occ := make(map[uint64][]int32, len(pws)/4+1)
	for i, p := range pws {
		occ[p.Start] = append(occ[p.Start], int32(i))
	}
	sp.occ = occ
	return sp
}

// BindPos supplies the current-lookup-position callback; it must be called
// before the first Victim decision.
func (p *SchedulePolicy) BindPos(pos func() int) { p.pos = pos }

// Bind implements uopcache.Policy (plan-driven; no per-slot state).
func (p *SchedulePolicy) Bind(uopcache.Geometry) {}

// Name implements uopcache.Policy.
func (p *SchedulePolicy) Name() string { return p.name }

// OnHit implements uopcache.Policy.
func (p *SchedulePolicy) OnHit(int, int32, uint64) {}

// OnInsert implements uopcache.Policy.
func (p *SchedulePolicy) OnInsert(int, int32, trace.PW) {}

// OnEvict implements uopcache.Policy.
func (p *SchedulePolicy) OnEvict(int, int32, uint64) {}

// keptNow reports the plan's decision at the window's most recent lookup at
// or before pos. Windows outside the plan default to unkept.
func (p *SchedulePolicy) keptNow(key uint64, pos int) bool {
	if p.keep == nil {
		return true // Belady: no plan, victims by oracle only
	}
	var occ []int32
	if p.pt != nil {
		id, ok := p.pt.IDOf(key)
		if !ok {
			return false
		}
		occ = p.pt.Occurrences(id)
	} else {
		occ = p.occ[key]
	}
	// Last occurrence <= pos.
	i := sort.Search(len(occ), func(i int) bool { return int(occ[i]) > pos }) - 1
	if i < 0 {
		return false
	}
	return p.keep[occ[i]]
}

// Victim implements uopcache.Policy.
func (p *SchedulePolicy) Victim(_ int, residents []uopcache.Resident, incoming trace.PW) uopcache.Decision {
	pos := 0
	if p.pos != nil {
		pos = p.pos()
	}
	p.o.Advance(pos)
	if p.keep != nil && !p.keptNow(incoming.Start, pos) {
		return uopcache.Decision{Bypass: true, Reason: ReasonUnkeptArrival}
	}
	var bestUnkept, bestAny uint64
	unkeptNext, anyNext := -1, -1
	for _, r := range residents {
		n := p.o.NextUse(r.Key)
		if n > anyNext || (n == anyNext && r.Key < bestAny) {
			bestAny, anyNext = r.Key, n
		}
		if p.keep != nil && !p.keptNow(r.Key, pos) {
			if n > unkeptNext || (n == unkeptNext && r.Key < bestUnkept) {
				bestUnkept, unkeptNext = r.Key, n
			}
		}
	}
	if unkeptNext >= 0 {
		return uopcache.Decision{VictimKey: bestUnkept, Reason: ReasonUnkeptFurthest, Score: float64(unkeptNext)}
	}
	if p.keep != nil {
		return uopcache.Decision{VictimKey: bestAny, Reason: ReasonKeptFurthest, Score: float64(anyNext)}
	}
	return uopcache.Decision{VictimKey: bestAny, Reason: ReasonFurthestNextUse, Score: float64(anyNext)}
}
