package offline

import (
	"math/rand"
	"testing"

	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
)

func pw(start uint64, uops int) trace.PW {
	return trace.PW{Start: start, NumUops: uint16(uops), Bytes: uint16(uops * 4),
		NumInst: uint16(uops), Lines: []uint64{trace.LineAddr(start)}}
}

// seq builds a lookup sequence from (start, uops) pairs.
func seq(pairs ...[2]uint64) []trace.PW {
	out := make([]trace.PW, len(pairs))
	for i, p := range pairs {
		out[i] = pw(p[0], int(p[1]))
	}
	return out
}

func tinyCfg() uopcache.Config {
	return uopcache.Config{Entries: 2, Ways: 2, UopsPerEntry: 8, InsertDelay: 0}
}

func TestOracleNextUse(t *testing.T) {
	s := seq([2]uint64{10, 1}, [2]uint64{20, 1}, [2]uint64{10, 1}, [2]uint64{30, 1}, [2]uint64{10, 1})
	o := NewOracle(s)
	o.Advance(1)
	if got := o.NextUse(10); got != 2 {
		t.Errorf("NextUse(10)@1 = %d, want 2", got)
	}
	if got := o.NextUse(20); got != 1 {
		t.Errorf("NextUse(20)@1 = %d, want 1 (inclusive)", got)
	}
	o.Advance(3)
	if got := o.NextUse(10); got != 4 {
		t.Errorf("NextUse(10)@3 = %d, want 4", got)
	}
	if got := o.NextUse(20); got != NoNextUse {
		t.Errorf("NextUse(20)@3 = %d, want none", got)
	}
	o.Advance(4)
	if got := o.NextUse(10); got != 4 {
		t.Errorf("NextUse(10)@4 = %d, want 4 (inclusive)", got)
	}
	o.Advance(5)
	if got := o.NextUse(10); got != NoNextUse {
		t.Errorf("NextUse(10)@5 = %d, want none", got)
	}
	if got := o.NextUse(99); got != NoNextUse {
		t.Errorf("NextUse(unknown) = %d", got)
	}
	if o.Lookups(10) != 3 || o.Lookups(99) != 0 {
		t.Error("Lookups counts wrong")
	}
	if o.Pos() != 5 {
		t.Error("Pos")
	}
}

// TestOracleAgainstBruteForce cross-checks NextUse on a random trace.
func TestOracleAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var s []trace.PW
	for i := 0; i < 2000; i++ {
		s = append(s, pw(uint64(rng.Intn(50)*16+0x1000), 4))
	}
	o := NewOracle(s)
	for i := 0; i < len(s); i++ {
		o.Advance(i)
		// Check a handful of keys at each position.
		for k := 0; k < 5; k++ {
			key := uint64(rng.Intn(50)*16 + 0x1000)
			want := NoNextUse
			for j := i; j < len(s); j++ {
				if s[j].Start == key {
					want = j
					break
				}
			}
			if got := o.NextUse(key); got != want {
				t.Fatalf("pos %d key %#x: NextUse = %d, want %d", i, key, got, want)
			}
		}
	}
}

// TestBeladyKeepsSoonReused: classic MIN behaviour on equal-size windows.
func TestBeladyKeepsSoonReused(t *testing.T) {
	// Cache: 1 set, 2 ways/entries. Windows A, B resident; C arrives.
	// Future: A reused soon, B never -> B must be the victim.
	a, b, c := uint64(0x1000), uint64(0x2000), uint64(0x3000)
	s := seq([2]uint64{a, 4}, [2]uint64{b, 4}, [2]uint64{c, 4}, [2]uint64{a, 4}, [2]uint64{a, 4})
	res := RunBelady(s, tinyCfg(), Options{})
	// Lookups: A miss, B miss, C miss (evicts B), A hit, A hit.
	if res.Stats.FullHits != 2 {
		t.Errorf("hits = %d, want 2 (stats %+v)", res.Stats.FullHits, res.Stats)
	}
}

// TestBeladyBeatsLRUOnScan: the classic looping-scan pattern where LRU gets
// zero hits but MIN retains part of the working set.
func TestBeladyBeatsLRUOnScan(t *testing.T) {
	cfg := uopcache.Config{Entries: 4, Ways: 4, UopsPerEntry: 8, InsertDelay: 0}
	// 6 windows cycled repeatedly through a 4-entry set: LRU thrashes.
	var s []trace.PW
	starts := []uint64{0x1000, 0x1010, 0x1020, 0x1030, 0x1040, 0x1050}
	for r := 0; r < 50; r++ {
		for _, st := range starts {
			s = append(s, pw(st, 4))
		}
	}
	bel := RunBelady(s, cfg, Options{})
	if bel.Stats.UopMissRate() > 0.5 {
		t.Errorf("Belady miss rate %.2f on cyclic scan, want < 0.5", bel.Stats.UopMissRate())
	}
}

// TestDecisionsRespectCapacity: the keep plan never exceeds per-set entry
// capacity at any point in time — the min-cost-flow inner-edge constraint.
func TestDecisionsRespectCapacity(t *testing.T) {
	cfg := uopcache.Config{Entries: 16, Ways: 8, UopsPerEntry: 8, InsertDelay: 0}
	rng := rand.New(rand.NewSource(4))
	var s []trace.PW
	for i := 0; i < 4000; i++ {
		s = append(s, pw(uint64(0x1000+rng.Intn(120)*16), 1+rng.Intn(24)))
	}
	for _, fold := range []bool{false, true} {
		dec := ComputeDecisions(nil, s, cfg, CostVC, fold, 0, 1)
		// Recompute per-set residency over time.
		type iv struct{ from, to, size int }
		perSet := map[int][]iv{}
		lastPos := map[uint64]int{}
		lastSize := map[uint64]int{}
		prefixMax := map[uint64]int{}
		idOf := func(p trace.PW) uint64 {
			if fold {
				return p.Start
			}
			return p.Start ^ (uint64(p.NumUops) << 48)
		}
		for i, p := range s {
			id := idOf(p)
			u := int(p.NumUops)
			if fold {
				// The plan sizes folded intervals by the prefix
				// max of the variants seen so far.
				if u > prefixMax[p.Start] {
					prefixMax[p.Start] = u
				}
				u = prefixMax[p.Start]
			}
			if j, ok := lastPos[id]; ok && dec.Keep[j] {
				size := (lastSize[id] + 7) / 8
				set := cfg.SetIndex(p.Start)
				perSet[set] = append(perSet[set], iv{from: j, to: i, size: size})
			}
			lastPos[id] = i
			lastSize[id] = u
		}
		for set, ivs := range perSet {
			// Sweep: at each lookup index, total size of covering
			// kept intervals must be <= ways.
			deltas := map[int]int{}
			for _, v := range ivs {
				deltas[v.from] += v.size
				deltas[v.to] -= v.size
			}
			points := make([]int, 0, len(deltas))
			for p := range deltas {
				points = append(points, p)
			}
			// Insertion-sort the points (small).
			for i := 1; i < len(points); i++ {
				for j := i; j > 0 && points[j] < points[j-1]; j-- {
					points[j], points[j-1] = points[j-1], points[j]
				}
			}
			occ := 0
			for _, p := range points {
				occ += deltas[p]
				if occ > cfg.Ways {
					t.Fatalf("fold=%v set %d: kept plan uses %d entries > %d ways at pos %d",
						fold, set, occ, cfg.Ways, p)
				}
			}
		}
	}
}

// TestDecisionsKeepHotLoop: a tight loop that fits must be fully kept.
func TestDecisionsKeepHotLoop(t *testing.T) {
	cfg := tinyCfg()
	var s []trace.PW
	for i := 0; i < 20; i++ {
		s = append(s, pw(0x1000, 4))
	}
	dec := ComputeDecisions(nil, s, cfg, CostOHR, false, 0, 1)
	for i := 0; i < len(s)-1; i++ {
		if !dec.Keep[i] {
			t.Errorf("position %d of a fitting loop not kept", i)
		}
	}
	if dec.Keep[len(s)-1] {
		t.Error("final lookup has no next use; must not be kept")
	}
	if dec.KeptFraction() <= 0.9 {
		t.Errorf("kept fraction = %.2f", dec.KeptFraction())
	}
}

// TestVariableCostPrefersCheapMisses reproduces the paper's Fig. 3 example:
// with capacity 2, windows A (cost 1), C (cost 4) resident and lookups
// B B B A A C (B cost 1), the cost-aware plan sacrifices the cheap windows
// and keeps C, while the OHR plan treats all equally.
func TestVariableCostPrefersCheapMisses(t *testing.T) {
	a, b, c := uint64(0x1000), uint64(0x2000), uint64(0x3000)
	s := seq(
		[2]uint64{a, 1}, [2]uint64{c, 4}, // warm A and C
		[2]uint64{b, 1}, [2]uint64{b, 1}, [2]uint64{b, 1},
		[2]uint64{a, 1}, [2]uint64{a, 1},
		[2]uint64{c, 4},
	)
	cfg := tinyCfg()
	vc := RunFOO(s, cfg, Options{Features: Features{Async: true, VarCost: true}})
	ohr := RunFOO(s, cfg, Options{Features: Features{Async: true}})
	if vc.Stats.UopsMissed > ohr.Stats.UopsMissed {
		t.Errorf("cost-aware plan missed %d uops, OHR plan %d — VC should not be worse",
			vc.Stats.UopsMissed, ohr.Stats.UopsMissed)
	}
	// The cost-aware plan must protect C: its final lookup hits.
	if vc.Stats.UopsMissed >= 4+1+1+4 {
		t.Errorf("VC plan did not protect the expensive window: missed %d uops", vc.Stats.UopsMissed)
	}
}

// TestFoldVariantsServesPartialHits reproduces the paper's Fig. 4 setup:
// D' (3 uops) covers D (1 uop, same start). With folding, lookups of D hit
// on the stored D'.
func TestFoldVariantsServesPartialHits(t *testing.T) {
	d, e := uint64(0x1000), uint64(0x2000)
	s := seq(
		[2]uint64{d, 3}, // D' inserted (3 uops)
		[2]uint64{e, 1},
		[2]uint64{d, 1}, [2]uint64{d, 1}, [2]uint64{d, 1}, // D lookups: served by D'
		[2]uint64{d, 3},
		[2]uint64{e, 1},
	)
	cfg := tinyCfg()
	flack := RunFOO(s, cfg, Options{Features: FLACKFeatures()})
	raw := RunFOO(s, cfg, Options{Features: Features{}})
	if flack.Stats.UopsMissed > raw.Stats.UopsMissed {
		t.Errorf("FLACK missed %d uops, raw FOO %d", flack.Stats.UopsMissed, raw.Stats.UopsMissed)
	}
	if flack.Stats.FullHits < 4 {
		t.Errorf("folded plan should hit the D lookups: %+v", flack.Stats)
	}
}

// TestAsyncFeatureHelps: with a nonzero insertion delay, the async-aware
// plan (lazy eviction + late-insertion safeguard) must not lose to the raw
// plan that applies decisions at lookup time.
func TestAsyncFeatureHelps(t *testing.T) {
	cfg := uopcache.Config{Entries: 8, Ways: 8, UopsPerEntry: 8, InsertDelay: 3}
	rng := rand.New(rand.NewSource(8))
	var s []trace.PW
	for i := 0; i < 3000; i++ {
		s = append(s, pw(uint64(0x1000+rng.Intn(40)*16), 1+rng.Intn(12)))
	}
	withA := RunFOO(s, cfg, Options{Features: Features{Async: true}})
	withoutA := RunFOO(s, cfg, Options{Features: Features{}})
	if withA.Stats.UopsMissed > withoutA.Stats.UopsMissed {
		t.Errorf("async handling hurt: %d vs %d missed uops",
			withA.Stats.UopsMissed, withoutA.Stats.UopsMissed)
	}
}

// TestFLACKBeatsBeladyOnVariableCosts: on a trace with strongly variable
// window costs and overlap, FLACK's uop-level misses must be at most
// Belady's (the paper's headline offline claim, Fig. 10).
func TestFLACKBeatsBeladyOnVariableCosts(t *testing.T) {
	cfg := uopcache.Config{Entries: 16, Ways: 8, UopsPerEntry: 8, InsertDelay: 2}
	rng := rand.New(rand.NewSource(77))
	var s []trace.PW
	starts := make([]uint64, 60)
	costs := make([]int, 60)
	for i := range starts {
		starts[i] = uint64(0x1000 + i*16)
		if i%3 == 0 {
			costs[i] = 20 + rng.Intn(12) // expensive multi-entry windows
		} else {
			costs[i] = 1 + rng.Intn(4) // cheap windows
		}
	}
	for i := 0; i < 8000; i++ {
		k := rng.Intn(len(starts))
		if rng.Float64() < 0.5 {
			k = rng.Intn(10) // hot subset
		}
		u := costs[k]
		if rng.Float64() < 0.2 && u > 2 {
			u = u / 2 // overlapping smaller variant
		}
		s = append(s, pw(starts[k], u))
	}
	flack := RunFLACK(s, cfg, Options{})
	bel := RunBelady(s, cfg, Options{})
	if flack.Stats.UopsMissed > bel.Stats.UopsMissed {
		t.Errorf("FLACK missed %d uops, Belady %d — FLACK should win on variable costs",
			flack.Stats.UopsMissed, bel.Stats.UopsMissed)
	}
}

func TestFeaturesLabel(t *testing.T) {
	cases := map[string]Features{
		"foo":       {},
		"foo+A":     {Async: true},
		"foo+A+VC":  {Async: true, VarCost: true},
		"flack":     FLACKFeatures(),
		"foo+VC":    {VarCost: true},
		"foo+SB":    {SelBypass: true},
		"foo+VC+SB": {VarCost: true, SelBypass: true},
	}
	for want, f := range cases {
		if got := f.Label(); got != want {
			t.Errorf("Label(%+v) = %q, want %q", f, got, want)
		}
	}
}

func TestCostModelString(t *testing.T) {
	if CostOHR.String() != "ohr" || CostBHR.String() != "bhr" || CostVC.String() != "vc" {
		t.Error("cost model names")
	}
	if CostModel(9).String() != "unknown" {
		t.Error("unknown cost model name")
	}
}

func TestRunRecordsPerLookup(t *testing.T) {
	s := seq([2]uint64{0x1000, 4}, [2]uint64{0x1000, 4}, [2]uint64{0x1000, 4})
	res := RunFLACK(s, tinyCfg(), Options{RecordPerLookup: true})
	if len(res.PerLookup) != 3 {
		t.Fatalf("PerLookup length %d", len(res.PerLookup))
	}
	if res.PerLookup[0].Kind != uopcache.ProbeMiss {
		t.Error("first lookup should miss")
	}
	if res.PerLookup[2].Kind != uopcache.ProbeFull {
		t.Error("third lookup should hit")
	}
	bel := RunBelady(s, tinyCfg(), Options{RecordPerLookup: true})
	if len(bel.PerLookup) != 3 {
		t.Error("Belady PerLookup missing")
	}
}

// TestSegmentationStillFeasible: tiny segment limits must not break
// anything, only reduce plan quality.
func TestSegmentationStillFeasible(t *testing.T) {
	cfg := uopcache.Config{Entries: 8, Ways: 8, UopsPerEntry: 8, InsertDelay: 0}
	rng := rand.New(rand.NewSource(6))
	var s []trace.PW
	for i := 0; i < 2000; i++ {
		s = append(s, pw(uint64(0x1000+rng.Intn(30)*16), 1+rng.Intn(8)))
	}
	full := RunFLACK(s, cfg, Options{})
	segmented := RunFLACK(s, cfg, Options{SegmentLimit: 64})
	if segmented.Stats.UopsRequested != full.Stats.UopsRequested {
		t.Error("request accounting differs")
	}
	if segmented.Stats.UopsMissed < full.Stats.UopsMissed {
		t.Logf("note: segmented plan beat full plan (%d vs %d) — possible but unusual",
			segmented.Stats.UopsMissed, full.Stats.UopsMissed)
	}
	// Sanity: segmentation cannot catastrophically explode misses.
	if float64(segmented.Stats.UopsMissed) > 3*float64(full.Stats.UopsMissed)+1000 {
		t.Errorf("segmented plan wildly worse: %d vs %d", segmented.Stats.UopsMissed, full.Stats.UopsMissed)
	}
}
