package offline

import (
	"context"

	"uopsim/internal/cache"
	"uopsim/internal/telemetry"
	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
)

// Features toggles FLACK's three extensions over raw FOO, matching the
// paper's Fig. 10 ablation: raw FOO is the zero value; FLACK is all three.
type Features struct {
	// Async enables lazy eviction and late-insertion safeguarding: a
	// window the plan stops keeping stays resident until replacement
	// pressure needs its entries, and in-flight insertions of unkept
	// windows are bypassed on arrival instead of being cancelled at
	// lookup time.
	Async bool
	// VarCost switches the flow objective from OHR to the micro-op cost
	// metric (cost/size per entry).
	VarCost bool
	// SelBypass folds overlapping same-start windows into one object
	// (partial hits count as uses, the larger variant is kept) and
	// throttles bypassing: unkept windows may still be inserted when the
	// set has free space, increasing the chance of future partial hits.
	SelBypass bool
}

// FLACKFeatures returns the full FLACK feature set.
func FLACKFeatures() Features { return Features{Async: true, VarCost: true, SelBypass: true} }

// Label names the feature combination the way the paper's Fig. 10 does.
func (f Features) Label() string {
	switch f {
	case Features{}:
		return "foo"
	case Features{Async: true}:
		return "foo+A"
	case Features{Async: true, VarCost: true}:
		return "foo+A+VC"
	case FLACKFeatures():
		return "flack"
	}
	s := "foo"
	if f.Async {
		s += "+A"
	}
	if f.VarCost {
		s += "+VC"
	}
	if f.SelBypass {
		s += "+SB"
	}
	return s
}

// replayPolicy enforces a Decisions plan inside the cache: victims are
// residents whose current interval the plan does not keep (furthest next
// use among them); when every resident is kept, the furthest-next-use
// resident goes. Under SelBypass, unkept arrivals are bypassed only under
// pressure (this method only runs when the set is full), which is exactly
// FLACK's bypass throttling.
type replayPolicy struct {
	o *Oracle
	// curKeep tracks, per window, whether the plan keeps its current
	// interval (updated by the driver at each lookup). With a prepared
	// trace the bits live in curKeepA, indexed by dense key id, and the
	// map stays nil.
	curKeep  map[uint64]bool
	pt       *trace.PreparedTrace
	curKeepA []bool
}

// kept reads the plan's current decision for a window.
//
//simlint:hotpath
func (p *replayPolicy) kept(key uint64) bool {
	if p.pt != nil {
		id, ok := p.pt.IDOf(key)
		return ok && p.curKeepA[id]
	}
	return p.curKeep[key]
}

// Name implements uopcache.Policy.
func (p *replayPolicy) Name() string { return "offline-replay" }

// Bind implements uopcache.Policy (plan-driven; no per-slot state).
func (p *replayPolicy) Bind(uopcache.Geometry) {}

// OnHit implements uopcache.Policy.
func (p *replayPolicy) OnHit(int, int32, uint64) {}

// OnInsert implements uopcache.Policy.
func (p *replayPolicy) OnInsert(int, int32, trace.PW) {}

// OnEvict implements uopcache.Policy.
func (p *replayPolicy) OnEvict(int, int32, uint64) {}

// Victim implements uopcache.Policy.
func (p *replayPolicy) Victim(_ int, residents []uopcache.Resident, incoming trace.PW) uopcache.Decision {
	// Under pressure, an unkept arrival is bypassed rather than evicting
	// anything.
	if !p.kept(incoming.Start) {
		return uopcache.Decision{Bypass: true, Reason: ReasonUnkeptArrival}
	}
	var bestUnkept, bestAny uint64
	unkeptNext, anyNext := -1, -1
	for _, r := range residents {
		n := p.o.NextUse(r.Key)
		if n > anyNext || (n == anyNext && r.Key < bestAny) {
			bestAny, anyNext = r.Key, n
		}
		if !p.kept(r.Key) {
			if n > unkeptNext || (n == unkeptNext && r.Key < bestUnkept) {
				bestUnkept, unkeptNext = r.Key, n
			}
		}
	}
	if unkeptNext >= 0 {
		return uopcache.Decision{VictimKey: bestUnkept, Reason: ReasonUnkeptFurthest, Score: float64(unkeptNext)}
	}
	return uopcache.Decision{VictimKey: bestAny, Reason: ReasonKeptFurthest, Score: float64(anyNext)}
}

// Result bundles replay statistics with the per-lookup outcomes FURBYS's
// profiling pipeline consumes.
type Result struct {
	Stats uopcache.Stats
	// PerLookup records each lookup's outcome in trace order.
	PerLookup []uopcache.ProbeResult
}

// Options configures an offline replay run.
type Options struct {
	// Ctx, when non-nil, cancels the plan solve: a cancelled context makes
	// ComputeDecisions return early with an incomplete plan, so callers
	// that set Ctx must discard the Result when Ctx.Err() != nil after the
	// run. nil means never cancelled.
	Ctx context.Context
	// Features selects the FLACK extensions (zero = raw FOO).
	Features Features
	// SegmentLimit bounds per-set flow instances (0 = default).
	SegmentLimit int
	// ICache, when non-nil, is the inclusive L1i configuration; nil
	// models a perfect icache (the paper evaluates the offline family
	// under perfect L1i to isolate replacement effects).
	ICache *cache.Config
	// RecordPerLookup enables Result.PerLookup.
	RecordPerLookup bool
	// Workers bounds the plan solver's parallelism (0 = GOMAXPROCS,
	// 1 = serial). Only ComputeDecisions fans out; the replay itself is
	// inherently serial (see replayDecisions).
	Workers int
	// Metrics, when non-nil, receives the live uopcache_* counters of
	// the replay; Events, when non-nil, receives the structured decision
	// trace. Both are optional observability attachments.
	Metrics *telemetry.Registry
	Events  telemetry.EventSink
	// Prepared, when non-nil and built over exactly the pws slice under
	// the run's geometry, supplies the shared columnar attributes (set
	// index, footprint, occurrence index) so the replay allocates no
	// per-run oracle maps. A mismatched Prepared is ignored and the
	// unprepared path runs — results are byte-identical either way.
	Prepared *trace.PreparedTrace
	// Plans, when non-nil, caches solved keep-plans by content key: a hit
	// skips the min-cost-flow solve entirely, a miss stores the fresh
	// plan for future runs. nil disables plan caching.
	Plans PlanCache
}

// prepared validates the Prepared attachment against the run's sequence
// and geometry, returning nil (the unprepared path) on any mismatch.
func (o Options) prepared(pws []trace.PW, cfg uopcache.Config) *trace.PreparedTrace {
	if o.Prepared == nil || o.Prepared.Sig() != cfg.Sig() || !o.Prepared.SameSequence(pws) {
		return nil
	}
	return o.Prepared
}

// attach wires the optional observability attachments into a replay cache.
func (o Options) attach(c *uopcache.Cache) {
	if o.Metrics != nil {
		c.AttachMetrics(o.Metrics)
	}
	if o.Events != nil {
		c.SetEventSink(o.Events)
	}
}

// RunFOO replays the lookup sequence under a FOO/FLACK plan with the given
// feature set and returns the measured statistics. This is the paper's
// STEP(3): the offline behaviour simulator producing hit/miss decisions.
func RunFOO(pws []trace.PW, cfg uopcache.Config, opts Options) Result {
	model := CostOHR
	if opts.Features.VarCost {
		model = CostVC
	}
	dec := computePlan(opts.Ctx, pws, opts.prepared(pws, cfg), cfg, model, opts.Features.SelBypass, opts.SegmentLimit, opts.Workers, opts.Plans)
	return replayDecisions(pws, cfg, dec, opts)
}

// ReplayPlan drives the behaviour simulator under an externally computed
// plan — used by objective-comparison studies that want to vary the flow
// objective independently of the replay features.
func ReplayPlan(pws []trace.PW, cfg uopcache.Config, dec *Decisions, opts Options) Result {
	return replayDecisions(pws, cfg, dec, opts)
}

// replayDecisions drives the behaviour simulator under a plan.
//
// Unlike the solve, the replay does NOT decompose per set: the behaviour
// simulator's asynchronous-insertion due times count GLOBAL lookups (an
// insertion issued in one set matures after accesses to other sets), and
// the inclusive L1i couples sets through line evictions. Splitting the
// replay per set would change those interleavings and therefore the
// results, so parallel speedup for replays comes from running independent
// (experiment, app) cells concurrently at the harness layer instead.
func replayDecisions(pws []trace.PW, cfg uopcache.Config, dec *Decisions, opts Options) Result {
	pt := opts.prepared(pws, cfg)
	var o *Oracle
	rp := &replayPolicy{}
	if pt != nil {
		o = NewOraclePrepared(pt)
		rp.pt, rp.curKeepA = pt, make([]bool, pt.NumKeys())
	} else {
		o = NewOracle(pws)
		rp.curKeep = make(map[uint64]bool)
	}
	rp.o = o
	c := uopcache.New(cfg, rp)
	opts.attach(c)
	var ic *cache.Cache
	if opts.ICache != nil {
		ic = cache.New(*opts.ICache)
	}
	b := uopcache.NewBehavior(c, ic)
	var res Result
	if opts.RecordPerLookup {
		res.PerLookup = make([]uopcache.ProbeResult, 0, len(pws))
	}
	for i := range pws {
		pw := pws[i]
		o.Advance(i)
		kept := dec.Keep[i]
		var r uopcache.ProbeResult
		if pt != nil {
			rp.curKeepA[pt.KeyID(i)] = kept
			r = b.AccessIndexed(pt, i)
		} else {
			rp.curKeep[pw.Start] = kept
			r = b.Access(pw)
		}
		if opts.RecordPerLookup {
			res.PerLookup = append(res.PerLookup, r)
		}
		if !kept {
			if !opts.Features.Async {
				// Raw FOO applies its decision at lookup time:
				// evict the resident now and cancel the pending
				// insertion, oblivious to asynchrony.
				c.EvictKey(pw.Start)
				b.CancelInFlight(pw.Start)
			} else if !opts.Features.SelBypass {
				// A without SB: late insertions of unkept
				// windows are bypassed on arrival (the queue
				// safeguard), and residents linger until
				// pressure (lazy eviction via the policy).
				b.CancelInFlight(pw.Start)
			}
			// With SelBypass the window may still be inserted when
			// space allows; the policy bypasses it under pressure.
		}
	}
	b.Flush()
	res.Stats = c.Stats
	return res
}

// RunBelady replays the lookup sequence under Belady's algorithm.
func RunBelady(pws []trace.PW, cfg uopcache.Config, opts Options) Result {
	pt := opts.prepared(pws, cfg)
	var o *Oracle
	if pt != nil {
		o = NewOraclePrepared(pt)
	} else {
		o = NewOracle(pws)
	}
	bp := NewBelady(o)
	c := uopcache.New(cfg, bp)
	opts.attach(c)
	var ic *cache.Cache
	if opts.ICache != nil {
		ic = cache.New(*opts.ICache)
	}
	b := uopcache.NewBehavior(c, ic)
	var res Result
	if opts.RecordPerLookup {
		res.PerLookup = make([]uopcache.ProbeResult, 0, len(pws))
	}
	for i := range pws {
		o.Advance(i)
		var r uopcache.ProbeResult
		if pt != nil {
			r = b.AccessIndexed(pt, i)
		} else {
			r = b.Access(pws[i])
		}
		if opts.RecordPerLookup {
			res.PerLookup = append(res.PerLookup, r)
		}
	}
	b.Flush()
	res.Stats = c.Stats
	return res
}

// RunFLACK replays under the full FLACK policy (all features).
func RunFLACK(pws []trace.PW, cfg uopcache.Config, opts Options) Result {
	opts.Features = FLACKFeatures()
	return RunFOO(pws, cfg, opts)
}
