package core_test

import (
	"reflect"
	"testing"

	"uopsim/internal/artifact"
	"uopsim/internal/core"
	"uopsim/internal/offline"
	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
)

// TestPreparedBehaviorEquivalence pins the tentpole's lossless contract:
// attaching a PreparedTrace (and a plan cache) to a behaviour run changes
// nothing about the result, for every policy name, per-lookup records
// included. The prepared run is the one all experiments now take, so this
// is the guard behind the byte-identical-CSV acceptance criterion.
func TestPreparedBehaviorEquivalence(t *testing.T) {
	cfg := core.DefaultConfig()
	_, pws, err := core.TraceFor("kafka", 4000, 0)
	if err != nil {
		t.Fatal(err)
	}
	pt := uopcache.Prepare(cfg.UopCache, pws)
	store, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	plans := offline.NewPlanStore(store)
	names := append(core.PolicyNames(), core.OfflineNames()...)
	for _, name := range names {
		for _, record := range []bool{false, true} {
			plain, err := core.RunBehaviorByName(name, pws, cfg, core.BehaviorOptions{RecordPerLookup: record})
			if err != nil {
				t.Fatalf("%s (plain): %v", name, err)
			}
			prep, err := core.RunBehaviorByName(name, pws, cfg, core.BehaviorOptions{
				RecordPerLookup: record, Prepared: pt, Plans: plans,
			})
			if err != nil {
				t.Fatalf("%s (prepared): %v", name, err)
			}
			if !reflect.DeepEqual(plain, prep) {
				t.Errorf("%s (record=%v): prepared run diverged:\nplain: %+v\nprep:  %+v",
					name, record, plain.Stats, prep.Stats)
			}
		}
	}
	// The plan cache must have actually been exercised by foo/flack above.
	if st := store.Stats()["plan"]; st.Hits+st.Misses == 0 {
		t.Error("plan cache saw no traffic across foo/flack runs")
	}
}

// TestMismatchedPreparedIgnored: a PreparedTrace built under a different
// geometry, or over a different sequence, must be silently ignored — wrong
// columns must never leak into a run.
func TestMismatchedPreparedIgnored(t *testing.T) {
	cfg := core.DefaultConfig()
	_, pws, err := core.TraceFor("kafka", 3000, 0)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := core.RunBehaviorByName("lru", pws, cfg, core.BehaviorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	other := cfg.UopCache
	other.Ways = cfg.UopCache.Ways / 2
	wrongGeom := uopcache.Prepare(other, pws)
	_, otherPWs, err := core.TraceFor("kafka", 3000, 1)
	if err != nil {
		t.Fatal(err)
	}
	wrongSeq := uopcache.Prepare(cfg.UopCache, otherPWs)
	for label, pt := range map[string]*trace.PreparedTrace{
		"geometry": wrongGeom,
		"sequence": wrongSeq,
	} {
		got, err := core.RunBehaviorByName("lru", pws, cfg, core.BehaviorOptions{Prepared: pt})
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if !reflect.DeepEqual(plain, got) {
			t.Errorf("mismatched prepared trace (%s) changed the result", label)
		}
	}
}

// TestPreparedTimingEquivalence: the timing model with prepared/plan
// attachments produces the identical result for the offline policies.
func TestPreparedTimingEquivalence(t *testing.T) {
	cfg := core.DefaultConfig()
	blocks, pws, err := core.TraceFor("kafka", 4000, 0)
	if err != nil {
		t.Fatal(err)
	}
	pt := uopcache.Prepare(cfg.UopCache, pws)
	store, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	plans := offline.NewPlanStore(store)
	for _, name := range []string{"belady", "foo", "flack", "lru"} {
		plain, err := core.RunTimingByName(name, blocks, pws, cfg, nil)
		if err != nil {
			t.Fatalf("%s (plain): %v", name, err)
		}
		prep, err := core.RunTimingByNameWith(name, blocks, pws, cfg, nil, core.TimingOptions{
			Prepared: pt, Plans: plans,
		})
		if err != nil {
			t.Fatalf("%s (prepared): %v", name, err)
		}
		if !reflect.DeepEqual(plain, prep) {
			t.Errorf("%s: prepared timing diverged:\nplain: %+v\nprep:  %+v", name, plain, prep)
		}
	}
}

// TestTraceForCachedEquivalence: the cached trace path returns bit-equal
// blocks and windows, cold and warm, and the warm read is a verified hit.
func TestTraceForCachedEquivalence(t *testing.T) {
	store, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	plainBlocks, plainPWs, err := core.TraceFor("postgres", 3000, 2)
	if err != nil {
		t.Fatal(err)
	}
	cold, coldPWs, err := core.TraceForCached("postgres", 3000, 2, store)
	if err != nil {
		t.Fatal(err)
	}
	warm, warmPWs, err := core.TraceForCached("postgres", 3000, 2, store)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plainBlocks, cold) || !reflect.DeepEqual(plainBlocks, warm) {
		t.Fatal("cached blocks differ from generated blocks")
	}
	if !reflect.DeepEqual(plainPWs, coldPWs) || !reflect.DeepEqual(plainPWs, warmPWs) {
		t.Fatal("cached windows differ from generated windows")
	}
	st := store.Stats()["trace"]
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("trace cache stats = %+v, want 1 miss then 1 hit", st)
	}
}
