package core_test

import (
	"strings"
	"testing"

	"uopsim/internal/core"
	"uopsim/internal/policy"
	"uopsim/internal/profiles"
	"uopsim/internal/uopcache"
)

func TestDefaultConfigMatchesTable1(t *testing.T) {
	c := core.DefaultConfig()
	if c.UopCache.Entries != 512 || c.UopCache.Ways != 8 || c.UopCache.UopsPerEntry != 8 {
		t.Errorf("uop cache = %+v", c.UopCache)
	}
	if c.L1I.SizeBytes != 32<<10 || c.L1I.Ways != 8 || c.L1I.LineBytes != 64 {
		t.Errorf("L1i = %+v", c.L1I)
	}
	if c.Branch.BTBEntries != 8192 || c.Branch.RASEntries != 32 || c.Branch.IBTBEntries != 4096 {
		t.Errorf("branch = %+v", c.Branch)
	}
	if c.Frontend.DecodeWidth != 4 || c.Frontend.DecodeLatency != 5 {
		t.Errorf("frontend = %+v", c.Frontend)
	}
	if c.Backend.Width != 6 || c.Backend.ROB != 256 {
		t.Errorf("backend = %+v", c.Backend)
	}
	if err := c.UopCache.Validate(); err != nil {
		t.Error(err)
	}
}

func TestZen4ConfigLarger(t *testing.T) {
	z3, z4 := core.DefaultConfig(), core.Zen4Config()
	if z4.UopCache.Entries <= z3.UopCache.Entries {
		t.Error("Zen4 uop cache should be larger")
	}
	if z4.Branch.BTBEntries <= z3.Branch.BTBEntries {
		t.Error("Zen4 BTB should be larger")
	}
	if err := z4.UopCache.Validate(); err != nil {
		t.Error(err)
	}
}

func TestNewPolicyAllNames(t *testing.T) {
	cfg := core.DefaultConfig()
	_, pws, err := core.TraceFor("kafka", 3000, 0)
	if err != nil {
		t.Fatal(err)
	}
	prof := profiles.Collect(pws, cfg.UopCache, profiles.SourceFLACK)
	for _, name := range core.PolicyNames() {
		p, err := core.NewPolicy(name, prof, cfg.UopCache, policy.FURBYSConfig{})
		if err != nil {
			t.Errorf("NewPolicy(%s): %v", name, err)
			continue
		}
		if p.Name() != name {
			t.Errorf("policy name %q != %q", p.Name(), name)
		}
	}
	if _, err := core.NewPolicy("nosuch", nil, cfg.UopCache, policy.FURBYSConfig{}); err == nil {
		t.Error("unknown policy should error")
	}
	if _, err := core.NewPolicy("furbys", nil, cfg.UopCache, policy.FURBYSConfig{}); err == nil {
		t.Error("furbys without profile should error")
	}
	if _, err := core.NewPolicy("thermometer", nil, cfg.UopCache, policy.FURBYSConfig{}); err == nil {
		t.Error("thermometer without profile should error")
	}
}

func TestTraceForUnknownApp(t *testing.T) {
	if _, _, err := core.TraceFor("nosuch", 100, 0); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Errorf("err = %v", err)
	}
}

func TestRunBehaviorRecordsLookups(t *testing.T) {
	cfg := core.DefaultConfig()
	_, pws, _ := core.TraceFor("python", 5000, 0)
	res := core.RunBehavior(pws, cfg, policy.NewLRU(), core.BehaviorOptions{RecordPerLookup: true})
	if len(res.PerLookup) != len(pws) {
		t.Fatalf("PerLookup %d != %d", len(res.PerLookup), len(pws))
	}
	if res.Stats.Lookups != uint64(len(pws)) {
		t.Errorf("lookups = %d", res.Stats.Lookups)
	}
	var hit, miss uint64
	for _, r := range res.PerLookup {
		hit += uint64(r.HitUops)
		miss += uint64(r.MissUops)
	}
	if hit != res.Stats.UopsHit || miss != res.Stats.UopsMissed {
		t.Error("per-lookup outcomes disagree with aggregate stats")
	}
}

func TestRunBehaviorByNameAll(t *testing.T) {
	cfg := core.DefaultConfig()
	_, pws, _ := core.TraceFor("kafka", 8000, 0)
	names := append(core.PolicyNames(), core.OfflineNames()...)
	lruMiss := uint64(0)
	for _, name := range names {
		res, err := core.RunBehaviorByName(name, pws, cfg, core.BehaviorOptions{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Stats.UopsRequested == 0 {
			t.Errorf("%s: no uops requested", name)
		}
		if name == "lru" {
			lruMiss = res.Stats.UopsMissed
		}
		if name == "furbys" && res.FURBYS == nil {
			t.Error("furbys run missing FURBYS stats")
		}
	}
	// FLACK must beat LRU on a real workload.
	flack, _ := core.RunBehaviorByName("flack", pws, cfg, core.BehaviorOptions{})
	if flack.Stats.UopsMissed >= lruMiss {
		t.Errorf("FLACK (%d missed uops) did not beat LRU (%d)", flack.Stats.UopsMissed, lruMiss)
	}
	if _, err := core.RunBehaviorByName("nosuch", pws, cfg, core.BehaviorOptions{}); err == nil {
		t.Error("unknown name should error")
	}
}

func TestRunBehaviorWithICacheInvalidates(t *testing.T) {
	cfg := core.DefaultConfig()
	_, pws, _ := core.TraceFor("clang", 30000, 0)
	res := core.RunBehavior(pws, cfg, policy.NewLRU(), core.BehaviorOptions{WithICache: true})
	if res.Stats.Invalidations == 0 {
		t.Error("no inclusive invalidations under icache pressure")
	}
	perfect := core.RunBehavior(pws, cfg, policy.NewLRU(), core.BehaviorOptions{})
	if perfect.Stats.Invalidations != 0 {
		t.Error("perfect icache should never invalidate")
	}
	if res.Stats.UopsMissed < perfect.Stats.UopsMissed {
		t.Error("inclusive invalidations should not reduce misses")
	}
}

func TestRunTimingProducesIPCAndPower(t *testing.T) {
	cfg := core.DefaultConfig()
	blocks, _, _ := core.TraceFor("kafka", 15000, 0)
	res := core.RunTiming(blocks, cfg, policy.NewLRU())
	if res.Frontend.IPC() <= 0 {
		t.Error("IPC <= 0")
	}
	if res.Power.Total() <= 0 || res.PPW <= 0 {
		t.Error("power model returned nothing")
	}
	if res.Power.Decoder <= 0 || res.Power.UopCache <= 0 {
		t.Errorf("breakdown = %+v", res.Power)
	}
}

func TestMissReduction(t *testing.T) {
	base := uopcache.Stats{UopsMissed: 100}
	other := uopcache.Stats{UopsMissed: 80}
	if got := core.MissReduction(base, other); got != 0.2 {
		t.Errorf("reduction = %v", got)
	}
	if core.MissReduction(uopcache.Stats{}, other) != 0 {
		t.Error("zero baseline should yield 0")
	}
	worse := uopcache.Stats{UopsMissed: 120}
	if core.MissReduction(base, worse) >= 0 {
		t.Error("regression should be negative")
	}
}

func TestPolicyNameLists(t *testing.T) {
	if len(core.PolicyNames()) != 9 || len(core.OfflineNames()) != 3 {
		t.Errorf("name lists: %v %v", core.PolicyNames(), core.OfflineNames())
	}
}
