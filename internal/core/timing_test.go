package core_test

import (
	"testing"

	"uopsim/internal/core"
)

func TestRunTimingByNameAllPolicies(t *testing.T) {
	cfg := core.DefaultConfig()
	blocks, pws, err := core.TraceFor("kafka", 10000, 0)
	if err != nil {
		t.Fatal(err)
	}
	names := append(core.PolicyNames(), core.OfflineNames()...)
	ipcs := map[string]float64{}
	for _, name := range names {
		res, err := core.RunTimingByName(name, blocks, pws, cfg, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Frontend.IPC() <= 0 {
			t.Errorf("%s: IPC = %v", name, res.Frontend.IPC())
		}
		if res.PPW <= 0 {
			t.Errorf("%s: PPW = %v", name, res.PPW)
		}
		ipcs[name] = res.Frontend.IPC()
	}
	// FLACK must not have a lower IPC than LRU on this workload.
	if ipcs["flack"] < ipcs["lru"]*0.999 {
		t.Errorf("flack IPC %.4f below lru %.4f", ipcs["flack"], ipcs["lru"])
	}
	if _, err := core.RunTimingByName("nosuch", blocks, pws, cfg, nil); err == nil {
		t.Error("unknown policy should error")
	}
}

func TestTimingDeterministicByName(t *testing.T) {
	cfg := core.DefaultConfig()
	blocks, pws, err := core.TraceFor("python", 8000, 0)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := core.RunTimingByName("furbys", blocks, pws, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := core.RunTimingByName("furbys", blocks, pws, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Frontend.Cycles != r2.Frontend.Cycles || r1.Power.Total() != r2.Power.Total() {
		t.Error("timing-by-name not deterministic")
	}
}

func TestNonInclusiveNeverWorse(t *testing.T) {
	cfg := core.DefaultConfig()
	blocks, _, err := core.TraceFor("clang", 30000, 0)
	if err != nil {
		t.Fatal(err)
	}
	incl, err := core.RunTimingByName("lru", blocks, nil, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Frontend.NonInclusive = true
	non, err := core.RunTimingByName("lru", blocks, nil, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if non.Frontend.UopCache.Invalidations != 0 {
		t.Errorf("non-inclusive run invalidated %d windows", non.Frontend.UopCache.Invalidations)
	}
	if incl.Frontend.UopCache.Invalidations == 0 {
		t.Error("inclusive clang run should invalidate under L1i pressure")
	}
	if non.Frontend.UopCache.UopMissRate() > incl.Frontend.UopCache.UopMissRate() {
		t.Errorf("non-inclusive miss rate %.4f worse than inclusive %.4f",
			non.Frontend.UopCache.UopMissRate(), incl.Frontend.UopCache.UopMissRate())
	}
}
