package core_test

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"uopsim/internal/core"
	"uopsim/internal/uopcache"
)

// -update-golden regenerates testdata/golden_stats.json from the current
// implementation. Only do this when a simulator-visible behaviour change is
// intentional; performance work must leave the file untouched.
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_stats.json")

// goldenEntry pins one (policy, app, config) cell of the behaviour simulator.
type goldenEntry struct {
	Policy string         `json:"policy"`
	App    string         `json:"app"`
	ICache bool           `json:"icache"`
	Stats  uopcache.Stats `json:"stats"`
}

type goldenFile struct {
	// Blocks is the trace length the entries were generated at.
	Blocks  int           `json:"blocks"`
	Entries []goldenEntry `json:"entries"`
	// TimingIPC pins the timing model per policy (app kafka, same trace).
	TimingIPC map[string]string `json:"timing_ipc"`
}

const goldenBlocks = 4000

// collectGolden runs every online and offline policy over small kafka and
// postgres traces, with and without the inclusive L1i, and hashes a few
// timing-mode IPC figures. Together these pin the exact decision sequence of
// the cache, every policy, and the offline solver: any change to eviction
// order, tie-breaking, or flow routing shifts at least one counter.
func collectGolden(t *testing.T) goldenFile {
	t.Helper()
	out := goldenFile{Blocks: goldenBlocks, TimingIPC: map[string]string{}}
	cfg := core.DefaultConfig()
	names := append(append([]string{}, core.PolicyNames()...), core.OfflineNames()...)
	for _, app := range []string{"kafka", "postgres"} {
		_, pws, err := core.TraceFor(app, goldenBlocks, 0)
		if err != nil {
			t.Fatalf("TraceFor(%s): %v", app, err)
		}
		for _, name := range names {
			for _, ic := range []bool{false, true} {
				r, err := core.RunBehaviorByName(name, pws, cfg, core.BehaviorOptions{WithICache: ic, Workers: 1})
				if err != nil {
					t.Fatalf("RunBehaviorByName(%s, %s): %v", name, app, err)
				}
				out.Entries = append(out.Entries, goldenEntry{Policy: name, App: app, ICache: ic, Stats: r.Stats})
			}
		}
	}
	blocks, pws, err := core.TraceFor("kafka", goldenBlocks, 0)
	if err != nil {
		t.Fatalf("TraceFor(kafka): %v", err)
	}
	_ = pws
	for _, name := range []string{"lru", "furbys", "flack"} {
		tr, err := core.RunTimingByName(name, blocks, pws, cfg, nil)
		if err != nil {
			t.Fatalf("RunTimingByName(%s): %v", name, err)
		}
		// Hash the IPC text rather than storing a float: identical runs
		// produce identical bits, and a hash diff is unambiguous.
		sum := sha256.Sum256([]byte(fmt.Sprintf("%.12g/%.12g", tr.Frontend.IPC(), tr.PPW)))
		out.TimingIPC[name] = hex.EncodeToString(sum[:8])
	}
	return out
}

// TestGoldenStats locks the simulator's observable behaviour to the
// committed snapshot: the dense slot-indexed hot path (and any future
// optimization) must reproduce the exact hit/miss/eviction counts of the
// map-based implementation it replaced.
func TestGoldenStats(t *testing.T) {
	path := filepath.Join("testdata", "golden_stats.json")
	got := collectGolden(t)
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d entries)", path, len(got.Entries))
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update-golden): %v", err)
	}
	var want goldenFile
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse golden: %v", err)
	}
	if want.Blocks != got.Blocks {
		t.Fatalf("golden generated at %d blocks, test runs %d", want.Blocks, got.Blocks)
	}
	if len(want.Entries) != len(got.Entries) {
		t.Fatalf("golden has %d entries, current run produced %d", len(want.Entries), len(got.Entries))
	}
	for i, w := range want.Entries {
		g := got.Entries[i]
		if w != g {
			t.Errorf("behaviour diverged at %s/%s icache=%v:\n  want %+v\n  got  %+v", w.Policy, w.App, w.ICache, w.Stats, g.Stats)
		}
	}
	for name, w := range want.TimingIPC {
		if g := got.TimingIPC[name]; g != w {
			t.Errorf("timing model diverged for %s: hash %s != golden %s", name, g, w)
		}
	}
}
