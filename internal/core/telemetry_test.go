package core_test

import (
	"bytes"
	"testing"

	"uopsim/internal/core"
	"uopsim/internal/policy"
	"uopsim/internal/telemetry"
)

// TestBehaviorTelemetryReconciles is the acceptance check for the
// instrumentation: a behaviour-mode run with both a metrics registry and an
// unsampled event sink attached must produce (a) uopcache_* counters equal to
// the Stats struct field-for-field, (b) an event trace whose per-kind counts
// equal the same Stats fields, and (c) histograms whose observation counts
// match the corresponding counters. The cache is shrunk so the run exercises
// evictions, partial hits and coalesced misses, not just cold misses.
func TestBehaviorTelemetryReconciles(t *testing.T) {
	_, pws, err := core.TraceFor("kafka", 8000, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.UopCache.Entries = 64 // force capacity pressure so evictions happen

	reg := telemetry.NewRegistry()
	var buf bytes.Buffer
	sink := telemetry.NewJSONLSink(&buf, 1)
	res, err := core.RunBehaviorByName("lru", pws, cfg, core.BehaviorOptions{
		Telemetry: core.Telemetry{Metrics: reg, Events: sink},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Lookups == 0 || st.Misses == 0 || st.Evictions == 0 {
		t.Fatalf("run too trivial to validate reconciliation: %+v", st)
	}

	// (a) Every exposed uopcache_* counter equals its Stats field.
	counters := []struct {
		name string
		want uint64
	}{
		{"uopcache_lookups_total", st.Lookups},
		{"uopcache_full_hits_total", st.FullHits},
		{"uopcache_partial_hits_total", st.PartialHits},
		{"uopcache_misses_total", st.Misses},
		{"uopcache_uops_requested_total", st.UopsRequested},
		{"uopcache_uops_hit_total", st.UopsHit},
		{"uopcache_uops_missed_total", st.UopsMissed},
		{"uopcache_insertions_total", st.Insertions},
		{"uopcache_entries_written_total", st.EntriesWritten},
		{"uopcache_bypasses_total", st.Bypasses},
		{"uopcache_evictions_total", st.Evictions},
		{"uopcache_invalidations_total", st.Invalidations},
	}
	for _, c := range counters {
		if got := reg.Counter(c.name).Value(); got != c.want {
			t.Errorf("%s = %d, Stats says %d", c.name, got, c.want)
		}
	}

	// (b) Event-kind counts reconcile with the same Stats fields.
	events, err := telemetry.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	kinds := telemetry.CountKinds(events)
	kindChecks := []struct {
		kind string
		want uint64
	}{
		{telemetry.EventHit, st.FullHits},
		{telemetry.EventPartial, st.PartialHits},
		{telemetry.EventMiss, st.Misses},
		{telemetry.EventInsert, st.Insertions},
		{telemetry.EventEvict, st.Evictions},
		{telemetry.EventBypass, st.Bypasses},
		{telemetry.EventInvalidate, st.Invalidations},
		{telemetry.EventCoalesce, reg.Counter("uopcache_coalesced_misses_total").Value()},
	}
	for _, c := range kindChecks {
		if got := kinds[c.kind]; got != c.want {
			t.Errorf("event kind %q count = %d, want %d", c.kind, got, c.want)
		}
	}
	if sink.Seen() != sink.Emitted() {
		t.Errorf("unsampled sink dropped events: seen %d, emitted %d", sink.Seen(), sink.Emitted())
	}

	// (c) Histogram observation counts match their driving counters.
	if got := reg.Histogram("uopcache_lookup_uops").Count(); got != st.Lookups {
		t.Errorf("uopcache_lookup_uops count = %d, want %d lookups", got, st.Lookups)
	}
	if got := reg.Histogram("uopcache_victim_cost_uops").Count(); got != st.Evictions {
		t.Errorf("uopcache_victim_cost_uops count = %d, want %d evictions", got, st.Evictions)
	}
	if got := reg.Histogram("uopcache_victim_reuse_age_lookups").Count(); got != st.Evictions {
		t.Errorf("uopcache_victim_reuse_age_lookups count = %d, want %d evictions", got, st.Evictions)
	}

	// Per-policy decision counters are wired in by RunBehavior.
	if got := reg.Counter("policy_lru_victim_calls_total").Value(); got < st.Evictions {
		t.Errorf("policy_lru_victim_calls_total = %d, want >= %d evictions", got, st.Evictions)
	}
	if reg.Counter("policy_lru_hits_total").Value() == 0 {
		t.Error("policy_lru_hits_total stayed zero")
	}

	// Perfect-icache behaviour mode never invalidates.
	if st.Invalidations != 0 {
		t.Errorf("invalidations = %d without an icache", st.Invalidations)
	}
}

// TestTimingTelemetryPublishes checks that a timing-mode run publishes the
// frontend_* aggregates alongside live uopcache_* counters.
func TestTimingTelemetryPublishes(t *testing.T) {
	blocks, _, err := core.TraceFor("kafka", 4000, 0)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	res := core.RunTimingObserved(blocks, core.DefaultConfig(), policy.NewLRU(), core.Telemetry{Metrics: reg})
	if res.Frontend.Cycles == 0 {
		t.Fatal("timing run produced no cycles")
	}
	if got := reg.Counter("frontend_cycles_total").Value(); got != res.Frontend.Cycles {
		t.Errorf("frontend_cycles_total = %d, want %d", got, res.Frontend.Cycles)
	}
	if reg.Counter("uopcache_lookups_total").Value() == 0 {
		t.Error("uopcache_lookups_total stayed zero in timing mode")
	}
	if reg.Gauge("frontend_ipc").Value() <= 0 {
		t.Error("frontend_ipc gauge not published")
	}
}
