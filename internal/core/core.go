// Package core is the simulator facade: it owns the full-system
// configuration (the paper's Table I, plus the Zen4 variant of Fig. 17),
// builds replacement policies by name, and runs the two simulation modes the
// paper's methodology uses — behaviour mode for miss-rate studies and timing
// mode for IPC and power. Everything in cmd/, examples/ and the benchmark
// harness goes through this package.
package core

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"uopsim/internal/artifact"
	"uopsim/internal/backend"
	"uopsim/internal/branch"
	"uopsim/internal/cache"
	"uopsim/internal/frontend"
	"uopsim/internal/offline"
	"uopsim/internal/policy"
	"uopsim/internal/power"
	"uopsim/internal/profiles"
	"uopsim/internal/telemetry"
	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
	"uopsim/internal/workload"
)

// Config is the full-system configuration.
type Config struct {
	Name     string
	UopCache uopcache.Config
	L1I      cache.Config
	Branch   branch.Config
	Frontend frontend.Config
	Backend  backend.Config
	Energy   power.EnergyTable
}

// DefaultConfig returns the paper's Table I (AMD Zen3-like) configuration.
func DefaultConfig() Config {
	return Config{
		Name:     "zen3",
		UopCache: uopcache.DefaultConfig(),
		L1I:      cache.Config{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8, LatencyCycles: 1},
		Branch:   branch.DefaultConfig(),
		Frontend: frontend.DefaultConfig(),
		Backend:  backend.DefaultConfig(),
		Energy:   power.DefaultTable(),
	}
}

// Zen4Config returns the larger-frontend configuration of Fig. 17: a bigger
// micro-op cache (6.75K µops on Zen4 ≈ 864 entries; we use 1024 to keep the
// set count a power of two), larger BTB and predictor, wider decode.
func Zen4Config() Config {
	c := DefaultConfig()
	c.Name = "zen4"
	c.UopCache.Entries = 1024
	c.Branch = branch.Zen4Config()
	c.Frontend.UopDeliver = 9
	c.Backend.Width = 8
	c.Backend.ROB = 320
	return c
}

// PolicyNames lists the online policies RunBehaviorByName accepts, in the
// paper's presentation order.
func PolicyNames() []string {
	return []string{"lru", "random", "srrip", "drrip", "ship++", "ghrp", "mockingjay", "thermometer", "furbys"}
}

// OfflineNames lists the offline policy names.
func OfflineNames() []string { return []string{"belady", "foo", "flack"} }

// NewPolicy constructs an online replacement policy by name. Profile-guided
// policies (thermometer, furbys) need a profile; fcfg tunes FURBYS (zero
// value = paper defaults).
func NewPolicy(name string, prof *profiles.Profile, ucCfg uopcache.Config, fcfg policy.FURBYSConfig) (uopcache.Policy, error) {
	switch name {
	case "lru":
		return policy.NewLRU(), nil
	case "random":
		return policy.NewRandom(1), nil
	case "srrip":
		return policy.NewSRRIP(), nil
	case "drrip":
		return policy.NewDRRIP(), nil
	case "ship++":
		return policy.NewSHiPPP(), nil
	case "ghrp":
		return policy.NewGHRP(), nil
	case "mockingjay":
		return policy.NewMockingjay(), nil
	case "thermometer":
		if prof == nil {
			return nil, fmt.Errorf("core: thermometer needs a profile")
		}
		return policy.NewThermometer(prof.ThermoClasses()), nil
	case "furbys":
		if prof == nil {
			return nil, fmt.Errorf("core: furbys needs a profile")
		}
		if fcfg.WeightBits == 0 {
			fcfg = policy.DefaultFURBYSConfig()
		}
		return policy.NewFURBYS(fcfg, prof.Weights(ucCfg, fcfg.WeightBits)), nil
	default:
		return nil, fmt.Errorf("core: unknown policy %q", name)
	}
}

// TraceFor generates an application's dynamic block trace and its PW lookup
// sequence (the paper's STEPS 1–2).
func TraceFor(app string, numBlocks, input int) ([]trace.Block, []trace.PW, error) {
	return TraceForCached(app, numBlocks, input, nil)
}

// traceKeyVersion invalidates cached block traces whenever the generator's
// semantics or the block codec change. Bump on either.
const traceKeyVersion = 1

// TraceKey content-addresses a generated block trace: SHA-256 over the key
// version, the application's full generator specification (every parameter
// that shapes the trace, including the layout seed), the block budget, and
// the input id. Changing any generator parameter in the workload catalog
// therefore invalidates stale cache entries automatically.
func TraceKey(spec workload.Spec, numBlocks, input int) string {
	specJSON, err := json.Marshal(spec)
	if err != nil {
		// A flat struct of scalars and strings cannot fail to marshal.
		panic("core: marshal workload spec: " + err.Error())
	}
	h := sha256.New()
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:4], traceKeyVersion)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(numBlocks))
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(input))
	h.Write(hdr[:])
	h.Write(specJSON)
	return hex.EncodeToString(h.Sum(nil))
}

// TraceForCached is TraceFor backed by a content-addressed artifact store:
// on a hit the block trace is read back instead of regenerated (and PW
// formation still runs, so the lookup sequence is identical either way). A
// nil store, a miss, or a corrupt entry all degrade to plain generation —
// the store can make a run faster, never different or broken.
func TraceForCached(app string, numBlocks, input int, store *artifact.Store) ([]trace.Block, []trace.PW, error) {
	spec, err := workload.Get(app)
	if err != nil {
		return nil, nil, err
	}
	var blocks []trace.Block
	if store != nil {
		key := TraceKey(spec, numBlocks, input)
		hit, _ := store.Get("trace", key, func(r io.Reader) error {
			var derr error
			blocks, derr = trace.ReadBlocks(r)
			return derr
		})
		if !hit {
			blocks = workload.GenerateSpec(spec, numBlocks, input)
			// Best-effort: a read-only cache directory only costs the
			// benefit (the store counts the error).
			_ = store.Put("trace", key, func(w io.Writer) error {
				return trace.WriteBlocks(w, blocks)
			})
		}
	} else {
		blocks = workload.GenerateSpec(spec, numBlocks, input)
	}
	return blocks, trace.FormPWs(blocks, 0), nil
}

// Telemetry bundles the optional observability attachments threaded into a
// run: a metrics registry receiving live uopcache_* (and per-policy)
// counters, and a structured event sink receiving the cache-decision trace.
// The zero value disables both.
type Telemetry struct {
	Metrics *telemetry.Registry
	Events  telemetry.EventSink
}

// attach wires the attachments into a cache and, when metrics are enabled,
// returns the policy wrapped with per-policy decision counters.
func (t Telemetry) attach(c *uopcache.Cache) {
	if t.Metrics != nil {
		c.AttachMetrics(t.Metrics)
	}
	if t.Events != nil {
		c.SetEventSink(t.Events)
	}
}

// instrument wraps pol with per-policy decision counters when metrics are
// attached.
func (t Telemetry) instrument(pol uopcache.Policy) uopcache.Policy {
	if t.Metrics == nil {
		return pol
	}
	return policy.Instrument(pol, t.Metrics)
}

// BehaviorOptions tunes a behaviour-mode run.
type BehaviorOptions struct {
	// Ctx, when non-nil, cancels the offline plan solve mid-run; callers
	// that set it must discard the result when Ctx.Err() != nil afterwards
	// (the plan, and hence the replay, is then incomplete). nil = never
	// cancelled. Online policies and replays are serial and run to
	// completion regardless.
	Ctx context.Context
	// WithICache models the inclusive L1i; off = perfect icache.
	WithICache bool
	// RecordPerLookup captures each lookup's outcome (for hotness and
	// profiling analyses).
	RecordPerLookup bool
	// Telemetry attaches observability to the run (zero value = off).
	Telemetry Telemetry
	// Workers bounds the offline plan solver's fan-out when the run goes
	// through the offline machinery (0 = GOMAXPROCS, 1 = serial). Replays
	// and online policies are inherently serial and unaffected.
	Workers int
	// Prepared, when non-nil and built over exactly this lookup sequence
	// under the run's micro-op cache geometry, supplies shared precomputed
	// per-window attributes (set index, footprint, occurrence index). A
	// mismatched Prepared is ignored — results are byte-identical either
	// way.
	Prepared *trace.PreparedTrace
	// Plans, when non-nil, caches solved FOO/FLACK keep-plans by content
	// key so warm runs skip the min-cost-flow solve. nil disables caching.
	Plans offline.PlanCache
}

// BehaviorResult is a behaviour-mode run's output.
type BehaviorResult struct {
	Stats     uopcache.Stats
	PerLookup []uopcache.ProbeResult
	// FURBYS carries FURBYS's decision-provenance counters when the
	// policy was FURBYS.
	FURBYS *policy.FURBYSStats
}

// RunBehavior drives a PW lookup sequence through the micro-op cache under
// an online policy.
func RunBehavior(pws []trace.PW, cfg Config, pol uopcache.Policy, opts BehaviorOptions) BehaviorResult {
	base := pol
	pol = opts.Telemetry.instrument(pol)
	c := uopcache.New(cfg.UopCache, pol)
	opts.Telemetry.attach(c)
	var ic *cache.Cache
	if opts.WithICache {
		ic = cache.New(cfg.L1I)
	}
	b := uopcache.NewBehavior(c, ic)
	pt := opts.Prepared
	if pt != nil && (pt.Sig() != cfg.UopCache.Sig() || !pt.SameSequence(pws)) {
		pt = nil
	}
	var res BehaviorResult
	switch {
	case opts.RecordPerLookup:
		res.PerLookup = make([]uopcache.ProbeResult, 0, len(pws))
		for i := range pws {
			if pt != nil {
				res.PerLookup = append(res.PerLookup, b.AccessIndexed(pt, i))
			} else {
				res.PerLookup = append(res.PerLookup, b.Access(pws[i]))
			}
		}
		b.Flush()
		res.Stats = c.Stats
	case pt != nil:
		res.Stats = b.RunPrepared(pt)
	default:
		res.Stats = b.Run(pws)
	}
	if f, ok := base.(*policy.FURBYS); ok {
		st := f.Stats
		res.FURBYS = &st
	}
	return res
}

// RunBehaviorByName builds the named policy (collecting a FLACK profile for
// the profile-guided ones from the same trace) and runs behaviour mode.
// Offline names (belady/foo/flack) run the offline machinery.
func RunBehaviorByName(name string, pws []trace.PW, cfg Config, opts BehaviorOptions) (BehaviorResult, error) {
	switch name {
	case "belady":
		r := offline.RunBelady(pws, cfg.UopCache, offlineOptions(cfg, opts))
		return BehaviorResult{Stats: r.Stats, PerLookup: r.PerLookup}, nil
	case "foo":
		r := offline.RunFOO(pws, cfg.UopCache, offlineOptions(cfg, opts))
		return BehaviorResult{Stats: r.Stats, PerLookup: r.PerLookup}, nil
	case "flack":
		r := offline.RunFLACK(pws, cfg.UopCache, offlineOptions(cfg, opts))
		return BehaviorResult{Stats: r.Stats, PerLookup: r.PerLookup}, nil
	}
	var prof *profiles.Profile
	if name == "thermometer" || name == "furbys" {
		prof = profiles.CollectWith(pws, cfg.UopCache, profiles.SourceFLACK, profiles.CollectOptions{
			Prepared: opts.Prepared, Plans: opts.Plans, Workers: opts.Workers,
		})
	}
	pol, err := NewPolicy(name, prof, cfg.UopCache, policy.FURBYSConfig{})
	if err != nil {
		return BehaviorResult{}, err
	}
	return RunBehavior(pws, cfg, pol, opts), nil
}

func offlineOptions(cfg Config, opts BehaviorOptions) offline.Options {
	o := offline.Options{
		Ctx:             opts.Ctx,
		RecordPerLookup: opts.RecordPerLookup,
		Metrics:         opts.Telemetry.Metrics,
		Events:          opts.Telemetry.Events,
		Workers:         opts.Workers,
		Prepared:        opts.Prepared,
		Plans:           opts.Plans,
	}
	if opts.WithICache {
		ic := cfg.L1I
		o.ICache = &ic
	}
	return o
}

// TimingResult bundles a timing run with its power breakdown.
type TimingResult struct {
	Frontend frontend.Result
	Power    power.Breakdown
	PPW      float64
}

// RunTiming drives a dynamic block trace through the full timing model
// under the given replacement policy and prices it with the energy table.
// Offline SchedulePolicy instances are bound to the cache's lookup counter
// so their plans stay aligned with the PW stream.
func RunTiming(blocks []trace.Block, cfg Config, pol uopcache.Policy) TimingResult {
	return RunTimingObserved(blocks, cfg, pol, Telemetry{})
}

// RunTimingObserved is RunTiming with observability attached: the cache's
// uopcache_* counters and decision events stream into tel during the run,
// and the frontend_* aggregates are published at the end.
func RunTimingObserved(blocks []trace.Block, cfg Config, pol uopcache.Policy, tel Telemetry) TimingResult {
	bp := branch.New(cfg.Branch)
	base := policy.Unwrap(pol)
	pol = tel.instrument(pol)
	uc := uopcache.New(cfg.UopCache, pol)
	tel.attach(uc)
	if sp, ok := base.(*offline.SchedulePolicy); ok {
		sp.BindPos(func() int { return int(uc.Stats.Lookups) })
	}
	return runTiming(blocks, cfg, bp, uc, tel)
}

func runTiming(blocks []trace.Block, cfg Config, bp *branch.Predictor, uc *uopcache.Cache, tel Telemetry) TimingResult {
	var l1i *cache.Cache
	if !cfg.Frontend.PerfectICache {
		l1i = cache.New(cfg.L1I)
	}
	be := backend.New(cfg.Backend)
	f := frontend.New(cfg.Frontend, bp, uc, l1i, be)
	res := f.RunBlocks(blocks)
	if tel.Metrics != nil {
		res.PublishMetrics(tel.Metrics)
	}
	pb := power.Compute(res, cfg.Energy)
	return TimingResult{Frontend: res, Power: pb, PPW: power.PPW(res, pb)}
}

// RunTimingByName builds the named policy — online or offline — and runs
// the timing model. Profile-guided policies collect a FLACK profile from the
// same trace when prof is nil.
func RunTimingByName(name string, blocks []trace.Block, pws []trace.PW, cfg Config, prof *profiles.Profile) (TimingResult, error) {
	return RunTimingByNameWith(name, blocks, pws, cfg, prof, TimingOptions{})
}

// RunTimingByNameObserved is RunTimingByName with observability attached.
func RunTimingByNameObserved(name string, blocks []trace.Block, pws []trace.PW, cfg Config, prof *profiles.Profile, tel Telemetry) (TimingResult, error) {
	return RunTimingByNameWith(name, blocks, pws, cfg, prof, TimingOptions{Telemetry: tel})
}

// TimingOptions bundles a by-name timing run's optional attachments:
// observability plus the shared prepared trace and keep-plan cache consumed
// by the offline schedule policies (both lossless; both nil-safe).
type TimingOptions struct {
	Telemetry Telemetry
	Prepared  *trace.PreparedTrace
	Plans     offline.PlanCache
	// Workers bounds the offline plan solver's fan-out (0 = GOMAXPROCS).
	Workers int
}

// RunTimingByNameWith is RunTimingByName with the full attachment set.
func RunTimingByNameWith(name string, blocks []trace.Block, pws []trace.PW, cfg Config, prof *profiles.Profile, opts TimingOptions) (TimingResult, error) {
	sched := offline.ScheduleOptions{Workers: opts.Workers, Prepared: opts.Prepared, Plans: opts.Plans}
	var pol uopcache.Policy
	switch name {
	case "belady":
		pol = offline.NewBeladyScheduleWith(pws, opts.Prepared)
	case "foo":
		pol = offline.NewFLACKScheduleWith(pws, cfg.UopCache, offline.Features{}, sched)
	case "flack":
		pol = offline.NewFLACKScheduleWith(pws, cfg.UopCache, offline.FLACKFeatures(), sched)
	default:
		if name == "thermometer" || name == "furbys" {
			if prof == nil {
				prof = profiles.CollectWith(pws, cfg.UopCache, profiles.SourceFLACK, profiles.CollectOptions{
					Prepared: opts.Prepared, Plans: opts.Plans, Workers: opts.Workers,
				})
			}
		}
		p, err := NewPolicy(name, prof, cfg.UopCache, policy.FURBYSConfig{})
		if err != nil {
			return TimingResult{}, err
		}
		pol = p
	}
	return RunTimingObserved(blocks, cfg, pol, opts.Telemetry), nil
}

// MissReduction is the paper's headline metric: the relative reduction in
// micro-op-level misses versus a baseline (positive = better).
func MissReduction(baseline, other uopcache.Stats) float64 {
	if baseline.UopsMissed == 0 {
		return 0
	}
	return (float64(baseline.UopsMissed) - float64(other.UopsMissed)) / float64(baseline.UopsMissed)
}
