// Package branch implements the frontend branch prediction stack of the
// paper's Table I configuration: a TAGE-lite conditional direction predictor
// (bimodal base + geometric-history tagged tables standing in for the 64KB
// TAGE-SC-L), an 8192-entry 4-way BTB, a 32-entry return address stack, and
// a 4096-entry indirect BTB. The timing simulator uses it for misprediction
// resteers and for branch-MPKI statistics (Table II); the behaviour-mode
// replacement studies do not need it.
package branch

import (
	"uopsim/internal/trace"
)

// Config sizes the predictor stack; DefaultConfig matches Table I.
type Config struct {
	BTBEntries  int
	BTBWays     int
	RASEntries  int
	IBTBEntries int
	// BimodalBits sizes the base table (2^bits counters).
	BimodalBits int
	// TaggedBits sizes each tagged table (2^bits entries).
	TaggedBits int
	// HistLens are the geometric global-history lengths of the tagged
	// tables.
	HistLens []int
}

// DefaultConfig returns the paper's Zen3-like predictor configuration.
func DefaultConfig() Config {
	return Config{
		BTBEntries:  8192,
		BTBWays:     4,
		RASEntries:  32,
		IBTBEntries: 4096,
		BimodalBits: 14,
		TaggedBits:  10,
		HistLens:    []int{8, 32, 128},
	}
}

// Zen4Config returns a larger frontend configuration for the paper's Fig. 17
// sensitivity study (bigger BTB and history).
func Zen4Config() Config {
	return Config{
		BTBEntries:  12288,
		BTBWays:     6,
		RASEntries:  48,
		IBTBEntries: 6144,
		BimodalBits: 15,
		TaggedBits:  11,
		HistLens:    []int{8, 32, 128, 256},
	}
}

// Stats counts predictor activity.
type Stats struct {
	Branches          uint64
	CondBranches      uint64
	DirMispredicts    uint64
	TargetMispredicts uint64
	BTBMisses         uint64
	Instructions      uint64
}

// Mispredicts returns total mispredictions (direction + target).
func (s Stats) Mispredicts() uint64 { return s.DirMispredicts + s.TargetMispredicts }

// MPKI returns branch mispredictions per kilo-instruction.
func (s Stats) MPKI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Mispredicts()) / float64(s.Instructions) * 1000
}

// Predictor is the combined frontend prediction stack.
type Predictor struct {
	cfg Config

	bimodal []uint8
	tagged  []taggedTable
	hist    uint64 // global history (newest outcome in bit 0)

	btb    *btb
	ras    []uint64
	rasTop int
	ibtb   []uint64

	Stats Stats
}

type taggedEntry struct {
	tag    uint16
	ctr    int8 // -4..3 (taken when >= 0)
	useful uint8
}

type taggedTable struct {
	entries []taggedEntry
	histLen int
}

// New builds a predictor.
func New(cfg Config) *Predictor {
	p := &Predictor{cfg: cfg}
	p.bimodal = make([]uint8, 1<<cfg.BimodalBits)
	for i := range p.bimodal {
		p.bimodal[i] = 1 // weakly not taken
	}
	for _, hl := range cfg.HistLens {
		p.tagged = append(p.tagged, taggedTable{
			entries: make([]taggedEntry, 1<<cfg.TaggedBits),
			histLen: hl,
		})
	}
	p.btb = newBTB(cfg.BTBEntries, cfg.BTBWays)
	p.ras = make([]uint64, cfg.RASEntries)
	p.ibtb = make([]uint64, cfg.IBTBEntries)
	return p
}

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return x
}

// foldHistory compresses the low histLen bits of the global history.
func foldHistory(hist uint64, histLen, outBits int) uint64 {
	if histLen < 64 {
		hist &= (1 << uint(histLen)) - 1
	}
	var folded uint64
	for hist != 0 {
		folded ^= hist & ((1 << uint(outBits)) - 1)
		hist >>= uint(outBits)
	}
	return folded
}

func (p *Predictor) taggedIndex(t int, pc uint64) (idx int, tag uint16) {
	tab := &p.tagged[t]
	h := foldHistory(p.hist, tab.histLen, p.cfg.TaggedBits)
	idx = int((mix64(pc) ^ h ^ uint64(t)*0x9E37) & uint64(len(tab.entries)-1))
	tag = uint16(mix64(pc^h*2654435761) & 0xFF)
	return idx, tag
}

// predictDir returns the predicted direction of a conditional branch and
// which provider made the prediction (-1 = bimodal).
func (p *Predictor) predictDir(pc uint64) (taken bool, provider int) {
	provider = -1
	bi := int(mix64(pc) & uint64(len(p.bimodal)-1))
	taken = p.bimodal[bi] >= 2
	for t := 0; t < len(p.tagged); t++ {
		idx, tag := p.taggedIndex(t, pc)
		if p.tagged[t].entries[idx].tag == tag {
			taken = p.tagged[t].entries[idx].ctr >= 0
			provider = t
		}
	}
	return taken, provider
}

// updateDir trains the direction predictor with the actual outcome.
func (p *Predictor) updateDir(pc uint64, taken, predicted bool, provider int) {
	bi := int(mix64(pc) & uint64(len(p.bimodal)-1))
	if provider < 0 {
		if taken && p.bimodal[bi] < 3 {
			p.bimodal[bi]++
		} else if !taken && p.bimodal[bi] > 0 {
			p.bimodal[bi]--
		}
	} else {
		idx, _ := p.taggedIndex(provider, pc)
		e := &p.tagged[provider].entries[idx]
		if taken && e.ctr < 3 {
			e.ctr++
		} else if !taken && e.ctr > -4 {
			e.ctr--
		}
		if predicted == taken && e.useful < 3 {
			e.useful++
		}
	}
	// On a misprediction, allocate in a longer-history table.
	if predicted != taken && provider < len(p.tagged)-1 {
		t := provider + 1
		idx, tag := p.taggedIndex(t, pc)
		e := &p.tagged[t].entries[idx]
		if e.useful == 0 {
			e.tag = tag
			if taken {
				e.ctr = 0
			} else {
				e.ctr = -1
			}
		} else {
			e.useful--
		}
	}
}

// Outcome reports how a dynamic block's terminating branch was predicted.
type Outcome struct {
	// Mispredicted is true when direction or target was wrong.
	Mispredicted bool
	// BTBMiss is true when the branch had no BTB entry (front-end
	// re-steer at decode, cheaper than a full misprediction).
	BTBMiss bool
}

// Process predicts and trains on a dynamic block's terminating branch,
// updating statistics. Blocks without branches only count instructions.
func (p *Predictor) Process(b trace.Block) Outcome {
	p.Stats.Instructions += uint64(b.NumInst)
	if !b.Kind.IsBranch() {
		return Outcome{}
	}
	p.Stats.Branches++
	var out Outcome
	pc := b.BranchPC

	// Target prediction via BTB (all branches consult it).
	btbTarget, btbHit := p.btb.lookup(pc)
	if !btbHit {
		p.Stats.BTBMisses++
		out.BTBMiss = true
	}

	switch b.Kind {
	case trace.BranchNone:
		// Unreachable: filtered by the IsBranch guard above. Listed so the
		// switch stays exhaustive if a new BranchKind is added.
	case trace.BranchCond:
		p.Stats.CondBranches++
		pred, provider := p.predictDir(pc)
		p.updateDir(pc, b.Taken, pred, provider)
		p.hist = p.hist<<1 | boolBit(b.Taken)
		if pred != b.Taken {
			p.Stats.DirMispredicts++
			out.Mispredicted = true
		} else if b.Taken && btbHit && btbTarget != b.Target {
			p.Stats.TargetMispredicts++
			out.Mispredicted = true
		}
	case trace.BranchRet:
		target := p.rasPop()
		if target != b.Target && b.Target != 0 {
			p.Stats.TargetMispredicts++
			out.Mispredicted = true
		}
	case trace.BranchCall:
		p.rasPush(b.FallThrough())
		p.hist = p.hist<<1 | 1
	case trace.BranchIndirect:
		idx := int(mix64(pc) & uint64(len(p.ibtb)-1))
		if p.ibtb[idx] != b.Target {
			p.Stats.TargetMispredicts++
			out.Mispredicted = true
		}
		p.ibtb[idx] = b.Target
		p.hist = p.hist<<1 | 1
	case trace.BranchUncond:
		if btbHit && btbTarget != b.Target {
			p.Stats.TargetMispredicts++
			out.Mispredicted = true
		}
	}
	if b.Taken {
		p.btb.update(pc, b.Target)
	}
	return out
}

func (p *Predictor) rasPush(addr uint64) {
	p.ras[p.rasTop%len(p.ras)] = addr
	p.rasTop++
}

func (p *Predictor) rasPop() uint64 {
	if p.rasTop == 0 {
		return 0
	}
	p.rasTop--
	return p.ras[p.rasTop%len(p.ras)]
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// --- BTB ---

type btbEntry struct {
	tag     uint64
	target  uint64
	valid   bool
	lastUse uint64
}

type btb struct {
	sets  [][]btbEntry
	clock uint64
}

func newBTB(entries, ways int) *btb {
	nsets := entries / ways
	sets := make([][]btbEntry, nsets)
	for i := range sets {
		sets[i] = make([]btbEntry, ways)
	}
	return &btb{sets: sets}
}

func (b *btb) index(pc uint64) (int, uint64) {
	h := mix64(pc)
	return int(h % uint64(len(b.sets))), h / uint64(len(b.sets))
}

func (b *btb) lookup(pc uint64) (uint64, bool) {
	b.clock++
	set, tag := b.index(pc)
	for i := range b.sets[set] {
		e := &b.sets[set][i]
		if e.valid && e.tag == tag {
			e.lastUse = b.clock
			return e.target, true
		}
	}
	return 0, false
}

func (b *btb) update(pc, target uint64) {
	b.clock++
	set, tag := b.index(pc)
	ways := b.sets[set]
	victim := 0
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].target = target
			ways[i].lastUse = b.clock
			return
		}
		if !ways[i].valid {
			victim = i
		} else if ways[victim].valid && ways[i].lastUse < ways[victim].lastUse {
			victim = i
		}
	}
	ways[victim] = btbEntry{tag: tag, target: target, valid: true, lastUse: b.clock}
}
