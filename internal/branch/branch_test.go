package branch

import (
	"math/rand"
	"testing"

	"uopsim/internal/trace"
)

func condBlock(pc uint64, taken bool, target uint64) trace.Block {
	return trace.Block{Addr: pc - 12, Bytes: 16, NumInst: 4, NumUops: 4,
		Kind: trace.BranchCond, Taken: taken, Target: pick(taken, target), BranchPC: pc}
}

func pick(b bool, t uint64) uint64 {
	if b {
		return t
	}
	return 0
}

func TestDefaultConfigSane(t *testing.T) {
	c := DefaultConfig()
	if c.BTBEntries != 8192 || c.BTBWays != 4 || c.RASEntries != 32 || c.IBTBEntries != 4096 {
		t.Errorf("config = %+v", c)
	}
	z := Zen4Config()
	if z.BTBEntries <= c.BTBEntries {
		t.Error("Zen4 BTB should be larger")
	}
}

// TestLearnsAlwaysTaken: a strongly biased branch must be predicted almost
// perfectly after warmup.
func TestLearnsAlwaysTaken(t *testing.T) {
	p := New(DefaultConfig())
	pc, tgt := uint64(0x100c), uint64(0x2000)
	var lateMiss int
	for i := 0; i < 1000; i++ {
		out := p.Process(condBlock(pc, true, tgt))
		if i > 100 && out.Mispredicted {
			lateMiss++
		}
	}
	if lateMiss > 0 {
		t.Errorf("%d mispredictions after warmup on always-taken branch", lateMiss)
	}
}

// TestLearnsAlternatingWithHistory: a perfectly alternating branch is
// predictable with global history (the tagged tables must catch it).
func TestLearnsAlternatingWithHistory(t *testing.T) {
	p := New(DefaultConfig())
	pc, tgt := uint64(0x100c), uint64(0x2000)
	var lateMiss, total int
	for i := 0; i < 4000; i++ {
		taken := i%2 == 0
		out := p.Process(condBlock(pc, taken, tgt))
		if i > 2000 {
			total++
			if out.Mispredicted {
				lateMiss++
			}
		}
	}
	if frac := float64(lateMiss) / float64(total); frac > 0.2 {
		t.Errorf("alternating branch mispredicted %.1f%% after warmup", 100*frac)
	}
}

// TestRandomBranchMispredictsOften: an unpredictable branch should hover
// near 50% mispredictions — the predictor must not cheat.
func TestRandomBranchMispredictsOften(t *testing.T) {
	p := New(DefaultConfig())
	rng := rand.New(rand.NewSource(3))
	pc, tgt := uint64(0x100c), uint64(0x2000)
	var miss, total int
	for i := 0; i < 4000; i++ {
		taken := rng.Intn(2) == 0
		out := p.Process(condBlock(pc, taken, tgt))
		if i > 500 {
			total++
			if out.Mispredicted {
				miss++
			}
		}
	}
	frac := float64(miss) / float64(total)
	if frac < 0.3 || frac > 0.7 {
		t.Errorf("random branch misprediction rate %.2f, want ~0.5", frac)
	}
}

func TestRASPredictsReturns(t *testing.T) {
	p := New(DefaultConfig())
	callPC, retPC := uint64(0x1010), uint64(0x5008)
	retAddr := uint64(0x1014)
	var missLate int
	for i := 0; i < 100; i++ {
		p.Process(trace.Block{Addr: 0x1000, Bytes: 20, NumInst: 5, NumUops: 5,
			Kind: trace.BranchCall, Taken: true, Target: 0x5000, BranchPC: callPC})
		out := p.Process(trace.Block{Addr: 0x5000, Bytes: 12, NumInst: 3, NumUops: 3,
			Kind: trace.BranchRet, Taken: true, Target: retAddr, BranchPC: retPC})
		if i > 0 && out.Mispredicted {
			missLate++
		}
	}
	if missLate != 0 {
		t.Errorf("%d return mispredictions with matched call/ret", missLate)
	}
}

func TestRASUnderflowSafe(t *testing.T) {
	p := New(DefaultConfig())
	out := p.Process(trace.Block{Addr: 0x5000, Bytes: 12, NumInst: 3, NumUops: 3,
		Kind: trace.BranchRet, Taken: true, Target: 0x1234, BranchPC: 0x5008})
	if !out.Mispredicted {
		t.Error("return with empty RAS should mispredict")
	}
}

func TestIBTBLearnsStableTarget(t *testing.T) {
	p := New(DefaultConfig())
	blk := trace.Block{Addr: 0x1000, Bytes: 12, NumInst: 3, NumUops: 3,
		Kind: trace.BranchIndirect, Taken: true, Target: 0x7000, BranchPC: 0x1008}
	var missLate int
	for i := 0; i < 50; i++ {
		out := p.Process(blk)
		if i > 2 && out.Mispredicted {
			missLate++
		}
	}
	if missLate != 0 {
		t.Errorf("%d indirect mispredictions on stable target", missLate)
	}
}

func TestBTBMissOnFirstSight(t *testing.T) {
	p := New(DefaultConfig())
	out := p.Process(condBlock(0x100c, true, 0x2000))
	if !out.BTBMiss {
		t.Error("first sight of a branch should miss the BTB")
	}
	out = p.Process(condBlock(0x100c, true, 0x2000))
	if out.BTBMiss {
		t.Error("second sight should hit the BTB")
	}
	if p.Stats.BTBMisses != 1 {
		t.Errorf("BTB misses = %d", p.Stats.BTBMisses)
	}
}

func TestBTBCapacityEviction(t *testing.T) {
	p := New(Config{BTBEntries: 8, BTBWays: 2, RASEntries: 4, IBTBEntries: 16,
		BimodalBits: 6, TaggedBits: 4, HistLens: []int{4}})
	// Stream many distinct branches through the 8-entry BTB.
	for i := 0; i < 100; i++ {
		pc := uint64(0x1000 + i*64)
		p.Process(trace.Block{Addr: pc - 12, Bytes: 16, NumInst: 4, NumUops: 4,
			Kind: trace.BranchUncond, Taken: true, Target: 0x9000, BranchPC: pc})
	}
	if p.Stats.BTBMisses < 90 {
		t.Errorf("BTB misses = %d, want ~100 with 8 entries", p.Stats.BTBMisses)
	}
}

func TestStatsAccounting(t *testing.T) {
	p := New(DefaultConfig())
	p.Process(trace.Block{Addr: 0x1000, Bytes: 16, NumInst: 4, NumUops: 4}) // no branch
	p.Process(condBlock(0x100c, true, 0x2000))
	if p.Stats.Instructions != 8 {
		t.Errorf("instructions = %d", p.Stats.Instructions)
	}
	if p.Stats.Branches != 1 || p.Stats.CondBranches != 1 {
		t.Errorf("stats = %+v", p.Stats)
	}
}

func TestMPKI(t *testing.T) {
	var s Stats
	if s.MPKI() != 0 {
		t.Error("empty MPKI")
	}
	s.Instructions = 10000
	s.DirMispredicts = 20
	s.TargetMispredicts = 5
	if got := s.MPKI(); got != 2.5 {
		t.Errorf("MPKI = %v, want 2.5", got)
	}
	if s.Mispredicts() != 25 {
		t.Error("Mispredicts")
	}
}

func TestFoldHistory(t *testing.T) {
	if foldHistory(0, 16, 8) != 0 {
		t.Error("zero history folds to zero")
	}
	// Only low histLen bits participate.
	a := foldHistory(0xFFFF_0000_0000_00FF, 8, 8)
	b := foldHistory(0x0000_0000_0000_00FF, 8, 8)
	if a != b {
		t.Error("bits above histLen leaked into fold")
	}
	if foldHistory(0x1FF, 9, 8) != (0xFF ^ 0x1) {
		t.Errorf("fold = %#x", foldHistory(0x1FF, 9, 8))
	}
}
