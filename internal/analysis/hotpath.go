package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Hotpath enforces allocation discipline in functions marked with a
// //simlint:hotpath doc comment (the micro-op cache Lookup/Insert, policy
// decision methods, and the frontend dispatch). The simulator's throughput
// budget — sweeping 11 applications across dozens of configurations — dies by
// a thousand per-lookup allocations, and the existing AllocsPerRun tests only
// cover the paths a test happens to drive; this check covers them all.
//
// Inside a marked function, and inside every unmarked function it reaches
// through static calls, the following are violations:
//
//   - slice or map composite literals, and address-taken composite literals
//     (&T{...}) — both heap-allocate;
//   - append to a slice that has no visible make(...) preallocation in the
//     same function;
//   - any fmt.* call;
//   - non-constant string concatenation;
//   - implicit conversion of a non-interface value to an interface parameter
//     (boxing), except in panic arguments (a dying run may allocate);
//   - function literals (closure creation allocates).
//
// Reachability comes from the shared module call graph (callgraph.go),
// following only its static edges: interface calls are deliberately not
// followed — every Policy implementation is expected to carry its own
// marker, which is what the satellite annotations do. Marked callees are
// skipped — they are checked in their own right. `make` itself is
// deliberately allowed: capacity-managed allocation is the approved pattern,
// unbounded growth is the anti-pattern.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "forbid allocating constructs in //simlint:hotpath functions and everything they statically call",
	Run:  runHotpath,
}

func runHotpath(pass *Pass) {
	prog := pass.Prog
	graph := prog.CallGraph()

	// Roots: every function carrying the marker, in graph (load) order.
	type rootedFn struct {
		fn   *types.Func
		decl *ast.FuncDecl
		via  string // "" for roots; otherwise the marked entry point
	}
	var queue []rootedFn
	marked := map[*types.Func]bool{}
	for _, fn := range graph.Funcs {
		fd := prog.declOf(fn)
		if fd == nil || fd.Body == nil || !isHotpathMarked(fd) {
			continue
		}
		marked[fn] = true
		queue = append(queue, rootedFn{fn: fn, decl: fd})
	}

	// BFS over the graph's static edges; each reachable function is checked
	// once, attributed to the first marked entry point that reached it.
	seen := map[*types.Func]bool{}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if seen[cur.fn] {
			continue
		}
		seen[cur.fn] = true

		entry := cur.via
		if entry == "" {
			entry = funcDisplayName(cur.fn)
		}
		checkHotBody(pass, cur.decl, cur.fn, cur.via)

		for _, edge := range graph.Callees(cur.fn) {
			if edge.Kind != CallStatic {
				continue // interface dispatch: satellite markers cover it
			}
			callee := edge.Callee
			if marked[callee] || seen[callee] {
				continue
			}
			decl := prog.declOf(callee)
			if decl == nil || decl.Body == nil {
				continue // no source: stdlib or export-data-only
			}
			queue = append(queue, rootedFn{fn: callee, decl: decl, via: entry})
		}
	}
}

// funcDisplayName renders pkg.Func or pkg.(*T).Method for diagnostics.
func funcDisplayName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return fmt.Sprintf("%s.%s", types.TypeString(sig.Recv().Type(), types.RelativeTo(fn.Pkg())), fn.Name())
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// checkHotBody applies the allocation rules to one function on the hot path.
// via is empty for functions carrying the marker themselves and names the
// marked entry point for functions reached transitively.
func checkHotBody(pass *Pass, decl *ast.FuncDecl, fn *types.Func, via string) {
	info := pass.Prog.Info
	where := ""
	if via != "" {
		where = fmt.Sprintf(" (%s is reached from hot path %s)", funcDisplayName(fn), via)
	}
	report := func(pos token.Pos, format string, args ...any) {
		pass.Reportf(pos, "%s%s", fmt.Sprintf(format, args...), where)
	}

	prealloc := preallocatedVars(info, decl.Body)

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n.Pos(), "function literal on the hot path: closure creation allocates")
			return false // the literal's body runs via a func value; unresolvable anyway
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := n.X.(*ast.CompositeLit); ok {
					if !isSliceOrMapLit(info, cl) { // those are flagged at the literal itself
						report(n.Pos(), "address-taken composite literal escapes to the heap")
					}
				}
			}
		case *ast.CompositeLit:
			if isSliceOrMapLit(info, n) {
				report(n.Pos(), "%s composite literal allocates", typeKindName(info, n))
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(info, n) && info.Types[n].Value == nil {
				report(n.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringExpr(info, n.Lhs[0]) {
				report(n.Pos(), "string concatenation allocates")
			}
		case *ast.CallExpr:
			checkHotCall(pass, report, info, n, prealloc)
		}
		return true
	})
}

// checkHotCall applies the call-site rules: append preallocation, fmt bans,
// and interface boxing of arguments.
func checkHotCall(pass *Pass, report func(token.Pos, string, ...any), info *types.Info, call *ast.CallExpr, prealloc map[types.Object]bool) {
	// Conversions: T(x) with T an interface type boxes x.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if isInterface(tv.Type) && len(call.Args) == 1 && !isInterfaceExpr(info, call.Args[0]) {
			report(call.Pos(), "conversion to interface type boxes the operand")
		}
		return
	}

	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isB := info.Uses[id].(*types.Builtin); isB {
			switch id.Name {
			case "append":
				if len(call.Args) > 0 {
					if arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
						if prealloc[info.ObjectOf(arg)] {
							return
						}
						report(call.Pos(), "append to %s, which has no visible make(...) preallocation in this function", arg.Name)
						return
					}
					report(call.Pos(), "append to a non-preallocated slice expression")
				}
			case "panic":
				// A dying run may allocate; skip boxing of the argument.
			}
			return
		}
	}

	if fn := resolveCallee(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		report(call.Pos(), "fmt.%s on the hot path allocates", fn.Name())
		return
	}

	// Interface boxing of arguments to any call (static or dynamic).
	sig, ok := typeAsSignature(info, call.Fun)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			pt = params.At(i).Type()
		case sig.Variadic() && call.Ellipsis == token.NoPos:
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case params.Len() > 0:
			pt = params.At(params.Len() - 1).Type()
		}
		if pt == nil || !isInterface(pt) {
			continue
		}
		if isInterfaceExpr(info, arg) || isNilExpr(info, arg) || isPointerExpr(info, arg) {
			continue
		}
		report(arg.Pos(), "non-interface value passed to interface parameter boxes (allocates)")
	}
}

// preallocatedVars collects variables that are assigned a make(...) result
// anywhere in the body; append to those is treated as capacity-managed.
func preallocatedVars(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	mark := func(lhs ast.Expr, rhs ast.Expr) {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isBuiltin(info, call.Fun, "make") {
			return
		}
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil {
				out[obj] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i := range n.Lhs {
				if i < len(n.Rhs) {
					mark(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i := range n.Names {
				if i < len(n.Values) {
					mark(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return out
}

func isSliceOrMapLit(info *types.Info, cl *ast.CompositeLit) bool {
	tv, ok := info.Types[cl]
	if !ok {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

func typeKindName(info *types.Info, cl *ast.CompositeLit) string {
	if tv, ok := info.Types[cl]; ok {
		switch tv.Type.Underlying().(type) {
		case *types.Slice:
			return "slice"
		case *types.Map:
			return "map"
		}
	}
	return "composite"
}

func isStringExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isInterfaceExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Type != nil && isInterface(tv.Type)
}

// isPointerExpr exempts pointer arguments from the boxing rule: storing a
// pointer in an interface word does not allocate the pointee.
func isPointerExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, ok = tv.Type.Underlying().(*types.Pointer)
	return ok
}

func isNilExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// typeAsSignature extracts the signature of a callable expression.
func typeAsSignature(info *types.Info, fun ast.Expr) (*types.Signature, bool) {
	tv, ok := info.Types[fun]
	if !ok || tv.Type == nil {
		return nil, false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	return sig, ok
}
