package analysis

import (
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The golden harness: each fixture directory under testdata/src is a small
// self-contained package; `// want "regex"` trailing comments state the
// diagnostics expected on their line. Every diagnostic must match a want and
// every want must be matched.

var wantQuoted = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

func loadFixture(t *testing.T, dirs ...string) *Program {
	t.Helper()
	patterns := make([]string, len(dirs))
	for i, d := range dirs {
		patterns[i] = "./testdata/src/" + d
	}
	prog, err := Load(".", patterns...)
	if err != nil {
		t.Fatalf("Load(%v): %v", patterns, err)
	}
	return prog
}

func collectWants(t *testing.T, prog *Program) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "// want ")
					if !ok {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					quoted := wantQuoted.FindAllString(text, -1)
					if len(quoted) == 0 {
						t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
					}
					for _, q := range quoted {
						s, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
						}
						re, err := regexp.Compile(s)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, s, err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	return wants
}

func runGolden(t *testing.T, a *Analyzer, dirs ...string) {
	t.Helper()
	prog := loadFixture(t, dirs...)
	wants := collectWants(t, prog)
	for _, d := range Run(prog, []*Analyzer{a}) {
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched %q", w.file, w.line, w.re)
		}
	}
}

func TestDeterminismGolden(t *testing.T) { runGolden(t, Determinism, "determinism") }

// TestGoroutineGolden covers the raw-goroutine rule: `go` statements in
// scoped packages are flagged wherever they appear; fan-out must go through
// internal/parallel.
func TestGoroutineGolden(t *testing.T) { runGolden(t, Determinism, "goroutine") }

// TestDeterminismScoping proves packages outside determinismScope are exempt:
// the fixture repeats every banned construct and carries zero wants.
func TestDeterminismScoping(t *testing.T) { runGolden(t, Determinism, "outofscope") }

func TestHotpathGolden(t *testing.T) { runGolden(t, Hotpath, "hotpath") }

func TestRegistryPolicyGolden(t *testing.T) { runGolden(t, Registry, "registrypolicy") }

func TestRegistryExperimentsGolden(t *testing.T) { runGolden(t, Registry, "registryexp") }

func TestTelemetryGolden(t *testing.T) { runGolden(t, Telemetry, "telemetryfix") }

// TestTelemetryInspectGolden covers the introspection metric families
// (inspect_*, trace_*) added with the decision-level introspection layer.
func TestTelemetryInspectGolden(t *testing.T) { runGolden(t, Telemetry, "telemetryinspect") }

func TestExhaustiveGolden(t *testing.T) { runGolden(t, Exhaustive, "exhaustive") }

func TestLockcheckGolden(t *testing.T) { runGolden(t, Lockcheck, "lockcheck") }

// TestCtxflowGolden loads the library fixture and the main-package fixture
// together: the same rules produce findings in one and stay silent (except
// for the fresh-ctx-shadowing rule) in the other.
func TestCtxflowGolden(t *testing.T) { runGolden(t, Ctxflow, "ctxflow", "ctxflowcmd") }

func TestErrsinkGolden(t *testing.T) { runGolden(t, Errsink, "errsink") }

// TestIgnoreDirectives exercises the suppression contract end to end: valid
// directives (above the line and trailing) suppress, malformed ones do not
// and are themselves reported as "simlint" diagnostics.
func TestIgnoreDirectives(t *testing.T) {
	prog := loadFixture(t, "ignore")
	diags := Run(prog, All())

	var simlint, determinism []string
	for _, d := range diags {
		switch d.Analyzer {
		case "simlint":
			simlint = append(simlint, d.Message)
		case "determinism":
			determinism = append(determinism, d.String())
		default:
			t.Errorf("unexpected analyzer %q: %s", d.Analyzer, d)
		}
	}

	wantProblems := []string{
		"gives no reason",
		"unknown analyzer",
		"names no analyzer",
	}
	for _, w := range wantProblems {
		found := false
		for _, m := range simlint {
			if strings.Contains(m, w) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no simlint directive problem containing %q; got %q", w, simlint)
		}
	}
	if len(simlint) != len(wantProblems) {
		t.Errorf("got %d directive problems, want %d: %q", len(simlint), len(wantProblems), simlint)
	}

	// The well-formed directives in a and b suppress their time.Now findings;
	// the malformed ones in c and d do not.
	if len(determinism) != 2 {
		t.Errorf("got %d unsuppressed determinism findings, want 2 (c and d): %v", len(determinism), determinism)
	}
}

// TestStaleSuppression covers the rot guard: a well-formed directive that
// absorbs no finding is itself reported, and absorbed findings surface in
// Result.Suppressed with the directive's justification.
func TestStaleSuppression(t *testing.T) {
	prog := loadFixture(t, "staleignore")
	res := RunAll(prog, All())

	wantStale := map[int]bool{16: false, 20: false}
	for _, d := range res.Diagnostics {
		if d.Analyzer != "simlint" || !strings.Contains(d.Message, "suppresses nothing") {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		seen, tracked := wantStale[d.Pos.Line]
		if !tracked || seen {
			t.Errorf("stale finding at unexpected line %d: %s", d.Pos.Line, d)
			continue
		}
		wantStale[d.Pos.Line] = true
	}
	for line, seen := range wantStale {
		if !seen {
			t.Errorf("no stale-suppression finding at line %d", line)
		}
	}

	if len(res.Suppressed) != 1 {
		t.Fatalf("got %d suppressed findings, want 1: %v", len(res.Suppressed), res.Suppressed)
	}
	s := res.Suppressed[0]
	if s.Analyzer != "determinism" || s.Justification != "wall-clock used only for log timestamps" {
		t.Errorf("suppressed finding = %q justification %q; want determinism / the directive reason", s.Analyzer, s.Justification)
	}
}

// TestRepoClean is the enforcement backstop: the whole module must be
// simlint-clean, so a regression fails `go test` even where CI's dedicated
// simlint job is not run.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	prog, err := Load(".", "uopsim/...")
	if err != nil {
		t.Fatalf("Load(uopsim/...): %v", err)
	}
	diags := Run(prog, All())
	for _, d := range diags {
		t.Errorf("%s", d)
	}

	// Reconcile the static hot-path contract with the dynamic AllocsPerRun
	// tests: the annotations the suite enforces must actually be present on
	// the entry points the benchmarks measure.
	wantMarked := map[string]bool{
		"Lookup": false, "Insert": false, "servePW": false,
	}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && isHotpathMarked(fd) {
					if _, tracked := wantMarked[fd.Name.Name]; tracked {
						wantMarked[fd.Name.Name] = true
					}
				}
			}
		}
	}
	for name, seen := range wantMarked {
		if !seen {
			t.Errorf("expected a //simlint:hotpath marker on %s", name)
		}
	}
}
