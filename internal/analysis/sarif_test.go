package analysis

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// field walks nested JSON objects, failing the test when a step is missing
// or not an object.
func field(t *testing.T, v any, path ...string) any {
	t.Helper()
	for _, p := range path {
		obj, ok := v.(map[string]any)
		if !ok {
			t.Fatalf("SARIF: %q is not an object (looking for %v)", v, path)
		}
		v, ok = obj[p]
		if !ok {
			t.Fatalf("SARIF: missing required property %q (of %v)", p, path)
		}
	}
	return v
}

// TestWriteSARIF validates the emitted log against the SARIF 2.1.0 shape:
// every property the schema requires is present and typed correctly, rule
// indices are consistent with the rule array, URIs are SRCROOT-relative, and
// directive-absorbed findings carry their inSource suppression.
func TestWriteSARIF(t *testing.T) {
	prog := loadFixture(t, "staleignore")
	res := RunAll(prog, All())
	if len(res.Diagnostics) == 0 || len(res.Suppressed) == 0 {
		t.Fatalf("fixture must yield both active (%d) and suppressed (%d) findings", len(res.Diagnostics), len(res.Suppressed))
	}

	var buf bytes.Buffer
	if err := WriteSARIF(&buf, ".", All(), res); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	var log map[string]any
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}

	if v := field(t, log, "version"); v != "2.1.0" {
		t.Errorf("version = %v, want 2.1.0", v)
	}
	if s := field(t, log, "$schema").(string); !strings.Contains(s, "sarif-2.1.0") {
		t.Errorf("$schema = %q, want a sarif-2.1.0 schema reference", s)
	}
	runs := field(t, log, "runs").([]any)
	if len(runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(runs))
	}
	run := runs[0]

	if name := field(t, run, "tool", "driver", "name"); name != "simlint" {
		t.Errorf("driver name = %v, want simlint", name)
	}
	srcroot := field(t, run, "originalUriBaseIds", "SRCROOT", "uri").(string)
	if !strings.HasPrefix(srcroot, "file://") || !strings.HasSuffix(srcroot, "/") {
		t.Errorf("SRCROOT uri = %q, want an absolute file URI ending in /", srcroot)
	}

	rules := field(t, run, "tool", "driver", "rules").([]any)
	ruleIDs := make([]string, len(rules))
	for i, r := range rules {
		ruleIDs[i] = field(t, r, "id").(string)
		if doc := field(t, r, "shortDescription", "text").(string); doc == "" {
			t.Errorf("rule %s has an empty shortDescription", ruleIDs[i])
		}
	}
	for _, a := range All() {
		found := false
		for _, id := range ruleIDs {
			if id == a.Name {
				found = true
			}
		}
		if !found {
			t.Errorf("rule catalogue %v is missing analyzer %s", ruleIDs, a.Name)
		}
	}
	if ruleIDs[len(ruleIDs)-1] != "simlint" {
		t.Errorf("rule catalogue %v must end with the simlint pseudo-rule", ruleIDs)
	}

	results := field(t, run, "results").([]any)
	if want := len(res.Diagnostics) + len(res.Suppressed); len(results) != want {
		t.Fatalf("got %d results, want %d (active + suppressed)", len(results), want)
	}
	suppressed := 0
	for _, r := range results {
		id := field(t, r, "ruleId").(string)
		idx := int(field(t, r, "ruleIndex").(float64))
		if idx < 0 || idx >= len(ruleIDs) || ruleIDs[idx] != id {
			t.Errorf("result ruleIndex %d inconsistent with ruleId %q", idx, id)
		}
		if lvl := field(t, r, "level"); lvl != "error" {
			t.Errorf("result level = %v, want error", lvl)
		}
		if msg := field(t, r, "message", "text").(string); msg == "" {
			t.Error("result has an empty message")
		}
		locs := field(t, r, "locations").([]any)
		if len(locs) != 1 {
			t.Fatalf("result has %d locations, want 1", len(locs))
		}
		art := field(t, locs[0], "physicalLocation", "artifactLocation")
		if uri := field(t, art, "uri").(string); strings.HasPrefix(uri, "/") || strings.HasPrefix(uri, "file://") {
			t.Errorf("in-repo artifact uri %q should be SRCROOT-relative", uri)
		}
		if base := field(t, art, "uriBaseId"); base != "SRCROOT" {
			t.Errorf("artifact uriBaseId = %v, want SRCROOT", base)
		}
		if line := field(t, locs[0], "physicalLocation", "region", "startLine").(float64); line < 1 {
			t.Errorf("region startLine = %v, want >= 1", line)
		}
		if sup, ok := r.(map[string]any)["suppressions"]; ok {
			suppressed++
			sups := sup.([]any)
			if len(sups) != 1 {
				t.Fatalf("result has %d suppressions, want 1", len(sups))
			}
			if kind := field(t, sups[0], "kind"); kind != "inSource" {
				t.Errorf("suppression kind = %v, want inSource", kind)
			}
			if j := field(t, sups[0], "justification").(string); j != "wall-clock used only for log timestamps" {
				t.Errorf("suppression justification = %q, want the directive reason", j)
			}
		}
	}
	if suppressed != len(res.Suppressed) {
		t.Errorf("%d results carry suppressions, want %d", suppressed, len(res.Suppressed))
	}
}
