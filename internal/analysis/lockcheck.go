package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Lockcheck enforces the module's lock discipline over the shared call
// graph. Three rules:
//
//  1. A sync.Mutex/RWMutex acquired in a function must be released on every
//     path out of it — every return, the fall-through exit, and panic exits
//     (which only a deferred Unlock covers).
//  2. No potentially-blocking operation while a lock is held: channel send,
//     receive, or default-less select; WaitGroup/Cond Wait; time.Sleep;
//     os file I/O; or a call to any module function whose transitive
//     closure (over the call graph) performs one of those.
//  3. No lock-order inversion: if one function acquires lock B while
//     holding A and another acquires A while holding B, the pair can
//     deadlock under concurrency — the scheduler lock and the telemetry
//     registry lock being the live example this rule exists for.
//
// Lock identity is the mutex *variable*: a struct field (shared across all
// instances of the type — the granularity the module's one-lock-per-struct
// convention makes exact), a package-level var, or a local. Function
// literals are not walked: a closure runs on its creator's schedule, not at
// its creation site, so lock state inside one is the closure's own
// contract (the `flush := func() { // mu held }` idiom).
//
// The analysis is a path-sensitive abstract interpretation per function:
// branches fork the held-set, a branch that terminates (return, panic,
// os.Exit) drops out of the merge, and loops must leave the held-set
// unchanged. Holding a lock across a blocking call that is the documented
// design — the checkpoint journal serializing fsynced appends — carries a
// suppression with its reason.
var Lockcheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "mutexes released on every path, nothing blocking while held, no lock-order inversions",
	Run:  runLockcheck,
}

// lockOpAcquire/lockOpRelease classify the sync method names.
var lockMethodOps = map[string]bool{ // name -> is acquire
	"Lock": true, "RLock": true,
	"Unlock": false, "RUnlock": false,
}

// blockingOSFuncs are package-level os functions that perform file I/O.
var blockingOSFuncs = map[string]bool{
	"Create": true, "Open": true, "OpenFile": true, "ReadFile": true,
	"WriteFile": true, "Rename": true, "Remove": true, "RemoveAll": true,
	"Mkdir": true, "MkdirAll": true, "ReadDir": true, "Truncate": true,
}

// blockingFileMethods are *os.File methods that perform file I/O.
var blockingFileMethods = map[string]bool{
	"Read": true, "ReadAt": true, "Write": true, "WriteAt": true,
	"WriteString": true, "Sync": true, "Close": true, "Seek": true,
	"Truncate": true, "ReadFrom": true,
}

type lockChecker struct {
	pass  *Pass
	graph *CallGraph

	// names renders a lock object for diagnostics: pkg.Type.field for
	// struct fields, pkg.name for package vars, the bare name for locals.
	names map[types.Object]string

	// sites maps each call expression to its resolved callees.
	sites map[*ast.CallExpr][]CallEdge

	// summaries caches per-function facts for the transitive queries.
	summaries map[*types.Func]*lockSummary

	// orderEdges records "B acquired while holding A", first site wins;
	// orderList keeps insertion order for deterministic inversion reports.
	orderEdges map[[2]types.Object]token.Pos
	orderList  [][2]types.Object
	inProgress map[*types.Func]bool
}

// lockSummary is one function's contribution to the interprocedural facts.
type lockSummary struct {
	acquires []types.Object // locks acquired anywhere in the body
	blocking string         // first direct potentially-blocking op, "" if none
	// transitive results, memoized (computed = true once final)
	transBlocking   string
	transAcquires   []types.Object
	transComputed   bool
	transBlockingOK bool
}

func runLockcheck(pass *Pass) {
	prog := pass.Prog
	lc := &lockChecker{
		pass:       pass,
		graph:      prog.CallGraph(),
		names:      lockNames(prog),
		sites:      map[*ast.CallExpr][]CallEdge{},
		summaries:  map[*types.Func]*lockSummary{},
		orderEdges: map[[2]types.Object]token.Pos{},
		inProgress: map[*types.Func]bool{},
	}
	for _, fn := range lc.graph.Funcs {
		for _, e := range lc.graph.Callees(fn) {
			lc.sites[e.Site] = append(lc.sites[e.Site], e)
		}
	}
	for _, fn := range lc.graph.Funcs {
		lc.checkFunc(fn)
	}
	lc.reportInversions()
}

// lockNames builds the diagnostic rendering for every mutex-typed variable:
// fields get pkg.Type.field so the same lock reads identically wherever it
// is touched.
func lockNames(prog *Program) map[types.Object]string {
	names := map[types.Object]string{}
	for _, named := range moduleNamedTypes(prog) {
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if isMutexType(f.Type()) {
				names[f] = fmt.Sprintf("%s.%s.%s", named.Obj().Pkg().Name(), named.Obj().Name(), f.Name())
			}
		}
	}
	return names
}

func (lc *lockChecker) lockName(obj types.Object) string {
	if n, ok := lc.names[obj]; ok {
		return n
	}
	if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return obj.Name()
}

func isMutexType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// lockOpOf decodes a call as a mutex operation: the lock variable and
// whether it acquires. The variable is the last named component of the
// receiver chain — `c.sched.mu.Lock()` resolves to the mu field of the
// sched struct type, which is exactly the cross-function identity the
// order and hold analyses need.
func (lc *lockChecker) lockOpOf(call *ast.CallExpr) (obj types.Object, acquire, ok bool) {
	info := lc.pass.Prog.Info
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, false, false
	}
	acquire, known := lockMethodOps[sel.Sel.Name]
	if !known {
		return nil, false, false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if s, selOK := info.Selections[sel]; selOK {
		fn, isFn = s.Obj().(*types.Func)
	}
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, false, false
	}
	switch recv := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		return info.ObjectOf(recv), acquire, true
	case *ast.SelectorExpr:
		if s, selOK := info.Selections[recv]; selOK && s.Kind() == types.FieldVal {
			return s.Obj(), acquire, true
		}
		return info.ObjectOf(recv.Sel), acquire, true
	}
	return nil, false, false
}

// directBlocking describes a call that blocks by itself (no module source
// behind it): sync Wait, time.Sleep, os file I/O.
func (lc *lockChecker) directBlocking(call *ast.CallExpr) string {
	info := lc.pass.Prog.Info
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return ""
	}
	var fn *types.Func
	if s, ok := info.Selections[sel]; ok {
		fn, _ = s.Obj().(*types.Func)
	} else {
		fn, _ = info.Uses[sel.Sel].(*types.Func)
	}
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	name := fn.Name()
	switch fn.Pkg().Path() {
	case "sync":
		if name == "Wait" {
			return "sync " + recvTypeName(fn) + ".Wait"
		}
	case "time":
		if name == "Sleep" {
			return "time.Sleep"
		}
	case "os":
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if blockingFileMethods[name] && recvTypeName(fn) == "File" {
				return "os.File." + name + " (file I/O)"
			}
			return ""
		}
		if blockingOSFuncs[name] {
			return "os." + name + " (file I/O)"
		}
	}
	return ""
}

func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// summary computes fn's direct facts: locks it acquires anywhere and the
// first directly-blocking operation, function literals excluded.
func (lc *lockChecker) summary(fn *types.Func) *lockSummary {
	if s, ok := lc.summaries[fn]; ok {
		return s
	}
	s := &lockSummary{}
	lc.summaries[fn] = s
	decl := lc.pass.Prog.declOf(fn)
	if decl == nil || decl.Body == nil {
		return s
	}
	seen := map[types.Object]bool{}
	inspectSkippingFuncLits(decl.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			if obj, acquire, ok := lc.lockOpOf(n); ok {
				if acquire && obj != nil && !seen[obj] {
					seen[obj] = true
					s.acquires = append(s.acquires, obj)
				}
				return
			}
			if s.blocking == "" {
				s.blocking = lc.directBlocking(n)
			}
		case *ast.SendStmt:
			if s.blocking == "" {
				s.blocking = "channel send"
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && s.blocking == "" {
				s.blocking = "channel receive"
			}
		case *ast.SelectStmt:
			if s.blocking == "" && !selectHasDefault(n) {
				s.blocking = "select with no default"
			}
		case *ast.RangeStmt:
			if s.blocking == "" && isChannelExpr(lc.pass.Prog.Info, n.X) {
				s.blocking = "range over channel"
			}
		}
	})
	return s
}

// transitive resolves fn's interprocedural facts over the call graph,
// memoized, with a cycle guard (a recursion cycle contributes nothing
// beyond its members' direct facts).
func (lc *lockChecker) transitive(fn *types.Func) (blocking string, blockingOK bool, acquires []types.Object) {
	s := lc.summary(fn)
	if s.transComputed {
		return s.transBlocking, s.transBlockingOK, s.transAcquires
	}
	if lc.inProgress[fn] {
		return "", false, nil
	}
	lc.inProgress[fn] = true
	defer delete(lc.inProgress, fn)

	acqSeen := map[types.Object]bool{}
	for _, o := range s.acquires {
		acqSeen[o] = true
		acquires = append(acquires, o)
	}
	blocking, blockingOK = s.blocking, s.blocking != ""
	for _, e := range lc.graph.Callees(fn) {
		if lc.pass.Prog.declOf(e.Callee) == nil {
			continue
		}
		cb, cok, cacq := lc.transitive(e.Callee)
		if cok && !blockingOK {
			blocking = fmt.Sprintf("%s via %s", cb, funcDisplayName(e.Callee))
			blockingOK = true
		}
		for _, o := range cacq {
			if !acqSeen[o] {
				acqSeen[o] = true
				acquires = append(acquires, o)
			}
		}
	}
	// Only cache when no enclosing computation is mid-flight: inside a
	// cycle the partial answer would be wrong to memoize.
	if len(lc.inProgress) == 1 {
		s.transBlocking, s.transBlockingOK, s.transAcquires, s.transComputed = blocking, blockingOK, acquires, true
	}
	return blocking, blockingOK, acquires
}

// lockState is the abstract state at a program point: how often each lock
// is held, and how many releases defers have scheduled for function exit.
type lockState struct {
	held     map[types.Object]int
	deferred map[types.Object]int
}

func newLockState() *lockState {
	return &lockState{held: map[types.Object]int{}, deferred: map[types.Object]int{}}
}

func (st *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range st.held {
		c.held[k] = v
	}
	for k, v := range st.deferred {
		c.deferred[k] = v
	}
	return c
}

// mergeMax joins two branch states conservatively: held on either side
// counts as held.
func (st *lockState) mergeMax(o *lockState) {
	for k, v := range o.held {
		if v > st.held[k] {
			st.held[k] = v
		}
	}
	for k, v := range o.deferred {
		if v > st.deferred[k] {
			st.deferred[k] = v
		}
	}
}

func (st *lockState) equal(o *lockState) bool {
	for k, v := range st.held {
		if o.held[k] != v {
			return false
		}
	}
	for k, v := range o.held {
		if st.held[k] != v {
			return false
		}
	}
	return true
}

// heldLocks lists the currently held locks in deterministic (name) order.
func (lc *lockChecker) heldLocks(st *lockState) []types.Object {
	var out []types.Object
	for obj, n := range st.held {
		if n > 0 {
			out = append(out, obj)
		}
	}
	sortObjectsByName(lc, out)
	return out
}

func sortObjectsByName(lc *lockChecker, objs []types.Object) {
	for i := 1; i < len(objs); i++ {
		for j := i; j > 0 && lc.lockName(objs[j]) < lc.lockName(objs[j-1]); j-- {
			objs[j], objs[j-1] = objs[j-1], objs[j]
		}
	}
}

// lockWalker runs the path-sensitive walk over one function.
type lockWalker struct {
	lc   *lockChecker
	fn   *types.Func
	decl *ast.FuncDecl
}

func (lc *lockChecker) checkFunc(fn *types.Func) {
	decl := lc.pass.Prog.declOf(fn)
	if decl == nil || decl.Body == nil {
		return
	}
	w := &lockWalker{lc: lc, fn: fn, decl: decl}
	st := newLockState()
	terminated := w.walkStmts(decl.Body.List, st)
	if !terminated {
		w.checkExit(st, decl.Body.Rbrace, "function exit")
	}
}

// checkExit reports locks still held once scheduled deferred releases are
// accounted for.
func (w *lockWalker) checkExit(st *lockState, pos token.Pos, where string) {
	var held []types.Object
	for obj, n := range st.held {
		if n-st.deferred[obj] > 0 {
			held = append(held, obj)
		}
	}
	sortObjectsByName(w.lc, held)
	for _, obj := range held {
		w.lc.pass.Reportf(pos, "mutex %s is still held at %s; release it on every path (or defer the unlock)", w.lc.lockName(obj), where)
	}
}

// walkStmts interprets a statement list, mutating st; the return value
// reports whether control definitely leaves the function (return, panic,
// os.Exit) so callers can drop the path from branch merges.
func (w *lockWalker) walkStmts(stmts []ast.Stmt, st *lockState) bool {
	for _, s := range stmts {
		if w.walkStmt(s, st) {
			return true
		}
	}
	return false
}

func (w *lockWalker) walkStmt(s ast.Stmt, st *lockState) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.checkExpr(s.X, st)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if isBuiltin(w.lc.pass.Prog.Info, call.Fun, "panic") {
				// Defers run during a panic, so a deferred unlock covers it;
				// a bare Lock does not.
				w.checkExit(st, s.Pos(), "this panic (only a deferred unlock runs during panicking)")
				return true
			}
			if fn := resolveCallee(w.lc.pass.Prog.Info, call); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "os" && fn.Name() == "Exit" {
				return true // process exit: lock state is moot
			}
		}
	case *ast.SendStmt:
		w.reportBlockingWhileHeld(st, s.Pos(), "channel send")
		w.checkExpr(s.Chan, st)
		w.checkExpr(s.Value, st)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.checkExpr(e, st)
		}
		for _, e := range s.Lhs {
			w.checkExpr(e, st)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.checkExpr(v, st)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		w.checkExpr(s.X, st)
	case *ast.DeferStmt:
		w.walkDefer(s, st)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.checkExpr(e, st)
		}
		w.checkExit(st, s.Pos(), "this return")
		return true
	case *ast.BlockStmt:
		return w.walkStmts(s.List, st)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.checkExpr(s.Cond, st)
		thenSt := st.clone()
		thenTerm := w.walkStmts(s.Body.List, thenSt)
		elseSt := st.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.walkStmt(s.Else, elseSt)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			*st = *elseSt
		case elseTerm:
			*st = *thenSt
		default:
			thenSt.mergeMax(elseSt)
			*st = *thenSt
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			w.checkExpr(s.Cond, st)
		}
		bodySt := st.clone()
		w.walkStmts(s.Body.List, bodySt)
		if s.Post != nil {
			w.walkStmt(s.Post, bodySt)
		}
		if !bodySt.equal(st) {
			w.lc.pass.Reportf(s.Pos(), "loop body changes which mutexes are held between iterations")
		}
	case *ast.RangeStmt:
		if isChannelExpr(w.lc.pass.Prog.Info, s.X) {
			w.reportBlockingWhileHeld(st, s.Pos(), "range over channel")
		}
		w.checkExpr(s.X, st)
		bodySt := st.clone()
		w.walkStmts(s.Body.List, bodySt)
		if !bodySt.equal(st) {
			w.lc.pass.Reportf(s.Pos(), "loop body changes which mutexes are held between iterations")
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			w.checkExpr(s.Tag, st)
		}
		return w.walkClauses(s.Body, st, false)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		return w.walkClauses(s.Body, st, false)
	case *ast.SelectStmt:
		if !selectHasDefault(s) {
			w.reportBlockingWhileHeld(st, s.Pos(), "select with no default")
		}
		return w.walkClauses(s.Body, st, true)
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			w.checkExpr(a, st)
		}
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)
	}
	return false
}

// walkClauses handles switch/type-switch/select bodies: each clause runs on
// a fork of the entry state; non-terminating clauses merge. Without a
// default clause the entry state joins the merge (the switch may fall
// through every case); selects always take some clause.
func (w *lockWalker) walkClauses(body *ast.BlockStmt, st *lockState, isSelect bool) bool {
	var merged *lockState
	hasDefault := false
	allTerminate := true
	for _, c := range body.List {
		var stmts []ast.Stmt
		entrySt := st.clone()
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				w.checkExpr(e, entrySt)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else if !isSelect {
				w.walkStmt(c.Comm, entrySt)
			} else if as, ok := c.Comm.(*ast.AssignStmt); ok {
				// The arm's receive is part of the select, not a separate
				// blocking point, but its operands still get checked.
				for _, e := range as.Rhs {
					w.checkExprSkipTopArrow(e, entrySt)
				}
			}
			stmts = c.Body
		}
		if !w.walkStmts(stmts, entrySt) {
			allTerminate = false
			if merged == nil {
				merged = entrySt
			} else {
				merged.mergeMax(entrySt)
			}
		}
	}
	covered := hasDefault || (isSelect && len(body.List) > 0)
	if allTerminate && covered && len(body.List) > 0 {
		return true
	}
	if merged != nil {
		if !covered {
			merged.mergeMax(st)
		}
		*st = *merged
	}
	return false
}

// walkDefer registers deferred releases: `defer mu.Unlock()` directly, and
// the net releases of a deferred closure body (`defer func() { mu.Unlock() }()`).
func (w *lockWalker) walkDefer(s *ast.DeferStmt, st *lockState) {
	if obj, acquire, ok := w.lc.lockOpOf(s.Call); ok {
		if !acquire && obj != nil {
			st.deferred[obj]++
		}
		return
	}
	if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
		net := map[types.Object]int{}
		inspectSkippingFuncLits(lit.Body, func(n ast.Node) {
			if call, ok := n.(*ast.CallExpr); ok {
				if obj, acquire, ok := w.lc.lockOpOf(call); ok && obj != nil {
					if acquire {
						net[obj]--
					} else {
						net[obj]++
					}
				}
			}
		})
		for obj, n := range net {
			if n > 0 {
				st.deferred[obj] += n
			}
		}
		return
	}
	for _, a := range s.Call.Args {
		w.checkExpr(a, st)
	}
}

// checkExpr interprets one expression: lock operations mutate the state,
// blocking constructs and calls are checked against the held set, and
// resolved module calls contribute interprocedural blocking and
// lock-ordering facts. Function literals are not entered.
func (w *lockWalker) checkExpr(e ast.Expr, st *lockState) {
	if e == nil {
		return
	}
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.reportBlockingWhileHeld(st, n.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			// Arguments first: they evaluate before the call.
			for _, a := range n.Args {
				ast.Inspect(a, visit)
			}
			ast.Inspect(n.Fun, visit)
			w.applyCall(n, st)
			return false
		}
		return true
	}
	ast.Inspect(e, visit)
}

// checkExprSkipTopArrow is checkExpr for a select arm's receive expression:
// the top-level <- belongs to the select and was already accounted for.
func (w *lockWalker) checkExprSkipTopArrow(e ast.Expr, st *lockState) {
	if ue, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
		w.checkExpr(ue.X, st)
		return
	}
	w.checkExpr(e, st)
}

// applyCall handles a single call expression against the current state.
func (w *lockWalker) applyCall(call *ast.CallExpr, st *lockState) {
	lc := w.lc
	if obj, acquire, ok := lc.lockOpOf(call); ok {
		if obj == nil {
			return
		}
		if acquire {
			for _, held := range lc.heldLocks(st) {
				if held == obj {
					lc.pass.Reportf(call.Pos(), "mutex %s acquired while already held: self-deadlock", lc.lockName(obj))
					continue
				}
				lc.recordOrder(held, obj, call.Pos())
			}
			st.held[obj]++
		} else if st.held[obj] > 0 {
			st.held[obj]--
		}
		return
	}
	if desc := lc.directBlocking(call); desc != "" {
		w.reportBlockingWhileHeld(st, call.Pos(), desc)
		return
	}
	held := lc.heldLocks(st)
	reported := false
	for _, e := range lc.sites[call] {
		if lc.pass.Prog.declOf(e.Callee) == nil {
			continue
		}
		blocking, blockingOK, acquires := lc.transitive(e.Callee)
		if blockingOK && !reported && len(held) > 0 {
			lc.pass.Reportf(call.Pos(), "call to %s while holding %s may block: %s",
				funcDisplayName(e.Callee), lc.lockName(held[0]), blocking)
			reported = true
		}
		for _, acq := range acquires {
			for _, h := range held {
				if h == acq {
					lc.pass.Reportf(call.Pos(), "call to %s while holding %s acquires it again: self-deadlock",
						funcDisplayName(e.Callee), lc.lockName(h))
					continue
				}
				lc.recordOrder(h, acq, call.Pos())
			}
		}
	}
}

func (w *lockWalker) reportBlockingWhileHeld(st *lockState, pos token.Pos, desc string) {
	held := w.lc.heldLocks(st)
	if len(held) == 0 {
		return
	}
	w.lc.pass.Reportf(pos, "potentially blocking %s while holding %s", desc, w.lc.lockName(held[0]))
}

// recordOrder notes lock `before` held while `after` is acquired.
func (lc *lockChecker) recordOrder(before, after types.Object, pos token.Pos) {
	key := [2]types.Object{before, after}
	if _, ok := lc.orderEdges[key]; ok {
		return
	}
	lc.orderEdges[key] = pos
	lc.orderList = append(lc.orderList, key)
}

// reportInversions flags every lock pair acquired in both orders.
func (lc *lockChecker) reportInversions() {
	reported := map[[2]types.Object]bool{}
	for _, key := range lc.orderList {
		rev := [2]types.Object{key[1], key[0]}
		revPos, ok := lc.orderEdges[rev]
		if !ok || reported[key] || reported[rev] {
			continue
		}
		reported[key] = true
		fwd := lc.pass.Prog.Fset.Position(revPos)
		lc.pass.Reportf(lc.orderEdges[key],
			"lock-order inversion: %s acquired while holding %s here, but the opposite order at %s:%d",
			lc.lockName(key[1]), lc.lockName(key[0]), fwd.Filename, fwd.Line)
	}
}

// inspectSkippingFuncLits walks n without entering function literals.
func inspectSkippingFuncLits(n ast.Node, fn func(ast.Node)) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func isChannelExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, ok = tv.Type.Underlying().(*types.Chan)
	return ok
}
