package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	Standard   bool
	GoFiles    []string
	Imports    []string
	Error      *struct{ Err string }
}

// Load type-checks the packages matched by patterns (plus everything they
// import) using only the standard library: `go list -export` enumerates the
// package graph and provides export data for out-of-module dependencies, and
// module packages are parsed and type-checked from source in dependency
// order. dir is the working directory the patterns are resolved in (any
// directory inside the module).
//
// Only non-test Go files are loaded: the invariants simlint enforces concern
// the simulator itself, and test files are free to allocate, time, and
// iterate maps as they please.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	exports := map[string]string{}
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	// The gc importer reads export data for packages outside the module
	// (in a stdlib-only repo, that is the standard library itself).
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("simlint: no export data for %q (is the build cache cold?)", path)
		}
		return os.Open(f)
	})

	prog := &Program{
		Fset: fset,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		},
		byPath: map[string]*Package{},
	}
	checked := map[string]*types.Package{}
	imp := importerFunc(func(path string) (*types.Package, error) {
		if tp, ok := checked[path]; ok {
			return tp, nil
		}
		return gc.Import(path)
	})

	// `go list -deps` emits dependencies before dependents, so a single
	// forward pass type-checks every module package after its imports.
	for _, p := range pkgs {
		if p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("simlint: load %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("simlint: parse: %w", err)
			}
			files = append(files, f)
		}
		conf := types.Config{Importer: imp}
		tp, err := conf.Check(p.ImportPath, fset, files, prog.Info)
		if err != nil {
			return nil, fmt.Errorf("simlint: typecheck %s: %w", p.ImportPath, err)
		}
		checked[p.ImportPath] = tp
		pkg := &Package{Path: p.ImportPath, Name: tp.Name(), Types: tp, Files: files}
		prog.Packages = append(prog.Packages, pkg)
		prog.byPath[p.ImportPath] = pkg
	}
	if len(prog.Packages) == 0 {
		return nil, fmt.Errorf("simlint: no packages matched %v", patterns)
	}
	return prog, nil
}

// goList runs `go list -e -export -json -deps patterns...` in dir and decodes
// the package stream.
func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := []string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Name,GoFiles,Imports,Standard,Export,Error",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("simlint: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var pkgs []*listPackage
	seen := map[string]bool{}
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("simlint: decode go list output: %w", err)
		}
		if seen[p.ImportPath] {
			continue
		}
		seen[p.ImportPath] = true
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
