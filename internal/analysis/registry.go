package analysis

import (
	"go/ast"
	"go/types"
)

// Registry enforces that the simulator's registries actually cover their
// implementations — a policy or experiment that compiles but is unreachable
// from the factory silently drops out of every sweep, which is exactly the
// kind of reviewer-vigilance failure the suite exists to remove.
//
// Two checks:
//
//  1. every concrete type in a package named "policy" that implements the
//     Policy interface (resolved from a package named "uopcache", falling
//     back to the policy package itself) must be constructed somewhere inside
//     a factory function named NewPolicy;
//  2. in a package named "experiments" that declares a Runner func type and a
//     Registry function, every exported package-level function assignable to
//     Runner must be referenced inside Registry's body.
var Registry = &Analyzer{
	Name: "registry",
	Doc:  "every Policy implementation must be reachable from NewPolicy; every experiment Runner must be in Registry()",
	Run:  runRegistry,
}

func runRegistry(pass *Pass) {
	checkPolicyRegistry(pass)
	checkExperimentRegistry(pass)
}

// policyInterface finds the Policy interface definition, preferring the
// uopcache package (the real repo layout) and falling back to a package
// named "policy" (self-contained fixtures).
func policyInterface(prog *Program) *types.Interface {
	for _, name := range []string{"uopcache", "policy"} {
		for _, pkg := range prog.Packages {
			if pkg.Name != name {
				continue
			}
			obj := pkg.Types.Scope().Lookup("Policy")
			if obj == nil {
				continue
			}
			if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
				return iface
			}
		}
	}
	return nil
}

func checkPolicyRegistry(pass *Pass) {
	prog := pass.Prog
	iface := policyInterface(prog)
	if iface == nil || iface.NumMethods() == 0 {
		return
	}

	// Reachable: the named types of every expression inside a NewPolicy
	// body whose (pointer-stripped) type implements the interface. A
	// factory line like `return policy.NewLRU(), nil` marks LRU.
	reachable := map[*types.TypeName]bool{}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || fd.Name.Name != "NewPolicy" || fd.Recv != nil {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					e, ok := n.(ast.Expr)
					if !ok {
						return true
					}
					tv, ok := prog.Info.Types[e]
					if !ok || tv.Type == nil {
						return true
					}
					if named := namedImplementation(tv.Type, iface); named != nil {
						reachable[named.Obj()] = true
					}
					return true
				})
			}
		}
	}

	for _, pkg := range prog.Packages {
		if pkg.Name != "policy" {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if _, isIface := tn.Type().Underlying().(*types.Interface); isIface {
				continue
			}
			named := namedImplementation(types.NewPointer(tn.Type()), iface)
			if named == nil || named.Obj() != tn {
				continue
			}
			if !reachable[tn] {
				pass.Reportf(tn.Pos(), "%s implements Policy but is not constructed in any NewPolicy factory: it is unreachable from the policy registry", tn.Name())
			}
		}
	}
}

// namedImplementation strips pointers from t and returns the named type if
// it (or its pointer) implements iface.
func namedImplementation(t types.Type, iface *types.Interface) *types.Named {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, isIface := named.Underlying().(*types.Interface); isIface {
		return nil
	}
	if types.Implements(named, iface) || types.Implements(types.NewPointer(named), iface) {
		return named
	}
	return nil
}

func checkExperimentRegistry(pass *Pass) {
	prog := pass.Prog
	for _, pkg := range prog.Packages {
		if pkg.Name != "experiments" {
			continue
		}
		scope := pkg.Types.Scope()
		runnerObj, ok := scope.Lookup("Runner").(*types.TypeName)
		if !ok {
			continue
		}
		regObj, ok := scope.Lookup("Registry").(*types.Func)
		if !ok {
			continue
		}
		regDecl := prog.declOf(regObj)
		if regDecl == nil || regDecl.Body == nil {
			continue
		}
		registered := map[types.Object]bool{}
		ast.Inspect(regDecl.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if fn, ok := prog.Info.Uses[id].(*types.Func); ok {
				registered[fn] = true
			}
			return true
		})
		for _, name := range scope.Names() {
			fn, ok := scope.Lookup(name).(*types.Func)
			if !ok || !fn.Exported() || fn == regObj {
				continue
			}
			if !types.AssignableTo(fn.Type(), runnerObj.Type()) {
				continue
			}
			if !registered[fn] {
				pass.Reportf(fn.Pos(), "%s has the experiment Runner signature but is missing from Registry(): it will never run in a sweep", fn.Name())
			}
		}
	}
}
