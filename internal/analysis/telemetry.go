package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
)

// metricNamePattern is the exposition contract: every metric belongs to one
// of the simulator's subsystem families, so Prometheus scrapes and the
// Stats-reconciliation tests can enumerate what they expect.
// The inspect and trace families belong to the decision-level introspection
// layer (internal/inspect): attribution roll-ups and span-trace health. The
// plan family covers the artifact cache's keep-plan traffic
// (internal/artifact); trace also carries its trace_cache_* counters.
var metricNamePattern = regexp.MustCompile(`^(uopcache|frontend|policy|offline|flow|parallel|faultinject|inspect|trace|plan)_[a-z0-9_]+$`)

// Telemetry enforces that metric names handed to the telemetry registry
// (Registry.Counter / Gauge / Histogram methods of a package named
// "telemetry") are compile-time constants matching metricNamePattern. A name
// computed at runtime can silently fork a metric family between runs; a name
// outside the family prefixes breaks the exposition contract the
// Stats-reconciliation tests assert against.
var Telemetry = &Analyzer{
	Name: "telemetry",
	Doc:  "metric names must be compile-time constants matching ^(uopcache|frontend|policy|offline|flow|parallel|faultinject|inspect|trace|plan)_[a-z0-9_]+$",
	Run:  runTelemetry,
}

func runTelemetry(pass *Pass) {
	info := pass.Prog.Info
	for _, pkg := range pass.Prog.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				switch sel.Sel.Name {
				case "Counter", "Gauge", "Histogram":
				default:
					return true
				}
				if !isTelemetryRegistryMethod(info, sel) {
					return true
				}
				arg := call.Args[0]
				tv, ok := info.Types[arg]
				if !ok {
					return true
				}
				if tv.Value == nil || tv.Value.Kind() != constant.String {
					pass.Reportf(arg.Pos(), "metric name passed to Registry.%s is not a compile-time constant; runtime-computed names fork metric families between runs", sel.Sel.Name)
					return true
				}
				name := constant.StringVal(tv.Value)
				if !metricNamePattern.MatchString(name) {
					pass.Reportf(arg.Pos(), "metric name %q does not match %s", name, metricNamePattern)
				}
				return true
			})
		}
	}
}

// isTelemetryRegistryMethod reports whether sel resolves to a method on a
// type named Registry declared in a package named "telemetry".
func isTelemetryRegistryMethod(info *types.Info, sel *ast.SelectorExpr) bool {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	recv := s.Recv()
	if ptr, ok := recv.Underlying().(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil && obj.Pkg().Name() == "telemetry"
}
