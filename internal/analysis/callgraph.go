package analysis

import (
	"go/ast"
	"go/types"
)

// CallKind classifies how a call edge was resolved.
type CallKind int

const (
	// CallStatic is a direct call to a named function or a method on a
	// concrete receiver — the target is exact.
	CallStatic CallKind = iota
	// CallInterface is a call through an interface method, resolved to
	// every in-module named type whose method set satisfies the interface —
	// the target set is an over-approximation bounded to this module.
	CallInterface
	// CallFuncValue is a call through a local variable that was assigned a
	// named function somewhere in the same function — a may-alias set.
	CallFuncValue
)

func (k CallKind) String() string {
	switch k {
	case CallStatic:
		return "static"
	case CallInterface:
		return "interface"
	case CallFuncValue:
		return "funcvalue"
	}
	return "unknown"
}

// CallEdge is one resolved call site: Caller invokes Callee at Site.
type CallEdge struct {
	Caller *types.Func
	Callee *types.Func
	Kind   CallKind
	Site   *ast.CallExpr
}

// CallGraph is the module-wide call graph every interprocedural analyzer
// shares. Nodes are the functions declared in module source; outgoing edges
// are recorded in source order, so any traversal that respects edge order is
// deterministic. Three resolution strategies contribute edges, in decreasing
// order of precision: static calls, interface calls bounded to in-module
// implementations, and function values flowing through local assignments.
type CallGraph struct {
	prog *Program

	// Funcs lists every module function with a body, in load order
	// (package, file, declaration).
	Funcs []*types.Func
	// Edges maps each caller to its outgoing edges in source order.
	// Calls inside function literals are attributed to the enclosing
	// declared function (the literal executes, at the latest, through a
	// value created there).
	Edges map[*types.Func][]CallEdge
}

// CallGraph returns the program's call graph, building it on first use.
func (p *Program) CallGraph() *CallGraph {
	if p.callgraph == nil {
		p.callgraph = buildCallGraph(p)
	}
	return p.callgraph
}

// Callees returns fn's outgoing edges in source order.
func (g *CallGraph) Callees(fn *types.Func) []CallEdge { return g.Edges[fn] }

// NumNodes and NumEdges size the graph for the construction smoke test.
func (g *CallGraph) NumNodes() int { return len(g.Funcs) }
func (g *CallGraph) NumEdges() int {
	n := 0
	for _, es := range g.Edges {
		n += len(es)
	}
	return n
}

func buildCallGraph(prog *Program) *CallGraph {
	g := &CallGraph{prog: prog, Edges: map[*types.Func][]CallEdge{}}
	impls := moduleNamedTypes(prog)
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn := prog.funcFor(fd)
				if fn == nil {
					continue
				}
				g.Funcs = append(g.Funcs, fn)
				g.Edges[fn] = collectEdges(prog, fn, fd.Body, impls)
			}
		}
	}
	return g
}

// moduleNamedTypes collects every named (non-interface) type declared at
// package scope in a module package, in deterministic order: packages in
// load order, names in the sorted order types.Scope guarantees. These are
// the candidate implementations for interface-call resolution.
func moduleNamedTypes(prog *Program) []*types.Named {
	var out []*types.Named
	for _, pkg := range prog.Packages {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			out = append(out, named)
		}
	}
	return out
}

// collectEdges resolves every call expression in body, in source order.
func collectEdges(prog *Program, caller *types.Func, body *ast.BlockStmt, impls []*types.Named) []CallEdge {
	info := prog.Info
	funcVals := localFuncValues(info, body)
	var out []CallEdge
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := resolveCallee(info, call); fn != nil {
			out = append(out, CallEdge{Caller: caller, Callee: fn, Kind: CallStatic, Site: call})
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
				if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
					for _, callee := range resolveInterfaceCall(iface, fun.Sel.Name, impls) {
						out = append(out, CallEdge{Caller: caller, Callee: callee, Kind: CallInterface, Site: call})
					}
				}
			}
		case *ast.Ident:
			if obj := info.ObjectOf(fun); obj != nil {
				for _, callee := range funcVals[obj] {
					out = append(out, CallEdge{Caller: caller, Callee: callee, Kind: CallFuncValue, Site: call})
				}
			}
		}
		return true
	})
	return out
}

// resolveInterfaceCall returns the concrete methods a call to iface.name may
// dispatch to, considering every in-module named type (by value and by
// pointer receiver). The returned order follows impls, which is load-order
// deterministic.
func resolveInterfaceCall(iface *types.Interface, name string, impls []*types.Named) []*types.Func {
	var out []*types.Func
	seen := map[*types.Func]bool{}
	for _, named := range impls {
		var recv types.Type = named
		if !types.Implements(recv, iface) {
			recv = types.NewPointer(named)
			if !types.Implements(recv, iface) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, nil, name)
		if fn, ok := obj.(*types.Func); ok && !seen[fn] {
			seen[fn] = true
			out = append(out, fn)
		}
	}
	return out
}

// localFuncValues tracks named functions flowing into local variables
// through assignment (flow-insensitive): after `f := pkg.Helper` or
// `var f = pkg.Helper`, a call `f()` gets may-edges to every function ever
// assigned to f in this body.
func localFuncValues(info *types.Info, body *ast.BlockStmt) map[types.Object][]*types.Func {
	out := map[types.Object][]*types.Func{}
	record := func(lhs, rhs ast.Expr) {
		fn := resolveFuncValue(info, rhs)
		if fn == nil {
			return
		}
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		obj := info.ObjectOf(id)
		if obj == nil {
			return
		}
		for _, have := range out[obj] {
			if have == fn {
				return
			}
		}
		out[obj] = append(out[obj], fn)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i := range n.Names {
				if i < len(n.Values) {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return out
}

// resolveFuncValue resolves an expression used as a value to the named
// function it denotes: a bare identifier, a package-qualified function, or a
// bound method value.
func resolveFuncValue(info *types.Info, e ast.Expr) *types.Func {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[e].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			if sel.Kind() == types.MethodVal {
				if fn, ok := sel.Obj().(*types.Func); ok {
					return fn
				}
			}
			return nil
		}
		if fn, ok := info.Uses[e.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// resolveCallee returns the concrete function a call statically targets, or
// nil for builtins, conversions, function values, and interface methods.
func resolveCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			if _, ok := sel.Recv().Underlying().(*types.Interface); ok {
				return nil // dynamic dispatch
			}
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Package-qualified call: pkg.Func.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
