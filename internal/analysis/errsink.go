package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Errsink guards the durability surface: an experiment campaign that runs
// for hours and silently loses its results to a full disk is worse than one
// that crashes. Three rules, all about *discarded* error returns (a call
// used as a bare statement, deferred, or with every error result assigned
// to _):
//
//  1. The named durability surface must be checked: AtomicWriteFile, the
//     report/CSV/manifest/trace writers (WriteReport, WriteCSV, WriteRDCSV,
//     WriteFile, WriteJSON, WritePrometheus, Markdown, CSV, Flush) and
//     checkpoint journal appends (Append) — any module function or method
//     with one of those names that returns an error.
//  2. (*os.File).Close on a write path — a file this function created for
//     writing, wrote to, or handed to a writer — buffers the last chance to
//     observe a write error; discarding it loses data silently. Close on
//     read paths is exempt, as is Close inside an error-cleanup block
//     (`if err != nil { f.Close() }` — the operation already failed).
//     Close methods of module types that return an error get the same
//     treatment without the write-path gate: a module type returning an
//     error from Close does so deliberately.
//  3. Inside a durability writer itself — a module function that returns an
//     error and takes an io.Writer parameter — fmt.Fprint* / Write /
//     io.WriteString calls targeting that parameter must not drop their
//     errors; the sticky errWriter pattern is the approved fix. cmd/
//     packages are exempt from this rule only: a CLI run() printing its
//     progress to the stdout parameter is terminal UI, not durability —
//     the files a command persists flow through AtomicWriteFile and the
//     named writers, which rules 1 and 2 cover everywhere.
var Errsink = &Analyzer{
	Name: "errsink",
	Doc:  "durability-surface errors (AtomicWriteFile, report/CSV/trace writers, checkpoint appends, Close on write paths) must not be discarded",
	Run:  runErrsink,
}

// durabilityNames is the convention-driven surface: module functions and
// methods with these names that return an error are durability calls.
var durabilityNames = map[string]bool{
	"AtomicWriteFile": true, "WriteReport": true, "WriteCSV": true,
	"WriteRDCSV": true, "WriteFile": true, "WriteJSON": true,
	"WritePrometheus": true, "Markdown": true, "CSV": true,
	"Flush": true, "Append": true,
}

func runErrsink(pass *Pass) {
	for _, pkg := range pass.Prog.Packages {
		isCmd := pkg.Name == "main" || strings.Contains(pkg.Path, "/cmd/")
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkErrsinkFunc(pass, fd, isCmd)
			}
		}
	}
}

func checkErrsinkFunc(pass *Pass, fd *ast.FuncDecl, isCmd bool) {
	info := pass.Prog.Info
	writeFiles := writePathFiles(info, fd.Body)
	var writerParam *types.Var
	if !isCmd {
		writerParam = durabilityWriterParam(info, fd)
	}

	// The walk tracks whether we are inside an error-cleanup block
	// (`if err != nil { ... }`): a dropped Close there is the failure path
	// of an operation whose error is already being returned.
	var walk func(n ast.Node, inCleanup bool)
	checkDiscarded := func(call *ast.CallExpr, deferred, inCleanup bool) {
		fn := calledFunc(info, call)
		if fn == nil || !returnsError(fn) {
			return
		}
		name := fn.Name()
		switch {
		case durabilityNames[name] && pass.Prog.IsModulePackage(fn.Pkg()):
			pass.Reportf(call.Pos(), "error from %s discarded; the durability surface must be checked", funcDisplayName(fn))
		case name == "Close":
			if inCleanup {
				return
			}
			recv := receiverOf(info, call)
			switch {
			case isOSFile(recvType(fn)):
				if recv != nil && writeFiles[recv] {
					pass.Reportf(call.Pos(), "error from Close discarded on a write path: the final flush error is lost")
				}
			case pass.Prog.IsModulePackage(fn.Pkg()) && recvType(fn) != nil:
				pass.Reportf(call.Pos(), "error from %s discarded; a module Close returning error does so deliberately", funcDisplayName(fn))
			}
		case writerParam != nil && !deferred:
			if target := writeTargetOf(info, call, fn); target != nil && target == writerParam {
				pass.Reportf(call.Pos(), "write error to the %s parameter discarded inside a durability writer; use the sticky errWriter pattern", writerParam.Name())
			}
		}
	}
	walk = func(n ast.Node, inCleanup bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
				checkDiscarded(call, false, inCleanup)
			}
			walkChildren(n, walk, inCleanup)
		case *ast.DeferStmt:
			checkDiscarded(n.Call, true, inCleanup)
			walkChildren(n, walk, inCleanup)
		case *ast.GoStmt:
			checkDiscarded(n.Call, false, inCleanup)
			walkChildren(n, walk, inCleanup)
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 {
				if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok && allErrorResultsBlank(info, n, call) {
					checkDiscarded(call, false, inCleanup)
				}
			}
			walkChildren(n, walk, inCleanup)
		case *ast.IfStmt:
			if n.Init != nil {
				walk(n.Init, inCleanup)
			}
			walk(n.Cond, inCleanup)
			walk(n.Body, inCleanup || isErrorNilCheck(info, n.Cond))
			if n.Else != nil {
				walk(n.Else, inCleanup)
			}
		default:
			walkChildren(n, walk, inCleanup)
		}
	}
	walk(fd.Body, false)
}

// walkChildren recurses into n's direct children preserving the cleanup
// flag.
func walkChildren(n ast.Node, walk func(ast.Node, bool), inCleanup bool) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			walk(c, inCleanup)
		}
		return false
	})
}

// writePathFiles collects the *os.File variables this function uses for
// writing: opened with os.Create/CreateTemp/OpenFile, written through, or
// handed to another call (a writer wrapping it). Aliases propagate through
// plain assignments.
func writePathFiles(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	aliases := map[types.Object][]types.Object{} // lhs -> rhs objects
	mark := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil && isOSFile(obj.Type()) {
				out[obj] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if call, ok := ast.Unparen(n.Rhs[i]).(*ast.CallExpr); ok {
					if isWriteOpen(info, call) {
						mark(lhs)
					}
					continue
				}
				lo := objectOfIdent(info, lhs)
				ro := objectOfIdent(info, n.Rhs[i])
				if lo != nil && ro != nil && isOSFile(lo.Type()) {
					aliases[lo] = append(aliases[lo], ro)
					aliases[ro] = append(aliases[ro], lo)
				}
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Write", "WriteString", "WriteAt", "Sync", "Truncate", "ReadFrom":
					mark(sel.X)
				}
			}
			// A file passed to any call is assumed handed to a writer.
			for _, a := range n.Args {
				mark(a)
			}
		}
		return true
	})
	for i := 0; i < 2; i++ { // small fixpoint for alias chains
		for lo, ros := range aliases {
			for _, ro := range ros {
				if out[ro] {
					out[lo] = true
				}
				if out[lo] {
					out[ro] = true
				}
			}
		}
	}
	return out
}

// isWriteOpen reports whether call opens a file for writing: os.Create,
// os.CreateTemp, or os.OpenFile with flags that name a write mode (an
// unresolvable flag expression counts as writing, conservatively).
func isWriteOpen(info *types.Info, call *ast.CallExpr) bool {
	fn := calledFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
		return false
	}
	switch fn.Name() {
	case "Create", "CreateTemp":
		return true
	case "OpenFile":
		if len(call.Args) < 2 {
			return true
		}
		hasWriteFlag := false
		readOnly := true
		ast.Inspect(call.Args[1], func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				switch id.Name {
				case "O_WRONLY", "O_RDWR", "O_APPEND", "O_CREATE", "O_TRUNC":
					hasWriteFlag = true
					readOnly = false
				case "O_RDONLY":
				default:
					readOnly = false
				}
			}
			return true
		})
		return hasWriteFlag || !readOnly
	}
	return false
}

// durabilityWriterParam returns the io.Writer parameter of a module
// function that returns an error — the signature shape of the durability
// writers rule 3 applies to.
func durabilityWriterParam(info *types.Info, fd *ast.FuncDecl) *types.Var {
	fn, ok := info.Defs[fd.Name].(*types.Func)
	if !ok || !returnsError(fn) {
		return nil
	}
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if isIOWriter(p.Type()) {
			return p
		}
	}
	return nil
}

// writeTargetOf resolves the writer a discarded write call targets:
// fmt.Fprint*/io.WriteString first arguments, or the receiver of a
// Write/WriteString method.
func writeTargetOf(info *types.Info, call *ast.CallExpr, fn *types.Func) types.Object {
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	switch {
	case pkgPath == "fmt" && strings.HasPrefix(fn.Name(), "Fprint"),
		pkgPath == "io" && fn.Name() == "WriteString":
		if len(call.Args) > 0 {
			return objectOfIdent(info, call.Args[0])
		}
	case fn.Name() == "Write" || fn.Name() == "WriteString":
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return objectOfIdent(info, sel.X)
		}
	}
	return nil
}

// isErrorNilCheck matches conditions that gate an error-cleanup block:
// any `x != nil` comparison with an error-typed operand.
func isErrorNilCheck(info *types.Info, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || found {
			return !found
		}
		if be.Op.String() != "!=" {
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			if tv, ok := info.Types[side]; ok && tv.Type != nil && isErrorType(tv.Type) {
				found = true
			}
		}
		return !found
	})
	return found
}

func calledFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func receiverOf(info *types.Info, call *ast.CallExpr) types.Object {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return objectOfIdent(info, sel.X)
	}
	return nil
}

func recvType(fn *types.Func) types.Type {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

func objectOfIdent(info *types.Info, e ast.Expr) types.Object {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return info.ObjectOf(id)
	}
	return nil
}

func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

// allErrorResultsBlank reports whether an assignment discards every
// error-typed result of call (`_ = f()` / `n, _ := f()` with err blank).
func allErrorResultsBlank(info *types.Info, as *ast.AssignStmt, call *ast.CallExpr) bool {
	fn := calledFunc(info, call)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if sig.Results().Len() != len(as.Lhs) {
		return false
	}
	anyErr := false
	for i := 0; i < sig.Results().Len(); i++ {
		if !isErrorType(sig.Results().At(i).Type()) {
			continue
		}
		anyErr = true
		if id, ok := as.Lhs[i].(*ast.Ident); !ok || id.Name != "_" {
			return false
		}
	}
	return anyErr
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func isOSFile(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	} else if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "File" && obj.Pkg() != nil && obj.Pkg().Path() == "os"
}

func isIOWriter(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Writer" && obj.Pkg() != nil && obj.Pkg().Path() == "io"
}
