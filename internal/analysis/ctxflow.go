package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Ctxflow enforces cancellation plumbing. PR 4 made every long-running
// layer context-aware precisely so a SIGINT drains the whole campaign; a
// single function that mints its own context quietly severs that chain for
// everything below it. Two rules:
//
//  1. context.Background() and context.TODO() are forbidden outside cmd/
//     packages (package main) — only an entry point owns a root context.
//     The two sanctioned interior uses, the nil-means-never-cancelled
//     normalization seams in internal/parallel and internal/experiments,
//     carry suppressions with reasons.
//  2. A function that receives a context.Context must thread it onward: a
//     call argument in context position that is nil (or, in a cmd package,
//     a fresh Background()/TODO()) drops the caller's context on the floor
//     and is flagged.
//
// Tests are never analyzed (the loader skips _test.go files), so
// context.Background() in tests stays fine.
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc:  "context.Background/TODO only in cmd/; a received ctx must be threaded into every context-accepting call",
	Run:  runCtxflow,
}

func runCtxflow(pass *Pass) {
	info := pass.Prog.Info
	for _, pkg := range pass.Prog.Packages {
		isCmd := pkg.Name == "main" || strings.Contains(pkg.Path, "/cmd/")
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				hasCtx := funcHasContextParam(info, fd)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if name := contextRootCall(info, call); name != "" && !isCmd {
						pass.Reportf(call.Pos(), "context.%s outside a cmd/ package severs the cancellation chain; accept a ctx parameter instead", name)
					}
					if hasCtx {
						checkContextArgs(pass, info, call, isCmd)
					}
					return true
				})
			}
		}
	}
}

// contextRootCall returns "Background" or "TODO" if the call mints a root
// context.
func contextRootCall(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return fn.Name()
	}
	return ""
}

// checkContextArgs flags arguments in context position that discard the
// context the enclosing function received.
func checkContextArgs(pass *Pass, info *types.Info, call *ast.CallExpr, isCmd bool) {
	sig, ok := typeAsSignature(info, call.Fun)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		if i >= sig.Params().Len() {
			break // variadic tail can't be a context
		}
		if !isContextType(sig.Params().At(i).Type()) {
			continue
		}
		if isNilExpr(info, arg) {
			pass.Reportf(arg.Pos(), "nil context passed while the enclosing function has a ctx parameter; thread it through")
		}
		if isCmd {
			if inner, isCall := ast.Unparen(arg).(*ast.CallExpr); isCall {
				if name := contextRootCall(info, inner); name != "" {
					pass.Reportf(arg.Pos(), "fresh context.%s passed while the enclosing function has a ctx parameter; thread it through", name)
				}
			}
		}
	}
}

func funcHasContextParam(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if tv, ok := info.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
