package analysis

import (
	"go/ast"
	"go/types"
)

// Determinism enforces bit-for-bit reproducibility in the simulation
// packages: the paper's evaluation (seeded synthetic workloads standing in
// for Intel PT traces) is only trustworthy if a rerun reproduces every
// number, so simulation state may not depend on the wall clock, on the
// process-global random source, or on Go's randomized map iteration order.
//
// Four rules, scoped to the packages whose names are in determinismScope:
//
//  1. no references to time.Now;
//  2. no references to math/rand (or math/rand/v2) package-level functions
//     that use the global source — construct rand.New(rand.NewSource(seed))
//     explicitly instead;
//  3. a `range` over a map may not append to a slice, write table/CSV rows,
//     or emit telemetry events in its body, unless the appended slice is
//     passed to a sort call after the loop (the collect-keys-then-sort
//     idiom, which is the approved fix);
//  4. no raw `go` statements — fan work out through internal/parallel,
//     whose pools collect results in index order and are the only place
//     goroutine scheduling (which is nondeterministic) is allowed to touch
//     simulation work.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock, global randomness, ordered emission from map iteration, and raw goroutines in simulation packages",
	Run:  runDeterminism,
}

// determinismScope names the packages whose state feeds simulation results.
var determinismScope = map[string]bool{
	"uopcache":    true,
	"policy":      true,
	"workload":    true,
	"offline":     true,
	"experiments": true,
	"profiles":    true,
}

// randAllowed are math/rand package-level functions that only construct
// explicitly seeded generators.
var randAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *Pass) {
	for _, pkg := range pass.Prog.Packages {
		if !determinismScope[pkg.Name] {
			continue
		}
		for _, file := range pkg.Files {
			checkBannedRefs(pass, file)
			checkMapRanges(pass, file)
			checkGoStmts(pass, file)
		}
	}
}

// checkBannedRefs flags references to time.Now and to math/rand global-source
// functions.
func checkBannedRefs(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.Prog.Info.Uses[id].(*types.Func)
		if !ok || obj.Pkg() == nil {
			return true
		}
		// Only package-scope functions: methods like rand.Rand.Intn on an
		// explicitly seeded generator are the approved pattern.
		if obj.Pkg().Scope().Lookup(obj.Name()) != obj {
			return true
		}
		switch obj.Pkg().Path() {
		case "time":
			if obj.Name() == "Now" {
				pass.Reportf(id.Pos(), "time.Now in a simulation package: results must not depend on the wall clock")
			}
		case "math/rand", "math/rand/v2":
			if !randAllowed[obj.Name()] {
				pass.Reportf(id.Pos(), "math/rand.%s uses the process-global source: construct rand.New(rand.NewSource(seed)) instead", obj.Name())
			}
		}
		return true
	})
}

// checkGoStmts flags raw goroutine launches. Goroutine scheduling order is
// nondeterministic; the only sanctioned way to fan simulation work out is
// internal/parallel, whose pools write results by index and merge them in
// input order so rendered output is byte-identical at any worker count.
func checkGoStmts(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			pass.Reportf(g.Pos(), "raw go statement in a simulation package: fan work out through internal/parallel so results merge deterministically")
		}
		return true
	})
}

// checkMapRanges flags map-iteration bodies that produce ordered output.
func checkMapRanges(pass *Pass, file *ast.File) {
	info := pass.Prog.Info
	// Walk function by function so the sort-guard search has a scope.
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRangeBody(pass, fd, rng)
			return true
		})
	}
}

func checkMapRangeBody(pass *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) {
	info := pass.Prog.Info
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// v = append(v, ...) — fine only when v is sorted after the
			// loop; anything else bakes map order into a sequence.
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltin(info, call.Fun, "append") {
					continue
				}
				if i < len(n.Lhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						if sortGuarded(pass, fn, call, id) {
							continue
						}
						pass.Reportf(call.Pos(), "append to %s inside map iteration without a later sort: slice order inherits Go's randomized map order", id.Name)
						continue
					}
				}
				pass.Reportf(call.Pos(), "append inside map iteration: the result's order inherits Go's randomized map order")
			}
		case *ast.CallExpr:
			if name, ok := emissionCall(info, n); ok {
				pass.Reportf(n.Pos(), "%s inside map iteration emits rows/events in Go's randomized map order; iterate sorted keys instead", name)
			}
		}
		return true
	})
}

// emissionCall reports whether the call writes ordered output: fmt printing,
// table rows, CSV records, or telemetry events.
func emissionCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if obj, ok := info.Uses[fun.Sel].(*types.Func); ok && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			switch obj.Name() {
			case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf":
				return "fmt." + obj.Name(), true
			}
		}
		switch fun.Sel.Name {
		case "AddRow", "Emit", "Write", "WriteString", "WriteRow":
			// Method calls that append to ordered sinks.
			if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
				return fun.Sel.Name, true
			}
		}
	}
	return "", false
}

// sortGuarded reports whether id (a slice collected inside a map range) is
// passed to a sort call textually after the append, anywhere later in the
// enclosing function — the collect-then-sort idiom. The guard may sit inside
// the same enclosing loop: sorting per iteration is just as deterministic.
func sortGuarded(pass *Pass, fn *ast.FuncDecl, appendCall *ast.CallExpr, id *ast.Ident) bool {
	info := pass.Prog.Info
	target := info.ObjectOf(id)
	if target == nil {
		return false
	}
	guarded := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if guarded {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= appendCall.End() || len(call.Args) == 0 {
			return true
		}
		if !isSortCall(info, call.Fun) {
			return true
		}
		if arg, ok := call.Args[0].(*ast.Ident); ok && info.ObjectOf(arg) == target {
			guarded = true
		}
		return true
	})
	return guarded
}

// isSortCall recognizes the sort/slices ordering entry points.
func isSortCall(info *types.Info, fun ast.Expr) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "sort":
		switch obj.Name() {
		case "Slice", "SliceStable", "Sort", "Stable", "Strings", "Ints", "Float64s":
			return true
		}
	case "slices":
		switch obj.Name() {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}

// isBuiltin reports whether fun resolves to the named builtin.
func isBuiltin(info *types.Info, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}
