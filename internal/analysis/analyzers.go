package analysis

// All returns every registered analyzer, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		Hotpath,
		Registry,
		Telemetry,
		Exhaustive,
		Lockcheck,
		Ctxflow,
		Errsink,
	}
}

// ByName resolves an analyzer by its diagnostic name.
func ByName(name string) (*Analyzer, bool) {
	for _, a := range All() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}
