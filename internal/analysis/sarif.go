package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strings"
)

// SARIF 2.1.0 rendering of an analysis run. The emitted log carries the full
// rule catalogue (one reportingDescriptor per analyzer, plus the "simlint"
// pseudo-rule for directive problems), every surviving diagnostic as an
// "error"-level result, and every directive-absorbed finding as a result with
// an inSource suppression holding the directive's justification — so a SARIF
// consumer sees not just what fired but what was silenced and why.

const sarifSchema = "https://json.schemastore.org/sarif-2.1.0.json"

// sarifSrcRoot is the uriBaseId all repo-relative artifact URIs hang off.
const sarifSrcRoot = "SRCROOT"

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool               sarifTool                        `json:"tool"`
	OriginalURIBaseIDs map[string]sarifArtifactLocation `json:"originalUriBaseIds,omitempty"`
	Results            []sarifResult                    `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	RuleIndex    int                `json:"ruleIndex"`
	Level        string             `json:"level"`
	Message      sarifMessage       `json:"message"`
	Locations    []sarifLocation    `json:"locations,omitempty"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           *sarifRegion          `json:"region,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

// WriteSARIF renders res as a SARIF 2.1.0 log. root anchors the SRCROOT uri
// base; diagnostics inside it get repo-relative URIs, anything outside keeps
// an absolute file URI. analyzers supplies the rule catalogue (the "simlint"
// pseudo-rule is always appended).
func WriteSARIF(w io.Writer, root string, analyzers []*Analyzer, res Result) error {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return fmt.Errorf("sarif: resolve root %q: %w", root, err)
	}

	var rules []sarifRule
	index := map[string]int{}
	addRule := func(id, doc string) {
		if _, ok := index[id]; ok {
			return
		}
		index[id] = len(rules)
		rules = append(rules, sarifRule{ID: id, ShortDescription: sarifMessage{Text: doc}})
	}
	for _, a := range analyzers {
		addRule(a.Name, a.Doc)
	}
	addRule("simlint", "problems with simlint's own suppression directives: malformed, unknown, or stale //simlint:ignore comments")

	result := func(d Diagnostic) sarifResult {
		if _, ok := index[d.Analyzer]; !ok {
			addRule(d.Analyzer, "(analyzer outside the configured catalogue)")
		}
		r := sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: index[d.Analyzer],
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
		}
		if d.Pos.Filename != "" {
			loc := sarifArtifactLocation{URI: "file://" + filepath.ToSlash(d.Pos.Filename)}
			if rel, rerr := filepath.Rel(absRoot, d.Pos.Filename); rerr == nil && !strings.HasPrefix(rel, "..") {
				loc = sarifArtifactLocation{URI: filepath.ToSlash(rel), URIBaseID: sarifSrcRoot}
			}
			var region *sarifRegion
			if d.Pos.Line > 0 {
				region = &sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column}
			}
			r.Locations = []sarifLocation{{PhysicalLocation: sarifPhysicalLocation{
				ArtifactLocation: loc,
				Region:           region,
			}}}
		}
		return r
	}

	results := make([]sarifResult, 0, len(res.Diagnostics)+len(res.Suppressed))
	for _, d := range res.Diagnostics {
		results = append(results, result(d))
	}
	for _, s := range res.Suppressed {
		r := result(s.Diagnostic)
		r.Suppressions = []sarifSuppression{{Kind: "inSource", Justification: s.Justification}}
		results = append(results, r)
	}

	log := sarifLog{
		Schema:  sarifSchema,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{Name: "simlint", Rules: rules}},
			OriginalURIBaseIDs: map[string]sarifArtifactLocation{
				sarifSrcRoot: {URI: "file://" + filepath.ToSlash(absRoot) + "/"},
			},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	return enc.Encode(log)
}
