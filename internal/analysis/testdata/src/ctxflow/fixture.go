// Package ctxfix is the ctxflow fixture for library code: fresh root
// contexts are forbidden, and a function holding a ctx parameter must
// thread it into the context-accepting calls it makes.
package ctxfix

import "context"

func mint() context.Context {
	return context.Background() // want "context.Background outside a cmd/ package severs the cancellation chain"
}

func todo() context.Context {
	return context.TODO() // want "context.TODO outside a cmd/ package severs the cancellation chain"
}

func needsCtx(ctx context.Context, n int) error {
	_ = n
	return ctx.Err()
}

func threadsOK(ctx context.Context) error {
	return needsCtx(ctx, 1)
}

func drops(ctx context.Context) error {
	return needsCtx(nil, 1) // want "nil context passed while the enclosing function has a ctx parameter"
}

// noCtxParam has nothing to thread: the nil-means-default seam belongs to
// the callee, so the analyzer stays silent.
func noCtxParam() error {
	return needsCtx(nil, 1)
}

func sanctioned() context.Context {
	return context.Background() //simlint:ignore ctxflow fixture-sanctioned root context
}
