// Package telemetry is a telemetry-analyzer fixture for the introspection
// metric families: inspect_* (eviction attribution roll-ups) and trace_*
// (span-trace health) are legal prefixes; near-misses are not.
package telemetry

type Counter struct{}

func (c *Counter) Add(n uint64) {}

type Registry struct{}

func (r *Registry) Counter(name string) *Counter   { return nil }
func (r *Registry) Gauge(name string) *Counter     { return nil }
func (r *Registry) Histogram(name string) *Counter { return nil }

const spanCount = "trace_spans_total"

func use(r *Registry) {
	r.Counter("inspect_evictions_total")
	r.Counter("inspect_justified_total")
	r.Counter("inspect_premature_total")
	r.Counter("inspect_divergent_total")
	r.Histogram(spanCount)             // constants propagate: allowed
	r.Gauge("inspection_queue")        // want "does not match"
	r.Counter("Inspect_Evictions")     // want "does not match"
	r.Counter("tracer_spans_dropped")  // want "does not match"
}
