// Package errfix is the errsink fixture: discarded errors on the
// durability surface (named writers, write-path Close, writer-parameter
// prints) are findings; cleanup-path and read-path discards are not.
package errfix

import (
	"fmt"
	"io"
	"os"
)

// AtomicWriteFile mimics the module's durability entry point; its own
// cleanup-path Close is exempt because the write error is already on its
// way out.
func AtomicWriteFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func persist(path string) {
	AtomicWriteFile(path, func(w io.Writer) error { return nil }) // want "error from errfix.AtomicWriteFile discarded; the durability surface must be checked"
}

type journal struct{ f *os.File }

func (j *journal) Append(line string) error {
	_, err := j.f.WriteString(line)
	return err
}

func (j *journal) Flush() error { return j.f.Sync() }

func useJournal(j *journal) {
	j.Append("x") // want "error from \\*journal.Append discarded; the durability surface must be checked"
	_ = j.Flush() // want "error from \\*journal.Flush discarded; the durability surface must be checked"
	if err := j.Append("y"); err != nil {
		_ = err
	}
}

func writeThenClose(path string) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	fmt.Fprintln(f, "data")
	f.Close() // want "error from Close discarded on a write path: the final flush error is lost"
}

func readThenClose(path string) []byte {
	f, err := os.Open(path)
	if err != nil {
		return nil
	}
	defer f.Close()
	buf := make([]byte, 16)
	f.Read(buf)
	return buf
}

type sink struct{ f *os.File }

func (s *sink) Close() error { return s.f.Close() }

func dropModuleClose(s *sink) {
	s.Close() // want "error from \\*sink.Close discarded; a module Close returning error does so deliberately"
}

// render is a durability writer (io.Writer parameter, error result): an
// unchecked print loses the write error the signature promises to report.
func render(w io.Writer, rows []string) error {
	fmt.Fprintln(w, "header") // want "write error to the w parameter discarded inside a durability writer; use the sticky errWriter pattern"
	for _, r := range rows {
		if _, err := fmt.Fprintln(w, r); err != nil {
			return err
		}
	}
	return nil
}
