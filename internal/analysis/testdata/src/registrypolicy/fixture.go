// Package policy is a registry-analyzer fixture: it declares its own Policy
// interface (no uopcache package is loaded, so the analyzer falls back to
// it), one registered implementation, and one orphan.
package policy

import "errors"

type Resident struct{ Key uint64 }

type Decision struct {
	Bypass    bool
	VictimKey uint64
}

type Policy interface {
	Name() string
	Victim(set int, residents []Resident) Decision
}

type LRU struct{}

func (p *LRU) Name() string                                  { return "lru" }
func (p *LRU) Victim(set int, residents []Resident) Decision { return Decision{} }

type Orphan struct{} // want "Orphan implements Policy but is not constructed in any NewPolicy factory"

func (p *Orphan) Name() string                                  { return "orphan" }
func (p *Orphan) Victim(set int, residents []Resident) Decision { return Decision{} }

func NewPolicy(name string) (Policy, error) {
	if name == "lru" {
		return &LRU{}, nil
	}
	return nil, errors.New("unknown policy")
}
