// Package cgfix is the call-graph fixture: one interface with two
// implementations (value and pointer receiver) plus a non-implementation,
// a function value flowing through a local, and recursion both direct and
// mutual.
package cgfix

type greeter interface{ Greet() string }

type english struct{}

func (english) Greet() string { return "hello" }

type welsh struct{}

func (*welsh) Greet() string { return "helo" }

// silent satisfies nothing; it must not appear as a Greet target.
type silent struct{}

func (silent) Quiet() string { return "" }

func viaInterface(g greeter) string { return g.Greet() }

func helper() string { return "h" }

func other() string { return "o" }

func viaValue(n int) string {
	f := helper
	if n > 0 {
		f = other
	}
	return f()
}

func even(n int) bool {
	if n == 0 {
		return true
	}
	return odd(n - 1)
}

func odd(n int) bool {
	if n == 0 {
		return false
	}
	return even(n - 1)
}

func self(n int) int {
	if n <= 0 {
		return 0
	}
	return self(n - 1)
}
