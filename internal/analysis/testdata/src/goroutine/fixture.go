// Package offline is a determinism-analyzer fixture for the raw-goroutine
// rule: the package name is inside the analyzer's scope, so every `go`
// statement — bare, in a loop, or wrapped in a sync.WaitGroup — must be
// flagged. Fan-out belongs in internal/parallel, whose pools merge results
// in index order.
package offline

import "sync"

func Solve(units []int) []int {
	out := make([]int, len(units))
	var wg sync.WaitGroup
	for i := range units {
		wg.Add(1)
		go func(i int) { // want "raw go statement in a simulation package"
			defer wg.Done()
			out[i] = units[i] * 2
		}(i)
	}
	wg.Wait()
	return out
}

func FireAndForget(f func()) {
	go f() // want "raw go statement in a simulation package"
}

func Serial(units []int) []int {
	out := make([]int, len(units))
	for i := range units {
		out[i] = units[i] * 2 // no goroutine: nothing to flag
	}
	return out
}
