// Package experiments is a registry-analyzer fixture: Fig1 is registered,
// Orphaned has the Runner signature but is missing from Registry(), and the
// unexported helper is exempt.
package experiments

type Context struct{}

type Runner func(ctx *Context) error

type Entry struct {
	ID  string
	Run Runner
}

func Registry() []Entry {
	return []Entry{{ID: "fig1", Run: Fig1}}
}

func Fig1(ctx *Context) error { return nil }

func Orphaned(ctx *Context) error { return nil } // want "Orphaned has the experiment Runner signature but is missing from Registry"

func helper(ctx *Context) error { return nil }
