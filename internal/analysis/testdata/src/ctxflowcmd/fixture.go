// Command ctxflowcmd is the ctxflow fixture for the cmd exemption: a main
// package may mint root contexts, but a function that already holds a ctx
// parameter must not shadow it with a fresh one.
package main

import "context"

func root() context.Context {
	return context.Background() // a cmd package owns the process lifetime
}

func shadows(ctx context.Context, f func(context.Context) error) error {
	_ = ctx
	return f(context.Background()) // want "fresh context.Background passed while the enclosing function has a ctx parameter"
}

func main() {
	_ = shadows(root(), func(ctx context.Context) error { return ctx.Err() })
}
