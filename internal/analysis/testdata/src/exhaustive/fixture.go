// Package exhaustive is an exhaustive-analyzer fixture: Kind is an enum-like
// type (three same-typed package constants), so a switch over it must cover
// every constant or carry a default.
package exhaustive

type Kind uint8

const (
	KindA Kind = iota
	KindB
	KindC
)

// KindLast aliases KindC's value, so covering either counts for both.
const KindLast = KindC

func incomplete(k Kind) string {
	switch k { // want "switch over exhaustive.Kind is missing cases for KindC, KindLast and has no default"
	case KindA:
		return "a"
	case KindB:
		return "b"
	}
	return ""
}

func complete(k Kind) string {
	switch k {
	case KindA:
		return "a"
	case KindB:
		return "b"
	case KindC:
		return "c"
	}
	return ""
}

func defaulted(k Kind) string {
	switch k {
	case KindA:
		return "a"
	default:
		return "other"
	}
}

func notEnum(s string) string {
	switch s {
	case "x":
		return "x"
	}
	return ""
}
