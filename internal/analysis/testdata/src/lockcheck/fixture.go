// Package lockfix is the lockcheck fixture: release-on-every-path,
// blocking-while-held (direct and transitive), lock ordering, and the
// approved patterns that must stay silent.
package lockfix

import (
	"os"
	"sync"
	"time"
)

type store struct {
	mu sync.Mutex
	n  int
}

type registry struct {
	mu sync.Mutex
	v  int
}

// --- rule 1: a lock acquired must be released on every path ---

func missingOnReturn(s *store) {
	s.mu.Lock()
	if s.n > 0 {
		return // want "mutex lockfix.store.mu is still held at this return"
	}
	s.mu.Unlock()
}

func heldAtExit(s *store) {
	s.mu.Lock()
	s.n++
} // want "mutex lockfix.store.mu is still held at function exit"

func heldAtPanic(s *store) {
	s.mu.Lock()
	if s.n < 0 {
		panic("negative") // want "mutex lockfix.store.mu is still held at this panic"
	}
	s.mu.Unlock()
}

func deferOK(s *store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
}

func branchUnlockOK(s *store) int {
	s.mu.Lock()
	if s.n == 0 {
		s.mu.Unlock()
		return 0
	}
	n := s.n
	s.mu.Unlock()
	return n
}

func closureDeferOK(s *store) {
	s.mu.Lock()
	defer func() { s.mu.Unlock() }()
	s.n++
}

func loopImbalance(s *store, xs []int) {
	for _, x := range xs { // want "loop body changes which mutexes are held between iterations"
		s.mu.Lock()
		s.n += x
	}
	s.mu.Unlock()
}

// --- rule 2: nothing potentially blocking while a lock is held ---

func sendWhileHeld(s *store, ch chan int) {
	s.mu.Lock()
	ch <- s.n // want "potentially blocking channel send while holding lockfix.store.mu"
	s.mu.Unlock()
}

func recvWhileHeld(s *store, ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n = <-ch // want "potentially blocking channel receive while holding lockfix.store.mu"
}

func recvAfterUnlockOK(s *store, ch chan int) int {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	return <-ch
}

func selectWhileHeld(s *store, ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "potentially blocking select with no default while holding lockfix.store.mu"
	case v := <-ch:
		s.n = v
	}
}

func selectDefaultOK(s *store, ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-ch:
		s.n = v
	default:
	}
}

func waitWhileHeld(s *store, wg *sync.WaitGroup) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wg.Wait() // want "potentially blocking sync WaitGroup.Wait while holding lockfix.store.mu"
}

func sleepWhileHeld(s *store) {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want "potentially blocking time.Sleep while holding lockfix.store.mu"
	s.mu.Unlock()
}

func fileIOWhileHeld(s *store, f *os.File) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return f.Sync() // want "potentially blocking os.File.Sync .file I/O. while holding lockfix.store.mu"
}

// blocksTransitively is clean on its own — the receive runs lock-free.
func blocksTransitively(ch chan int) int { return <-ch }

func callBlockerWhileHeld(s *store, ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n = blocksTransitively(ch) // want "call to lockfix.blocksTransitively while holding lockfix.store.mu may block: channel receive"
}

func callBlockerAfterUnlockOK(s *store, ch chan int) int {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	return blocksTransitively(ch)
}

// closures are not walked: they run on their creator's schedule, not here.
func closureNotWalkedOK(s *store, ch chan int) func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	return func() { <-ch }
}

// --- rule 3: lock ordering ---

func lockAB(s *store, r *registry) {
	s.mu.Lock()
	r.mu.Lock() // want "lock-order inversion: lockfix.registry.mu acquired while holding lockfix.store.mu"
	r.v++
	r.mu.Unlock()
	s.mu.Unlock()
}

func lockBA(s *store, r *registry) {
	r.mu.Lock()
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	r.mu.Unlock()
}

func relock(s *store) {
	s.mu.Lock()
	s.mu.Lock() // want "mutex lockfix.store.mu acquired while already held: self-deadlock"
	s.mu.Unlock()
	s.mu.Unlock()
}

// touch is clean on its own; calling it with store.mu held is the deadlock.
func touch(s *store) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

func lockThenCallSelf(s *store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	touch(s) // want "call to lockfix.touch while holding lockfix.store.mu acquires it again: self-deadlock"
}
