// Package workload is the ignore-directive fixture: a and b are suppressed
// (directive above the line and trailing on the line), c and d carry
// malformed directives that must not suppress and must themselves be
// reported, and the bare directive at the bottom names no analyzer.
package workload

import "time"

func a() int64 {
	//simlint:ignore determinism wall-clock used only for log timestamps
	return time.Now().UnixNano()
}

func b() int64 {
	return time.Now().UnixNano() //simlint:ignore determinism wall-clock used only for log timestamps
}

func c() int64 {
	//simlint:ignore determinism
	return time.Now().UnixNano()
}

func d() int64 {
	//simlint:ignore nosuchcheck because reasons
	return time.Now().UnixNano()
}

//simlint:ignore
func e() {}
