// Package plotutil is a determinism-analyzer scoping fixture: the package
// name is outside determinismScope, so nothing here may be flagged even
// though every banned construct appears.
package plotutil

import (
	"math/rand"
	"time"
)

func Stamp() int64 { return time.Now().UnixNano() }

func Jitter(n int) int { return rand.Intn(n) }

func Keys(m map[uint64]int) []uint64 {
	var out []uint64
	for k := range m {
		out = append(out, k)
	}
	return out
}

func Async(f func()) {
	go f()
}
