// Package hotpath is a hotpath-analyzer fixture: Lookup carries the marker,
// helper is reached transitively, and cold is unmarked and unreferenced, so
// its allocations must not be flagged.
package hotpath

import "fmt"

func sink(v any) { _ = v }

//simlint:hotpath
func Lookup(keys []uint64, k uint64, prefix string) int {
	s := fmt.Sprintf("%d", k) // want "fmt.Sprintf on the hot path allocates"
	_ = s
	xs := []int{1, 2, 3} // want "slice composite literal allocates"
	_ = xs
	counts := map[uint64]int{} // want "map composite literal allocates"
	_ = counts
	p := &point{1, 2} // want "address-taken composite literal escapes to the heap"
	_ = p
	var out []uint64
	out = append(out, k) // want "append to out, which has no visible make"
	_ = out
	pre := make([]uint64, 0, 8)
	pre = append(pre, k) // capacity-managed: allowed
	_ = pre
	name := prefix + "x" // want "string concatenation allocates"
	_ = name
	f := func() {} // want "function literal on the hot path"
	f()
	sink(k)    // want "non-interface value passed to interface parameter boxes"
	sink(&k)   // pointer in interface word: no allocation, allowed
	_ = any(k) // want "conversion to interface type boxes the operand"
	helper()
	return 0
}

type point struct{ x, y int }

func helper() {
	_ = fmt.Sprintln("x") // want "fmt.Sprintln on the hot path allocates .hotpath.helper is reached from hot path hotpath.Lookup"
}

func cold() {
	_ = []int{1}
	_ = fmt.Sprintln("cold")
}
