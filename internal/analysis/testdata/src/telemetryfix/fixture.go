// Package telemetry is a telemetry-analyzer fixture: it declares its own
// Registry type (the analyzer matches by package and type name), so calls to
// Counter/Gauge/Histogram here are subject to the metric-name contract.
package telemetry

type Counter struct{}

func (c *Counter) Inc() {}

type Registry struct{}

func (r *Registry) Counter(name string) *Counter   { return nil }
func (r *Registry) Gauge(name string) *Counter     { return nil }
func (r *Registry) Histogram(name string) *Counter { return nil }

const histName = "frontend_dispatch_cycles"

func use(r *Registry, dynamic string) {
	r.Counter("uopcache_hits_total")
	r.Counter("policy_lru_evictions_total")
	r.Histogram(histName)       // constants propagate: allowed
	r.Counter(dynamic)          // want "metric name passed to Registry.Counter is not a compile-time constant"
	r.Gauge("UopCache_Bad")     // want "does not match"
	r.Histogram("misc_latency") // want "does not match"
}
