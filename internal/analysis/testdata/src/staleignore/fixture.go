// Package workload is the stale-suppression fixture: live() carries a
// directive that absorbs a real finding and stays silent; the directives in
// stale() (line 16) and above alsoStale() (line 20) absorb nothing, so each
// is itself a finding — the suppression inventory must not rot. The
// TestStaleSuppression assertions are keyed to those line numbers.
package workload

import "time"

func live() int64 {
	//simlint:ignore determinism wall-clock used only for log timestamps
	return time.Now().UnixNano()
}

func stale() int64 {
	//simlint:ignore determinism this code stopped using the wall clock long ago
	return 42
}

//simlint:ignore determinism nothing below ever violated the rule
func alsoStale() {}
