// Package workload is a determinism-analyzer fixture: its name is inside the
// analyzer's scope, so wall-clock reads, global randomness, and ordered
// emission from map iteration must all be flagged.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func Seed() int64 {
	return time.Now().UnixNano() // want "time.Now in a simulation package"
}

func Pick(n int) int {
	return rand.Intn(n) // want "math/rand.Intn uses the process-global source"
}

func PickSeeded(n int) int {
	r := rand.New(rand.NewSource(42)) // constructing a seeded source is the approved pattern
	return r.Intn(n)
}

func Keys(m map[uint64]int) []uint64 {
	var out []uint64
	for k := range m {
		out = append(out, k) // want "append to out inside map iteration"
	}
	return out
}

func SortedKeys(m map[uint64]int) []uint64 {
	out := make([]uint64, 0, len(m))
	for k := range m {
		out = append(out, k) // collect-then-sort: guarded by the sort below
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want "fmt.Printf inside map iteration"
	}
}

type table struct{ rows [][]string }

func (t *table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

func DumpTable(m map[string]int, tb *table) {
	for k := range m {
		tb.AddRow(k) // want "AddRow inside map iteration"
	}
}
