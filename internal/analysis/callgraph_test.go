package analysis

import (
	"go/types"
	"testing"
)

// cgFixture loads the cgraph fixture once per test and returns its graph.
func cgFixture(t *testing.T) *CallGraph {
	t.Helper()
	return loadFixture(t, "cgraph").CallGraph()
}

// cgFunc finds the unique graph node with the given name.
func cgFunc(t *testing.T, g *CallGraph, name string) *types.Func {
	t.Helper()
	var found *types.Func
	for _, f := range g.Funcs {
		if f.Name() != name {
			continue
		}
		if found != nil {
			t.Fatalf("two graph nodes named %s", name)
		}
		found = f
	}
	if found == nil {
		t.Fatalf("no graph node named %s", name)
	}
	return found
}

// edgeNames projects fn's outgoing edges of one kind onto callee names,
// preserving source order.
func edgeNames(g *CallGraph, fn *types.Func, kind CallKind) []string {
	var out []string
	for _, e := range g.Callees(fn) {
		if e.Kind == kind {
			out = append(out, e.Callee.Name())
		}
	}
	return out
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCallGraphInterfaceResolution proves an interface call fans out to
// every in-module implementation — value and pointer receiver alike — in
// deterministic (load) order, and to nothing else.
func TestCallGraphInterfaceResolution(t *testing.T) {
	g := cgFixture(t)
	via := cgFunc(t, g, "viaInterface")

	edges := g.Callees(via)
	if len(edges) != 2 {
		t.Fatalf("viaInterface has %d edges, want 2: %v", len(edges), edges)
	}
	var recvs []string
	for _, e := range edges {
		if e.Kind != CallInterface {
			t.Errorf("edge to %s has kind %s, want interface", e.Callee.Name(), e.Kind)
		}
		if e.Callee.Name() != "Greet" {
			t.Errorf("edge resolves to %s, want Greet", e.Callee.Name())
		}
		if e.Caller != via || e.Site == nil {
			t.Errorf("edge to %s lacks caller/site attribution", e.Callee.Name())
		}
		sig := e.Callee.Type().(*types.Signature)
		named := sig.Recv().Type()
		if p, ok := named.(*types.Pointer); ok {
			named = p.Elem()
		}
		recvs = append(recvs, named.(*types.Named).Obj().Name())
	}
	if want := []string{"english", "welsh"}; !sameStrings(recvs, want) {
		t.Errorf("Greet receivers = %v, want %v (load order, silent excluded)", recvs, want)
	}
}

// TestCallGraphFuncValueFlow proves a call through a local variable gets
// may-edges to every named function assigned to it in the body, in
// assignment order, with no spurious static edge.
func TestCallGraphFuncValueFlow(t *testing.T) {
	g := cgFixture(t)
	via := cgFunc(t, g, "viaValue")

	if got := edgeNames(g, via, CallStatic); len(got) != 0 {
		t.Errorf("viaValue has static edges %v, want none", got)
	}
	if got, want := edgeNames(g, via, CallFuncValue), []string{"helper", "other"}; !sameStrings(got, want) {
		t.Errorf("viaValue funcvalue edges = %v, want %v", got, want)
	}
}

// TestCallGraphRecursion proves cycles are represented (self loop, mutual
// pair) and that a traversal with a visited set terminates on them.
func TestCallGraphRecursion(t *testing.T) {
	g := cgFixture(t)
	even, odd, self := cgFunc(t, g, "even"), cgFunc(t, g, "odd"), cgFunc(t, g, "self")

	if got, want := edgeNames(g, even, CallStatic), []string{"odd"}; !sameStrings(got, want) {
		t.Errorf("even calls %v, want %v", got, want)
	}
	if got, want := edgeNames(g, odd, CallStatic), []string{"even"}; !sameStrings(got, want) {
		t.Errorf("odd calls %v, want %v", got, want)
	}
	if got, want := edgeNames(g, self, CallStatic), []string{"self"}; !sameStrings(got, want) {
		t.Errorf("self calls %v, want %v", got, want)
	}

	// BFS from even must terminate and reach exactly the cycle.
	seen := map[*types.Func]bool{even: true}
	queue := []*types.Func{even}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range g.Callees(cur) {
			if !seen[e.Callee] {
				seen[e.Callee] = true
				queue = append(queue, e.Callee)
			}
		}
		if len(seen) > g.NumNodes() {
			t.Fatalf("traversal escaped the graph: %d nodes seen", len(seen))
		}
	}
	if len(seen) != 2 || !seen[odd] {
		t.Errorf("reachable from even: %d nodes, want exactly {even, odd}", len(seen))
	}
}

// TestCallGraphModuleSmoke builds the graph over the whole module and pins
// its size to a broad band: a collapse to near-zero means resolution broke,
// a blow-up means edges are being duplicated. Update the bounds when the
// module grows past them.
func TestCallGraphModuleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	prog, err := Load(".", "uopsim/...")
	if err != nil {
		t.Fatalf("Load(uopsim/...): %v", err)
	}
	g := prog.CallGraph()
	if n := g.NumNodes(); n < 400 || n > 5000 {
		t.Errorf("module graph has %d nodes, want 400..5000", n)
	}
	if n := g.NumEdges(); n < 800 || n > 50000 {
		t.Errorf("module graph has %d edges, want 800..50000", n)
	}
	if g.NumEdges() < g.NumNodes() {
		t.Errorf("fewer edges (%d) than nodes (%d): resolution looks broken", g.NumEdges(), g.NumNodes())
	}
}
