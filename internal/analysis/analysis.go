// Package analysis is a from-scratch static-analysis framework for the
// simulator, built only on the standard library's go/ast, go/parser and
// go/types (the repository's stdlib-only rule rules out golang.org/x/tools).
// It loads the module, type-checks every package, and runs a set of pluggable
// analyzers that enforce the invariants the paper's evaluation depends on:
// bit-for-bit reproducible runs, allocation-free hot paths, and registries
// that actually cover the implementations they claim to.
//
// Diagnostics can be suppressed inline with
//
//	//simlint:ignore <analyzer> <reason>
//
// placed on the offending line or on the line directly above it. The reason
// is mandatory: a suppression without one is itself a diagnostic. See
// ANALYSIS.md at the repository root for the analyzer catalogue and the
// contract in full.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned at a concrete file:line.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Package is one type-checked package of the loaded program.
type Package struct {
	// Path is the import path; Name the package name.
	Path, Name string
	// Types is the type-checked package object.
	Types *types.Package
	// Files are the parsed sources (non-test files only).
	Files []*ast.File
}

// Program is a fully loaded, fully type-checked set of packages sharing one
// FileSet and one types.Info, so cross-package analyzers resolve ASTs and
// objects uniformly.
type Program struct {
	Fset     *token.FileSet
	Info     *types.Info
	Packages []*Package

	byPath    map[string]*Package
	funcDecls map[*types.Func]*ast.FuncDecl
}

// Lookup returns the loaded package with the given import path, if any.
func (p *Program) Lookup(path string) *Package { return p.byPath[path] }

// IsModulePackage reports whether pkg was loaded from source (a package of
// this module) rather than imported from export data.
func (p *Program) IsModulePackage(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	return p.byPath[pkg.Path()] != nil
}

// Pass carries one analyzer's run over a program.
type Pass struct {
	Prog     *Program
	analyzer *Analyzer
	report   func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Prog.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one pluggable check.
type Analyzer struct {
	// Name is the identifier used in diagnostics and ignore directives.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run executes the check over the whole program.
	Run func(*Pass)
}

// Run executes the analyzers over the program and returns their diagnostics
// with inline suppressions applied, sorted by position. Malformed or unknown
// suppression directives are reported as diagnostics of the pseudo-analyzer
// "simlint".
func Run(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Prog: prog, analyzer: a}
		pass.report = func(d Diagnostic) { diags = append(diags, d) }
		a.Run(pass)
	}
	dirs, problems := collectDirectives(prog, analyzers)
	kept := problems
	for _, d := range diags {
		if !dirs.suppresses(d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return kept
}

// ignoreDirective is one parsed //simlint:ignore comment.
type ignoreDirective struct {
	analyzer string
	line     int // the comment's own line
}

// directiveIndex maps filename -> analyzer -> set of lines carrying an
// ignore. A directive suppresses its own line and the line below it, so a
// trailing comment and a comment-above both work.
type directiveIndex map[string]map[string]map[int]bool

func (idx directiveIndex) suppresses(d Diagnostic) bool {
	lines := idx[d.Pos.Filename][d.Analyzer]
	return lines[d.Pos.Line] || lines[d.Pos.Line-1]
}

const (
	ignorePrefix  = "simlint:ignore"
	hotpathMarker = "simlint:hotpath"
)

// collectDirectives parses every //simlint:ignore comment in the program,
// returning the suppression index and diagnostics for malformed directives
// (missing analyzer, missing reason, or an analyzer name no one registered).
func collectDirectives(prog *Program, analyzers []*Analyzer) (directiveIndex, []Diagnostic) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	idx := directiveIndex{}
	var problems []Diagnostic
	problem := func(pos token.Position, format string, args ...any) {
		problems = append(problems, Diagnostic{Pos: pos, Analyzer: "simlint", Message: fmt.Sprintf(format, args...)})
	}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//"+ignorePrefix)
					if !ok {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					fields := strings.Fields(text)
					if len(fields) == 0 {
						problem(pos, "ignore directive names no analyzer (want //%s <analyzer> <reason>)", ignorePrefix)
						continue
					}
					name := fields[0]
					if !known[name] && name != "simlint" {
						problem(pos, "ignore directive names unknown analyzer %q", name)
						continue
					}
					if len(fields) < 2 {
						problem(pos, "ignore directive for %q gives no reason; the reason is mandatory", name)
						continue
					}
					if idx[pos.Filename] == nil {
						idx[pos.Filename] = map[string]map[int]bool{}
					}
					if idx[pos.Filename][name] == nil {
						idx[pos.Filename][name] = map[int]bool{}
					}
					idx[pos.Filename][name][pos.Line] = true
				}
			}
		}
	}
	return idx, problems
}

// isHotpathMarked reports whether the function declaration carries the
// //simlint:hotpath marker in its doc comment.
func isHotpathMarked(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if strings.HasPrefix(c.Text, "//"+hotpathMarker) {
			return true
		}
	}
	return false
}

// funcFor resolves a FuncDecl to its types.Func object.
func (p *Program) funcFor(decl *ast.FuncDecl) *types.Func {
	if obj, ok := p.Info.Defs[decl.Name].(*types.Func); ok {
		return obj
	}
	return nil
}

// declOf finds the FuncDecl for a function object, if it was loaded from
// source. The index over every declaration is built once, on first use.
func (p *Program) declOf(fn *types.Func) *ast.FuncDecl {
	if p.funcDecls == nil {
		p.funcDecls = map[*types.Func]*ast.FuncDecl{}
		for _, pkg := range p.Packages {
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok {
						continue
					}
					if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
						p.funcDecls[obj] = fd
					}
				}
			}
		}
	}
	return p.funcDecls[fn]
}
