// Package analysis is a from-scratch static-analysis framework for the
// simulator, built only on the standard library's go/ast, go/parser and
// go/types (the repository's stdlib-only rule rules out golang.org/x/tools).
// It loads the module, type-checks every package, and runs a set of pluggable
// analyzers that enforce the invariants the paper's evaluation depends on:
// bit-for-bit reproducible runs, allocation-free hot paths, and registries
// that actually cover the implementations they claim to.
//
// Diagnostics can be suppressed inline with
//
//	//simlint:ignore <analyzer> <reason>
//
// placed on the offending line or on the line directly above it. The reason
// is mandatory: a suppression without one is itself a diagnostic. See
// ANALYSIS.md at the repository root for the analyzer catalogue and the
// contract in full.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned at a concrete file:line.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Package is one type-checked package of the loaded program.
type Package struct {
	// Path is the import path; Name the package name.
	Path, Name string
	// Types is the type-checked package object.
	Types *types.Package
	// Files are the parsed sources (non-test files only).
	Files []*ast.File
}

// Program is a fully loaded, fully type-checked set of packages sharing one
// FileSet and one types.Info, so cross-package analyzers resolve ASTs and
// objects uniformly.
type Program struct {
	Fset     *token.FileSet
	Info     *types.Info
	Packages []*Package

	byPath    map[string]*Package
	funcDecls map[*types.Func]*ast.FuncDecl
	callgraph *CallGraph
}

// Lookup returns the loaded package with the given import path, if any.
func (p *Program) Lookup(path string) *Package { return p.byPath[path] }

// IsModulePackage reports whether pkg was loaded from source (a package of
// this module) rather than imported from export data.
func (p *Program) IsModulePackage(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	return p.byPath[pkg.Path()] != nil
}

// Pass carries one analyzer's run over a program.
type Pass struct {
	Prog     *Program
	analyzer *Analyzer
	report   func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Prog.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one pluggable check.
type Analyzer struct {
	// Name is the identifier used in diagnostics and ignore directives.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run executes the check over the whole program.
	Run func(*Pass)
}

// SuppressedDiagnostic is a finding silenced by an in-source
// //simlint:ignore directive, kept so SARIF output can record the
// suppression (kind "inSource") with its mandatory justification.
type SuppressedDiagnostic struct {
	Diagnostic
	// Justification is the directive's reason text.
	Justification string
}

// Result is one full analysis run: the surviving diagnostics (including
// directive problems and stale-suppression findings from the pseudo-analyzer
// "simlint") and the findings that in-source directives suppressed.
type Result struct {
	Diagnostics []Diagnostic
	Suppressed  []SuppressedDiagnostic
}

// Run executes the analyzers over the program and returns their diagnostics
// with inline suppressions applied, sorted by position. Malformed or unknown
// suppression directives are reported as diagnostics of the pseudo-analyzer
// "simlint".
func Run(prog *Program, analyzers []*Analyzer) []Diagnostic {
	return RunAll(prog, analyzers).Diagnostics
}

// RunAll is Run plus the suppression record: every diagnostic an ignore
// directive absorbed is returned under Suppressed with the directive's
// justification. A well-formed directive that absorbs nothing — for an
// analyzer that actually ran — is itself reported, so the suppression
// inventory cannot rot as the code it once justified changes underneath it.
func RunAll(prog *Program, analyzers []*Analyzer) Result {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Prog: prog, analyzer: a}
		pass.report = func(d Diagnostic) { diags = append(diags, d) }
		a.Run(pass)
	}
	dirs, problems := collectDirectives(prog, analyzers)
	var res Result
	kept := problems
	for _, d := range diags {
		if dir := dirs.suppressor(d); dir != nil {
			dir.hits++
			res.Suppressed = append(res.Suppressed, SuppressedDiagnostic{Diagnostic: d, Justification: dir.reason})
		} else {
			kept = append(kept, d)
		}
	}
	for _, dir := range dirs.ordered {
		if dir.hits == 0 {
			kept = append(kept, Diagnostic{
				Pos:      dir.pos,
				Analyzer: "simlint",
				Message:  fmt.Sprintf("ignore directive for %q suppresses nothing; delete the stale suppression", dir.analyzer),
			})
		}
	}
	sortDiagnostics(kept)
	sort.Slice(res.Suppressed, func(i, j int) bool {
		return diagnosticLess(res.Suppressed[i].Diagnostic, res.Suppressed[j].Diagnostic)
	})
	res.Diagnostics = kept
	return res
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool { return diagnosticLess(ds[i], ds[j]) })
}

func diagnosticLess(a, b Diagnostic) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	if a.Pos.Column != b.Pos.Column {
		return a.Pos.Column < b.Pos.Column
	}
	return a.Message < b.Message
}

// ignoreDirective is one parsed, well-formed //simlint:ignore comment. hits
// counts the diagnostics it suppressed in this run; zero hits for an
// analyzer that ran means the directive is stale.
type ignoreDirective struct {
	analyzer string
	reason   string
	pos      token.Position // the comment's own position
	hits     int
}

// directiveIndex holds the run's directives: byLine maps
// filename -> analyzer -> comment line -> directive, and ordered preserves
// collection order for the stale-suppression sweep. A directive suppresses
// its own line and the line below it, so a trailing comment and a
// comment-above both work.
type directiveIndex struct {
	byLine  map[string]map[string]map[int]*ignoreDirective
	ordered []*ignoreDirective
}

func (idx *directiveIndex) suppressor(d Diagnostic) *ignoreDirective {
	lines := idx.byLine[d.Pos.Filename][d.Analyzer]
	if dir := lines[d.Pos.Line]; dir != nil {
		return dir
	}
	return lines[d.Pos.Line-1]
}

const (
	ignorePrefix  = "simlint:ignore"
	hotpathMarker = "simlint:hotpath"
)

// collectDirectives parses every //simlint:ignore comment in the program,
// returning the suppression index and diagnostics for malformed directives
// (missing analyzer, missing reason, or an analyzer name no one registered).
func collectDirectives(prog *Program, analyzers []*Analyzer) (*directiveIndex, []Diagnostic) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	idx := &directiveIndex{byLine: map[string]map[string]map[int]*ignoreDirective{}}
	var problems []Diagnostic
	problem := func(pos token.Position, format string, args ...any) {
		problems = append(problems, Diagnostic{Pos: pos, Analyzer: "simlint", Message: fmt.Sprintf(format, args...)})
	}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//"+ignorePrefix)
					if !ok {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					fields := strings.Fields(text)
					if len(fields) == 0 {
						problem(pos, "ignore directive names no analyzer (want //%s <analyzer> <reason>)", ignorePrefix)
						continue
					}
					name := fields[0]
					if !known[name] && name != "simlint" {
						problem(pos, "ignore directive names unknown analyzer %q", name)
						continue
					}
					if len(fields) < 2 {
						problem(pos, "ignore directive for %q gives no reason; the reason is mandatory", name)
						continue
					}
					if !known[name] {
						// A "simlint" directive: the pseudo-analyzer's own
						// findings (directive problems, stale suppressions)
						// are deliberately unsuppressable, so don't index or
						// stale-check it — just reject it outright.
						problem(pos, "ignore directive for %q is ineffective: simlint's own findings cannot be suppressed", name)
						continue
					}
					dir := &ignoreDirective{analyzer: name, reason: strings.Join(fields[1:], " "), pos: pos}
					if idx.byLine[pos.Filename] == nil {
						idx.byLine[pos.Filename] = map[string]map[int]*ignoreDirective{}
					}
					if idx.byLine[pos.Filename][name] == nil {
						idx.byLine[pos.Filename][name] = map[int]*ignoreDirective{}
					}
					idx.byLine[pos.Filename][name][pos.Line] = dir
					idx.ordered = append(idx.ordered, dir)
				}
			}
		}
	}
	return idx, problems
}

// isHotpathMarked reports whether the function declaration carries the
// //simlint:hotpath marker in its doc comment.
func isHotpathMarked(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if strings.HasPrefix(c.Text, "//"+hotpathMarker) {
			return true
		}
	}
	return false
}

// funcFor resolves a FuncDecl to its types.Func object.
func (p *Program) funcFor(decl *ast.FuncDecl) *types.Func {
	if obj, ok := p.Info.Defs[decl.Name].(*types.Func); ok {
		return obj
	}
	return nil
}

// declOf finds the FuncDecl for a function object, if it was loaded from
// source. The index over every declaration is built once, on first use.
func (p *Program) declOf(fn *types.Func) *ast.FuncDecl {
	if p.funcDecls == nil {
		p.funcDecls = map[*types.Func]*ast.FuncDecl{}
		for _, pkg := range p.Packages {
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok {
						continue
					}
					if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
						p.funcDecls[obj] = fd
					}
				}
			}
		}
	}
	return p.funcDecls[fn]
}
