package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// Exhaustive enforces that a switch over one of the repository's enum-like
// constant sets (event kinds, probe kinds, profile sources, insert outcomes,
// ...) either covers every declared constant or carries a default clause.
// Adding an enum member without updating every switch is how an event kind
// silently renders as an empty string in the JSONL trace.
//
// An enum-like set is a defined non-boolean basic type declared in a module
// package that has at least two package-level constants of that exact type.
var Exhaustive = &Analyzer{
	Name: "exhaustive",
	Doc:  "switches over module enum types must cover all constants or have a default",
	Run:  runExhaustive,
}

func runExhaustive(pass *Pass) {
	prog := pass.Prog
	enums := map[*types.TypeName][]*types.Const{}

	enumConsts := func(tn *types.TypeName) []*types.Const {
		if cs, ok := enums[tn]; ok {
			return cs
		}
		var cs []*types.Const
		scope := tn.Pkg().Scope()
		for _, name := range scope.Names() {
			c, ok := scope.Lookup(name).(*types.Const)
			if !ok {
				continue
			}
			if types.Identical(c.Type(), tn.Type()) {
				cs = append(cs, c)
			}
		}
		enums[tn] = cs
		return cs
	}

	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok || sw.Tag == nil {
					return true
				}
				tv, ok := prog.Info.Types[sw.Tag]
				if !ok || tv.Type == nil {
					return true
				}
				named, ok := tv.Type.(*types.Named)
				if !ok {
					return true
				}
				tn := named.Obj()
				if tn.Pkg() == nil || !prog.IsModulePackage(tn.Pkg()) {
					return true
				}
				basic, ok := named.Underlying().(*types.Basic)
				if !ok || basic.Info()&types.IsBoolean != 0 {
					return true
				}
				consts := enumConsts(tn)
				if len(consts) < 2 {
					return true
				}

				covered := map[string]bool{}
				hasDefault := false
				for _, stmt := range sw.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					if cc.List == nil {
						hasDefault = true
						continue
					}
					for _, e := range cc.List {
						if etv, ok := prog.Info.Types[e]; ok && etv.Value != nil {
							covered[valueKey(etv.Value)] = true
						}
					}
				}
				if hasDefault {
					return true
				}
				var missing []string
				for _, c := range consts {
					if !covered[valueKey(c.Val())] {
						missing = append(missing, c.Name())
					}
				}
				if len(missing) > 0 {
					sort.Strings(missing)
					pass.Reportf(sw.Pos(), "switch over %s.%s is missing cases for %s and has no default",
						tn.Pkg().Name(), tn.Name(), strings.Join(missing, ", "))
				}
				return true
			})
		}
	}
}

// valueKey canonicalizes a constant value so aliases of the same value count
// as covering each other.
func valueKey(v constant.Value) string { return v.ExactString() }
