package workload

import "fmt"

// Input describes one input variant of an application. The paper varies
// input data size, the webpage requested, client request rates, random
// seeds, query mapping styles, database scaling factors, and query mixes to
// obtain multiple traces per application (Section VI-A); variant 0 is the
// default input used for the main results and the others feed the
// cross-validation study (Fig. 18).
type Input struct {
	// Index is the value passed to Generate.
	Index int
	// Description says what the paper-equivalent variation would be.
	Description string
}

// Inputs returns the named input variants for an application. Every
// application has the default plus three alternates; the generator derives
// per-variant behaviour (branch outcomes, loop counts, phase order, mild
// popularity perturbation) from the index.
func Inputs(app string) ([]Input, error) {
	desc, err := inputDescriptions(app)
	if err != nil {
		return nil, err
	}
	out := make([]Input, len(desc))
	for i, d := range desc {
		out[i] = Input{Index: i, Description: d}
	}
	return out, nil
}

func inputDescriptions(app string) ([]string, error) {
	switch app {
	case "cassandra", "kafka", "tomcat":
		return []string{
			"default DaCapo input",
			"small input data size",
			"large input data size",
			"alternate random seed",
		}, nil
	case "drupal", "mediawiki", "wordpress":
		return []string{
			"default page (feed=rss2)",
			"alternate page (p=37)",
			"2 client requests per second",
			"10 client requests per second",
		}, nil
	case "postgres":
		return []string{
			"pgbench default scaling",
			"pgbench scale factor 100",
			"pgbench scale factor 8000",
			"pgbench select-only mix",
		}, nil
	case "mysql":
		return []string{
			"TPC-C default mix",
			"oltp_read_only queries",
			"oltp_write_only queries",
			"alternate warehouse count",
		}, nil
	case "python":
		return []string{
			"pyperformance default",
			"random seed 1",
			"random seed 10",
			"alternate benchmark subset",
		}, nil
	case "finagle":
		return []string{
			"default request mix",
			"imperative query mapping",
			"declarative query mapping",
			"alternate fanout",
		}, nil
	case "clang":
		return []string{
			"LLVM default build",
			"debug build flags",
			"release build flags",
			"alternate module order",
		}, nil
	default:
		return nil, fmt.Errorf("workload: unknown application %q", app)
	}
}
