// Package workload generates synthetic instruction traces that stand in for
// the 11 data-center applications of the paper's Table II (Cassandra, Kafka,
// Tomcat, Drupal, Mediawiki, Wordpress, Postgres, MySQL, Python, Finagle,
// Clang). The paper collected Intel PT traces from the real applications; we
// do not have them, so each application is modelled as a parameterized
// synthetic program whose dynamic behaviour reproduces the trace properties
// the replacement-policy study depends on:
//
//   - a large code footprint relative to the micro-op cache (the paper finds
//     >99% of misses are capacity/conflict misses);
//   - a skewed, Zipf-like PW popularity distribution with hot, warm and cold
//     regions (Fig. 22 of the paper);
//   - scattered reuse distances (>20% of PWs with stack distance > 30);
//   - program phases that make some globally-cold code transiently hot
//     (exercising FURBYS's local miss-pitfall detector);
//   - sometimes-taken conditional branches that create overlapping PWs with
//     a common start address (exercising partial hits);
//   - variable micro-op density per instruction (exercising variable PW
//     cost, 1–8 micro-ops per entry).
//
// Generation is fully deterministic: the static program is derived from the
// application's seed alone, while the dynamic walk additionally depends on
// the input variant, so different inputs execute the same code — exactly the
// setup the paper's cross-validation experiment (Fig. 18) requires.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"uopsim/internal/trace"
)

// Spec describes one synthetic application.
type Spec struct {
	// Name identifies the application (lower-case, as in Table II).
	Name string
	// Description mirrors the paper's Table II description column.
	Description string
	// TargetMPKI is the branch misprediction rate per kilo-instruction
	// the paper reports for the application (Table II); the generator's
	// FlakyFrac is derived from it.
	TargetMPKI float64

	// Funcs is the number of functions in the static program.
	Funcs int
	// MinBlocks and MaxBlocks bound the basic blocks per function.
	MinBlocks, MaxBlocks int
	// ZipfS is the skew of the function-popularity distribution
	// (larger = more skewed toward a small hot set).
	ZipfS float64
	// Phases is the number of distinct program phases; each phase
	// promotes a different set of cold functions to transiently hot.
	Phases int
	// PhaseLen is the number of top-level function invocations per phase.
	PhaseLen int
	// PromotePerPhase is how many cold functions each phase makes hot.
	PromotePerPhase int
	// LoopMean is the mean iteration count of function-internal loops.
	LoopMean float64
	// LoopFrac is the fraction of functions containing a loop.
	LoopFrac float64
	// FlakyFrac is the fraction of conditional branches with
	// near-random outcomes (drives the branch MPKI and, because flaky
	// branches are sometimes taken and sometimes not, the overlapping-PW
	// rate).
	FlakyFrac float64
	// UopHeavyFrac is the fraction of blocks decoding to ~3 micro-ops
	// per instruction (microcoded patterns); the rest average 1–1.5.
	UopHeavyFrac float64
	// CallFrac is the probability a block calls a shared utility
	// function.
	CallFrac float64
	// Burstiness is the probability the next top-level invocation
	// repeats the previous function (temporal locality bursts).
	Burstiness float64
	// Seed fixes the static program layout.
	Seed int64
}

// StaticPWEstimate returns a rough count of distinct static prediction
// windows the program contains, for footprint reporting.
func (s Spec) StaticPWEstimate() int {
	avgBlocks := float64(s.MinBlocks+s.MaxBlocks) / 2
	return int(float64(s.Funcs) * avgBlocks * 1.3)
}

// flakyFromMPKI derives the flaky-branch fraction from a Table II MPKI
// target: with roughly 100 conditional branches per kilo-instruction and a
// ~45% misprediction rate on a flaky branch, MPKI ≈ 45 × FlakyFrac.
func flakyFromMPKI(mpki float64) float64 {
	f := mpki / 45.0
	if f > 0.9 {
		f = 0.9
	}
	return f
}

// Catalog returns the 11 application models of Table II, in the paper's
// order. Parameters encode each application's qualitative character: the
// Java services have mid-size footprints; the PHP stacks (OSS-performance)
// have large flat footprints; the databases have smaller, highly skewed
// footprints with few mispredictions; the interpreters and RPC framework
// are branchy; Clang has the largest footprint.
func Catalog() []Spec {
	specs := []Spec{
		{Name: "cassandra", Description: "From the Java DaCapo benchmark suite", TargetMPKI: 1.78,
			Funcs: 500, MinBlocks: 8, MaxBlocks: 24, ZipfS: 1.10, Phases: 5, PromotePerPhase: 12,
			LoopMean: 8, LoopFrac: 0.35, UopHeavyFrac: 0.15, CallFrac: 0.10, Burstiness: 0.35, Seed: 1001},
		{Name: "kafka", Description: "From the Java DaCapo benchmark suite", TargetMPKI: 1.77,
			Funcs: 450, MinBlocks: 8, MaxBlocks: 22, ZipfS: 1.05, Phases: 6, PromotePerPhase: 14,
			LoopMean: 6, LoopFrac: 0.30, UopHeavyFrac: 0.18, CallFrac: 0.12, Burstiness: 0.30, Seed: 1002},
		{Name: "tomcat", Description: "From the Java DaCapo benchmark suite", TargetMPKI: 4.45,
			Funcs: 600, MinBlocks: 6, MaxBlocks: 20, ZipfS: 0.92, Phases: 6, PromotePerPhase: 16,
			LoopMean: 5, LoopFrac: 0.25, UopHeavyFrac: 0.12, CallFrac: 0.14, Burstiness: 0.25, Seed: 1003},
		{Name: "drupal", Description: "From Facebook's OSS performance benchmark suite", TargetMPKI: 1.89,
			Funcs: 700, MinBlocks: 6, MaxBlocks: 18, ZipfS: 0.95, Phases: 5, PromotePerPhase: 18,
			LoopMean: 4, LoopFrac: 0.22, UopHeavyFrac: 0.20, CallFrac: 0.15, Burstiness: 0.22, Seed: 1004},
		{Name: "mediawiki", Description: "From Facebook's OSS performance benchmark suite", TargetMPKI: 2.35,
			Funcs: 650, MinBlocks: 6, MaxBlocks: 18, ZipfS: 0.95, Phases: 5, PromotePerPhase: 16,
			LoopMean: 4, LoopFrac: 0.22, UopHeavyFrac: 0.20, CallFrac: 0.15, Burstiness: 0.22, Seed: 1005},
		{Name: "wordpress", Description: "From Facebook's OSS performance benchmark suite", TargetMPKI: 5.64,
			Funcs: 750, MinBlocks: 6, MaxBlocks: 16, ZipfS: 0.90, Phases: 6, PromotePerPhase: 20,
			LoopMean: 3, LoopFrac: 0.20, UopHeavyFrac: 0.22, CallFrac: 0.16, Burstiness: 0.20, Seed: 1006},
		{Name: "postgres", Description: "Collected when used to serve pgbench queries", TargetMPKI: 0.41,
			Funcs: 300, MinBlocks: 10, MaxBlocks: 28, ZipfS: 1.25, Phases: 4, PromotePerPhase: 8,
			LoopMean: 12, LoopFrac: 0.45, UopHeavyFrac: 0.10, CallFrac: 0.08, Burstiness: 0.45, Seed: 1007},
		{Name: "mysql", Description: "Collected while serving TPC-C queries", TargetMPKI: 0.66,
			Funcs: 480, MinBlocks: 10, MaxBlocks: 26, ZipfS: 1.08, Phases: 4, PromotePerPhase: 12,
			LoopMean: 7, LoopFrac: 0.35, UopHeavyFrac: 0.12, CallFrac: 0.09, Burstiness: 0.30, Seed: 1008},
		{Name: "python", Description: "Collected while running the pyperformance benchmark suite", TargetMPKI: 4.73,
			Funcs: 400, MinBlocks: 8, MaxBlocks: 22, ZipfS: 1.05, Phases: 7, PromotePerPhase: 12,
			LoopMean: 9, LoopFrac: 0.50, UopHeavyFrac: 0.14, CallFrac: 0.12, Burstiness: 0.50, Seed: 1009},
		{Name: "finagle", Description: "Twitter's microblogging service", TargetMPKI: 4.76,
			Funcs: 550, MinBlocks: 6, MaxBlocks: 20, ZipfS: 0.98, Phases: 6, PromotePerPhase: 14,
			LoopMean: 5, LoopFrac: 0.28, UopHeavyFrac: 0.16, CallFrac: 0.13, Burstiness: 0.28, Seed: 1010},
		{Name: "clang", Description: "Collected while building LLVM", TargetMPKI: 1.86,
			Funcs: 800, MinBlocks: 6, MaxBlocks: 18, ZipfS: 0.88, Phases: 5, PromotePerPhase: 20,
			LoopMean: 6, LoopFrac: 0.30, UopHeavyFrac: 0.14, CallFrac: 0.15, Burstiness: 0.25, Seed: 1011},
	}
	for i := range specs {
		specs[i].FlakyFrac = flakyFromMPKI(specs[i].TargetMPKI)
		if specs[i].PhaseLen == 0 {
			specs[i].PhaseLen = 4000
		}
	}
	return specs
}

// Get returns the catalog spec with the given name.
func Get(name string) (Spec, error) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown application %q", name)
}

// Names returns the application names in catalog order.
func Names() []string {
	cat := Catalog()
	out := make([]string, len(cat))
	for i, s := range cat {
		out[i] = s.Name
	}
	return out
}

// ---------------------------------------------------------------------------
// Static program construction.

type bblock struct {
	addr  uint64
	bytes uint16
	ninst uint16
	nuops uint16
	// kind is the terminating control-flow instruction.
	kind trace.BranchKind
	// takenProb applies to conditional branches.
	takenProb float64
	// flaky marks near-random conditionals.
	flaky bool
	// target is the taken target address (0 for rets, whose target is
	// the return address).
	target uint64
	// callee is the called function index for call blocks, else -1.
	callee int
	// loopBack marks the conditional at a loop's backedge.
	loopBack bool
}

func (b bblock) branchPC() uint64 {
	if b.kind == trace.BranchNone {
		return 0
	}
	// The branch is the last instruction of the block; approximate its
	// address as the block end minus an average instruction.
	per := int(b.bytes) / int(b.ninst)
	return b.addr + uint64(int(b.bytes)-per)
}

type function struct {
	blocks []bblock
	// loopHead/loopEnd are block indices of the internal loop, -1 if none.
	loopHead, loopEnd int
	loopMean          float64
}

// Program is a fully built static program plus its base popularity order.
type Program struct {
	Spec  Spec
	funcs []function
	// rank[i] is the i-th most popular function's index.
	rank []int
	// utilFuncs are shared callees (subset of funcs, called from many
	// callers — shared hot code).
	utilFuncs []int
}

// Build constructs the static program for the spec. The result depends only
// on Spec (notably Seed), never on the input variant.
func (s Spec) Build() *Program {
	rng := rand.New(rand.NewSource(s.Seed))
	p := &Program{Spec: s}
	addr := uint64(0x400000)
	nUtil := s.Funcs / 20
	if nUtil < 4 {
		nUtil = 4
	}
	for fi := 0; fi < s.Funcs; fi++ {
		nb := s.MinBlocks + rng.Intn(s.MaxBlocks-s.MinBlocks+1)
		fn := function{loopHead: -1, loopEnd: -1}
		hasLoop := rng.Float64() < s.LoopFrac && nb >= 4
		var loopHead, loopEnd int
		if hasLoop {
			loopHead = 1 + rng.Intn(nb/2)
			loopEnd = loopHead + 1 + rng.Intn(nb-loopHead-2)
			fn.loopHead, fn.loopEnd = loopHead, loopEnd
			fn.loopMean = s.LoopMean * (0.5 + rng.Float64())
		}
		for bi := 0; bi < nb; bi++ {
			ninst := uint16(2 + rng.Intn(10))
			per := 3 + rng.Intn(4) // 3-6 bytes per instruction
			bytes := ninst * uint16(per)
			density := 1.0 + 0.5*rng.Float64()
			if rng.Float64() < s.UopHeavyFrac {
				density = 2.0 + rng.Float64()
			}
			nuops := uint16(math.Max(1, math.Round(float64(ninst)*density)))
			b := bblock{bytes: bytes, ninst: ninst, nuops: nuops, callee: -1}
			last := bi == nb-1
			switch {
			case last:
				b.kind = trace.BranchRet
			case hasLoop && bi == loopEnd:
				b.kind = trace.BranchCond
				b.loopBack = true
			case rng.Float64() < s.CallFrac && nUtil > 0:
				b.kind = trace.BranchCall
				b.callee = s.Funcs - 1 - rng.Intn(nUtil) // utility funcs at the end
			default:
				r := rng.Float64()
				switch {
				case r < 0.55:
					b.kind = trace.BranchCond
					if rng.Float64() < s.FlakyFrac {
						b.flaky = true
						b.takenProb = 0.35 + 0.3*rng.Float64()
					} else if rng.Float64() < 0.5 {
						b.takenProb = 0.05 // strongly not-taken
					} else {
						b.takenProb = 0.92 // strongly taken
					}
				case r < 0.70:
					b.kind = trace.BranchUncond
				default:
					b.kind = trace.BranchNone // falls through
				}
			}
			fn.blocks = append(fn.blocks, b)
		}
		// Lay out the blocks contiguously and resolve targets.
		for bi := range fn.blocks {
			fn.blocks[bi].addr = addr
			addr += uint64(fn.blocks[bi].bytes)
		}
		for bi := range fn.blocks {
			b := &fn.blocks[bi]
			switch {
			case b.loopBack:
				b.target = fn.blocks[loopHead].addr
				// The loop-continue probability is set per
				// dynamic execution; takenProb is unused here.
			case b.kind == trace.BranchCond:
				// Conditional taken target skips the next block.
				tgt := bi + 2
				if tgt >= len(fn.blocks) {
					tgt = len(fn.blocks) - 1
				}
				b.target = fn.blocks[tgt].addr
			case b.kind == trace.BranchUncond:
				tgt := bi + 1
				if tgt >= len(fn.blocks) {
					tgt = len(fn.blocks) - 1
				}
				b.target = fn.blocks[tgt].addr
			}
		}
		p.funcs = append(p.funcs, fn)
		addr += 64 // gap between functions, keeps line sharing rare
	}
	for i := 0; i < nUtil; i++ {
		p.utilFuncs = append(p.utilFuncs, s.Funcs-1-i)
	}
	// Base popularity ranking: a fixed random permutation (drawn from the
	// static seed so it is shared across input variants).
	p.rank = rng.Perm(s.Funcs)
	return p
}

// NumFuncs returns the number of functions in the program.
func (p *Program) NumFuncs() int { return len(p.funcs) }

// ---------------------------------------------------------------------------
// Dynamic trace generation.

// zipfWeights returns normalized Zipf(s) weights for n ranks, plus the
// cumulative distribution for sampling.
func zipfWeights(n int, s float64) []float64 {
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return cdf
}

// sampleCDF draws an index from a cumulative distribution.
func sampleCDF(cdf []float64, r float64) int {
	i := sort.SearchFloat64s(cdf, r)
	if i >= len(cdf) {
		i = len(cdf) - 1
	}
	return i
}

// Generate produces a dynamic block trace of approximately numBlocks blocks
// for the given input variant. Variant 0 is the paper's "default input";
// other variants model different request mixes/seeds for cross-validation.
func (p *Program) Generate(numBlocks, input int) []trace.Block {
	s := p.Spec
	rng := rand.New(rand.NewSource(s.Seed*1_000_003 + int64(input)*7919 + 17))

	// Input variants perturb the popularity ranking slightly: a few
	// adjacent ranks swap, so the hot set is stable but not identical.
	// The perturbation is deliberately mild — different inputs to the
	// same binary shift request mixes, not the program's hot code — and
	// that stability is exactly what the paper's cross-validation
	// experiment (Fig. 18) relies on.
	rank := make([]int, len(p.rank))
	copy(rank, p.rank)
	for i := 0; i+1 < len(rank); i++ {
		if rng.Float64() < 0.04 {
			rank[i], rank[i+1] = rank[i+1], rank[i]
		}
	}
	cdf := zipfWeights(len(rank), s.ZipfS*(0.99+0.02*rng.Float64()))

	// Phase schedule: each phase promotes a handful of cold functions to
	// the front of the ranking. The promoted sets are chosen from the
	// static seed (so profiles can in principle see them) but their order
	// across the run depends on the input.
	staticRng := rand.New(rand.NewSource(s.Seed + 42))
	promoted := make([][]int, s.Phases)
	for ph := 0; ph < s.Phases; ph++ {
		set := make([]int, 0, s.PromotePerPhase)
		for len(set) < s.PromotePerPhase {
			// Pick from the cold half of the ranking.
			f := rank[len(rank)/2+staticRng.Intn(len(rank)/2)]
			set = append(set, f)
		}
		promoted[ph] = set
	}
	phaseOrder := rng.Perm(s.Phases)

	out := make([]trace.Block, 0, numBlocks+64)
	g := &walker{p: p, rng: rng, out: &out}

	invocation := 0
	lastFunc := -1
	for len(out) < numBlocks {
		ph := phaseOrder[(invocation/s.PhaseLen)%s.Phases]
		invocation++
		var f int
		switch {
		case lastFunc >= 0 && rng.Float64() < s.Burstiness:
			f = lastFunc
		case rng.Float64() < 0.30:
			// In-phase: draw from the promoted (locally hot) set.
			f = promoted[ph][rng.Intn(len(promoted[ph]))]
		default:
			f = rank[sampleCDF(cdf, rng.Float64())]
		}
		lastFunc = f
		// Patch the previous invocation's top-level ret to target this
		// function's entry, keeping the branch-target stream coherent.
		g.fixupLastRet(p.funcs[f].blocks[0].addr)
		g.execute(f, 0)
	}
	return out
}

// GenerateSpec is a convenience wrapper building the program and generating
// a trace in one call.
func GenerateSpec(s Spec, numBlocks, input int) []trace.Block {
	return s.Build().Generate(numBlocks, input)
}

// walker interprets the static program, emitting dynamic blocks.
type walker struct {
	p   *Program
	rng *rand.Rand
	out *[]trace.Block
}

const maxCallDepth = 3

func (w *walker) execute(fi, depth int) {
	fn := &w.p.funcs[fi]
	loopsLeft := 0
	if fn.loopHead >= 0 {
		// Geometric-ish loop count around the per-function mean.
		loopsLeft = 1 + w.rng.Intn(int(2*fn.loopMean)+1)
	}
	bi := 0
	steps := 0
	maxSteps := len(fn.blocks) * (loopsLeft + 4)
	for bi < len(fn.blocks) && steps < maxSteps {
		steps++
		b := fn.blocks[bi]
		dyn := trace.Block{
			Addr: b.addr, Bytes: b.bytes, NumInst: b.ninst, NumUops: b.nuops,
			Kind: b.kind, BranchPC: b.branchPC(),
		}
		switch b.kind {
		case trace.BranchNone:
			*w.out = append(*w.out, dyn)
			bi++
		case trace.BranchCond:
			var taken bool
			if b.loopBack {
				taken = loopsLeft > 0
				if loopsLeft > 0 {
					loopsLeft--
				}
			} else {
				taken = w.rng.Float64() < b.takenProb
			}
			dyn.Taken = taken
			if taken {
				dyn.Target = b.target
			}
			*w.out = append(*w.out, dyn)
			if taken {
				if b.loopBack {
					bi = fn.loopHead
				} else {
					bi = w.blockIndexAt(fn, b.target, bi)
				}
			} else {
				bi++
			}
		case trace.BranchUncond:
			dyn.Taken = true
			dyn.Target = b.target
			*w.out = append(*w.out, dyn)
			bi = w.blockIndexAt(fn, b.target, bi)
		case trace.BranchCall:
			if depth >= maxCallDepth {
				// Too deep: degrade the call to a jump over it so
				// control flow stays consistent.
				dyn.Kind = trace.BranchUncond
				dyn.Taken = true
				if bi+1 < len(fn.blocks) {
					dyn.Target = fn.blocks[bi+1].addr
				} else {
					dyn.Target = b.addr + uint64(b.bytes)
				}
				*w.out = append(*w.out, dyn)
				bi++
				break
			}
			callee := b.callee
			dyn.Taken = true
			dyn.Target = w.p.funcs[callee].blocks[0].addr
			*w.out = append(*w.out, dyn)
			w.execute(callee, depth+1)
			// Model the return by continuing at the next block: patch
			// the callee's final ret so it targets the return address.
			if bi+1 < len(fn.blocks) {
				w.fixupLastRet(fn.blocks[bi+1].addr)
			}
			bi++
		case trace.BranchRet:
			dyn.Taken = true
			// Target is patched by the caller via fixupLastRet; for
			// top-level invocations it stays 0 and the frontend
			// treats it as an arbitrary resteer.
			*w.out = append(*w.out, dyn)
			return
		default:
			*w.out = append(*w.out, dyn)
			bi++
		}
	}
}

// blockIndexAt finds the index of the block at addr within fn; falls back to
// advancing sequentially when the target is not a block head (defensive —
// construction always targets block heads).
func (w *walker) blockIndexAt(fn *function, addr uint64, cur int) int {
	for i := range fn.blocks {
		if fn.blocks[i].addr == addr {
			return i
		}
	}
	return cur + 1
}

// fixupLastRet patches the most recent ret block's target (the return
// address) so branch-target streams are well formed for the BTB/RAS model.
func (w *walker) fixupLastRet(retAddr uint64) {
	out := *w.out
	for i := len(out) - 1; i >= 0 && i >= len(out)-64; i-- {
		if out[i].Kind == trace.BranchRet && out[i].Target == 0 {
			out[i].Target = retAddr
			return
		}
	}
}
