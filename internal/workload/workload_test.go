package workload

import (
	"math"
	"reflect"
	"testing"

	"uopsim/internal/trace"
)

func TestCatalogHasElevenApps(t *testing.T) {
	cat := Catalog()
	if len(cat) != 11 {
		t.Fatalf("catalog has %d apps, want 11", len(cat))
	}
	want := []string{"cassandra", "kafka", "tomcat", "drupal", "mediawiki",
		"wordpress", "postgres", "mysql", "python", "finagle", "clang"}
	if !reflect.DeepEqual(Names(), want) {
		t.Errorf("Names() = %v", Names())
	}
	seen := map[int64]bool{}
	for _, s := range cat {
		if s.Funcs <= 0 || s.MinBlocks <= 0 || s.MaxBlocks < s.MinBlocks {
			t.Errorf("%s: bad size params %+v", s.Name, s)
		}
		if s.FlakyFrac <= 0 || s.FlakyFrac > 0.9 {
			t.Errorf("%s: FlakyFrac = %v", s.Name, s.FlakyFrac)
		}
		if s.PhaseLen <= 0 || s.Phases <= 0 {
			t.Errorf("%s: phase params %+v", s.Name, s)
		}
		if seen[s.Seed] {
			t.Errorf("%s: duplicate seed %d", s.Name, s.Seed)
		}
		seen[s.Seed] = true
		if s.StaticPWEstimate() < 1000 {
			t.Errorf("%s: footprint estimate %d too small to pressure a 512-entry cache", s.Name, s.StaticPWEstimate())
		}
	}
}

func TestGetKnownAndUnknown(t *testing.T) {
	s, err := Get("kafka")
	if err != nil || s.Name != "kafka" {
		t.Errorf("Get(kafka) = %+v, %v", s, err)
	}
	if _, err := Get("notanapp"); err == nil {
		t.Error("Get(notanapp) should fail")
	}
}

func TestFlakyFromMPKI(t *testing.T) {
	if got := flakyFromMPKI(4.5); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("flakyFromMPKI(4.5) = %v, want 0.1", got)
	}
	if got := flakyFromMPKI(1000); got != 0.9 {
		t.Errorf("flakyFromMPKI(1000) = %v, want clamp 0.9", got)
	}
}

func TestBuildDeterministic(t *testing.T) {
	s, _ := Get("postgres")
	p1 := s.Build()
	p2 := s.Build()
	if p1.NumFuncs() != p2.NumFuncs() {
		t.Fatal("func counts differ")
	}
	if !reflect.DeepEqual(p1.rank, p2.rank) {
		t.Error("popularity ranks differ across builds")
	}
	for i := range p1.funcs {
		if !reflect.DeepEqual(p1.funcs[i], p2.funcs[i]) {
			t.Fatalf("function %d differs across builds", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s, _ := Get("kafka")
	p := s.Build()
	t1 := p.Generate(5000, 0)
	t2 := p.Generate(5000, 0)
	if !reflect.DeepEqual(t1, t2) {
		t.Error("same input variant should generate identical traces")
	}
	t3 := p.Generate(5000, 1)
	if reflect.DeepEqual(t1[:1000], t3[:1000]) {
		t.Error("different input variants should generate different traces")
	}
}

// TestGenerateControlFlowConsistency verifies the emitted stream is a valid
// control-flow walk: after a not-taken or fall-through block, the next block
// starts at the fall-through address; after a taken branch (with known
// target), the next block starts at the target.
func TestGenerateControlFlowConsistency(t *testing.T) {
	s, _ := Get("mysql")
	blocks := GenerateSpec(s, 20000, 0)
	if len(blocks) < 20000 {
		t.Fatalf("trace too short: %d", len(blocks))
	}
	bad := 0
	for i := 0; i+1 < len(blocks); i++ {
		b, nxt := blocks[i], blocks[i+1]
		var want uint64
		if b.Taken {
			want = b.Target
			if want == 0 {
				continue // unpatched top-level ret at trace tail
			}
		} else {
			want = b.FallThrough()
		}
		if nxt.Addr != want {
			bad++
			if bad < 5 {
				t.Errorf("block %d: next addr %#x, want %#x (block %+v)", i, nxt.Addr, want, b)
			}
		}
	}
	if frac := float64(bad) / float64(len(blocks)); frac > 0.001 {
		t.Errorf("%.4f%% control-flow discontinuities, want ~0", 100*frac)
	}
}

// TestGenerateSaneBlocks checks structural invariants of every block.
func TestGenerateSaneBlocks(t *testing.T) {
	s, _ := Get("python")
	blocks := GenerateSpec(s, 10000, 0)
	for i, b := range blocks {
		if b.NumInst == 0 || b.Bytes == 0 || b.NumUops == 0 {
			t.Fatalf("block %d degenerate: %+v", i, b)
		}
		if b.Kind == trace.BranchNone && b.Taken {
			t.Fatalf("block %d: taken without a branch: %+v", i, b)
		}
		if b.Kind == trace.BranchUncond && !b.Taken {
			t.Fatalf("block %d: not-taken unconditional: %+v", i, b)
		}
	}
}

// TestGenerateBranchStats verifies conditional-branch density and flaky
// behaviour produce both taken and not-taken executions of the same branch —
// the precondition for overlapping PWs.
func TestGenerateBranchStats(t *testing.T) {
	s, _ := Get("wordpress")
	blocks := GenerateSpec(s, 50000, 0)
	outcomes := map[uint64][2]int{} // branchPC -> [notTaken, taken]
	var conds, insts int
	for _, b := range blocks {
		insts += int(b.NumInst)
		if b.Kind == trace.BranchCond {
			conds++
			o := outcomes[b.BranchPC]
			if b.Taken {
				o[1]++
			} else {
				o[0]++
			}
			outcomes[b.BranchPC] = o
		}
	}
	if conds == 0 {
		t.Fatal("no conditional branches")
	}
	both := 0
	for _, o := range outcomes {
		if o[0] > 0 && o[1] > 0 {
			both++
		}
	}
	if frac := float64(both) / float64(len(outcomes)); frac < 0.05 {
		t.Errorf("only %.2f%% of conditionals observed both directions; overlapping PWs need more", 100*frac)
	}
	condPerKI := float64(conds) / float64(insts) * 1000
	if condPerKI < 30 || condPerKI > 250 {
		t.Errorf("conditional branches per KI = %.1f, outside plausible range", condPerKI)
	}
}

// TestGenerateFootprintAndSkew checks the PW working set exceeds the cache
// capacity and popularity is skewed (hot PWs dominate lookups).
func TestGenerateFootprintAndSkew(t *testing.T) {
	s, _ := Get("clang")
	blocks := GenerateSpec(s, 80000, 0)
	pws := trace.FormPWs(blocks, 0)
	counts := map[uint64]int{}
	for _, p := range pws {
		counts[p.Start]++
	}
	if len(counts) < 1500 {
		t.Errorf("static PW footprint %d too small (cache holds ~500 PWs)", len(counts))
	}
	// Sort counts descending and check top-10% share.
	all := make([]int, 0, len(counts))
	for _, c := range counts {
		all = append(all, c)
	}
	total := 0
	for _, c := range all {
		total += c
	}
	// selection of top decile
	top := len(all) / 10
	// simple partial selection: count how many lookups the top decile has
	sorted := append([]int(nil), all...)
	for i := 0; i < top; i++ { // partial selection sort is fine at this size
		maxJ := i
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] > sorted[maxJ] {
				maxJ = j
			}
		}
		sorted[i], sorted[maxJ] = sorted[maxJ], sorted[i]
	}
	topSum := 0
	for i := 0; i < top; i++ {
		topSum += sorted[i]
	}
	if share := float64(topSum) / float64(total); share < 0.4 {
		t.Errorf("top-decile PW share = %.2f, want skewed (>0.4)", share)
	}
}

// TestGenerateVariableCost checks PW micro-op counts vary (variable cost).
func TestGenerateVariableCost(t *testing.T) {
	s, _ := Get("drupal")
	blocks := GenerateSpec(s, 30000, 0)
	pws := trace.FormPWs(blocks, 0)
	hist := map[int]int{}
	for _, p := range pws {
		hist[p.Entries(8)]++
	}
	if len(hist) < 2 {
		t.Errorf("all PWs occupy the same entry count: %v", hist)
	}
	small, large := 0, 0
	for _, p := range pws {
		if p.NumUops <= 4 {
			small++
		}
		if p.NumUops >= 9 {
			large++
		}
	}
	if small == 0 || large == 0 {
		t.Errorf("cost distribution not variable: small=%d large=%d of %d", small, large, len(pws))
	}
}

// TestGeneratePhases verifies different phases shift the working set: the
// set of hot PWs in an early window differs from a later window.
func TestGeneratePhases(t *testing.T) {
	s, _ := Get("tomcat")
	blocks := GenerateSpec(s, 120000, 0)
	pws := trace.FormPWs(blocks, 0)
	third := len(pws) / 3
	early := map[uint64]int{}
	late := map[uint64]int{}
	for _, p := range pws[:third] {
		early[p.Start]++
	}
	for _, p := range pws[2*third:] {
		late[p.Start]++
	}
	onlyEarly := 0
	for k := range early {
		if late[k] == 0 {
			onlyEarly++
		}
	}
	if frac := float64(onlyEarly) / float64(len(early)); frac < 0.05 {
		t.Errorf("working set appears static: only %.2f%% phase-exclusive PWs", 100*frac)
	}
}

func TestZipfWeights(t *testing.T) {
	cdf := zipfWeights(10, 1.0)
	if len(cdf) != 10 {
		t.Fatal("bad length")
	}
	if math.Abs(cdf[9]-1.0) > 1e-9 {
		t.Errorf("cdf should end at 1.0, got %v", cdf[9])
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i] <= cdf[i-1] {
			t.Errorf("cdf not increasing at %d", i)
		}
	}
	// First rank should dominate under s=1: p1 ≈ 0.34 for n=10.
	if cdf[0] < 0.2 {
		t.Errorf("rank-1 mass %v too small", cdf[0])
	}
}

func TestSampleCDF(t *testing.T) {
	cdf := []float64{0.5, 0.8, 1.0}
	for _, tc := range []struct {
		r    float64
		want int
	}{{0.0, 0}, {0.49, 0}, {0.5, 0}, {0.51, 1}, {0.9, 2}, {1.0, 2}} {
		if got := sampleCDF(cdf, tc.r); got != tc.want {
			t.Errorf("sampleCDF(%v) = %d, want %d", tc.r, got, tc.want)
		}
	}
}

func TestMPKIOrderingAcrossApps(t *testing.T) {
	// Apps with higher TargetMPKI must get a higher FlakyFrac.
	cat := Catalog()
	for i := range cat {
		for j := range cat {
			if cat[i].TargetMPKI > cat[j].TargetMPKI && cat[i].FlakyFrac < cat[j].FlakyFrac {
				t.Errorf("%s (MPKI %.2f, flaky %.3f) vs %s (MPKI %.2f, flaky %.3f)",
					cat[i].Name, cat[i].TargetMPKI, cat[i].FlakyFrac,
					cat[j].Name, cat[j].TargetMPKI, cat[j].FlakyFrac)
			}
		}
	}
}
