package workload

import (
	"reflect"
	"testing"
)

func TestInputsAllApps(t *testing.T) {
	for _, app := range Names() {
		ins, err := Inputs(app)
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		if len(ins) != 4 {
			t.Errorf("%s: %d inputs, want 4", app, len(ins))
		}
		for i, in := range ins {
			if in.Index != i {
				t.Errorf("%s input %d has index %d", app, i, in.Index)
			}
			if in.Description == "" {
				t.Errorf("%s input %d lacks a description", app, i)
			}
		}
	}
}

func TestInputsUnknownApp(t *testing.T) {
	if _, err := Inputs("nosuch"); err == nil {
		t.Error("unknown app should error")
	}
}

// TestInputVariantsShareStaticCode: the cross-validation premise — every
// input executes the same binary, so the sets of PW start addresses overlap
// heavily across variants.
func TestInputVariantsShareStaticCode(t *testing.T) {
	s, _ := Get("tomcat")
	p := s.Build()
	starts := func(input int) map[uint64]bool {
		out := map[uint64]bool{}
		for _, b := range p.Generate(30000, input) {
			out[b.Addr] = true
		}
		return out
	}
	s0, s1 := starts(0), starts(1)
	common := 0
	for k := range s0 {
		if s1[k] {
			common++
		}
	}
	if frac := float64(common) / float64(len(s0)); frac < 0.5 {
		t.Errorf("inputs share only %.1f%% of static blocks; profiles could not transfer", 100*frac)
	}
}

// TestInputVariantsDifferInBehaviour: variants must not be identical (or the
// cross-validation experiment would be vacuous).
func TestInputVariantsDifferInBehaviour(t *testing.T) {
	s, _ := Get("tomcat")
	p := s.Build()
	a := p.Generate(5000, 1)
	b := p.Generate(5000, 2)
	if reflect.DeepEqual(a, b) {
		t.Error("different inputs generated identical traces")
	}
}
