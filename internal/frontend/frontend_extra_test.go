package frontend_test

import (
	"testing"

	"uopsim/internal/backend"
	"uopsim/internal/branch"
	"uopsim/internal/cache"
	"uopsim/internal/frontend"
	"uopsim/internal/policy"
	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
	"uopsim/internal/workload"
)

func buildWith(cfg frontend.Config) (*frontend.Frontend, *uopcache.Cache) {
	bp := branch.New(branch.DefaultConfig())
	uc := uopcache.New(uopcache.DefaultConfig(), policy.NewLRU())
	l1i := cache.New(cache.Config{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8, LatencyCycles: 1})
	be := backend.New(backend.DefaultConfig())
	return frontend.New(cfg, bp, uc, l1i, be), uc
}

func TestDisableUopCacheDecodesEverything(t *testing.T) {
	spec, _ := workload.Get("kafka")
	blocks := workload.GenerateSpec(spec, 10000, 0)
	cfg := frontend.DefaultConfig()
	cfg.DisableUopCache = true
	f, uc := buildWith(cfg)
	res := f.RunBlocks(blocks)
	if res.Events.UopCacheHitUops != 0 {
		t.Error("disabled uop cache served uops")
	}
	if res.Events.UopCacheLookups != 0 {
		t.Error("disabled uop cache was looked up")
	}
	if uc.Stats.Insertions != 0 {
		t.Error("disabled uop cache was filled")
	}
	if res.Events.DecodedUops != res.Uops {
		t.Errorf("decoded %d of %d uops", res.Events.DecodedUops, res.Uops)
	}
}

func TestDisableSlowerThanEnable(t *testing.T) {
	spec, _ := workload.Get("kafka")
	blocks := workload.GenerateSpec(spec, 20000, 0)
	on, _ := buildWith(frontend.DefaultConfig())
	resOn := on.RunBlocks(blocks)
	cfg := frontend.DefaultConfig()
	cfg.DisableUopCache = true
	off, _ := buildWith(cfg)
	resOff := off.RunBlocks(blocks)
	if resOff.IPC() >= resOn.IPC() {
		t.Errorf("no-uop-cache IPC %.3f >= with-cache %.3f", resOff.IPC(), resOn.IPC())
	}
}

func TestNonInclusiveNoInvalidations(t *testing.T) {
	spec, _ := workload.Get("clang")
	blocks := workload.GenerateSpec(spec, 30000, 0)
	cfg := frontend.DefaultConfig()
	cfg.NonInclusive = true
	f, uc := buildWith(cfg)
	f.RunBlocks(blocks)
	if uc.Stats.Invalidations != 0 {
		t.Errorf("non-inclusive frontend invalidated %d windows", uc.Stats.Invalidations)
	}
}

func TestEmptyTrace(t *testing.T) {
	f, _ := buildWith(frontend.DefaultConfig())
	res := f.RunBlocks(nil)
	if res.Instructions != 0 || res.Uops != 0 {
		t.Errorf("empty trace produced work: %+v", res)
	}
	if res.IPC() != 0 {
		t.Error("empty trace IPC should be 0")
	}
}

func TestSingleBlock(t *testing.T) {
	f, _ := buildWith(frontend.DefaultConfig())
	res := f.RunBlocks([]trace.Block{{Addr: 0x1000, Bytes: 16, NumInst: 4, NumUops: 6}})
	if res.Instructions != 4 || res.Uops != 6 {
		t.Errorf("result = instructions %d uops %d", res.Instructions, res.Uops)
	}
	if res.Cycles == 0 {
		t.Error("zero cycles")
	}
}

// TestUopBandwidthMatters: raising the uop-cache delivery width speeds up a
// loop that hits the cache with wide windows.
func TestUopBandwidthMatters(t *testing.T) {
	var blocks []trace.Block
	for i := 0; i < 2000; i++ {
		blocks = append(blocks, trace.Block{
			Addr: 0x1000, Bytes: 60, NumInst: 15, NumUops: 24,
			Kind: trace.BranchUncond, Taken: true, Target: 0x1000, BranchPC: 0x1038,
		})
	}
	narrow := frontend.DefaultConfig()
	narrow.UopDeliver = 4
	fN, _ := buildWith(narrow)
	resN := fN.RunBlocks(blocks)
	wide := frontend.DefaultConfig()
	wide.UopDeliver = 16
	fW, _ := buildWith(wide)
	resW := fW.RunBlocks(blocks)
	if resW.IPC() <= resN.IPC() {
		t.Errorf("wide delivery IPC %.3f <= narrow %.3f", resW.IPC(), resN.IPC())
	}
}

// TestMispredictPenaltyMatters: a larger resteer penalty must lower IPC on a
// branchy workload.
func TestMispredictPenaltyMatters(t *testing.T) {
	spec, _ := workload.Get("wordpress")
	blocks := workload.GenerateSpec(spec, 15000, 0)
	cheap := frontend.DefaultConfig()
	cheap.MispredictPenalty = 2
	fC, _ := buildWith(cheap)
	resC := fC.RunBlocks(blocks)
	dear := frontend.DefaultConfig()
	dear.MispredictPenalty = 30
	fD, _ := buildWith(dear)
	resD := fD.RunBlocks(blocks)
	if resD.IPC() >= resC.IPC() {
		t.Errorf("30-cycle penalty IPC %.3f >= 2-cycle %.3f", resD.IPC(), resC.IPC())
	}
}
