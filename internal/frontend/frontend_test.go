package frontend_test

import (
	"testing"

	"uopsim/internal/backend"
	"uopsim/internal/branch"
	"uopsim/internal/cache"
	"uopsim/internal/frontend"
	"uopsim/internal/policy"
	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
	"uopsim/internal/workload"
)

func build(cfg frontend.Config) *frontend.Frontend {
	bp := branch.New(branch.DefaultConfig())
	uc := uopcache.New(uopcache.DefaultConfig(), policy.NewLRU())
	l1i := cache.New(cache.Config{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8, LatencyCycles: 1})
	be := backend.New(backend.DefaultConfig())
	return frontend.New(cfg, bp, uc, l1i, be)
}

// loopTrace builds a tight loop of nBlocks repeated iters times.
func loopTrace(nBlocks, iters int) []trace.Block {
	var blocks []trace.Block
	for it := 0; it < iters; it++ {
		for i := 0; i < nBlocks; i++ {
			addr := uint64(0x1000 + i*16)
			b := trace.Block{Addr: addr, Bytes: 16, NumInst: 4, NumUops: 4}
			if i == nBlocks-1 {
				b.Kind = trace.BranchUncond
				b.Taken = true
				b.Target = 0x1000
				b.BranchPC = addr + 12
			}
			blocks = append(blocks, b)
		}
	}
	return blocks
}

func TestLoopIPCPositive(t *testing.T) {
	f := build(frontend.DefaultConfig())
	res := f.RunBlocks(loopTrace(4, 500))
	if res.Cycles == 0 || res.Instructions == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	ipc := res.IPC()
	if ipc <= 0.3 || ipc > 6 {
		t.Errorf("loop IPC = %.2f, implausible", ipc)
	}
	// A tight loop must mostly hit the uop cache after warmup.
	if res.UopCache.UopMissRate() > 0.2 {
		t.Errorf("loop uop miss rate %.2f", res.UopCache.UopMissRate())
	}
}

func TestPerfectUopCacheFasterAndColder(t *testing.T) {
	// A footprint-heavy workload: perfect uop cache must beat real one
	// in IPC and decode no uops.
	spec, _ := workload.Get("wordpress")
	blocks := workload.GenerateSpec(spec, 30000, 0)

	real := build(frontend.DefaultConfig())
	resReal := real.RunBlocks(blocks)

	pcfg := frontend.DefaultConfig()
	pcfg.PerfectUopCache = true
	perfect := build(pcfg)
	resPerfect := perfect.RunBlocks(blocks)

	if resPerfect.Events.DecodedUops != 0 {
		t.Errorf("perfect uop cache decoded %d uops", resPerfect.Events.DecodedUops)
	}
	if resPerfect.IPC() <= resReal.IPC() {
		t.Errorf("perfect uop cache IPC %.3f <= real %.3f", resPerfect.IPC(), resReal.IPC())
	}
	if resReal.Events.DecodedUops == 0 {
		t.Error("real run never decoded — workload too small?")
	}
}

func TestPerfectBPRemovesFlushes(t *testing.T) {
	spec, _ := workload.Get("wordpress")
	blocks := workload.GenerateSpec(spec, 20000, 0)
	cfg := frontend.DefaultConfig()
	cfg.PerfectBP = true
	f := build(cfg)
	res := f.RunBlocks(blocks)
	if res.Events.MispredictFlushes != 0 {
		t.Errorf("perfect BP flushed %d times", res.Events.MispredictFlushes)
	}
	base := build(frontend.DefaultConfig()).RunBlocks(blocks)
	if base.Events.MispredictFlushes == 0 {
		t.Error("real BP never mispredicted wordpress — implausible")
	}
	if res.IPC() <= base.IPC() {
		t.Errorf("perfect BP IPC %.3f <= real %.3f", res.IPC(), base.IPC())
	}
}

func TestPerfectICacheNoMisses(t *testing.T) {
	spec, _ := workload.Get("clang")
	blocks := workload.GenerateSpec(spec, 20000, 0)
	cfg := frontend.DefaultConfig()
	cfg.PerfectICache = true
	res := build(cfg).RunBlocks(blocks)
	if res.Events.ICacheMisses != 0 {
		t.Errorf("perfect icache missed %d times", res.Events.ICacheMisses)
	}
}

func TestEventAccounting(t *testing.T) {
	spec, _ := workload.Get("kafka")
	blocks := workload.GenerateSpec(spec, 20000, 0)
	res := build(frontend.DefaultConfig()).RunBlocks(blocks)
	e := res.Events
	if e.UopCacheLookups == 0 || e.BPLookups == 0 || e.BTBLookups == 0 {
		t.Fatalf("missing events: %+v", e)
	}
	if e.UopCacheHitUops+e.DecodedUops != res.Uops {
		t.Errorf("uop provenance broken: %d + %d != %d", e.UopCacheHitUops, e.DecodedUops, res.Uops)
	}
	if e.Cycles != res.Cycles {
		t.Error("cycle mismatch between events and result")
	}
	if e.Switches == 0 {
		t.Error("no path switches on a mixed workload")
	}
	if res.Branch.Instructions != res.Instructions {
		t.Error("instruction count mismatch")
	}
}

// TestInclusionInTimingPath: L1i evictions invalidate uop cache windows in
// the timing model too.
func TestInclusionInTimingPath(t *testing.T) {
	spec, _ := workload.Get("clang") // big footprint: L1i will evict
	blocks := workload.GenerateSpec(spec, 40000, 0)
	res := build(frontend.DefaultConfig()).RunBlocks(blocks)
	if res.UopCache.Invalidations == 0 {
		t.Error("no inclusive invalidations despite icache pressure")
	}
}

func TestDeterministicRuns(t *testing.T) {
	spec, _ := workload.Get("python")
	blocks := workload.GenerateSpec(spec, 10000, 0)
	r1 := build(frontend.DefaultConfig()).RunBlocks(blocks)
	r2 := build(frontend.DefaultConfig()).RunBlocks(blocks)
	if r1.Cycles != r2.Cycles || r1.Events != r2.Events {
		t.Error("timing model not deterministic")
	}
}

func TestMPKIOrdering(t *testing.T) {
	// Workloads with higher target MPKI must measure higher MPKI in the
	// timing model (monotonicity over a wide gap).
	lo, _ := workload.Get("postgres")  // 0.41
	hi, _ := workload.Get("wordpress") // 5.64
	resLo := build(frontend.DefaultConfig()).RunBlocks(workload.GenerateSpec(lo, 40000, 0))
	resHi := build(frontend.DefaultConfig()).RunBlocks(workload.GenerateSpec(hi, 40000, 0))
	if resLo.Branch.MPKI() >= resHi.Branch.MPKI() {
		t.Errorf("MPKI ordering violated: postgres %.2f >= wordpress %.2f",
			resLo.Branch.MPKI(), resHi.Branch.MPKI())
	}
}
