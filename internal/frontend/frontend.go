// Package frontend is the cycle-approximate timing model of the x86-style
// decoupled frontend in the paper's Fig. 1: blocks flow through the branch
// predictor, are formed into prediction windows, and each window is served
// either by the micro-op cache path (up to 8 micro-ops per cycle, one PW per
// cycle) or by the legacy decode path (icache fetch + 4-wide decoder with a
// 5-cycle pipeline), with a 1-cycle penalty on every path switch. Micro-op
// cache insertions complete decode-latency cycles after their triggering
// miss (the asynchronous lookup/insertion the paper studies). The frontend
// feeds the backend drain model to produce IPC, and counts every event the
// power model charges for.
package frontend

import (
	"uopsim/internal/backend"
	"uopsim/internal/branch"
	"uopsim/internal/cache"
	"uopsim/internal/telemetry"
	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
)

// Config holds the frontend timing parameters (Table I).
type Config struct {
	// DecodeWidth is the legacy decoder's micro-ops per cycle (4-wide).
	DecodeWidth int
	// DecodeLatency is the decode pipeline depth in cycles (5).
	DecodeLatency int
	// UopDeliver is the micro-op cache path bandwidth per cycle (8).
	UopDeliver int
	// SwitchPenalty is the cycle cost of switching between the micro-op
	// cache path and the legacy path (1).
	SwitchPenalty int
	// MispredictPenalty is the resteer cost of a branch misprediction.
	MispredictPenalty int
	// BTBMissPenalty is the decode-time resteer cost of a BTB miss.
	BTBMissPenalty int
	// L1ILatency, L2Latency and DRAMLatency price instruction fetch.
	L1ILatency, L2Latency, DRAMLatency int

	// Perfect-structure switches for the paper's Fig. 2 study.
	PerfectUopCache bool
	PerfectICache   bool
	PerfectBP       bool
	PerfectBTB      bool
	// DisableUopCache removes the micro-op cache entirely (the paper's
	// Fig. 13(a) baseline): every window goes down the legacy decode
	// path and nothing is inserted.
	DisableUopCache bool
	// NonInclusive breaks the L1i-inclusion requirement (the paper's
	// Section VII discussion): L1i evictions no longer invalidate
	// micro-op cache windows, effectively enlarging the instruction
	// storage at the cost of self-modifying-code complexity.
	NonInclusive bool
}

// DefaultConfig returns the paper's Zen3-like frontend timing.
func DefaultConfig() Config {
	return Config{
		DecodeWidth:       4,
		DecodeLatency:     5,
		UopDeliver:        8,
		SwitchPenalty:     1,
		MispredictPenalty: 12,
		BTBMissPenalty:    2,
		L1ILatency:        1,
		L2Latency:         16,
		DRAMLatency:       100,
	}
}

// Events counts everything the power model charges energy for.
type Events struct {
	Cycles              uint64
	DecodedUops         uint64
	DecoderActiveCycles uint64
	ICacheReads         uint64
	ICacheMisses        uint64
	L2InstrReads        uint64
	UopCacheLookups     uint64
	UopCacheHitUops     uint64
	UopCacheWrites      uint64 // entries written on insertion
	BPLookups           uint64
	BTBLookups          uint64
	Switches            uint64
	MispredictFlushes   uint64
}

// Result is a full timing run's output.
type Result struct {
	Events       Events
	Branch       branch.Stats
	UopCache     uopcache.Stats
	Backend      backend.Stats
	Instructions uint64
	Uops         uint64
	Cycles       uint64
}

// IPC returns retired instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// PublishMetrics copies the run's frontend-level aggregates into reg as
// frontend_* metrics (the uopcache_* family is maintained live by the cache
// itself when attached).
func (r Result) PublishMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("frontend_cycles_total").Store(r.Cycles)
	reg.Counter("frontend_instructions_total").Store(r.Instructions)
	reg.Counter("frontend_uops_total").Store(r.Uops)
	reg.Counter("frontend_decoded_uops_total").Store(r.Events.DecodedUops)
	reg.Counter("frontend_decoder_active_cycles_total").Store(r.Events.DecoderActiveCycles)
	reg.Counter("frontend_icache_reads_total").Store(r.Events.ICacheReads)
	reg.Counter("frontend_icache_misses_total").Store(r.Events.ICacheMisses)
	reg.Counter("frontend_l2_instr_reads_total").Store(r.Events.L2InstrReads)
	reg.Counter("frontend_uopcache_lookups_total").Store(r.Events.UopCacheLookups)
	reg.Counter("frontend_uopcache_hit_uops_total").Store(r.Events.UopCacheHitUops)
	reg.Counter("frontend_uopcache_writes_total").Store(r.Events.UopCacheWrites)
	reg.Counter("frontend_bp_lookups_total").Store(r.Events.BPLookups)
	reg.Counter("frontend_btb_lookups_total").Store(r.Events.BTBLookups)
	reg.Counter("frontend_path_switches_total").Store(r.Events.Switches)
	reg.Counter("frontend_mispredict_flushes_total").Store(r.Events.MispredictFlushes)
	reg.Gauge("frontend_ipc").Set(r.IPC())
	reg.Gauge("frontend_uop_miss_rate").Set(r.UopCache.UopMissRate())
}

// Frontend is the timing simulator. Construct with New and drive with
// RunBlocks.
type Frontend struct {
	cfg Config
	bp  *branch.Predictor
	uc  *uopcache.Cache
	l1i *cache.Cache
	be  *backend.Backend

	former    *trace.Former
	inUopPath bool
	cycle     uint64
	events    Events

	// pendingInserts are micro-op cache insertions in the decode pipe,
	// keyed by start address, due at a cycle.
	pending    map[uint64]trace.PW
	pendingDue []pendingInsert

	// carried misprediction/BTB penalties to charge to the next window.
	pendingPenalty int
}

type pendingInsert struct {
	start uint64
	due   uint64
}

// New builds a frontend wired to its prediction, cache and backend
// substrate. l1i may be nil only when cfg.PerfectICache is set.
func New(cfg Config, bp *branch.Predictor, uc *uopcache.Cache, l1i *cache.Cache, be *backend.Backend) *Frontend {
	f := &Frontend{
		cfg: cfg, bp: bp, uc: uc, l1i: l1i, be: be,
		former:  trace.NewFormer(0),
		pending: make(map[uint64]trace.PW),
		// Bounded by windows in decode flight; preallocated so the serve
		// path's append never grows it in steady state.
		pendingDue: make([]pendingInsert, 0, 64),
	}
	if l1i != nil && !cfg.NonInclusive {
		l1i.OnEvict = func(lineAddr uint64) { uc.InvalidateLine(lineAddr) }
	}
	return f
}

// RunBlocks drives the whole dynamic block stream and returns the result.
func (f *Frontend) RunBlocks(blocks []trace.Block) Result {
	for _, b := range blocks {
		f.step(b)
	}
	f.former.Flush(func(p trace.PW) { f.servePW(p) })
	f.drainInserts(^uint64(0))
	f.cycle += uint64(f.be.Flush())

	var res Result
	res.Events = f.events
	res.Events.Cycles = f.cycle
	res.Branch = f.bp.Stats
	res.UopCache = f.uc.Stats
	res.Instructions = f.bp.Stats.Instructions
	res.Uops = f.events.UopCacheHitUops + f.events.DecodedUops
	res.Cycles = f.cycle
	// The backend stats live inside the backend; copy them out.
	res.Backend = f.backendStats()
	return res
}

func (f *Frontend) backendStats() backend.Stats { return f.be.StatsCopy() }

// step processes one dynamic block: prediction, PW formation, delivery.
func (f *Frontend) step(b trace.Block) {
	f.events.BPLookups++
	if b.Kind.IsBranch() {
		f.events.BTBLookups++
	}
	out := f.bp.Process(b)
	f.former.Add(b, func(p trace.PW) { f.servePW(p) })
	if out.Mispredicted && !f.cfg.PerfectBP {
		f.pendingPenalty += f.cfg.MispredictPenalty
		f.events.MispredictFlushes++
	} else if out.BTBMiss && !f.cfg.PerfectBTB {
		f.pendingPenalty += f.cfg.BTBMissPenalty
	}
}

// servePW delivers one prediction window to the micro-op queue, charging
// cycles for the path it took.
//
//simlint:hotpath
func (f *Frontend) servePW(p trace.PW) {
	f.drainInserts(f.cycle)
	cycles := f.pendingPenalty
	f.pendingPenalty = 0

	var pr uopcache.ProbeResult
	switch {
	case f.cfg.DisableUopCache:
		pr = uopcache.ProbeResult{Kind: uopcache.ProbeMiss, MissUops: int(p.NumUops)}
	default:
		f.events.UopCacheLookups++
		pr = f.probeUopCache(p)
	}

	hitUops, missUops := pr.HitUops, pr.MissUops
	if hitUops > 0 {
		if !f.inUopPath {
			cycles += f.cfg.SwitchPenalty
			f.events.Switches++
			f.inUopPath = true
		}
		// One PW per cycle, up to UopDeliver micro-ops each.
		c := (hitUops + f.cfg.UopDeliver - 1) / f.cfg.UopDeliver
		if c < 1 {
			c = 1
		}
		cycles += c
		f.events.UopCacheHitUops += uint64(hitUops)
	}
	if missUops > 0 {
		if f.inUopPath || hitUops > 0 {
			cycles += f.cfg.SwitchPenalty
			f.events.Switches++
			f.inUopPath = false
		}
		// Instruction fetch for the window's lines.
		fetch := 0
		for _, line := range p.Lines {
			f.events.ICacheReads++
			switch {
			case f.cfg.PerfectICache || f.l1i == nil:
				fetch += f.cfg.L1ILatency
			case f.l1i.Access(line):
				fetch += f.cfg.L1ILatency
			default:
				f.events.ICacheMisses++
				f.events.L2InstrReads++
				fetch += f.cfg.L2Latency
			}
		}
		// Decode pipe: fill latency only when entering the legacy
		// path cold, then width-limited decode.
		decode := (missUops + f.cfg.DecodeWidth - 1) / f.cfg.DecodeWidth
		cycles += fetch + f.cfg.DecodeLatency + decode
		f.events.DecodedUops += uint64(missUops)
		f.events.DecoderActiveCycles += uint64(decode)

		if !f.cfg.PerfectUopCache && !f.cfg.DisableUopCache {
			f.scheduleInsert(p)
		}
	}
	if cycles < 1 {
		cycles = 1
	}
	f.cycle += uint64(cycles)
	extra := f.be.Supply(int(p.NumUops), int(p.NumInst), p.Start, cycles)
	f.cycle += uint64(extra)
}

// probeUopCache performs the lookup, honouring the perfect switch.
func (f *Frontend) probeUopCache(p trace.PW) uopcache.ProbeResult {
	if f.cfg.PerfectUopCache {
		// Keep the stats (and attached telemetry) meaningful under the
		// perfect switch.
		f.uc.NotePerfectHit(p)
		return uopcache.ProbeResult{Kind: uopcache.ProbeFull, HitUops: int(p.NumUops)}
	}
	return f.uc.Lookup(p)
}

// scheduleInsert queues the window's insertion decode-latency cycles ahead,
// coalescing with an in-flight window of the same start (keeping the
// larger).
func (f *Frontend) scheduleInsert(p trace.PW) {
	if cur, ok := f.pending[p.Start]; ok {
		f.uc.NoteCoalescedMiss(p)
		if p.NumUops > cur.NumUops {
			f.pending[p.Start] = p
		}
		return
	}
	f.pending[p.Start] = p
	//simlint:ignore hotpath pendingDue is preallocated in New and drained with copy-down, so steady-state appends reuse capacity
	f.pendingDue = append(f.pendingDue, pendingInsert{start: p.Start, due: f.cycle + uint64(f.cfg.DecodeLatency)})
}

// drainInserts completes insertions due by the given cycle.
func (f *Frontend) drainInserts(now uint64) {
	n := 0
	for n < len(f.pendingDue) && f.pendingDue[n].due <= now {
		pi := f.pendingDue[n]
		n++
		p, ok := f.pending[pi.start]
		if !ok {
			continue
		}
		delete(f.pending, pi.start)
		before := f.uc.Stats.EntriesWritten
		f.uc.Insert(p)
		f.events.UopCacheWrites += f.uc.Stats.EntriesWritten - before
	}
	if n > 0 {
		// Copy down instead of re-slicing so the backing array's front
		// capacity is reused and scheduleInsert's append stops allocating.
		m := copy(f.pendingDue, f.pendingDue[n:])
		f.pendingDue = f.pendingDue[:m]
	}
}
