// Package stats implements the paper's trace analyses: the
// cold/capacity/conflict miss classification of Section III-B (via infinite
// and fully-associative shadow simulations), the reuse-distance spectra of
// Section III-E (stack distances over PWs, icache lines and branch PCs), and
// the hot/warm/cold PW hit-rate analysis of Fig. 22.
package stats

import (
	"sort"

	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
)

// MissClassification splits a run's lookup misses by cause.
type MissClassification struct {
	// Cold misses are first-ever lookups of a window.
	Cold uint64
	// Capacity misses would also miss in a fully-associative cache of
	// the same total capacity.
	Capacity uint64
	// Conflict misses are the remainder: set-mapping artifacts.
	Conflict uint64
	// Total is all misses in the actual configuration.
	Total uint64
}

// Fractions returns the cold/capacity/conflict shares of total misses.
func (m MissClassification) Fractions() (cold, capacity, conflict float64) {
	if m.Total == 0 {
		return 0, 0, 0
	}
	t := float64(m.Total)
	return float64(m.Cold) / t, float64(m.Capacity) / t, float64(m.Conflict) / t
}

// MissCounter counts lookup-granularity misses of a policy over a trace for
// an arbitrary cache geometry. The stats package provides LRUMisses; the
// experiment harness can substitute offline policies.
type MissCounter func(pws []trace.PW, cfg uopcache.Config) uint64

// Classify runs the three-simulation classification: the actual geometry
// (via count), a fully-associative shadow of equal capacity, and an
// infinite cache (distinct windows = cold misses).
func Classify(pws []trace.PW, cfg uopcache.Config, count MissCounter) MissClassification {
	var m MissClassification
	m.Total = count(pws, cfg)

	fa := cfg
	fa.Ways = cfg.Entries // one set
	faMisses := count(pws, fa)

	seen := make(map[uint64]struct{})
	for _, p := range pws {
		seen[p.Start] = struct{}{}
	}
	m.Cold = uint64(len(seen))
	if faMisses > m.Cold {
		m.Capacity = faMisses - m.Cold
	}
	if m.Total > faMisses {
		m.Conflict = m.Total - faMisses
	}
	// Clamp pathological cases (FA can in rare traces miss more than the
	// set-associative one under LRU — Belady anomalies).
	if m.Cold+m.Capacity+m.Conflict > m.Total {
		over := m.Cold + m.Capacity + m.Conflict - m.Total
		if m.Capacity >= over {
			m.Capacity -= over
		} else {
			m.Conflict = 0
			m.Capacity = m.Total - m.Cold
		}
	}
	return m
}

// ---------------------------------------------------------------------------
// Reuse (stack) distances.

// ReuseHistogram is a stack-distance histogram with an overflow bucket.
type ReuseHistogram struct {
	// Buckets[d] counts accesses with stack distance exactly d, for
	// d < len(Buckets)-1; the final bucket is the overflow.
	Buckets []uint64
	// ColdAccesses counts first-touch accesses (no reuse distance).
	ColdAccesses uint64
	// Total is all accesses with a defined distance.
	Total uint64
}

// FracAbove returns the fraction of (warm) accesses whose stack distance
// exceeds d.
func (h ReuseHistogram) FracAbove(d int) float64 {
	if h.Total == 0 {
		return 0
	}
	var above uint64
	for i, c := range h.Buckets {
		if i > d {
			above += c
		}
	}
	return float64(above) / float64(h.Total)
}

// fenwick is a binary indexed tree over positions.
type fenwick struct{ t []int }

func newFenwick(n int) *fenwick { return &fenwick{t: make([]int, n+1)} }

func (f *fenwick) add(i, v int) {
	for i++; i < len(f.t); i += i & (-i) {
		f.t[i] += v
	}
}

func (f *fenwick) sum(i int) int { // prefix sum of [0, i]
	s := 0
	for i++; i > 0; i -= i & (-i) {
		s += f.t[i]
	}
	return s
}

// ReuseDistances computes the stack-distance histogram of a key sequence
// with maxBucket exact buckets (distances >= maxBucket land in overflow).
func ReuseDistances(keys []uint64, maxBucket int) ReuseHistogram {
	h := ReuseHistogram{Buckets: make([]uint64, maxBucket+1)}
	last := make(map[uint64]int, 1024)
	fw := newFenwick(len(keys))
	for i, k := range keys {
		if prev, ok := last[k]; ok {
			// Distinct keys accessed in (prev, i) = marked positions.
			d := fw.sum(i-1) - fw.sum(prev)
			if d >= maxBucket {
				h.Buckets[maxBucket]++
			} else {
				h.Buckets[d]++
			}
			h.Total++
			fw.add(prev, -1)
		} else {
			h.ColdAccesses++
		}
		last[k] = i
		fw.add(i, 1)
	}
	return h
}

// PWKeys extracts the start-address key sequence from a PW lookup trace.
func PWKeys(pws []trace.PW) []uint64 {
	out := make([]uint64, len(pws))
	for i, p := range pws {
		out[i] = p.Start
	}
	return out
}

// LineKeys extracts the icache-line key sequence from a block trace.
func LineKeys(blocks []trace.Block) []uint64 {
	out := make([]uint64, 0, len(blocks))
	for _, b := range blocks {
		out = append(out, trace.LineAddr(b.Addr))
	}
	return out
}

// BranchKeys extracts the branch-PC key sequence (BTB accesses).
func BranchKeys(blocks []trace.Block) []uint64 {
	out := make([]uint64, 0, len(blocks))
	for _, b := range blocks {
		if b.Kind.IsBranch() {
			out = append(out, b.BranchPC)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Hotness analysis (Fig. 22).

// DecileStat is the hit rate of windows in one popularity decile.
type DecileStat struct {
	// Lookups and HitUops/TotalUops aggregate the decile.
	Lookups   uint64
	HitUops   uint64
	TotalUops uint64
}

// HitRate returns the decile's micro-op hit rate.
func (d DecileStat) HitRate() float64 {
	if d.TotalUops == 0 {
		return 0
	}
	return float64(d.HitUops) / float64(d.TotalUops)
}

// HotnessDeciles sorts windows by access count (descending), splits them
// into ten deciles by window count, and aggregates each decile's hit rate
// from per-lookup outcomes. Decile 0 is the hottest 10% of windows.
func HotnessDeciles(pws []trace.PW, outcomes []uopcache.ProbeResult) [10]DecileStat {
	var out [10]DecileStat
	counts := make(map[uint64]uint64)
	for _, p := range pws {
		counts[p.Start]++
	}
	keys := make([]uint64, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		return keys[i] < keys[j]
	})
	decileOf := make(map[uint64]int, len(keys))
	for i, k := range keys {
		d := i * 10 / len(keys)
		if d > 9 {
			d = 9
		}
		decileOf[k] = d
	}
	n := len(outcomes)
	if n > len(pws) {
		n = len(pws)
	}
	for i := 0; i < n; i++ {
		d := decileOf[pws[i].Start]
		out[d].Lookups++
		out[d].HitUops += uint64(outcomes[i].HitUops)
		out[d].TotalUops += uint64(outcomes[i].HitUops + outcomes[i].MissUops)
	}
	return out
}
