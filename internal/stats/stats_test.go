package stats_test

import (
	"math/rand"
	"testing"

	"uopsim/internal/policy"
	"uopsim/internal/stats"
	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
)

func pw(start uint64, uops int) trace.PW {
	return trace.PW{Start: start, NumUops: uint16(uops), Bytes: uint16(uops * 4),
		NumInst: uint16(uops), Lines: []uint64{trace.LineAddr(start)}}
}

// lruMisses is the canonical MissCounter.
func lruMisses(pws []trace.PW, cfg uopcache.Config) uint64 {
	c := uopcache.New(cfg, policy.NewLRU())
	b := uopcache.NewBehavior(c, nil)
	st := b.Run(pws)
	return st.Misses
}

func TestClassifyColdOnly(t *testing.T) {
	// Working set fits: every miss is cold.
	cfg := uopcache.Config{Entries: 64, Ways: 8, UopsPerEntry: 8, InsertDelay: 0}
	var s []trace.PW
	for r := 0; r < 10; r++ {
		for i := 0; i < 8; i++ {
			s = append(s, pw(uint64(0x1000+i*0x400), 4))
		}
	}
	m := stats.Classify(s, cfg, lruMisses)
	if m.Cold != 8 {
		t.Errorf("cold = %d, want 8", m.Cold)
	}
	if m.Capacity != 0 {
		t.Errorf("capacity = %d, want 0 (fits)", m.Capacity)
	}
	cold, capacity, conflict := m.Fractions()
	if cold == 0 || capacity != 0 || conflict != 0 {
		t.Errorf("fractions = %v %v %v", cold, capacity, conflict)
	}
}

func TestClassifyCapacityDominates(t *testing.T) {
	// Cycle a working set much larger than a fully-associative cache:
	// capacity misses dominate.
	cfg := uopcache.Config{Entries: 16, Ways: 4, UopsPerEntry: 8, InsertDelay: 0}
	var s []trace.PW
	for r := 0; r < 20; r++ {
		for i := 0; i < 64; i++ {
			s = append(s, pw(uint64(0x1000+i*16), 4))
		}
	}
	m := stats.Classify(s, cfg, lruMisses)
	if m.Capacity == 0 {
		t.Fatalf("no capacity misses: %+v", m)
	}
	if m.Capacity < m.Conflict {
		t.Errorf("capacity (%d) should dominate conflict (%d) for a cyclic scan", m.Capacity, m.Conflict)
	}
	if m.Cold != 64 {
		t.Errorf("cold = %d", m.Cold)
	}
}

func TestClassifyConflictAppears(t *testing.T) {
	// Windows that all land in one set of a 4-set cache: conflicts.
	cfg := uopcache.Config{Entries: 32, Ways: 8, UopsPerEntry: 8, InsertDelay: 0}
	sets := cfg.Sets()
	var s []trace.PW
	// 12 windows mapping to set 0 (stride = sets*16 in the >>4 index).
	stride := uint64(sets * 16)
	for r := 0; r < 30; r++ {
		for i := 0; i < 12; i++ {
			s = append(s, pw(0x1000+uint64(i)*stride, 4))
		}
	}
	m := stats.Classify(s, cfg, lruMisses)
	if m.Conflict == 0 {
		t.Errorf("expected conflict misses: %+v", m)
	}
}

// counterBy returns a MissCounter reporting fa misses for the
// fully-associative shadow (Ways == Entries) and total for the real
// geometry, letting the clamp arithmetic be pinned exactly.
func counterBy(total, fa uint64) stats.MissCounter {
	return func(_ []trace.PW, cfg uopcache.Config) uint64 {
		if cfg.Ways == cfg.Entries {
			return fa
		}
		return total
	}
}

// TestClassifyClampCapacity exercises the anomaly clamp where the FA shadow
// misses MORE than the set-associative cache (a Belady/LRU anomaly): the
// class sum would exceed the total, and the excess comes out of capacity.
func TestClassifyClampCapacity(t *testing.T) {
	cfg := uopcache.Config{Entries: 64, Ways: 4, UopsPerEntry: 8}
	// cold=2, fa=6, total=5: capacity = 6-2 = 4, conflict = 0 (total < fa),
	// sum 6 > total 5, over = 1 <= capacity, so capacity drops to 3.
	s := []trace.PW{pw(0x10, 4), pw(0x20, 4)}
	m := stats.Classify(s, cfg, counterBy(5, 6))
	want := stats.MissClassification{Cold: 2, Capacity: 3, Conflict: 0, Total: 5}
	if m != want {
		t.Fatalf("Classify = %+v, want %+v", m, want)
	}
	cold, capacity, conflict := m.Fractions()
	if sum := cold + capacity + conflict; sum < 0.999 || sum > 1.001 {
		t.Errorf("clamped fractions sum to %v, want 1", sum)
	}
}

// TestClassifyClampConflict exercises the deeper clamp: the FA shadow misses
// fewer times than there are cold misses, so even zeroing conflict cannot
// balance the books and capacity becomes total - cold.
func TestClassifyClampConflict(t *testing.T) {
	cfg := uopcache.Config{Entries: 64, Ways: 4, UopsPerEntry: 8}
	// cold=3, fa=1, total=4: capacity = 0 (fa < cold), conflict = 3,
	// sum 6 > total 4, over = 2 > capacity 0, so conflict = 0 and
	// capacity = total - cold = 1.
	s := []trace.PW{pw(0x10, 4), pw(0x20, 4), pw(0x30, 4)}
	m := stats.Classify(s, cfg, counterBy(4, 1))
	want := stats.MissClassification{Cold: 3, Capacity: 1, Conflict: 0, Total: 4}
	if m != want {
		t.Fatalf("Classify = %+v, want %+v", m, want)
	}
}

func TestReuseDistancesSimple(t *testing.T) {
	// Sequence: A B A -> A's reuse distance is 1 (B in between).
	h := stats.ReuseDistances([]uint64{1, 2, 1}, 8)
	if h.ColdAccesses != 2 {
		t.Errorf("cold = %d", h.ColdAccesses)
	}
	if h.Total != 1 || h.Buckets[1] != 1 {
		t.Errorf("histogram = %+v", h)
	}
}

func TestReuseDistancesImmediate(t *testing.T) {
	h := stats.ReuseDistances([]uint64{7, 7, 7}, 4)
	if h.Buckets[0] != 2 {
		t.Errorf("immediate reuse should have distance 0: %+v", h)
	}
}

func TestReuseDistancesOverflow(t *testing.T) {
	var keys []uint64
	keys = append(keys, 99)
	for i := 0; i < 50; i++ {
		keys = append(keys, uint64(i))
	}
	keys = append(keys, 99) // distance 50 > maxBucket 8
	h := stats.ReuseDistances(keys, 8)
	if h.Buckets[8] != 1 {
		t.Errorf("overflow bucket = %d", h.Buckets[8])
	}
	if got := h.FracAbove(8); got != 0 {
		// Overflow bucket is index 8; FracAbove(8) counts nothing above it.
		t.Errorf("FracAbove(8) = %v", got)
	}
	if got := h.FracAbove(7); got != 1 {
		t.Errorf("FracAbove(7) = %v, want 1", got)
	}
}

// TestReuseDistancesAgainstBruteForce cross-checks the Fenwick algorithm.
func TestReuseDistancesAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	keys := make([]uint64, 800)
	for i := range keys {
		keys[i] = uint64(rng.Intn(40))
	}
	const maxB = 16
	got := stats.ReuseDistances(keys, maxB)
	want := stats.ReuseHistogram{Buckets: make([]uint64, maxB+1)}
	for i, k := range keys {
		prev := -1
		for j := i - 1; j >= 0; j-- {
			if keys[j] == k {
				prev = j
				break
			}
		}
		if prev < 0 {
			want.ColdAccesses++
			continue
		}
		distinct := map[uint64]struct{}{}
		for j := prev + 1; j < i; j++ {
			distinct[keys[j]] = struct{}{}
		}
		d := len(distinct)
		if d >= maxB {
			want.Buckets[maxB]++
		} else {
			want.Buckets[d]++
		}
		want.Total++
	}
	if got.ColdAccesses != want.ColdAccesses || got.Total != want.Total {
		t.Fatalf("counts: got %+v want %+v", got, want)
	}
	for i := range got.Buckets {
		if got.Buckets[i] != want.Buckets[i] {
			t.Fatalf("bucket %d: got %d want %d", i, got.Buckets[i], want.Buckets[i])
		}
	}
}

func TestKeyExtractors(t *testing.T) {
	blocks := []trace.Block{
		{Addr: 0x1000, Bytes: 16, NumInst: 4, NumUops: 4, Kind: trace.BranchCond, Taken: true, Target: 0x2000, BranchPC: 0x100c},
		{Addr: 0x2000, Bytes: 16, NumInst: 4, NumUops: 4},
	}
	if got := stats.BranchKeys(blocks); len(got) != 1 || got[0] != 0x100c {
		t.Errorf("BranchKeys = %v", got)
	}
	if got := stats.LineKeys(blocks); len(got) != 2 || got[0] != 0x1000 || got[1] != 0x2000 {
		t.Errorf("LineKeys = %v", got)
	}
	pws := []trace.PW{pw(0x10, 1), pw(0x20, 1)}
	if got := stats.PWKeys(pws); len(got) != 2 || got[1] != 0x20 {
		t.Errorf("PWKeys = %v", got)
	}
}

func TestHotnessDeciles(t *testing.T) {
	// 20 windows: one very hot, the rest cold. Outcomes: hot hits, cold
	// misses. Decile 0 must have a high hit rate, late deciles low.
	var pws []trace.PW
	var outs []uopcache.ProbeResult
	for i := 0; i < 100; i++ {
		pws = append(pws, pw(0x1000, 4))
		outs = append(outs, uopcache.ProbeResult{Kind: uopcache.ProbeFull, HitUops: 4})
	}
	for i := 0; i < 19; i++ {
		pws = append(pws, pw(uint64(0x2000+i*16), 4))
		outs = append(outs, uopcache.ProbeResult{Kind: uopcache.ProbeMiss, MissUops: 4})
	}
	d := stats.HotnessDeciles(pws, outs)
	if d[0].HitRate() < 0.99 {
		t.Errorf("hot decile hit rate %.2f", d[0].HitRate())
	}
	if d[9].HitRate() > 0.01 {
		t.Errorf("cold decile hit rate %.2f", d[9].HitRate())
	}
	var lookups uint64
	for _, x := range d {
		lookups += x.Lookups
	}
	if lookups != uint64(len(pws)) {
		t.Errorf("decile lookups %d != %d", lookups, len(pws))
	}
}

func TestHotnessDecilesEmptyOutcome(t *testing.T) {
	d := stats.HotnessDeciles([]trace.PW{pw(1, 1)}, nil)
	for _, x := range d {
		if x.Lookups != 0 {
			t.Error("no outcomes should yield empty deciles")
		}
	}
	if (stats.DecileStat{}).HitRate() != 0 {
		t.Error("empty decile hit rate")
	}
}
