package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"uopsim/internal/telemetry"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d", got)
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		out, err := Map(nil, workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(nil, 4, 0, func(i int) (int, error) { return 0, errors.New("never") })
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestMapLowestIndexErrorWins(t *testing.T) {
	errAt := func(bad ...int) func(i int) (int, error) {
		set := map[int]bool{}
		for _, b := range bad {
			set[b] = true
		}
		return func(i int) (int, error) {
			if set[i] {
				return 0, fmt.Errorf("unit %d failed", i)
			}
			return i, nil
		}
	}
	// Serial: the first failing index in input order.
	if _, err := Map(nil, 1, 10, errAt(3, 7)); err == nil || err.Error() != "unit 3 failed" {
		t.Errorf("serial err = %v", err)
	}
	// Parallel: among the units that ran, the lowest failing index wins;
	// with every unit failing, that is deterministically unit 0.
	all := make([]int, 32)
	for i := range all {
		all[i] = i
	}
	if _, err := Map(nil, 8, 32, errAt(all...)); err == nil || err.Error() != "unit 0 failed" {
		t.Errorf("parallel err = %v", err)
	}
}

func TestMapErrorCancelsUnstartedUnits(t *testing.T) {
	var ran atomic.Int64
	boom := errors.New("boom")
	_, err := Map(nil, 2, 10_000, func(i int) (int, error) {
		ran.Add(1)
		return 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n := ran.Load(); n >= 10_000 {
		t.Errorf("cancellation did not skip any of %d units", n)
	}
}

func TestMapPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if workers == 1 {
					// Inline execution: the panic is the original value.
					if r != "kaboom" {
						t.Errorf("workers=1 recovered %v", r)
					}
					return
				}
				pe, ok := r.(*PanicError)
				if !ok {
					t.Fatalf("workers=%d recovered %T (%v), want *PanicError", workers, r, r)
				}
				if pe.Value != "kaboom" || len(pe.Stack) == 0 {
					t.Errorf("PanicError = %v", pe)
				}
			}()
			Map(nil, workers, 8, func(i int) (int, error) {
				if i == 3 {
					panic("kaboom")
				}
				return i, nil
			})
			t.Errorf("workers=%d: no panic", workers)
		}()
	}
}

func TestForEachDisjointWrites(t *testing.T) {
	out := make([]int, 500)
	ForEach(nil, 8, len(out), func(i int) { out[i] = i + 1 })
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapLimitedSharedBudget(t *testing.T) {
	l := NewLimiter(2, nil)
	if l.Cap() != 2 {
		t.Fatalf("Cap = %d", l.Cap())
	}
	var active, peak atomic.Int64
	// Two concurrent MapLimited calls share the two slots.
	done := make(chan error, 2)
	for c := 0; c < 2; c++ {
		go func() {
			_, err := MapLimited(nil, l, 20, func(i int) (int, error) {
				a := active.Add(1)
				for {
					p := peak.Load()
					if a <= p || peak.CompareAndSwap(p, a) {
						break
					}
				}
				defer active.Add(-1)
				return i, nil
			})
			done <- err
		}()
	}
	for c := 0; c < 2; c++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if p := peak.Load(); p > 2 {
		t.Errorf("peak concurrent bodies = %d, want <= limiter cap 2", p)
	}
}

func TestMapLimitedNilAndSerial(t *testing.T) {
	out, err := MapLimited[int](nil, nil, 5, func(i int) (int, error) { return i * 2, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*2 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	// Cap-1 limiter: inline, stops at first error.
	l := NewLimiter(1, nil)
	var ran int
	_, err = MapLimited(nil, l, 5, func(i int) (int, error) {
		ran++
		if i == 2 {
			return 0, errors.New("stop")
		}
		return i, nil
	})
	if err == nil || ran != 3 {
		t.Errorf("err=%v ran=%d, want error after 3 units", err, ran)
	}
}

func TestLimiterMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	l := NewLimiter(2, reg)
	if _, err := MapLimited(nil, l, 6, func(i int) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("parallel_cells_total").Value(); got != 6 {
		t.Errorf("parallel_cells_total = %d, want 6", got)
	}
	if got := reg.Histogram("parallel_cell_busy_us").Count(); got != 6 {
		t.Errorf("parallel_cell_busy_us count = %d, want 6", got)
	}
	if got := reg.Gauge("parallel_active_workers").Value(); got != 0 {
		t.Errorf("parallel_active_workers settled at %v, want 0", got)
	}
}

func TestMapLimitedPanicPropagates(t *testing.T) {
	l := NewLimiter(4, nil)
	defer func() {
		if _, ok := recover().(*PanicError); !ok {
			t.Error("expected *PanicError")
		}
	}()
	MapLimited(nil, l, 8, func(i int) (int, error) {
		if i == 5 {
			panic("cell crash")
		}
		return i, nil
	})
	t.Error("no panic")
}
