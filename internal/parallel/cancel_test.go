package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// TestMapCancelledBeforeStart: a context that is already cancelled must
// abandon every unit — nothing runs, and the context's error comes back.
func TestMapCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		_, err := Map(ctx, workers, 50, func(i int) (int, error) {
			ran.Add(1)
			return i, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if n := ran.Load(); n != 0 {
			t.Errorf("workers=%d: %d units ran after cancellation", workers, n)
		}
	}
}

// TestMapCancelStopsQueueing: cancelling mid-sweep lets in-flight units
// finish but abandons the queue — far fewer than n units run, and the
// results computed before the cancellation are still in the output slice.
func TestMapCancelStopsQueueing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	const n = 10_000
	out, err := Map(ctx, 2, n, func(i int) (int, error) {
		if ran.Add(1) == 10 {
			cancel()
		}
		return i + 1, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got >= n {
		t.Errorf("cancellation did not stop queueing: all %d units ran", got)
	}
	// Units that completed before the cancellation keep their results.
	found := 0
	for i, v := range out {
		if v != 0 {
			found++
			if v != i+1 {
				t.Fatalf("out[%d] = %d, want %d", i, v, i+1)
			}
		}
	}
	if found == 0 {
		t.Error("no pre-cancellation results survived")
	}
}

// TestForEachCancelReportsIncomplete: ForEach's only error is the
// cancellation signal telling the caller the shared result is incomplete.
func TestForEachCancelReportsIncomplete(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := ForEach(ctx, 4, 100, func(i int) {}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if err := ForEach(nil, 4, 10, func(i int) {}); err != nil {
		t.Fatalf("nil ctx: err = %v", err)
	}
}

// TestLimiterDoCancelledInQueue: a caller whose context dies while queued is
// abandoned without its body ever running.
func TestLimiterDoCancelledInQueue(t *testing.T) {
	l := NewLimiter(1, nil)
	hold := make(chan struct{})
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- l.Do(nil, func() { close(started); <-hold })
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Bool
	if err := l.Do(ctx, func() { ran.Store(true) }); !errors.Is(err, context.Canceled) {
		t.Fatalf("queued Do err = %v, want context.Canceled", err)
	}
	if ran.Load() {
		t.Error("cancelled caller's body ran anyway")
	}
	close(hold)
	if err := <-done; err != nil {
		t.Fatalf("holder Do err = %v", err)
	}
}

// TestMapLimitedCancelAbandonsQueued: with the limiter saturated, cancelling
// the context abandons the queued units and surfaces the context error while
// the running body finishes normally.
func TestMapLimitedCancelAbandonsQueued(t *testing.T) {
	l := NewLimiter(1, nil)
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	_, err := MapLimited(ctx, l, 100, func(i int) (int, error) {
		if ran.Add(1) == 1 {
			cancel()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got >= 100 {
		t.Errorf("all %d bodies ran despite cancellation", got)
	}
}
