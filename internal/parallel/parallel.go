// Package parallel is the simulator's only approved concurrency layer: a
// bounded worker pool with index-ordered result collection, deterministic
// first-error selection, panic propagation, cooperative cancellation, and a
// shared cell limiter for the experiment scheduler. Simulation packages may
// not spawn goroutines directly (the simlint determinism analyzer enforces
// it); they fan independent work out through this package so results merge
// in input order and rendered output stays byte-identical at any worker
// count.
//
// The determinism contract: callers pass an index-addressed unit of work
// whose result depends only on its index (no shared mutable state, any
// randomness seeded per unit); the pool stores each result in its input
// slot, so the merged slice is the same at 1 worker or 64. Only the ERROR
// returned by Map/MapLimited may vary with the worker count, because a
// failure cancels units that have not started yet — the lowest-index error
// among the units that ran is reported, which at one worker is always the
// first error in input order.
//
// The cancellation contract: every entry point takes a context.Context
// (nil means "never cancelled"). When the context is cancelled, units that
// are already executing run to completion — a unit of simulation work is
// never torn mid-flight — but units that have not started are abandoned,
// and the call reports the context's error (test with errors.Is against
// context.Canceled). Results computed before the cancellation are still in
// the output slice; callers that observe a cancellation error must treat
// the result set as incomplete.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"uopsim/internal/telemetry"
)

// Workers resolves a requested worker count: values <= 0 select
// runtime.GOMAXPROCS(0), the scheduler's actual parallelism.
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// PanicError carries a worker panic to the caller's goroutine, with the
// worker's stack attached so the crash points at the unit of work rather
// than at the pool internals.
type PanicError struct {
	Value any
	Stack []byte
}

// Error implements error.
func (p *PanicError) Error() string {
	return fmt.Sprintf("parallel: worker panic: %v\n%s", p.Value, p.Stack)
}

// run invokes fn(i), converting a panic into a *PanicError.
func run(i int, fn func(i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}

// background normalizes a nil context to one that is never cancelled.
func background(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background() //simlint:ignore ctxflow the documented nil-means-never-cancelled normalization seam for the pool entry points
	}
	return ctx
}

// state tracks cancellation and the winning (lowest-index) failure of one
// Map/ForEach/MapLimited invocation.
type state struct {
	stop   atomic.Bool
	mu     sync.Mutex
	errIdx int
	err    error
}

// record notes a failure at index i; the lowest index wins so the reported
// error does not depend on goroutine interleaving among completed units.
func (s *state) record(i int, err error) {
	s.stop.Store(true)
	s.mu.Lock()
	if s.err == nil || i < s.errIdx {
		s.errIdx, s.err = i, err
	}
	s.mu.Unlock()
}

// finish re-raises a captured worker panic on the caller's goroutine and
// otherwise returns the winning error.
func (s *state) finish() error {
	if pe, ok := s.err.(*PanicError); ok {
		panic(pe)
	}
	return s.err
}

// Map runs fn over indices [0, n) on a bounded pool of workers, collecting
// results in index order. workers <= 0 selects GOMAXPROCS. The first error
// (lowest index among units that ran) cancels units that have not started;
// a worker panic is re-raised on the caller's goroutine. Cancelling ctx
// abandons unstarted units (in-flight units finish) and surfaces ctx.Err().
// With one worker (or n <= 1) everything runs inline on the caller, in
// index order.
func Map[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	ctx = background(ctx)
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			v, err := fn(i)
			if err != nil {
				return out, err
			}
			out[i] = v
		}
		return out, nil
	}
	var (
		st   state
		next atomic.Int64
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || st.stop.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					st.record(i, err)
					return
				}
				if err := run(i, func(i int) error {
					v, err := fn(i)
					if err == nil {
						out[i] = v
					}
					return err
				}); err != nil {
					st.record(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return out, st.finish()
}

// ForEach runs fn over indices [0, n) on a bounded pool, for work that
// writes into disjoint regions of a shared result (e.g. per-segment solver
// decisions): no result collection, panics re-raised. The only possible
// error is a cancellation: when ctx is cancelled mid-sweep, unstarted
// indices are skipped and ctx.Err() comes back, telling the caller the
// shared result is incomplete.
func ForEach(ctx context.Context, workers, n int, fn func(i int)) error {
	_, err := Map(ctx, workers, n, func(i int) (struct{}, error) {
		fn(i)
		return struct{}{}, nil
	})
	return err
}

// Limiter is a counting semaphore shared by concurrently running experiment
// cells: many orchestrating goroutines may exist, but at most Cap heavy
// cell bodies execute at once. When built with a telemetry registry it
// publishes the scheduler's utilization: queue depth, active workers, cell
// count and per-cell busy time.
type Limiter struct {
	slots  chan struct{}
	width  int
	queued atomic.Int64
	active atomic.Int64

	queueDepth    *telemetry.Gauge
	activeWorkers *telemetry.Gauge
	cellsTotal    *telemetry.Counter
	cellBusy      *telemetry.Histogram
}

// NewLimiter builds a limiter admitting Workers(workers) concurrent cells.
// reg may be nil (no metrics).
func NewLimiter(workers int, reg *telemetry.Registry) *Limiter {
	w := Workers(workers)
	l := &Limiter{slots: make(chan struct{}, w), width: w}
	if reg != nil {
		l.queueDepth = reg.Gauge("parallel_queue_depth")
		l.activeWorkers = reg.Gauge("parallel_active_workers")
		l.cellsTotal = reg.Counter("parallel_cells_total")
		l.cellBusy = reg.Histogram("parallel_cell_busy_us")
	}
	return l
}

// Cap returns the limiter's concurrency width.
func (l *Limiter) Cap() int { return l.width }

// Active returns the number of cell bodies currently holding a slot; the
// live dashboard polls it for per-worker occupancy.
func (l *Limiter) Active() int { return int(l.active.Load()) }

// Queued returns the number of callers waiting for a slot.
func (l *Limiter) Queued() int { return int(l.queued.Load()) }

// Do runs fn while holding one of the limiter's slots, blocking until a
// slot frees up. A queued caller whose ctx is cancelled before a slot
// arrives is abandoned and gets ctx.Err() back without fn ever running;
// once fn starts it always finishes (the slot is released even if fn
// panics) and Do returns nil.
func (l *Limiter) Do(ctx context.Context, fn func()) error {
	ctx = background(ctx)
	if err := ctx.Err(); err != nil {
		return err
	}
	depth := l.queued.Add(1)
	if l.queueDepth != nil {
		l.queueDepth.Set(float64(depth))
	}
	dequeue := func() {
		depth := l.queued.Add(-1)
		if l.queueDepth != nil {
			l.queueDepth.Set(float64(depth))
		}
	}
	select {
	case l.slots <- struct{}{}:
		dequeue()
	case <-ctx.Done():
		dequeue()
		return ctx.Err()
	}
	act := l.active.Add(1)
	if l.activeWorkers != nil {
		l.activeWorkers.Set(float64(act))
	}
	start := time.Now()
	defer func() {
		if l.cellBusy != nil {
			l.cellBusy.Observe(uint64(time.Since(start).Microseconds()))
		}
		if l.cellsTotal != nil {
			l.cellsTotal.Inc()
		}
		act := l.active.Add(-1)
		if l.activeWorkers != nil {
			l.activeWorkers.Set(float64(act))
		}
		<-l.slots
	}()
	fn()
	return nil
}

// MapLimited is Map gated by a shared limiter instead of a private pool:
// one goroutine per unit is spawned immediately (orchestration is cheap)
// but each unit's body runs only while holding a limiter slot, so the TOTAL
// number of heavy bodies across every concurrent MapLimited call stays at
// the limiter's cap. Results land in index order; the lowest-index error
// among units that ran wins and cancels unstarted units; panics re-raise on
// the caller; cancelling ctx abandons queued units (bodies already running
// finish) and surfaces ctx.Err(). A nil limiter or a cap of 1 runs
// everything inline, serially, still holding the slot (if any) so
// concurrent callers interleave safely.
func MapLimited[T any](ctx context.Context, l *Limiter, n int, fn func(i int) (T, error)) ([]T, error) {
	ctx = background(ctx)
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	body := func(i int) error {
		return run(i, func(i int) error {
			v, err := fn(i)
			if err == nil {
				out[i] = v
			}
			return err
		})
	}
	if l == nil || l.Cap() <= 1 || n <= 1 {
		var st state
		for i := 0; i < n; i++ {
			var err error
			do := func() { err = body(i) }
			if l != nil {
				if derr := l.Do(ctx, do); derr != nil {
					err = derr
				}
			} else if err = ctx.Err(); err == nil {
				do()
			}
			if err != nil {
				st.record(i, err)
				return out, st.finish()
			}
		}
		return out, nil
	}
	var (
		st state
		wg sync.WaitGroup
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := l.Do(ctx, func() {
				if st.stop.Load() {
					return
				}
				if err := body(i); err != nil {
					st.record(i, err)
				}
			})
			if err != nil {
				st.record(i, err)
			}
		}(i)
	}
	wg.Wait()
	return out, st.finish()
}
