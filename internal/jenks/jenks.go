// Package jenks implements the Jenks natural breaks classification
// (Fisher's exact dynamic program): partition sorted values into k classes
// minimizing the total within-class sum of squared deviations. FURBYS uses
// it to group prediction windows into weight classes by their FLACK-profiled
// hit rates (paper Section V).
package jenks

import (
	"fmt"
	"sort"
)

// Breaks partitions values into k classes and returns the k-1 upper break
// boundaries (exclusive class upper bounds drawn from the data): class i
// contains values v with breaks[i-1] < v <= breaks[i] under the usual Jenks
// convention. Returned boundaries are the maxima of classes 0..k-2.
//
// Values need not be sorted. k must be >= 1; when k exceeds the number of
// distinct values, fewer effective classes result (duplicate boundaries).
func Breaks(values []float64, k int) ([]float64, error) {
	if k < 1 {
		return nil, fmt.Errorf("jenks: k = %d, want >= 1", k)
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("jenks: empty input")
	}
	v := append([]float64(nil), values...)
	sort.Float64s(v)
	n := len(v)
	if k >= n {
		// Every value its own class; boundaries are the first k-1
		// values (padded with the max for excess classes).
		out := make([]float64, 0, k-1)
		for i := 0; i < k-1; i++ {
			if i < n-1 {
				out = append(out, v[i])
			} else {
				out = append(out, v[n-1])
			}
		}
		return out, nil
	}

	// Fisher's DP over prefix sums: cost(i,j) = SSE of v[i..j].
	prefix := make([]float64, n+1)
	prefixSq := make([]float64, n+1)
	for i, x := range v {
		prefix[i+1] = prefix[i] + x
		prefixSq[i+1] = prefixSq[i] + x*x
	}
	sse := func(i, j int) float64 { // inclusive i..j
		cnt := float64(j - i + 1)
		s := prefix[j+1] - prefix[i]
		sq := prefixSq[j+1] - prefixSq[i]
		return sq - s*s/cnt
	}

	const inf = 1e308
	// dp[c][j]: min cost partitioning v[0..j] into c+1 classes.
	dp := make([][]float64, k)
	cut := make([][]int, k)
	for c := range dp {
		dp[c] = make([]float64, n)
		cut[c] = make([]int, n)
	}
	for j := 0; j < n; j++ {
		dp[0][j] = sse(0, j)
	}
	for c := 1; c < k; c++ {
		for j := 0; j < n; j++ {
			dp[c][j] = inf
			if j < c {
				// Not enough points for c+1 non-empty classes.
				continue
			}
			for i := c; i <= j; i++ {
				if cost := dp[c-1][i-1] + sse(i, j); cost < dp[c][j] {
					dp[c][j] = cost
					cut[c][j] = i
				}
			}
		}
	}
	// Recover boundaries.
	breaks := make([]float64, k-1)
	j := n - 1
	for c := k - 1; c >= 1; c-- {
		i := cut[c][j]
		breaks[c-1] = v[i-1] // upper bound of class c-1
		j = i - 1
	}
	return breaks, nil
}

// Classify returns the class index (0..len(breaks)) of a value given the
// upper boundaries produced by Breaks: class i holds v <= breaks[i], with
// the last class holding everything above the final boundary.
func Classify(v float64, breaks []float64) int {
	for i, b := range breaks {
		if v <= b {
			return i
		}
	}
	return len(breaks)
}

// GroupCount returns the number of classes implied by a boundary slice.
func GroupCount(breaks []float64) int { return len(breaks) + 1 }
