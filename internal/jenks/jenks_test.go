package jenks

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestBreaksTwoObviousClusters(t *testing.T) {
	vals := []float64{1, 1.1, 0.9, 1.05, 10, 10.2, 9.8, 10.1}
	breaks, err := Breaks(vals, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(breaks) != 1 {
		t.Fatalf("breaks = %v", breaks)
	}
	if breaks[0] < 1.1 || breaks[0] >= 9.8 {
		t.Errorf("boundary %v should separate the clusters", breaks[0])
	}
	for _, v := range []float64{0.9, 1, 1.1} {
		if Classify(v, breaks) != 0 {
			t.Errorf("%v classified %d", v, Classify(v, breaks))
		}
	}
	for _, v := range []float64{9.8, 10.2} {
		if Classify(v, breaks) != 1 {
			t.Errorf("%v classified %d", v, Classify(v, breaks))
		}
	}
}

func TestBreaksThreeClusters(t *testing.T) {
	var vals []float64
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 30; i++ {
		vals = append(vals, 0+rng.Float64()*0.1)
		vals = append(vals, 5+rng.Float64()*0.1)
		vals = append(vals, 50+rng.Float64()*0.1)
	}
	breaks, err := Breaks(vals, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !(breaks[0] < 5 && breaks[1] < 50 && breaks[1] >= 5) {
		t.Errorf("breaks = %v", breaks)
	}
	if GroupCount(breaks) != 3 {
		t.Error("group count")
	}
}

func TestBreaksErrors(t *testing.T) {
	if _, err := Breaks(nil, 2); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := Breaks([]float64{1}, 0); err == nil {
		t.Error("k=0 should fail")
	}
}

func TestBreaksKGreaterThanN(t *testing.T) {
	breaks, err := Breaks([]float64{3, 1, 2}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(breaks) != 7 {
		t.Fatalf("breaks = %v", breaks)
	}
	// Each distinct value in its own class.
	if Classify(1, breaks) == Classify(2, breaks) || Classify(2, breaks) == Classify(3, breaks) {
		t.Errorf("distinct values share classes: %v", breaks)
	}
}

func TestBreaksSingleClass(t *testing.T) {
	breaks, err := Breaks([]float64{5, 2, 9}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(breaks) != 0 {
		t.Errorf("breaks = %v", breaks)
	}
	if Classify(123, breaks) != 0 {
		t.Error("single class classify")
	}
}

func TestBreaksAllEqual(t *testing.T) {
	breaks, err := Breaks([]float64{4, 4, 4, 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if Classify(4, breaks) < 0 || Classify(4, breaks) > 2 {
		t.Errorf("classify = %d", Classify(4, breaks))
	}
}

// sseOfPartition computes the within-class SSE of a classification.
func sseOfPartition(sorted []float64, cuts []int) float64 {
	// cuts are start indices of classes after the first.
	bounds := append([]int{0}, cuts...)
	bounds = append(bounds, len(sorted))
	total := 0.0
	for c := 0; c+1 < len(bounds); c++ {
		lo, hi := bounds[c], bounds[c+1]
		if lo == hi {
			continue
		}
		mean := 0.0
		for _, v := range sorted[lo:hi] {
			mean += v
		}
		mean /= float64(hi - lo)
		for _, v := range sorted[lo:hi] {
			total += (v - mean) * (v - mean)
		}
	}
	return total
}

// TestBreaksOptimalAgainstBruteForce: the DP must match exhaustive search of
// all cut placements on small inputs.
func TestBreaksOptimalAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		n := 4 + rng.Intn(6)
		k := 2 + rng.Intn(3)
		if k > n {
			k = n
		}
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = math.Round(rng.Float64()*100) / 10
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)

		breaks, err := Breaks(vals, k)
		if err != nil {
			t.Fatal(err)
		}
		// SSE of the DP solution: classify each value, group, compute.
		classes := make(map[int][]float64)
		for _, v := range sorted {
			classes[Classify(v, breaks)] = append(classes[Classify(v, breaks)], v)
		}
		gotSSE := 0.0
		for _, vs := range classes {
			mean := 0.0
			for _, v := range vs {
				mean += v
			}
			mean /= float64(len(vs))
			for _, v := range vs {
				gotSSE += (v - mean) * (v - mean)
			}
		}
		// Brute force over all cut combinations.
		best := math.Inf(1)
		var rec func(cuts []int, from int)
		rec = func(cuts []int, from int) {
			if len(cuts) == k-1 {
				if s := sseOfPartition(sorted, cuts); s < best {
					best = s
				}
				return
			}
			for c := from; c < n; c++ {
				rec(append(cuts, c), c+1)
			}
		}
		rec(nil, 1)
		if gotSSE > best+1e-6 {
			t.Fatalf("iter %d: DP SSE %.6f > brute %.6f (vals %v, k %d, breaks %v)",
				iter, gotSSE, best, sorted, k, breaks)
		}
	}
}

func TestClassifyMonotone(t *testing.T) {
	breaks := []float64{0.2, 0.5, 0.8}
	prev := -1
	for _, v := range []float64{0, 0.2, 0.3, 0.5, 0.7, 0.8, 0.9} {
		c := Classify(v, breaks)
		if c < prev {
			t.Errorf("classification not monotone at %v", v)
		}
		prev = c
	}
	if Classify(0.2, breaks) != 0 || Classify(0.21, breaks) != 1 {
		t.Error("boundary inclusivity wrong")
	}
}
