package experiments

import (
	"fmt"

	"uopsim/internal/core"
	"uopsim/internal/offline"
	"uopsim/internal/policy"
	"uopsim/internal/profiles"
)

// SensInclusion reproduces the paper's Section VII discussion: with a
// NON-inclusive micro-op cache, the IPC benefit of a better replacement
// policy grows substantially (paper: FURBYS 2.5% IPC vs 0.48% inclusive),
// because surviving L1i evictions effectively enlarges instruction storage.
func SensInclusion(ctx *Context) (*Table, error) {
	t := &Table{Name: "sens-inclusion", Title: "Inclusive vs non-inclusive micro-op cache (Section VII)",
		Columns: []string{"application", "inclusive: FURBYS IPC speedup", "non-inclusive: FURBYS IPC speedup", "non-inclusive: invalidations"}}
	type row struct {
		Inc, Non float64
		Inval    uint64
	}
	rows, err := appRows(ctx, func(app string) (row, error) {
		blocks, _, err := ctx.Trace(app, 0)
		if err != nil {
			return row{}, err
		}
		prof, err := ctx.Profile(app, 0, profiles.SourceFLACK)
		if err != nil {
			return row{}, err
		}
		speedup := func(nonInclusive bool) (float64, uint64, error) {
			cfg := ctx.Cfg
			cfg.Frontend.NonInclusive = nonInclusive
			base := core.RunTimingObserved(blocks, cfg, policy.NewLRU(), ctx.Telemetry)
			pol, err := core.NewPolicy("furbys", prof, cfg.UopCache, policy.FURBYSConfig{})
			if err != nil {
				return 0, 0, err
			}
			fu := core.RunTimingObserved(blocks, cfg, pol, ctx.Telemetry)
			return fu.Frontend.IPC()/base.Frontend.IPC() - 1, fu.Frontend.UopCache.Invalidations, nil
		}
		inc, _, err := speedup(false)
		if err != nil {
			return row{}, err
		}
		non, inval, err := speedup(true)
		if err != nil {
			return row{}, err
		}
		return row{Inc: inc, Non: non, Inval: inval}, nil
	})
	if err != nil {
		return nil, err
	}
	var sumInc, sumNon float64
	for i, app := range ctx.AppList() {
		r := rows[i]
		sumInc += r.Inc
		sumNon += r.Non
		t.AddRow(app, pct(r.Inc), pct(r.Non), r.Inval)
	}
	n := float64(len(ctx.AppList()))
	t.AddRow("MEAN", pct(sumInc/n), pct(sumNon/n), "")
	t.Notes = append(t.Notes, "Paper: non-inclusive FURBYS reaches 2.5% IPC speedup vs 0.48% inclusive; the non-inclusive design complicates self-modifying-code invalidation.")
	return t, nil
}

// SensInsertDelay sweeps the asynchronous-insertion delay: the value of
// FLACK's A feature (lazy eviction + late-insertion safeguard) should grow
// with the lookup/insertion skew. This is the ablation DESIGN.md calls out
// for the asynchrony model. Each delay point is one scheduler cell.
func SensInsertDelay(ctx *Context) (*Table, error) {
	t := &Table{Name: "sens-delay", Title: "Insertion-delay sensitivity: value of FLACK's asynchrony handling",
		Columns: []string{"insert delay (lookups)", "lru miss rate", "foo reduction", "foo+A reduction", "A benefit"}}
	app := ctx.AppList()[0]
	delays := []int{0, 1, 2, 3, 5, 8}
	labels := make([]string, len(delays))
	for i, d := range delays {
		labels[i] = fmt.Sprintf("delay=%d", d)
	}
	type point struct{ MissRate, RRaw, RA float64 }
	points, err := cells(ctx, labels, func(i int) (point, error) {
		_, pws, err := ctx.Trace(app, 0)
		if err != nil {
			return point{}, err
		}
		cfg := ctx.Cfg
		cfg.UopCache.InsertDelay = delays[i]
		// InsertDelay is excluded from the geometry signature (it affects
		// timing, not per-window attributes), so the context's prepared
		// trace and cached plans stay valid across the sweep.
		base := core.RunBehavior(pws, cfg, policy.NewLRU(), ctx.runOptsFor(app, 0))
		raw := offline.RunFOO(pws, cfg.UopCache, ctx.offlineOptsFor(app, 0, offline.Options{Features: offline.Features{}}))
		withA := offline.RunFOO(pws, cfg.UopCache, ctx.offlineOptsFor(app, 0, offline.Options{Features: offline.Features{Async: true}}))
		return point{MissRate: base.Stats.UopMissRate(),
			RRaw: core.MissReduction(base.Stats, raw.Stats),
			RA:   core.MissReduction(base.Stats, withA.Stats)}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, p := range points {
		t.AddRow(delays[i], fmt.Sprintf("%.4f", p.MissRate), pct(p.RRaw), pct(p.RA), pct(p.RA-p.RRaw))
	}
	t.Notes = append(t.Notes, "Raw FOO applies decisions at lookup time and degrades as insertions lag; the A feature recovers the loss (paper Section III-C/IV).")
	return t, nil
}

// SensSegmentLimit sweeps the FOO/FLACK flow-segmentation limit, the main
// fidelity/runtime knob of the offline solver (a DESIGN.md substitution for
// solving the whole-trace LP at once). Each limit is one scheduler cell.
func SensSegmentLimit(ctx *Context) (*Table, error) {
	t := &Table{Name: "sens-segment", Title: "FLACK plan quality vs flow segment limit",
		Columns: []string{"segment limit", "flack miss reduction vs LRU"}}
	app := ctx.AppList()[0]
	limits := []int{128, 512, 2048, offline.DefaultSegmentLimit}
	labels := make([]string, len(limits))
	for i, lim := range limits {
		labels[i] = fmt.Sprintf("limit=%d", lim)
	}
	reds, err := cells(ctx, labels, func(i int) (float64, error) {
		_, pws, err := ctx.Trace(app, 0)
		if err != nil {
			return 0, err
		}
		base, err := ctx.lruBaseline(app)
		if err != nil {
			return 0, err
		}
		res := offline.RunFLACK(pws, ctx.Cfg.UopCache, ctx.offlineOptsFor(app, 0, offline.Options{SegmentLimit: limits[i]}))
		return core.MissReduction(base, res.Stats), nil
	})
	if err != nil {
		return nil, err
	}
	for i, r := range reds {
		t.AddRow(limits[i], pct(r))
	}
	t.Notes = append(t.Notes, "Longer segments let keep decisions look further ahead; quality saturates well before whole-trace solving.")
	return t, nil
}

// SensObjective compares FOO's two published objectives (OHR, BHR) with
// FLACK's variable-cost objective under identical asynchrony handling — a
// direct test of the paper's Section III-D argument that neither OHR nor
// BHR matches the micro-op cache's disproportionate miss costs.
func SensObjective(ctx *Context) (*Table, error) {
	t := &Table{Name: "sens-objective", Title: "Flow objective: OHR vs BHR vs variable cost (Section III-D)",
		Columns: []string{"application", "ohr", "bhr", "variable cost"}}
	rows, err := appRows(ctx, func(app string) ([3]float64, error) {
		_, pws, err := ctx.Trace(app, 0)
		if err != nil {
			return [3]float64{}, err
		}
		base, err := ctx.lruBaseline(app)
		if err != nil {
			return [3]float64{}, err
		}
		var vals [3]float64
		pt, _ := ctx.Prepared(app, 0)
		for i, model := range []offline.CostModel{offline.CostOHR, offline.CostBHR, offline.CostVC} {
			dec := offline.ComputeDecisionsCached(ctx.Ctx, pws, pt, ctx.Cfg.UopCache, model, true, 0, ctx.Workers, ctx.plans())
			res := offline.ReplayPlan(pws, ctx.Cfg.UopCache, dec, ctx.offlineOptsFor(app, 0, offline.Options{Features: offline.FLACKFeatures()}))
			vals[i] = core.MissReduction(base, res.Stats)
		}
		return vals, nil
	})
	if err != nil {
		return nil, err
	}
	var sums [3]float64
	for i, app := range ctx.AppList() {
		r := rows[i]
		sums[0] += r[0]
		sums[1] += r[1]
		sums[2] += r[2]
		t.AddRow(app, pct(r[0]), pct(r[1]), pct(r[2]))
	}
	n := float64(len(ctx.AppList()))
	t.AddRow("MEAN", pct(sums[0]/n), pct(sums[1]/n), pct(sums[2]/n))
	t.Notes = append(t.Notes, "The variable-cost objective (FLACK's VC) should dominate: OHR ignores both size and cost, BHR tracks entries but not micro-ops.")
	return t, nil
}
