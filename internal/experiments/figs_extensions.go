package experiments

import (
	"fmt"

	"uopsim/internal/core"
	"uopsim/internal/offline"
	"uopsim/internal/policy"
	"uopsim/internal/profiles"
)

// SensInclusion reproduces the paper's Section VII discussion: with a
// NON-inclusive micro-op cache, the IPC benefit of a better replacement
// policy grows substantially (paper: FURBYS 2.5% IPC vs 0.48% inclusive),
// because surviving L1i evictions effectively enlarges instruction storage.
func SensInclusion(ctx *Context) (*Table, error) {
	t := &Table{Name: "sens-inclusion", Title: "Inclusive vs non-inclusive micro-op cache (Section VII)",
		Columns: []string{"application", "inclusive: FURBYS IPC speedup", "non-inclusive: FURBYS IPC speedup", "non-inclusive: invalidations"}}
	var sumInc, sumNon float64
	err := ctx.eachApp(func(app string) error {
		blocks, _, err := ctx.Trace(app, 0)
		if err != nil {
			return err
		}
		prof, err := ctx.Profile(app, 0, profiles.SourceFLACK)
		if err != nil {
			return err
		}
		speedup := func(nonInclusive bool) (float64, uint64, error) {
			cfg := ctx.Cfg
			cfg.Frontend.NonInclusive = nonInclusive
			base := core.RunTimingObserved(blocks, cfg, policy.NewLRU(), ctx.Telemetry)
			pol, err := core.NewPolicy("furbys", prof, cfg.UopCache, policy.FURBYSConfig{})
			if err != nil {
				return 0, 0, err
			}
			fu := core.RunTimingObserved(blocks, cfg, pol, ctx.Telemetry)
			return fu.Frontend.IPC()/base.Frontend.IPC() - 1, fu.Frontend.UopCache.Invalidations, nil
		}
		inc, _, err := speedup(false)
		if err != nil {
			return err
		}
		non, inval, err := speedup(true)
		if err != nil {
			return err
		}
		sumInc += inc
		sumNon += non
		t.AddRow(app, pct(inc), pct(non), inval)
		return nil
	})
	if err != nil {
		return nil, err
	}
	n := float64(len(ctx.AppList()))
	t.AddRow("MEAN", pct(sumInc/n), pct(sumNon/n), "")
	t.Notes = append(t.Notes, "Paper: non-inclusive FURBYS reaches 2.5% IPC speedup vs 0.48% inclusive; the non-inclusive design complicates self-modifying-code invalidation.")
	return t, nil
}

// SensInsertDelay sweeps the asynchronous-insertion delay: the value of
// FLACK's A feature (lazy eviction + late-insertion safeguard) should grow
// with the lookup/insertion skew. This is the ablation DESIGN.md calls out
// for the asynchrony model.
func SensInsertDelay(ctx *Context) (*Table, error) {
	t := &Table{Name: "sens-delay", Title: "Insertion-delay sensitivity: value of FLACK's asynchrony handling",
		Columns: []string{"insert delay (lookups)", "lru miss rate", "foo reduction", "foo+A reduction", "A benefit"}}
	app := ctx.AppList()[0]
	_, pws, err := ctx.Trace(app, 0)
	if err != nil {
		return nil, err
	}
	for _, delay := range []int{0, 1, 2, 3, 5, 8} {
		cfg := ctx.Cfg
		cfg.UopCache.InsertDelay = delay
		base := core.RunBehavior(pws, cfg, policy.NewLRU(), ctx.runOpts())
		raw := offline.RunFOO(pws, cfg.UopCache, ctx.offlineOpts(offline.Options{Features: offline.Features{}}))
		withA := offline.RunFOO(pws, cfg.UopCache, ctx.offlineOpts(offline.Options{Features: offline.Features{Async: true}}))
		rRaw := core.MissReduction(base.Stats, raw.Stats)
		rA := core.MissReduction(base.Stats, withA.Stats)
		t.AddRow(delay, fmt.Sprintf("%.4f", base.Stats.UopMissRate()), pct(rRaw), pct(rA), pct(rA-rRaw))
	}
	t.Notes = append(t.Notes, "Raw FOO applies decisions at lookup time and degrades as insertions lag; the A feature recovers the loss (paper Section III-C/IV).")
	return t, nil
}

// SensSegmentLimit sweeps the FOO/FLACK flow-segmentation limit, the main
// fidelity/runtime knob of the offline solver (a DESIGN.md substitution for
// solving the whole-trace LP at once).
func SensSegmentLimit(ctx *Context) (*Table, error) {
	t := &Table{Name: "sens-segment", Title: "FLACK plan quality vs flow segment limit",
		Columns: []string{"segment limit", "flack miss reduction vs LRU"}}
	app := ctx.AppList()[0]
	_, pws, err := ctx.Trace(app, 0)
	if err != nil {
		return nil, err
	}
	base, err := ctx.lruBaseline(app)
	if err != nil {
		return nil, err
	}
	for _, lim := range []int{128, 512, 2048, offline.DefaultSegmentLimit} {
		res := offline.RunFLACK(pws, ctx.Cfg.UopCache, ctx.offlineOpts(offline.Options{SegmentLimit: lim}))
		t.AddRow(lim, pct(core.MissReduction(base, res.Stats)))
	}
	t.Notes = append(t.Notes, "Longer segments let keep decisions look further ahead; quality saturates well before whole-trace solving.")
	return t, nil
}

// SensObjective compares FOO's two published objectives (OHR, BHR) with
// FLACK's variable-cost objective under identical asynchrony handling — a
// direct test of the paper's Section III-D argument that neither OHR nor
// BHR matches the micro-op cache's disproportionate miss costs.
func SensObjective(ctx *Context) (*Table, error) {
	t := &Table{Name: "sens-objective", Title: "Flow objective: OHR vs BHR vs variable cost (Section III-D)",
		Columns: []string{"application", "ohr", "bhr", "variable cost"}}
	var sums [3]float64
	err := ctx.eachApp(func(app string) error {
		_, pws, err := ctx.Trace(app, 0)
		if err != nil {
			return err
		}
		base, err := ctx.lruBaseline(app)
		if err != nil {
			return err
		}
		row := []any{app}
		for i, model := range []offline.CostModel{offline.CostOHR, offline.CostBHR, offline.CostVC} {
			dec := offline.ComputeDecisions(pws, ctx.Cfg.UopCache, model, true, 0)
			res := offline.ReplayPlan(pws, ctx.Cfg.UopCache, dec, ctx.offlineOpts(offline.Options{Features: offline.FLACKFeatures()}))
			r := core.MissReduction(base, res.Stats)
			sums[i] += r
			row = append(row, pct(r))
		}
		t.AddRow(row...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	n := float64(len(ctx.AppList()))
	t.AddRow("MEAN", pct(sums[0]/n), pct(sums[1]/n), pct(sums[2]/n))
	t.Notes = append(t.Notes, "The variable-cost objective (FLACK's VC) should dominate: OHR ignores both size and cost, BHR tracks entries but not micro-ops.")
	return t, nil
}
