package experiments

import (
	"bytes"
	"testing"
)

// TestExperimentOutputsDeterministic runs the same experiment twice from
// fresh contexts and requires byte-identical rendered output. This is the
// dynamic counterpart of the simlint determinism analyzer: tab2 covers the
// serial trace/timing path, fig8 covers FLACK profiling, profiles.Weights
// and the FURBYS detectors — the sites where map-iteration order could leak
// into results.
func TestExperimentOutputsDeterministic(t *testing.T) {
	render := func(id string) string {
		t.Helper()
		run, ok := Lookup(id)
		if !ok {
			t.Fatalf("Lookup(%s) failed", id)
		}
		tbl, err := run(smallCtx())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		var buf bytes.Buffer
		if err := tbl.CSV(&buf); err != nil {
			t.Fatalf("%s: CSV: %v", id, err)
		}
		if err := tbl.Markdown(&buf); err != nil {
			t.Fatalf("%s: Markdown: %v", id, err)
		}
		return buf.String()
	}
	for _, id := range []string{"tab2", "fig8"} {
		first, second := render(id), render(id)
		if first != second {
			t.Errorf("experiment %s output differs between identical runs:\n--- first ---\n%s\n--- second ---\n%s", id, first, second)
		}
	}
}
