package experiments

import (
	"testing"

	"uopsim/internal/plot"
)

// TestAllRegisteredExperimentsHaveUniqueIDs guards the registry against
// copy-paste duplicates as experiments accumulate.
func TestAllRegisteredExperimentsHaveUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, id := range IDs() {
		if seen[id] {
			t.Errorf("duplicate experiment id %q", id)
		}
		seen[id] = true
	}
}

// TestTablesRenderAsPlots: every experiment that produces numeric columns
// must be renderable by the SVG plotter without panicking, and the ones the
// paper presents as figures must actually be plottable.
func TestTablesRenderAsPlots(t *testing.T) {
	ctx := NewContext(6000)
	ctx.Apps = []string{"kafka"}
	mustPlot := map[string]bool{
		"fig5": true, "fig8": true, "fig19": true, "fig20": true, "fig21": true,
	}
	for _, id := range []string{"tab1", "fig5", "fig8", "fig19", "fig20", "fig21"} {
		run, ok := Lookup(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		tbl, err := run(ctx)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		svg, ok := plot.RenderTable(plot.TableData{
			Name: tbl.Name, Title: tbl.Title, Columns: tbl.Columns, Rows: tbl.Rows,
		})
		if mustPlot[id] && !ok {
			t.Errorf("%s: expected plottable figure", id)
		}
		if ok && len(svg) < 100 {
			t.Errorf("%s: suspiciously small SVG", id)
		}
	}
}
