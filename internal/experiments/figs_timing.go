package experiments

import (
	"fmt"
	"sync"

	"uopsim/internal/core"
	"uopsim/internal/policy"
	"uopsim/internal/profiles"
)

// timingByName runs the timing model for a named policy on an app, sharing
// the context's cached profile for profile-guided policies.
func (c *Context) timingByName(app, name string) (core.TimingResult, error) {
	blocks, pws, err := c.Trace(app, 0)
	if err != nil {
		return core.TimingResult{}, err
	}
	var prof *profiles.Profile
	if name == "thermometer" || name == "furbys" {
		prof, err = c.Profile(app, 0, profiles.SourceFLACK)
		if err != nil {
			return core.TimingResult{}, err
		}
	}
	return core.RunTimingByNameObserved(name, blocks, pws, c.Cfg, prof, c.Telemetry)
}

// Fig2PerfectStructures reproduces Fig. 2: per-core performance-per-watt
// gain when each frontend structure is made perfect.
func Fig2PerfectStructures(ctx *Context) (*Table, error) {
	t := &Table{Name: "fig2", Title: "PPW gain of perfect structures over LRU baseline (Fig. 2)",
		Columns: []string{"application", "perfect uop cache", "perfect icache", "perfect BP", "perfect BTB"}}
	type variant struct {
		name  string
		apply func(*core.Config)
	}
	variants := []variant{
		{"uop", func(c *core.Config) { c.Frontend.PerfectUopCache = true }},
		{"icache", func(c *core.Config) { c.Frontend.PerfectICache = true }},
		{"bp", func(c *core.Config) { c.Frontend.PerfectBP = true }},
		{"btb", func(c *core.Config) { c.Frontend.PerfectBTB = true }},
	}
	sums := make([]float64, len(variants))
	err := ctx.eachApp(func(app string) error {
		blocks, _, err := ctx.Trace(app, 0)
		if err != nil {
			return err
		}
		base := core.RunTimingObserved(blocks, ctx.Cfg, policy.NewLRU(), ctx.Telemetry)
		row := []any{app}
		for i, v := range variants {
			cfg := ctx.Cfg
			v.apply(&cfg)
			res := core.RunTimingObserved(blocks, cfg, policy.NewLRU(), ctx.Telemetry)
			gain := res.PPW/base.PPW - 1
			sums[i] += gain
			row = append(row, pct(gain))
		}
		t.AddRow(row...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	meanRow := []any{"MEAN"}
	n := float64(len(ctx.AppList()))
	for _, s := range sums {
		meanRow = append(meanRow, pct(s/n))
	}
	t.AddRow(meanRow...)
	t.Notes = append(t.Notes, "Paper: the perfect micro-op cache gives the largest gain, 7.41% on average.")
	return t, nil
}

// ppwTable renders PPW gains over LRU for a policy list under a config,
// running applications in parallel.
func (c *Context) ppwTable(name, title string, policyNames []string, notes ...string) (*Table, error) {
	t := &Table{Name: name, Title: title, Columns: append([]string{"application"}, policyNames...), Notes: notes}
	gains := make(map[string][]float64) // app -> per-policy gains
	var mu sync.Mutex
	err := c.forEachApp(func(app string) error {
		base, err := c.timingByName(app, "lru")
		if err != nil {
			return err
		}
		row := make([]float64, len(policyNames))
		for i, p := range policyNames {
			res, err := c.timingByName(app, p)
			if err != nil {
				return err
			}
			row[i] = res.PPW/base.PPW - 1
		}
		mu.Lock()
		gains[app] = row
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	sums := make([]float64, len(policyNames))
	for _, app := range c.AppList() {
		row := []any{app}
		for i, g := range gains[app] {
			sums[i] += g
			row = append(row, pct(g))
		}
		t.AddRow(row...)
	}
	meanRow := []any{"MEAN"}
	n := float64(len(c.AppList()))
	for _, s := range sums {
		meanRow = append(meanRow, pct(s/n))
	}
	t.AddRow(meanRow...)
	return t, nil
}

// Fig9PPW reproduces Fig. 9: FURBYS performance-per-watt gain.
func Fig9PPW(ctx *Context) (*Table, error) {
	return ctx.ppwTable("fig9", "Performance-per-watt gain over LRU (Fig. 9)",
		[]string{"srrip", "ship++", "ghrp", "mockingjay", "thermometer", "furbys"},
		"Paper: FURBYS gains 3.10% PPW on average, ~5.1x the existing policies.")
}

// Fig11IPC reproduces Fig. 11: IPC speedup over LRU.
func Fig11IPC(ctx *Context) (*Table, error) {
	names := []string{"srrip", "ship++", "ghrp", "mockingjay", "thermometer", "furbys", "flack"}
	t := &Table{Name: "fig11", Title: "IPC speedup over LRU (Fig. 11)",
		Columns: append(append([]string{"application"}, names...), "infinite uop cache")}
	sums := make([]float64, len(names)+1)
	err := ctx.eachApp(func(app string) error {
		blocks, _, err := ctx.Trace(app, 0)
		if err != nil {
			return err
		}
		base, err := ctx.timingByName(app, "lru")
		if err != nil {
			return err
		}
		row := []any{app}
		for i, p := range names {
			res, err := ctx.timingByName(app, p)
			if err != nil {
				return err
			}
			sp := res.Frontend.IPC()/base.Frontend.IPC() - 1
			sums[i] += sp
			row = append(row, pct(sp))
		}
		// Infinite (perfect) micro-op cache bound.
		cfg := ctx.Cfg
		cfg.Frontend.PerfectUopCache = true
		inf := core.RunTimingObserved(blocks, cfg, policy.NewLRU(), ctx.Telemetry)
		sp := inf.Frontend.IPC()/base.Frontend.IPC() - 1
		sums[len(names)] += sp
		row = append(row, pct(sp))
		t.AddRow(row...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	meanRow := []any{"MEAN"}
	n := float64(len(ctx.AppList()))
	for _, s := range sums {
		meanRow = append(meanRow, pct(s/n))
	}
	t.AddRow(meanRow...)
	t.Notes = append(t.Notes, "Paper: FURBYS speeds up IPC by ~0.49% (60% of FLACK, 28.48% of an infinite micro-op cache); miss reduction only partially translates to IPC.")
	return t, nil
}

// Fig12ISOPerformance reproduces Fig. 12: how large an LRU cache must be to
// match FURBYS at 512 entries.
func Fig12ISOPerformance(ctx *Context) (*Table, error) {
	t := &Table{Name: "fig12", Title: "ISO-performance: LRU at larger capacities vs FURBYS@512 (Fig. 12)",
		Columns: []string{"configuration", "mean uop miss rate", "mean IPC", "mean miss reduction vs LRU@512"}}
	// Keep 64 sets and scale ways: 512..1024 entries in 25% steps.
	type cfgRow struct {
		label   string
		entries int
		ways    int
		furbys  bool
	}
	rows := []cfgRow{
		{"lru@512", 512, 8, false},
		{"lru@640", 640, 10, false},
		{"lru@768", 768, 12, false},
		{"lru@896", 896, 14, false},
		{"lru@1024", 1024, 16, false},
		{"furbys@512", 512, 8, true},
	}
	for _, rc := range rows {
		cfg := ctx.Cfg
		cfg.UopCache.Entries = rc.entries
		cfg.UopCache.Ways = rc.ways
		if err := cfg.UopCache.Validate(); err != nil {
			return nil, fmt.Errorf("fig12 config %s: %w", rc.label, err)
		}
		var missRates, ipcs, reds []float64
		for _, app := range ctx.AppList() {
			blocks, pws, err := ctx.Trace(app, 0)
			if err != nil {
				return nil, err
			}
			baseCfg := ctx.Cfg
			base := core.RunBehavior(pws, baseCfg, policy.NewLRU(), ctx.runOpts())

			var polName string
			var prof *profiles.Profile
			if rc.furbys {
				polName = "furbys"
				prof, err = ctx.Profile(app, 0, profiles.SourceFLACK)
				if err != nil {
					return nil, err
				}
			} else {
				polName = "lru"
			}
			pol, err := core.NewPolicy(polName, prof, cfg.UopCache, policy.FURBYSConfig{})
			if err != nil {
				return nil, err
			}
			beh := core.RunBehavior(pws, cfg, pol, ctx.runOpts())
			missRates = append(missRates, beh.Stats.UopMissRate())
			reds = append(reds, core.MissReduction(base.Stats, beh.Stats))

			pol2, err := core.NewPolicy(polName, prof, cfg.UopCache, policy.FURBYSConfig{})
			if err != nil {
				return nil, err
			}
			tim := core.RunTimingObserved(blocks, cfg, pol2, ctx.Telemetry)
			ipcs = append(ipcs, tim.Frontend.IPC())
		}
		t.AddRow(rc.label, fmt.Sprintf("%.4f", mean(missRates)), fmt.Sprintf("%.4f", mean(ipcs)), pct(mean(reds)))
	}
	t.Notes = append(t.Notes, "Paper: LRU needs ~1.5x the capacity on average (2x for Postgres) to match FURBYS.")
	return t, nil
}

// Fig13EnergyBreakdownClang reproduces Fig. 13: per-core energy breakdown on
// Clang for no-uop-cache, LRU, and FURBYS.
func Fig13EnergyBreakdownClang(ctx *Context) (*Table, error) {
	app := "clang"
	t := &Table{Name: "fig13", Title: "Per-core energy breakdown on Clang (Fig. 13)",
		Columns: []string{"configuration", "decoder", "icache", "uop cache", "others", "total vs no-uop-cache"}}
	blocks, _, err := ctx.Trace(app, 0)
	if err != nil {
		return nil, err
	}
	noCfg := ctx.Cfg
	noCfg.Frontend.DisableUopCache = true
	noUop := core.RunTimingObserved(blocks, noCfg, policy.NewLRU(), ctx.Telemetry)

	lru := core.RunTimingObserved(blocks, ctx.Cfg, policy.NewLRU(), ctx.Telemetry)

	prof, err := ctx.Profile(app, 0, profiles.SourceFLACK)
	if err != nil {
		return nil, err
	}
	fpol, err := core.NewPolicy("furbys", prof, ctx.Cfg.UopCache, policy.FURBYSConfig{})
	if err != nil {
		return nil, err
	}
	furbys := core.RunTimingObserved(blocks, ctx.Cfg, fpol, ctx.Telemetry)

	baseTotal := noUop.Power.Total()
	add := func(label string, r core.TimingResult) {
		b := r.Power
		others := b.Total() - b.Decoder - b.ICache - b.UopCache
		t.AddRow(label,
			pct(b.Decoder/b.Total()), pct(b.ICache/b.Total()), pct(b.UopCache/b.Total()),
			pct(others/b.Total()), pct(b.Total()/baseTotal))
	}
	add("no uop cache", noUop)
	add("lru", lru)
	add("furbys", furbys)
	t.Notes = append(t.Notes,
		"Paper: without a uop cache the decoder takes 12.5% and the icache 7.7% of per-core power; adding an LRU uop cache saves 8.1%; FURBYS saves a further 2.2%.")
	return t, nil
}

// Fig14EnergyReductionBreakdown reproduces Fig. 14: where FURBYS's energy
// savings come from relative to LRU.
func Fig14EnergyReductionBreakdown(ctx *Context) (*Table, error) {
	t := &Table{Name: "fig14", Title: "Energy-reduction breakdown of FURBYS vs LRU (Fig. 14)",
		Columns: []string{"application", "icache", "uop-cache insertion", "decoder", "other", "total saved"}}
	var sums [4]float64
	n := 0
	err := ctx.eachApp(func(app string) error {
		blocks, _, err := ctx.Trace(app, 0)
		if err != nil {
			return err
		}
		lru := core.RunTimingObserved(blocks, ctx.Cfg, policy.NewLRU(), ctx.Telemetry)
		prof, err := ctx.Profile(app, 0, profiles.SourceFLACK)
		if err != nil {
			return err
		}
		fpol, err := core.NewPolicy("furbys", prof, ctx.Cfg.UopCache, policy.FURBYSConfig{})
		if err != nil {
			return err
		}
		fu := core.RunTimingObserved(blocks, ctx.Cfg, fpol, ctx.Telemetry)
		dIc := lru.Power.ICache - fu.Power.ICache
		dUop := lru.Power.UopCache - fu.Power.UopCache
		dDec := lru.Power.Decoder - fu.Power.Decoder
		dTot := lru.Power.Total() - fu.Power.Total()
		dOther := dTot - dIc - dUop - dDec
		if dTot <= 0 {
			t.AddRow(app, "-", "-", "-", "-", pct(dTot/lru.Power.Total()))
			return nil
		}
		n++
		sums[0] += dIc / dTot
		sums[1] += dUop / dTot
		sums[2] += dDec / dTot
		sums[3] += dOther / dTot
		t.AddRow(app, pct(dIc/dTot), pct(dUop/dTot), pct(dDec/dTot), pct(dOther/dTot), pct(dTot/lru.Power.Total()))
		return nil
	})
	if err != nil {
		return nil, err
	}
	if n > 0 {
		t.AddRow("MEAN", pct(sums[0]/float64(n)), pct(sums[1]/float64(n)), pct(sums[2]/float64(n)), pct(sums[3]/float64(n)), "")
	}
	t.Notes = append(t.Notes, "Paper: ~7.75% of the gain comes from the icache, 73.26% from fewer uop-cache insertions, 16.35% from the decoder.")
	return t, nil
}

// Fig17Zen4PPW reproduces Fig. 17: PPW gains under the Zen4 configuration.
func Fig17Zen4PPW(ctx *Context) (*Table, error) {
	zen4 := NewContext(ctx.Blocks)
	zen4.Apps = ctx.Apps
	zen4.Cfg = core.Zen4Config()
	zen4.Cfg.Energy = ctx.Cfg.Energy
	zen4.Telemetry = ctx.Telemetry
	zen4.Progress = ctx.Progress
	zen4.Begin("fig17")
	t, err := zen4.ppwTable("fig17", "PPW gain over LRU, Zen4 configuration (Fig. 17)",
		[]string{"srrip", "ship++", "ghrp", "mockingjay", "thermometer", "furbys"},
		"Paper: FURBYS gains 2.41% PPW on Zen4, still ahead of every other policy.")
	return t, err
}
