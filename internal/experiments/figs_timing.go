package experiments

import (
	"fmt"

	"uopsim/internal/core"
	"uopsim/internal/policy"
	"uopsim/internal/profiles"
)

// timingByName runs (cached) the timing model for a named policy on an app,
// sharing the context's cached profile for profile-guided policies.
// Concurrent cells needing the same (app, policy) timing share one run.
func (c *Context) timingByName(app, name string) (core.TimingResult, error) {
	return once(c, c.caches.times, app+"/"+name, func() (core.TimingResult, error) {
		blocks, pws, err := c.Trace(app, 0)
		if err != nil {
			return core.TimingResult{}, err
		}
		var prof *profiles.Profile
		if name == "thermometer" || name == "furbys" {
			prof, err = c.Profile(app, 0, profiles.SourceFLACK)
			if err != nil {
				return core.TimingResult{}, err
			}
		}
		topts := core.TimingOptions{Telemetry: c.Telemetry, Plans: c.plans(), Workers: c.Workers}
		if pt, perr := c.Prepared(app, 0); perr == nil {
			topts.Prepared = pt
		}
		return core.RunTimingByNameWith(name, blocks, pws, c.Cfg, prof, topts)
	})
}

// Fig2PerfectStructures reproduces Fig. 2: per-core performance-per-watt
// gain when each frontend structure is made perfect.
func Fig2PerfectStructures(ctx *Context) (*Table, error) {
	t := &Table{Name: "fig2", Title: "PPW gain of perfect structures over LRU baseline (Fig. 2)",
		Columns: []string{"application", "perfect uop cache", "perfect icache", "perfect BP", "perfect BTB"}}
	type variant struct {
		name  string
		apply func(*core.Config)
	}
	variants := []variant{
		{"uop", func(c *core.Config) { c.Frontend.PerfectUopCache = true }},
		{"icache", func(c *core.Config) { c.Frontend.PerfectICache = true }},
		{"bp", func(c *core.Config) { c.Frontend.PerfectBP = true }},
		{"btb", func(c *core.Config) { c.Frontend.PerfectBTB = true }},
	}
	rows, err := appRows(ctx, func(app string) ([]float64, error) {
		blocks, _, err := ctx.Trace(app, 0)
		if err != nil {
			return nil, err
		}
		base := core.RunTimingObserved(blocks, ctx.Cfg, policy.NewLRU(), ctx.Telemetry)
		gains := make([]float64, len(variants))
		for i, v := range variants {
			cfg := ctx.Cfg
			v.apply(&cfg)
			res := core.RunTimingObserved(blocks, cfg, policy.NewLRU(), ctx.Telemetry)
			gains[i] = res.PPW/base.PPW - 1
		}
		return gains, nil
	})
	if err != nil {
		return nil, err
	}
	sums := make([]float64, len(variants))
	for i, app := range ctx.AppList() {
		row := []any{app}
		for j, g := range padded(rows[i], len(variants)) {
			sums[j] += g
			row = append(row, pct(g))
		}
		t.AddRow(row...)
	}
	meanRow := []any{"MEAN"}
	n := float64(len(ctx.AppList()))
	for _, s := range sums {
		meanRow = append(meanRow, pct(s/n))
	}
	t.AddRow(meanRow...)
	t.Notes = append(t.Notes, "Paper: the perfect micro-op cache gives the largest gain, 7.41% on average.")
	return t, nil
}

// ppwTable renders PPW gains over LRU for a policy list under a config,
// running applications as concurrent cells.
func (c *Context) ppwTable(name, title string, policyNames []string, notes ...string) (*Table, error) {
	t := &Table{Name: name, Title: title, Columns: append([]string{"application"}, policyNames...), Notes: notes}
	rows, err := appRows(c, func(app string) ([]float64, error) {
		base, err := c.timingByName(app, "lru")
		if err != nil {
			return nil, err
		}
		row := make([]float64, len(policyNames))
		for i, p := range policyNames {
			res, err := c.timingByName(app, p)
			if err != nil {
				return nil, err
			}
			row[i] = res.PPW/base.PPW - 1
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	sums := make([]float64, len(policyNames))
	for i, app := range c.AppList() {
		row := []any{app}
		for j, g := range padded(rows[i], len(policyNames)) {
			sums[j] += g
			row = append(row, pct(g))
		}
		t.AddRow(row...)
	}
	meanRow := []any{"MEAN"}
	n := float64(len(c.AppList()))
	for _, s := range sums {
		meanRow = append(meanRow, pct(s/n))
	}
	t.AddRow(meanRow...)
	return t, nil
}

// Fig9PPW reproduces Fig. 9: FURBYS performance-per-watt gain.
func Fig9PPW(ctx *Context) (*Table, error) {
	return ctx.ppwTable("fig9", "Performance-per-watt gain over LRU (Fig. 9)",
		[]string{"srrip", "ship++", "ghrp", "mockingjay", "thermometer", "furbys"},
		"Paper: FURBYS gains 3.10% PPW on average, ~5.1x the existing policies.")
}

// Fig11IPC reproduces Fig. 11: IPC speedup over LRU.
func Fig11IPC(ctx *Context) (*Table, error) {
	names := []string{"srrip", "ship++", "ghrp", "mockingjay", "thermometer", "furbys", "flack"}
	t := &Table{Name: "fig11", Title: "IPC speedup over LRU (Fig. 11)",
		Columns: append(append([]string{"application"}, names...), "infinite uop cache")}
	rows, err := appRows(ctx, func(app string) ([]float64, error) {
		blocks, _, err := ctx.Trace(app, 0)
		if err != nil {
			return nil, err
		}
		base, err := ctx.timingByName(app, "lru")
		if err != nil {
			return nil, err
		}
		speedups := make([]float64, 0, len(names)+1)
		for _, p := range names {
			res, err := ctx.timingByName(app, p)
			if err != nil {
				return nil, err
			}
			speedups = append(speedups, res.Frontend.IPC()/base.Frontend.IPC()-1)
		}
		// Infinite (perfect) micro-op cache bound.
		cfg := ctx.Cfg
		cfg.Frontend.PerfectUopCache = true
		inf := core.RunTimingObserved(blocks, cfg, policy.NewLRU(), ctx.Telemetry)
		speedups = append(speedups, inf.Frontend.IPC()/base.Frontend.IPC()-1)
		return speedups, nil
	})
	if err != nil {
		return nil, err
	}
	sums := make([]float64, len(names)+1)
	for i, app := range ctx.AppList() {
		row := []any{app}
		for j, sp := range padded(rows[i], len(names)+1) {
			sums[j] += sp
			row = append(row, pct(sp))
		}
		t.AddRow(row...)
	}
	meanRow := []any{"MEAN"}
	n := float64(len(ctx.AppList()))
	for _, s := range sums {
		meanRow = append(meanRow, pct(s/n))
	}
	t.AddRow(meanRow...)
	t.Notes = append(t.Notes, "Paper: FURBYS speeds up IPC by ~0.49% (60% of FLACK, 28.48% of an infinite micro-op cache); miss reduction only partially translates to IPC.")
	return t, nil
}

// Fig12ISOPerformance reproduces Fig. 12: how large an LRU cache must be to
// match FURBYS at 512 entries. Each capacity point is one scheduler cell.
func Fig12ISOPerformance(ctx *Context) (*Table, error) {
	t := &Table{Name: "fig12", Title: "ISO-performance: LRU at larger capacities vs FURBYS@512 (Fig. 12)",
		Columns: []string{"configuration", "mean uop miss rate", "mean IPC", "mean miss reduction vs LRU@512"}}
	// Keep 64 sets and scale ways: 512..1024 entries in 25% steps.
	type cfgRow struct {
		label   string
		entries int
		ways    int
		furbys  bool
	}
	rows := []cfgRow{
		{"lru@512", 512, 8, false},
		{"lru@640", 640, 10, false},
		{"lru@768", 768, 12, false},
		{"lru@896", 896, 14, false},
		{"lru@1024", 1024, 16, false},
		{"furbys@512", 512, 8, true},
	}
	labels := make([]string, len(rows))
	for i, rc := range rows {
		labels[i] = rc.label
	}
	type point struct{ MissRate, IPC, Red float64 }
	points, err := cells(ctx, labels, func(i int) (point, error) {
		rc := rows[i]
		cfg := ctx.Cfg
		cfg.UopCache.Entries = rc.entries
		cfg.UopCache.Ways = rc.ways
		if err := cfg.UopCache.Validate(); err != nil {
			return point{}, fmt.Errorf("fig12 config %s: %w", rc.label, err)
		}
		var missRates, ipcs, reds []float64
		for _, app := range ctx.AppList() {
			blocks, pws, err := ctx.Trace(app, 0)
			if err != nil {
				return point{}, err
			}
			base, err := ctx.lruBaseline(app)
			if err != nil {
				return point{}, err
			}

			var polName string
			var prof *profiles.Profile
			if rc.furbys {
				polName = "furbys"
				prof, err = ctx.Profile(app, 0, profiles.SourceFLACK)
				if err != nil {
					return point{}, err
				}
			} else {
				polName = "lru"
			}
			pol, err := core.NewPolicy(polName, prof, cfg.UopCache, policy.FURBYSConfig{})
			if err != nil {
				return point{}, err
			}
			beh := core.RunBehavior(pws, cfg, pol, ctx.runOpts())
			missRates = append(missRates, beh.Stats.UopMissRate())
			reds = append(reds, core.MissReduction(base, beh.Stats))

			pol2, err := core.NewPolicy(polName, prof, cfg.UopCache, policy.FURBYSConfig{})
			if err != nil {
				return point{}, err
			}
			tim := core.RunTimingObserved(blocks, cfg, pol2, ctx.Telemetry)
			ipcs = append(ipcs, tim.Frontend.IPC())
		}
		return point{MissRate: mean(missRates), IPC: mean(ipcs), Red: mean(reds)}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, p := range points {
		t.AddRow(rows[i].label, fmt.Sprintf("%.4f", p.MissRate), fmt.Sprintf("%.4f", p.IPC), pct(p.Red))
	}
	t.Notes = append(t.Notes, "Paper: LRU needs ~1.5x the capacity on average (2x for Postgres) to match FURBYS.")
	return t, nil
}

// Fig13EnergyBreakdownClang reproduces Fig. 13: per-core energy breakdown on
// Clang for no-uop-cache, LRU, and FURBYS — each configuration one cell.
func Fig13EnergyBreakdownClang(ctx *Context) (*Table, error) {
	app := "clang"
	t := &Table{Name: "fig13", Title: "Per-core energy breakdown on Clang (Fig. 13)",
		Columns: []string{"configuration", "decoder", "icache", "uop cache", "others", "total vs no-uop-cache"}}
	labels := []string{"no uop cache", "lru", "furbys"}
	results, err := cells(ctx, labels, func(i int) (core.TimingResult, error) {
		blocks, _, err := ctx.Trace(app, 0)
		if err != nil {
			return core.TimingResult{}, err
		}
		switch i {
		case 0:
			noCfg := ctx.Cfg
			noCfg.Frontend.DisableUopCache = true
			return core.RunTimingObserved(blocks, noCfg, policy.NewLRU(), ctx.Telemetry), nil
		case 1:
			return core.RunTimingObserved(blocks, ctx.Cfg, policy.NewLRU(), ctx.Telemetry), nil
		default:
			prof, err := ctx.Profile(app, 0, profiles.SourceFLACK)
			if err != nil {
				return core.TimingResult{}, err
			}
			fpol, err := core.NewPolicy("furbys", prof, ctx.Cfg.UopCache, policy.FURBYSConfig{})
			if err != nil {
				return core.TimingResult{}, err
			}
			return core.RunTimingObserved(blocks, ctx.Cfg, fpol, ctx.Telemetry), nil
		}
	})
	if err != nil {
		return nil, err
	}
	baseTotal := results[0].Power.Total()
	for i, label := range labels {
		b := results[i].Power
		others := b.Total() - b.Decoder - b.ICache - b.UopCache
		t.AddRow(label,
			pct(b.Decoder/b.Total()), pct(b.ICache/b.Total()), pct(b.UopCache/b.Total()),
			pct(others/b.Total()), pct(b.Total()/baseTotal))
	}
	t.Notes = append(t.Notes,
		"Paper: without a uop cache the decoder takes 12.5% and the icache 7.7% of per-core power; adding an LRU uop cache saves 8.1%; FURBYS saves a further 2.2%.")
	return t, nil
}

// Fig14EnergyReductionBreakdown reproduces Fig. 14: where FURBYS's energy
// savings come from relative to LRU.
func Fig14EnergyReductionBreakdown(ctx *Context) (*Table, error) {
	t := &Table{Name: "fig14", Title: "Energy-reduction breakdown of FURBYS vs LRU (Fig. 14)",
		Columns: []string{"application", "icache", "uop-cache insertion", "decoder", "other", "total saved"}}
	type row struct {
		Skip    bool
		Shares  [4]float64
		TotFrac float64
	}
	rows, err := appRows(ctx, func(app string) (row, error) {
		blocks, _, err := ctx.Trace(app, 0)
		if err != nil {
			return row{}, err
		}
		lru := core.RunTimingObserved(blocks, ctx.Cfg, policy.NewLRU(), ctx.Telemetry)
		prof, err := ctx.Profile(app, 0, profiles.SourceFLACK)
		if err != nil {
			return row{}, err
		}
		fpol, err := core.NewPolicy("furbys", prof, ctx.Cfg.UopCache, policy.FURBYSConfig{})
		if err != nil {
			return row{}, err
		}
		fu := core.RunTimingObserved(blocks, ctx.Cfg, fpol, ctx.Telemetry)
		dIc := lru.Power.ICache - fu.Power.ICache
		dUop := lru.Power.UopCache - fu.Power.UopCache
		dDec := lru.Power.Decoder - fu.Power.Decoder
		dTot := lru.Power.Total() - fu.Power.Total()
		dOther := dTot - dIc - dUop - dDec
		if dTot <= 0 {
			return row{Skip: true, TotFrac: dTot / lru.Power.Total()}, nil
		}
		return row{Shares: [4]float64{dIc / dTot, dUop / dTot, dDec / dTot, dOther / dTot},
			TotFrac: dTot / lru.Power.Total()}, nil
	})
	if err != nil {
		return nil, err
	}
	var sums [4]float64
	n := 0
	for i, app := range ctx.AppList() {
		r := rows[i]
		if r.Skip {
			t.AddRow(app, "-", "-", "-", "-", pct(r.TotFrac))
			continue
		}
		n++
		for k := 0; k < 4; k++ {
			sums[k] += r.Shares[k]
		}
		t.AddRow(app, pct(r.Shares[0]), pct(r.Shares[1]), pct(r.Shares[2]), pct(r.Shares[3]), pct(r.TotFrac))
	}
	if n > 0 {
		t.AddRow("MEAN", pct(sums[0]/float64(n)), pct(sums[1]/float64(n)), pct(sums[2]/float64(n)), pct(sums[3]/float64(n)), "")
	}
	t.Notes = append(t.Notes, "Paper: ~7.75% of the gain comes from the icache, 73.26% from fewer uop-cache insertions, 16.35% from the decoder.")
	return t, nil
}

// Fig17Zen4PPW reproduces Fig. 17: PPW gains under the Zen4 configuration.
// The derived context gets fresh caches (different geometry) but shares the
// scheduler, so the run obeys the same worker budget and its cell timings
// land in the fig17 manifest entry.
func Fig17Zen4PPW(ctx *Context) (*Table, error) {
	cfg := core.Zen4Config()
	cfg.Energy = ctx.Cfg.Energy
	return ctx.withConfig(cfg).ppwTable("fig17", "PPW gain over LRU, Zen4 configuration (Fig. 17)",
		[]string{"srrip", "ship++", "ghrp", "mockingjay", "thermometer", "furbys"},
		"Paper: FURBYS gains 2.41% PPW on Zen4, still ahead of every other policy.")
}
