package experiments

import (
	"fmt"

	"uopsim/internal/core"
	"uopsim/internal/offline"
	"uopsim/internal/policy"
	"uopsim/internal/profiles"
	"uopsim/internal/stats"
	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
	"uopsim/internal/workload"
)

// lruBaseline runs (cached) the LRU baseline on an app's PW trace;
// concurrent cells needing the same baseline share one run.
func (c *Context) lruBaseline(app string) (uopcache.Stats, error) {
	return once(c, c.caches.bases, app, func() (uopcache.Stats, error) {
		_, pws, err := c.Trace(app, 0)
		if err != nil {
			return uopcache.Stats{}, err
		}
		return core.RunBehavior(pws, c.Cfg, policy.NewLRU(), c.runOptsFor(app, 0)).Stats, nil
	})
}

// Table1 dumps the simulation parameters (paper Table I).
func Table1(ctx *Context) (*Table, error) {
	t := &Table{Name: "tab1", Title: "Simulation parameters (Table I)", Columns: []string{"parameter", "value"}}
	cfg := ctx.Cfg
	t.AddRow("CPU", fmt.Sprintf("3.2GHz, %d-wide OoO, %d-entry ROB", cfg.Backend.Width, cfg.Backend.ROB))
	t.AddRow("Decoder", fmt.Sprintf("%d-wide decoder, %d-cycle latency", cfg.Frontend.DecodeWidth, cfg.Frontend.DecodeLatency))
	t.AddRow("Branch predictor", fmt.Sprintf("%d-entry %d-way BTB, %d-entry RAS, TAGE-lite, %d-entry IBTB",
		cfg.Branch.BTBEntries, cfg.Branch.BTBWays, cfg.Branch.RASEntries, cfg.Branch.IBTBEntries))
	t.AddRow("Micro-op cache", fmt.Sprintf("%d-entry, %d-way, %d micro-ops/entry, inclusive with L1i, %d-cycle switch delay",
		cfg.UopCache.Entries, cfg.UopCache.Ways, cfg.UopCache.UopsPerEntry, cfg.Frontend.SwitchPenalty))
	t.AddRow("L1i", fmt.Sprintf("%dB-line, %dKiB, %d-way, %d-cycle, LRU",
		cfg.L1I.LineBytes, cfg.L1I.SizeBytes>>10, cfg.L1I.Ways, cfg.L1I.LatencyCycles))
	t.AddRow("L1d", fmt.Sprintf("%dB-line, %dKiB, %d-way, %d-cycle, LRU",
		cfg.Backend.L1D.LineBytes, cfg.Backend.L1D.SizeBytes>>10, cfg.Backend.L1D.Ways, cfg.Backend.L1D.LatencyCycles))
	t.AddRow("L2", fmt.Sprintf("%dB-line, %dKiB, %d-way, %d-cycle, LRU",
		cfg.Backend.L2.LineBytes, cfg.Backend.L2.SizeBytes>>10, cfg.Backend.L2.Ways, cfg.Backend.L2Latency))
	t.AddRow("DRAM", fmt.Sprintf("%d-cycle latency", cfg.Backend.DRAMLatency))
	return t, nil
}

// Table2 lists the applications with paper-reported and measured MPKI.
func Table2(ctx *Context) (*Table, error) {
	t := &Table{Name: "tab2", Title: "Data center applications (Table II)",
		Columns: []string{"application", "description", "paper MPKI", "measured MPKI", "static PWs", "overlapping PWs", "avg uops/PW"}}
	// Exported, concretely-typed fields: cell row groups round-trip
	// through the JSON checkpoint journal, and unexported or `any`-typed
	// fields would be dropped or re-typed on restore, breaking the
	// byte-identical-resume guarantee.
	type row struct {
		Desc, Target, MPKI string
		Distinct           int
		Overlap, Avg       string
	}
	rows, err := appRows(ctx, func(app string) (row, error) {
		spec, err := workload.Get(app)
		if err != nil {
			return row{}, err
		}
		blocks, pws, err := ctx.Trace(app, 0)
		if err != nil {
			return row{}, err
		}
		res := core.RunTimingObserved(blocks, ctx.Cfg, policy.NewLRU(), ctx.Telemetry)
		an := trace.Analyze(pws, ctx.Cfg.UopCache.UopsPerEntry)
		return row{Desc: spec.Description, Target: fmt.Sprintf("%.2f", spec.TargetMPKI),
			MPKI: fmt.Sprintf("%.2f", res.Frontend.Branch.MPKI()), Distinct: an.DistinctStarts,
			Overlap: pct(an.OverlapFrac()), Avg: fmt.Sprintf("%.1f", an.AvgUops)}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, app := range ctx.AppList() {
		r := rows[i]
		t.AddRow(app, r.Desc, r.Target, r.MPKI, r.Distinct, r.Overlap, r.Avg)
	}
	t.Notes = append(t.Notes, "Measured MPKI comes from the TAGE-lite predictor on the synthetic traces; the paper's column is the calibration target.")
	return t, nil
}

// Sec3BMissClasses reproduces the Section III-B miss classification under
// LRU and under the near-optimal FLACK policy.
func Sec3BMissClasses(ctx *Context) (*Table, error) {
	t := &Table{Name: "sec3b", Title: "Miss classification: cold/capacity/conflict (Section III-B)",
		Columns: []string{"application", "policy", "cold", "capacity", "conflict", "total misses"}}
	lruCounter := func(pws []trace.PW, cfg uopcache.Config) uint64 {
		c := uopcache.New(cfg, policy.NewLRU())
		return uopcache.NewBehavior(c, nil).Run(pws).Misses
	}
	flackCounter := func(pws []trace.PW, cfg uopcache.Config) uint64 {
		return offline.RunFLACK(pws, cfg, offline.Options{}).Stats.Misses
	}
	type row struct {
		LRU, FLACK           [3]float64
		LRUTotal, FLACKTotal uint64
	}
	rows, err := appRows(ctx, func(app string) (row, error) {
		_, pws, err := ctx.Trace(app, 0)
		if err != nil {
			return row{}, err
		}
		ml := stats.Classify(pws, ctx.Cfg.UopCache, lruCounter)
		mf := stats.Classify(pws, ctx.Cfg.UopCache, flackCounter)
		c1, c2, c3 := ml.Fractions()
		f1, f2, f3 := mf.Fractions()
		return row{LRU: [3]float64{c1, c2, c3}, FLACK: [3]float64{f1, f2, f3},
			LRUTotal: ml.Total, FLACKTotal: mf.Total}, nil
	})
	if err != nil {
		return nil, err
	}
	var lruTotals, flackTotals [3]float64
	for i, app := range ctx.AppList() {
		r := rows[i]
		for k := 0; k < 3; k++ {
			lruTotals[k] += r.LRU[k]
			flackTotals[k] += r.FLACK[k]
		}
		t.AddRow(app, "lru", pct(r.LRU[0]), pct(r.LRU[1]), pct(r.LRU[2]), r.LRUTotal)
		t.AddRow(app, "flack", pct(r.FLACK[0]), pct(r.FLACK[1]), pct(r.FLACK[2]), r.FLACKTotal)
	}
	n := float64(len(ctx.AppList()))
	t.AddRow("MEAN", "lru", pct(lruTotals[0]/n), pct(lruTotals[1]/n), pct(lruTotals[2]/n), "")
	t.AddRow("MEAN", "flack", pct(flackTotals[0]/n), pct(flackTotals[1]/n), pct(flackTotals[2]/n), "")
	t.Notes = append(t.Notes, "Paper: with LRU, 0.89% cold / 88.31% capacity / 10.8% conflict; near-optimal reduces capacity and conflict misses by 23.9% and 31.6%.")
	return t, nil
}

// Sec3EReuseDistances reproduces the reuse-distance comparison of Section
// III-E: micro-op cache PWs have far more scattered reuse than icache lines
// or BTB entries.
func Sec3EReuseDistances(ctx *Context) (*Table, error) {
	t := &Table{Name: "sec3e", Title: "Reuse distance spectrum (Section III-E)",
		Columns: []string{"application", "PW frac > 30", "icache-line frac > 30", "branch-PC frac > 30"}}
	rows, err := appRows(ctx, func(app string) ([3]float64, error) {
		blocks, pws, err := ctx.Trace(app, 0)
		if err != nil {
			return [3]float64{}, err
		}
		const maxB = 256
		hPW := stats.ReuseDistances(stats.PWKeys(pws), maxB)
		hLine := stats.ReuseDistances(stats.LineKeys(blocks), maxB)
		hBr := stats.ReuseDistances(stats.BranchKeys(blocks), maxB)
		return [3]float64{hPW.FracAbove(30), hLine.FracAbove(30), hBr.FracAbove(30)}, nil
	})
	if err != nil {
		return nil, err
	}
	var sums [3]float64
	for i, app := range ctx.AppList() {
		r := rows[i]
		sums[0] += r[0]
		sums[1] += r[1]
		sums[2] += r[2]
		t.AddRow(app, pct(r[0]), pct(r[1]), pct(r[2]))
	}
	n := float64(len(ctx.AppList()))
	t.AddRow("MEAN", pct(sums[0]/n), pct(sums[1]/n), pct(sums[2]/n))
	t.Notes = append(t.Notes, "Paper: >20% of PWs, ~10% of icache lines and ~2% of BTB entries have reuse distance over 30.")
	return t, nil
}

// runPolicyOnApp runs a named policy in behaviour mode, routing the
// profile-guided ones through the context's profile cache so FLACK is
// solved once per app rather than once per policy.
func (c *Context) runPolicyOnApp(name, app string) (core.BehaviorResult, error) {
	_, pws, err := c.Trace(app, 0)
	if err != nil {
		return core.BehaviorResult{}, err
	}
	if name == "thermometer" || name == "furbys" {
		prof, err := c.Profile(app, 0, profiles.SourceFLACK)
		if err != nil {
			return core.BehaviorResult{}, err
		}
		pol, err := core.NewPolicy(name, prof, c.Cfg.UopCache, policy.FURBYSConfig{})
		if err != nil {
			return core.BehaviorResult{}, err
		}
		return core.RunBehavior(pws, c.Cfg, pol, c.runOptsFor(app, 0)), nil
	}
	return core.RunBehaviorByName(name, pws, c.Cfg, c.runOptsFor(app, 0))
}

// behaviorReductions computes per-app miss reductions vs LRU for a policy
// list (apps as concurrent cells), returning per-policy per-app values.
func (c *Context) behaviorReductions(policyNames []string) (map[string]map[string]float64, error) {
	apps := c.AppList()
	rows, err := appRows(c, func(app string) ([]float64, error) {
		base, err := c.lruBaseline(app)
		if err != nil {
			return nil, err
		}
		vals := make([]float64, len(policyNames))
		for i, name := range policyNames {
			res, err := c.runPolicyOnApp(name, app)
			if err != nil {
				return nil, err
			}
			vals[i] = core.MissReduction(base, res.Stats)
		}
		return vals, nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]map[string]float64)
	for _, name := range policyNames {
		out[name] = make(map[string]float64, len(apps))
	}
	for i, app := range apps {
		row := padded(rows[i], len(policyNames))
		for j, name := range policyNames {
			out[name][app] = row[j]
		}
	}
	return out, nil
}

// reductionTable renders a per-app × per-policy miss-reduction matrix.
func (c *Context) reductionTable(name, title string, policyNames []string, notes ...string) (*Table, error) {
	red, err := c.behaviorReductions(policyNames)
	if err != nil {
		return nil, err
	}
	t := &Table{Name: name, Title: title, Columns: append([]string{"application"}, policyNames...), Notes: notes}
	for _, app := range c.AppList() {
		row := []any{app}
		for _, p := range policyNames {
			row = append(row, pct(red[p][app]))
		}
		t.AddRow(row...)
	}
	meanRow := []any{"MEAN"}
	for _, p := range policyNames {
		var vals []float64
		for _, app := range c.AppList() {
			vals = append(vals, red[p][app])
		}
		meanRow = append(meanRow, pct(mean(vals)))
	}
	t.AddRow(meanRow...)
	return t, nil
}

// Fig5ExistingPolicies reproduces Fig. 5: existing online policies versus
// the FLACK bound.
func Fig5ExistingPolicies(ctx *Context) (*Table, error) {
	return ctx.reductionTable("fig5", "Miss reduction of existing policies vs LRU (Fig. 5)",
		[]string{"srrip", "ship++", "mockingjay", "ghrp", "thermometer", "flack"},
		"Paper: existing policies reach only a fraction of FLACK's 30.21% average reduction; GHRP best at ~31.5% of FLACK.")
}

// Fig8FURBYSMissReduction reproduces Fig. 8: FURBYS against everything.
func Fig8FURBYSMissReduction(ctx *Context) (*Table, error) {
	return ctx.reductionTable("fig8", "FURBYS miss reduction vs existing policies (Fig. 8)",
		[]string{"srrip", "ship++", "mockingjay", "ghrp", "thermometer", "furbys", "flack"},
		"Paper: FURBYS averages 14.34% (1.84x the best existing policy) and reaches 57.85% of FLACK.")
}

// Fig10FLACKAblation reproduces the ablation of Fig. 10 under a perfect
// icache: FOO, +A, +A+VC, FLACK, against Belady.
func Fig10FLACKAblation(ctx *Context) (*Table, error) {
	variants := []offline.Features{
		{},
		{Async: true},
		{Async: true, VarCost: true},
		offline.FLACKFeatures(),
	}
	cols := []string{"application", "belady"}
	for _, v := range variants {
		cols = append(cols, v.Label())
	}
	t := &Table{Name: "fig10", Title: "FLACK ablation vs Belady over LRU, perfect icache (Fig. 10)", Columns: cols}
	rows, err := appRows(ctx, func(app string) ([]float64, error) {
		_, pws, err := ctx.Trace(app, 0)
		if err != nil {
			return nil, err
		}
		base, err := ctx.lruBaseline(app)
		if err != nil {
			return nil, err
		}
		vals := make([]float64, 0, len(variants)+1)
		bel := offline.RunBelady(pws, ctx.Cfg.UopCache, ctx.offlineOptsFor(app, 0, offline.Options{}))
		vals = append(vals, core.MissReduction(base, bel.Stats))
		for _, v := range variants {
			res := offline.RunFOO(pws, ctx.Cfg.UopCache, ctx.offlineOptsFor(app, 0, offline.Options{Features: v}))
			vals = append(vals, core.MissReduction(base, res.Stats))
		}
		return vals, nil
	})
	if err != nil {
		return nil, err
	}
	sums := make([]float64, len(variants)+1)
	for i, app := range ctx.AppList() {
		row := []any{app}
		for j, r := range padded(rows[i], len(variants)+1) {
			sums[j] += r
			row = append(row, pct(r))
		}
		t.AddRow(row...)
	}
	meanRow := []any{"MEAN"}
	n := float64(len(ctx.AppList()))
	for _, s := range sums {
		meanRow = append(meanRow, pct(s/n))
	}
	t.AddRow(meanRow...)
	t.Notes = append(t.Notes, "Paper: raw FOO can be worse than LRU; each feature adds gains; FLACK beats Belady by 4.46% on average.")
	return t, nil
}

// Fig15ProfileSources reproduces Fig. 15: FURBYS trained on Belady, FOO and
// FLACK decision traces.
func Fig15ProfileSources(ctx *Context) (*Table, error) {
	srcs := []profiles.Source{profiles.SourceBelady, profiles.SourceFOO, profiles.SourceFLACK}
	t := &Table{Name: "fig15", Title: "FURBYS miss reduction by offline profile source (Fig. 15)",
		Columns: []string{"application", "belady-profile", "foo-profile", "flack-profile"}}
	rows, err := appRows(ctx, func(app string) ([3]float64, error) {
		_, pws, err := ctx.Trace(app, 0)
		if err != nil {
			return [3]float64{}, err
		}
		base, err := ctx.lruBaseline(app)
		if err != nil {
			return [3]float64{}, err
		}
		var vals [3]float64
		for i, src := range srcs {
			prof, err := ctx.Profile(app, 0, src)
			if err != nil {
				return [3]float64{}, err
			}
			pol, err := core.NewPolicy("furbys", prof, ctx.Cfg.UopCache, policy.FURBYSConfig{})
			if err != nil {
				return [3]float64{}, err
			}
			res := core.RunBehavior(pws, ctx.Cfg, pol, ctx.runOptsFor(app, 0))
			vals[i] = core.MissReduction(base, res.Stats)
		}
		return vals, nil
	})
	if err != nil {
		return nil, err
	}
	var sums [3]float64
	for i, app := range ctx.AppList() {
		r := rows[i]
		sums[0] += r[0]
		sums[1] += r[1]
		sums[2] += r[2]
		t.AddRow(app, pct(r[0]), pct(r[1]), pct(r[2]))
	}
	n := float64(len(ctx.AppList()))
	t.AddRow("MEAN", pct(sums[0]/n), pct(sums[1]/n), pct(sums[2]/n))
	t.Notes = append(t.Notes, "Paper: the FLACK profile yields ~3.47% more reduction than Belady's and ~4.39% more than FOO's.")
	return t, nil
}

// Fig16SizeAssocSweep reproduces Fig. 16: FURBYS vs GHRP across cache sizes
// and associativities. Each valid (entries, ways) point is one scheduler
// cell; the geometry differs from the context's, so profiles are collected
// directly rather than through the (geometry-keyed) cache.
func Fig16SizeAssocSweep(ctx *Context) (*Table, error) {
	t := &Table{Name: "fig16", Title: "Miss reduction across sizes and associativities: FURBYS vs GHRP (Fig. 16)",
		Columns: []string{"entries", "ways", "furbys mean", "ghrp mean"}}
	type combo struct{ entries, ways int }
	var combos []combo
	var labels []string
	for _, entries := range []int{256, 512, 1024, 2048} {
		for _, ways := range []int{4, 8, 16} {
			cfg := ctx.Cfg
			cfg.UopCache.Entries = entries
			cfg.UopCache.Ways = ways
			if cfg.UopCache.Validate() != nil {
				continue
			}
			combos = append(combos, combo{entries, ways})
			labels = append(labels, fmt.Sprintf("%dx%d", entries, ways))
		}
	}
	type point struct{ Fu, Gh float64 }
	rows, err := cells(ctx, labels, func(i int) (point, error) {
		cfg := ctx.Cfg
		cfg.UopCache.Entries = combos[i].entries
		cfg.UopCache.Ways = combos[i].ways
		var fu, gh []float64
		for _, app := range ctx.AppList() {
			_, pws, err := ctx.Trace(app, 0)
			if err != nil {
				return point{}, err
			}
			base := core.RunBehavior(pws, cfg, policy.NewLRU(), ctx.runOpts())
			prof := collectProfile(pws, cfg.UopCache, profiles.SourceFLACK, profiles.CollectOptions{
				Metrics: ctx.Telemetry.Metrics, Events: ctx.Telemetry.Events,
				Plans: ctx.plans(), Workers: ctx.Workers,
			})
			pol, err := core.NewPolicy("furbys", prof, cfg.UopCache, policy.FURBYSConfig{})
			if err != nil {
				return point{}, err
			}
			fu = append(fu, core.MissReduction(base.Stats, core.RunBehavior(pws, cfg, pol, ctx.runOpts()).Stats))
			gh = append(gh, core.MissReduction(base.Stats, core.RunBehavior(pws, cfg, policy.NewGHRP(), ctx.runOpts()).Stats))
		}
		return point{Fu: mean(fu), Gh: mean(gh)}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		t.AddRow(combos[i].entries, combos[i].ways, pct(r.Fu), pct(r.Gh))
	}
	t.Notes = append(t.Notes, "Paper: FURBYS outperforms GHRP in every configuration; the gap narrows as capacity grows.")
	return t, nil
}

// Fig18CrossValidation reproduces Fig. 18: profiles from training inputs
// applied to a held-out test input.
func Fig18CrossValidation(ctx *Context) (*Table, error) {
	t := &Table{Name: "fig18", Title: "Cross-validation: train-input profile vs same-input profile (Fig. 18)",
		Columns: []string{"application", "same-input", "cross-input", "retained"}}
	type row struct{ Same, Cross float64 }
	rows, err := appRows(ctx, func(app string) (row, error) {
		_, testPWs, err := ctx.Trace(app, 0)
		if err != nil {
			return row{}, err
		}
		base, err := ctx.lruBaseline(app)
		if err != nil {
			return row{}, err
		}
		// Same-input: profile from the test trace itself.
		sameProf, err := ctx.Profile(app, 0, profiles.SourceFLACK)
		if err != nil {
			return row{}, err
		}
		// Cross-input: merge profiles of two other inputs.
		p1, err := ctx.Profile(app, 1, profiles.SourceFLACK)
		if err != nil {
			return row{}, err
		}
		p2, err := ctx.Profile(app, 2, profiles.SourceFLACK)
		if err != nil {
			return row{}, err
		}
		crossProf := profiles.Merge(p1, p2)

		runWith := func(p *profiles.Profile) (float64, error) {
			pol, err := core.NewPolicy("furbys", p, ctx.Cfg.UopCache, policy.FURBYSConfig{})
			if err != nil {
				return 0, err
			}
			res := core.RunBehavior(testPWs, ctx.Cfg, pol, ctx.runOptsFor(app, 0))
			return core.MissReduction(base, res.Stats), nil
		}
		same, err := runWith(sameProf)
		if err != nil {
			return row{}, err
		}
		cross, err := runWith(crossProf)
		if err != nil {
			return row{}, err
		}
		return row{Same: same, Cross: cross}, nil
	})
	if err != nil {
		return nil, err
	}
	var sumSame, sumCross float64
	for i, app := range ctx.AppList() {
		r := rows[i]
		sumSame += r.Same
		sumCross += r.Cross
		ret := "n/a"
		if r.Same > 0 {
			ret = pct(r.Cross / r.Same)
		}
		t.AddRow(app, pct(r.Same), pct(r.Cross), ret)
	}
	n := float64(len(ctx.AppList()))
	retained := 0.0
	if sumSame != 0 {
		retained = sumCross / sumSame
	}
	t.AddRow("MEAN", pct(sumSame/n), pct(sumCross/n), pct(retained))
	t.Notes = append(t.Notes, "Paper: cross-input profiles retain 94.34% of the same-input reduction (13.51% vs LRU).")
	return t, nil
}

// Fig19WeightBits sweeps the number of weight-group bits (Fig. 19); each
// bit count is one scheduler cell.
func Fig19WeightBits(ctx *Context) (*Table, error) {
	t := &Table{Name: "fig19", Title: "Miss reduction vs number of weight bits (Fig. 19)",
		Columns: []string{"bits", "groups", "mean reduction"}}
	const maxBits = 8
	labels := make([]string, maxBits)
	for i := range labels {
		labels[i] = fmt.Sprintf("bits=%d", i+1)
	}
	rows, err := cells(ctx, labels, func(i int) (float64, error) {
		bits := i + 1
		var vals []float64
		for _, app := range ctx.AppList() {
			_, pws, err := ctx.Trace(app, 0)
			if err != nil {
				return 0, err
			}
			base, err := ctx.lruBaseline(app)
			if err != nil {
				return 0, err
			}
			prof, err := ctx.Profile(app, 0, profiles.SourceFLACK)
			if err != nil {
				return 0, err
			}
			fcfg := policy.DefaultFURBYSConfig()
			fcfg.WeightBits = bits
			pol, err := core.NewPolicy("furbys", prof, ctx.Cfg.UopCache, fcfg)
			if err != nil {
				return 0, err
			}
			res := core.RunBehavior(pws, ctx.Cfg, pol, ctx.runOptsFor(app, 0))
			vals = append(vals, core.MissReduction(base, res.Stats))
		}
		return mean(vals), nil
	})
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		bits := i + 1
		t.AddRow(bits, 1<<bits, pct(r))
	}
	t.Notes = append(t.Notes, "Paper: 3 bits (8 groups) balances reduction against hardware overhead.")
	return t, nil
}

// Fig20DetectorDepth sweeps the local miss-pitfall detector depth (Fig. 20);
// each depth is one scheduler cell.
func Fig20DetectorDepth(ctx *Context) (*Table, error) {
	t := &Table{Name: "fig20", Title: "Miss reduction vs pitfall detector depth (Fig. 20)",
		Columns: []string{"depth", "mean reduction"}}
	const maxDepth = 4
	labels := make([]string, maxDepth+1)
	for i := range labels {
		labels[i] = fmt.Sprintf("depth=%d", i)
	}
	rows, err := cells(ctx, labels, func(depth int) (float64, error) {
		var vals []float64
		for _, app := range ctx.AppList() {
			_, pws, err := ctx.Trace(app, 0)
			if err != nil {
				return 0, err
			}
			base, err := ctx.lruBaseline(app)
			if err != nil {
				return 0, err
			}
			prof, err := ctx.Profile(app, 0, profiles.SourceFLACK)
			if err != nil {
				return 0, err
			}
			fcfg := policy.DefaultFURBYSConfig()
			fcfg.DetectorDepth = depth
			pol, err := core.NewPolicy("furbys", prof, ctx.Cfg.UopCache, fcfg)
			if err != nil {
				return 0, err
			}
			res := core.RunBehavior(pws, ctx.Cfg, pol, ctx.runOptsFor(app, 0))
			vals = append(vals, core.MissReduction(base, res.Stats))
		}
		return mean(vals), nil
	})
	if err != nil {
		return nil, err
	}
	for depth, r := range rows {
		t.AddRow(depth, pct(r))
	}
	t.Notes = append(t.Notes, "Paper: depth 2 gives the best miss reduction.")
	return t, nil
}

// Fig21Bypass compares FURBYS with bypassing on and off (Fig. 21).
func Fig21Bypass(ctx *Context) (*Table, error) {
	t := &Table{Name: "fig21", Title: "FURBYS bypass mechanism on/off (Fig. 21)",
		Columns: []string{"application", "bypass off", "bypass on", "bypassed insertions"}}
	type row struct{ Off, On, ByFrac float64 }
	rows, err := appRows(ctx, func(app string) (row, error) {
		_, pws, err := ctx.Trace(app, 0)
		if err != nil {
			return row{}, err
		}
		base, err := ctx.lruBaseline(app)
		if err != nil {
			return row{}, err
		}
		prof, err := ctx.Profile(app, 0, profiles.SourceFLACK)
		if err != nil {
			return row{}, err
		}
		offCfg := policy.DefaultFURBYSConfig()
		offCfg.BypassEnabled = false
		polOff, err := core.NewPolicy("furbys", prof, ctx.Cfg.UopCache, offCfg)
		if err != nil {
			return row{}, err
		}
		rOff := core.MissReduction(base, core.RunBehavior(pws, ctx.Cfg, polOff, ctx.runOptsFor(app, 0)).Stats)

		polOn, err := core.NewPolicy("furbys", prof, ctx.Cfg.UopCache, policy.DefaultFURBYSConfig())
		if err != nil {
			return row{}, err
		}
		resOn := core.RunBehavior(pws, ctx.Cfg, polOn, ctx.runOptsFor(app, 0))
		rOn := core.MissReduction(base, resOn.Stats)
		byFrac := 0.0
		if resOn.FURBYS != nil && resOn.FURBYS.InsertAttempts > 0 {
			byFrac = float64(resOn.FURBYS.Bypasses) / float64(resOn.FURBYS.InsertAttempts)
		}
		return row{Off: rOff, On: rOn, ByFrac: byFrac}, nil
	})
	if err != nil {
		return nil, err
	}
	var sumOff, sumOn float64
	for i, app := range ctx.AppList() {
		r := rows[i]
		sumOff += r.Off
		sumOn += r.On
		t.AddRow(app, pct(r.Off), pct(r.On), pct(r.ByFrac))
	}
	n := float64(len(ctx.AppList()))
	t.AddRow("MEAN", pct(sumOff/n), pct(sumOn/n), "")
	t.Notes = append(t.Notes, "Paper: bypassing adds 4.33% more miss reduction and bypasses ~30% of insertions.")
	return t, nil
}

// Fig22Hotness reproduces the hot/warm/cold PW analysis on Kafka (Fig. 22);
// each policy's recorded replay is one scheduler cell.
func Fig22Hotness(ctx *Context) (*Table, error) {
	app := "kafka"
	names := []string{"lru", "ghrp", "furbys", "flack"}
	t := &Table{Name: "fig22", Title: "Hit rate by PW popularity decile on Kafka (Fig. 22)",
		Columns: append([]string{"decile"}, names...)}
	rows, err := cells(ctx, names, func(i int) ([10]stats.DecileStat, error) {
		_, pws, err := ctx.Trace(app, 0)
		if err != nil {
			return [10]stats.DecileStat{}, err
		}
		res, err := core.RunBehaviorByName(names[i], pws, ctx.Cfg, ctx.runOptsRecordFor(app, 0))
		if err != nil {
			return [10]stats.DecileStat{}, err
		}
		return stats.HotnessDeciles(pws, res.PerLookup), nil
	})
	if err != nil {
		return nil, err
	}
	for d := 0; d < 10; d++ {
		row := []any{fmt.Sprintf("%d-%d%%", d*10, (d+1)*10)}
		for i := range names {
			row = append(row, pct(rows[i][d].HitRate()))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "Paper: all policies handle hot PWs (<1% apart); FURBYS wins on warm PWs; the FLACK gap concentrates in cold PWs.")
	return t, nil
}

// CoverageStats reports FURBYS decision provenance (Section VI-C).
func CoverageStats(ctx *Context) (*Table, error) {
	t := &Table{Name: "coverage", Title: "FURBYS victim-selection coverage and bypass rate (Section VI-C)",
		Columns: []string{"application", "furbys-selected victims", "srrip fallback", "bypassed insertions"}}
	type row struct {
		OK      bool
		Cov, By float64
	}
	rows, err := appRows(ctx, func(app string) (row, error) {
		_, pws, err := ctx.Trace(app, 0)
		if err != nil {
			return row{}, err
		}
		prof, err := ctx.Profile(app, 0, profiles.SourceFLACK)
		if err != nil {
			return row{}, err
		}
		pol, err := core.NewPolicy("furbys", prof, ctx.Cfg.UopCache, policy.FURBYSConfig{})
		if err != nil {
			return row{}, err
		}
		res := core.RunBehavior(pws, ctx.Cfg, pol, ctx.runOptsFor(app, 0))
		if res.FURBYS == nil {
			return row{}, nil
		}
		byFrac := 0.0
		if res.FURBYS.InsertAttempts > 0 {
			byFrac = float64(res.FURBYS.Bypasses) / float64(res.FURBYS.InsertAttempts)
		}
		return row{OK: true, Cov: res.FURBYS.VictimCoverage(), By: byFrac}, nil
	})
	if err != nil {
		return nil, err
	}
	var sumCov, sumBy float64
	for i, app := range ctx.AppList() {
		r := rows[i]
		if !r.OK {
			continue
		}
		sumCov += r.Cov
		sumBy += r.By
		t.AddRow(app, pct(r.Cov), pct(1-r.Cov), pct(r.By))
	}
	n := float64(len(ctx.AppList()))
	t.AddRow("MEAN", pct(sumCov/n), pct(1-sumCov/n), pct(sumBy/n))
	t.Notes = append(t.Notes, "Paper: FURBYS selects the victim 88.68% of the time; ~30% of insertions are bypassed.")
	return t, nil
}
