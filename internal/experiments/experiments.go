// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment is a named function producing a Table; the
// registry drives cmd/experiments and the root benchmark harness. A Context
// caches generated traces, collected profiles and baseline runs behind
// per-key singleflight so multi-figure runs — serial or parallel — do not
// repeat the expensive FLACK profiling step.
//
// Concurrency model: RunMany fans experiments out, and each experiment
// splits into heavy cells (one per app, config point, or policy variant)
// that run under a shared worker budget (Context.Workers). Cell results are
// typed row groups merged in registry/app order, so rendered output is
// byte-identical at any worker count; -parallel 1 reproduces the serial
// schedule. All goroutines live in internal/parallel — simlint forbids raw
// `go` statements in this package.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"uopsim/internal/core"
	"uopsim/internal/offline"
	"uopsim/internal/parallel"
	"uopsim/internal/profiles"
	"uopsim/internal/telemetry"
	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
	"uopsim/internal/workload"
)

// Table is a rendered experiment result.
type Table struct {
	Name    string
	Title   string
	Columns []string
	Rows    [][]string
	// Notes records paper-vs-measured commentary.
	Notes []string
}

// AddRow appends a row (stringifying values).
func (t *Table) AddRow(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case string:
			row[i] = x
		case float64:
			row[i] = fmt.Sprintf("%.4f", x)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// CSV writes the table as CSV.
func (t *Table) CSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Columns, ",")); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(r, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Markdown writes the table as GitHub-flavoured markdown. Every write is
// error-checked (through a sticky-error writer) so a full disk or closed
// pipe surfaces instead of silently truncating a report.
func (t *Table) Markdown(w io.Writer) error {
	ew := &errWriter{w: w}
	fmt.Fprintf(ew, "### %s — %s\n\n", t.Name, t.Title)
	fmt.Fprintf(ew, "| %s |\n", strings.Join(t.Columns, " | "))
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(ew, "| %s |\n", strings.Join(sep, " | "))
	for _, r := range t.Rows {
		fmt.Fprintf(ew, "| %s |\n", strings.Join(r, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(ew, "\n> %s\n", n)
	}
	fmt.Fprintln(ew)
	return ew.err
}

// errWriter carries the first write error through a multi-write render.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, err
}

// Context carries shared configuration, result caches and the worker
// budget. Derived views (scoped, withConfig) share the caches and scheduler
// so the budget and manifest records stay global.
type Context struct {
	// Cfg is the system configuration (DefaultConfig unless overridden).
	Cfg core.Config
	// Blocks is the dynamic block count per trace.
	Blocks int
	// Apps restricts the application list (nil = all 11).
	Apps []string
	// Telemetry is attached to every simulation the experiments launch
	// (zero value = off).
	Telemetry core.Telemetry
	// Progress, when non-nil, receives one status line per completed
	// (experiment, app) cell.
	Progress *telemetry.Progress
	// Workers bounds how many heavy cells run concurrently across ALL
	// experiments sharing this context (0 = GOMAXPROCS, 1 = serial). The
	// same budget is handed to the offline solver.
	Workers int

	// id scopes progress lines and timing records to one experiment.
	id     string
	caches *ctxCaches
	sched  *ctxSched
}

// ctxCaches holds the per-geometry singleflight result caches. The mutex
// only guards map access; computations run with it released, and concurrent
// callers of the same key block on the flight's done channel.
type ctxCaches struct {
	mu     sync.Mutex
	traces map[string]*flight[tracePair]
	profs  map[string]*flight[*profiles.Profile]
	bases  map[string]*flight[uopcache.Stats]
	times  map[string]*flight[core.TimingResult]
}

// ctxSched is the cross-experiment scheduler state: the shared cell limiter
// and the per-experiment timing records feeding the run manifest.
type ctxSched struct {
	mu      sync.Mutex
	cells   *parallel.Limiter
	timings map[string][]telemetry.AppRun
}

// flight is one singleflight computation: the first caller computes and
// closes done; everyone else blocks on done and reads val/err.
type flight[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// once returns the cached value for key, computing it exactly once even
// under concurrent callers — the fix for the duplicate-compute window where
// N parallel cells would each redo trace generation or FLACK profiling.
// Errors are cached too (they are deterministic: unknown app, bad config).
func once[T any](c *ctxCaches, m map[string]*flight[T], key string, compute func() (T, error)) (T, error) {
	c.mu.Lock()
	if f, ok := m[key]; ok {
		c.mu.Unlock()
		<-f.done
		return f.val, f.err
	}
	f := &flight[T]{done: make(chan struct{})}
	m[key] = f
	c.mu.Unlock()
	defer close(f.done)
	f.val, f.err = compute()
	return f.val, f.err
}

func newCaches() *ctxCaches {
	return &ctxCaches{
		traces: make(map[string]*flight[tracePair]),
		profs:  make(map[string]*flight[*profiles.Profile]),
		bases:  make(map[string]*flight[uopcache.Stats]),
		times:  make(map[string]*flight[core.TimingResult]),
	}
}

type tracePair struct {
	blocks []trace.Block
	pws    []trace.PW
}

// NewContext builds a context with the paper's default configuration.
func NewContext(blocks int) *Context {
	if blocks <= 0 {
		blocks = 60000
	}
	return &Context{
		Cfg:    core.DefaultConfig(),
		Blocks: blocks,
		caches: newCaches(),
		sched:  &ctxSched{timings: make(map[string][]telemetry.AppRun)},
	}
}

// scoped returns a view of the context whose progress lines and timing
// records are attributed to the experiment id; caches, scheduler and the
// worker budget stay shared.
func (c *Context) scoped(id string) *Context {
	cc := *c
	cc.id = id
	return &cc
}

// withConfig derives a context with a different system configuration: the
// result caches are fresh (they key on this context's geometry) while the
// scheduler — worker budget, limiter, timing records — stays shared, so the
// derived run obeys the same -parallel budget and reports into the same
// manifest.
func (c *Context) withConfig(cfg core.Config) *Context {
	cc := *c
	cc.Cfg = cfg
	cc.caches = newCaches()
	return &cc
}

// limiter lazily builds the shared cell limiter sized to the context's
// worker budget, wiring the scheduler's parallel_* metrics.
func (c *Context) limiter() *parallel.Limiter {
	c.sched.mu.Lock()
	defer c.sched.mu.Unlock()
	if c.sched.cells == nil {
		c.sched.cells = parallel.NewLimiter(c.Workers, c.Telemetry.Metrics)
	}
	return c.sched.cells
}

// Timings returns the per-cell wall-clock records collected while running
// the named experiment (for the run manifest).
func (c *Context) Timings(id string) []telemetry.AppRun {
	c.sched.mu.Lock()
	defer c.sched.mu.Unlock()
	return c.sched.timings[id]
}

// recordCell notes one completed (experiment, cell) unit and emits a
// progress line; done is the completion count within the cell sweep.
func (c *Context) recordCell(label string, elapsed time.Duration, done, total int, err error) {
	id := c.id
	run := telemetry.AppRun{App: label, WallSeconds: elapsed.Seconds()}
	if err != nil {
		run.Error = err.Error()
	}
	c.sched.mu.Lock()
	if id != "" {
		c.sched.timings[id] = append(c.sched.timings[id], run)
	}
	c.sched.mu.Unlock()
	if id == "" {
		id = "experiments"
	}
	c.Progress.Step(id, label, done, total, elapsed)
}

// cells runs n labelled heavy units as scheduler cells under the shared
// worker budget, returning results in index order so callers can merge rows
// deterministically. Each cell's wall time lands in the manifest under its
// label; progress lines stay coherent under concurrent completion because
// recordCell serializes them. Cell bodies must not call cells again — the
// budget is held for the body's whole duration, and nesting could deadlock
// at -parallel 1.
func cells[T any](c *Context, labels []string, fn func(i int) (T, error)) ([]T, error) {
	var mu sync.Mutex
	done := 0
	return parallel.MapLimited(c.limiter(), len(labels), func(i int) (T, error) {
		//simlint:ignore determinism wall-clock progress reporting only; never feeds simulation state
		start := time.Now()
		v, err := fn(i)
		mu.Lock()
		done++
		n := done
		mu.Unlock()
		c.recordCell(labels[i], time.Since(start), n, len(labels), err)
		return v, err
	})
}

// appRows runs fn once per application as independent scheduler cells,
// collecting each app's typed row group; callers merge the groups in
// AppList order so tables are byte-identical at any worker count. The first
// error (lowest app index among cells that ran) cancels unstarted cells.
func appRows[T any](c *Context, fn func(app string) (T, error)) ([]T, error) {
	apps := c.AppList()
	return cells(c, apps, func(i int) (T, error) { return fn(apps[i]) })
}

// runOpts returns BehaviorOptions carrying the context's telemetry and
// solver worker budget.
func (c *Context) runOpts() core.BehaviorOptions {
	return core.BehaviorOptions{Telemetry: c.Telemetry, Workers: c.Workers}
}

// runOptsRecord is runOpts with per-lookup outcome recording enabled.
func (c *Context) runOptsRecord() core.BehaviorOptions {
	opts := c.runOpts()
	opts.RecordPerLookup = true
	return opts
}

// offlineOpts attaches the context's telemetry and worker budget to offline
// replay options.
func (c *Context) offlineOpts(o offline.Options) offline.Options {
	o.Metrics = c.Telemetry.Metrics
	o.Events = c.Telemetry.Events
	o.Workers = c.Workers
	return o
}

// AppList returns the applications under study.
func (c *Context) AppList() []string {
	if len(c.Apps) > 0 {
		return c.Apps
	}
	return workload.Names()
}

// traceFor and collectProfile are indirection seams so the singleflight
// tests can count how often the underlying computation actually runs.
var (
	traceFor       = core.TraceFor
	collectProfile = profiles.CollectObserved
)

// Trace returns (cached) the block trace and PW sequence for an app/input.
// Concurrent callers of the same key share one generation.
func (c *Context) Trace(app string, input int) ([]trace.Block, []trace.PW, error) {
	key := fmt.Sprintf("%s/%d/%d", app, input, c.Blocks)
	tp, err := once(c.caches, c.caches.traces, key, func() (tracePair, error) {
		blocks, pws, err := traceFor(app, c.Blocks, input)
		return tracePair{blocks: blocks, pws: pws}, err
	})
	return tp.blocks, tp.pws, err
}

// Profile returns (cached) the offline profile for an app/input/source
// under the context's micro-op cache geometry. Concurrent callers of the
// same key invoke CollectObserved exactly once.
func (c *Context) Profile(app string, input int, src profiles.Source) (*profiles.Profile, error) {
	key := fmt.Sprintf("%s/%d/%v/%d/%d/%d", app, input, src, c.Blocks, c.Cfg.UopCache.Entries, c.Cfg.UopCache.Ways)
	return once(c.caches, c.caches.profs, key, func() (*profiles.Profile, error) {
		_, pws, err := c.Trace(app, input)
		if err != nil {
			return nil, err
		}
		return collectProfile(pws, c.Cfg.UopCache, src, c.Telemetry.Metrics, c.Telemetry.Events), nil
	})
}

// Runner is an experiment entry point.
type Runner func(ctx *Context) (*Table, error)

// RunResult is one experiment's outcome from RunMany.
type RunResult struct {
	ID          string
	Table       *Table
	Err         error
	WallSeconds float64
	// Apps holds the per-cell wall-clock records (manifest material).
	Apps []telemetry.AppRun
}

// RunMany executes the named experiments under the context's worker budget.
// With Workers == 1 it reproduces the exact serial schedule; otherwise every
// experiment orchestrates concurrently while heavy cells share the budget.
// Results come back in input order, and emit (optional) is called for each
// result in input order as soon as it and all its predecessors completed —
// so a driver can stream tables without reordering output.
func RunMany(c *Context, ids []string, emit func(RunResult)) []RunResult {
	out := make([]RunResult, len(ids))
	workers := 1
	if parallel.Workers(c.Workers) > 1 {
		workers = len(ids)
	}
	var mu sync.Mutex
	finished := make([]bool, len(ids))
	next := 0
	parallel.Map(workers, len(ids), func(i int) (struct{}, error) {
		r := c.runOne(ids[i])
		mu.Lock()
		out[i], finished[i] = r, true
		for next < len(ids) && finished[next] {
			if emit != nil {
				emit(out[next])
			}
			next++
		}
		mu.Unlock()
		return struct{}{}, nil
	})
	return out
}

// runOne executes a single experiment under a scoped view of the context.
func (c *Context) runOne(id string) RunResult {
	r := RunResult{ID: id}
	run, ok := Lookup(id)
	if !ok {
		r.Err = fmt.Errorf("unknown experiment %q", id)
		return r
	}
	//simlint:ignore determinism wall-clock bookkeeping for the manifest only
	start := time.Now()
	r.Table, r.Err = run(c.scoped(id))
	r.WallSeconds = time.Since(start).Seconds()
	r.Apps = c.Timings(id)
	return r
}

// Registry maps experiment ids (tab1, fig8, ...) to runners, in paper
// order.
func Registry() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"tab1", Table1},
		{"tab2", Table2},
		{"fig2", Fig2PerfectStructures},
		{"sec3b", Sec3BMissClasses},
		{"sec3e", Sec3EReuseDistances},
		{"fig5", Fig5ExistingPolicies},
		{"fig8", Fig8FURBYSMissReduction},
		{"fig9", Fig9PPW},
		{"fig10", Fig10FLACKAblation},
		{"fig11", Fig11IPC},
		{"fig12", Fig12ISOPerformance},
		{"fig13", Fig13EnergyBreakdownClang},
		{"fig14", Fig14EnergyReductionBreakdown},
		{"fig15", Fig15ProfileSources},
		{"fig16", Fig16SizeAssocSweep},
		{"fig17", Fig17Zen4PPW},
		{"fig18", Fig18CrossValidation},
		{"fig19", Fig19WeightBits},
		{"fig20", Fig20DetectorDepth},
		{"fig21", Fig21Bypass},
		{"fig22", Fig22Hotness},
		{"coverage", CoverageStats},
		{"sens-inclusion", SensInclusion},
		{"sens-delay", SensInsertDelay},
		{"sens-segment", SensSegmentLimit},
		{"sens-fragmentation", SensFragmentation},
		{"sens-objective", SensObjective},
	}
}

// Lookup finds a runner by id.
func Lookup(id string) (Runner, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Run, true
		}
	}
	return nil, false
}

// IDs lists experiment ids in order.
func IDs() []string {
	var out []string
	for _, e := range Registry() {
		out = append(out, e.ID)
	}
	return out
}

// pct formats a fraction as a percentage string.
func pct(f float64) string { return fmt.Sprintf("%.2f%%", 100*f) }

// geomean-free mean helper.
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
