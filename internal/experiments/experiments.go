// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment is a named function producing a Table; the
// registry drives cmd/experiments and the root benchmark harness. A Context
// caches generated traces, collected profiles and baseline runs behind
// per-key singleflight so multi-figure runs — serial or parallel — do not
// repeat the expensive FLACK profiling step.
//
// Concurrency model: RunMany fans experiments out, and each experiment
// splits into heavy cells (one per app, config point, or policy variant)
// that run under a shared worker budget (Context.Workers). Cell results are
// typed row groups merged in registry/app order, so rendered output is
// byte-identical at any worker count; -parallel 1 reproduces the serial
// schedule. All goroutines live in internal/parallel — simlint forbids raw
// `go` statements in this package.
//
// Resilience model: Context.Ctx cancels a campaign cooperatively (cells in
// flight finish, queued cells are abandoned), Context.Journal checkpoints
// every completed cell so an interrupted campaign resumes without redoing
// work, and each cell body runs under panic containment with a bounded
// retry budget (Context.Retries) — a cell that exhausts its budget either
// fails the experiment (strict mode) or degrades to a marked-missing table
// entry recorded in the manifest (Context.Degrade). Context.Fault hooks a
// deterministic fault injector into every cell for testing these paths.
package experiments

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"uopsim/internal/artifact"
	"uopsim/internal/core"
	"uopsim/internal/faultinject"
	"uopsim/internal/inspect"
	"uopsim/internal/offline"
	"uopsim/internal/parallel"
	"uopsim/internal/profiles"
	"uopsim/internal/telemetry"
	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
	"uopsim/internal/workload"
)

// Table is a rendered experiment result.
type Table struct {
	Name    string
	Title   string
	Columns []string
	Rows    [][]string
	// Notes records paper-vs-measured commentary.
	Notes []string
}

// AddRow appends a row (stringifying values).
func (t *Table) AddRow(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case string:
			row[i] = x
		case float64:
			row[i] = fmt.Sprintf("%.4f", x)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// CSV writes the table as CSV.
func (t *Table) CSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Columns, ",")); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(r, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Markdown writes the table as GitHub-flavoured markdown. Every write is
// error-checked (through a sticky-error writer) so a full disk or closed
// pipe surfaces instead of silently truncating a report.
func (t *Table) Markdown(w io.Writer) error {
	ew := &errWriter{w: w}
	fmt.Fprintf(ew, "### %s — %s\n\n", t.Name, t.Title)
	fmt.Fprintf(ew, "| %s |\n", strings.Join(t.Columns, " | "))
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(ew, "| %s |\n", strings.Join(sep, " | "))
	for _, r := range t.Rows {
		fmt.Fprintf(ew, "| %s |\n", strings.Join(r, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(ew, "\n> %s\n", n)
	}
	fmt.Fprintln(ew)
	return ew.err
}

// errWriter carries the first write error through a multi-write render.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, err
}

// Context carries shared configuration, result caches and the worker
// budget. Derived views (scoped, withConfig) share the caches and scheduler
// so the budget and manifest records stay global.
type Context struct {
	// Cfg is the system configuration (DefaultConfig unless overridden).
	Cfg core.Config
	// Blocks is the dynamic block count per trace.
	Blocks int
	// Apps restricts the application list (nil = all 11).
	Apps []string
	// Telemetry is attached to every simulation the experiments launch
	// (zero value = off).
	Telemetry core.Telemetry
	// Progress, when non-nil, receives one status line per completed
	// (experiment, app) cell.
	Progress *telemetry.Progress
	// Workers bounds how many heavy cells run concurrently across ALL
	// experiments sharing this context (0 = GOMAXPROCS, 1 = serial). The
	// same budget is handed to the offline solver.
	Workers int
	// Artifacts, when non-nil, is the content-addressed on-disk cache for
	// generated block traces and solved FLACK keep-plans (-cache-dir). A
	// warm store skips workload generation and every min-cost-flow solve;
	// results are byte-identical with the store cold, warm, or absent.
	Artifacts *artifact.Store

	// Ctx cancels the campaign cooperatively: cells already executing run
	// to completion, queued cells are abandoned, and RunMany reports
	// Ctx.Err() for every experiment that did not finish. nil = never
	// cancelled.
	Ctx context.Context
	// Retries is the number of EXTRA attempts a failed or panicking cell
	// gets before it counts as failed (0 = one attempt, no retry).
	Retries int
	// Degrade selects what a cell failure (after retries) does: false
	// (the zero value, library default) fails the experiment fast; true
	// lets the experiment render with that cell zero-valued and marked
	// missing in the table notes and the manifest's failed-cell log.
	Degrade bool
	// Journal, when non-nil, records every completed cell's typed result
	// so an interrupted campaign can resume without recomputing: on the
	// next run, journaled cells are restored byte-identically instead of
	// re-simulated. See Checkpoint.
	Journal *Checkpoint
	// Fault, when non-nil, is consulted at the start of every cell
	// attempt — the deterministic fault-injection hook the resilience
	// tests (and -faultinject) use to make the Nth cell fail, panic, or
	// stall. nil = no injection.
	Fault *faultinject.Injector
	// Spans, when non-nil, records experiment/cell/singleflight wall-clock
	// spans for the Chrome-trace export (-trace-out). A nil log is inert,
	// so the harness threads it unconditionally.
	Spans *inspect.SpanLog

	// id scopes progress lines and timing records to one experiment.
	id     string
	caches *ctxCaches
	sched  *ctxSched
}

// ctx normalizes the context's cancellation handle (nil = never cancelled).
func (c *Context) ctx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background() //simlint:ignore ctxflow the documented nil-means-never-cancelled normalization seam for Context.Ctx
}

// ctxCaches holds the per-geometry singleflight result caches. The mutex
// only guards map access; computations run with it released, and concurrent
// callers of the same key block on the flight's done channel.
type ctxCaches struct {
	mu     sync.Mutex
	traces map[string]*flight[tracePair]
	preps  map[string]*flight[*trace.PreparedTrace]
	profs  map[string]*flight[*profiles.Profile]
	bases  map[string]*flight[uopcache.Stats]
	times  map[string]*flight[core.TimingResult]
}

// ctxSched is the cross-experiment scheduler state: the shared cell limiter,
// the per-experiment timing records feeding the run manifest, the
// per-experiment failed-cell log, and the per-experiment sweep sequence
// numbers that key the checkpoint journal.
type ctxSched struct {
	mu      sync.Mutex
	cells   *parallel.Limiter
	timings map[string][]telemetry.AppRun
	// failures logs cells that exhausted their retry budget, tagged with
	// (sweep, index) so the log sorts deterministically regardless of
	// completion order.
	failures map[string][]cellFailureRec
	// seqs numbers each experiment's cell sweeps in call order. Sweeps
	// within one experiment run serially (cell bodies may not nest), so
	// the numbering is reproducible at any worker count — which is what
	// lets journal keys written by an interrupted parallel run match a
	// serial resume.
	seqs map[string]int
	// status is the live campaign state the /debug/status dashboard polls.
	status statusCounters
}

// statusCounters is the mutable part of a StatusSnapshot (guarded by
// ctxSched.mu).
type statusCounters struct {
	expTotal, expDone                                 int
	running                                           map[string]bool
	cellsDone, cellsFailed, cellsRetried, cellsRestored int
	attribution                                       *AttributionStatus
}

// AttributionStatus is the attribution roll-up shown on the live dashboard
// while (and after) RunAttribution executes.
type AttributionStatus struct {
	Evictions uint64 `json:"evictions"`
	Justified uint64 `json:"justified"`
	Premature uint64 `json:"premature"`
	Divergent uint64 `json:"divergent"`
}

// StatusSnapshot is the live run-status document served at /debug/status.
type StatusSnapshot struct {
	ExperimentsTotal int      `json:"experiments_total"`
	ExperimentsDone  int      `json:"experiments_done"`
	Running          []string `json:"running,omitempty"`
	CellsDone        int      `json:"cells_done"`
	CellsFailed      int      `json:"cells_failed"`
	CellsRetried     int      `json:"cells_retried"`
	CellsRestored    int      `json:"cells_restored"`
	// WorkersActive and QueueDepth mirror the shared cell limiter.
	WorkersActive int `json:"workers_active"`
	WorkersCap    int `json:"workers_cap"`
	QueueDepth    int `json:"queue_depth"`
	// Attribution appears once RunAttribution has classified evictions.
	Attribution *AttributionStatus `json:"attribution,omitempty"`
}

// StatusSnapshot assembles the current campaign state; safe for concurrent
// use — wire it into telemetry.ServeStatus (or CLI.SetStatus) for the live
// dashboard.
func (c *Context) StatusSnapshot() StatusSnapshot {
	c.sched.mu.Lock()
	st := c.sched.status
	var running []string
	for id := range st.running {
		running = append(running, id)
	}
	var attr *AttributionStatus
	if st.attribution != nil {
		a := *st.attribution
		attr = &a
	}
	lim := c.sched.cells
	c.sched.mu.Unlock()
	sort.Strings(running)
	s := StatusSnapshot{
		ExperimentsTotal: st.expTotal,
		ExperimentsDone:  st.expDone,
		Running:          running,
		CellsDone:        st.cellsDone,
		CellsFailed:      st.cellsFailed,
		CellsRetried:     st.cellsRetried,
		CellsRestored:    st.cellsRestored,
		Attribution:      attr,
	}
	if lim != nil {
		s.WorkersActive = lim.Active()
		s.WorkersCap = lim.Cap()
		s.QueueDepth = lim.Queued()
	}
	return s
}

// statusUpdate mutates the live status under the scheduler lock.
func (c *Context) statusUpdate(fn func(*statusCounters)) {
	c.sched.mu.Lock()
	if c.sched.status.running == nil {
		c.sched.status.running = make(map[string]bool)
	}
	fn(&c.sched.status)
	c.sched.mu.Unlock()
}

// cellFailureRec tags a manifest failure record with its deterministic sort
// key.
type cellFailureRec struct {
	seq, idx int
	f        telemetry.CellFailure
}

// nextSeq returns the experiment's next sweep sequence number.
func (s *ctxSched) nextSeq(id string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seqs[id]++
	return s.seqs[id]
}

// flight is one singleflight computation: the first caller computes and
// closes done; everyone else blocks on done and reads val/err.
type flight[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// once returns the cached value for key, computing it exactly once even
// under concurrent callers — the fix for the duplicate-compute window where
// N parallel cells would each redo trace generation or FLACK profiling.
// Errors are cached too (they are deterministic: unknown app, bad config).
//
// With span tracing on, the computing caller records a "compute" span and
// every caller that actually blocks records a "wait" span — which is how
// singleflight stalls become visible in the Perfetto view.
func once[T any](c *Context, m map[string]*flight[T], key string, compute func() (T, error)) (T, error) {
	cc := c.caches
	cc.mu.Lock()
	if f, ok := m[key]; ok {
		cc.mu.Unlock()
		select {
		case <-f.done: // already complete: a plain cache hit, no span
			return f.val, f.err
		default:
		}
		sp := c.Spans.Begin("singleflight", key).Arg("state", "wait")
		<-f.done
		sp.End()
		return f.val, f.err
	}
	f := &flight[T]{done: make(chan struct{})}
	m[key] = f
	cc.mu.Unlock()
	defer close(f.done)
	sp := c.Spans.Begin("singleflight", key).Arg("state", "compute")
	f.val, f.err = compute()
	sp.End()
	return f.val, f.err
}

func newCaches() *ctxCaches {
	return &ctxCaches{
		traces: make(map[string]*flight[tracePair]),
		preps:  make(map[string]*flight[*trace.PreparedTrace]),
		profs:  make(map[string]*flight[*profiles.Profile]),
		bases:  make(map[string]*flight[uopcache.Stats]),
		times:  make(map[string]*flight[core.TimingResult]),
	}
}

type tracePair struct {
	blocks []trace.Block
	pws    []trace.PW
}

// NewContext builds a context with the paper's default configuration.
func NewContext(blocks int) *Context {
	if blocks <= 0 {
		blocks = 60000
	}
	return &Context{
		Cfg:    core.DefaultConfig(),
		Blocks: blocks,
		caches: newCaches(),
		sched: &ctxSched{
			timings:  make(map[string][]telemetry.AppRun),
			failures: make(map[string][]cellFailureRec),
			seqs:     make(map[string]int),
		},
	}
}

// scoped returns a view of the context whose progress lines and timing
// records are attributed to the experiment id; caches, scheduler and the
// worker budget stay shared.
func (c *Context) scoped(id string) *Context {
	cc := *c
	cc.id = id
	return &cc
}

// withConfig derives a context with a different system configuration: the
// result caches are fresh (they key on this context's geometry) while the
// scheduler — worker budget, limiter, timing records — stays shared, so the
// derived run obeys the same -parallel budget and reports into the same
// manifest.
func (c *Context) withConfig(cfg core.Config) *Context {
	cc := *c
	cc.Cfg = cfg
	cc.caches = newCaches()
	return &cc
}

// limiter lazily builds the shared cell limiter sized to the context's
// worker budget, wiring the scheduler's parallel_* metrics.
func (c *Context) limiter() *parallel.Limiter {
	c.sched.mu.Lock()
	defer c.sched.mu.Unlock()
	if c.sched.cells == nil {
		c.sched.cells = parallel.NewLimiter(c.Workers, c.Telemetry.Metrics)
	}
	return c.sched.cells
}

// Timings returns the per-cell wall-clock records collected while running
// the named experiment (for the run manifest).
func (c *Context) Timings(id string) []telemetry.AppRun {
	c.sched.mu.Lock()
	defer c.sched.mu.Unlock()
	return c.sched.timings[id]
}

// Failures returns the named experiment's failed-cell log in deterministic
// (sweep, index) order — the order the cells would have completed in under
// the serial schedule, regardless of the worker count that actually ran.
func (c *Context) Failures(id string) []telemetry.CellFailure {
	c.sched.mu.Lock()
	recs := append([]cellFailureRec(nil), c.sched.failures[id]...)
	c.sched.mu.Unlock()
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].seq != recs[j].seq {
			return recs[i].seq < recs[j].seq
		}
		return recs[i].idx < recs[j].idx
	})
	out := make([]telemetry.CellFailure, len(recs))
	for i, r := range recs {
		out[i] = r.f
	}
	return out
}

// recordFailure logs a cell that exhausted its retry budget.
func (c *Context) recordFailure(seq, idx int, f telemetry.CellFailure) {
	c.sched.mu.Lock()
	defer c.sched.mu.Unlock()
	c.sched.failures[c.id] = append(c.sched.failures[c.id], cellFailureRec{seq: seq, idx: idx, f: f})
}

// geometry fingerprints everything a cell result depends on besides its
// (experiment, sweep, index, label) coordinates: the full system
// configuration and the trace length. Journal entries carry it so a resumed
// run never replays a checkpoint computed under different geometry.
func (c *Context) geometry() string {
	h := sha256.New()
	b, _ := json.Marshal(c.Cfg)
	h.Write(b)
	fmt.Fprintf(h, "|%d", c.Blocks)
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// recordCell notes one completed (experiment, cell) unit and emits a
// progress line; done is the completion count within the cell sweep.
func (c *Context) recordCell(label string, elapsed time.Duration, done, total int, err error) {
	id := c.id
	run := telemetry.AppRun{App: label, WallSeconds: elapsed.Seconds()}
	if err != nil {
		run.Error = err.Error()
	}
	c.sched.mu.Lock()
	if id != "" {
		c.sched.timings[id] = append(c.sched.timings[id], run)
	}
	c.sched.mu.Unlock()
	if id == "" {
		id = "experiments"
	}
	c.Progress.Step(id, label, done, total, elapsed)
}

// cells runs n labelled heavy units as scheduler cells under the shared
// worker budget, returning results in index order so callers can merge rows
// deterministically. Each cell's wall time lands in the manifest under its
// label; progress lines stay coherent under concurrent completion because
// recordCell serializes them. Cell bodies must not call cells again — the
// budget is held for the body's whole duration, and nesting could deadlock
// at -parallel 1.
//
// Each cell runs through the resilience pipeline (runCell): checkpoint
// restore, fault injection, panic containment, bounded retry, and —
// depending on Context.Degrade — fail-fast or degrade-to-missing.
func cells[T any](c *Context, labels []string, fn func(i int) (T, error)) ([]T, error) {
	seq := c.sched.nextSeq(c.id)
	geo := ""
	if c.Journal != nil {
		geo = c.geometry()
	}
	var mu sync.Mutex
	done := 0
	return parallel.MapLimited(c.ctx(), c.limiter(), len(labels), func(i int) (T, error) {
		//simlint:ignore determinism wall-clock progress reporting only; never feeds simulation state
		start := time.Now()
		v, err, report := runCell(c, seq, i, labels[i], geo, fn)
		mu.Lock()
		done++
		n := done
		mu.Unlock()
		c.recordCell(labels[i], time.Since(start), n, len(labels), report)
		return v, err
	})
}

// runCell executes one cell through the resilience pipeline. It returns the
// cell value, the error to propagate to the sweep (nil when the failure was
// degraded away), and the error to report in the timing record (the real
// failure even under degradation).
func runCell[T any](c *Context, seq, i int, label, geo string, fn func(i int) (T, error)) (v T, runErr, report error) {
	site := c.id + "/" + label
	sp := c.Spans.Begin("cell", site)
	var key string
	if c.Journal != nil {
		key = fmt.Sprintf("%s|%d|%d|%s|%s", c.id, seq, i, label, geo)
		if raw, ok := c.Journal.Lookup(key); ok {
			if err := json.Unmarshal(raw, &v); err == nil {
				c.statusUpdate(func(s *statusCounters) { s.cellsDone++; s.cellsRestored++ })
				sp.Arg("restored", "true").End()
				return v, nil, nil
			}
			// A corrupt or shape-mismatched entry is not fatal — the
			// cell just recomputes (and overwrites the entry).
			var zero T
			v = zero
		}
	}
	attempts := 1 + c.Retries
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	var lastStack string
	tried := 0
	for a := 0; a < attempts; a++ {
		if err := c.ctx().Err(); err != nil {
			sp.Arg("cancelled", "true").End()
			return v, err, err
		}
		tried++
		if tried > 1 {
			c.statusUpdate(func(s *statusCounters) { s.cellsRetried++ })
		}
		var stack string
		v, lastErr, stack = attemptCell(c, site, i, fn)
		if stack != "" {
			lastStack = stack
		}
		if err := c.ctx().Err(); err != nil {
			// The campaign was cancelled while this cell ran; the
			// offline solve inside it may have been abandoned, so the
			// result could be incomplete. Discard it, never journal
			// it, and surface the cancellation.
			var zero T
			sp.Arg("cancelled", "true").Arg("attempts", itoa(tried)).End()
			return zero, err, err
		}
		if lastErr == nil {
			if c.Journal != nil {
				if raw, err := json.Marshal(v); err == nil {
					c.Journal.Append(key, raw)
				}
			}
			c.statusUpdate(func(s *statusCounters) { s.cellsDone++ })
			sp.Arg("attempts", itoa(tried)).End()
			return v, nil, nil
		}
	}
	fail := telemetry.CellFailure{Cell: site, Attempts: tried, Error: lastErr.Error(), Stack: lastStack}
	c.recordFailure(seq, i, fail)
	c.statusUpdate(func(s *statusCounters) { s.cellsFailed++ })
	sp.Arg("failed", "true").Arg("attempts", itoa(tried)).End()
	if c.Degrade {
		var zero T
		return zero, nil, lastErr
	}
	return v, lastErr, lastErr
}

// itoa is a strconv.Itoa stand-in for the small counters in span args.
func itoa(n int) string { return fmt.Sprintf("%d", n) }

// attemptCell runs one attempt of a cell body with the fault-injection hook
// applied and any panic converted into an error carrying the goroutine
// stack, so a crashing cell fails like any other cell instead of tearing
// down the whole campaign.
func attemptCell[T any](c *Context, site string, i int, fn func(i int) (T, error)) (v T, err error, stack string) {
	defer func() {
		if p := recover(); p != nil {
			var zero T
			v = zero
			err = fmt.Errorf("cell panic: %v", p)
			stack = string(debug.Stack())
		}
	}()
	if ferr := c.Fault.Hit(c.ctx(), site); ferr != nil {
		return v, ferr, ""
	}
	v, err = fn(i)
	return v, err, ""
}

// appRows runs fn once per application as independent scheduler cells,
// collecting each app's typed row group; callers merge the groups in
// AppList order so tables are byte-identical at any worker count. The first
// error (lowest app index among cells that ran) cancels unstarted cells.
func appRows[T any](c *Context, fn func(app string) (T, error)) ([]T, error) {
	apps := c.AppList()
	return cells(c, apps, func(i int) (T, error) { return fn(apps[i]) })
}

// plans adapts the context's artifact store into the offline layer's
// keep-plan cache (nil when no store is attached).
func (c *Context) plans() offline.PlanCache {
	return offline.NewPlanStore(c.Artifacts)
}

// runOpts returns BehaviorOptions carrying the context's cancellation
// handle, telemetry, solver worker budget and keep-plan cache.
func (c *Context) runOpts() core.BehaviorOptions {
	return core.BehaviorOptions{Ctx: c.Ctx, Telemetry: c.Telemetry, Workers: c.Workers, Plans: c.plans()}
}

// runOptsFor is runOpts with the app's shared prepared trace attached; the
// attachment is skipped (never fails the run) when preparation errored.
func (c *Context) runOptsFor(app string, input int) core.BehaviorOptions {
	opts := c.runOpts()
	if pt, err := c.Prepared(app, input); err == nil {
		opts.Prepared = pt
	}
	return opts
}

// runOptsRecord is runOpts with per-lookup outcome recording enabled.
func (c *Context) runOptsRecord() core.BehaviorOptions {
	opts := c.runOpts()
	opts.RecordPerLookup = true
	return opts
}

// runOptsRecordFor is runOptsFor with per-lookup outcome recording enabled.
func (c *Context) runOptsRecordFor(app string, input int) core.BehaviorOptions {
	opts := c.runOptsFor(app, input)
	opts.RecordPerLookup = true
	return opts
}

// offlineOpts attaches the context's cancellation handle, telemetry, worker
// budget and keep-plan cache to offline replay options.
func (c *Context) offlineOpts(o offline.Options) offline.Options {
	o.Ctx = c.Ctx
	o.Metrics = c.Telemetry.Metrics
	o.Events = c.Telemetry.Events
	o.Workers = c.Workers
	if o.Plans == nil {
		o.Plans = c.plans()
	}
	return o
}

// offlineOptsFor is offlineOpts with the app's shared prepared trace
// attached (skipped when preparation errored).
func (c *Context) offlineOptsFor(app string, input int, o offline.Options) offline.Options {
	o = c.offlineOpts(o)
	if pt, err := c.Prepared(app, input); err == nil {
		o.Prepared = pt
	}
	return o
}

// AppList returns the applications under study.
func (c *Context) AppList() []string {
	if len(c.Apps) > 0 {
		return c.Apps
	}
	return workload.Names()
}

// traceFor and collectProfile are indirection seams so the singleflight
// tests can count how often the underlying computation actually runs.
var (
	traceFor       = core.TraceForCached
	collectProfile = profiles.CollectWith
)

// Trace returns (cached) the block trace and PW sequence for an app/input.
// Concurrent callers of the same key share one generation. With an artifact
// store attached, the block trace is read from (or written to) the on-disk
// cache instead of being regenerated.
func (c *Context) Trace(app string, input int) ([]trace.Block, []trace.PW, error) {
	key := fmt.Sprintf("%s/%d/%d", app, input, c.Blocks)
	tp, err := once(c, c.caches.traces, key, func() (tracePair, error) {
		blocks, pws, err := traceFor(app, c.Blocks, input, c.Artifacts)
		return tracePair{blocks: blocks, pws: pws}, err
	})
	return tp.blocks, tp.pws, err
}

// Prepared returns (cached) the shared columnar prepared trace for an
// app/input under the context's micro-op cache geometry: precomputed set
// indices, footprints and the occurrence index every replay of the same
// trace would otherwise rebuild privately. Concurrent callers share one
// build.
func (c *Context) Prepared(app string, input int) (*trace.PreparedTrace, error) {
	key := fmt.Sprintf("%s/%d/%d/%x", app, input, c.Blocks, c.Cfg.UopCache.Sig())
	return once(c, c.caches.preps, key, func() (*trace.PreparedTrace, error) {
		_, pws, err := c.Trace(app, input)
		if err != nil {
			return nil, err
		}
		return uopcache.Prepare(c.Cfg.UopCache, pws), nil
	})
}

// Profile returns (cached) the offline profile for an app/input/source
// under the context's micro-op cache geometry. Concurrent callers of the
// same key invoke the collection exactly once.
func (c *Context) Profile(app string, input int, src profiles.Source) (*profiles.Profile, error) {
	key := fmt.Sprintf("%s/%d/%v/%d/%d/%d", app, input, src, c.Blocks, c.Cfg.UopCache.Entries, c.Cfg.UopCache.Ways)
	return once(c, c.caches.profs, key, func() (*profiles.Profile, error) {
		_, pws, err := c.Trace(app, input)
		if err != nil {
			return nil, err
		}
		copts := profiles.CollectOptions{
			Metrics: c.Telemetry.Metrics,
			Events:  c.Telemetry.Events,
			Plans:   c.plans(),
			Workers: c.Workers,
		}
		if pt, perr := c.Prepared(app, input); perr == nil {
			copts.Prepared = pt
		}
		return collectProfile(pws, c.Cfg.UopCache, src, copts), nil
	})
}

// Runner is an experiment entry point.
type Runner func(ctx *Context) (*Table, error)

// RunResult is one experiment's outcome from RunMany.
type RunResult struct {
	ID          string
	Table       *Table
	Err         error
	WallSeconds float64
	// Apps holds the per-cell wall-clock records (manifest material).
	Apps []telemetry.AppRun
	// Failed lists the cells that exhausted their retry budget, in
	// deterministic (sweep, index) order. Under Context.Degrade the
	// experiment still produced a Table with these cells marked missing;
	// in strict mode Err is also set.
	Failed []telemetry.CellFailure
}

// RunMany executes the named experiments under the context's worker budget.
// With Workers == 1 it reproduces the exact serial schedule; otherwise every
// experiment orchestrates concurrently while heavy cells share the budget.
// Results come back in input order, and emit (optional) is called for each
// result in input order as soon as it and all its predecessors completed —
// so a driver can stream tables without reordering output.
//
// Cancelling c.Ctx drains the campaign gracefully: experiments already
// running finish their in-flight cells and return, queued experiments are
// abandoned, and every unfinished id comes back (and is emitted) with
// Err = c.Ctx.Err() so the driver can mark the run interrupted.
func RunMany(c *Context, ids []string, emit func(RunResult)) []RunResult {
	out := make([]RunResult, len(ids))
	c.statusUpdate(func(s *statusCounters) { s.expTotal += len(ids) })
	workers := 1
	if parallel.Workers(c.Workers) > 1 {
		workers = len(ids)
	}
	var mu sync.Mutex
	finished := make([]bool, len(ids))
	next := 0
	flush := func() { // mu held
		for next < len(ids) && finished[next] {
			if emit != nil {
				emit(out[next])
			}
			next++
		}
	}
	parallel.Map(c.Ctx, workers, len(ids), func(i int) (struct{}, error) {
		r := c.runOne(ids[i])
		mu.Lock()
		out[i], finished[i] = r, true
		flush()
		mu.Unlock()
		return struct{}{}, nil
	})
	// A cancellation abandons queued experiments; fill their slots so the
	// manifest shows every requested id with why it did not run. Cells that
	// DID run (and fail) before the interrupt still belong in the manifest,
	// so the fill carries the per-experiment timings and failures too.
	mu.Lock()
	for i := range out {
		if !finished[i] {
			err := c.ctx().Err()
			if err == nil {
				err = context.Canceled
			}
			out[i] = RunResult{ID: ids[i], Err: err, Apps: c.Timings(ids[i]), Failed: c.Failures(ids[i])}
			finished[i] = true
		}
	}
	flush()
	mu.Unlock()
	return out
}

// runOne executes a single experiment under a scoped view of the context.
func (c *Context) runOne(id string) RunResult {
	r := RunResult{ID: id}
	run, ok := Lookup(id)
	if !ok {
		r.Err = fmt.Errorf("unknown experiment %q", id)
		return r
	}
	c.statusUpdate(func(s *statusCounters) { s.running[id] = true })
	sp := c.Spans.Begin("experiment", id)
	//simlint:ignore determinism wall-clock bookkeeping for the manifest only
	start := time.Now()
	r.Table, r.Err = runContained(run, c.scoped(id))
	r.WallSeconds = time.Since(start).Seconds()
	sp.End()
	c.statusUpdate(func(s *statusCounters) { delete(s.running, id); s.expDone++ })
	r.Apps = c.Timings(id)
	r.Failed = c.Failures(id)
	if r.Table != nil {
		for _, f := range r.Failed {
			r.Table.Notes = append(r.Table.Notes,
				fmt.Sprintf("MISSING cell %s: failed after %d attempt(s): %s", f.Cell, f.Attempts, f.Error))
		}
	}
	return r
}

// runContained invokes an experiment body with panics converted to errors,
// so one crashing experiment (e.g. row-merge code tripping over a degraded
// cell's zero value) fails its own RunResult instead of tearing down the
// whole campaign.
func runContained(run Runner, c *Context) (t *Table, err error) {
	defer func() {
		if p := recover(); p != nil {
			t = nil
			err = fmt.Errorf("experiment panic: %v\n%s", p, debug.Stack())
		}
	}()
	return run(c)
}

// padded extends a cell's row group with zeros to length n: a degraded
// (failed, zero-valued) cell renders as zero entries in its table row — the
// MISSING note marks it — instead of panicking or skewing the column count.
func padded(row []float64, n int) []float64 {
	if len(row) >= n {
		return row
	}
	out := make([]float64, n)
	copy(out, row)
	return out
}

// Registry maps experiment ids (tab1, fig8, ...) to runners, in paper
// order.
func Registry() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"tab1", Table1},
		{"tab2", Table2},
		{"fig2", Fig2PerfectStructures},
		{"sec3b", Sec3BMissClasses},
		{"sec3e", Sec3EReuseDistances},
		{"fig5", Fig5ExistingPolicies},
		{"fig8", Fig8FURBYSMissReduction},
		{"fig9", Fig9PPW},
		{"fig10", Fig10FLACKAblation},
		{"fig11", Fig11IPC},
		{"fig12", Fig12ISOPerformance},
		{"fig13", Fig13EnergyBreakdownClang},
		{"fig14", Fig14EnergyReductionBreakdown},
		{"fig15", Fig15ProfileSources},
		{"fig16", Fig16SizeAssocSweep},
		{"fig17", Fig17Zen4PPW},
		{"fig18", Fig18CrossValidation},
		{"fig19", Fig19WeightBits},
		{"fig20", Fig20DetectorDepth},
		{"fig21", Fig21Bypass},
		{"fig22", Fig22Hotness},
		{"coverage", CoverageStats},
		{"sens-inclusion", SensInclusion},
		{"sens-delay", SensInsertDelay},
		{"sens-segment", SensSegmentLimit},
		{"sens-fragmentation", SensFragmentation},
		{"sens-objective", SensObjective},
	}
}

// Lookup finds a runner by id.
func Lookup(id string) (Runner, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Run, true
		}
	}
	return nil, false
}

// IDs lists experiment ids in order.
func IDs() []string {
	var out []string
	for _, e := range Registry() {
		out = append(out, e.ID)
	}
	return out
}

// pct formats a fraction as a percentage string.
func pct(f float64) string { return fmt.Sprintf("%.2f%%", 100*f) }

// geomean-free mean helper.
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
