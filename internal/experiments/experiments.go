// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment is a named function producing a Table; the
// registry drives cmd/experiments and the root benchmark harness. A Context
// caches generated traces and collected profiles so multi-figure runs do not
// repeat the expensive FLACK profiling step.
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"

	"uopsim/internal/core"
	"uopsim/internal/profiles"
	"uopsim/internal/trace"
	"uopsim/internal/workload"
)

// Table is a rendered experiment result.
type Table struct {
	Name    string
	Title   string
	Columns []string
	Rows    [][]string
	// Notes records paper-vs-measured commentary.
	Notes []string
}

// AddRow appends a row (stringifying values).
func (t *Table) AddRow(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case string:
			row[i] = x
		case float64:
			row[i] = fmt.Sprintf("%.4f", x)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// CSV writes the table as CSV.
func (t *Table) CSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Columns, ",")); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(r, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Markdown writes the table as GitHub-flavoured markdown.
func (t *Table) Markdown(w io.Writer) error {
	fmt.Fprintf(w, "### %s — %s\n\n", t.Name, t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | "))
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | "))
	for _, r := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(r, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n> %s\n", n)
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Context carries shared configuration and caches.
type Context struct {
	// Cfg is the system configuration (DefaultConfig unless overridden).
	Cfg core.Config
	// Blocks is the dynamic block count per trace.
	Blocks int
	// Apps restricts the application list (nil = all 11).
	Apps []string

	mu     sync.Mutex
	traces map[string]tracePair
	profs  map[string]*profiles.Profile
}

type tracePair struct {
	blocks []trace.Block
	pws    []trace.PW
}

// NewContext builds a context with the paper's default configuration.
func NewContext(blocks int) *Context {
	if blocks <= 0 {
		blocks = 60000
	}
	return &Context{
		Cfg:    core.DefaultConfig(),
		Blocks: blocks,
		traces: make(map[string]tracePair),
		profs:  make(map[string]*profiles.Profile),
	}
}

// AppList returns the applications under study.
func (c *Context) AppList() []string {
	if len(c.Apps) > 0 {
		return c.Apps
	}
	return workload.Names()
}

// Trace returns (cached) the block trace and PW sequence for an app/input.
func (c *Context) Trace(app string, input int) ([]trace.Block, []trace.PW, error) {
	key := fmt.Sprintf("%s/%d/%d", app, input, c.Blocks)
	c.mu.Lock()
	tp, ok := c.traces[key]
	c.mu.Unlock()
	if ok {
		return tp.blocks, tp.pws, nil
	}
	blocks, pws, err := core.TraceFor(app, c.Blocks, input)
	if err != nil {
		return nil, nil, err
	}
	c.mu.Lock()
	c.traces[key] = tracePair{blocks: blocks, pws: pws}
	c.mu.Unlock()
	return blocks, pws, nil
}

// Profile returns (cached) the offline profile for an app/input/source
// under the context's micro-op cache geometry.
func (c *Context) Profile(app string, input int, src profiles.Source) (*profiles.Profile, error) {
	key := fmt.Sprintf("%s/%d/%v/%d/%d/%d", app, input, src, c.Blocks, c.Cfg.UopCache.Entries, c.Cfg.UopCache.Ways)
	c.mu.Lock()
	p, ok := c.profs[key]
	c.mu.Unlock()
	if ok {
		return p, nil
	}
	_, pws, err := c.Trace(app, input)
	if err != nil {
		return nil, err
	}
	p = profiles.Collect(pws, c.Cfg.UopCache, src)
	c.mu.Lock()
	c.profs[key] = p
	c.mu.Unlock()
	return p, nil
}

// Runner is an experiment entry point.
type Runner func(ctx *Context) (*Table, error)

// Registry maps experiment ids (tab1, fig8, ...) to runners, in paper
// order.
func Registry() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"tab1", Table1},
		{"tab2", Table2},
		{"fig2", Fig2PerfectStructures},
		{"sec3b", Sec3BMissClasses},
		{"sec3e", Sec3EReuseDistances},
		{"fig5", Fig5ExistingPolicies},
		{"fig8", Fig8FURBYSMissReduction},
		{"fig9", Fig9PPW},
		{"fig10", Fig10FLACKAblation},
		{"fig11", Fig11IPC},
		{"fig12", Fig12ISOPerformance},
		{"fig13", Fig13EnergyBreakdownClang},
		{"fig14", Fig14EnergyReductionBreakdown},
		{"fig15", Fig15ProfileSources},
		{"fig16", Fig16SizeAssocSweep},
		{"fig17", Fig17Zen4PPW},
		{"fig18", Fig18CrossValidation},
		{"fig19", Fig19WeightBits},
		{"fig20", Fig20DetectorDepth},
		{"fig21", Fig21Bypass},
		{"fig22", Fig22Hotness},
		{"coverage", CoverageStats},
		{"sens-inclusion", SensInclusion},
		{"sens-delay", SensInsertDelay},
		{"sens-segment", SensSegmentLimit},
		{"sens-fragmentation", SensFragmentation},
		{"sens-objective", SensObjective},
	}
}

// Lookup finds a runner by id.
func Lookup(id string) (Runner, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Run, true
		}
	}
	return nil, false
}

// IDs lists experiment ids in order.
func IDs() []string {
	var out []string
	for _, e := range Registry() {
		out = append(out, e.ID)
	}
	return out
}

// forEachApp runs fn over the context's applications with bounded
// parallelism, preserving nothing about order — callers collect into
// app-keyed maps and emit rows in AppList order. The first error wins.
func (c *Context) forEachApp(fn func(app string) error) error {
	apps := c.AppList()
	workers := runtime.NumCPU()
	if workers > len(apps) {
		workers = len(apps)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	var errOnce sync.Once
	var firstErr error
	ch := make(chan string)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for app := range ch {
				if err := fn(app); err != nil {
					errOnce.Do(func() { firstErr = err })
				}
			}
		}()
	}
	for _, app := range apps {
		ch <- app
	}
	close(ch)
	wg.Wait()
	return firstErr
}

// pct formats a fraction as a percentage string.
func pct(f float64) string { return fmt.Sprintf("%.2f%%", 100*f) }

// geomean-free mean helper.
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
