// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment is a named function producing a Table; the
// registry drives cmd/experiments and the root benchmark harness. A Context
// caches generated traces and collected profiles so multi-figure runs do not
// repeat the expensive FLACK profiling step.
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"time"

	"uopsim/internal/core"
	"uopsim/internal/offline"
	"uopsim/internal/profiles"
	"uopsim/internal/telemetry"
	"uopsim/internal/trace"
	"uopsim/internal/workload"
)

// Table is a rendered experiment result.
type Table struct {
	Name    string
	Title   string
	Columns []string
	Rows    [][]string
	// Notes records paper-vs-measured commentary.
	Notes []string
}

// AddRow appends a row (stringifying values).
func (t *Table) AddRow(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case string:
			row[i] = x
		case float64:
			row[i] = fmt.Sprintf("%.4f", x)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// CSV writes the table as CSV.
func (t *Table) CSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Columns, ",")); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(r, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Markdown writes the table as GitHub-flavoured markdown. Every write is
// error-checked (through a sticky-error writer) so a full disk or closed
// pipe surfaces instead of silently truncating a report.
func (t *Table) Markdown(w io.Writer) error {
	ew := &errWriter{w: w}
	fmt.Fprintf(ew, "### %s — %s\n\n", t.Name, t.Title)
	fmt.Fprintf(ew, "| %s |\n", strings.Join(t.Columns, " | "))
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(ew, "| %s |\n", strings.Join(sep, " | "))
	for _, r := range t.Rows {
		fmt.Fprintf(ew, "| %s |\n", strings.Join(r, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(ew, "\n> %s\n", n)
	}
	fmt.Fprintln(ew)
	return ew.err
}

// errWriter carries the first write error through a multi-write render.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, err
}

// Context carries shared configuration and caches.
type Context struct {
	// Cfg is the system configuration (DefaultConfig unless overridden).
	Cfg core.Config
	// Blocks is the dynamic block count per trace.
	Blocks int
	// Apps restricts the application list (nil = all 11).
	Apps []string
	// Telemetry is attached to every simulation the experiments launch
	// (zero value = off).
	Telemetry core.Telemetry
	// Progress, when non-nil, receives one status line per completed
	// (experiment, app) pair.
	Progress *telemetry.Progress

	mu     sync.Mutex
	traces map[string]tracePair
	profs  map[string]*profiles.Profile

	curID   string
	timings map[string][]telemetry.AppRun
}

type tracePair struct {
	blocks []trace.Block
	pws    []trace.PW
}

// NewContext builds a context with the paper's default configuration.
func NewContext(blocks int) *Context {
	if blocks <= 0 {
		blocks = 60000
	}
	return &Context{
		Cfg:     core.DefaultConfig(),
		Blocks:  blocks,
		traces:  make(map[string]tracePair),
		profs:   make(map[string]*profiles.Profile),
		timings: make(map[string][]telemetry.AppRun),
	}
}

// Begin marks the start of the named experiment: subsequent per-app progress
// lines and wall-clock records are scoped under id. The driver calls it
// before invoking each runner.
func (c *Context) Begin(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.curID = id
}

// Timings returns the per-app wall-clock records collected while running
// the named experiment (for the run manifest).
func (c *Context) Timings(id string) []telemetry.AppRun {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.timings[id]
}

// recordApp notes one completed (experiment, app) unit and emits a progress
// line; done is the caller's completion count within its own sweep.
func (c *Context) recordApp(app string, elapsed time.Duration, done, total int, err error) {
	c.mu.Lock()
	id := c.curID
	run := telemetry.AppRun{App: app, WallSeconds: elapsed.Seconds()}
	if err != nil {
		run.Error = err.Error()
	}
	if id != "" {
		c.timings[id] = append(c.timings[id], run)
	}
	c.mu.Unlock()
	if id == "" {
		id = "experiments"
	}
	c.Progress.Step(id, app, done, total, elapsed)
}

// runOpts returns BehaviorOptions carrying the context's telemetry.
func (c *Context) runOpts() core.BehaviorOptions {
	return core.BehaviorOptions{Telemetry: c.Telemetry}
}

// runOptsRecord is runOpts with per-lookup outcome recording enabled.
func (c *Context) runOptsRecord() core.BehaviorOptions {
	opts := c.runOpts()
	opts.RecordPerLookup = true
	return opts
}

// offlineOpts attaches the context's telemetry to offline replay options.
func (c *Context) offlineOpts(o offline.Options) offline.Options {
	o.Metrics = c.Telemetry.Metrics
	o.Events = c.Telemetry.Events
	return o
}

// AppList returns the applications under study.
func (c *Context) AppList() []string {
	if len(c.Apps) > 0 {
		return c.Apps
	}
	return workload.Names()
}

// Trace returns (cached) the block trace and PW sequence for an app/input.
func (c *Context) Trace(app string, input int) ([]trace.Block, []trace.PW, error) {
	key := fmt.Sprintf("%s/%d/%d", app, input, c.Blocks)
	c.mu.Lock()
	tp, ok := c.traces[key]
	c.mu.Unlock()
	if ok {
		return tp.blocks, tp.pws, nil
	}
	blocks, pws, err := core.TraceFor(app, c.Blocks, input)
	if err != nil {
		return nil, nil, err
	}
	c.mu.Lock()
	c.traces[key] = tracePair{blocks: blocks, pws: pws}
	c.mu.Unlock()
	return blocks, pws, nil
}

// Profile returns (cached) the offline profile for an app/input/source
// under the context's micro-op cache geometry.
func (c *Context) Profile(app string, input int, src profiles.Source) (*profiles.Profile, error) {
	key := fmt.Sprintf("%s/%d/%v/%d/%d/%d", app, input, src, c.Blocks, c.Cfg.UopCache.Entries, c.Cfg.UopCache.Ways)
	c.mu.Lock()
	p, ok := c.profs[key]
	c.mu.Unlock()
	if ok {
		return p, nil
	}
	_, pws, err := c.Trace(app, input)
	if err != nil {
		return nil, err
	}
	p = profiles.CollectObserved(pws, c.Cfg.UopCache, src, c.Telemetry.Metrics, c.Telemetry.Events)
	c.mu.Lock()
	c.profs[key] = p
	c.mu.Unlock()
	return p, nil
}

// Runner is an experiment entry point.
type Runner func(ctx *Context) (*Table, error)

// Registry maps experiment ids (tab1, fig8, ...) to runners, in paper
// order.
func Registry() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"tab1", Table1},
		{"tab2", Table2},
		{"fig2", Fig2PerfectStructures},
		{"sec3b", Sec3BMissClasses},
		{"sec3e", Sec3EReuseDistances},
		{"fig5", Fig5ExistingPolicies},
		{"fig8", Fig8FURBYSMissReduction},
		{"fig9", Fig9PPW},
		{"fig10", Fig10FLACKAblation},
		{"fig11", Fig11IPC},
		{"fig12", Fig12ISOPerformance},
		{"fig13", Fig13EnergyBreakdownClang},
		{"fig14", Fig14EnergyReductionBreakdown},
		{"fig15", Fig15ProfileSources},
		{"fig16", Fig16SizeAssocSweep},
		{"fig17", Fig17Zen4PPW},
		{"fig18", Fig18CrossValidation},
		{"fig19", Fig19WeightBits},
		{"fig20", Fig20DetectorDepth},
		{"fig21", Fig21Bypass},
		{"fig22", Fig22Hotness},
		{"coverage", CoverageStats},
		{"sens-inclusion", SensInclusion},
		{"sens-delay", SensInsertDelay},
		{"sens-segment", SensSegmentLimit},
		{"sens-fragmentation", SensFragmentation},
		{"sens-objective", SensObjective},
	}
}

// Lookup finds a runner by id.
func Lookup(id string) (Runner, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Run, true
		}
	}
	return nil, false
}

// IDs lists experiment ids in order.
func IDs() []string {
	var out []string
	for _, e := range Registry() {
		out = append(out, e.ID)
	}
	return out
}

// forEachApp runs fn over the context's applications with bounded
// parallelism, preserving nothing about order — callers collect into
// app-keyed maps and emit rows in AppList order. The first error wins.
func (c *Context) forEachApp(fn func(app string) error) error {
	apps := c.AppList()
	workers := runtime.NumCPU()
	if workers > len(apps) {
		workers = len(apps)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	var errOnce sync.Once
	var firstErr error
	var done int32
	var doneMu sync.Mutex
	ch := make(chan string)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for app := range ch {
				//simlint:ignore determinism wall-clock progress reporting only; never feeds simulation state
				start := time.Now()
				err := fn(app)
				doneMu.Lock()
				done++
				n := int(done)
				doneMu.Unlock()
				c.recordApp(app, time.Since(start), n, len(apps), err)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
				}
			}
		}()
	}
	for _, app := range apps {
		ch <- app
	}
	close(ch)
	wg.Wait()
	return firstErr
}

// eachApp is forEachApp's serial sibling for figures whose per-app bodies
// must run in AppList order (shared accumulators, ordered table rows). It
// records the same per-app wall time and progress; the first error aborts.
func (c *Context) eachApp(fn func(app string) error) error {
	apps := c.AppList()
	for i, app := range apps {
		//simlint:ignore determinism wall-clock progress reporting only; never feeds simulation state
		start := time.Now()
		err := fn(app)
		c.recordApp(app, time.Since(start), i+1, len(apps), err)
		if err != nil {
			return err
		}
	}
	return nil
}

// pct formats a fraction as a percentage string.
func pct(f float64) string { return fmt.Sprintf("%.2f%%", 100*f) }

// geomean-free mean helper.
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
