package experiments

import "testing"

func mkTable(name string, cols []string, rows ...[]string) *Table {
	return &Table{Name: name, Columns: cols, Rows: rows}
}

func TestCheckFig8PassAndFail(t *testing.T) {
	cols := []string{"application", "srrip", "ship++", "mockingjay", "ghrp", "thermometer", "furbys", "flack"}
	good := mkTable("fig8", cols,
		[]string{"kafka", "5%", "6%", "4%", "7%", "10%", "14%", "30%"},
		[]string{"MEAN", "5.00%", "6.00%", "4.00%", "7.00%", "10.00%", "14.00%", "30.00%"},
	)
	res := Check(good)
	if !res.OK() {
		t.Errorf("good fig8 failed: %v", res.Failed)
	}
	if len(res.Passed) != 7 {
		t.Errorf("passed = %d claims", len(res.Passed))
	}
	bad := mkTable("fig8", cols,
		[]string{"MEAN", "5.00%", "6.00%", "4.00%", "20.00%", "10.00%", "14.00%", "30.00%"},
	)
	if Check(bad).OK() {
		t.Error("fig8 with GHRP beating FURBYS should fail")
	}
}

func TestCheckFig10(t *testing.T) {
	cols := []string{"application", "belady", "foo", "foo+A", "foo+A+VC", "flack"}
	good := mkTable("fig10", cols,
		[]string{"MEAN", "25.00%", "10.00%", "20.00%", "26.00%", "30.00%"},
	)
	if res := Check(good); !res.OK() {
		t.Errorf("good fig10 failed: %v", res.Failed)
	}
	bad := mkTable("fig10", cols,
		[]string{"MEAN", "35.00%", "10.00%", "20.00%", "26.00%", "30.00%"},
	)
	if Check(bad).OK() {
		t.Error("fig10 with Belady beating FLACK should fail")
	}
}

func TestCheckFig12(t *testing.T) {
	cols := []string{"configuration", "mean uop miss rate", "mean IPC", "mean miss reduction vs LRU@512"}
	good := mkTable("fig12", cols,
		[]string{"lru@512", "0.1500", "1.2", "0.00%"},
		[]string{"lru@768", "0.1100", "1.25", "20.00%"},
		[]string{"furbys@512", "0.1300", "1.22", "13.00%"},
	)
	if res := Check(good); !res.OK() {
		t.Errorf("good fig12 failed: %v", res.Failed)
	}
	bad := mkTable("fig12", cols,
		[]string{"lru@512", "0.1200", "1.2", "0.00%"},
		[]string{"furbys@512", "0.1300", "1.22", "-8.00%"},
	)
	if Check(bad).OK() {
		t.Error("fig12 with FURBYS worse than LRU should fail")
	}
}

func TestCheckSec3B(t *testing.T) {
	cols := []string{"application", "policy", "cold", "capacity", "conflict", "total misses"}
	good := mkTable("sec3b", cols,
		[]string{"MEAN", "lru", "1.00%", "85.00%", "14.00%", ""},
	)
	if res := Check(good); !res.OK() {
		t.Errorf("good sec3b failed: %v", res.Failed)
	}
	bad := mkTable("sec3b", cols,
		[]string{"MEAN", "lru", "60.00%", "25.00%", "15.00%", ""},
	)
	if Check(bad).OK() {
		t.Error("sec3b with cold misses dominating should fail")
	}
}

func TestCheckUnknownExperimentIsEmpty(t *testing.T) {
	res := Check(mkTable("tab1", []string{"parameter", "value"}))
	if len(res.Passed)+len(res.Failed) != 0 {
		t.Error("tab1 has no registered claims")
	}
	if !res.OK() {
		t.Error("empty check should be OK")
	}
}

func TestCheckMissingColumnsFail(t *testing.T) {
	res := Check(mkTable("fig8", []string{"application", "x"}, []string{"MEAN", "1%"}))
	if res.OK() {
		t.Error("fig8 without its columns should fail the checks")
	}
}

// TestCheckAgainstLiveTables runs the real experiments at small scale and
// verifies the paper's claims hold end-to-end — the reproduction's core
// integration test.
func TestCheckAgainstLiveTables(t *testing.T) {
	if testing.Short() {
		t.Skip("live shape checks are expensive")
	}
	ctx := NewContext(12000)
	ctx.Apps = []string{"kafka", "wordpress", "mysql"}
	for _, id := range []string{"fig8", "fig10", "sec3e", "fig21", "coverage"} {
		run, _ := Lookup(id)
		tbl, err := run(ctx)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		res := Check(tbl)
		for _, f := range res.Failed {
			t.Errorf("%s: claim failed: %s", id, f)
		}
	}
}
