package experiments

import (
	"fmt"
	"io"
	"strings"
)

// SummaryLine is one paper-vs-measured comparison extracted from a
// generated table.
type SummaryLine struct {
	Experiment string
	Metric     string
	Paper      string
	Measured   string
}

// summarize extracts the headline comparison(s) for an experiment.
func summarize(t *Table) []SummaryLine {
	m := func(col string) string {
		if v, ok := meanOf(t, col); ok {
			return fmt.Sprintf("%.2f%%", v)
		}
		return "n/a"
	}
	switch t.Name {
	case "fig2":
		return []SummaryLine{
			{t.Name, "perfect micro-op cache PPW gain (mean)", "7.41% (largest of all structures)", m("perfect uop cache")},
		}
	case "sec3b":
		for _, r := range t.Rows {
			if len(r) >= 5 && strings.EqualFold(r[0], "MEAN") && r[1] == "lru" {
				return []SummaryLine{
					{t.Name, "LRU misses: cold / capacity / conflict", "0.89% / 88.31% / 10.8%",
						fmt.Sprintf("%s / %s / %s", r[2], r[3], r[4])},
				}
			}
		}
		return nil
	case "sec3e":
		r := meanRow(t)
		if r == nil || len(r) < 4 {
			return nil
		}
		return []SummaryLine{
			{t.Name, "frac. reuse distance > 30: PW / icache / BTB", ">20% / ~10% / ~2%",
				fmt.Sprintf("%s / %s / %s", r[1], r[2], r[3])},
		}
	case "fig5":
		return []SummaryLine{
			{t.Name, "best existing online policy (mean reduction)", "GHRP 7.81%",
				fmt.Sprintf("ghrp %s, thermometer %s", m("ghrp"), m("thermometer"))},
			{t.Name, "FLACK offline bound (mean reduction)", "30.21%", m("flack")},
		}
	case "fig8":
		return []SummaryLine{
			{t.Name, "FURBYS miss reduction (mean)", "14.34%", m("furbys")},
			{t.Name, "FURBYS as fraction of FLACK", "57.85%", ratio(t, "furbys", "flack")},
		}
	case "fig9":
		return []SummaryLine{{t.Name, "FURBYS PPW gain (mean)", "3.10%", m("furbys")}}
	case "fig10":
		return []SummaryLine{
			{t.Name, "FLACK vs Belady (mean reduction)", "+4.46pp", diff(t, "flack", "belady")},
			{t.Name, "raw FOO vs LRU", "worse on some apps", m("foo")},
		}
	case "fig11":
		return []SummaryLine{
			{t.Name, "FURBYS IPC speedup (mean)", "0.47-0.49%", m("furbys")},
			{t.Name, "FURBYS as fraction of infinite uop cache", "28.48%", ratio(t, "furbys", "infinite uop cache")},
		}
	case "fig12":
		return []SummaryLine{{t.Name, "LRU capacity needed to match FURBYS@512", "~1.5x (2x for Postgres)", isoCapacity(t)}}
	case "fig13":
		return fig13Summary(t)
	case "fig14":
		return []SummaryLine{
			{t.Name, "energy-saving shares: icache / insertion / decoder", "7.75% / 73.26% / 16.35%", fig14Shares(t)},
		}
	case "fig15":
		return []SummaryLine{
			{t.Name, "FLACK profile vs Belady profile", "+3.47pp", diff(t, "flack-profile", "belady-profile")},
			{t.Name, "FLACK profile vs FOO profile", "+4.39pp", diff(t, "flack-profile", "foo-profile")},
		}
	case "fig17":
		return []SummaryLine{{t.Name, "FURBYS PPW gain on Zen4 (mean)", "2.41%", m("furbys")}}
	case "fig18":
		return []SummaryLine{{t.Name, "cross-input retention of same-input reduction", "94.34%", ratio(t, "cross-input", "same-input")}}
	case "fig19":
		return []SummaryLine{{t.Name, "weight-bits knee", "3 bits", kneeOf(t, 0)}}
	case "fig20":
		return []SummaryLine{{t.Name, "pitfall-detector depth knee", "depth 2", kneeOf(t, 0)}}
	case "fig21":
		return []SummaryLine{{t.Name, "bypass benefit (mean)", "+4.33pp", diff(t, "bypass on", "bypass off")}}
	case "coverage":
		return []SummaryLine{
			{t.Name, "victims selected by FURBYS (vs SRRIP fallback)", "88.68%", m("furbys-selected victims")},
			{t.Name, "insertions bypassed", "~30%", m("bypassed insertions")},
		}
	case "sens-inclusion":
		return []SummaryLine{
			{t.Name, "FURBYS IPC speedup, inclusive vs non-inclusive", "0.48% vs 2.5%",
				fmt.Sprintf("%s vs %s", m("inclusive"), m("non-inclusive: FURBYS IPC speedup"))},
		}
	default:
		return nil
	}
}

// ratio formats mean(a)/mean(b) as a percentage.
func ratio(t *Table, a, b string) string {
	va, oka := meanOf(t, a)
	vb, okb := meanOf(t, b)
	if !oka || !okb || vb == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f%%", 100*va/vb)
}

// diff formats mean(a)-mean(b) in percentage points.
func diff(t *Table, a, b string) string {
	va, oka := meanOf(t, a)
	vb, okb := meanOf(t, b)
	if !oka || !okb {
		return "n/a"
	}
	return fmt.Sprintf("%+.2fpp", va-vb)
}

// isoCapacity scans fig12 for the smallest LRU configuration whose miss rate
// beats FURBYS@512.
func isoCapacity(t *Table) string {
	var furbys float64
	ok := false
	for _, r := range t.Rows {
		if r[0] == "furbys@512" {
			furbys, ok = cellPct(r[1])
		}
	}
	if !ok {
		return "n/a"
	}
	for _, r := range t.Rows {
		if !strings.HasPrefix(r[0], "lru@") || r[0] == "lru@512" {
			continue
		}
		if v, ok := cellPct(r[1]); ok && v <= furbys {
			var entries int
			fmt.Sscanf(r[0], "lru@%d", &entries)
			return fmt.Sprintf("%s (%.2fx)", r[0], float64(entries)/512)
		}
	}
	return ">2x (never matched)"
}

func fig13Summary(t *Table) []SummaryLine {
	var out []SummaryLine
	for _, r := range t.Rows {
		if len(r) < 6 {
			continue
		}
		switch r[0] {
		case "no uop cache":
			out = append(out, SummaryLine{t.Name, "baseline decoder / icache power share", "12.5% / 7.7%",
				fmt.Sprintf("%s / %s", r[1], r[2])})
		case "lru":
			out = append(out, SummaryLine{t.Name, "LRU uop cache total energy vs baseline", "-8.1%", r[5]})
		case "furbys":
			out = append(out, SummaryLine{t.Name, "FURBYS total energy vs baseline", "further -2.2%", r[5]})
		}
	}
	return out
}

func fig14Shares(t *Table) string {
	r := meanRow(t)
	if r == nil || len(r) < 4 {
		return "n/a"
	}
	return fmt.Sprintf("%s / %s / %s", r[1], r[2], r[3])
}

// kneeOf reports the swept value (column 0) after which the final numeric
// column stops improving by more than 0.5pp.
func kneeOf(t *Table, _ int) string {
	last := len(t.Columns) - 1
	prev := -1e18
	for _, r := range t.Rows {
		v, ok := cellPct(r[last])
		if !ok {
			continue
		}
		if prev > -1e17 && v-prev < 0.5 {
			return "at " + r[0] + " (diminishing returns)"
		}
		prev = v
	}
	if len(t.Rows) > 0 {
		return "at " + t.Rows[len(t.Rows)-1][0] + " (still improving)"
	}
	return "n/a"
}

// WriteReport renders the paper-vs-measured summary plus every table as
// markdown — the generated core of EXPERIMENTS.md.
func WriteReport(w io.Writer, tables []*Table, checks []CheckResult) error {
	ew := &errWriter{w: w}
	fmt.Fprintln(ew, "## Paper vs. measured — headline comparisons")
	fmt.Fprintln(ew)
	fmt.Fprintln(ew, "| experiment | metric | paper | measured |")
	fmt.Fprintln(ew, "| --- | --- | --- | --- |")
	for _, t := range tables {
		for _, s := range summarize(t) {
			fmt.Fprintf(ew, "| %s | %s | %s | %s |\n", s.Experiment, s.Metric, s.Paper, s.Measured)
		}
	}
	fmt.Fprintln(ew)
	fmt.Fprintln(ew, "## Shape checks")
	fmt.Fprintln(ew)
	pass, fail := 0, 0
	for _, c := range checks {
		pass += len(c.Passed)
		fail += len(c.Failed)
		for _, f := range c.Failed {
			fmt.Fprintf(ew, "- **FAIL** `%s`: %s\n", c.Experiment, f)
		}
	}
	fmt.Fprintf(ew, "\n%d claims checked, %d passed, %d failed.\n\n", pass+fail, pass, fail)
	fmt.Fprintln(ew, "## Full tables")
	fmt.Fprintln(ew)
	if ew.err != nil {
		return ew.err
	}
	for _, t := range tables {
		if err := t.Markdown(w); err != nil {
			return err
		}
	}
	return nil
}
