package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// cutLine splits data at the first newline. ok is false when no newline
// exists — an incomplete (torn) line.
func cutLine(data []byte) (line, rest []byte, ok bool) {
	i := bytes.IndexByte(data, '\n')
	if i < 0 {
		return data, nil, false
	}
	return data[:i], data[i+1:], true
}

// CheckpointHeader identifies the run a journal belongs to. A journal whose
// header does not match the resuming run byte-for-byte is discarded: cell
// results are only portable between runs with the same tool version, trace
// length and application list (per-cell geometry is additionally fingerprinted
// in each entry's key, so config sweeps inside one run stay distinct).
type CheckpointHeader struct {
	// Version is the journal format version; bump it when the entry
	// schema or the key layout changes.
	Version int `json:"version"`
	// Tool names the producing binary (e.g. "experiments").
	Tool string `json:"tool"`
	// Blocks is the per-trace dynamic block count of the run.
	Blocks int `json:"blocks"`
	// Apps is the application list of the run, in order.
	Apps []string `json:"apps,omitempty"`
	// Build pins the producing binary's VCS revision when available, so a
	// rebuilt simulator never replays results of different code.
	Build string `json:"build,omitempty"`
}

// CheckpointVersion is the current journal format version.
const CheckpointVersion = 1

// checkpointEntry is one journaled cell result: the cell's full coordinate
// key and its JSON-encoded typed row group.
type checkpointEntry struct {
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value"`
}

// Checkpoint is a crash-safe cell-result journal (JSONL, append-only). The
// first line is the run header; every following line records one completed
// cell. Appends are a single O_APPEND write followed by fsync, so a crash at
// any instant leaves at most one torn trailing line — which the loader
// tolerates by stopping at the first unparsable line. Restored values decode
// back into the cells' typed row groups, so a resumed run renders
// byte-identical output without re-simulating the journaled cells.
type Checkpoint struct {
	mu       sync.Mutex
	f        *os.File
	entries  map[string]json.RawMessage
	restored int
	err      error
}

// OpenCheckpoint opens (or creates) the journal at path. An existing journal
// whose header matches hdr exactly has its entries loaded for Lookup; a
// header mismatch (different tool, trace length, app list, build, or format
// version) discards the stale journal and starts fresh. A torn trailing line
// — the signature of a crash mid-append — is dropped silently; every line
// before it is kept.
func OpenCheckpoint(path string, hdr CheckpointHeader) (*Checkpoint, error) {
	want, err := json.Marshal(hdr)
	if err != nil {
		return nil, fmt.Errorf("checkpoint %s: header: %w", path, err)
	}
	cp := &Checkpoint{entries: make(map[string]json.RawMessage)}
	data, rerr := os.ReadFile(path)
	compatible := false
	valid := 0 // bytes of the file verified intact (header + complete entries)
	if rerr == nil {
		line, rest, ok := cutLine(data)
		if ok && bytes.Equal(bytes.TrimSpace(line), want) {
			compatible = true
			valid = len(data) - len(rest)
			for {
				line, next, ok := cutLine(rest)
				if !ok {
					// No trailing newline: a torn line from a
					// crashed append; everything after it is
					// untrustworthy.
					break
				}
				var e checkpointEntry
				if json.Unmarshal(line, &e) != nil || e.Key == "" {
					break
				}
				cp.entries[e.Key] = e.Value
				valid = len(data) - len(next)
				rest = next
			}
		}
	} else if !os.IsNotExist(rerr) {
		return nil, fmt.Errorf("checkpoint %s: %w", path, rerr)
	}
	cp.restored = len(cp.entries)
	if compatible {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
		if err != nil {
			return nil, fmt.Errorf("checkpoint %s: %w", path, err)
		}
		if valid < len(data) {
			// Cut the torn tail off before appending, so the next entry
			// starts on a fresh line instead of gluing onto the fragment.
			if err := f.Truncate(int64(valid)); err != nil {
				f.Close()
				return nil, fmt.Errorf("checkpoint %s: truncate torn tail: %w", path, err)
			}
		}
		cp.f = f
		return cp, nil
	}
	// Fresh (or incompatible) journal: truncate and stamp the header.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	if _, err := f.Write(append(want, '\n')); err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint %s: header: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint %s: sync: %w", path, err)
	}
	cp.f = f
	return cp, nil
}

// Lookup returns the journaled value for a cell key, if present.
func (cp *Checkpoint) Lookup(key string) (json.RawMessage, bool) {
	if cp == nil {
		return nil, false
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	v, ok := cp.entries[key]
	return v, ok
}

// Append journals one completed cell: a single appended line, fsynced before
// returning, so the entry either exists completely or (after a crash) is a
// torn tail the loader drops. A write failure does not fail the cell — the
// result is already computed; it just will not be resumable — but is
// remembered and reported by Err so the driver can warn.
func (cp *Checkpoint) Append(key string, value json.RawMessage) {
	if cp == nil {
		return
	}
	line, err := json.Marshal(checkpointEntry{Key: key, Value: value})
	if err != nil {
		cp.fail(fmt.Errorf("checkpoint: encode %q: %w", key, err))
		return
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cp.entries[key] = value
	if cp.f == nil {
		return
	}
	//simlint:ignore lockcheck the journal mutex exists to serialize appends; writing under it is the design, and each append is one small fsynced line
	if _, err := cp.f.Write(append(line, '\n')); err != nil {
		cp.failLocked(fmt.Errorf("checkpoint: append %q: %w", key, err))
		return
	}
	//simlint:ignore lockcheck the fsync must complete before the next append is admitted — durability order is the point of the lock
	if err := cp.f.Sync(); err != nil {
		cp.failLocked(fmt.Errorf("checkpoint: sync %q: %w", key, err))
	}
}

func (cp *Checkpoint) fail(err error) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cp.failLocked(err)
}

func (cp *Checkpoint) failLocked(err error) {
	if cp.err == nil {
		cp.err = err
	}
}

// Restored reports how many entries the journal held at open time.
func (cp *Checkpoint) Restored() int {
	if cp == nil {
		return 0
	}
	return cp.restored
}

// Len reports the journal's current entry count.
func (cp *Checkpoint) Len() int {
	if cp == nil {
		return 0
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return len(cp.entries)
}

// Err returns the first journaling failure (nil when every append landed).
func (cp *Checkpoint) Err() error {
	if cp == nil {
		return nil
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.err
}

// Close closes the journal file.
func (cp *Checkpoint) Close() error {
	if cp == nil {
		return nil
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if cp.f == nil {
		return nil
	}
	err := cp.f.Close() //simlint:ignore lockcheck closing under the journal mutex keeps Close exclusive with in-flight appends
	cp.f = nil
	return err
}
