package experiments

import (
	"strings"
	"testing"
)

func TestSensInsertDelayTable(t *testing.T) {
	ctx := NewContext(8000)
	ctx.Apps = []string{"kafka"}
	tbl, err := SensInsertDelay(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// The A benefit (last column) must be positive at high delays.
	var lastBenefit float64
	fmtSscanfPct(tbl.Rows[len(tbl.Rows)-1][4], &lastBenefit)
	if lastBenefit <= 0 {
		t.Errorf("A benefit at max delay = %.2f%%, want positive", lastBenefit)
	}
}

func TestSensSegmentLimitTable(t *testing.T) {
	ctx := NewContext(8000)
	ctx.Apps = []string{"kafka"}
	tbl, err := SensSegmentLimit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Largest segment limit should not be the worst.
	var first, last float64
	fmtSscanfPct(tbl.Rows[0][1], &first)
	fmtSscanfPct(tbl.Rows[len(tbl.Rows)-1][1], &last)
	if last < first-5 {
		t.Errorf("default segment limit (%.2f%%) much worse than tiny segments (%.2f%%)", last, first)
	}
}

func TestSensInclusionTable(t *testing.T) {
	ctx := NewContext(10000)
	ctx.Apps = []string{"wordpress"}
	tbl, err := SensInclusion(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 || tbl.Rows[1][0] != "MEAN" {
		t.Fatalf("rows = %v", tbl.Rows)
	}
	for _, c := range tbl.Columns {
		if strings.Contains(c, "non-inclusive") {
			return
		}
	}
	t.Error("missing non-inclusive column")
}

func TestMeanHelper(t *testing.T) {
	if mean(nil) != 0 {
		t.Error("mean of empty")
	}
	if got := mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("mean = %v", got)
	}
}

func TestPctHelper(t *testing.T) {
	if got := pct(0.1234); got != "12.34%" {
		t.Errorf("pct = %q", got)
	}
	if got := pct(-0.05); got != "-5.00%" {
		t.Errorf("pct = %q", got)
	}
}

func TestAppRowsPropagatesError(t *testing.T) {
	ctx := NewContext(1000)
	ctx.Apps = []string{"kafka", "mysql", "python"}
	_, err := appRows(ctx, func(app string) (int, error) {
		if app == "mysql" {
			return 0, errTest
		}
		return 1, nil
	})
	if err != errTest {
		t.Errorf("err = %v", err)
	}
}

func TestAppRowsOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx := NewContext(1000)
		ctx.Apps = []string{"kafka", "mysql", "python"}
		ctx.Workers = workers
		rows, err := appRows(ctx, func(app string) (string, error) { return app, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, app := range ctx.Apps {
			if rows[i] != app {
				t.Errorf("workers=%d: rows[%d] = %q, want %q", workers, i, rows[i], app)
			}
		}
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test error" }

func TestSensFragmentationTable(t *testing.T) {
	ctx := NewContext(8000)
	ctx.Apps = []string{"drupal"}
	tbl, err := SensFragmentation(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Compaction must reach utilization 1.0 and not increase the miss
	// rate versus baseline.
	var baseMiss, compMiss, compUtil float64
	for _, r := range tbl.Rows {
		switch r[0] {
		case "baseline lru":
			fmtSscanfPct(r[1], &baseMiss)
		case "compaction":
			fmtSscanfPct(r[1], &compMiss)
			fmtSscanfPct(r[2], &compUtil)
		}
	}
	if compUtil < 0.99 {
		t.Errorf("compaction utilization = %v", compUtil)
	}
	if compMiss > baseMiss {
		t.Errorf("compaction raised the miss rate: %v vs %v", compMiss, baseMiss)
	}
}

func TestSensObjectiveOrdering(t *testing.T) {
	ctx := NewContext(8000)
	ctx.Apps = []string{"drupal"}
	tbl, err := SensObjective(ctx)
	if err != nil {
		t.Fatal(err)
	}
	mr := tbl.Rows[len(tbl.Rows)-1]
	var ohr, vc float64
	fmtSscanfPct(mr[1], &ohr)
	fmtSscanfPct(mr[3], &vc)
	if vc < ohr {
		t.Errorf("variable-cost objective (%.2f%%) below OHR (%.2f%%)", vc, ohr)
	}
}
