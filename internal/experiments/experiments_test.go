package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// smallCtx keeps experiment smoke tests fast: two contrasting apps, short
// traces.
func smallCtx() *Context {
	ctx := NewContext(8000)
	ctx.Apps = []string{"kafka", "wordpress"}
	return ctx
}

func TestRegistryCoversEveryFigure(t *testing.T) {
	want := []string{"tab1", "tab2", "fig2", "sec3b", "sec3e", "fig5", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
		"fig18", "fig19", "fig20", "fig21", "fig22", "coverage",
		"sens-inclusion", "sens-delay", "sens-segment", "sens-fragmentation", "sens-objective"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d entries, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("registry[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("Lookup(%s) failed", id)
		}
	}
	if _, ok := Lookup("nosuch"); ok {
		t.Error("Lookup(nosuch) should fail")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Name: "x", Title: "T", Columns: []string{"a", "b"}, Notes: []string{"note"}}
	tbl.AddRow("foo", 1.5)
	tbl.AddRow(2, "bar")
	var csv, md bytes.Buffer
	if err := tbl.CSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "a,b\nfoo,1.5000\n2,bar\n") {
		t.Errorf("csv = %q", csv.String())
	}
	if err := tbl.Markdown(&md); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "| foo | 1.5000 |") || !strings.Contains(md.String(), "> note") {
		t.Errorf("markdown = %q", md.String())
	}
}

func TestContextCaching(t *testing.T) {
	ctx := smallCtx()
	b1, p1, err := ctx.Trace("kafka", 0)
	if err != nil {
		t.Fatal(err)
	}
	b2, p2, _ := ctx.Trace("kafka", 0)
	if &b1[0] != &b2[0] || &p1[0] != &p2[0] {
		t.Error("trace not cached")
	}
	pr1, err := ctx.Profile("kafka", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	pr2, _ := ctx.Profile("kafka", 0, 0)
	if pr1 != pr2 {
		t.Error("profile not cached")
	}
	if len(NewContext(0).AppList()) != 11 {
		t.Error("default app list should be all 11")
	}
}

func TestTable1(t *testing.T) {
	tbl, err := Table1(smallCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 8 {
		t.Errorf("rows = %d", len(tbl.Rows))
	}
	if !strings.Contains(tbl.Rows[3][1], "512-entry, 8-way") {
		t.Errorf("uop cache row = %v", tbl.Rows[3])
	}
}

func TestTable2MeasuresMPKI(t *testing.T) {
	ctx := smallCtx()
	tbl, err := Table2(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		if r[3] == "0.00" {
			t.Errorf("measured MPKI is zero for %s", r[0])
		}
	}
}

func TestFig8ShapesHold(t *testing.T) {
	ctx := smallCtx()
	tbl, err := Fig8FURBYSMissReduction(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// MEAN row last; furbys column is index 6, flack 7.
	meanRow := tbl.Rows[len(tbl.Rows)-1]
	if meanRow[0] != "MEAN" {
		t.Fatalf("last row = %v", meanRow)
	}
	parse := func(s string) float64 {
		var f float64
		if _, err := fmtSscanfPct(s, &f); err != nil {
			t.Fatalf("bad pct %q: %v", s, err)
		}
		return f
	}
	furbys := parse(meanRow[6])
	flack := parse(meanRow[7])
	if furbys <= 0 {
		t.Errorf("FURBYS mean reduction %.2f%% should be positive", furbys)
	}
	if flack <= furbys {
		t.Errorf("FLACK (%.2f%%) should bound FURBYS (%.2f%%)", flack, furbys)
	}
}

func TestFig10AblationMonotoneish(t *testing.T) {
	ctx := smallCtx()
	tbl, err := Fig10FLACKAblation(ctx)
	if err != nil {
		t.Fatal(err)
	}
	meanRow := tbl.Rows[len(tbl.Rows)-1]
	parse := func(s string) float64 {
		var f float64
		fmtSscanfPct(s, &f)
		return f
	}
	foo := parse(meanRow[2])
	flack := parse(meanRow[5])
	belady := parse(meanRow[1])
	if flack <= foo {
		t.Errorf("FLACK (%.2f%%) should beat raw FOO (%.2f%%)", flack, foo)
	}
	if flack <= belady {
		t.Errorf("FLACK (%.2f%%) should beat Belady (%.2f%%)", flack, belady)
	}
}

func TestFig19And20Sweeps(t *testing.T) {
	ctx := smallCtx()
	ctx.Apps = []string{"kafka"}
	t19, err := Fig19WeightBits(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(t19.Rows) != 8 {
		t.Errorf("fig19 rows = %d", len(t19.Rows))
	}
	t20, err := Fig20DetectorDepth(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(t20.Rows) != 5 {
		t.Errorf("fig20 rows = %d", len(t20.Rows))
	}
}

func TestFig22DecileMonotonicityAtHotEnd(t *testing.T) {
	ctx := smallCtx()
	tbl, err := Fig22Hotness(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 10 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	var hot, cold float64
	fmtSscanfPct(tbl.Rows[0][1], &hot)  // LRU decile 0
	fmtSscanfPct(tbl.Rows[9][1], &cold) // LRU decile 9
	if hot <= cold {
		t.Errorf("hot decile hit rate %.2f%% should exceed cold %.2f%%", hot, cold)
	}
}

func TestFig13Shares(t *testing.T) {
	ctx := smallCtx()
	ctx.Apps = []string{"clang"}
	tbl, err := Fig13EnergyBreakdownClang(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// The no-uop-cache decoder share should be substantial (paper: 12.5%).
	var dec float64
	fmtSscanfPct(tbl.Rows[0][1], &dec)
	if dec < 5 || dec > 30 {
		t.Errorf("no-uop-cache decoder share %.1f%%, want 5-30%%", dec)
	}
	// LRU total should be below the no-uop-cache total (paper: -8.1%).
	var lruTotal float64
	fmtSscanfPct(tbl.Rows[1][5], &lruTotal)
	if lruTotal >= 100 {
		t.Errorf("LRU total %.1f%% of baseline, want < 100%%", lruTotal)
	}
}

// fmtSscanfPct parses "12.34%".
func fmtSscanfPct(s string, f *float64) (int, error) {
	return fmt.Sscan(strings.TrimSuffix(s, "%"), f)
}
