package experiments

import (
	"strings"
	"testing"

	"uopsim/internal/inspect"
	"uopsim/internal/telemetry"
)

func TestRunAttributionReconciles(t *testing.T) {
	ctx := smallCtx()
	ctx.Apps = []string{"kafka"}
	ctx.Telemetry.Metrics = telemetry.NewRegistry()
	rows, err := RunAttribution(ctx, AttributionOptions{
		Policies: []string{"lru", "srrip"},
		Window:   1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2 (1 app x 2 policies)", len(rows))
	}
	for _, r := range rows {
		if r.App != "kafka" {
			t.Errorf("row app = %q", r.App)
		}
		if r.Total == 0 {
			t.Errorf("%s/%s saw no evictions; trace too small?", r.App, r.Policy)
		}
		if r.Justified+r.Premature+r.Divergent != r.Total {
			t.Errorf("%s/%s partition not exact: %d+%d+%d != %d",
				r.App, r.Policy, r.Justified, r.Premature, r.Divergent, r.Total)
		}
		if r.Window != 1024 {
			t.Errorf("window = %d", r.Window)
		}
	}
	if rows[0].Policy != "lru" || rows[1].Policy != "srrip" {
		t.Errorf("row order = %s,%s; want lru,srrip", rows[0].Policy, rows[1].Policy)
	}
	// The aggregate inspect_* counters must equal the row totals.
	total, j, p, d := inspect.Totals(rows)
	reg := ctx.Telemetry.Metrics
	if got := reg.Counter("inspect_evictions_total").Value(); got != total {
		t.Errorf("inspect_evictions_total = %d, want %d", got, total)
	}
	if got := reg.Counter("inspect_justified_total").Value(); got != j {
		t.Errorf("inspect_justified_total = %d, want %d", got, j)
	}
	if got := reg.Counter("inspect_premature_total").Value(); got != p {
		t.Errorf("inspect_premature_total = %d, want %d", got, p)
	}
	if got := reg.Counter("inspect_divergent_total").Value(); got != d {
		t.Errorf("inspect_divergent_total = %d, want %d", got, d)
	}
	// And the dashboard block mirrors them.
	snap := ctx.StatusSnapshot()
	if snap.Attribution == nil {
		t.Fatal("StatusSnapshot has no attribution block after RunAttribution")
	}
	if snap.Attribution.Evictions != total || snap.Attribution.Justified != j ||
		snap.Attribution.Premature != p || snap.Attribution.Divergent != d {
		t.Errorf("dashboard attribution %+v, want %d/%d/%d/%d", snap.Attribution, total, j, p, d)
	}
}

func TestRunAttributionSkipDivergence(t *testing.T) {
	ctx := smallCtx()
	ctx.Apps = []string{"kafka"}
	rows, err := RunAttribution(ctx, AttributionOptions{
		Policies:       []string{"lru"},
		SkipDivergence: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Divergent != 0 {
		t.Errorf("SkipDivergence produced %d divergent evictions", rows[0].Divergent)
	}
	if rows[0].Window != inspect.DefaultWindow {
		t.Errorf("window = %d, want DefaultWindow", rows[0].Window)
	}
}

func TestRunAttributionRejectsEmptyPolicies(t *testing.T) {
	if _, err := RunAttribution(smallCtx(), AttributionOptions{}); err == nil {
		t.Fatal("want error for empty policy list")
	}
}

func TestStatusSnapshotTracksCampaign(t *testing.T) {
	ctx := smallCtx()
	ctx.Spans = inspect.NewSpanLog()
	RunMany(ctx, []string{"tab1", "tab2"}, nil)
	snap := ctx.StatusSnapshot()
	if snap.ExperimentsTotal != 2 || snap.ExperimentsDone != 2 {
		t.Errorf("experiments %d/%d, want 2/2", snap.ExperimentsDone, snap.ExperimentsTotal)
	}
	if len(snap.Running) != 0 {
		t.Errorf("running = %v after campaign end", snap.Running)
	}
	if snap.CellsDone == 0 {
		t.Error("no cells recorded done")
	}
	if snap.CellsFailed != 0 || snap.CellsRetried != 0 {
		t.Errorf("unexpected failures/retries: %+v", snap)
	}
	if snap.WorkersCap == 0 {
		t.Error("workers_cap not populated from the limiter")
	}
	// The span log captured the experiment and cell spans.
	if ctx.Spans.Len() == 0 {
		t.Error("span log empty after a campaign")
	}
	var sawExp, sawCell bool
	var sb strings.Builder
	if err := ctx.Spans.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), `"cat":"experiment"`) {
		sawExp = true
	}
	if strings.Contains(sb.String(), `"cat":"cell"`) {
		sawCell = true
	}
	if !sawExp || !sawCell {
		t.Errorf("span log missing categories: experiment=%v cell=%v", sawExp, sawCell)
	}
}
