package experiments

import (
	"fmt"

	"uopsim/internal/core"
	"uopsim/internal/policy"
	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
	"uopsim/internal/workload"
)

// SensFragmentation quantifies the fragmentation headroom the paper's
// Section VIII points at (CLASP and compaction, Kotra & Kalamatianos):
// cross-line windows (CLASP) reduce the number of line-boundary window
// cuts, and idealized entry compaction removes internal fragmentation
// entirely. Both are complementary to replacement policy — the experiment
// runs all four combinations under LRU.
func SensFragmentation(ctx *Context) (*Table, error) {
	t := &Table{Name: "sens-fragmentation",
		Title:   "Fragmentation attack: CLASP cross-line windows and idealized compaction (Section VIII)",
		Columns: []string{"configuration", "mean uop miss rate", "mean utilization", "mean miss reduction vs baseline"}}
	type variant struct {
		label      string
		crossLine  bool
		compaction bool
	}
	variants := []variant{
		{"baseline lru", false, false},
		{"clasp", true, false},
		{"compaction", false, true},
		{"clasp+compaction", true, true},
	}
	baseRates := map[string]float64{}
	for _, v := range variants {
		var rates, utils, reds []float64
		for _, app := range ctx.AppList() {
			spec, err := workload.Get(app)
			if err != nil {
				return nil, err
			}
			blocks := workload.GenerateSpec(spec, ctx.Blocks, 0)
			former := &trace.Former{MaxUops: trace.DefaultMaxUops, CrossLine: v.crossLine, MaxLines: 2}
			pws := trace.FormPWsWith(blocks, former)
			cfg := ctx.Cfg
			cfg.UopCache.Compaction = v.compaction
			res := core.RunBehavior(pws, cfg, policy.NewLRU(), ctx.runOpts())
			rates = append(rates, res.Stats.UopMissRate())
			// Utilization sampled at end of run via a fresh cache
			// replay is overkill; re-run and query.
			c := uopcache.New(cfg.UopCache, policy.NewLRU())
			uopcache.NewBehavior(c, nil).Run(pws)
			utils = append(utils, c.Utilization())
			if v.label == "baseline lru" {
				baseRates[app] = res.Stats.UopMissRate()
			}
			if br := baseRates[app]; br > 0 {
				reds = append(reds, (br-res.Stats.UopMissRate())/br)
			}
		}
		t.AddRow(v.label, fmt.Sprintf("%.4f", mean(rates)), fmt.Sprintf("%.4f", mean(utils)), pct(mean(reds)))
	}
	t.Notes = append(t.Notes,
		"Compaction is the idealized perfect-packing bound (utilization 1.0) and delivers a large miss reduction — the headroom Kotra & Kalamatianos's realizable designs chase.",
		"Our CLASP-lite merges windows across one line boundary but does NOT model mid-window entry tags, so lookups targeting the absorbed second line miss entirely; utilization improves while misses worsen. The full CLASP design needs the intermediate-entry mechanism to win — a useful negative result for naive cross-line placement.")
	return t, nil
}
