package experiments

import (
	"fmt"

	"uopsim/internal/core"
	"uopsim/internal/policy"
	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
	"uopsim/internal/workload"
)

// SensFragmentation quantifies the fragmentation headroom the paper's
// Section VIII points at (CLASP and compaction, Kotra & Kalamatianos):
// cross-line windows (CLASP) reduce the number of line-boundary window
// cuts, and idealized entry compaction removes internal fragmentation
// entirely. Both are complementary to replacement policy — the experiment
// runs all four combinations under LRU. Variants stay serial (each needs
// the baseline's per-app miss rates); within a variant the apps run as
// concurrent cells.
func SensFragmentation(ctx *Context) (*Table, error) {
	t := &Table{Name: "sens-fragmentation",
		Title:   "Fragmentation attack: CLASP cross-line windows and idealized compaction (Section VIII)",
		Columns: []string{"configuration", "mean uop miss rate", "mean utilization", "mean miss reduction vs baseline"}}
	type variant struct {
		label      string
		crossLine  bool
		compaction bool
	}
	variants := []variant{
		{"baseline lru", false, false},
		{"clasp", true, false},
		{"compaction", false, true},
		{"clasp+compaction", true, true},
	}
	type cell struct{ Rate, Util float64 }
	baseRates := map[string]float64{}
	for _, v := range variants {
		rows, err := appRows(ctx, func(app string) (cell, error) {
			spec, err := workload.Get(app)
			if err != nil {
				return cell{}, err
			}
			blocks := workload.GenerateSpec(spec, ctx.Blocks, 0)
			former := &trace.Former{MaxUops: trace.DefaultMaxUops, CrossLine: v.crossLine, MaxLines: 2}
			pws := trace.FormPWsWith(blocks, former)
			cfg := ctx.Cfg
			cfg.UopCache.Compaction = v.compaction
			res := core.RunBehavior(pws, cfg, policy.NewLRU(), ctx.runOpts())
			// Utilization sampled at end of run via a fresh cache
			// replay is overkill; re-run and query.
			c := uopcache.New(cfg.UopCache, policy.NewLRU())
			uopcache.NewBehavior(c, nil).Run(pws)
			return cell{Rate: res.Stats.UopMissRate(), Util: c.Utilization()}, nil
		})
		if err != nil {
			return nil, err
		}
		var rates, utils, reds []float64
		for i, app := range ctx.AppList() {
			r := rows[i]
			rates = append(rates, r.Rate)
			utils = append(utils, r.Util)
			if v.label == "baseline lru" {
				baseRates[app] = r.Rate
			}
			if br := baseRates[app]; br > 0 {
				reds = append(reds, (br-r.Rate)/br)
			}
		}
		t.AddRow(v.label, fmt.Sprintf("%.4f", mean(rates)), fmt.Sprintf("%.4f", mean(utils)), pct(mean(reds)))
	}
	t.Notes = append(t.Notes,
		"Compaction is the idealized perfect-packing bound (utilization 1.0) and delivers a large miss reduction — the headroom Kotra & Kalamatianos's realizable designs chase.",
		"Our CLASP-lite merges windows across one line boundary but does NOT model mid-window entry tags, so lookups targeting the absorbed second line miss entirely; utilization improves while misses worsen. The full CLASP design needs the intermediate-entry mechanism to win — a useful negative result for naive cross-line placement.")
	return t, nil
}
