package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testHeader() CheckpointHeader {
	return CheckpointHeader{
		Version: CheckpointVersion,
		Tool:    "experiments",
		Blocks:  8000,
		Apps:    []string{"kafka", "wordpress"},
		Build:   "abc123",
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "checkpoint.jsonl")
	cp, err := OpenCheckpoint(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	cp.Append("k1", json.RawMessage(`{"x":1}`))
	cp.Append("k2", json.RawMessage(`[1,2,3]`))
	if err := cp.Err(); err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}

	cp2, err := OpenCheckpoint(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if cp2.Restored() != 2 {
		t.Fatalf("Restored = %d, want 2", cp2.Restored())
	}
	v, ok := cp2.Lookup("k1")
	if !ok || string(v) != `{"x":1}` {
		t.Errorf("k1 = %s ok=%v", v, ok)
	}
	if _, ok := cp2.Lookup("missing"); ok {
		t.Error("Lookup invented an entry")
	}
}

// TestCheckpointHeaderMismatchDiscards: a journal written by a different run
// (other trace length, app list, build, or format version) must not leak
// cell results into this one.
func TestCheckpointHeaderMismatchDiscards(t *testing.T) {
	path := filepath.Join(t.TempDir(), "checkpoint.jsonl")
	cp, err := OpenCheckpoint(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	cp.Append("k1", json.RawMessage(`1`))
	cp.Close()

	hdr := testHeader()
	hdr.Blocks = 9999
	cp2, err := OpenCheckpoint(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if cp2.Restored() != 0 {
		t.Fatalf("Restored = %d, want 0 after header mismatch", cp2.Restored())
	}
	if _, ok := cp2.Lookup("k1"); ok {
		t.Error("stale entry survived a header mismatch")
	}
}

// TestCheckpointTornTailTolerated: a crash mid-append leaves a truncated
// final line; the loader must keep every complete entry before it.
func TestCheckpointTornTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "checkpoint.jsonl")
	cp, err := OpenCheckpoint(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	cp.Append("k1", json.RawMessage(`1`))
	cp.Append("k2", json.RawMessage(`2`))
	cp.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last line in half, simulating a crash mid-write.
	torn := data[:len(data)-8]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	cp2, err := OpenCheckpoint(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if cp2.Restored() != 1 {
		t.Fatalf("Restored = %d, want 1 (torn tail dropped)", cp2.Restored())
	}
	if _, ok := cp2.Lookup("k1"); !ok {
		t.Error("entry before the torn tail was lost")
	}
	if _, ok := cp2.Lookup("k2"); ok {
		t.Error("torn entry was restored")
	}
	// Appending after a torn-tail recovery keeps the journal loadable: the
	// recovered entries plus the new one all come back.
	cp2.Append("k3", json.RawMessage(`3`))
	cp2.Close()
	cp3, err := OpenCheckpoint(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	defer cp3.Close()
	if _, ok := cp3.Lookup("k3"); !ok {
		t.Error("entry appended after recovery was lost")
	}
}

// TestCheckpointNilSafe: a nil journal is the "checkpointing off" mode —
// every method must be a no-op.
func TestCheckpointNilSafe(t *testing.T) {
	var cp *Checkpoint
	cp.Append("k", json.RawMessage(`1`))
	if _, ok := cp.Lookup("k"); ok {
		t.Error("nil journal returned an entry")
	}
	if cp.Restored() != 0 || cp.Len() != 0 || cp.Err() != nil || cp.Close() != nil {
		t.Error("nil journal is not inert")
	}
}

func TestCheckpointHeaderIsFirstLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "checkpoint.jsonl")
	cp, err := OpenCheckpoint(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	cp.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	first, _, _ := strings.Cut(string(data), "\n")
	var hdr CheckpointHeader
	if err := json.Unmarshal([]byte(first), &hdr); err != nil {
		t.Fatalf("header line %q: %v", first, err)
	}
	if hdr.Tool != "experiments" || hdr.Version != CheckpointVersion || hdr.Blocks != 8000 {
		t.Errorf("header = %+v", hdr)
	}
}
