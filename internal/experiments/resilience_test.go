package experiments

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"uopsim/internal/faultinject"
	"uopsim/internal/telemetry"
)

// renderCtx runs ids through RunMany on the given context and returns the
// concatenated CSV+Markdown of every table. Strict failures fail the test.
func renderCtx(t *testing.T, ctx *Context, ids []string) string {
	t.Helper()
	var buf bytes.Buffer
	for _, r := range RunMany(ctx, ids, nil) {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.ID, r.Err)
		}
		if err := r.Table.CSV(&buf); err != nil {
			t.Fatal(err)
		}
		if err := r.Table.Markdown(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.String()
}

func resumeHeader(ctx *Context) CheckpointHeader {
	return CheckpointHeader{
		Version: CheckpointVersion,
		Tool:    "experiments",
		Blocks:  ctx.Blocks,
		Apps:    ctx.AppList(),
	}
}

// TestResumeByteIdentity is the acceptance contract of checkpoint/resume: a
// run that dies at an arbitrary cell (here: a deterministic injected failure
// in strict mode), restarted against the same journal, must render output
// byte-identical to an uninterrupted run — at every worker count. tab2
// exercises the timing path, fig8 FLACK profiling, sens-fragmentation the
// multi-sweep journal keys (four sweeps reusing the same cell labels).
func TestResumeByteIdentity(t *testing.T) {
	ids := []string{"tab2", "fig8", "sens-fragmentation"}

	// The uninterrupted reference, no journal involved.
	ref := smallCtx()
	ref.Workers = 1
	want := renderCtx(t, ref, ids)

	// Run 1: journaled, strict, with the fourth cell attempt failing by
	// injection — the campaign dies partway with some cells checkpointed.
	dir := t.TempDir()
	path := filepath.Join(dir, "checkpoint.jsonl")
	ctx1 := smallCtx()
	ctx1.Workers = 1
	ctx1.Fault = faultinject.MustNew("*:4:error")
	j1, err := OpenCheckpoint(path, resumeHeader(ctx1))
	if err != nil {
		t.Fatal(err)
	}
	ctx1.Journal = j1
	results := RunMany(ctx1, ids, nil)
	j1.Close()
	failed := 0
	for _, r := range results {
		if r.Err != nil {
			failed++
			var ierr *faultinject.Error
			if !errors.As(r.Err, &ierr) {
				t.Fatalf("%s failed with %v, want the injected fault", r.ID, r.Err)
			}
		}
	}
	if failed == 0 {
		t.Fatal("the injected fault did not interrupt the run")
	}

	// Resume: same journal, fault gone, at several worker counts. Restored
	// cells replay from the journal; only the missing ones recompute.
	for _, workers := range []int{1, 4, 0} {
		j, err := OpenCheckpoint(path, resumeHeader(ctx1))
		if err != nil {
			t.Fatal(err)
		}
		if j.Restored() == 0 {
			t.Fatal("nothing restored — the interrupted run journaled no cells")
		}
		ctx2 := smallCtx()
		ctx2.Workers = workers
		ctx2.Journal = j
		got := renderCtx(t, ctx2, ids)
		j.Close()
		if got != want {
			t.Errorf("workers=%d: resumed output differs from the uninterrupted run", workers)
		}
	}
}

// TestRetryRecoversTransientFault: with a retry budget, a cell that fails on
// its first two attempts and then succeeds must leave no trace — no failure
// records, output identical to a clean run.
func TestRetryRecoversTransientFault(t *testing.T) {
	ids := []string{"tab2"}
	ref := smallCtx()
	ref.Workers = 1
	want := renderCtx(t, ref, ids)

	ctx := smallCtx()
	ctx.Workers = 1
	ctx.Retries = 2
	ctx.Fault = faultinject.MustNew("*:1-2:error")
	got := renderCtx(t, ctx, ids)
	if got != want {
		t.Error("retried run differs from the clean run")
	}
	if f := ctx.Failures("tab2"); len(f) != 0 {
		t.Errorf("recovered cell still logged failures: %+v", f)
	}
}

// TestDegradeRecordsFailure: in degrade mode an always-failing cell must not
// fail the experiment — it renders with the cell marked missing, and the
// failure (with its attempt count) lands in the failed-cell log.
func TestDegradeRecordsFailure(t *testing.T) {
	ctx := smallCtx()
	ctx.Workers = 1
	ctx.Retries = 1
	ctx.Degrade = true
	ctx.Fault = faultinject.MustNew("fig8/kafka:1+:error")
	results := RunMany(ctx, []string{"fig8"}, nil)
	r := results[0]
	if r.Err != nil {
		t.Fatalf("degrade mode still failed the experiment: %v", r.Err)
	}
	if r.Table == nil {
		t.Fatal("no table rendered")
	}
	if len(r.Failed) != 1 {
		t.Fatalf("Failed = %+v, want exactly one record", r.Failed)
	}
	f := r.Failed[0]
	if f.Cell != "fig8/kafka" || f.Attempts != 2 || !strings.Contains(f.Error, "faultinject") {
		t.Errorf("failure record = %+v", f)
	}
	found := false
	for _, n := range r.Table.Notes {
		if strings.Contains(n, "MISSING cell fig8/kafka") {
			found = true
		}
	}
	if !found {
		t.Errorf("table notes missing the degraded-cell marker: %v", r.Table.Notes)
	}
}

// TestPanicContainment: a panicking cell must be caught, converted to a
// failure record carrying the stack, and degraded like any other failure
// instead of tearing down the campaign.
func TestPanicContainment(t *testing.T) {
	ctx := smallCtx()
	ctx.Workers = 1
	ctx.Degrade = true
	ctx.Fault = faultinject.MustNew("fig8/kafka:1+:panic")
	r := RunMany(ctx, []string{"fig8"}, nil)[0]
	if r.Err != nil {
		t.Fatalf("contained panic still failed the experiment: %v", r.Err)
	}
	if len(r.Failed) != 1 {
		t.Fatalf("Failed = %+v, want exactly one record", r.Failed)
	}
	f := r.Failed[0]
	if !strings.Contains(f.Error, "cell panic") {
		t.Errorf("failure error = %q, want a cell panic", f.Error)
	}
	if f.Stack == "" {
		t.Error("panic failure record carries no stack")
	}
}

// TestCancelledCampaignDrains: with the campaign context already cancelled,
// every requested experiment must come back promptly with the context's
// error (and in input order), not hang or half-run.
func TestCancelledCampaignDrains(t *testing.T) {
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	ctx := smallCtx()
	ctx.Workers = 2
	ctx.Ctx = cctx
	ids := []string{"tab2", "fig8"}
	var emitted []string
	results := RunMany(ctx, ids, func(r RunResult) { emitted = append(emitted, r.ID) })
	for i, r := range results {
		if r.ID != ids[i] {
			t.Fatalf("results[%d] = %s, want %s", i, r.ID, ids[i])
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", r.ID, r.Err)
		}
	}
	for i, id := range emitted {
		if id != ids[i] {
			t.Fatalf("emit order = %v", emitted)
		}
	}
	if len(emitted) != len(ids) {
		t.Fatalf("emitted %d of %d results", len(emitted), len(ids))
	}
}

// TestInterruptFlushesFailedCells is the S-series manifest contract: a
// campaign interrupted by cancellation (the SIGINT path in cmd/experiments)
// must still surface every failed cell that occurred before the interrupt —
// in the RunResult of the experiment that owned it AND in a manifest built
// the way the driver builds one, alongside Status = interrupted.
func TestInterruptFlushesFailedCells(t *testing.T) {
	sigCtx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ctx := smallCtx()
	ctx.Workers = 1
	ctx.Ctx = sigCtx
	ctx.Degrade = true
	ctx.Fault = faultinject.MustNew("fig8/kafka:1+:error")

	man := telemetry.NewRunManifest("experiments", nil)
	ids := []string{"fig8", "tab2"}
	emit := func(r RunResult) {
		man.Figures = append(man.Figures, telemetry.FigureRun{
			ID: r.ID, WallSeconds: r.WallSeconds, Apps: r.Apps, FailedCells: r.Failed,
		})
		if r.Err != nil {
			man.Failures = append(man.Failures, r.ID+": "+r.Err.Error())
		}
		if r.ID == "fig8" {
			// Simulate SIGINT arriving right after fig8 finished: tab2 is
			// still queued and must be abandoned.
			cancel()
		}
	}
	out := RunMany(ctx, ids, emit)

	if len(out[0].Failed) == 0 {
		t.Fatal("fig8 recorded no failed cells despite the injected fault")
	}
	if out[0].Failed[0].Cell != "fig8/kafka" {
		t.Errorf("failed cell = %q, want fig8/kafka", out[0].Failed[0].Cell)
	}
	if out[1].Err == nil || !errors.Is(out[1].Err, context.Canceled) {
		t.Errorf("abandoned tab2 err = %v, want context.Canceled", out[1].Err)
	}

	man.Status = telemetry.StatusInterrupted
	man.Finish()
	var buf bytes.Buffer
	if err := man.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()
	if !strings.Contains(doc, `"status": "interrupted"`) {
		t.Errorf("manifest missing interrupted status:\n%s", doc)
	}
	if !strings.Contains(doc, `"failed_cells"`) || !strings.Contains(doc, "fig8/kafka") {
		t.Errorf("interrupted manifest does not flush failed_cells:\n%s", doc)
	}
	// Every requested id appears, including the abandoned one.
	if !strings.Contains(doc, `"id": "tab2"`) {
		t.Errorf("abandoned experiment missing from manifest:\n%s", doc)
	}
}
