package experiments

import (
	"bytes"
	"sync/atomic"
	"testing"

	"uopsim/internal/artifact"
	"uopsim/internal/parallel"
	"uopsim/internal/profiles"
	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
)

// renderAll runs ids through RunMany at the given worker budget and returns
// the concatenated CSV+Markdown of every table, plus the emit order.
func renderAll(t *testing.T, workers int, ids []string) (string, []string) {
	t.Helper()
	ctx := smallCtx()
	ctx.Workers = workers
	var order []string
	results := RunMany(ctx, ids, func(r RunResult) { order = append(order, r.ID) })
	var buf bytes.Buffer
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("workers=%d %s: %v", workers, r.ID, r.Err)
		}
		if err := r.Table.CSV(&buf); err != nil {
			t.Fatal(err)
		}
		if err := r.Table.Markdown(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.String(), order
}

// TestRunManyWorkerInvariance is the determinism contract of the parallel
// harness: rendered output must be byte-identical at any worker count, and
// emit must deliver results in input order regardless of completion order.
// tab2 covers the timing path, fig8 FLACK profiling and the profile cache,
// fig10 the offline solver fan-out.
func TestRunManyWorkerInvariance(t *testing.T) {
	ids := []string{"tab2", "fig8", "fig10"}
	ref, refOrder := renderAll(t, 1, ids)
	for i, id := range ids {
		if refOrder[i] != id {
			t.Fatalf("serial emit order = %v", refOrder)
		}
	}
	for _, workers := range []int{4, 0} {
		got, order := renderAll(t, workers, ids)
		if got != ref {
			t.Errorf("workers=%d: rendered output differs from the serial run", workers)
		}
		for i, id := range ids {
			if order[i] != id {
				t.Fatalf("workers=%d: emit order = %v, want input order %v", workers, order, ids)
			}
		}
	}
}

// TestRunManyUnknownID: an unknown experiment id must surface as a
// RunResult error without disturbing its neighbours.
func TestRunManyUnknownID(t *testing.T) {
	ctx := smallCtx()
	results := RunMany(ctx, []string{"tab1", "nosuch"}, nil)
	if results[0].Err != nil || results[0].Table == nil {
		t.Errorf("tab1: err=%v table=%v", results[0].Err, results[0].Table)
	}
	if results[1].Err == nil {
		t.Error("nosuch: expected an error")
	}
}

// TestProfileSingleflight closes the duplicate-compute window: N concurrent
// Profile calls for the same key must invoke CollectObserved exactly once
// and hand every caller the same *profiles.Profile.
func TestProfileSingleflight(t *testing.T) {
	old := collectProfile
	var calls atomic.Int64
	collectProfile = func(pws []trace.PW, cfg uopcache.Config, src profiles.Source, opts profiles.CollectOptions) *profiles.Profile {
		calls.Add(1)
		return old(pws, cfg, src, opts)
	}
	defer func() { collectProfile = old }()

	ctx := NewContext(2000)
	ctx.Apps = []string{"kafka"}
	const n = 8
	profs := make([]*profiles.Profile, n)
	errs := make([]error, n)
	parallel.ForEach(nil, n, n, func(i int) {
		profs[i], errs[i] = ctx.Profile("kafka", 0, profiles.SourceFLACK)
	})
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if profs[i] != profs[0] {
			t.Errorf("caller %d got a different profile pointer", i)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("CollectObserved ran %d times, want exactly 1", got)
	}
}

// TestTraceSingleflight: same exactly-once contract for trace generation.
func TestTraceSingleflight(t *testing.T) {
	old := traceFor
	var calls atomic.Int64
	traceFor = func(app string, numBlocks, input int, store *artifact.Store) ([]trace.Block, []trace.PW, error) {
		calls.Add(1)
		return old(app, numBlocks, input, store)
	}
	defer func() { traceFor = old }()

	ctx := NewContext(2000)
	const n = 8
	pws := make([][]trace.PW, n)
	errs := make([]error, n)
	parallel.ForEach(nil, n, n, func(i int) {
		_, pws[i], errs[i] = ctx.Trace("kafka", 0)
	})
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if &pws[i][0] != &pws[0][0] {
			t.Errorf("caller %d got a different PW slice", i)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("TraceFor ran %d times, want exactly 1", got)
	}
}

// TestWithConfigSharesScheduler: a derived-config context must keep the
// parent's scheduler (budget + timings) while isolating its result caches.
func TestWithConfigSharesScheduler(t *testing.T) {
	ctx := smallCtx()
	derived := ctx.withConfig(ctx.Cfg)
	if derived.sched != ctx.sched {
		t.Error("withConfig must share the scheduler")
	}
	if derived.caches == ctx.caches {
		t.Error("withConfig must isolate the result caches")
	}
	if ctx.scoped("x").caches != ctx.caches {
		t.Error("scoped must share the caches")
	}
}
