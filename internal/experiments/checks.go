package experiments

import (
	"fmt"
	"strconv"
	"strings"
)

// CheckResult reports whether a generated table preserves the paper's
// qualitative claims (who wins, by roughly what factor, where the knees
// are). Absolute numbers are NOT checked — the substrate is a simulator and
// the workloads synthetic; shape is the reproduction contract (DESIGN.md §6).
type CheckResult struct {
	Experiment string
	Passed     []string
	Failed     []string
}

// OK reports whether every claim held.
func (c CheckResult) OK() bool { return len(c.Failed) == 0 }

// cellPct parses "12.34%" to 12.34; ok=false for non-numeric cells.
func cellPct(s string) (float64, bool) {
	s = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(s), "%"))
	v, err := strconv.ParseFloat(s, 64)
	return v, err == nil
}

// meanRow finds the summary row ("MEAN" label, or "MEAN" in column 0).
func meanRow(t *Table) []string {
	for _, r := range t.Rows {
		if len(r) > 0 && strings.EqualFold(r[0], "MEAN") {
			return r
		}
	}
	return nil
}

// colIndex finds a column by name, -1 if absent.
func colIndex(t *Table, name string) int {
	for i, c := range t.Columns {
		if strings.EqualFold(c, name) || strings.Contains(strings.ToLower(c), strings.ToLower(name)) {
			return i
		}
	}
	return -1
}

// meanOf extracts the summary value of a column.
func meanOf(t *Table, col string) (float64, bool) {
	r := meanRow(t)
	i := colIndex(t, col)
	if r == nil || i < 0 || i >= len(r) {
		return 0, false
	}
	return cellPct(r[i])
}

type claim struct {
	desc string
	hold func(t *Table) (bool, string)
}

// greater asserts mean(a) > mean(b) (+ margin in percentage points).
func greater(a, b string, margin float64) claim {
	return claim{
		desc: fmt.Sprintf("mean(%s) > mean(%s)", a, b),
		hold: func(t *Table) (bool, string) {
			va, oka := meanOf(t, a)
			vb, okb := meanOf(t, b)
			if !oka || !okb {
				return false, fmt.Sprintf("missing columns %q/%q", a, b)
			}
			return va > vb+margin, fmt.Sprintf("%.2f vs %.2f", va, vb)
		},
	}
}

// positive asserts mean(col) > 0.
func positive(col string) claim {
	return claim{
		desc: fmt.Sprintf("mean(%s) > 0", col),
		hold: func(t *Table) (bool, string) {
			v, ok := meanOf(t, col)
			if !ok {
				return false, "missing column " + col
			}
			return v > 0, fmt.Sprintf("%.2f", v)
		},
	}
}

// checks maps experiment ids to the paper's qualitative claims.
func checks(id string) []claim {
	switch id {
	case "fig2":
		// The perfect micro-op cache gives the largest PPW gain.
		return []claim{
			greater("perfect uop cache", "perfect icache", 0),
			greater("perfect uop cache", "perfect BP", 0),
			greater("perfect uop cache", "perfect BTB", 0),
		}
	case "sec3b":
		return []claim{{
			desc: "capacity misses dominate under LRU",
			hold: func(t *Table) (bool, string) {
				for _, r := range t.Rows {
					if len(r) >= 5 && strings.EqualFold(r[0], "MEAN") && r[1] == "lru" {
						capv, _ := cellPct(r[3])
						coldv, _ := cellPct(r[2])
						confv, _ := cellPct(r[4])
						return capv > coldv && capv > confv,
							fmt.Sprintf("cold %.1f / capacity %.1f / conflict %.1f", coldv, capv, confv)
					}
				}
				return false, "no LRU mean row"
			},
		}}
	case "sec3e":
		return []claim{{
			desc: "PW reuse distances more scattered than icache lines and BTB entries",
			hold: func(t *Table) (bool, string) {
				r := meanRow(t)
				if r == nil || len(r) < 4 {
					return false, "no mean row"
				}
				pw, _ := cellPct(r[1])
				ic, _ := cellPct(r[2])
				br, _ := cellPct(r[3])
				return pw > ic && pw > br, fmt.Sprintf("pw %.1f ic %.1f btb %.1f", pw, ic, br)
			},
		}}
	case "fig5":
		return []claim{
			greater("flack", "ghrp", 0),
			greater("flack", "srrip", 0),
			greater("flack", "thermometer", 0),
			positive("flack"),
		}
	case "fig8":
		return []claim{
			positive("furbys"),
			greater("furbys", "srrip", 0),
			greater("furbys", "ship++", 0),
			greater("furbys", "ghrp", 0),
			greater("furbys", "mockingjay", 0),
			greater("furbys", "thermometer", 0),
			greater("flack", "furbys", 0),
		}
	case "fig9":
		return []claim{positive("furbys"), greater("furbys", "ghrp", 0), greater("furbys", "srrip", 0)}
	case "fig10":
		return []claim{
			greater("flack", "belady", 0),
			greater("flack", "foo", 0),
			greater("foo+A", "foo", 0),
			positive("flack"),
		}
	case "fig11":
		return []claim{
			positive("furbys"),
			greater("infinite uop cache", "furbys", 0),
			greater("flack", "srrip", 0),
		}
	case "fig12":
		return []claim{{
			desc: "FURBYS@512 beats LRU@512 and LRU needs more capacity to match",
			hold: func(t *Table) (bool, string) {
				var lru512, furbys float64
				for _, r := range t.Rows {
					if len(r) < 2 {
						continue
					}
					v, ok := cellPct(r[1])
					if !ok {
						continue
					}
					switch r[0] {
					case "lru@512":
						lru512 = v
					case "furbys@512":
						furbys = v
					}
				}
				return furbys < lru512, fmt.Sprintf("miss rate furbys@512 %.4f vs lru@512 %.4f", furbys, lru512)
			},
		}}
	case "fig13":
		return []claim{{
			desc: "uop cache saves energy; FURBYS saves more than LRU",
			hold: func(t *Table) (bool, string) {
				var lru, furbys float64
				for _, r := range t.Rows {
					if len(r) < 6 {
						continue
					}
					v, ok := cellPct(r[5])
					if !ok {
						continue
					}
					switch r[0] {
					case "lru":
						lru = v
					case "furbys":
						furbys = v
					}
				}
				return lru < 100 && furbys <= lru, fmt.Sprintf("total lru %.1f%% furbys %.1f%% of baseline", lru, furbys)
			},
		}}
	case "fig15":
		return []claim{greater("flack-profile", "foo-profile", 0)}
	case "fig18":
		return []claim{{
			desc: "cross-input profile retains most of the same-input reduction",
			hold: func(t *Table) (bool, string) {
				same, ok1 := meanOf(t, "same-input")
				cross, ok2 := meanOf(t, "cross-input")
				if !ok1 || !ok2 {
					return false, "missing columns"
				}
				return cross > 0 && cross > 0.5*same, fmt.Sprintf("same %.2f cross %.2f", same, cross)
			},
		}}
	case "fig21":
		return []claim{greater("bypass on", "bypass off", 0)}
	case "fig22":
		return []claim{{
			desc: "hot deciles hit well under every policy; FLACK bounds FURBYS overall",
			hold: func(t *Table) (bool, string) {
				if len(t.Rows) != 10 {
					return false, "not 10 deciles"
				}
				hotLRU, _ := cellPct(t.Rows[0][1])
				coldLRU, _ := cellPct(t.Rows[9][1])
				return hotLRU > coldLRU, fmt.Sprintf("lru hot %.1f vs cold %.1f", hotLRU, coldLRU)
			},
		}}
	case "coverage":
		return []claim{{
			desc: "FURBYS selects the overwhelming majority of victims",
			hold: func(t *Table) (bool, string) {
				v, ok := meanOf(t, "furbys-selected victims")
				if !ok {
					return false, "missing column"
				}
				return v > 60, fmt.Sprintf("%.1f%%", v)
			},
		}}
	default:
		return nil
	}
}

// Check validates a generated table against the paper's claims for its
// experiment. Experiments without registered claims return an empty result.
func Check(t *Table) CheckResult {
	res := CheckResult{Experiment: t.Name}
	for _, c := range checks(t.Name) {
		ok, detail := c.hold(t)
		line := fmt.Sprintf("%s (%s)", c.desc, detail)
		if ok {
			res.Passed = append(res.Passed, line)
		} else {
			res.Failed = append(res.Failed, line)
		}
	}
	return res
}
