package experiments

import (
	"fmt"
	"sort"

	"uopsim/internal/core"
	"uopsim/internal/inspect"
	"uopsim/internal/offline"
	"uopsim/internal/telemetry"
	"uopsim/internal/trace"
)

// AttributionOptions configures an eviction-attribution campaign
// (RunAttribution).
type AttributionOptions struct {
	// Policies names the replacement policies to attribute (behaviour-mode
	// names accepted by core.RunBehaviorByName, online or offline).
	Policies []string
	// Window is the premature-eviction window in trace positions: a victim
	// re-referenced within Window lookups of its eviction is classified
	// premature. <= 0 selects inspect.DefaultWindow.
	Window int
	// Input selects the per-app trace input (same meaning as Context.Trace).
	Input int
	// SkipDivergence disables the FLACK keep-plan solve and the divergent
	// class; every non-justified eviction then classifies as premature or
	// justified by the window alone. Useful when only reuse behaviour is of
	// interest and the offline solve is too expensive.
	SkipDivergence bool
}

// RunAttribution replays every (app, policy) pair with a fresh metrics
// registry and an eviction collector attached, classifies each eviction as
// justified, premature, or FLACK-divergent, and returns one attribution row
// per pair (app-major, policy-minor order — deterministic at any worker
// count).
//
// Every row is reconciled before it is returned: the classified eviction
// count must equal both the run's Stats.Evictions and the run's
// uopcache_evictions_total counter, so the attribution table and the
// telemetry stream can never silently disagree. A mismatch is a bug in the
// introspection layer and comes back as an error.
//
// Aggregate counters (inspect_evictions_total, inspect_justified_total,
// inspect_premature_total, inspect_divergent_total) are published to the
// context's telemetry registry, and the live dashboard's attribution block
// updates as each pair completes.
func RunAttribution(c *Context, opts AttributionOptions) ([]inspect.Attribution, error) {
	if len(opts.Policies) == 0 {
		return nil, fmt.Errorf("attribution: no policies given")
	}
	window := opts.Window
	if window <= 0 {
		window = inspect.DefaultWindow
	}
	apps := c.AppList()
	sp := c.Spans.Begin("attribution", "attribution")
	defer sp.End()

	var rows []inspect.Attribution
	for _, app := range apps {
		if err := c.ctx().Err(); err != nil {
			return rows, err
		}
		appSp := c.Spans.Begin("attribution", "attribute/"+app)
		_, pws, err := c.Trace(app, opts.Input)
		if err != nil {
			appSp.End()
			return rows, fmt.Errorf("attribution: trace %s: %w", app, err)
		}
		// One FLACK keep-plan per app, shared by every policy's divergence
		// check: the plan depends only on the trace and the geometry.
		var keep []bool
		if !opts.SkipDivergence {
			pt, _ := c.Prepared(app, opts.Input)
			dec := offline.ComputeDecisionsCached(c.ctx(), pws, pt, c.Cfg.UopCache, offline.CostVC, true, 0, c.Workers, c.plans())
			if err := c.ctx().Err(); err != nil {
				appSp.End()
				return rows, err
			}
			keep = dec.Keep
		}
		for _, pol := range opts.Policies {
			if err := c.ctx().Err(); err != nil {
				appSp.End()
				return rows, err
			}
			row, err := attributeOne(c, app, pol, pws, keep, window)
			if err != nil {
				appSp.End()
				return rows, err
			}
			rows = append(rows, row)
			publishAttribution(c, row)
		}
		appSp.End()
	}
	return rows, nil
}

// attributeOne replays one (app, policy) pair with introspection attached
// and reconciles the classification against the run's eviction counters.
func attributeOne(c *Context, app, pol string, pws []trace.PW, keep []bool, window int) (inspect.Attribution, error) {
	// A fresh registry scoped to this single run makes the reconciliation
	// exact: uopcache_evictions_total here counts THIS replay's evictions
	// and nothing else.
	reg := telemetry.NewRegistry()
	col := inspect.NewCollector()
	col.Next = c.Telemetry.Events
	res, err := core.RunBehaviorByName(pol, pws, c.Cfg, core.BehaviorOptions{
		Ctx:       c.ctx(),
		Telemetry: core.Telemetry{Metrics: reg, Events: col},
		Workers:   c.Workers,
	})
	if err != nil {
		return inspect.Attribution{}, fmt.Errorf("attribution: %s/%s: %w", app, pol, err)
	}
	row := inspect.Attribute(col.Records(), pws, inspect.Options{Window: window, Keep: keep})
	row.App, row.Policy = app, pol
	counter := reg.Counter("uopcache_evictions_total").Value()
	if row.Total != res.Stats.Evictions || row.Total != counter {
		return row, fmt.Errorf(
			"attribution: %s/%s: classified %d evictions but Stats.Evictions=%d, uopcache_evictions_total=%d",
			app, pol, row.Total, res.Stats.Evictions, counter)
	}
	return row, nil
}

// publishAttribution folds one completed row into the context registry's
// inspect_* counters and the live dashboard's attribution block.
func publishAttribution(c *Context, row inspect.Attribution) {
	if m := c.Telemetry.Metrics; m != nil {
		m.Counter("inspect_evictions_total").Add(row.Total)
		m.Counter("inspect_justified_total").Add(row.Justified)
		m.Counter("inspect_premature_total").Add(row.Premature)
		m.Counter("inspect_divergent_total").Add(row.Divergent)
	}
	c.statusUpdate(func(s *statusCounters) {
		if s.attribution == nil {
			s.attribution = &AttributionStatus{}
		}
		s.attribution.Evictions += row.Total
		s.attribution.Justified += row.Justified
		s.attribution.Premature += row.Premature
		s.attribution.Divergent += row.Divergent
	})
}

// SortAttribution orders rows app-major, policy-minor (the order
// RunAttribution already produces; exported for callers that merge rows
// from several campaigns).
func SortAttribution(rows []inspect.Attribution) {
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].App != rows[j].App {
			return rows[i].App < rows[j].App
		}
		return rows[i].Policy < rows[j].Policy
	})
}
