package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestSummarizeFig8(t *testing.T) {
	tbl := mkTable("fig8",
		[]string{"application", "srrip", "ship++", "mockingjay", "ghrp", "thermometer", "furbys", "flack"},
		[]string{"MEAN", "5.00%", "6.00%", "4.00%", "7.00%", "10.00%", "15.00%", "30.00%"},
	)
	lines := summarize(tbl)
	if len(lines) != 2 {
		t.Fatalf("lines = %+v", lines)
	}
	if lines[0].Measured != "15.00%" {
		t.Errorf("furbys measured = %s", lines[0].Measured)
	}
	if lines[1].Measured != "50.00%" { // 15/30
		t.Errorf("fraction of FLACK = %s", lines[1].Measured)
	}
}

func TestSummarizeDiff(t *testing.T) {
	tbl := mkTable("fig10",
		[]string{"application", "belady", "foo", "foo+A", "foo+A+VC", "flack"},
		[]string{"MEAN", "26.00%", "-3.00%", "28.00%", "38.00%", "39.00%"},
	)
	lines := summarize(tbl)
	if lines[0].Measured != "+13.00pp" {
		t.Errorf("flack-belady = %s", lines[0].Measured)
	}
}

func TestIsoCapacityExtraction(t *testing.T) {
	tbl := mkTable("fig12",
		[]string{"configuration", "mean uop miss rate", "mean IPC", "red"},
		[]string{"lru@512", "0.1500", "1.2", "0%"},
		[]string{"lru@640", "0.1400", "1.21", "5%"},
		[]string{"lru@768", "0.1200", "1.22", "15%"},
		[]string{"furbys@512", "0.1250", "1.22", "12%"},
	)
	lines := summarize(tbl)
	if !strings.Contains(lines[0].Measured, "lru@768") || !strings.Contains(lines[0].Measured, "1.50x") {
		t.Errorf("iso capacity = %s", lines[0].Measured)
	}
	// Never matched case.
	tbl2 := mkTable("fig12",
		[]string{"configuration", "mean uop miss rate", "mean IPC", "red"},
		[]string{"lru@512", "0.1500", "1.2", "0%"},
		[]string{"lru@1024", "0.1300", "1.22", "10%"},
		[]string{"furbys@512", "0.1000", "1.25", "30%"},
	)
	if got := summarize(tbl2)[0].Measured; !strings.Contains(got, "never matched") {
		t.Errorf("unmatched iso = %s", got)
	}
}

func TestKneeOf(t *testing.T) {
	tbl := mkTable("fig19",
		[]string{"bits", "groups", "mean reduction"},
		[]string{"1", "2", "8.00%"},
		[]string{"2", "4", "12.00%"},
		[]string{"3", "8", "14.00%"},
		[]string{"4", "16", "14.10%"},
	)
	lines := summarize(tbl)
	if !strings.Contains(lines[0].Measured, "at 4") {
		t.Errorf("knee = %s", lines[0].Measured)
	}
}

func TestWriteReport(t *testing.T) {
	tbl := mkTable("fig8",
		[]string{"application", "srrip", "ship++", "mockingjay", "ghrp", "thermometer", "furbys", "flack"},
		[]string{"kafka", "5%", "6%", "4%", "7%", "10%", "15%", "30%"},
		[]string{"MEAN", "5.00%", "6.00%", "4.00%", "7.00%", "10.00%", "15.00%", "30.00%"},
	)
	checkRes := Check(tbl)
	var buf bytes.Buffer
	if err := WriteReport(&buf, []*Table{tbl}, []CheckResult{checkRes}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Paper vs. measured", "| fig8 | FURBYS miss reduction (mean) | 14.34% | 15.00% |",
		"Shape checks", "passed", "Full tables",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestSummarizeUnknownEmpty(t *testing.T) {
	if got := summarize(mkTable("tab1", []string{"a", "b"})); got != nil {
		t.Errorf("tab1 summary = %v", got)
	}
}
