package trace

import (
	"testing"
)

// prepSeq builds a small repeating lookup sequence with duplicate starts.
func prepSeq() []PW {
	starts := []uint64{0x1000, 0x2040, 0x1000, 0x3080, 0x2040, 0x1000}
	out := make([]PW, len(starts))
	for i, s := range starts {
		out[i] = PW{Start: s, NumUops: uint16(4 + i), Bytes: 16, NumInst: 4, Lines: []uint64{LineAddr(s)}}
	}
	return out
}

// testPrepare builds a PreparedTrace with simple, checkable attribute
// functions (set = start>>6 & 3, footprint = uops, entries = uops/8+1).
func testPrepare(pws []PW, sig uint64) *PreparedTrace {
	return Prepare(pws, sig,
		func(start uint64) int { return int(start>>6) & 3 },
		func(p PW) int { return int(p.NumUops) },
		func(p PW) int { return int(p.NumUops)/8 + 1 })
}

func TestPreparedColumns(t *testing.T) {
	pws := prepSeq()
	pt := testPrepare(pws, 42)
	if pt.Len() != len(pws) || pt.Sig() != 42 {
		t.Fatalf("Len=%d Sig=%d", pt.Len(), pt.Sig())
	}
	for i, p := range pws {
		if pt.At(i).Start != p.Start {
			t.Fatalf("At(%d).Start = %#x, want %#x", i, pt.At(i).Start, p.Start)
		}
		if got, want := pt.Set(i), int(p.Start>>6)&3; got != want {
			t.Errorf("Set(%d) = %d, want %d", i, got, want)
		}
		if got, want := pt.Footprint(i), int(p.NumUops); got != want {
			t.Errorf("Footprint(%d) = %d, want %d", i, got, want)
		}
		if got, want := pt.Entries(i), int(p.NumUops)/8+1; got != want {
			t.Errorf("Entries(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestPreparedOccurrenceIndex(t *testing.T) {
	pws := prepSeq()
	pt := testPrepare(pws, 0)
	if pt.NumKeys() != 3 {
		t.Fatalf("NumKeys = %d, want 3", pt.NumKeys())
	}
	want := map[uint64][]int32{
		0x1000: {0, 2, 5},
		0x2040: {1, 4},
		0x3080: {3},
	}
	for start, positions := range want {
		id, ok := pt.IDOf(start)
		if !ok {
			t.Fatalf("IDOf(%#x) missing", start)
		}
		occ := pt.Occurrences(id)
		if len(occ) != len(positions) {
			t.Fatalf("Occurrences(%#x) = %v, want %v", start, occ, positions)
		}
		for i := range occ {
			if occ[i] != positions[i] {
				t.Fatalf("Occurrences(%#x) = %v, want %v", start, occ, positions)
			}
		}
	}
	if _, ok := pt.IDOf(0xdead); ok {
		t.Error("IDOf(unknown) = ok")
	}
	// keyID must agree with IDOf position by position.
	for i, p := range pws {
		id, _ := pt.IDOf(p.Start)
		if pt.KeyID(i) != id {
			t.Errorf("KeyID(%d) = %d, want %d", i, pt.KeyID(i), id)
		}
	}
}

func TestPreparedSameSequence(t *testing.T) {
	pws := prepSeq()
	pt := testPrepare(pws, 0)
	if !pt.SameSequence(pws) {
		t.Fatal("SameSequence(own slice) = false")
	}
	if pt.SameSequence(pws[:3]) {
		t.Error("SameSequence(prefix) = true")
	}
	clone := append([]PW(nil), pws...)
	if pt.SameSequence(clone) {
		t.Error("SameSequence(copy) = true — must compare backing arrays, not values")
	}
	empty := testPrepare(nil, 0)
	if !empty.SameSequence(nil) {
		t.Error("SameSequence(nil) on empty trace = false")
	}
}

// TestFormerArenaSharing pins the Former.finish allocation fix: every
// emitted window's Lines slice must alias the shared arena, and appending
// to one emitted slice must not scribble over the next window's lines.
func TestFormerArenaSharing(t *testing.T) {
	blocks := []Block{
		{Addr: 0x1000, Bytes: 100, NumInst: 10, NumUops: 10, Kind: BranchCond, Taken: true},
		{Addr: 0x2000, Bytes: 100, NumInst: 10, NumUops: 10, Kind: BranchCond, Taken: true},
		{Addr: 0x3000, Bytes: 100, NumInst: 10, NumUops: 10, Kind: BranchCond, Taken: true},
	}
	f := NewFormer(0)
	pws := FormPWsWith(blocks, f)
	if len(pws) < 3 {
		t.Fatalf("formed %d windows, want >= 3", len(pws))
	}
	for i, p := range pws {
		if len(p.Lines) == 0 {
			t.Fatalf("window %d has no lines", i)
		}
		for j, l := range p.Lines {
			if j > 0 && l != p.Lines[j-1]+LineSize {
				t.Fatalf("window %d lines not contiguous: %v", i, p.Lines)
			}
		}
		if LineAddr(p.Start) != p.Lines[0] {
			t.Fatalf("window %d first line %#x != LineAddr(start) %#x", i, p.Lines[0], LineAddr(p.Start))
		}
	}
	// The capacity cap makes emitted slices append-safe: growing one must
	// reallocate instead of overwriting its neighbour in the arena.
	next := pws[1].Lines[0]
	_ = append(pws[0].Lines, 0xdeadbeef)
	if pws[1].Lines[0] != next {
		t.Fatal("appending to one window's Lines corrupted the next window")
	}
}
