package trace

import "testing"

func apw(start uint64, uops int, taken bool) PW {
	return PW{Start: start, NumUops: uint16(uops), Bytes: uint16(uops * 4),
		NumInst: uint16(uops), EndsTaken: taken, Lines: []uint64{LineAddr(start)}}
}

func TestAnalyzeBasics(t *testing.T) {
	pws := []PW{
		apw(0x1000, 4, true),
		apw(0x1000, 8, false), // overlapping variant of 0x1000
		apw(0x2000, 12, true), // 2 entries
		apw(0x3000, 4, true),
	}
	a := Analyze(pws, 8)
	if a.Lookups != 4 || a.DistinctStarts != 3 {
		t.Errorf("lookups/starts = %d/%d", a.Lookups, a.DistinctStarts)
	}
	if a.OverlappingStarts != 1 {
		t.Errorf("overlapping = %d", a.OverlappingStarts)
	}
	if a.OverlapFrac() != 1.0/3.0 {
		t.Errorf("overlap frac = %v", a.OverlapFrac())
	}
	if a.TotalUops != 28 {
		t.Errorf("total uops = %d", a.TotalUops)
	}
	if a.AvgUops != 7 {
		t.Errorf("avg uops = %v", a.AvgUops)
	}
	if a.SizeHist[1] != 3 || a.SizeHist[2] != 1 {
		t.Errorf("size hist = %v", a.SizeHist)
	}
	if a.EndsTakenFrac != 0.75 {
		t.Errorf("taken frac = %v", a.EndsTakenFrac)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	a := Analyze(nil, 0)
	if a.Lookups != 0 || a.AvgUops != 0 || a.OverlapFrac() != 0 {
		t.Errorf("empty analysis = %+v", a)
	}
}

func TestAnalyzeOversizedWindowClamped(t *testing.T) {
	// 60 uops = 8 entries at 8/entry; clamps into the last histogram bin.
	a := Analyze([]PW{apw(0x1000, 60, true)}, 8)
	if a.SizeHist[len(a.SizeHist)-1] != 1 {
		t.Errorf("hist = %v", a.SizeHist)
	}
}

func TestAnalyzeDefaultsUopsPerEntry(t *testing.T) {
	a := Analyze([]PW{apw(0x1000, 9, true)}, 0) // 0 -> 8/entry -> 2 entries
	if a.AvgEntries != 2 {
		t.Errorf("avg entries = %v", a.AvgEntries)
	}
}
