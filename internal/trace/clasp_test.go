package trace

import "testing"

// claspBlocks builds a straight-line run crossing several line boundaries.
func claspBlocks() []Block {
	return []Block{
		// 160 bytes from 0x1020: spans lines 0x1000, 0x1040, 0x1080, 0x10c0.
		{Addr: 0x1020, Bytes: 160, NumInst: 40, NumUops: 40,
			Kind: BranchUncond, Taken: true, Target: 0x9000, BranchPC: 0x10bc},
	}
}

func TestCrossLineFormsLargerWindows(t *testing.T) {
	base := FormPWs(claspBlocks(), 0)
	clasp := FormPWsWith(claspBlocks(), &Former{MaxUops: DefaultMaxUops, CrossLine: true, MaxLines: 2})
	if len(clasp) >= len(base) {
		t.Errorf("CLASP formed %d windows, baseline %d — expected fewer", len(clasp), len(base))
	}
	var totalBase, totalClasp int
	for _, p := range base {
		totalBase += int(p.NumUops)
	}
	for _, p := range clasp {
		totalClasp += int(p.NumUops)
		if len(p.Lines) > 2 {
			t.Errorf("window spans %d lines, budget 2: %+v", len(p.Lines), p)
		}
	}
	if totalBase != totalClasp {
		t.Errorf("uops not conserved: %d vs %d", totalBase, totalClasp)
	}
}

func TestCrossLineDefaultBudget(t *testing.T) {
	f := &Former{MaxUops: DefaultMaxUops, CrossLine: true} // MaxLines unset -> 2
	pws := FormPWsWith(claspBlocks(), f)
	for _, p := range pws {
		if len(p.Lines) > 2 {
			t.Errorf("default budget exceeded: %+v", p)
		}
	}
}

func TestCrossLineStillCutsAtTakenBranch(t *testing.T) {
	blocks := []Block{
		{Addr: 0x1000, Bytes: 16, NumInst: 4, NumUops: 4,
			Kind: BranchCond, Taken: true, Target: 0x2000, BranchPC: 0x100c},
		{Addr: 0x2000, Bytes: 16, NumInst: 4, NumUops: 4,
			Kind: BranchUncond, Taken: true, Target: 0x1000, BranchPC: 0x200c},
	}
	pws := FormPWsWith(blocks, &Former{MaxUops: DefaultMaxUops, CrossLine: true, MaxLines: 4})
	if len(pws) != 2 {
		t.Fatalf("got %d windows, want 2 (taken branches still terminate)", len(pws))
	}
	if !pws[0].EndsTaken || !pws[1].EndsTaken {
		t.Error("taken terminators lost under CLASP")
	}
}
