package trace

// Former incrementally converts a dynamic block stream into the PW stream the
// micro-op cache frontend observes. A window terminates on:
//
//   - a taken branch (conditional taken, unconditional, call, return,
//     indirect), since the next fetch address is discontiguous;
//   - an icache line boundary, since the frontend's prediction windows never
//     span L1i lines (Section II-B of the paper);
//   - the maximum window capacity in micro-ops (MaxUops), modelling the
//     bounded number of entries a single PW may occupy in the cache.
//
// Predicted-not-taken conditional branches do NOT terminate a window, which
// is what makes two windows with the same start address but different lengths
// possible (overlapping PWs).
type Former struct {
	// MaxUops caps the number of micro-ops per window; windows exceeding
	// it are split, with the continuation starting a new window.
	MaxUops int
	// CrossLine allows a window to span up to MaxLines icache lines
	// instead of terminating at every boundary — the CLASP technique
	// (Kotra & Kalamatianos, MICRO 2020) that reduces the fragmentation
	// created by line-boundary window cuts.
	CrossLine bool
	// MaxLines bounds a cross-line window's footprint (default 2, as in
	// CLASP's adjacent-line placement).
	MaxLines int

	cur       PW
	curActive bool

	// arena is the shared backing store for every emitted window's Lines
	// slice. finish appends each window's spanned lines here and hands out
	// a capacity-capped subslice, so forming n windows costs O(log n)
	// allocations (arena growth) instead of one allocation per window.
	// The arena is append-only: emitted subslices stay valid after growth
	// because they keep referencing the backing array they were cut from.
	arena []uint64
}

// DefaultMaxUops is 4 entries of 8 micro-ops each, the Zen3-like default.
const DefaultMaxUops = 32

// NewFormer returns a Former with the given per-window micro-op cap;
// maxUops <= 0 selects DefaultMaxUops.
func NewFormer(maxUops int) *Former {
	if maxUops <= 0 {
		maxUops = DefaultMaxUops
	}
	return &Former{MaxUops: maxUops}
}

// instSlice describes one instruction carved out of a block.
type instSlice struct {
	addr  uint64
	bytes uint16
	uops  uint16
}

// splitInsts deterministically apportions a block's bytes and micro-ops
// across its instructions: the first remainder instructions receive one extra
// unit. This approximates instruction boundaries without modelling real x86
// encodings; all that matters downstream is where line boundaries fall and
// how many micro-ops each side of a cut carries.
func splitInsts(b Block) []instSlice {
	n := int(b.NumInst)
	if n == 0 {
		return nil
	}
	insts := make([]instSlice, n)
	bb, br := int(b.Bytes)/n, int(b.Bytes)%n
	ub, ur := int(b.NumUops)/n, int(b.NumUops)%n
	addr := b.Addr
	for i := 0; i < n; i++ {
		by := bb
		if i < br {
			by++
		}
		uo := ub
		if i < ur {
			uo++
		}
		insts[i] = instSlice{addr: addr, bytes: uint16(by), uops: uint16(uo)}
		addr += uint64(by)
	}
	return insts
}

// Add consumes one dynamic block, emitting any completed windows.
func (f *Former) Add(b Block, emit func(PW)) {
	for _, in := range splitInsts(b) {
		if !f.curActive {
			f.begin(in.addr)
		}
		// A window never spans more lines than allowed: cut before
		// adding an instruction that starts in a line beyond the
		// window's budget (1 line normally; MaxLines under CLASP).
		// Cutting lazily (at the next instruction rather than when
		// the current one ends exactly on the boundary) keeps the
		// taken-branch terminator attributable to the window it
		// belongs to.
		if f.lineBudgetExceeded(in.addr) {
			f.finish(false, emit)
			f.begin(in.addr)
		}
		// Cut before exceeding the micro-op cap, unless the window is
		// empty (a single instruction larger than the cap still forms
		// a window on its own).
		if f.cur.NumInst > 0 && int(f.cur.NumUops)+int(in.uops) > f.MaxUops {
			f.finish(false, emit)
			f.begin(in.addr)
		}
		f.cur.Bytes += in.bytes
		f.cur.NumInst++
		f.cur.NumUops += in.uops
	}
	if b.Kind.IsBranch() && b.Taken && f.curActive {
		f.finish(true, emit)
	}
}

// Flush emits the in-progress window, if any. Call at end of trace.
func (f *Former) Flush(emit func(PW)) {
	if f.curActive && f.cur.NumInst > 0 {
		f.finish(false, emit)
	}
	f.curActive = false
}

// lineBudgetExceeded reports whether extending the current window to an
// instruction at addr would exceed its icache-line budget.
func (f *Former) lineBudgetExceeded(addr uint64) bool {
	budget := 1
	if f.CrossLine {
		budget = f.MaxLines
		if budget < 1 {
			budget = 2
		}
	}
	span := int((LineAddr(addr)-LineAddr(f.cur.Start))/LineSize) + 1
	return span > budget
}

func (f *Former) begin(addr uint64) {
	f.cur = PW{Start: addr}
	f.curActive = true
}

func (f *Former) finish(taken bool, emit func(PW)) {
	if f.cur.NumInst == 0 {
		f.curActive = false
		return
	}
	f.cur.EndsTaken = taken
	f.cur.Lines = f.appendLines(f.cur.Start, f.cur.Bytes)
	emit(f.cur)
	f.curActive = false
}

// appendLines writes the lines spanned by [start, start+bytes) into the
// shared arena and returns the window's subslice. The three-index slice
// caps capacity at the segment's end, so appending to an emitted Lines
// slice can never scribble over a later window's lines.
func (f *Former) appendLines(start uint64, bytes uint16) []uint64 {
	first := LineAddr(start)
	last := LineAddr(start + uint64(bytes) - 1)
	if bytes == 0 {
		last = first
	}
	off := len(f.arena)
	for l := first; l <= last; l += LineSize {
		f.arena = append(f.arena, l)
	}
	end := len(f.arena)
	return f.arena[off:end:end]
}

// FormPWs converts an entire block trace into its PW lookup sequence. This
// is the paper's STEP(2): with a zero-size micro-op cache every lookup is
// observable, so the emitted sequence is exactly the lookup trace.
func FormPWs(blocks []Block, maxUops int) []PW {
	return FormPWsWith(blocks, NewFormer(maxUops))
}

// FormPWsWith runs a configured Former (e.g. with CLASP cross-line windows)
// over an entire block trace.
func FormPWsWith(blocks []Block, f *Former) []PW {
	var pws []PW
	emit := func(p PW) { pws = append(pws, p) }
	for _, b := range blocks {
		f.Add(b, emit)
	}
	f.Flush(emit)
	return pws
}
