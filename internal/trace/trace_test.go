package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBranchKindString(t *testing.T) {
	cases := map[BranchKind]string{
		BranchNone:     "none",
		BranchCond:     "cond",
		BranchUncond:   "uncond",
		BranchCall:     "call",
		BranchRet:      "ret",
		BranchIndirect: "indirect",
		BranchKind(42): "BranchKind(42)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("BranchKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestBranchKindPredicates(t *testing.T) {
	if BranchNone.IsBranch() {
		t.Error("BranchNone.IsBranch() = true")
	}
	for _, k := range []BranchKind{BranchCond, BranchUncond, BranchCall, BranchRet, BranchIndirect} {
		if !k.IsBranch() {
			t.Errorf("%v.IsBranch() = false", k)
		}
	}
	if !BranchCond.IsConditional() {
		t.Error("BranchCond.IsConditional() = false")
	}
	if BranchUncond.IsConditional() {
		t.Error("BranchUncond.IsConditional() = true")
	}
}

func TestBlockNextPC(t *testing.T) {
	b := Block{Addr: 0x1000, Bytes: 16, Kind: BranchCond, Taken: true, Target: 0x2000}
	if got := b.NextPC(); got != 0x2000 {
		t.Errorf("taken NextPC = %#x, want 0x2000", got)
	}
	b.Taken = false
	if got := b.NextPC(); got != 0x1010 {
		t.Errorf("not-taken NextPC = %#x, want 0x1010", got)
	}
	if got := b.FallThrough(); got != 0x1010 {
		t.Errorf("FallThrough = %#x, want 0x1010", got)
	}
}

func TestLineAddr(t *testing.T) {
	for _, tc := range []struct{ in, want uint64 }{
		{0, 0}, {1, 0}, {63, 0}, {64, 64}, {0x1037, 0x1000}, {0x10ff, 0x10c0},
	} {
		if got := LineAddr(tc.in); got != tc.want {
			t.Errorf("LineAddr(%#x) = %#x, want %#x", tc.in, got, tc.want)
		}
	}
}

func TestPWCostAndEntries(t *testing.T) {
	p := PW{NumUops: 0}
	if p.Entries(8) != 1 {
		t.Errorf("zero-uop PW should still occupy 1 entry, got %d", p.Entries(8))
	}
	for _, tc := range []struct {
		uops, per, want int
	}{
		{1, 8, 1}, {8, 8, 1}, {9, 8, 2}, {16, 8, 2}, {17, 8, 3}, {32, 8, 4}, {5, 4, 2},
	} {
		p := PW{NumUops: uint16(tc.uops)}
		if got := p.Entries(tc.per); got != tc.want {
			t.Errorf("Entries(uops=%d, per=%d) = %d, want %d", tc.uops, tc.per, got, tc.want)
		}
		if p.Cost() != tc.uops {
			t.Errorf("Cost() = %d, want %d", p.Cost(), tc.uops)
		}
	}
}

func TestSpanLines(t *testing.T) {
	got := SpanLines(0x1000, 64)
	if !reflect.DeepEqual(got, []uint64{0x1000}) {
		t.Errorf("SpanLines(0x1000,64) = %v", got)
	}
	got = SpanLines(0x103c, 8) // crosses into 0x1040
	if !reflect.DeepEqual(got, []uint64{0x1000, 0x1040}) {
		t.Errorf("SpanLines(0x103c,8) = %v", got)
	}
	got = SpanLines(0x1000, 0)
	if !reflect.DeepEqual(got, []uint64{0x1000}) {
		t.Errorf("SpanLines(0x1000,0) = %v", got)
	}
}

func TestSliceReader(t *testing.T) {
	blocks := []Block{{Addr: 1}, {Addr: 2}, {Addr: 3}}
	r := NewSliceReader(blocks)
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	got := Collect(r)
	if !reflect.DeepEqual(got, blocks) {
		t.Errorf("Collect = %v, want %v", got, blocks)
	}
	if _, ok := r.Next(); ok {
		t.Error("Next after exhaustion should report ok=false")
	}
	r.Reset()
	if b, ok := r.Next(); !ok || b.Addr != 1 {
		t.Errorf("after Reset, Next = %v, %v", b, ok)
	}
}

func TestWriteReadBlocksRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	blocks := make([]Block, 200)
	for i := range blocks {
		blocks[i] = Block{
			Addr:     rng.Uint64(),
			Bytes:    uint16(rng.Intn(256)),
			NumInst:  uint16(rng.Intn(32)),
			NumUops:  uint16(rng.Intn(64)),
			Kind:     BranchKind(rng.Intn(6)),
			Taken:    rng.Intn(2) == 0,
			Target:   rng.Uint64(),
			BranchPC: rng.Uint64(),
		}
	}
	var buf bytes.Buffer
	if err := WriteBlocks(&buf, blocks); err != nil {
		t.Fatalf("WriteBlocks: %v", err)
	}
	got, err := ReadBlocks(&buf)
	if err != nil {
		t.Fatalf("ReadBlocks: %v", err)
	}
	if !reflect.DeepEqual(got, blocks) {
		t.Error("round trip mismatch")
	}
}

func TestReadBlocksBadMagic(t *testing.T) {
	if _, err := ReadBlocks(bytes.NewReader(make([]byte, 12))); err == nil {
		t.Error("expected error on zero magic")
	}
}

func TestReadBlocksTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBlocks(&buf, []Block{{Addr: 1}, {Addr: 2}}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadBlocks(bytes.NewReader(raw[:len(raw)-5])); err == nil {
		t.Error("expected error on truncated trace")
	}
}

func TestSplitInstsConserves(t *testing.T) {
	f := func(addr uint64, bytes, ninst, nuops uint16) bool {
		ninst = ninst%20 + 1
		bytes = bytes%300 + ninst // at least 1 byte per instruction on average is not required, just consistency
		nuops = nuops % 64
		b := Block{Addr: addr, Bytes: bytes, NumInst: ninst, NumUops: nuops}
		insts := splitInsts(b)
		if len(insts) != int(ninst) {
			return false
		}
		var tb, tu int
		a := addr
		for _, in := range insts {
			if in.addr != a {
				return false
			}
			a += uint64(in.bytes)
			tb += int(in.bytes)
			tu += int(in.uops)
		}
		return tb == int(bytes) && tu == int(nuops)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSplitInstsEmpty(t *testing.T) {
	if got := splitInsts(Block{NumInst: 0, Bytes: 10}); got != nil {
		t.Errorf("splitInsts of 0-inst block = %v, want nil", got)
	}
}

// TestFormerTakenBranchTerminates: a taken branch must terminate the window.
func TestFormerTakenBranchTerminates(t *testing.T) {
	blocks := []Block{
		{Addr: 0x1000, Bytes: 16, NumInst: 4, NumUops: 5, Kind: BranchCond, Taken: true, Target: 0x2000, BranchPC: 0x100c},
		{Addr: 0x2000, Bytes: 8, NumInst: 2, NumUops: 2, Kind: BranchUncond, Taken: true, Target: 0x1000, BranchPC: 0x2004},
	}
	pws := FormPWs(blocks, 0)
	if len(pws) != 2 {
		t.Fatalf("got %d PWs, want 2: %+v", len(pws), pws)
	}
	if pws[0].Start != 0x1000 || pws[0].NumUops != 5 || !pws[0].EndsTaken {
		t.Errorf("pw0 = %+v", pws[0])
	}
	if pws[1].Start != 0x2000 || pws[1].NumUops != 2 || !pws[1].EndsTaken {
		t.Errorf("pw1 = %+v", pws[1])
	}
}

// TestFormerNotTakenMerges: a not-taken conditional must NOT terminate the
// window; the following block merges into the same PW.
func TestFormerNotTakenMerges(t *testing.T) {
	blocks := []Block{
		{Addr: 0x1000, Bytes: 16, NumInst: 4, NumUops: 4, Kind: BranchCond, Taken: false, BranchPC: 0x100c},
		{Addr: 0x1010, Bytes: 16, NumInst: 4, NumUops: 4, Kind: BranchCond, Taken: true, Target: 0x3000, BranchPC: 0x101c},
	}
	pws := FormPWs(blocks, 0)
	if len(pws) != 1 {
		t.Fatalf("got %d PWs, want 1: %+v", len(pws), pws)
	}
	if pws[0].Start != 0x1000 || pws[0].NumUops != 8 || pws[0].NumInst != 8 {
		t.Errorf("merged PW = %+v", pws[0])
	}
}

// TestFormerOverlappingPWs: the same start address yields different window
// lengths depending on the conditional outcome — the paper's partial-hit
// setup.
func TestFormerOverlappingPWs(t *testing.T) {
	short := []Block{
		{Addr: 0x1000, Bytes: 16, NumInst: 4, NumUops: 4, Kind: BranchCond, Taken: true, Target: 0x5000, BranchPC: 0x100c},
	}
	long := []Block{
		{Addr: 0x1000, Bytes: 16, NumInst: 4, NumUops: 4, Kind: BranchCond, Taken: false, BranchPC: 0x100c},
		{Addr: 0x1010, Bytes: 16, NumInst: 4, NumUops: 4, Kind: BranchUncond, Taken: true, Target: 0x5000, BranchPC: 0x101c},
	}
	ps := FormPWs(short, 0)
	pl := FormPWs(long, 0)
	if len(ps) != 1 || len(pl) != 1 {
		t.Fatalf("want 1 PW each, got %d and %d", len(ps), len(pl))
	}
	if ps[0].Start != pl[0].Start {
		t.Errorf("starts differ: %#x vs %#x", ps[0].Start, pl[0].Start)
	}
	if ps[0].NumUops >= pl[0].NumUops {
		t.Errorf("short PW (%d uops) should be smaller than long PW (%d uops)", ps[0].NumUops, pl[0].NumUops)
	}
}

// TestFormerLineBoundary: windows never span an icache line.
func TestFormerLineBoundary(t *testing.T) {
	blocks := []Block{
		// 96 bytes starting at 0x1020: crosses 0x1040 boundary.
		{Addr: 0x1020, Bytes: 96, NumInst: 24, NumUops: 24, Kind: BranchUncond, Taken: true, Target: 0x9000, BranchPC: 0x107c},
	}
	pws := FormPWs(blocks, 0)
	if len(pws) < 2 {
		t.Fatalf("expected split at line boundary, got %d PWs", len(pws))
	}
	for i, p := range pws {
		if len(p.Lines) != 1 {
			t.Errorf("pw %d spans %d lines: %+v", i, len(p.Lines), p)
		}
		end := p.Start + uint64(p.Bytes) - 1
		if LineAddr(p.Start) != LineAddr(end) {
			t.Errorf("pw %d crosses line: start %#x end %#x", i, p.Start, end)
		}
	}
	if !pws[len(pws)-1].EndsTaken {
		t.Error("final window should end taken")
	}
}

// TestFormerMaxUops: windows are split at the micro-op cap.
func TestFormerMaxUops(t *testing.T) {
	blocks := []Block{
		{Addr: 0x1000, Bytes: 40, NumInst: 10, NumUops: 40, Kind: BranchUncond, Taken: true, Target: 0x9000, BranchPC: 0x1024},
	}
	pws := FormPWs(blocks, 8)
	var total int
	for i, p := range pws {
		if int(p.NumUops) > 8 {
			t.Errorf("pw %d has %d uops, cap 8", i, p.NumUops)
		}
		total += int(p.NumUops)
	}
	if total != 40 {
		t.Errorf("uops not conserved: %d != 40", total)
	}
}

// TestFormerConservation: micro-ops, instructions and bytes are conserved
// from blocks to windows for arbitrary traces.
func TestFormerConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var blocks []Block
	addr := uint64(0x400000)
	for i := 0; i < 500; i++ {
		n := uint16(rng.Intn(12) + 1)
		by := n * uint16(rng.Intn(6)+2)
		uo := n + uint16(rng.Intn(int(n)+1))
		kind := BranchKind(rng.Intn(6))
		taken := kind != BranchNone && (kind != BranchCond || rng.Intn(2) == 0)
		var tgt uint64
		if taken {
			tgt = uint64(0x400000 + rng.Intn(1<<16))
		}
		blocks = append(blocks, Block{Addr: addr, Bytes: by, NumInst: n, NumUops: uo, Kind: kind, Taken: taken, Target: tgt})
		if taken {
			addr = tgt
		} else {
			addr += uint64(by)
		}
	}
	var wantU, wantI, wantB int
	for _, b := range blocks {
		wantU += int(b.NumUops)
		wantI += int(b.NumInst)
		wantB += int(b.Bytes)
	}
	pws := FormPWs(blocks, 0)
	var gotU, gotI, gotB int
	for _, p := range pws {
		gotU += int(p.NumUops)
		gotI += int(p.NumInst)
		gotB += int(p.Bytes)
		if int(p.NumUops) > DefaultMaxUops {
			t.Errorf("PW exceeds cap: %+v", p)
		}
	}
	if gotU != wantU || gotI != wantI || gotB != wantB {
		t.Errorf("conservation: uops %d/%d inst %d/%d bytes %d/%d", gotU, wantU, gotI, wantI, gotB, wantB)
	}
}

func TestFormerFlushEmitsPartial(t *testing.T) {
	f := NewFormer(0)
	var pws []PW
	emit := func(p PW) { pws = append(pws, p) }
	f.Add(Block{Addr: 0x1000, Bytes: 8, NumInst: 2, NumUops: 2, Kind: BranchCond, Taken: false, BranchPC: 0x1004}, emit)
	if len(pws) != 0 {
		t.Fatalf("premature emit: %+v", pws)
	}
	f.Flush(emit)
	if len(pws) != 1 || pws[0].NumUops != 2 || pws[0].EndsTaken {
		t.Errorf("flushed PW = %+v", pws)
	}
	// Second flush is a no-op.
	f.Flush(emit)
	if len(pws) != 1 {
		t.Errorf("double flush emitted again: %+v", pws)
	}
}
