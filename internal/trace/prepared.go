package trace

// PreparedTrace is a columnar, read-only view of a PW lookup sequence,
// built once per (trace, cache geometry) and shared by every replay that
// walks the same sequence: policy replays, offline plan solves, figure
// cells and parallel workers. It precomputes the per-window attributes the
// hot paths would otherwise rederive on every lookup of every replay —
// the set index, the storage footprint, the entry count — plus a CSR
// occurrence index (all positions of each distinct start address) that
// replaces the per-replay map-of-slices the offline oracle used to build.
//
// All fields are immutable after Prepare; concurrent readers need no
// locking. Mutable per-replay state (oracle cursors, keep bits) lives with
// the replay, keyed by the dense key id.
type PreparedTrace struct {
	pws  []PW
	set  []int32
	foot []int32
	ents []int32
	// sig fingerprints the geometry the columns were computed under;
	// consumers compare it against their own configuration and fall back
	// to the uncolumnar path on mismatch rather than trusting stale
	// attributes.
	sig uint64

	// Occurrence index: keyID[i] is the dense id of pws[i].Start (ids
	// assigned in first-appearance order), keys[id] is the start address,
	// and occ[occOff[id]:occOff[id+1]] lists the ascending positions at
	// which that address is looked up.
	keyID  []int32
	keys   []uint64
	idOf   map[uint64]int32
	occOff []int32
	occ    []int32
}

// Prepare builds the columnar view of pws. sig identifies the geometry;
// setIndex, footprint and entries are the geometry owner's per-window
// attribute functions (internal/uopcache supplies them from its Config so
// the formulas stay defined in one place).
func Prepare(pws []PW, sig uint64, setIndex func(uint64) int, footprint, entries func(PW) int) *PreparedTrace {
	n := len(pws)
	pt := &PreparedTrace{
		pws:  pws,
		set:  make([]int32, n),
		foot: make([]int32, n),
		ents: make([]int32, n),
		sig:  sig,
		// One allocation for both int32 columns of the CSR build.
		keyID: make([]int32, n),
		idOf:  make(map[uint64]int32, n/4+1),
	}
	for i := range pws {
		p := &pws[i]
		pt.set[i] = int32(setIndex(p.Start))
		pt.foot[i] = int32(footprint(*p))
		pt.ents[i] = int32(entries(*p))
		id, ok := pt.idOf[p.Start]
		if !ok {
			id = int32(len(pt.keys))
			pt.idOf[p.Start] = id
			pt.keys = append(pt.keys, p.Start)
		}
		pt.keyID[i] = id
	}
	// CSR fill: count occurrences per id, prefix-sum, then scatter
	// positions in ascending order.
	k := len(pt.keys)
	counts := make([]int32, k+1)
	for _, id := range pt.keyID {
		counts[id+1]++
	}
	for i := 1; i <= k; i++ {
		counts[i] += counts[i-1]
	}
	pt.occOff = counts
	pt.occ = make([]int32, n)
	cur := make([]int32, k)
	for i, id := range pt.keyID {
		pt.occ[pt.occOff[id]+cur[id]] = int32(i)
		cur[id]++
	}
	return pt
}

// Len returns the number of lookups in the sequence.
//
//simlint:hotpath
func (pt *PreparedTrace) Len() int { return len(pt.pws) }

// PWs returns the underlying lookup sequence (read-only; do not mutate).
//
//simlint:hotpath
func (pt *PreparedTrace) PWs() []PW { return pt.pws }

// At returns the window looked up at position i.
//
//simlint:hotpath
func (pt *PreparedTrace) At(i int) PW { return pt.pws[i] }

// Set returns the precomputed set index of the window at position i.
//
//simlint:hotpath
func (pt *PreparedTrace) Set(i int) int { return int(pt.set[i]) }

// Footprint returns the window's precomputed storage footprint in the
// geometry's accounting unit (entries normally, micro-ops under
// compaction).
//
//simlint:hotpath
func (pt *PreparedTrace) Footprint(i int) int { return int(pt.foot[i]) }

// Entries returns the window's precomputed entry count (PW.Entries under
// the geometry's UopsPerEntry).
//
//simlint:hotpath
func (pt *PreparedTrace) Entries(i int) int { return int(pt.ents[i]) }

// Sig returns the geometry fingerprint the columns were computed under.
//
//simlint:hotpath
func (pt *PreparedTrace) Sig() uint64 { return pt.sig }

// KeyID returns the dense id of the window start looked up at position i.
//
//simlint:hotpath
func (pt *PreparedTrace) KeyID(i int) int32 { return pt.keyID[i] }

// NumKeys returns the number of distinct start addresses in the sequence.
//
//simlint:hotpath
func (pt *PreparedTrace) NumKeys() int { return len(pt.keys) }

// IDOf returns the dense id of a start address, or ok=false when the
// address never appears in the sequence.
//
//simlint:hotpath
func (pt *PreparedTrace) IDOf(start uint64) (int32, bool) {
	id, ok := pt.idOf[start]
	return id, ok
}

// Occurrences returns the ascending lookup positions of the key with the
// given dense id (read-only; shared across replays).
//
//simlint:hotpath
func (pt *PreparedTrace) Occurrences(id int32) []int32 {
	return pt.occ[pt.occOff[id]:pt.occOff[id+1]]
}

// SameSequence reports whether pt was built over exactly this slice: same
// length and same backing array. Consumers use it as a cheap guard before
// trusting positional columns for a caller-supplied sequence.
//
//simlint:hotpath
func (pt *PreparedTrace) SameSequence(pws []PW) bool {
	if len(pws) != len(pt.pws) {
		return false
	}
	return len(pws) == 0 || &pws[0] == &pt.pws[0]
}
