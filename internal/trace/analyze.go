package trace

// Analysis summarizes the structural properties of a PW lookup sequence
// that the paper's design arguments rest on: window footprint, cost
// variance (Section II-C), and the overlapping-window rate (Section II-D).
type Analysis struct {
	// Lookups is the sequence length.
	Lookups int
	// DistinctStarts is the static window footprint.
	DistinctStarts int
	// OverlappingStarts counts start addresses observed with more than
	// one window length — the partial-hit population.
	OverlappingStarts int
	// TotalUops is the micro-op volume of the sequence.
	TotalUops uint64
	// AvgUops is mean micro-ops per window lookup.
	AvgUops float64
	// AvgEntries is mean cache entries per window (8 uops/entry).
	AvgEntries float64
	// SizeHist[k] counts lookups of windows occupying k entries
	// (index 0 unused).
	SizeHist [8]uint64
	// EndsTakenFrac is the fraction of windows terminated by a taken
	// branch (the rest hit line boundaries or the micro-op cap).
	EndsTakenFrac float64
}

// OverlapFrac returns the fraction of static windows with multiple lengths.
func (a Analysis) OverlapFrac() float64 {
	if a.DistinctStarts == 0 {
		return 0
	}
	return float64(a.OverlappingStarts) / float64(a.DistinctStarts)
}

// Analyze computes the structural summary of a lookup sequence, assuming
// uopsPerEntry micro-ops per cache entry (0 selects 8).
func Analyze(pws []PW, uopsPerEntry int) Analysis {
	if uopsPerEntry <= 0 {
		uopsPerEntry = 8
	}
	var a Analysis
	a.Lookups = len(pws)
	sizes := make(map[uint64]map[uint16]struct{})
	var entriesSum, taken uint64
	for _, p := range pws {
		a.TotalUops += uint64(p.NumUops)
		e := p.Entries(uopsPerEntry)
		entriesSum += uint64(e)
		if e >= 1 && e < len(a.SizeHist) {
			a.SizeHist[e]++
		} else if e >= len(a.SizeHist) {
			a.SizeHist[len(a.SizeHist)-1]++
		}
		if p.EndsTaken {
			taken++
		}
		m := sizes[p.Start]
		if m == nil {
			m = make(map[uint16]struct{}, 1)
			sizes[p.Start] = m
		}
		m[p.NumUops] = struct{}{}
	}
	a.DistinctStarts = len(sizes)
	for _, m := range sizes {
		if len(m) > 1 {
			a.OverlappingStarts++
		}
	}
	if a.Lookups > 0 {
		a.AvgUops = float64(a.TotalUops) / float64(a.Lookups)
		a.AvgEntries = float64(entriesSum) / float64(a.Lookups)
		a.EndsTakenFrac = float64(taken) / float64(a.Lookups)
	}
	return a
}
