// Package trace defines the dynamic instruction-stream representation used
// throughout the simulator: dynamic basic blocks (what an Intel PT decoder
// would reconstruct from a real execution) and prediction windows (PWs), the
// unit the micro-op cache operates on.
//
// A PW starts at the target of a control-flow change and terminates at the
// first predicted-taken branch or at a 64-byte instruction-cache line
// boundary, whichever comes first. Because predicted-not-taken conditional
// branches do not terminate a PW, two dynamic executions of the same code can
// yield two PWs with the same start address but different lengths — the
// "overlapping PW" phenomenon the paper's FLACK and FURBYS policies exploit.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// BranchKind classifies the control-flow instruction terminating a block.
type BranchKind uint8

const (
	// BranchNone means the block ends without a control-flow instruction
	// (it was cut at an icache line boundary).
	BranchNone BranchKind = iota
	// BranchCond is a conditional direct branch.
	BranchCond
	// BranchUncond is an unconditional direct jump.
	BranchUncond
	// BranchCall is a direct call.
	BranchCall
	// BranchRet is a return.
	BranchRet
	// BranchIndirect is an indirect jump or indirect call.
	BranchIndirect
)

// String returns a short human-readable name for the branch kind.
func (k BranchKind) String() string {
	switch k {
	case BranchNone:
		return "none"
	case BranchCond:
		return "cond"
	case BranchUncond:
		return "uncond"
	case BranchCall:
		return "call"
	case BranchRet:
		return "ret"
	case BranchIndirect:
		return "indirect"
	default:
		return fmt.Sprintf("BranchKind(%d)", uint8(k))
	}
}

// IsBranch reports whether the kind denotes an actual control-flow
// instruction (anything but BranchNone).
func (k BranchKind) IsBranch() bool { return k != BranchNone }

// IsConditional reports whether the branch has a direction to predict.
func (k BranchKind) IsConditional() bool { return k == BranchCond }

// Block is a dynamic basic block: a straight-line run of instructions ending
// either in a control-flow instruction or at an arbitrary cut point chosen by
// the workload generator. It is the information an Intel PT trace plus the
// binary provides.
type Block struct {
	// Addr is the virtual address of the first instruction.
	Addr uint64
	// Bytes is the total code size of the block in bytes.
	Bytes uint16
	// NumInst is the number of x86 instructions in the block.
	NumInst uint16
	// NumUops is the number of micro-ops the block decodes into.
	NumUops uint16
	// Kind is the control-flow instruction terminating the block
	// (BranchNone if the block simply falls through).
	Kind BranchKind
	// Taken reports the actual outcome for conditional branches; it is
	// true for unconditional transfers and false when Kind is BranchNone.
	Taken bool
	// Target is the actual target address when Taken, otherwise 0.
	Target uint64
	// BranchPC is the address of the terminating branch instruction
	// (0 when Kind is BranchNone).
	BranchPC uint64
}

// FallThrough returns the address of the instruction following the block.
func (b Block) FallThrough() uint64 { return b.Addr + uint64(b.Bytes) }

// NextPC returns the address control flow continues at after the block.
func (b Block) NextPC() uint64 {
	if b.Taken {
		return b.Target
	}
	return b.FallThrough()
}

// LineSize is the instruction-cache line size in bytes; PW formation cuts
// windows at these boundaries, matching the paper's 64-byte L1i lines.
const LineSize = 64

// LineAddr returns the icache line address containing addr.
func LineAddr(addr uint64) uint64 { return addr &^ uint64(LineSize-1) }

// PW is a prediction window: the lookup and storage granule of the micro-op
// cache. Its start address is the cache key; its micro-op count is the
// paper's "cost"; the number of cache entries it occupies is its "size".
type PW struct {
	// Start is the starting virtual address (the cache key).
	Start uint64
	// Bytes is the code footprint of the window.
	Bytes uint16
	// NumInst is the number of instructions in the window.
	NumInst uint16
	// NumUops is the number of micro-ops (the miss cost of the window).
	NumUops uint16
	// EndsTaken reports whether the window was terminated by a taken
	// branch (as opposed to an icache line boundary).
	EndsTaken bool
	// Lines lists the icache line addresses the window's code spans;
	// the inclusive micro-op cache invalidates a PW when any of its
	// lines leaves the L1i.
	Lines []uint64
}

// Cost returns the micro-op count of the window (the paper's miss cost).
func (p PW) Cost() int { return int(p.NumUops) }

// Entries returns the number of micro-op cache entries the window occupies
// given a capacity of uopsPerEntry micro-ops per entry (the paper's "size").
func (p PW) Entries(uopsPerEntry int) int {
	if p.NumUops == 0 {
		return 1
	}
	return (int(p.NumUops) + uopsPerEntry - 1) / uopsPerEntry
}

// SpanLines computes the icache lines covered by [start, start+bytes).
func SpanLines(start uint64, bytes uint16) []uint64 {
	first := LineAddr(start)
	last := LineAddr(start + uint64(bytes) - 1)
	if bytes == 0 {
		last = first
	}
	n := int((last-first)/LineSize) + 1
	lines := make([]uint64, 0, n)
	for l := first; l <= last; l += LineSize {
		lines = append(lines, l)
	}
	return lines
}

// Reader yields a stream of dynamic blocks. Implementations must be
// deterministic for a fixed construction.
type Reader interface {
	// Next returns the next block, or ok=false at end of trace.
	Next() (b Block, ok bool)
}

// SliceReader adapts an in-memory block slice to the Reader interface.
type SliceReader struct {
	blocks []Block
	pos    int
}

// NewSliceReader returns a Reader over blocks.
func NewSliceReader(blocks []Block) *SliceReader { return &SliceReader{blocks: blocks} }

// Next implements Reader.
func (r *SliceReader) Next() (Block, bool) {
	if r.pos >= len(r.blocks) {
		return Block{}, false
	}
	b := r.blocks[r.pos]
	r.pos++
	return b, true
}

// Reset rewinds the reader to the beginning of the trace.
func (r *SliceReader) Reset() { r.pos = 0 }

// Len returns the total number of blocks in the trace.
func (r *SliceReader) Len() int { return len(r.blocks) }

// Collect drains a Reader into a slice. It is intended for tests and for
// traces small enough to buffer.
func Collect(r Reader) []Block {
	var out []Block
	for {
		b, ok := r.Next()
		if !ok {
			return out
		}
		out = append(out, b)
	}
}

const fileMagic = 0x75506354 // "uPcT"

// WriteBlocks serializes a block trace in a compact little-endian binary
// format understood by ReadBlocks.
func WriteBlocks(w io.Writer, blocks []Block) error {
	bw := bufio.NewWriter(w)
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], fileMagic)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(len(blocks)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [32]byte
	for _, b := range blocks {
		binary.LittleEndian.PutUint64(rec[0:8], b.Addr)
		binary.LittleEndian.PutUint16(rec[8:10], b.Bytes)
		binary.LittleEndian.PutUint16(rec[10:12], b.NumInst)
		binary.LittleEndian.PutUint16(rec[12:14], b.NumUops)
		rec[14] = byte(b.Kind)
		if b.Taken {
			rec[15] = 1
		} else {
			rec[15] = 0
		}
		binary.LittleEndian.PutUint64(rec[16:24], b.Target)
		binary.LittleEndian.PutUint64(rec[24:32], b.BranchPC)
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBlocks deserializes a block trace written by WriteBlocks.
func ReadBlocks(r io.Reader) ([]Block, error) {
	br := bufio.NewReader(r)
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if got := binary.LittleEndian.Uint32(hdr[0:4]); got != fileMagic {
		return nil, fmt.Errorf("trace: bad magic %#x", got)
	}
	n := binary.LittleEndian.Uint64(hdr[4:12])
	const maxBlocks = 1 << 30
	if n > maxBlocks {
		return nil, fmt.Errorf("trace: implausible block count %d", n)
	}
	blocks := make([]Block, 0, n)
	var rec [32]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: reading block %d: %w", i, err)
		}
		blocks = append(blocks, Block{
			Addr:     binary.LittleEndian.Uint64(rec[0:8]),
			Bytes:    binary.LittleEndian.Uint16(rec[8:10]),
			NumInst:  binary.LittleEndian.Uint16(rec[10:12]),
			NumUops:  binary.LittleEndian.Uint16(rec[12:14]),
			Kind:     BranchKind(rec[14]),
			Taken:    rec[15] != 0,
			Target:   binary.LittleEndian.Uint64(rec[16:24]),
			BranchPC: binary.LittleEndian.Uint64(rec[24:32]),
		})
	}
	return blocks, nil
}
