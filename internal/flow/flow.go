// Package flow implements an integral min-cost max-flow solver (successive
// shortest augmenting paths with Johnson potentials) used by the FOO and
// FLACK offline replacement policies to solve their interval-caching
// formulation (Berger et al., "Practical Bounds on Optimal Caching with
// Variable Object Sizes").
//
// The Dijkstra scratch state (potentials, distances, parent arcs, visited
// marks, and the binary heap) lives in a reusable Solver arena: allocated
// once, grown to the largest graph seen, and invalidated by epoch stamping
// instead of O(n) clears between augmenting paths. FOO solves thousands of
// per-(set, segment) instances per experiment, so the arena turns the
// solver's allocation profile from per-instance to per-worker.
package flow

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"uopsim/internal/telemetry"
)

// Graph is a directed flow network with integer capacities and costs.
// Nodes are dense integers [0, N).
type Graph struct {
	n int
	// Forward/backward edges are stored as arc pairs: arc 2i is the
	// forward direction of logical edge i, arc 2i+1 its residual.
	to    []int32
	next  []int32
	headA []int32
	cap   []int64
	cost  []int64
}

// NewGraph creates a graph with n nodes.
func NewGraph(n int) *Graph { return NewGraphCap(n, 0) }

// NewGraphCap creates a graph with n nodes, pre-sizing the arc storage for
// edgeCap logical edges (2*edgeCap arcs) so builders that know their exact
// edge count never grow a slice mid-build. The node index keeps two spare
// head slots for SolveSupplies' super source and sink.
func NewGraphCap(n, edgeCap int) *Graph {
	head := make([]int32, n, n+2)
	for i := range head {
		head[i] = -1
	}
	g := &Graph{n: n, headA: head}
	if edgeCap > 0 {
		g.to = make([]int32, 0, 2*edgeCap)
		g.next = make([]int32, 0, 2*edgeCap)
		g.cap = make([]int64, 0, 2*edgeCap)
		g.cost = make([]int64, 0, 2*edgeCap)
	}
	return g
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the logical edge count.
func (g *Graph) NumEdges() int { return len(g.to) / 2 }

// AddEdge adds a directed edge u→v with the given capacity and per-unit
// cost, returning its edge id (for Flow queries). Cost must be
// non-negative (the FOO construction only has non-negative costs).
func (g *Graph) AddEdge(u, v int, capacity, cost int64) int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("flow: edge (%d,%d) outside graph of %d nodes", u, v, g.n))
	}
	if capacity < 0 || cost < 0 {
		panic(fmt.Sprintf("flow: negative capacity/cost (%d/%d)", capacity, cost))
	}
	id := len(g.to) / 2
	g.addArc(u, v, capacity, cost)
	g.addArc(v, u, 0, -cost)
	return id
}

func (g *Graph) addArc(u, v int, capacity, cost int64) {
	g.to = append(g.to, int32(v))
	g.next = append(g.next, g.headA[u])
	g.headA[u] = int32(len(g.to) - 1)
	g.cap = append(g.cap, capacity)
	g.cost = append(g.cost, cost)
}

// Flow returns the flow routed over edge id after a Solve call.
func (g *Graph) Flow(id int) int64 {
	// Residual capacity on the reverse arc equals the routed flow.
	return g.cap[2*id+1]
}

// Result summarizes a solve.
type Result struct {
	// Flow is the total units routed from sources to sinks.
	Flow int64
	// Cost is the total cost of the routed flow.
	Cost int64
}

// heap entry for Dijkstra.
type pqItem struct {
	node int32
	dist int64
}

// Solver is a reusable min-cost-flow scratch arena. It carries no graph
// state between calls — only capacity — so one Solver may serve any number
// of graphs sequentially. Not safe for concurrent use; use one per worker
// (AcquireSolver/ReleaseSolver pool them).
type Solver struct {
	pot     []int64
	dist    []int64
	prevArc []int32
	// distE/visE stamp which entries of dist/prevArc (respectively the
	// visited set) are valid for the current Dijkstra epoch; bumping the
	// epoch invalidates everything in O(1).
	distE []uint32
	visE  []uint32
	epoch uint32
	heap  []pqItem
}

// NewSolver returns an empty solver arena; arrays grow on first use.
func NewSolver() *Solver { return &Solver{} }

// grow ensures capacity for an n-node graph without disturbing epochs.
func (s *Solver) grow(n int) {
	if len(s.pot) >= n {
		return
	}
	s.pot = make([]int64, n)
	s.dist = make([]int64, n)
	s.prevArc = make([]int32, n)
	s.distE = make([]uint32, n)
	s.visE = make([]uint32, n)
	s.epoch = 0
}

// bump starts a new Dijkstra epoch, invalidating dist/visited stamps.
func (s *Solver) bump() {
	s.epoch++
	if s.epoch == 0 { // uint32 wrap: stale stamps could alias; hard reset
		clear(s.distE)
		clear(s.visE)
		s.epoch = 1
	}
}

// The manual binary heap below replicates container/heap's sift order
// exactly (Push = append + sift-up; Pop = swap root/last, sift-down, return
// last; strictly-less comparisons on dist). Equal-distance entries therefore
// pop in the same order as the previous container/heap implementation, which
// keeps augmenting-path selection — and thus every FOO/FLACK plan — byte
// identical.

func (s *Solver) hpush(it pqItem) {
	h := append(s.heap, it)
	j := len(h) - 1
	for j > 0 {
		i := (j - 1) / 2
		if h[j].dist >= h[i].dist {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
	s.heap = h
}

func (s *Solver) hpop() pqItem {
	h := s.heap
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	i := 0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && h[j2].dist < h[j].dist {
			j = j2
		}
		if h[j].dist >= h[i].dist {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	it := h[n]
	s.heap = h[:n]
	return it
}

// MinCostFlow routes up to maxFlow units from src to t in g at minimum
// cost, stopping early when no augmenting path remains. Pass math.MaxInt64
// to route the maximum flow. All edge costs must be non-negative.
func (s *Solver) MinCostFlow(g *Graph, src, t int, maxFlow int64) Result {
	if src == t {
		return Result{}
	}
	s.grow(g.n)
	pot := s.pot[:g.n]
	clear(pot) // potentials start at zero each solve; valid since costs >= 0
	dist, prevArc := s.dist, s.prevArc
	distE, visE := s.distE, s.visE
	var res Result

	for res.Flow < maxFlow {
		// Dijkstra on reduced costs; stamps replace the per-iteration
		// O(n) dist/visited reset.
		s.bump()
		ep := s.epoch
		dist[src] = 0
		distE[src] = ep
		s.heap = s.heap[:0]
		s.hpush(pqItem{int32(src), 0})
		for len(s.heap) > 0 {
			it := s.hpop()
			u := int(it.node)
			if visE[u] == ep {
				continue
			}
			visE[u] = ep
			for a := g.headA[u]; a != -1; a = g.next[a] {
				if g.cap[a] <= 0 {
					continue
				}
				v := int(g.to[a])
				if visE[v] == ep {
					continue
				}
				rc := g.cost[a] + pot[u] - pot[v]
				nd := dist[u] + rc
				if distE[v] != ep || nd < dist[v] {
					dist[v] = nd
					distE[v] = ep
					prevArc[v] = a
					s.hpush(pqItem{int32(v), nd})
				}
			}
		}
		if visE[t] != ep {
			break
		}
		for i := 0; i < g.n; i++ {
			if distE[i] == ep {
				pot[i] += dist[i]
			}
		}
		// Bottleneck along the path.
		push := maxFlow - res.Flow
		for v := t; v != src; {
			a := prevArc[v]
			if g.cap[a] < push {
				push = g.cap[a]
			}
			v = int(g.to[a^1])
		}
		for v := t; v != src; {
			a := prevArc[v]
			g.cap[a] -= push
			g.cap[a^1] += push
			res.Cost += push * g.cost[a]
			v = int(g.to[a^1])
		}
		res.Flow += push
	}
	return res
}

// SolveSupplies satisfies per-node supplies (positive) and demands
// (negative) at minimum cost by attaching a super source and sink to g. The
// supply slice must sum to zero. It returns the routed flow (== total
// supply) and its cost; err is non-nil when the network cannot absorb the
// supplies.
func (s *Solver) SolveSupplies(g *Graph, supply []int64) (Result, error) {
	if len(supply) != g.n {
		return Result{}, fmt.Errorf("flow: supply vector length %d != %d nodes", len(supply), g.n)
	}
	var total, balance int64
	for _, v := range supply {
		balance += v
		if v > 0 {
			total += v
		}
	}
	if balance != 0 {
		return Result{}, fmt.Errorf("flow: supplies sum to %d, want 0", balance)
	}
	// Extend the graph with super source and sink.
	src, t := g.n, g.n+1
	g.n += 2
	g.headA = append(g.headA, -1, -1)
	for i, sup := range supply {
		if sup > 0 {
			g.AddEdge(src, i, sup, 0)
		} else if sup < 0 {
			g.AddEdge(i, t, -sup, 0)
		}
	}
	res := s.MinCostFlow(g, src, t, math.MaxInt64)
	if res.Flow != total {
		return res, fmt.Errorf("flow: infeasible, routed %d of %d", res.Flow, total)
	}
	return res, nil
}

// MinCostFlow is the arena-free convenience form (a throwaway Solver).
func (g *Graph) MinCostFlow(s, t int, maxFlow int64) Result {
	return NewSolver().MinCostFlow(g, s, t, maxFlow)
}

// SolveSupplies is the arena-free convenience form (a throwaway Solver).
func (g *Graph) SolveSupplies(supply []int64) (Result, error) {
	return NewSolver().SolveSupplies(g, supply)
}

// ---------------------------------------------------------------------------
// Solver pool and reuse telemetry

var (
	solverPool = sync.Pool{New: func() any {
		solverFresh.Add(1)
		return NewSolver()
	}}
	// solverReuse / solverFresh count pool hits vs. new arena allocations;
	// exposed as flow_solver_reuse_total / flow_solver_fresh_total.
	solverReuse atomic.Uint64
	solverFresh atomic.Uint64
)

// AcquireSolver returns a pooled solver arena (allocating one only when the
// pool is empty). Pair with ReleaseSolver.
func AcquireSolver() *Solver {
	solverReuse.Add(1)
	return solverPool.Get().(*Solver)
}

// ReleaseSolver returns a solver to the pool. The arena keeps its grown
// capacity; no state carries over between users.
func ReleaseSolver(s *Solver) { solverPool.Put(s) }

// SolverReuseStats returns how many AcquireSolver calls were served from the
// pool (reuse) and how many had to allocate a fresh arena.
func SolverReuseStats() (reuse, fresh uint64) {
	f := solverFresh.Load()
	a := solverReuse.Load()
	return a - f, f
}

// RegisterMetrics exposes the solver-pool counters in reg as
// flow_solver_reuse_total and flow_solver_fresh_total, refreshed at each
// collection.
func RegisterMetrics(reg *telemetry.Registry) {
	reuse := reg.Counter("flow_solver_reuse_total")
	fresh := reg.Counter("flow_solver_fresh_total")
	reg.OnCollect(func() {
		r, f := SolverReuseStats()
		reuse.Store(r)
		fresh.Store(f)
	})
}
