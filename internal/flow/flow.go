// Package flow implements an integral min-cost max-flow solver (successive
// shortest augmenting paths with Johnson potentials) used by the FOO and
// FLACK offline replacement policies to solve their interval-caching
// formulation (Berger et al., "Practical Bounds on Optimal Caching with
// Variable Object Sizes").
package flow

import (
	"container/heap"
	"fmt"
	"math"
)

// Graph is a directed flow network with integer capacities and costs.
// Nodes are dense integers [0, N).
type Graph struct {
	n int
	// Forward/backward edges are stored as arc pairs: arc 2i is the
	// forward direction of logical edge i, arc 2i+1 its residual.
	to    []int32
	next  []int32
	headA []int32
	cap   []int64
	cost  []int64
}

// NewGraph creates a graph with n nodes.
func NewGraph(n int) *Graph {
	head := make([]int32, n)
	for i := range head {
		head[i] = -1
	}
	return &Graph{n: n, headA: head}
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return g.n }

// AddEdge adds a directed edge u→v with the given capacity and per-unit
// cost, returning its edge id (for Flow queries). Cost must be
// non-negative (the FOO construction only has non-negative costs).
func (g *Graph) AddEdge(u, v int, capacity, cost int64) int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("flow: edge (%d,%d) outside graph of %d nodes", u, v, g.n))
	}
	if capacity < 0 || cost < 0 {
		panic(fmt.Sprintf("flow: negative capacity/cost (%d/%d)", capacity, cost))
	}
	id := len(g.to) / 2
	g.addArc(u, v, capacity, cost)
	g.addArc(v, u, 0, -cost)
	return id
}

func (g *Graph) addArc(u, v int, capacity, cost int64) {
	g.to = append(g.to, int32(v))
	g.next = append(g.next, g.headA[u])
	g.headA[u] = int32(len(g.to) - 1)
	g.cap = append(g.cap, capacity)
	g.cost = append(g.cost, cost)
}

// Flow returns the flow routed over edge id after a Solve call.
func (g *Graph) Flow(id int) int64 {
	// Residual capacity on the reverse arc equals the routed flow.
	return g.cap[2*id+1]
}

// Result summarizes a solve.
type Result struct {
	// Flow is the total units routed from sources to sinks.
	Flow int64
	// Cost is the total cost of the routed flow.
	Cost int64
}

// priority queue for Dijkstra.
type pqItem struct {
	node int32
	dist int64
}
type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// MinCostFlow routes up to maxFlow units from s to t at minimum cost,
// stopping early when no augmenting path remains. Pass math.MaxInt64 to
// route the maximum flow. All edge costs must be non-negative.
func (g *Graph) MinCostFlow(s, t int, maxFlow int64) Result {
	if s == t {
		return Result{}
	}
	pot := make([]int64, g.n) // Johnson potentials; valid since costs >= 0
	dist := make([]int64, g.n)
	prevArc := make([]int32, g.n)
	visited := make([]bool, g.n)
	var res Result

	for res.Flow < maxFlow {
		// Dijkstra on reduced costs.
		for i := range dist {
			dist[i] = math.MaxInt64
			visited[i] = false
			prevArc[i] = -1
		}
		dist[s] = 0
		q := pq{{int32(s), 0}}
		for len(q) > 0 {
			it := heap.Pop(&q).(pqItem)
			u := int(it.node)
			if visited[u] {
				continue
			}
			visited[u] = true
			for a := g.headA[u]; a != -1; a = g.next[a] {
				if g.cap[a] <= 0 {
					continue
				}
				v := int(g.to[a])
				if visited[v] {
					continue
				}
				rc := g.cost[a] + pot[u] - pot[v]
				if nd := dist[u] + rc; nd < dist[v] {
					dist[v] = nd
					prevArc[v] = a
					heap.Push(&q, pqItem{int32(v), nd})
				}
			}
		}
		if !visited[t] {
			break
		}
		for i := 0; i < g.n; i++ {
			if dist[i] < math.MaxInt64 {
				pot[i] += dist[i]
			}
		}
		// Bottleneck along the path.
		push := maxFlow - res.Flow
		for v := t; v != s; {
			a := prevArc[v]
			if g.cap[a] < push {
				push = g.cap[a]
			}
			v = int(g.to[a^1])
		}
		for v := t; v != s; {
			a := prevArc[v]
			g.cap[a] -= push
			g.cap[a^1] += push
			res.Cost += push * g.cost[a]
			v = int(g.to[a^1])
		}
		res.Flow += push
	}
	return res
}

// SolveSupplies satisfies per-node supplies (positive) and demands
// (negative) at minimum cost by attaching a super source and sink. The
// supply slice must sum to zero. It returns the routed flow (== total
// supply) and its cost; err is non-nil when the network cannot absorb the
// supplies.
func (g *Graph) SolveSupplies(supply []int64) (Result, error) {
	if len(supply) != g.n {
		return Result{}, fmt.Errorf("flow: supply vector length %d != %d nodes", len(supply), g.n)
	}
	var total, balance int64
	for _, s := range supply {
		balance += s
		if s > 0 {
			total += s
		}
	}
	if balance != 0 {
		return Result{}, fmt.Errorf("flow: supplies sum to %d, want 0", balance)
	}
	// Extend the graph with super source and sink.
	s, t := g.n, g.n+1
	g.n += 2
	g.headA = append(g.headA, -1, -1)
	for i, sup := range supply {
		if sup > 0 {
			g.AddEdge(s, i, sup, 0)
		} else if sup < 0 {
			g.AddEdge(i, t, -sup, 0)
		}
	}
	res := g.MinCostFlow(s, t, math.MaxInt64)
	if res.Flow != total {
		return res, fmt.Errorf("flow: infeasible, routed %d of %d", res.Flow, total)
	}
	return res, nil
}
