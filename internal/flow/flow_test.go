package flow

import (
	"math"
	"math/rand"
	"testing"
)

func TestSimplePath(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 5, 2)
	g.AddEdge(1, 2, 3, 1)
	res := g.MinCostFlow(0, 2, math.MaxInt64)
	if res.Flow != 3 || res.Cost != 9 {
		t.Errorf("res = %+v, want flow 3 cost 9", res)
	}
}

func TestChoosesCheaperPath(t *testing.T) {
	g := NewGraph(4)
	cheap := g.AddEdge(0, 1, 2, 1)
	g.AddEdge(1, 3, 2, 1)
	exp := g.AddEdge(0, 2, 2, 10)
	g.AddEdge(2, 3, 2, 10)
	res := g.MinCostFlow(0, 3, 2)
	if res.Flow != 2 || res.Cost != 4 {
		t.Errorf("res = %+v, want flow 2 cost 4", res)
	}
	if g.Flow(cheap) != 2 || g.Flow(exp) != 0 {
		t.Errorf("flows: cheap=%d expensive=%d", g.Flow(cheap), g.Flow(exp))
	}
}

func TestSpillsToExpensivePath(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1, 2, 1)
	g.AddEdge(1, 3, 2, 1)
	g.AddEdge(0, 2, 2, 10)
	g.AddEdge(2, 3, 2, 10)
	res := g.MinCostFlow(0, 3, 4)
	if res.Flow != 4 || res.Cost != 2*2+2*20 {
		t.Errorf("res = %+v, want flow 4 cost 44", res)
	}
}

func TestMaxFlowLimit(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 1, 100, 1)
	res := g.MinCostFlow(0, 1, 7)
	if res.Flow != 7 || res.Cost != 7 {
		t.Errorf("res = %+v", res)
	}
}

func TestNoPath(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 5, 1)
	res := g.MinCostFlow(0, 2, math.MaxInt64)
	if res.Flow != 0 || res.Cost != 0 {
		t.Errorf("res = %+v, want zero", res)
	}
}

func TestSameSourceSink(t *testing.T) {
	g := NewGraph(1)
	if res := g.MinCostFlow(0, 0, 10); res.Flow != 0 {
		t.Errorf("res = %+v", res)
	}
}

func TestAddEdgePanics(t *testing.T) {
	g := NewGraph(2)
	for _, fn := range []func(){
		func() { g.AddEdge(0, 5, 1, 1) },
		func() { g.AddEdge(0, 1, -1, 1) },
		func() { g.AddEdge(0, 1, 1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestSolveSupplies(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 10, 1)
	g.AddEdge(1, 2, 10, 1)
	res, err := g.SolveSupplies([]int64{4, 0, -4})
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	if res.Flow != 4 || res.Cost != 8 {
		t.Errorf("res = %+v", res)
	}
}

func TestSolveSuppliesInfeasible(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 1, 2, 1)
	if _, err := g.SolveSupplies([]int64{5, -5}); err == nil {
		t.Error("want infeasibility error")
	}
}

func TestSolveSuppliesUnbalanced(t *testing.T) {
	g := NewGraph(2)
	if _, err := g.SolveSupplies([]int64{1, 0}); err == nil {
		t.Error("want balance error")
	}
}

func TestSolveSuppliesWrongLength(t *testing.T) {
	g := NewGraph(2)
	if _, err := g.SolveSupplies([]int64{1}); err == nil {
		t.Error("want length error")
	}
}

// bruteMinCost enumerates all integral flows on a tiny graph and returns the
// min cost of routing `want` units s->t; -1 when infeasible. Independent of
// the solver implementation.
type bruteEdge struct {
	u, v      int
	cap, cost int64
}

func bruteMinCost(n int, edges []bruteEdge, s, t int, want int64) int64 {
	best := int64(-1)
	flows := make([]int64, len(edges))
	var rec func(i int)
	rec = func(i int) {
		if i == len(edges) {
			// Check conservation and throughput.
			bal := make([]int64, n)
			var cost int64
			for j, e := range edges {
				bal[e.u] -= flows[j]
				bal[e.v] += flows[j]
				cost += flows[j] * e.cost
			}
			for v := 0; v < n; v++ {
				switch v {
				case s:
					if bal[v] != -want {
						return
					}
				case t:
					if bal[v] != want {
						return
					}
				default:
					if bal[v] != 0 {
						return
					}
				}
			}
			if best < 0 || cost < best {
				best = cost
			}
			return
		}
		for f := int64(0); f <= edges[i].cap; f++ {
			flows[i] = f
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

// TestAgainstBruteForce cross-checks the solver against exhaustive
// enumeration on random tiny graphs.
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 300; iter++ {
		n := 3 + rng.Intn(3) // 3..5 nodes
		ne := 3 + rng.Intn(4)
		edges := make([]bruteEdge, 0, ne)
		for i := 0; i < ne; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			edges = append(edges, bruteEdge{u, v, int64(1 + rng.Intn(3)), int64(rng.Intn(5))})
		}
		s, tt := 0, n-1
		g := NewGraph(n)
		for _, e := range edges {
			g.AddEdge(e.u, e.v, e.cap, e.cost)
		}
		// First find max flow via the solver, then check min-cost at a
		// smaller target against brute force.
		maxRes := g.MinCostFlow(s, tt, math.MaxInt64)
		for want := int64(0); want <= maxRes.Flow; want++ {
			g2 := NewGraph(n)
			for _, e := range edges {
				g2.AddEdge(e.u, e.v, e.cap, e.cost)
			}
			got := g2.MinCostFlow(s, tt, want)
			if got.Flow != want {
				t.Fatalf("iter %d: solver routed %d of %d (max %d)", iter, got.Flow, want, maxRes.Flow)
			}
			brute := bruteMinCost(n, edges, s, tt, want)
			if brute < 0 {
				t.Fatalf("iter %d: brute says infeasible for %d units but solver routed it", iter, want)
			}
			if got.Cost != brute {
				t.Fatalf("iter %d want %d units: solver cost %d, brute %d (edges %+v)",
					iter, want, got.Cost, brute, edges)
			}
		}
	}
}

// TestFlowAccounting: per-edge flows reported by Flow() are conservative and
// sum to the result at the source.
func TestFlowAccounting(t *testing.T) {
	g := NewGraph(4)
	ids := []int{
		g.AddEdge(0, 1, 3, 1),
		g.AddEdge(0, 2, 3, 2),
		g.AddEdge(1, 3, 2, 1),
		g.AddEdge(2, 3, 4, 1),
	}
	res := g.MinCostFlow(0, 3, math.MaxInt64)
	out := g.Flow(ids[0]) + g.Flow(ids[1])
	in := g.Flow(ids[2]) + g.Flow(ids[3])
	if out != res.Flow || in != res.Flow {
		t.Errorf("flow conservation: out=%d in=%d res=%d", out, in, res.Flow)
	}
	if g.Flow(ids[0]) > 3 || g.Flow(ids[2]) > 2 {
		t.Error("capacity violated")
	}
}

func BenchmarkMinCostFlowChain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		const n = 2000
		g := NewGraph(n)
		for v := 0; v+1 < n; v++ {
			g.AddEdge(v, v+1, 8, 0)
		}
		// Outer edges skipping ahead, like FOO's interval edges.
		for v := 0; v+10 < n; v += 3 {
			g.AddEdge(v, v+10, 2, 3)
		}
		g.MinCostFlow(0, n-1, 64)
	}
}
