// Package cache implements the conventional set-associative caches of the
// memory hierarchy (L1i, L1d, L2) used by the timing simulator, plus the
// shadow caches the statistics module uses for miss classification. The
// micro-op cache is NOT here — its PW-granular, multi-entry semantics live in
// package uopcache.
package cache

import "fmt"

// Config sizes a conventional cache.
type Config struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// LineBytes is the line size.
	LineBytes int
	// Ways is the associativity; 0 means fully associative.
	Ways int
	// LatencyCycles is the hit latency, used by the timing model.
	LatencyCycles int
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int {
	ways := c.Ways
	lines := c.SizeBytes / c.LineBytes
	if ways == 0 {
		return 1
	}
	return lines / ways
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("cache: non-positive size/line (%d/%d)", c.SizeBytes, c.LineBytes)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d not a power of two", c.LineBytes)
	}
	lines := c.SizeBytes / c.LineBytes
	if c.Ways < 0 || (c.Ways > 0 && lines%c.Ways != 0) {
		return fmt.Errorf("cache: %d lines not divisible by %d ways", lines, c.Ways)
	}
	if c.Ways > 0 {
		sets := lines / c.Ways
		if sets&(sets-1) != 0 {
			return fmt.Errorf("cache: set count %d not a power of two", sets)
		}
	}
	return nil
}

type line struct {
	tag   uint64
	valid bool
	// lastUse is a monotonically increasing stamp for LRU.
	lastUse uint64
}

// Cache is a set-associative cache with true-LRU replacement.
type Cache struct {
	cfg     Config
	sets    [][]line
	setMask uint64
	shift   uint
	clock   uint64

	// OnEvict, when non-nil, is invoked with the line address of every
	// evicted (or invalidated) line. The micro-op cache registers here to
	// implement L1i inclusion.
	OnEvict func(lineAddr uint64)

	// Stats.
	Accesses uint64
	Misses   uint64
}

// New builds a cache; it panics on invalid configuration (a programming
// error, configurations are static).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := cfg.Sets()
	ways := cfg.Ways
	if ways == 0 {
		ways = cfg.SizeBytes / cfg.LineBytes
	}
	sets := make([][]line, nsets)
	for i := range sets {
		sets[i] = make([]line, ways)
	}
	shift := uint(0)
	for l := cfg.LineBytes; l > 1; l >>= 1 {
		shift++
	}
	return &Cache{cfg: cfg, sets: sets, setMask: uint64(nsets - 1), shift: shift}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	lineAddr := addr >> c.shift
	return int(lineAddr & c.setMask), lineAddr >> uint(popcount(c.setMask))
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// LineAddr returns the address of the line containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr &^ uint64(c.cfg.LineBytes-1)
}

// Access touches addr, filling on miss. It returns true on hit.
func (c *Cache) Access(addr uint64) bool {
	c.Accesses++
	c.clock++
	set, tag := c.index(addr)
	ways := c.sets[set]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].lastUse = c.clock
			return true
		}
	}
	c.Misses++
	// Fill: pick an invalid way, else the LRU way.
	victim := 0
	for i := range ways {
		if !ways[i].valid {
			victim = i
			goto fill
		}
		if ways[i].lastUse < ways[victim].lastUse {
			victim = i
		}
	}
	if ways[victim].valid && c.OnEvict != nil {
		c.OnEvict(c.reassemble(set, ways[victim].tag))
	}
fill:
	ways[victim] = line{tag: tag, valid: true, lastUse: c.clock}
	return false
}

// Probe reports whether addr is resident without updating state.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	for _, w := range c.sets[set] {
		if w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

// Invalidate removes addr's line if resident, firing OnEvict.
func (c *Cache) Invalidate(addr uint64) bool {
	set, tag := c.index(addr)
	ways := c.sets[set]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].valid = false
			if c.OnEvict != nil {
				c.OnEvict(c.reassemble(set, tag))
			}
			return true
		}
	}
	return false
}

// reassemble reconstructs a line address from set and tag.
func (c *Cache) reassemble(set int, tag uint64) uint64 {
	bits := uint(popcount(c.setMask))
	return ((tag << bits) | uint64(set)) << c.shift
}

// MissRate returns misses/accesses (0 when untouched).
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// ResetStats clears the counters without disturbing contents (for warmup).
func (c *Cache) ResetStats() { c.Accesses, c.Misses = 0, 0 }
