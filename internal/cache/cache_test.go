package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func l1i() Config { return Config{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8, LatencyCycles: 1} }

func TestConfigSets(t *testing.T) {
	if got := l1i().Sets(); got != 64 {
		t.Errorf("32KiB/64B/8w sets = %d, want 64", got)
	}
	fa := Config{SizeBytes: 4096, LineBytes: 64, Ways: 0}
	if got := fa.Sets(); got != 1 {
		t.Errorf("fully associative sets = %d, want 1", got)
	}
}

func TestConfigValidate(t *testing.T) {
	good := []Config{l1i(), {SizeBytes: 512 << 10, LineBytes: 64, Ways: 8}, {SizeBytes: 4096, LineBytes: 64, Ways: 0}}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v", c, err)
		}
	}
	bad := []Config{
		{SizeBytes: 0, LineBytes: 64, Ways: 8},
		{SizeBytes: 1024, LineBytes: 60, Ways: 4},
		{SizeBytes: 1024, LineBytes: 64, Ways: 5},
		{SizeBytes: 64 * 12, LineBytes: 64, Ways: 4}, // 3 sets, not power of two
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with bad config should panic")
		}
	}()
	New(Config{SizeBytes: -1, LineBytes: 64, Ways: 1})
}

func TestAccessHitMiss(t *testing.T) {
	c := New(l1i())
	if c.Access(0x1000) {
		t.Error("first access should miss")
	}
	if !c.Access(0x1000) {
		t.Error("second access should hit")
	}
	if !c.Access(0x1004) {
		t.Error("same line should hit")
	}
	if c.Access(0x1040) {
		t.Error("next line should miss")
	}
	if c.Accesses != 4 || c.Misses != 2 {
		t.Errorf("stats = %d/%d, want 4/2", c.Accesses, c.Misses)
	}
	if got := c.MissRate(); got != 0.5 {
		t.Errorf("MissRate = %v", got)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way, 2-set tiny cache: 4 lines of 64B = 256B.
	c := New(Config{SizeBytes: 256, LineBytes: 64, Ways: 2})
	// Set 0 gets addresses with line index even.
	a, b, d := uint64(0x0000), uint64(0x0080), uint64(0x0100) // all set 0
	c.Access(a)
	c.Access(b)
	c.Access(a) // a is MRU
	c.Access(d) // evicts b (LRU)
	if !c.Probe(a) {
		t.Error("a should survive")
	}
	if c.Probe(b) {
		t.Error("b should be evicted")
	}
	if !c.Probe(d) {
		t.Error("d should be resident")
	}
}

func TestOnEvictFires(t *testing.T) {
	c := New(Config{SizeBytes: 128, LineBytes: 64, Ways: 1})
	var evicted []uint64
	c.OnEvict = func(a uint64) { evicted = append(evicted, a) }
	c.Access(0x0000)
	c.Access(0x0080) // same set (2 sets: 0x00 set0, 0x40 set1, 0x80 set0) -> evicts 0x0000
	if len(evicted) != 1 || evicted[0] != 0x0000 {
		t.Errorf("evicted = %#v, want [0x0]", evicted)
	}
	c.Invalidate(0x0080)
	if len(evicted) != 2 || evicted[1] != 0x0080 {
		t.Errorf("evicted after invalidate = %#v", evicted)
	}
}

func TestInvalidate(t *testing.T) {
	c := New(l1i())
	c.Access(0x2000)
	if !c.Invalidate(0x2000) {
		t.Error("Invalidate of resident line should return true")
	}
	if c.Probe(0x2000) {
		t.Error("line still resident after Invalidate")
	}
	if c.Invalidate(0x2000) {
		t.Error("Invalidate of absent line should return false")
	}
}

func TestProbeDoesNotPerturbLRU(t *testing.T) {
	c := New(Config{SizeBytes: 128, LineBytes: 64, Ways: 2})
	c.Access(0x0000)
	c.Access(0x0080)
	// Probe the LRU line; it must remain the victim.
	c.Probe(0x0000)
	c.Access(0x0100) // should evict 0x0000 (still LRU despite probe)
	if c.Probe(0x0000) {
		t.Error("probe must not refresh LRU")
	}
}

func TestReassembleRoundTrip(t *testing.T) {
	c := New(l1i())
	f := func(addr uint64) bool {
		set, tag := c.index(addr)
		return c.reassemble(set, tag) == c.LineAddr(addr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestInclusionProperty: working-set smaller than capacity never misses after
// the first pass, regardless of access order (true LRU, single set).
func TestLRUWorkingSetProperty(t *testing.T) {
	c := New(Config{SizeBytes: 8 * 64, LineBytes: 64, Ways: 0}) // fully assoc, 8 lines
	addrs := []uint64{0, 64, 128, 192, 256, 320, 384, 448}
	for _, a := range addrs {
		c.Access(a)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		a := addrs[rng.Intn(len(addrs))]
		if !c.Access(a) {
			t.Fatalf("miss on resident working set at %#x", a)
		}
	}
}

// TestFullyAssocMatchesStackDistance: in a fully-associative LRU cache of W
// lines, an access hits iff its LRU stack distance is < W.
func TestFullyAssocMatchesStackDistance(t *testing.T) {
	const w = 4
	c := New(Config{SizeBytes: w * 64, LineBytes: 64, Ways: 0})
	rng := rand.New(rand.NewSource(9))
	var hist []uint64
	for i := 0; i < 5000; i++ {
		a := uint64(rng.Intn(12)) * 64
		// Compute stack distance over hist.
		seen := map[uint64]bool{}
		dist := -1
		for j := len(hist) - 1; j >= 0; j-- {
			if hist[j] == a {
				dist = len(seen)
				break
			}
			seen[hist[j]] = true
		}
		wantHit := dist >= 0 && dist < w
		if got := c.Access(a); got != wantHit {
			t.Fatalf("access %d addr %#x: hit=%v, stack distance %d wants %v", i, a, got, dist, wantHit)
		}
		hist = append(hist, a)
	}
}

func TestResetStats(t *testing.T) {
	c := New(l1i())
	c.Access(0x1000)
	c.ResetStats()
	if c.Accesses != 0 || c.Misses != 0 {
		t.Error("stats not reset")
	}
	if !c.Probe(0x1000) {
		t.Error("contents should survive ResetStats")
	}
}

func TestMissRateZeroWhenUntouched(t *testing.T) {
	if New(l1i()).MissRate() != 0 {
		t.Error("untouched cache MissRate should be 0")
	}
}
