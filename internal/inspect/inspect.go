// Package inspect is the decision-level introspection layer: it explains WHY
// the simulator did what it did, where package telemetry only counts WHAT
// happened. Three pillars:
//
//   - eviction attribution (this file): every eviction the cache emits is
//     recorded with its victim, the inserting window, the policy's stated
//     reason and losing score, then reconciled against the lookup trace and
//     classified as justified (the victim was never re-referenced),
//     premature (re-referenced within a configurable window), or divergent
//     (an offline keep-plan wanted the victim kept);
//   - span tracing (spans.go): wall-clock spans of experiment, cell and
//     solve work exported as Chrome trace-event JSON for Perfetto;
//   - the live dashboard is served by telemetry.ServeStatus, fed from
//     snapshots assembled by the experiment harness.
//
// Everything here is OFF the simulation hot path: the collector attaches
// through the cache's existing event-sink seam, which the hot path guards
// with a nil check, so a run without -inspect pays nothing.
package inspect

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"

	"uopsim/internal/telemetry"
	"uopsim/internal/trace"
)

// EvictionRecord is one eviction as the cache reported it.
type EvictionRecord struct {
	// Seq is the cache's lookup clock when the eviction fired. The clock
	// increments at the START of lookup i (0-based), so an eviction at
	// Seq s happened after lookup s-1 completed: the victim's earliest
	// possible re-reference is trace position s.
	Seq uint64
	// Set is the cache set index.
	Set int
	// VictimKey is the evicted window's start address; VictimUops its
	// cost; VictimAge the lookups since it was last useful.
	VictimKey  uint64
	VictimUops int
	VictimAge  uint64
	// IncomingKey is the window whose insertion forced the eviction (zero
	// for eager/offline evictions).
	IncomingKey uint64
	// Reason and Score are the policy's stated grounds (see the Reason*
	// vocabularies in packages policy and offline).
	Reason string
	Score  float64
	// Policy names the deciding policy.
	Policy string
}

// Collector is a telemetry.EventSink that captures eviction events for
// attribution, forwarding everything to an optional next sink so it can sit
// in front of a JSONL trace. It is safe for concurrent use, though each
// simulated cache is single-threaded; separate runs use separate collectors.
type Collector struct {
	// Next, when non-nil, receives every event unchanged.
	Next telemetry.EventSink

	mu   sync.Mutex
	recs []EvictionRecord
}

// NewCollector returns an empty eviction collector.
func NewCollector() *Collector { return &Collector{} }

// Emit implements telemetry.EventSink.
func (c *Collector) Emit(ev telemetry.Event) {
	if ev.Kind == telemetry.EventEvict {
		c.mu.Lock()
		c.recs = append(c.recs, EvictionRecord{
			Seq: ev.Seq, Set: ev.Set,
			VictimKey: ev.VictimKey, VictimUops: ev.VictimUops, VictimAge: ev.VictimAge,
			IncomingKey: ev.IncomingKey, Reason: ev.Reason, Score: ev.Score,
			Policy: ev.Policy,
		})
		c.mu.Unlock()
	}
	if c.Next != nil {
		c.Next.Emit(ev)
	}
}

// Records returns the captured evictions in emission order.
func (c *Collector) Records() []EvictionRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]EvictionRecord, len(c.recs))
	copy(out, c.recs)
	return out
}

// Len returns the number of captured evictions.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.recs)
}

// Classification buckets for one eviction. The three classes partition the
// eviction set exactly: divergent takes precedence (an offline plan
// disagreed), then premature (re-referenced within the window), then
// justified (everything else — in particular, never re-referenced).
const (
	ClassJustified = "justified"
	ClassPremature = "premature"
	ClassDivergent = "divergent"
)

// RDBuckets is the number of log2 reuse-distance buckets (bucket i holds
// distances with bit length i, like telemetry.Histogram).
const RDBuckets = 65

// DefaultWindow is the default premature-classification window in lookups:
// a victim re-referenced within this many lookups of its eviction counts as
// prematurely evicted.
const DefaultWindow = 4096

// Options configures attribution.
type Options struct {
	// Window is the premature threshold in lookups (<= 0 selects
	// DefaultWindow; use a huge value to make any re-reference premature).
	Window int
	// Keep, when non-nil, is an offline keep-plan indexed by trace
	// position (offline.Decisions.Keep): evictions whose victim's
	// current interval the plan kept are classified divergent.
	Keep []bool
}

// Attribution aggregates the classified evictions of one (app, policy) run.
type Attribution struct {
	App    string `json:"app,omitempty"`
	Policy string `json:"policy"`
	// Window is the premature threshold the classification used.
	Window int `json:"window"`
	// Total = Justified + Premature + Divergent, always — the partition
	// is exact so Total reconciles with uopcache_evictions_total.
	Total     uint64 `json:"total"`
	Justified uint64 `json:"justified"`
	Premature uint64 `json:"premature"`
	Divergent uint64 `json:"divergent"`
	// ReuseDist histograms next-use distance at eviction (log2 buckets);
	// never-re-referenced victims are not observed here.
	ReuseDist [RDBuckets]uint64 `json:"reuse_dist"`
	// Reasons tallies the policies' stated decision reasons.
	Reasons map[string]uint64 `json:"reasons,omitempty"`
}

// Frac returns the (justified, premature, divergent) fractions.
func (a Attribution) Frac() (j, p, d float64) {
	if a.Total == 0 {
		return 0, 0, 0
	}
	t := float64(a.Total)
	return float64(a.Justified) / t, float64(a.Premature) / t, float64(a.Divergent) / t
}

// rdBucket maps a reuse distance to its log2 bucket.
func rdBucket(d uint64) int { return bits.Len64(d) }

// Attribute reconciles captured evictions against the lookup trace. pws is
// the exact PW sequence the run replayed; opts.Keep (optional) is an offline
// keep-plan over the same positions.
func Attribute(recs []EvictionRecord, pws []trace.PW, opts Options) Attribution {
	window := opts.Window
	if window <= 0 {
		window = DefaultWindow
	}
	a := Attribution{Window: window, Reasons: make(map[string]uint64)}
	// Occurrence index: window start -> sorted trace positions.
	occ := make(map[uint64][]int32, len(pws)/4+1)
	for i, p := range pws {
		occ[p.Start] = append(occ[p.Start], int32(i))
	}
	for _, r := range recs {
		if a.Policy == "" {
			a.Policy = r.Policy
		}
		a.Total++
		if r.Reason != "" {
			a.Reasons[r.Reason]++
		}
		pos := int(r.Seq) // earliest possible re-reference position
		uses := occ[r.VictimKey]
		// First use at or after pos.
		n := sort.Search(len(uses), func(i int) bool { return int(uses[i]) >= pos })
		if n < len(uses) {
			a.ReuseDist[rdBucket(uint64(int(uses[n])-pos))]++
		}
		if opts.Keep != nil {
			// The victim's current interval at eviction time starts at
			// its last use strictly before pos.
			if last := n - 1; last >= 0 {
				if k := int(uses[last]); k < len(opts.Keep) && opts.Keep[k] {
					a.Divergent++
					continue
				}
			}
		}
		if n < len(uses) && int(uses[n])-pos < window {
			a.Premature++
			continue
		}
		a.Justified++
	}
	return a
}

// CSVHeader is the attribution CSV schema (documented in EXPERIMENTS.md).
const CSVHeader = "app,policy,window,evictions,justified,premature,divergent,justified_frac,premature_frac,divergent_frac"

// WriteCSV renders attribution rows in the stable schema above.
func WriteCSV(w io.Writer, rows []Attribution) error {
	if _, err := fmt.Fprintln(w, CSVHeader); err != nil {
		return err
	}
	for _, a := range rows {
		j, p, d := a.Frac()
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%d,%d,%d,%d,%.4f,%.4f,%.4f\n",
			a.App, a.Policy, a.Window, a.Total, a.Justified, a.Premature, a.Divergent, j, p, d); err != nil {
			return err
		}
	}
	return nil
}

// RDCSVHeader is the reuse-distance-at-eviction CSV schema: one row per
// non-empty log2 bucket (bucket b covers distances [2^(b-1), 2^b)).
const RDCSVHeader = "app,policy,bucket_log2,count"

// WriteRDCSV renders the reuse-distance histograms.
func WriteRDCSV(w io.Writer, rows []Attribution) error {
	if _, err := fmt.Fprintln(w, RDCSVHeader); err != nil {
		return err
	}
	for _, a := range rows {
		for b, n := range a.ReuseDist {
			if n == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s,%s,%d,%d\n", a.App, a.Policy, b, n); err != nil {
				return err
			}
		}
	}
	return nil
}

// Summary is a one-line roll-up of attribution rows (for logs and the
// dashboard).
func Summary(rows []Attribution) string {
	var t, j, p, d uint64
	for _, a := range rows {
		t += a.Total
		j += a.Justified
		p += a.Premature
		d += a.Divergent
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d evictions: %d justified, %d premature, %d divergent", t, j, p, d)
	return sb.String()
}

// Totals sums attribution rows into aggregate counters (inspect_* metrics).
func Totals(rows []Attribution) (total, justified, premature, divergent uint64) {
	for _, a := range rows {
		total += a.Total
		justified += a.Justified
		premature += a.Premature
		divergent += a.Divergent
	}
	return
}
