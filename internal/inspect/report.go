package inspect

import (
	"uopsim/internal/plot"
)

// FractionSVG renders the attribution rows as a grouped bar chart: one group
// per row (labelled app or app/policy), three bars per group — the
// justified/premature/divergent fractions of that run's evictions.
func FractionSVG(title string, rows []Attribution) string {
	groups := make([]string, len(rows))
	just := make([]float64, len(rows))
	prem := make([]float64, len(rows))
	div := make([]float64, len(rows))
	for i, a := range rows {
		label := a.App
		if label == "" {
			label = a.Policy
		} else if a.Policy != "" {
			label = a.App + "/" + a.Policy
		}
		groups[i] = label
		just[i], prem[i], div[i] = a.Frac()
	}
	series := []plot.Series{
		{Name: ClassJustified, Values: just},
		{Name: ClassPremature, Values: prem},
		{Name: ClassDivergent, Values: div},
	}
	return plot.BarSVG(title, "fraction of evictions", groups, series)
}
