package inspect

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"

	"uopsim/internal/telemetry"
)

// SpanLog records wall-clock spans (experiment → cell → solve/replay work)
// and exports them in the Chrome trace-event format, loadable in Perfetto or
// chrome://tracing. A nil *SpanLog is a valid no-op log, so callers thread
// it unconditionally and pay nothing when -trace-out is off.
//
// Spans are laid out on numbered lanes (trace "threads"): when a span ends
// it takes the lowest-numbered lane that was free for its whole duration, so
// concurrent cells render stacked — the visual width of the lane block IS
// the worker utilization.
type SpanLog struct {
	mu     sync.Mutex
	t0     time.Time
	events []traceEvent
	lanes  []int64 // per-lane busy-until time (µs since t0)
}

// traceEvent is one Chrome trace-event record ("X" = complete span, "i" =
// instant, "M" = metadata).
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   int64             `json:"ts"`
	Dur  int64             `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// traceFile is the top-level Chrome trace JSON object.
type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

// NewSpanLog returns an empty span log anchored at the current time.
func NewSpanLog() *SpanLog { return &SpanLog{t0: time.Now()} }

// Span is one in-flight span; End completes it. A nil *Span (from a nil
// log) is valid and inert.
type Span struct {
	l     *SpanLog
	cat   string
	name  string
	start time.Time
	args  map[string]string
}

// Begin starts a span of the given category and name. Safe on a nil log.
func (l *SpanLog) Begin(cat, name string) *Span {
	if l == nil {
		return nil
	}
	return &Span{l: l, cat: cat, name: name, start: time.Now()}
}

// Arg attaches a key/value annotation to the span; chainable and nil-safe.
func (s *Span) Arg(k, v string) *Span {
	if s == nil {
		return nil
	}
	if s.args == nil {
		s.args = make(map[string]string)
	}
	s.args[k] = v
	return s
}

// End completes the span, assigning it the lowest free lane.
func (s *Span) End() {
	if s == nil {
		return
	}
	l := s.l
	end := time.Now()
	ts := s.start.Sub(l.t0).Microseconds()
	dur := end.Sub(s.start).Microseconds()
	if dur < 1 {
		dur = 1 // Perfetto drops zero-width complete events
	}
	l.mu.Lock()
	lane := -1
	for i, busyUntil := range l.lanes {
		if busyUntil <= ts {
			lane = i
			break
		}
	}
	if lane < 0 {
		lane = len(l.lanes)
		l.lanes = append(l.lanes, 0)
	}
	l.lanes[lane] = ts + dur
	l.events = append(l.events, traceEvent{
		Name: s.name, Cat: s.cat, Ph: "X", Ts: ts, Dur: dur,
		Pid: 1, Tid: lane + 1, Args: s.args,
	})
	l.mu.Unlock()
}

// Instant records a zero-duration marker (rendered as an arrow in Perfetto).
func (l *SpanLog) Instant(cat, name string) {
	if l == nil {
		return
	}
	ts := time.Since(l.t0).Microseconds()
	l.mu.Lock()
	l.events = append(l.events, traceEvent{
		Name: name, Cat: cat, Ph: "i", Ts: ts, Pid: 1, Tid: 0,
	})
	l.mu.Unlock()
}

// Len returns the number of recorded events. Safe on a nil log.
func (l *SpanLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// WriteJSON emits the Chrome trace-event JSON. Events are sorted by
// timestamp so output is stable for a given set of spans.
func (l *SpanLog) WriteJSON(w io.Writer) error {
	if l == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	l.mu.Lock()
	evs := make([]traceEvent, len(l.events))
	copy(evs, l.events)
	lanes := len(l.lanes)
	l.mu.Unlock()
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Ts < evs[j].Ts })
	out := make([]traceEvent, 0, len(evs)+lanes+2)
	out = append(out, traceEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]string{"name": "uopsim"},
	})
	out = append(out, traceEvent{
		Name: "thread_name", Ph: "M", Pid: 1, Tid: 0,
		Args: map[string]string{"name": "markers"},
	})
	for i := 0; i < lanes; i++ {
		out = append(out, traceEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: i + 1,
			Args: map[string]string{"name": "lane " + itoa(i+1)},
		})
	}
	out = append(out, evs...)
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: out})
}

// WriteFile writes the trace JSON atomically (no torn artifact on crash).
func (l *SpanLog) WriteFile(path string) error {
	return telemetry.AtomicWriteFile(path, 0o644, l.WriteJSON)
}

// itoa avoids strconv for the tiny lane numbers (and keeps imports lean).
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
