package inspect

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func readFile(path string) ([]byte, error) { return os.ReadFile(path) }

func TestNilSpanLogIsInert(t *testing.T) {
	var l *SpanLog
	sp := l.Begin("cat", "name")
	sp.Arg("k", "v") // must not panic
	sp.End()
	l.Instant("cat", "marker")
	if l.Len() != 0 {
		t.Error("nil log has events")
	}
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil-log JSON invalid: %v", err)
	}
	if len(doc.TraceEvents) != 0 {
		t.Errorf("nil log emitted %d events", len(doc.TraceEvents))
	}
}

func TestSpanLaneAssignment(t *testing.T) {
	l := NewSpanLog()
	// Nested spans: outer covers inner, so when outer ends its start time
	// predates inner's busy interval and it must take a fresh lane.
	outer := l.Begin("cell", "outer")
	inner := l.Begin("solve", "inner")
	time.Sleep(2 * time.Millisecond)
	inner.End()
	outer.End()
	// A later span begins after both finished and reuses the lowest lane.
	time.Sleep(2 * time.Millisecond)
	later := l.Begin("cell", "later")
	time.Sleep(time.Millisecond)
	later.End()

	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   int64  `json:"ts"`
			Dur  int64  `json:"dur"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	tids := map[string]int{}
	lastTs := int64(-1)
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		tids[ev.Name] = ev.Tid
		if ev.Dur < 1 {
			t.Errorf("span %s has dur %d; Perfetto drops zero-width spans", ev.Name, ev.Dur)
		}
		if ev.Ts < lastTs {
			t.Error("spans not sorted by timestamp")
		}
		lastTs = ev.Ts
	}
	if len(tids) != 3 {
		t.Fatalf("got spans %v, want 3", tids)
	}
	if tids["outer"] == tids["inner"] {
		t.Errorf("overlapping spans share lane %d", tids["outer"])
	}
	if tids["later"] != 1 {
		t.Errorf("later span on lane %d, want lowest lane 1", tids["later"])
	}
}

func TestSpanArgsAndInstant(t *testing.T) {
	l := NewSpanLog()
	l.Begin("cell", "c").Arg("attempts", "2").Arg("restored", "true").End()
	l.Instant("marker", "interrupted")
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var sawSpan, sawInstant, sawProcessName bool
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "X" && ev.Name == "c":
			sawSpan = true
			if ev.Args["attempts"] != "2" || ev.Args["restored"] != "true" {
				t.Errorf("span args = %v", ev.Args)
			}
		case ev.Ph == "i" && ev.Name == "interrupted":
			sawInstant = true
		case ev.Ph == "M" && ev.Name == "process_name":
			sawProcessName = true
		}
	}
	if !sawSpan || !sawInstant || !sawProcessName {
		t.Errorf("missing events: span=%v instant=%v meta=%v", sawSpan, sawInstant, sawProcessName)
	}
}

func TestSpanLogWriteFile(t *testing.T) {
	l := NewSpanLog()
	l.Begin("a", "b").End()
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := l.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// File contents must themselves be a valid trace document.
	data, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file invalid JSON: %v", err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Error("trace file missing traceEvents key")
	}
}
